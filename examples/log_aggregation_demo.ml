(* Audit-logged transaction processing (paper section 6.11): every
   account transaction executes against a local RocksDB-like store and is
   synchronously audit-logged to the shared log. An audit archiver
   subscribes to the log (lib/stream) and receives every record as a
   server push off the stable tail — no polling reads — with
   exactly-once delivery.

   Run with:  dune exec examples/log_aggregation_demo.exe *)

open Ll_sim
open Lazylog
open Ll_apps

let () =
  Engine.run (fun () ->
      let cfg = { Config.default with Config.subscriptions = true } in
      let cluster = Erwin_m.create ~cfg () in
      let audit_log = Erwin_m.client cluster in
      let srv = Log_aggregation.create ~log:audit_log () in

      (* The audit archiver: a durable named subscription. Records are
         pushed as they become stable; the cursor survives consumer
         restarts and sequencing-layer view changes. *)
      let manager = Ll_stream.Manager.start cluster in
      let archived = ref [] in
      let archiver =
        Ll_stream.Subscriber.create cluster
          ~manager:(Ll_stream.Manager.endpoint_id manager)
          ~name:"audit-archiver"
          ~on_record:(fun gp (r : Types.record) ->
            archived := (gp, r.data) :: !archived)
          ()
      in

      ignore (Log_aggregation.execute srv (Create { account = 1 }));
      ignore (Log_aggregation.execute srv (Create { account = 2 }));
      ignore (Log_aggregation.execute srv (Deposit { account = 1; amount = 500 }));

      let t0 = Engine.now () in
      let b =
        Log_aggregation.execute srv (Transfer { src = 1; dst = 2; amount = 120 })
      in
      Printf.printf
        "transfer done in %.1f us (execution + synchronous audit append); src balance=%d\n"
        (Engine.to_us (Engine.now () - t0))
        b;

      let t0 = Engine.now () in
      let b = Log_aggregation.execute srv (Balance { account = 2 }) in
      Printf.printf
        "balance query in %.1f us — logging dominates reads (~4us execution); balance=%d\n"
        (Engine.to_us (Engine.now () - t0))
        b;

      (* By now every audit record has been pushed to the archiver —
         delivery rides the stable tail, so the archive trails the log by
         push latency, not by a polling interval. *)
      Engine.sleep (Engine.ms 3);
      let tail = audit_log.check_tail () in
      Printf.printf "audit trail (%d records, %d pushed to the archiver):\n"
        tail
        (Ll_stream.Subscriber.delivered archiver);
      List.iter
        (fun (gp, data) -> Printf.printf "  [%d] %s\n" gp data)
        (List.rev !archived);
      assert (Ll_stream.Subscriber.delivered archiver = tail);
      Engine.stop ())
