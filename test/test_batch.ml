(* Group-commit tests: atomic batch admission in Seq_log, the
   Sr_append_batch wire protocol on a real replica (per-rid duplicate
   results, view/seal rejection, no half-acks across a seal), and
   end-to-end coalescing through the client-side linger batcher on both
   Erwin systems. *)

open Ll_sim
open Ll_net
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let rid c s = { Types.Rid.client = c; seq = s }

let entry ?(size = 128) c s = Types.Data (Types.record ~rid:(rid c s) ~size ())

(* --- Seq_log.append_batch_or_wait --- *)

let test_batch_partial_duplicates () =
  Engine.run (fun () ->
      let l = Seq_log.create ~capacity:16 in
      ignore (Seq_log.try_append l (entry 1 1));
      (match
         Seq_log.append_batch_or_wait l
           [ entry 1 1; entry 1 2; entry 1 2 ]
           ~cancel:(fun () -> false)
       with
      | Some [ Seq_log.Duplicate; Seq_log.Appended; Seq_log.Duplicate ] ->
        (* first entry already live; third is a within-batch duplicate *)
        checki "two live" 2 (Seq_log.live_count l)
      | _ -> Alcotest.fail "unexpected batch result");
      Engine.stop ())

let test_batch_cancelled_appends_nothing () =
  Engine.run (fun () ->
      let l = Seq_log.create ~capacity:16 in
      ignore (Seq_log.try_append l (entry 1 1));
      (match
         Seq_log.append_batch_or_wait l [ entry 2 1; entry 2 2 ]
           ~cancel:(fun () -> true)
       with
      | None -> checki "nothing appended" 1 (Seq_log.live_count l)
      | Some _ -> Alcotest.fail "cancelled batch reported results");
      Engine.stop ())

let test_batch_blocks_then_cancels_atomically () =
  Engine.run (fun () ->
      let l = Seq_log.create ~capacity:2 in
      ignore (Seq_log.try_append l (entry 1 1));
      ignore (Seq_log.try_append l (entry 1 2));
      let res = ref `Pending in
      let cancelled = ref false in
      Engine.spawn (fun () ->
          res :=
            (match
               Seq_log.append_batch_or_wait l [ entry 2 1; entry 2 2 ]
                 ~cancel:(fun () -> !cancelled)
             with
            | None -> `None
            | Some _ -> `Some));
      Engine.sleep (Engine.us 100);
      checkb "blocked while full" true (!res = `Pending);
      cancelled := true;
      Seq_log.kick l;
      Engine.sleep (Engine.us 10);
      checkb "failed as a unit" true (!res = `None);
      checki "nothing appended" 2 (Seq_log.live_count l);
      Engine.stop ())

let test_batch_admitted_whole_once_space_frees () =
  Engine.run (fun () ->
      let l = Seq_log.create ~capacity:2 in
      ignore (Seq_log.try_append l (entry 1 1));
      ignore (Seq_log.try_append l (entry 1 2));
      let res = ref None in
      Engine.spawn (fun () ->
          res :=
            Seq_log.append_batch_or_wait l [ entry 2 1; entry 2 2 ]
              ~cancel:(fun () -> false));
      Engine.sleep (Engine.us 50);
      checkb "blocked while full" true (!res = None);
      Seq_log.remove_ordered l [ rid 1 1; rid 1 2 ];
      Engine.sleep (Engine.us 10);
      (match !res with
      | Some [ Seq_log.Appended; Seq_log.Appended ] ->
        checki "batch admitted whole" 2 (Seq_log.live_count l)
      | _ -> Alcotest.fail "batch not admitted after gc");
      Engine.stop ())

(* --- Sr_append_batch over the wire --- *)

let with_replica ?(cfg = Config.default) f =
  Engine.run (fun () ->
      let fabric = Fabric.create ~link:cfg.Config.link () in
      let r = Seq_replica.create ~cfg ~fabric ~name:"r0" in
      let node = Fabric.add_node fabric ~name:"probe" () in
      let ep = Rpc.endpoint fabric node in
      f r ep;
      Engine.stop ())

let call r ep req =
  Rpc.call ep ~dst:(Seq_replica.node_id r) ~size:(Proto.req_size req) req

let append_batch ?(view = 0) ?(track = false) r ep entries =
  match
    call r ep
      (Proto.Sr_append_batch
         { view; batch = List.map (fun e -> (e, track)) entries })
  with
  | Proto.R_append_batch { ok; appended; _ } -> (ok, appended)
  | _ -> Alcotest.fail "bad batch response"

let test_wire_batch_partial_duplicate () =
  with_replica (fun r ep ->
      let ok, appended = append_batch r ep [ entry 1 1; entry 1 2 ] in
      checkb "fresh batch acked" true ok;
      Alcotest.(check (list bool)) "all fresh" [ true; true ] appended;
      (* A retried batch with one new record: duplicates ack as success,
         per-rid results say which entries were fresh. *)
      let ok2, appended2 =
        append_batch r ep [ entry 1 1; entry 1 2; entry 1 3 ]
      in
      checkb "retry acked" true ok2;
      Alcotest.(check (list bool))
        "per-rid results" [ false; false; true ] appended2;
      checki "stored once each" 3 (Seq_log.live_count (Seq_replica.log r)))

let test_wire_batch_wrong_view_and_sealed () =
  with_replica (fun r ep ->
      let ok, appended = append_batch ~view:3 r ep [ entry 1 1 ] in
      checkb "stale view refused" false ok;
      checki "no per-rid results" 0 (List.length appended);
      checki "nothing stored" 0 (Seq_log.live_count (Seq_replica.log r));
      ignore (call r ep (Proto.Sr_seal { view = 0 }));
      let ok2, _ = append_batch r ep [ entry 1 1; entry 1 2 ] in
      checkb "sealed refused" false ok2;
      checki "still nothing" 0 (Seq_log.live_count (Seq_replica.log r)))

let test_wire_batch_seal_while_waiting () =
  (* A batch blocked on capacity when the replica seals must fail as a
     unit: no half-appended batch, no half-ack. *)
  let cfg = { Config.default with seq_capacity = 2 } in
  with_replica ~cfg (fun r ep ->
      let ok, _ = append_batch r ep [ entry 1 1 ] in
      checkb "filled" true ok;
      let result = ref None in
      Engine.spawn (fun () ->
          result := Some (append_batch r ep [ entry 2 1; entry 2 2 ]));
      Engine.sleep (Engine.us 100);
      checkb "blocked on capacity" true (!result = None);
      ignore (call r ep (Proto.Sr_seal { view = 0 }));
      Engine.sleep (Engine.ms 1);
      (match !result with
      | Some (false, []) -> ()
      | Some _ -> Alcotest.fail "batch half-acked across a seal"
      | None -> Alcotest.fail "batch still blocked after seal");
      checki "nothing from the batch stored" 1
        (Seq_log.live_count (Seq_replica.log r)))

let test_wire_batch_tracks_rids () =
  with_replica (fun r ep ->
      let ok, _ = append_batch ~track:true r ep [ entry 3 1; entry 3 2 ] in
      checkb "tracked batch acked" true ok;
      let got = ref (-1) in
      Engine.spawn (fun () ->
          match call r ep (Proto.Sr_wait_ordered { rid = rid 3 2 }) with
          | Proto.R_gp { gp } -> got := gp
          | _ -> ());
      Engine.sleep (Engine.us 50);
      checki "still waiting" (-1) !got;
      Seq_replica.apply_gc r
        ~slots:[ (7, rid 3 1); (8, rid 3 2) ]
        ~new_gp:9;
      Engine.sleep (Engine.us 50);
      checki "woken with position" 8 !got)

(* --- end-to-end coalescing --- *)

let test_erwin_m_coalesces () =
  Engine.run (fun () ->
      let cfg =
        {
          Config.default with
          nshards = 2;
          append_batching = true;
          linger = Engine.us 20;
        }
      in
      let cluster = Erwin_m.create ~cfg () in
      let clients = Array.init 4 (fun _ -> Erwin_m.client cluster) in
      let done_ = ref 0 in
      for c = 0 to 3 do
        for i = 1 to 8 do
          Engine.spawn (fun () ->
              checkb "acked" true
                (clients.(c).Log_api.append ~size:100
                   ~data:(Printf.sprintf "%d.%d" c i));
              incr done_)
        done
      done;
      Engine.sleep (Engine.ms 5);
      checki "all acked" 32 !done_;
      checki "tail" 32 (clients.(0).Log_api.check_tail ());
      checki "read all" 32
        (List.length (clients.(0).Log_api.read ~from:0 ~len:32));
      let flushes, batched =
        match cluster.Erwin_common.append_batcher with
        | Some b -> b.Erwin_common.batch_stats ()
        | None -> Alcotest.fail "batcher never created"
      in
      checki "every record went through the batcher" 32 batched;
      checkb "coalesced (>1 record per flush)" true (flushes < batched);
      Engine.stop ())

let test_erwin_st_batched_end_to_end () =
  Engine.run (fun () ->
      let cfg =
        {
          Config.default with
          nshards = 2;
          append_batching = true;
          linger = Engine.us 20;
        }
      in
      let cluster = Erwin_st.create ~cfg () in
      let clients = Array.init 3 (fun _ -> Erwin_st.client cluster) in
      let done_ = ref 0 in
      for c = 0 to 2 do
        for i = 1 to 5 do
          Engine.spawn (fun () ->
              checkb "acked" true
                (clients.(c).Log_api.append ~size:100
                   ~data:(Printf.sprintf "%d.%d" c i));
              incr done_)
        done
      done;
      Engine.sleep (Engine.ms 5);
      checki "all acked" 15 !done_;
      checki "tail" 15 (clients.(0).Log_api.check_tail ());
      checki "read all" 15
        (List.length (clients.(0).Log_api.read ~from:0 ~len:15));
      (* appendSync rides the batcher too (track=true through the batch
         ingress) and still resolves to the next position. *)
      (match clients.(0).Log_api.append_sync with
      | Some f -> checki "sync position" 15 (f ~size:64 ~data:"s")
      | None -> Alcotest.fail "erwin-st offers append_sync");
      Engine.stop ())

let () =
  Alcotest.run "batch"
    [
      ( "seq_log",
        [
          Alcotest.test_case "partial duplicates, per-entry results" `Quick
            test_batch_partial_duplicates;
          Alcotest.test_case "cancelled batch appends nothing" `Quick
            test_batch_cancelled_appends_nothing;
          Alcotest.test_case "blocked batch cancels atomically" `Quick
            test_batch_blocks_then_cancels_atomically;
          Alcotest.test_case "blocked batch admitted whole" `Quick
            test_batch_admitted_whole_once_space_frees;
        ] );
      ( "wire",
        [
          Alcotest.test_case "partial duplicate acks per rid" `Quick
            test_wire_batch_partial_duplicate;
          Alcotest.test_case "wrong view / sealed refused" `Quick
            test_wire_batch_wrong_view_and_sealed;
          Alcotest.test_case "no half-ack across a seal" `Quick
            test_wire_batch_seal_while_waiting;
          Alcotest.test_case "batch registers tracked rids" `Quick
            test_wire_batch_tracks_rids;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "erwin-m coalesces concurrent appends" `Quick
            test_erwin_m_coalesces;
          Alcotest.test_case "erwin-st appends + sync via batcher" `Quick
            test_erwin_st_batched_end_to_end;
        ] );
    ]
