(* Tests for the simulated network: fabric delivery, FIFO links, fault
   injection, and the RPC layer. *)

open Ll_sim
open Ll_net

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_delivery_and_latency () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "hi";
      let t0 = Engine.now () in
      let src, m = Fabric.recv b in
      Alcotest.(check string) "payload" "hi" m;
      checki "sender" (Fabric.id a) src;
      let d = Engine.now () - t0 in
      (* one_way 1.5us + overheads 2x0.5us + jitter <= 0.3us *)
      checkb "delay plausible" true (d >= Engine.us 2 && d <= Engine.us 3))

let test_size_charged () =
  Engine.run (fun () ->
      let fab =
        Fabric.create
          ~link:{ Fabric.one_way = 1_000; per_byte_ns = 1.0; jitter = 0 }
          ()
      in
      let a = Fabric.add_node fab ~name:"a" ~send_overhead:0 ~recv_overhead:0 () in
      let b = Fabric.add_node fab ~name:"b" ~send_overhead:0 ~recv_overhead:0 () in
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:10_000 "big";
      ignore (Fabric.recv b);
      checki "10KB at 1ns/B + 1us" 11_000 (Engine.now ()))

let test_fifo_per_pair () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      (* A big message takes longer on the wire; a small one sent just
         after must still arrive second. *)
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:1_000_000 1;
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 2;
      let _, m1 = Fabric.recv b in
      let _, m2 = Fabric.recv b in
      Alcotest.(check (list int)) "fifo" [ 1; 2 ] [ m1; m2 ])

let test_crash_drops () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.crash fab b;
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "lost";
      Engine.sleep (Engine.ms 1);
      checki "inbox empty" 0 (Fabric.inbox_length b);
      Fabric.recover fab b;
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "kept";
      Engine.sleep (Engine.ms 1);
      checki "inbox has one" 1 (Fabric.inbox_length b))

let test_crash_in_flight () =
  (* A message in flight to a node that crashes before delivery is lost. *)
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "in-flight";
      Fabric.crash fab b;
      Engine.sleep (Engine.ms 1);
      Fabric.recover fab b;
      checki "lost" 0 (Fabric.inbox_length b))

let test_crash_resets_fifo_bookkeeping () =
  (* FIFO ordering is per (src, dst) pair, tracked by last-arrival time.
     A crash wipes the pair's in-flight traffic, so it must also wipe the
     bookkeeping: post-recovery messages start a fresh FIFO stream rather
     than queueing behind arrival times of messages that were lost. *)
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      (* Push b's last-arrival mark far into the future... *)
      Fabric.set_extra_delay b (Engine.ms 50);
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "slow";
      Fabric.set_extra_delay b 0;
      (* ...then lose that message to a crash. *)
      Fabric.crash fab b;
      Fabric.recover fab b;
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "fresh";
      Engine.sleep (Engine.ms 1);
      checki "fresh message not stuck behind lost traffic" 1
        (Fabric.inbox_length b);
      let _, m = Fabric.recv b in
      Alcotest.(check string) "payload" "fresh" m)

let test_partition () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.partition fab (Fabric.id a) (Fabric.id b);
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "blocked";
      Engine.sleep (Engine.ms 1);
      checki "partitioned" 0 (Fabric.inbox_length b);
      Fabric.heal fab (Fabric.id a) (Fabric.id b);
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "through";
      Engine.sleep (Engine.ms 1);
      checki "healed" 1 (Fabric.inbox_length b))

let test_link_fault_asymmetric () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.set_link_fault fab ~src:(Fabric.id a) ~dst:(Fabric.id b)
        ~delay:(Engine.ms 2) ();
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "slow";
      let t0 = Engine.now () in
      ignore (Fabric.recv b);
      checkb "faulted direction delayed" true (Engine.now () - t0 >= Engine.ms 2);
      (* The reverse direction of the same pair is untouched. *)
      Fabric.send fab ~src:b ~dst:(Fabric.id a) ~size:0 "fast";
      let t1 = Engine.now () in
      ignore (Fabric.recv a);
      checkb "reverse direction healthy" true (Engine.now () - t1 < Engine.ms 1);
      Fabric.clear_link_fault fab ~src:(Fabric.id a) ~dst:(Fabric.id b);
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "healed";
      let t2 = Engine.now () in
      ignore (Fabric.recv b);
      checkb "cleared fault restores latency" true
        (Engine.now () - t2 < Engine.ms 1))

let test_link_fault_one_way_partition () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.set_link_fault fab ~src:(Fabric.id a) ~dst:(Fabric.id b)
        ~drop_p:1.0 ();
      checkb "fault is introspectable" true
        (Fabric.link_fault fab ~src:(Fabric.id a) ~dst:(Fabric.id b)
        = Some (0, 1.0));
      for _ = 1 to 5 do
        Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "lost"
      done;
      Fabric.send fab ~src:b ~dst:(Fabric.id a) ~size:0 "through";
      Engine.sleep (Engine.ms 1);
      checki "forward direction fully dropped" 0 (Fabric.inbox_length b);
      checki "reverse direction delivers" 1 (Fabric.inbox_length a))

(* --- RPC --- *)

type req = Echo of int | Slow of int

let setup fab =
  let sn = Fabric.add_node fab ~name:"server" () in
  let cn = Fabric.add_node fab ~name:"client" () in
  let server = Rpc.endpoint fab sn in
  let client = Rpc.endpoint fab cn in
  (sn, server, client)

let test_rpc_roundtrip () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      Rpc.set_handler server (fun ~src:_ req ~reply ->
          match req with
          | Echo n -> reply (n * 2)
          | Slow n ->
            Engine.sleep (Engine.ms 5);
            reply n);
      checki "echo" 84 (Rpc.call client ~dst:(Fabric.id sn) (Echo 42)))

let test_rpc_service_time_serializes () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      Rpc.set_service_time server (fun _ -> Engine.us 10);
      Rpc.set_handler server (fun ~src:_ req ~reply ->
          match req with Echo n -> reply n | Slow n -> reply n);
      let t0 = Engine.now () in
      let ivs =
        List.init 10 (fun i -> Rpc.call_async client ~dst:(Fabric.id sn) (Echo i))
      in
      ignore (Ivar.join_all ivs);
      (* 10 requests x 10us serialized CPU >= 100us total. *)
      checkb "cpu serialized" true (Engine.now () - t0 >= Engine.us 100))

let test_rpc_blocking_handler_does_not_stall () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      Rpc.set_handler server (fun ~src:_ req ~reply ->
          match req with
          | Slow n ->
            Engine.sleep (Engine.ms 10);
            reply n
          | Echo n -> reply n);
      let slow = Rpc.call_async client ~dst:(Fabric.id sn) (Slow 1) in
      Engine.sleep (Engine.us 50);
      let t0 = Engine.now () in
      checki "fast passes slow" 2 (Rpc.call client ~dst:(Fabric.id sn) (Echo 2));
      checkb "fast was fast" true (Engine.now () - t0 < Engine.ms 1);
      checki "slow finishes" 1 (Ivar.read slow))

let test_rpc_timeout_and_retry () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      Rpc.set_handler server (fun ~src:_ req ~reply ->
          match req with Echo n -> reply n | Slow n -> reply n);
      Fabric.crash fab sn;
      checkb "timeout on crashed server" true
        (Rpc.call_timeout client ~dst:(Fabric.id sn) ~timeout:(Engine.ms 1)
           (Echo 1)
        = None);
      checkb "retry exhausts" true
        (Rpc.call_retry client ~dst:(Fabric.id sn) ~timeout:(Engine.ms 1)
           ~max_tries:2 (Echo 1)
        = None);
      Fabric.recover fab sn;
      checkb "retry succeeds after recovery" true
        (Rpc.call_retry client ~dst:(Fabric.id sn) ~timeout:(Engine.ms 1)
           (Echo 5)
        = Some 5))

let test_rpc_oneway () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      let got = ref 0 in
      Rpc.set_handler server (fun ~src:_ req ~reply:_ ->
          match req with Echo n -> got := n | Slow _ -> ());
      Rpc.send_oneway client ~dst:(Fabric.id sn) (Echo 7);
      Engine.sleep (Engine.ms 1);
      checki "delivered" 7 !got)

let test_rpc_timeout_cleans_pending () =
  (* Satellite of the gray-failure work: a timed-out call must remove its
     pending-table entry (and count a timeout), not leak it until a
     response that may never come. *)
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      Rpc.set_handler server (fun ~src:_ req ~reply ->
          match req with Echo n -> reply n | Slow n -> reply n);
      let before = Rpc.counters () in
      Fabric.crash fab sn;
      checkb "timed out" true
        (Rpc.call_timeout client ~dst:(Fabric.id sn) ~timeout:(Engine.ms 1)
           (Echo 1)
        = None);
      checki "pending table drained on expiry" 0 (Rpc.pending_calls client);
      Fabric.recover fab sn;
      checki "later call unaffected" 2
        (Rpc.call client ~dst:(Fabric.id sn) (Echo 2));
      checki "pending table drained on completion" 0
        (Rpc.pending_calls client);
      let d = Rpc.counters_diff ~before ~after:(Rpc.counters ()) in
      checki "timeout counted" 1 d.Rpc.cs_timeouts)

let test_rpc_retry_backoff_schedule () =
  (* Exponential backoff with seeded jitter: attempt n sleeps
     base/2 + jitter with base = backoff * 2^min(n, 6) and
     jitter in [0, base). With 12 tries against a dead peer the capped
     base sum over the 11 sleeps is 383 * backoff, so total elapsed sits
     in [12*timeout + 191.5b, 12*timeout + 574.5b) — the uncapped
     schedule's minimum (1023.5b) lies far above the upper bound, so the
     bound also proves the 2^6 cap held. *)
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, _server, client = setup fab in
      Fabric.crash fab sn;
      let timeout = Engine.us 100 and backoff = Engine.us 100 in
      let t0 = Engine.now () in
      checkb "exhausts against dead peer" true
        (Rpc.call_retry client ~dst:(Fabric.id sn) ~timeout ~max_tries:12
           ~backoff (Echo 1)
        = None);
      let elapsed = Engine.now () - t0 in
      let lo = (12 * timeout) + (383 * backoff / 2) in
      let hi = (12 * timeout) + (3 * 383 * backoff / 2) in
      checkb "elapsed above jitter lower bound" true (elapsed >= lo);
      checkb "elapsed below capped upper bound" true (elapsed < hi))

let test_rpc_retry_budget_sheds () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, _server, client = setup fab in
      Fabric.crash fab sn;
      (* ratio 0: nothing refills, so the two initial tokens are all the
         retries this budget will ever allow. *)
      let budget = Rpc.Retry_budget.create ~ratio:0.0 ~cap:2.0 () in
      let before = Rpc.counters () in
      (match
         Rpc.call_retry_result client ~dst:(Fabric.id sn)
           ~timeout:(Engine.us 100) ~max_tries:10 ~budget (Echo 1)
       with
      | `Shed -> ()
      | `Ok _ -> Alcotest.fail "call succeeded against a crashed peer"
      | `Timeout -> Alcotest.fail "expected `Shed, got `Timeout");
      checkb "budget exhausted" true (Rpc.Retry_budget.tokens budget < 1.0);
      (* An empty budget still sends first attempts — only retries shed. *)
      (match
         Rpc.call_retry_result client ~dst:(Fabric.id sn)
           ~timeout:(Engine.us 100) ~max_tries:10 ~budget (Echo 2)
       with
      | `Shed -> ()
      | `Ok _ | `Timeout -> Alcotest.fail "expected `Shed on empty budget");
      let d = Rpc.counters_diff ~before ~after:(Rpc.counters ()) in
      checki "exactly the two budgeted retries ran" 2 d.Rpc.cs_retries;
      checki "both calls shed" 2 d.Rpc.cs_shed)

let test_rpc_hedged_second_wins () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let s1 = Fabric.add_node fab ~name:"s1" () in
      let s2 = Fabric.add_node fab ~name:"s2" () in
      let cn = Fabric.add_node fab ~name:"c" () in
      let e1 = Rpc.endpoint fab s1 in
      let e2 = Rpc.endpoint fab s2 in
      let client = Rpc.endpoint fab cn in
      Rpc.set_handler e1 (fun ~src:_ req ~reply ->
          match req with
          | Slow n ->
            Engine.sleep (Engine.ms 5);
            reply n
          | Echo n -> reply n);
      Rpc.set_handler e2 (fun ~src:_ req ~reply ->
          match req with Slow n -> reply (n + 100) | Echo n -> reply n);
      let before = Rpc.counters () in
      (match
         Rpc.call_hedged client
           ~dsts:[ Fabric.id s1; Fabric.id s2 ]
           ~timeout:(Engine.ms 20) ~hedge_after:(Engine.us 100) (Slow 1)
       with
      | Some (r, winner) ->
        checki "hedge's response won" 101 r;
        checki "winner is the hedge peer" (Fabric.id s2) winner
      | None -> Alcotest.fail "hedged call returned None");
      let d = Rpc.counters_diff ~before ~after:(Rpc.counters ()) in
      checki "hedge fired" 1 d.Rpc.cs_hedges_fired;
      checki "hedge win counted" 1 d.Rpc.cs_hedges_won)

let test_rpc_hedged_primary_win_cancels_timer () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let s1 = Fabric.add_node fab ~name:"s1" () in
      let s2 = Fabric.add_node fab ~name:"s2" () in
      let cn = Fabric.add_node fab ~name:"c" () in
      let e1 = Rpc.endpoint fab s1 in
      let e2 = Rpc.endpoint fab s2 in
      let client = Rpc.endpoint fab cn in
      let served_by_2 = ref false in
      Rpc.set_handler e1 (fun ~src:_ req ~reply ->
          match req with Echo n -> reply n | Slow n -> reply n);
      Rpc.set_handler e2 (fun ~src:_ req ~reply ->
          served_by_2 := true;
          match req with Echo n -> reply n | Slow n -> reply n);
      let cancelled0 = Engine.timers_cancelled () in
      let before = Rpc.counters () in
      (match
         Rpc.call_hedged client
           ~dsts:[ Fabric.id s1; Fabric.id s2 ]
           ~timeout:(Engine.ms 20) ~hedge_after:(Engine.ms 5) (Echo 7)
       with
      | Some (r, winner) ->
        checki "primary's response" 7 r;
        checki "primary won" (Fabric.id s1) winner
      | None -> Alcotest.fail "hedged call returned None");
      Engine.sleep (Engine.ms 10);
      let d = Rpc.counters_diff ~before ~after:(Rpc.counters ()) in
      checki "no hedge fired" 0 d.Rpc.cs_hedges_fired;
      checkb "second peer never contacted" false !served_by_2;
      checkb "hedge timer was cancelled, not fired" true
        (Engine.timers_cancelled () > cancelled0))

let test_rpc_peer_scoring () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      Rpc.set_handler server (fun ~src:_ req ~reply ->
          match req with Echo n -> reply n | Slow n -> reply n);
      checkb "no score before any sample" true
        (Rpc.peer_score client (Fabric.id sn) = None);
      for i = 1 to 10 do
        ignore (Rpc.call client ~dst:(Fabric.id sn) (Echo i))
      done;
      checki "samples recorded by the demux" 10
        (Rpc.peer_samples client (Fabric.id sn));
      (match Rpc.peer_score client (Fabric.id sn) with
      | Some s ->
        checkb "score in the rtt ballpark" true
          (s > 0.0 && s < float_of_int (Engine.us 100))
      | None -> Alcotest.fail "expected a score after 10 samples");
      let dl =
        Rpc.hedge_deadline client ~dsts:[ Fabric.id sn ] ~floor:(Engine.us 1)
      in
      checkb "adaptive deadline above floor" true (dl >= Engine.us 1);
      Rpc.forget_peer client (Fabric.id sn);
      checkb "forgotten" true (Rpc.peer_score client (Fabric.id sn) = None);
      checki "deadline falls back to floor once forgotten" (Engine.us 5)
        (Rpc.hedge_deadline client ~dsts:[ Fabric.id sn ]
           ~floor:(Engine.us 5)))

let test_drop_probability () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.set_drop_probability fab 0.5;
      for _ = 1 to 200 do
        Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 ()
      done;
      Engine.sleep (Engine.ms 5);
      let n = Fabric.inbox_length b in
      checkb "roughly half dropped" true (n > 60 && n < 140))

let () =
  Alcotest.run "net"
    [
      ( "fabric",
        [
          Alcotest.test_case "delivery and latency" `Quick
            test_delivery_and_latency;
          Alcotest.test_case "per-byte cost" `Quick test_size_charged;
          Alcotest.test_case "fifo per pair" `Quick test_fifo_per_pair;
          Alcotest.test_case "crash drops traffic" `Quick test_crash_drops;
          Alcotest.test_case "crash loses in-flight" `Quick
            test_crash_in_flight;
          Alcotest.test_case "crash resets FIFO bookkeeping" `Quick
            test_crash_resets_fifo_bookkeeping;
          Alcotest.test_case "partition/heal" `Quick test_partition;
          Alcotest.test_case "drop probability" `Quick test_drop_probability;
          Alcotest.test_case "link fault is asymmetric" `Quick
            test_link_fault_asymmetric;
          Alcotest.test_case "link fault one-way partition" `Quick
            test_link_fault_one_way_partition;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "service time serializes" `Quick
            test_rpc_service_time_serializes;
          Alcotest.test_case "blocking handler does not stall" `Quick
            test_rpc_blocking_handler_does_not_stall;
          Alcotest.test_case "timeout and retry" `Quick
            test_rpc_timeout_and_retry;
          Alcotest.test_case "oneway" `Quick test_rpc_oneway;
          Alcotest.test_case "timeout cleans pending table" `Quick
            test_rpc_timeout_cleans_pending;
          Alcotest.test_case "retry backoff schedule (jitter, 2^6 cap)"
            `Quick test_rpc_retry_backoff_schedule;
          Alcotest.test_case "retry budget sheds, never raises" `Quick
            test_rpc_retry_budget_sheds;
          Alcotest.test_case "hedged call: hedge wins" `Quick
            test_rpc_hedged_second_wins;
          Alcotest.test_case "hedged call: primary win cancels timer"
            `Quick test_rpc_hedged_primary_win_cancels_timer;
          Alcotest.test_case "peer latency scoring" `Quick
            test_rpc_peer_scoring;
        ] );
    ]
