(* Tests for the simulated network: fabric delivery, FIFO links, fault
   injection, and the RPC layer. *)

open Ll_sim
open Ll_net

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_delivery_and_latency () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "hi";
      let t0 = Engine.now () in
      let src, m = Fabric.recv b in
      Alcotest.(check string) "payload" "hi" m;
      checki "sender" (Fabric.id a) src;
      let d = Engine.now () - t0 in
      (* one_way 1.5us + overheads 2x0.5us + jitter <= 0.3us *)
      checkb "delay plausible" true (d >= Engine.us 2 && d <= Engine.us 3))

let test_size_charged () =
  Engine.run (fun () ->
      let fab =
        Fabric.create
          ~link:{ Fabric.one_way = 1_000; per_byte_ns = 1.0; jitter = 0 }
          ()
      in
      let a = Fabric.add_node fab ~name:"a" ~send_overhead:0 ~recv_overhead:0 () in
      let b = Fabric.add_node fab ~name:"b" ~send_overhead:0 ~recv_overhead:0 () in
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:10_000 "big";
      ignore (Fabric.recv b);
      checki "10KB at 1ns/B + 1us" 11_000 (Engine.now ()))

let test_fifo_per_pair () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      (* A big message takes longer on the wire; a small one sent just
         after must still arrive second. *)
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:1_000_000 1;
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 2;
      let _, m1 = Fabric.recv b in
      let _, m2 = Fabric.recv b in
      Alcotest.(check (list int)) "fifo" [ 1; 2 ] [ m1; m2 ])

let test_crash_drops () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.crash fab b;
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "lost";
      Engine.sleep (Engine.ms 1);
      checki "inbox empty" 0 (Fabric.inbox_length b);
      Fabric.recover fab b;
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "kept";
      Engine.sleep (Engine.ms 1);
      checki "inbox has one" 1 (Fabric.inbox_length b))

let test_crash_in_flight () =
  (* A message in flight to a node that crashes before delivery is lost. *)
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "in-flight";
      Fabric.crash fab b;
      Engine.sleep (Engine.ms 1);
      Fabric.recover fab b;
      checki "lost" 0 (Fabric.inbox_length b))

let test_crash_resets_fifo_bookkeeping () =
  (* FIFO ordering is per (src, dst) pair, tracked by last-arrival time.
     A crash wipes the pair's in-flight traffic, so it must also wipe the
     bookkeeping: post-recovery messages start a fresh FIFO stream rather
     than queueing behind arrival times of messages that were lost. *)
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      (* Push b's last-arrival mark far into the future... *)
      Fabric.set_extra_delay b (Engine.ms 50);
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "slow";
      Fabric.set_extra_delay b 0;
      (* ...then lose that message to a crash. *)
      Fabric.crash fab b;
      Fabric.recover fab b;
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "fresh";
      Engine.sleep (Engine.ms 1);
      checki "fresh message not stuck behind lost traffic" 1
        (Fabric.inbox_length b);
      let _, m = Fabric.recv b in
      Alcotest.(check string) "payload" "fresh" m)

let test_partition () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.partition fab (Fabric.id a) (Fabric.id b);
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "blocked";
      Engine.sleep (Engine.ms 1);
      checki "partitioned" 0 (Fabric.inbox_length b);
      Fabric.heal fab (Fabric.id a) (Fabric.id b);
      Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 "through";
      Engine.sleep (Engine.ms 1);
      checki "healed" 1 (Fabric.inbox_length b))

(* --- RPC --- *)

type req = Echo of int | Slow of int

let setup fab =
  let sn = Fabric.add_node fab ~name:"server" () in
  let cn = Fabric.add_node fab ~name:"client" () in
  let server = Rpc.endpoint fab sn in
  let client = Rpc.endpoint fab cn in
  (sn, server, client)

let test_rpc_roundtrip () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      Rpc.set_handler server (fun ~src:_ req ~reply ->
          match req with
          | Echo n -> reply (n * 2)
          | Slow n ->
            Engine.sleep (Engine.ms 5);
            reply n);
      checki "echo" 84 (Rpc.call client ~dst:(Fabric.id sn) (Echo 42)))

let test_rpc_service_time_serializes () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      Rpc.set_service_time server (fun _ -> Engine.us 10);
      Rpc.set_handler server (fun ~src:_ req ~reply ->
          match req with Echo n -> reply n | Slow n -> reply n);
      let t0 = Engine.now () in
      let ivs =
        List.init 10 (fun i -> Rpc.call_async client ~dst:(Fabric.id sn) (Echo i))
      in
      ignore (Ivar.join_all ivs);
      (* 10 requests x 10us serialized CPU >= 100us total. *)
      checkb "cpu serialized" true (Engine.now () - t0 >= Engine.us 100))

let test_rpc_blocking_handler_does_not_stall () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      Rpc.set_handler server (fun ~src:_ req ~reply ->
          match req with
          | Slow n ->
            Engine.sleep (Engine.ms 10);
            reply n
          | Echo n -> reply n);
      let slow = Rpc.call_async client ~dst:(Fabric.id sn) (Slow 1) in
      Engine.sleep (Engine.us 50);
      let t0 = Engine.now () in
      checki "fast passes slow" 2 (Rpc.call client ~dst:(Fabric.id sn) (Echo 2));
      checkb "fast was fast" true (Engine.now () - t0 < Engine.ms 1);
      checki "slow finishes" 1 (Ivar.read slow))

let test_rpc_timeout_and_retry () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      Rpc.set_handler server (fun ~src:_ req ~reply ->
          match req with Echo n -> reply n | Slow n -> reply n);
      Fabric.crash fab sn;
      checkb "timeout on crashed server" true
        (Rpc.call_timeout client ~dst:(Fabric.id sn) ~timeout:(Engine.ms 1)
           (Echo 1)
        = None);
      checkb "retry exhausts" true
        (Rpc.call_retry client ~dst:(Fabric.id sn) ~timeout:(Engine.ms 1)
           ~max_tries:2 (Echo 1)
        = None);
      Fabric.recover fab sn;
      checkb "retry succeeds after recovery" true
        (Rpc.call_retry client ~dst:(Fabric.id sn) ~timeout:(Engine.ms 1)
           (Echo 5)
        = Some 5))

let test_rpc_oneway () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let sn, server, client = setup fab in
      let got = ref 0 in
      Rpc.set_handler server (fun ~src:_ req ~reply:_ ->
          match req with Echo n -> got := n | Slow _ -> ());
      Rpc.send_oneway client ~dst:(Fabric.id sn) (Echo 7);
      Engine.sleep (Engine.ms 1);
      checki "delivered" 7 !got)

let test_drop_probability () =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" () in
      let b = Fabric.add_node fab ~name:"b" () in
      Fabric.set_drop_probability fab 0.5;
      for _ = 1 to 200 do
        Fabric.send fab ~src:a ~dst:(Fabric.id b) ~size:0 ()
      done;
      Engine.sleep (Engine.ms 5);
      let n = Fabric.inbox_length b in
      checkb "roughly half dropped" true (n > 60 && n < 140))

let () =
  Alcotest.run "net"
    [
      ( "fabric",
        [
          Alcotest.test_case "delivery and latency" `Quick
            test_delivery_and_latency;
          Alcotest.test_case "per-byte cost" `Quick test_size_charged;
          Alcotest.test_case "fifo per pair" `Quick test_fifo_per_pair;
          Alcotest.test_case "crash drops traffic" `Quick test_crash_drops;
          Alcotest.test_case "crash loses in-flight" `Quick
            test_crash_in_flight;
          Alcotest.test_case "crash resets FIFO bookkeeping" `Quick
            test_crash_resets_fifo_bookkeeping;
          Alcotest.test_case "partition/heal" `Quick test_partition;
          Alcotest.test_case "drop probability" `Quick test_drop_probability;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "service time serializes" `Quick
            test_rpc_service_time_serializes;
          Alcotest.test_case "blocking handler does not stall" `Quick
            test_rpc_blocking_handler_does_not_stall;
          Alcotest.test_case "timeout and retry" `Quick
            test_rpc_timeout_and_retry;
          Alcotest.test_case "oneway" `Quick test_rpc_oneway;
        ] );
    ]
