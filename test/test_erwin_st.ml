(* End-to-end tests for Erwin-st: data/metadata separation, the
   position-to-shard map, client-failure no-op repair, backup backfill,
   orphan scrubbing, and seamless shard addition. *)

open Ll_sim
open Ll_net
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let with_cluster ?(cfg = { Config.default with Config.nshards = 3 }) f =
  Engine.run (fun () ->
      let cluster = Erwin_st.create ~cfg () in
      f cluster;
      Engine.stop ())

let test_roundtrip_across_shards () =
  with_cluster (fun cluster ->
      let log = Erwin_st.client cluster in
      for i = 1 to 60 do
        checkb "acked" true (log.append ~size:4096 ~data:(string_of_int i))
      done;
      let records = log.read ~from:0 ~len:60 in
      checki "all read" 60 (List.length records);
      List.iteri
        (fun i (r : Types.record) ->
          Alcotest.(check string) "in order" (string_of_int (i + 1)) r.data)
        records)

let test_data_lands_on_chosen_shards () =
  with_cluster (fun cluster ->
      let log = Erwin_st.client cluster in
      for i = 1 to 30 do
        ignore (log.append ~size:1024 ~data:(string_of_int i))
      done;
      Engine.sleep (Engine.ms 3);
      (* Round-robin clients spread records over all shards. *)
      List.iter
        (fun shard ->
          checkb
            (Printf.sprintf "shard %d holds data" (Shard.shard_id shard))
            true
            (List.length (Shard.bound_positions shard) > 0))
        cluster.shards;
      (* And the union covers every position exactly once. *)
      let all =
        List.concat_map (fun s -> Shard.bound_positions s) cluster.shards
      in
      checki "total bound" 30 (List.length all);
      let positions = List.map fst all |> List.sort_uniq compare in
      checki "dense positions" 30 (List.length positions))

let test_map_cache_read_one_fetch () =
  with_cluster (fun cluster ->
      let log = Erwin_st.client cluster in
      for i = 1 to 50 do
        ignore (log.append ~size:512 ~data:(string_of_int i))
      done;
      Engine.sleep (Engine.ms 3);
      (* First read warms the cache; a second read of nearby positions
         must not be slower (cache hit). *)
      ignore (log.read ~from:0 ~len:10);
      let t0 = Engine.now () in
      ignore (log.read ~from:10 ~len:10);
      let cached = Engine.now () - t0 in
      checkb "cached read quick" true (cached < Engine.us 40))

let test_appends_survive_and_are_durable () =
  with_cluster (fun cluster ->
      let n_writers = 6 in
      let done_ = ref 0 in
      for w = 0 to n_writers - 1 do
        let log = Erwin_st.client cluster in
        Engine.spawn (fun () ->
            for i = 1 to 30 do
              ignore (log.append ~size:2048 ~data:(Printf.sprintf "%d-%d" w i))
            done;
            incr done_)
      done;
      let wq = Waitq.create () in
      ignore
        (Waitq.await_timeout wq ~timeout:(Engine.ms 100) (fun () ->
             !done_ = n_writers));
      Engine.sleep (Engine.ms 5);
      let log = Erwin_st.client cluster in
      let tail = log.check_tail () in
      checki "all durable" (n_writers * 30) tail;
      let records = log.read ~from:0 ~len:tail in
      let seen = Hashtbl.create 256 in
      List.iter
        (fun (r : Types.record) ->
          checkb "unique" false (Hashtbl.mem seen r.data);
          Hashtbl.replace seen r.data ())
        records;
      checki "none lost" tail (Hashtbl.length seen))

(* A client that writes metadata but dies before the data reaches the
   shard: the binding must resolve to a no-op after the wait timeout
   (section 5.4), and reads must skip it. *)
let test_client_failure_noop () =
  let cfg =
    {
      Config.default with
      Config.nshards = 1;
      data_wait_timeout = Engine.us 200;
    }
  in
  with_cluster ~cfg (fun cluster ->
      (* Craft the failure: send metadata directly without data. *)
      let ep = Erwin_common.new_endpoint cluster ~name:"evil-client" in
      let rid = { Types.Rid.client = 999; seq = 1 } in
      let meta = Types.Meta { rid; shard = 0; size = 100; log = 0 } in
      let req = Proto.Sr_append { view = cluster.view; entry = meta; track = false } in
      let ivs =
        List.map
          (fun r -> Rpc.call_async ep ~dst:(Seq_replica.node_id r) req)
          cluster.replicas
      in
      ignore (Ivar.join_all ivs);
      (* A normal append after it. *)
      let log = Erwin_st.client cluster in
      ignore (log.append ~size:100 ~data:"real");
      Engine.sleep (Engine.ms 5);
      checki "both bound" 2 cluster.stable_gp;
      let shard = List.hd cluster.shards in
      (match Shard.read_local shard 0 with
      | Some r -> checkb "position 0 is a no-op" true (Types.is_no_op r)
      | None -> Alcotest.fail "position 0 missing");
      (* Late data for the no-op'ed rid is rejected. *)
      let late = Types.record ~rid ~size:100 ~data:"late" () in
      (match
         Rpc.call ep ~dst:(Shard.primary_id shard)
           (Proto.Ssh_data_write { record = late })
       with
      | Proto.R_append { ok; _ } -> checkb "late write rejected" false ok
      | _ -> Alcotest.fail "bad response");
      (* Readers see the no-op marker and can skip it. *)
      let records = log.read ~from:0 ~len:2 in
      checki "read returns both positions" 2 (List.length records);
      checkb "first is no-op" true (Types.is_no_op (List.hd records)))

let test_orphan_scrubbing () =
  (* Data without metadata (the other client-failure case) is garbage
     collected by the scrubber. *)
  let cfg = { Config.default with Config.nshards = 1 } in
  Engine.run (fun () ->
      let cluster = Erwin_common.create ~cfg ~mode:Erwin_common.St in
      let shard = List.hd cluster.shards in
      Shard.start_scrubber shard ~age:(Engine.ms 1) ~every:(Engine.ms 1);
      let ep = Erwin_common.new_endpoint cluster ~name:"orphan-client" in
      let rid = { Types.Rid.client = 998; seq = 1 } in
      let record = Types.record ~rid ~size:100 ~data:"orphan" () in
      List.iter
        (fun dst ->
          ignore (Rpc.call ep ~dst (Proto.Ssh_data_write { record })))
        (Shard.replica_ids shard);
      checki "staged" 1 (Shard.staged_count shard);
      Engine.sleep (Engine.ms 5);
      checki "scrubbed" 0 (Shard.staged_count shard);
      Engine.stop ())

let test_seamless_shard_addition () =
  with_cluster (fun cluster ->
      let log = Erwin_st.client cluster in
      for i = 1 to 20 do
        ignore (log.append ~size:512 ~data:("a" ^ string_of_int i))
      done;
      let before = List.length cluster.shards in
      ignore (Erwin_common.add_shard cluster : Shard.t);
      checki "one more shard" (before + 1) (List.length cluster.shards);
      (* New clients immediately use it; appends keep working and the log
         stays contiguous. *)
      let log2 = Erwin_st.client cluster in
      for i = 1 to 20 do
        ignore (log2.append ~size:512 ~data:("b" ^ string_of_int i))
      done;
      Engine.sleep (Engine.ms 5);
      let new_shard = List.nth cluster.shards before in
      checkb "new shard received records" true
        (List.length (Shard.bound_positions new_shard) > 0);
      let records = log.read ~from:0 ~len:40 in
      checki "contiguous log" 40 (List.length records))

let test_read_batch_spanning_shards () =
  with_cluster (fun cluster ->
      let log = Erwin_st.client cluster in
      for i = 1 to 25 do
        ignore (log.append ~size:512 ~data:(string_of_int i))
      done;
      (* Reading 25 at a time, as in the paper's section 6.7. *)
      let records = log.read ~from:0 ~len:25 in
      checki "25 records" 25 (List.length records))

let () =
  Alcotest.run "erwin-st"
    [
      ( "basics",
        [
          Alcotest.test_case "roundtrip across shards" `Quick
            test_roundtrip_across_shards;
          Alcotest.test_case "data on chosen shards" `Quick
            test_data_lands_on_chosen_shards;
          Alcotest.test_case "map cache" `Quick test_map_cache_read_one_fetch;
          Alcotest.test_case "batch read spanning shards" `Quick
            test_read_batch_spanning_shards;
        ] );
      ( "failures",
        [
          Alcotest.test_case "client failure -> no-op" `Quick
            test_client_failure_noop;
          Alcotest.test_case "orphan scrubbing" `Quick test_orphan_scrubbing;
        ] );
      ( "elasticity",
        [
          Alcotest.test_case "concurrent writers durable" `Quick
            test_appends_survive_and_are_durable;
          Alcotest.test_case "seamless shard addition" `Quick
            test_seamless_shard_addition;
        ] );
    ]
