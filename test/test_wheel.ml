(* Scheduler equivalence: the timer wheel must execute the exact same
   event sequence as the reference heap. The engine's order contract is
   the total order (at, tie, seq) — seq is unique, so any correct
   scheduler produces one identical execution. We check this two ways:

   - a randomized program generator (sleeps spanning every wheel level
     and the overflow heap, fiber timers, bare callbacks, nested spawns,
     suspend/wake, past-time clamping, cancellable timers racing
     cancellers, timed waits whose normal wake cancels the deadline)
     traced under both schedulers across many master seeds, with and
     without tie perturbation. Unperturbed wheel runs take the batched
     slot-drain path and the same-instant tie buckets force multi-cell
     batches, so this property also pins batched resumption — and
     cancellation mid-batch — to the reference schedule;

   - a small erwin-m cluster workload whose latency statistics, message
     counts and ordering progress must be bit-identical under both. *)

open Ll_sim

(* --- randomized program equivalence --- *)

(* One trace entry per observable step: (sim time, actor id, step no). The
   list is in execution order, so comparing traces compares the schedule
   itself, not just final state. *)
type trace = (Engine.time * int * int) list

let delay rng =
  (* Spread delays across wheel levels: level 0 (ns..us), level 1 (us..ms),
     level 2 (ms..s), and past the level-2 cycle (~8.6 s) into the
     overflow heap. Bucket 4 forces same-instant ties. *)
  match Random.State.int rng 8 with
  | 0 -> 1 + Random.State.int rng 60
  | 1 -> Engine.us (1 + Random.State.int rng 100)
  | 2 -> Engine.ms (1 + Random.State.int rng 30)
  | 3 -> Engine.ms (100 * (1 + Random.State.int rng 9))
  | 4 -> Engine.us 10
  | 5 -> Engine.sec (1 + Random.State.int rng 5)
  | 6 -> Engine.sec (9 + Random.State.int rng 25)
  | _ -> 0

let run_program sched ~perturb ~seed : trace * int * int =
  Engine.set_scheduler sched;
  let trace = ref [] in
  Engine.run ~seed ~perturb (fun () ->
      (* Program shape depends only on [seed], drawn from a private
         stream so it is identical across schedulers. *)
      let rng = Random.State.make [| seed; 0x7ee1 |] in
      let emit actor step = trace := (Engine.now (), actor, step) :: !trace in
      (* Sleeping fibers. *)
      for i = 1 to 12 do
        let steps = 1 + Random.State.int rng 4 in
        let delays = List.init steps (fun _ -> delay rng) in
        Engine.spawn (fun () ->
            List.iteri
              (fun j d ->
                Engine.sleep d;
                emit i j)
              delays)
      done;
      (* Fiber timers and bare callbacks, including nested re-arming. *)
      for i = 1 to 12 do
        let d = delay rng in
        let d2 = delay rng in
        match Random.State.int rng 3 with
        | 0 -> Engine.after d (fun () -> emit (100 + i) 0)
        | 1 -> Engine.call_after d (fun () -> emit (200 + i) 0)
        | _ ->
          Engine.call_after d (fun () ->
              emit (300 + i) 0;
              Engine.call_after d2 (fun () -> emit (300 + i) 1))
      done;
      (* Suspend/wake pair: a fiber parks, a timer wakes it. *)
      let d = delay rng in
      Engine.spawn (fun () ->
          let v =
            Engine.suspend (fun w ->
                Engine.call_after d (fun () -> ignore (Engine.wake w 7)))
          in
          emit 400 v);
      (* Past-time clamping. *)
      Engine.spawn (fun () ->
          Engine.sleep (Engine.us 3);
          Engine.at 0 (fun () -> emit 500 0);
          Engine.sleep_until 0;
          emit 500 1);
      (* Nested spawn from a timer context. *)
      Engine.after (delay rng) (fun () ->
          emit 600 0;
          Engine.spawn (fun () ->
              Engine.sleep (delay rng);
              emit 600 1));
      (* Cancellable timers racing cancellers. The cancel outcome — did
         the cancel win, or had the timer already fired? — is part of the
         trace, so both schedulers must agree on every race, including
         same-instant ones (bucket-4 delays make d = dc common): a
         same-time later-seq timer is still pending when the canceller
         runs and must be cancellable under both schedulers. *)
      for i = 1 to 12 do
        let d = delay rng in
        let dc = delay rng in
        let tok = Engine.timer_after d (fun () -> emit (700 + i) 0) in
        match Random.State.int rng 4 with
        | 0 ->
          Engine.call_after dc (fun () ->
              emit (700 + i) (if Engine.cancel tok then 1 else 2))
        | 1 ->
          (* double cancel: the second must lose under both schedulers *)
          Engine.call_after dc (fun () ->
              let a = Engine.cancel tok in
              let b = Engine.cancel tok in
              emit (700 + i) ((if a then 1 else 2) + if b then 10 else 20))
        | 2 -> () (* timer just fires *)
        | _ ->
          Engine.spawn (fun () ->
              Engine.sleep dc;
              emit (700 + i) (if Engine.cancel tok then 3 else 4))
      done;
      (* Timed waits: a message racing a timeout. A normal wake cancels
         the deadline cell; a timeout fires it. Either way the observable
         value and the executed-event count must match the reference. *)
      for i = 1 to 6 do
        let dmsg = delay rng in
        let dto = delay rng in
        let mb = Mailbox.create () in
        Engine.call_after dmsg (fun () -> Mailbox.send mb i);
        Engine.spawn (fun () ->
            match Mailbox.recv_timeout mb ~timeout:dto with
            | Some v -> emit (800 + i) v
            | None -> emit (800 + i) (-1))
      done);
  (List.rev !trace, Engine.events_executed (), Engine.timers_cancelled ())

let test_equivalence ~perturb () =
  let prev = Engine.scheduler () in
  Fun.protect
    ~finally:(fun () -> Engine.set_scheduler prev)
    (fun () ->
      for seed = 1 to 100 do
        let th, eh, ch = run_program `Heap ~perturb ~seed in
        let tw, ew, cw = run_program `Wheel ~perturb ~seed in
        if th <> tw then begin
          let len = List.length in
          List.iteri
            (fun i ((ta, aa, sa) as a) ->
              match List.nth_opt tw i with
              | Some b when a = b -> ()
              | Some (tb, ab, sb) ->
                Alcotest.failf
                  "seed %d: traces diverge at step %d: heap (%d,%d,%d) vs \
                   wheel (%d,%d,%d)"
                  seed i ta aa sa tb ab sb
              | None ->
                Alcotest.failf "seed %d: wheel trace shorter (%d vs %d)" seed
                  (len tw) (len th))
            th;
          Alcotest.failf "seed %d: wheel trace longer (%d vs %d)" seed
            (len tw) (len th)
        end;
        if eh <> ew then
          Alcotest.failf "seed %d: events_executed heap=%d wheel=%d" seed eh
            ew;
        if ch <> cw then
          Alcotest.failf "seed %d: timers_cancelled heap=%d wheel=%d" seed ch
            cw
      done)

(* --- cluster workload equivalence --- *)

(* A full erwin-m append run exercises the entire stack (fabric hops,
   mailboxes, timeouts, batching) on top of the scheduler. All statistics
   derived from the schedule must match exactly. *)

let cluster_run sched =
  Engine.set_scheduler sched;
  Ll_workload.Runner.in_sim ~seed:42 (fun () ->
      let cfg = Lazylog.Config.default in
      let cluster = Lazylog.Erwin_m.create ~cfg () in
      let r =
        Ll_workload.Runner.append_workload ~seed:7 ~clients:4 ~size:512
          ~warmup:(Engine.ms 2)
          ~log_factory:(fun () -> Lazylog.Erwin_m.client cluster)
          ~rate:20_000.0 ~duration:(Engine.ms 30) ()
      in
      let lat = r.Ll_workload.Runner.latency in
      ( Stats.Reservoir.count lat,
        Stats.Reservoir.mean_us lat,
        Stats.Reservoir.percentile_us lat 99.0,
        Ll_net.Fabric.messages_sent cluster.Lazylog.Erwin_common.fabric,
        cluster.Lazylog.Erwin_common.stable_gp ))

let test_cluster_equivalence () =
  let prev = Engine.scheduler () in
  Fun.protect
    ~finally:(fun () -> Engine.set_scheduler prev)
    (fun () ->
      let ch, mh, ph, sh, gh = cluster_run `Heap in
      let cw, mw, pw, sw, gw = cluster_run `Wheel in
      Alcotest.(check int) "latency samples" ch cw;
      Alcotest.(check (float 0.0)) "mean latency" mh mw;
      Alcotest.(check (float 0.0)) "p99 latency" ph pw;
      Alcotest.(check int) "messages sent" sh sw;
      Alcotest.(check int) "stable-gp" gh gw)

let () =
  Alcotest.run "wheel"
    [
      ( "equivalence",
        [
          Alcotest.test_case "100 seeds, no perturb" `Quick
            (test_equivalence ~perturb:false);
          Alcotest.test_case "100 seeds, perturbed ties" `Quick
            (test_equivalence ~perturb:true);
          Alcotest.test_case "erwin-m cluster stats identical" `Quick
            test_cluster_equivalence;
        ] );
    ]
