(* Tests for the demand-driven read path: read-triggered eager binding
   (a parked tail read wakes the lazy orderer via Sr_order_demand),
   parked readers surviving a sequencing-layer view change, replica read
   scale-out (round-robin service, backup forwarding for unbound
   positions, stable piggybacking), and scan readahead. *)

open Ll_sim
open Ll_net
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkstr = Alcotest.(check string)

(* A deliberately lazy ordering cadence: without demand binding, a read
   just past stable waits ~20 ms for the next background pass. *)
let lazy_cfg ~read_demand =
  {
    Config.default with
    Config.nshards = 2;
    order_interval = Engine.ms 20;
    read_demand;
  }

let append_n (log : Log_api.t) n =
  for i = 1 to n do
    checkb "acked" true (log.append ~size:256 ~data:(string_of_int i))
  done

(* --- read-triggered eager binding --- *)

let test_demand_wakes_parked_read () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg:(lazy_cfg ~read_demand:true) () in
      let log = Erwin_m.client cluster in
      append_n log 5;
      let t0 = Engine.now () in
      (match log.read ~from:4 ~len:1 with
      | [ r ] -> checkstr "tail record" "5" r.Types.data
      | _ -> Alcotest.fail "tail read failed");
      checkb "demand bound well before the 20ms cadence" true
        (Engine.now () - t0 < Engine.ms 2);
      Engine.stop ())

let test_lazy_read_waits_out_cadence () =
  (* Control for the test above: with the knob off, the same read parks
     until the background orderer's next pass. *)
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg:(lazy_cfg ~read_demand:false) () in
      let log = Erwin_m.client cluster in
      append_n log 5;
      let t0 = Engine.now () in
      (match log.read ~from:4 ~len:1 with
      | [ r ] -> checkstr "tail record" "5" r.Types.data
      | _ -> Alcotest.fail "tail read failed");
      checkb "lazy read waited for the ordering cadence" true
        (Engine.now () - t0 > Engine.ms 2);
      Engine.stop ())

(* --- parked reader across a seal / view change --- *)

let test_parked_read_woken_by_view_change () =
  (* Cadence far beyond the test horizon, demand off: the only thing
     that can wake the parked read is the view change's recovery flush
     (seal, flush, install, stable broadcast). *)
  Engine.run (fun () ->
      let cfg =
        { Config.default with Config.nshards = 2; order_interval = Engine.ms 500 }
      in
      let cluster = Erwin_m.create ~cfg () in
      let log = Erwin_m.client cluster in
      append_n log 10;
      let got = ref None in
      Engine.spawn ~name:"test.parked-reader" (fun () ->
          got := Some (log.read ~from:9 ~len:1));
      Engine.sleep (Engine.ms 1);
      checkb "read parked past stable" true (!got = None);
      Erwin_common.crash_replica cluster (Erwin_common.leader cluster);
      let deadline = Engine.now () + Engine.ms 100 in
      while !got = None && Engine.now () < deadline do
        Engine.sleep (Engine.ms 1)
      done;
      checki "view advanced" 1 cluster.Erwin_common.view;
      (match !got with
      | Some [ r ] -> checkstr "woken with the right record" "10" r.Types.data
      | Some _ -> Alcotest.fail "parked read returned wrong shape"
      | None -> Alcotest.fail "parked read not woken by the view change");
      Engine.stop ())

let test_demand_survives_view_change () =
  (* Directed test for the orderer's demand_upto max-merge across a view
     change. A demand for positions well past the appended tail is
     parked in the orderer (max-merged into [demand_upto], which lives
     on the cluster record, not in view state) when the leader dies.
     After the reconfiguration, the outstanding demand must neither
     wedge the new ordering passes nor bind anything twice: fresh
     appends bind fast (the surviving demand covers them — no new
     demand is ever sent), and a full scan sees each record exactly
     once. *)
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg:(lazy_cfg ~read_demand:true) () in
      let log = Erwin_m.client cluster in
      append_n log 5;
      (* Demand far past the tail, straight at the orderer's sink. *)
      let orderer = Option.get cluster.Erwin_common.orderer_node in
      let ep = Erwin_common.new_endpoint cluster ~name:"test.demander" in
      let req = Proto.Sr_order_demand { upto = 40 } in
      (match
         Rpc.call_timeout ep ~dst:orderer ~size:(Proto.req_size req)
           ~timeout:(Engine.ms 5) req
       with
      | Some Proto.R_ok -> ()
      | _ -> Alcotest.fail "demand not accepted");
      checki "demand max-merged" 40 cluster.Erwin_common.demand_upto;
      Erwin_common.crash_replica cluster (Erwin_common.leader cluster);
      let deadline = Engine.now () + Engine.ms 100 in
      while cluster.Erwin_common.view = 0 && Engine.now () < deadline do
        Engine.sleep (Engine.ms 1)
      done;
      checki "view advanced" 1 cluster.Erwin_common.view;
      checkb "demand survived the view change" true
        (cluster.Erwin_common.demand_upto = 40);
      (* New-view appends are covered by the surviving demand: a tail
         read binds well before the 20 ms cadence without issuing any
         further demand. *)
      for i = 6 to 10 do
        checkb "acked" true (log.append ~size:256 ~data:(string_of_int i))
      done;
      let t0 = Engine.now () in
      (match log.read ~from:9 ~len:1 with
      | [ r ] -> checkstr "tail record" "10" r.Types.data
      | _ -> Alcotest.fail "tail read failed");
      checkb "parked demand bound the new view's appends fast" true
        (Engine.now () - t0 < Engine.ms 2);
      (* Exactly once: the demand that fired in both views bound each
         position a single time. *)
      let all = log.read ~from:0 ~len:10 in
      checki "scan covers the log exactly" 10 (List.length all);
      List.iteri
        (fun i (r : Types.record) ->
          checkstr "bound once, in order" (string_of_int (i + 1)) r.Types.data)
        all;
      Engine.stop ())

(* --- replica read scale-out --- *)

let test_reads_spread_over_replicas () =
  Engine.run (fun () ->
      let cfg =
        {
          Config.default with
          Config.nshards = 1;
          shard_backup_count = 2;
          replica_reads = true;
          read_demand = true;
        }
      in
      let cluster = Erwin_m.create ~cfg () in
      let log = Erwin_m.client cluster in
      append_n log 30;
      Engine.sleep (Engine.ms 3);
      (* everything bound; stable relayed to the backups *)
      let shard = List.hd cluster.Erwin_common.shards in
      let inbox id =
        Fabric.node_messages_in
          (Fabric.node_by_id cluster.Erwin_common.fabric id)
      in
      let before =
        List.map (fun id -> (id, inbox id)) (Shard.replica_ids shard)
      in
      checki "three replicas" 3 (List.length before);
      for i = 0 to 29 do
        match log.read ~from:i ~len:1 with
        | [ r ] -> checkstr "agrees" (string_of_int (i + 1)) r.Types.data
        | _ -> Alcotest.fail "replica read failed"
      done;
      (* Round-robin: every replica (primary and both backups) served a
         share of the 30 reads. No stable relays run in this window (no
         appends), so the inbox delta is read traffic. *)
      List.iter
        (fun (id, n0) ->
          checkb
            (Printf.sprintf "replica %d served reads" id)
            true
            (inbox id > n0))
        before;
      Engine.stop ())

let test_backup_forwards_unbound_read () =
  Engine.run (fun () ->
      let cfg =
        {
          Config.default with
          Config.nshards = 1;
          shard_backup_count = 1;
          order_interval = Engine.ms 20;
          replica_reads = true;
          read_demand = true;
        }
      in
      let cluster = Erwin_m.create ~cfg () in
      let log = Erwin_m.client cluster in
      append_n log 4;
      (* Position 3 is acked but unbound everywhere (lazy cadence, no
         reads yet). Ask the backup directly: it must forward to the
         primary — which demand-binds — and relay the records back with
         its own stable piggybacked. *)
      let shard = List.hd cluster.Erwin_common.shards in
      let backup = List.hd (Shard.backup_ids shard) in
      let ep = Erwin_common.new_endpoint cluster ~name:"test.reader" in
      let req = Proto.Sh_read { positions = [ 3 ]; stable_hint = 0 } in
      (match
         Rpc.call_timeout ep ~dst:backup ~size:(Proto.req_size req)
           ~timeout:(Engine.ms 50) req
       with
      | Some (Proto.R_records { records = [ (3, r) ]; stable }) ->
        checkstr "forwarded read returns the tail record" "4" r.Types.data;
        checkb "piggybacked stable covers the read" true (stable > 3)
      | Some _ -> Alcotest.fail "backup returned wrong shape"
      | None -> Alcotest.fail "backup read timed out");
      Engine.stop ())

(* --- scan readahead --- *)

let scan ~readahead =
  let out = ref [] in
  Engine.run (fun () ->
      let cfg =
        {
          Config.default with
          Config.nshards = 3;
          replica_reads = true;
          readahead;
          map_fetch_chunk = 16;
        }
      in
      let cluster = Erwin_st.create ~cfg () in
      let log = Erwin_st.client cluster in
      for i = 1 to 60 do
        checkb "acked" true (log.append ~size:512 ~data:(string_of_int i))
      done;
      Engine.sleep (Engine.ms 3);
      let chunks = ref [] in
      let from = ref 0 in
      while !from < 60 do
        let len = min 8 (60 - !from) in
        let records = log.read ~from:!from ~len in
        checki "chunk length" len (List.length records);
        chunks := List.rev_append records !chunks;
        from := !from + len
      done;
      out := List.rev_map (fun (r : Types.record) -> r.Types.data) !chunks;
      Engine.stop ());
  !out

let test_readahead_scan_identical () =
  (* A sequential scan must return exactly the same records whether the
     prefetcher is off or racing ahead of the reader. *)
  let plain = scan ~readahead:0 in
  let ahead = scan ~readahead:16 in
  checki "scan covered the log" 60 (List.length plain);
  Alcotest.(check (list string)) "readahead scan identical" plain ahead

let () =
  Alcotest.run "read_path"
    [
      ( "demand",
        [
          Alcotest.test_case "demand wakes parked read" `Quick
            test_demand_wakes_parked_read;
          Alcotest.test_case "lazy read waits out cadence" `Quick
            test_lazy_read_waits_out_cadence;
          Alcotest.test_case "parked read woken by view change" `Quick
            test_parked_read_woken_by_view_change;
          Alcotest.test_case "demand survives view change" `Quick
            test_demand_survives_view_change;
        ] );
      ( "replica-reads",
        [
          Alcotest.test_case "reads spread over replicas" `Quick
            test_reads_spread_over_replicas;
          Alcotest.test_case "backup forwards unbound read" `Quick
            test_backup_forwards_unbound_read;
        ] );
      ( "readahead",
        [
          Alcotest.test_case "readahead scan identical" `Quick
            test_readahead_scan_identical;
        ] );
    ]
