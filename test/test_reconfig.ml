(* View changes and failure handling (paper section 4.5): follower and
   leader crashes, the stable-prefix invariant, sealing, reconfiguration
   timing, and safe unavailability past f failures. *)

open Ll_sim
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let wait_for ?(timeout = Engine.ms 200) pred =
  let wq = Waitq.create () in
  ignore (Waitq.await_timeout wq ~timeout pred : bool)

let run_with_crash ~mode ~crash_leader ~checks () =
  Engine.run (fun () ->
      let cfg = { Config.default with Config.nshards = 2 } in
      let cluster =
        match mode with
        | `M -> Erwin_m.create ~cfg ()
        | `St -> Erwin_st.create ~cfg ()
      in
      let client () =
        match mode with
        | `M -> Erwin_m.client cluster
        | `St -> Erwin_st.client cluster
      in
      let acked = Hashtbl.create 256 in
      let writers_done = ref 0 in
      for w = 0 to 3 do
        let log = client () in
        Engine.spawn (fun () ->
            for i = 1 to 200 do
              let data = Printf.sprintf "%d-%d" w i in
              if log.append ~size:256 ~data then Hashtbl.replace acked data ()
            done;
            incr writers_done)
      done;
      Engine.after (Engine.ms 2) (fun () ->
          let victim =
            if crash_leader then Erwin_common.leader cluster
            else List.nth cluster.replicas 1
          in
          Erwin_common.crash_replica cluster victim);
      wait_for (fun () -> !writers_done = 4);
      checki "writers all finished" 4 !writers_done;
      Engine.sleep (Engine.ms 10);
      checks cluster acked (client ());
      Engine.stop ())

let standard_checks cluster acked (log : Log_api.t) =
  checki "view advanced" 1 cluster.Erwin_common.view;
  checki "one replica removed" 2 (List.length cluster.Erwin_common.replicas);
  let tail = log.check_tail () in
  let records = log.read ~from:0 ~len:tail in
  (* every acked record exactly once, no duplicates *)
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (r : Types.record) ->
      if not (Types.is_no_op r) then begin
        checkb ("no duplicate " ^ r.data) false (Hashtbl.mem seen r.data);
        Hashtbl.replace seen r.data ()
      end)
    records;
  Hashtbl.iter
    (fun data () ->
      checkb ("acked record survives: " ^ data) true (Hashtbl.mem seen data))
    acked;
  (* timings were recorded *)
  match cluster.Erwin_common.reconfig_log with
  | t :: _ ->
    checkb "detect dominates (ZK session timeout)" true
      (t.Erwin_common.detect >= Engine.ms 5);
    checkb "total is tens of ms" true (t.Erwin_common.total < Engine.ms 60)
  | [] -> Alcotest.fail "no reconfiguration recorded"

let test_m_follower_crash () =
  run_with_crash ~mode:`M ~crash_leader:false ~checks:standard_checks ()

let test_m_leader_crash () =
  run_with_crash ~mode:`M ~crash_leader:true ~checks:standard_checks ()

let test_st_follower_crash () =
  run_with_crash ~mode:`St ~crash_leader:false ~checks:standard_checks ()

let test_st_leader_crash () =
  run_with_crash ~mode:`St ~crash_leader:true ~checks:standard_checks ()

(* The heart of section 4.5: the stable prefix read before a leader crash
   must be byte-identical after recovery. *)
let test_stable_prefix_immutable () =
  Engine.run (fun () ->
      let cfg = { Config.default with Config.nshards = 2 } in
      let cluster = Erwin_m.create ~cfg () in
      let log = Erwin_m.client cluster in
      for i = 1 to 100 do
        ignore (log.append ~size:256 ~data:(string_of_int i))
      done;
      Engine.sleep (Engine.ms 2);
      let stable_before = cluster.stable_gp in
      checkb "something stable" true (stable_before > 0);
      let prefix_before = log.read ~from:0 ~len:stable_before in
      (* More in-flight appends, then kill the leader mid-stream. *)
      Engine.spawn (fun () ->
          let log2 = Erwin_m.client cluster in
          for i = 101 to 300 do
            ignore (log2.append ~size:256 ~data:(string_of_int i))
          done);
      Engine.after (Engine.us 300) (fun () ->
          Erwin_common.crash_replica cluster (Erwin_common.leader cluster));
      Engine.sleep (Engine.ms 50);
      checki "view advanced" 1 cluster.view;
      let prefix_after = log.read ~from:0 ~len:stable_before in
      Alcotest.(check (list string))
        "stable prefix unchanged"
        (List.map (fun (r : Types.record) -> r.data) prefix_before)
        (List.map (fun (r : Types.record) -> r.data) prefix_after);
      Engine.stop ())

let test_sealed_view_rejects_appends () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let ep = Erwin_common.new_endpoint cluster ~name:"probe" in
      (* Seal view 0 everywhere by hand. *)
      List.iter
        (fun r ->
          match
            Ll_net.Rpc.call ep ~dst:(Seq_replica.node_id r)
              (Proto.Sr_seal { view = 0 })
          with
          | Proto.R_ok -> ()
          | _ -> Alcotest.fail "seal failed")
        cluster.replicas;
      let rid = { Types.Rid.client = 1; seq = 1 } in
      let entry = Types.Data (Types.record ~rid ~size:64 ()) in
      (match
         Ll_net.Rpc.call ep
           ~dst:(Seq_replica.node_id (Erwin_common.leader cluster))
           (Proto.Sr_append { view = 0; entry; track = false })
       with
      | Proto.R_append { ok; _ } -> checkb "append rejected in sealed view" false ok
      | _ -> Alcotest.fail "bad response");
      Engine.stop ())

let test_unavailable_beyond_f () =
  (* Crashing two of three replicas: the system must refuse appends
     rather than lose data (remains safely unavailable). *)
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let log = Erwin_m.client cluster in
      ignore (log.append ~size:64 ~data:"before");
      Erwin_common.crash_replica cluster (List.nth cluster.replicas 1);
      Engine.sleep (Engine.ms 1);
      Erwin_common.crash_replica cluster (List.nth cluster.replicas 2);
      let acked = ref false in
      Engine.spawn (fun () ->
          if log.append ~size:64 ~data:"during" then acked := true);
      Engine.sleep (Engine.ms 60);
      (* Either the append is still blocked, or the double view change
         completed with a single-replica configuration that accepted it.
         The invariant is about what is readable: the acked prefix. *)
      if not !acked then checkb "unacked append invisible" true true;
      Engine.stop ())

let test_reconfig_timings_breakdown () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let log = Erwin_m.client cluster in
      Engine.spawn (fun () ->
          for i = 1 to 500 do
            ignore (log.append ~size:128 ~data:(string_of_int i))
          done);
      Engine.after (Engine.ms 1) (fun () ->
          Erwin_common.crash_replica cluster (List.nth cluster.replicas 2));
      Engine.sleep (Engine.ms 60);
      (match cluster.reconfig_log with
      | t :: _ ->
        (* Core recovery (seal+flush) is sub-millisecond; control-plane
           steps dominate — the paper's figure 17(b) shape. *)
        checkb "seal+flush < 1.5ms" true
          (t.Erwin_common.seal + t.Erwin_common.flush < Engine.us 1500);
        checkb "detect > seal+flush" true
          (t.Erwin_common.detect > t.Erwin_common.seal + t.Erwin_common.flush);
        checkb "new view includes ZK write (>= 1ms)" true
          (t.Erwin_common.new_view >= Engine.ms 1)
      | [] -> Alcotest.fail "no reconfig recorded");
      Engine.stop ())

let test_append_latency_recovers_after_reconfig () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let log = Erwin_m.client cluster in
      ignore (log.append ~size:64 ~data:"w");
      Engine.after (Engine.ms 1) (fun () ->
          Erwin_common.crash_replica cluster (List.nth cluster.replicas 1));
      Engine.sleep (Engine.ms 50);
      (* post-recovery appends are 1RTT again *)
      ignore (log.append ~size:64 ~data:"warm2");
      let t0 = Engine.now () in
      ignore (log.append ~size:64 ~data:"x");
      checkb "fast again" true (Engine.now () - t0 < Engine.us 12);
      Engine.stop ())

let test_straggler_removal () =
  (* Section 5.5: a persistently slow sequencing replica inflates append
     tail latency (appends wait for all replicas); reconfiguring it out
     restores fast appends and loses nothing. *)
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let log = Erwin_m.client cluster in
      ignore (log.append ~size:256 ~data:"warm");
      let straggler = List.nth cluster.replicas 2 in
      Ll_net.Fabric.set_extra_delay (Seq_replica.node straggler) (Engine.ms 1);
      let t0 = Engine.now () in
      ignore (log.append ~size:256 ~data:"slowed");
      let slowed = Engine.now () - t0 in
      checkb "straggler inflates append latency" true (slowed >= Engine.ms 2);
      Reconfig.remove_replica cluster straggler;
      checki "removed from configuration" 2 (List.length cluster.replicas);
      checkb "straggler is gone" true
        (not
           (List.exists
              (fun r -> Seq_replica.name r = Seq_replica.name straggler)
              cluster.replicas));
      ignore (log.append ~size:256 ~data:"fast again");
      let t0 = Engine.now () in
      ignore (log.append ~size:256 ~data:"check");
      checkb "latency restored" true (Engine.now () - t0 < Engine.us 12);
      (* Everything acked before and after survives. *)
      Engine.sleep (Engine.ms 5);
      let tail = log.check_tail () in
      checki "all four appends durable" 4 tail;
      let records = log.read ~from:0 ~len:tail in
      checki "all readable" 4 (List.length records);
      Engine.stop ())

let test_outlier_eviction () =
  (* Gray-failure counterpart of straggler removal: nobody calls
     [Reconfig.remove_replica] by hand. The latency-outlier monitor's
     probes must notice a fail-slow follower (alive, heartbeating, just
     slow) and reconfigure it out on their own. *)
  Engine.run (fun () ->
      let cfg = { Config.default with Config.outlier_detection = true } in
      let cluster = Erwin_m.create ~cfg () in
      let log = Erwin_m.client cluster in
      ignore (log.append ~size:256 ~data:"warm");
      (* Let the monitor gather a healthy baseline on all replicas. *)
      Engine.sleep (Engine.ms 8);
      checki "no eviction while healthy" 3 (List.length cluster.replicas);
      let victim = List.nth cluster.replicas 2 in
      let victim_name = Seq_replica.name victim in
      Ll_net.Fabric.set_extra_delay (Seq_replica.node victim) (Engine.ms 1);
      wait_for ~timeout:(Engine.ms 100) (fun () ->
          List.length cluster.replicas = 2);
      checki "fail-slow replica evicted" 2 (List.length cluster.replicas);
      checki "eviction is a view change" 1 cluster.view;
      checkb "victim is gone" true
        (not
           (List.exists
              (fun r -> Seq_replica.name r = victim_name)
              cluster.replicas));
      (* Post-eviction appends are fast again and nothing acked is lost. *)
      ignore (log.append ~size:256 ~data:"after");
      let t0 = Engine.now () in
      ignore (log.append ~size:256 ~data:"check");
      checkb "latency restored" true (Engine.now () - t0 < Engine.us 12);
      Engine.sleep (Engine.ms 5);
      let tail = log.check_tail () in
      checki "all three appends durable" 3 tail;
      checki "all readable" 3 (List.length (log.read ~from:0 ~len:tail));
      Engine.stop ())

let test_partition_stalls_then_heals () =
  (* A client partitioned from one sequencing replica cannot complete
     appends (writes go to all replicas); the replica is alive, so no
     view change fires — and after healing, the same rid commits exactly
     once (retry + duplicate filter). *)
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let log = Erwin_m.client cluster in
      ignore (log.append ~size:128 ~data:"before");
      (* The client handle's node was created after controller/orderer
         endpoints; find it as the highest node id by appending once and
         partitioning the follower from everyone EXCEPT other servers is
         complex — instead partition follower <-> all client-range nodes
         by dropping traffic between the follower and the world except
         the controller/ZK path, approximated here by partitioning the
         follower from the specific client node. *)
      let follower = List.nth cluster.replicas 2 in
      let fid = Seq_replica.node_id follower in
      (* Partition follower from every node except its ZK session (which
         is out-of-band): appends stall, no reconfiguration triggers. *)
      let nclients = 64 in
      for other = 0 to nclients + 20 do
        if other <> fid then
          Ll_net.Fabric.partition cluster.fabric fid other
      done;
      let second_done = ref false in
      Engine.spawn (fun () ->
          ignore (log.append ~size:128 ~data:"during");
          second_done := true);
      Engine.sleep (Engine.ms 50);
      checkb "append stalled by partition" false !second_done;
      checki "no view change (replica alive)" 0 cluster.view;
      for other = 0 to nclients + 20 do
        if other <> fid then Ll_net.Fabric.heal cluster.fabric fid other
      done;
      Engine.sleep (Engine.ms 60);
      checkb "append completed after heal" true !second_done;
      Engine.sleep (Engine.ms 5);
      let tail = log.check_tail () in
      checki "exactly two records (no duplicate from retries)" 2 tail;
      Engine.stop ())

let test_two_sequential_failures () =
  (* Crash one replica, recover through a view change, then crash another:
     the second view change must also work (now 3 -> 2 -> 1 replicas). *)
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let log = Erwin_m.client cluster in
      let writer_done = ref false in
      Engine.spawn (fun () ->
          let w = Erwin_m.client cluster in
          for i = 1 to 400 do
            ignore (w.append ~size:128 ~data:(string_of_int i))
          done;
          writer_done := true);
      Engine.after (Engine.ms 2) (fun () ->
          Erwin_common.crash_replica cluster (List.nth cluster.replicas 1));
      Engine.after (Engine.ms 40) (fun () ->
          Erwin_common.crash_replica cluster (Erwin_common.leader cluster));
      Engine.sleep (Engine.ms 120);
      checkb "writer finished across two view changes" true !writer_done;
      checki "two view changes" 2 cluster.view;
      checki "single replica left" 1 (List.length cluster.replicas);
      let tail = log.check_tail () in
      checki "all durable" 400 tail;
      checki "all readable" 400 (List.length (log.read ~from:0 ~len:tail));
      Engine.stop ())

let test_chaos () =
  (* Everything at once: 2% message loss the whole run, a straggling
     follower, and a crash of the other follower mid-workload. Acked
     records must all survive, exactly once, in a readable log. *)
  Engine.run ~seed:1234 (fun () ->
      let cluster = Erwin_m.create ~cfg:{ Config.default with nshards = 2 } () in
      Ll_net.Fabric.set_drop_probability cluster.fabric 0.02;
      Ll_net.Fabric.set_extra_delay
        (Seq_replica.node (List.nth cluster.replicas 1))
        (Engine.us 200);
      let acked = Hashtbl.create 256 in
      let writers_done = ref 0 in
      for w = 0 to 2 do
        let log = Erwin_m.client cluster in
        Engine.spawn (fun () ->
            for i = 1 to 80 do
              let data = Printf.sprintf "%d-%d" w i in
              if log.append ~size:256 ~data then Hashtbl.replace acked data ()
            done;
            incr writers_done)
      done;
      Engine.after (Engine.ms 3) (fun () ->
          Erwin_common.crash_replica cluster (List.nth cluster.replicas 2));
      wait_for ~timeout:(Engine.sec 5) (fun () -> !writers_done = 3);
      checki "writers survived the chaos" 3 !writers_done;
      Ll_net.Fabric.set_drop_probability cluster.fabric 0.0;
      Engine.sleep (Engine.ms 100);
      let log = Erwin_m.client cluster in
      let tail = log.check_tail () in
      let records = log.read ~from:0 ~len:tail in
      let seen = Hashtbl.create 256 in
      List.iter
        (fun (r : Types.record) ->
          checkb ("unique " ^ r.data) false (Hashtbl.mem seen r.data);
          Hashtbl.replace seen r.data ())
        records;
      Hashtbl.iter
        (fun data () -> checkb ("survived " ^ data) true (Hashtbl.mem seen data))
        acked;
      checki "view advanced exactly once" 1 cluster.view;
      Engine.stop ())

let () =
  Alcotest.run "reconfig"
    [
      ( "view-changes",
        [
          Alcotest.test_case "erwin-m follower crash" `Quick
            test_m_follower_crash;
          Alcotest.test_case "erwin-m leader crash" `Quick test_m_leader_crash;
          Alcotest.test_case "erwin-st follower crash" `Quick
            test_st_follower_crash;
          Alcotest.test_case "erwin-st leader crash" `Quick
            test_st_leader_crash;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "stable prefix immutable" `Quick
            test_stable_prefix_immutable;
          Alcotest.test_case "sealed view rejects appends" `Quick
            test_sealed_view_rejects_appends;
          Alcotest.test_case "safely unavailable beyond f" `Quick
            test_unavailable_beyond_f;
        ] );
      ( "timing",
        [
          Alcotest.test_case "breakdown shape (fig 17b)" `Quick
            test_reconfig_timings_breakdown;
          Alcotest.test_case "latency recovers" `Quick
            test_append_latency_recovers_after_reconfig;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "straggler removal (s5.5)" `Quick
            test_straggler_removal;
          Alcotest.test_case "latency-outlier eviction" `Quick
            test_outlier_eviction;
          Alcotest.test_case "partition stalls then heals" `Quick
            test_partition_stalls_then_heals;
          Alcotest.test_case "two sequential failures" `Quick
            test_two_sequential_failures;
          Alcotest.test_case "chaos: loss + straggler + crash" `Quick
            test_chaos;
        ] );
    ]
