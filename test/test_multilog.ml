(* Multi-log fabric: per-tenant sequencing (packed positions, per-log
   stable cursors), weighted-fair ingress (DRR + admission control), and
   isolation across view changes. Also the Ivar zero-budget regression
   (join_all_timeout with already-full ivars and no time left). *)

open Ll_sim
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mcfg =
  { Config.default with Config.multi_log = true; nshards = 2 }

(* ---------- Logid packing ---------- *)

let test_logid_pack () =
  checki "log 0 packs raw" 42 (Logid.pack ~log:0 42);
  checki "log of raw" 0 (Logid.log_of 42);
  checki "pos of raw" 42 (Logid.pos_of 42);
  let p = Logid.pack ~log:7 123 in
  checki "log roundtrip" 7 (Logid.log_of p);
  checki "pos roundtrip" 123 (Logid.pos_of p);
  checki "base is pos 0" (Logid.pack ~log:7 0) (Logid.base ~log:7);
  checkb "logs ordered by id" true (Logid.pack ~log:1 0 > Logid.pack ~log:0 1000);
  checkb "dense within a log" true (Logid.pack ~log:3 5 = Logid.pack ~log:3 4 + 1);
  (match Logid.pack ~log:(-1) 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative log accepted");
  match Logid.pack ~log:0 (Logid.max_pos + 1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized position accepted"

(* ---------- Ivar zero-budget regression ---------- *)

let test_join_all_timeout_zero_budget () =
  Engine.run (fun () ->
      (* All ivars already full: a zero (or fully spent) budget must still
         return the values instead of reporting a timeout. *)
      let ivs =
        List.init 4 (fun i ->
            let iv = Ivar.create () in
            Ivar.fill iv i;
            iv)
      in
      (match Ivar.join_all_timeout ivs ~timeout:0 with
      | Some vs -> Alcotest.(check (list int)) "values" [ 0; 1; 2; 3 ] vs
      | None -> Alcotest.fail "zero budget lost already-full ivars");
      (* An empty ivar under zero budget is still a timeout. *)
      (match Ivar.join_all_timeout [ Ivar.create () ] ~timeout:0 with
      | Some _ -> Alcotest.fail "empty ivar resolved under zero budget"
      | None -> ());
      Engine.stop ())

(* ---------- per-tenant append/read isolation ---------- *)

let tenant_roundtrip create client =
  Engine.run (fun () ->
      let cluster = create ~cfg:mcfg () in
      let logs = [ 0; 1; 5 ] in
      let handles = List.map (fun l -> (l, client ~log:l cluster)) logs in
      List.iter
        (fun (l, (h : Log_api.t)) ->
          for i = 1 to 20 do
            checkb "append acked" true
              (h.append ~size:256 ~data:(Printf.sprintf "%d-%d" l i))
          done)
        handles;
      Engine.sleep (Engine.ms 5);
      List.iter
        (fun (l, (h : Log_api.t)) ->
          checki "per-log tail" 20 (h.check_tail ());
          let records = h.read ~from:0 ~len:20 in
          checki "per-log read count" 20 (List.length records);
          List.iteri
            (fun i (r : Types.record) ->
              Alcotest.(check string)
                "tenant data in tenant order"
                (Printf.sprintf "%d-%d" l (i + 1))
                r.data)
            records)
        handles;
      (* Per-log stable cursors advanced independently. *)
      List.iter
        (fun l ->
          checki "stable cursor at tail"
            (Logid.pack ~log:l 20)
            (Erwin_common.stable_for cluster ~log:l))
        logs;
      Engine.stop ())

let test_m_tenant_roundtrip () =
  tenant_roundtrip
    (fun ~cfg () -> Erwin_m.create ~cfg ())
    (fun ~log c -> Erwin_m.client ~log c)

let test_st_tenant_roundtrip () =
  tenant_roundtrip
    (fun ~cfg () -> Erwin_st.create ~cfg ())
    (fun ~log c -> Erwin_st.client ~log c)

(* ---------- per-log cursors across a view change ---------- *)

let test_cursors_survive_view_change () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg:mcfg () in
      let logs = [ 0; 1; 2 ] in
      let handles = List.map (fun l -> (l, Erwin_m.client ~log:l cluster)) logs in
      let acked = Hashtbl.create 64 in
      let writers_done = ref 0 in
      List.iter
        (fun (l, (h : Log_api.t)) ->
          Engine.spawn (fun () ->
              for i = 1 to 60 do
                let data = Printf.sprintf "%d-%d" l i in
                if h.append ~size:256 ~data then Hashtbl.replace acked data ()
              done;
              incr writers_done))
        handles;
      (* Crash a follower mid-stream: the view change's recovery flush
         must reassign each tenant's surviving entries onto that tenant's
         own frontier. *)
      Engine.after (Engine.ms 2) (fun () ->
          Erwin_common.crash_replica cluster (List.nth cluster.replicas 1));
      let wq = Waitq.create () in
      ignore
        (Waitq.await_timeout wq ~timeout:(Engine.ms 500) (fun () ->
             !writers_done = List.length logs)
          : bool);
      checki "writers finished" (List.length logs) !writers_done;
      Engine.sleep (Engine.ms 20);
      checki "view advanced" 1 cluster.Erwin_common.view;
      List.iter
        (fun (l, (h : Log_api.t)) ->
          let tail = h.check_tail () in
          checkb "tail covers acked appends" true (tail >= 1);
          let records = h.read ~from:0 ~len:tail in
          let seen = Hashtbl.create 64 in
          List.iter
            (fun (r : Types.record) ->
              (* No cross-tenant bleed: every record read from log [l]
                 was appended to log [l]... *)
              checkb
                ("tenant-pure read: " ^ r.data)
                true
                (String.length r.data >= 2
                && r.data.[0] = Char.chr (Char.code '0' + l));
              (* ...and exactly once. *)
              checkb ("no duplicate " ^ r.data) false (Hashtbl.mem seen r.data);
              Hashtbl.replace seen r.data ())
            records;
          (* Every acked record of this tenant survived into its log. *)
          Hashtbl.iter
            (fun data () ->
              if data.[0] = Char.chr (Char.code '0' + l) then
                checkb ("acked survives: " ^ data) true (Hashtbl.mem seen data))
            acked)
        handles;
      Engine.stop ())

(* ---------- weighted-fair ingress ---------- *)

(* Two tenants, weights 2:1, closed-loop saturation: enough concurrent
   writers of large-enough records that the sequencing replicas' CPU (not
   the network) is the bottleneck, so the DRR scheduler decides the
   service ratio. *)
let test_drr_honors_weights () =
  Engine.run (fun () ->
      let cfg =
        {
          mcfg with
          Config.fair_ingress = true;
          tenant_weights = [ (1, 2); (2, 1) ];
        }
      in
      let cluster = Erwin_m.create ~cfg () in
      let served = Array.make 3 0 in
      let stop = ref false in
      List.iter
        (fun l ->
          for _f = 1 to 16 do
            let h = Erwin_m.client ~log:l cluster in
            Engine.spawn (fun () ->
                while not !stop do
                  if h.append ~size:2048 ~data:"x" then
                    served.(l) <- served.(l) + 1
                done)
          done)
        [ 1; 2 ];
      Engine.sleep (Engine.ms 30);
      stop := true;
      let r1 = float_of_int served.(1) and r2 = float_of_int served.(2) in
      checkb "both tenants served" true (served.(1) > 0 && served.(2) > 0);
      let ratio = r1 /. r2 in
      checkb
        (Printf.sprintf "2:1 weights within tolerance (got %.2f)" ratio)
        true
        (ratio > 1.5 && ratio < 2.7);
      (* The scheduler actually saw the traffic. *)
      (match Seq_replica.ingress (List.hd cluster.replicas) with
      | None -> Alcotest.fail "fair ingress not installed"
      | Some ing ->
        let s1 = Ingress.stats ing ~log:1 in
        checkb "tenant 1 admitted" true (s1.Ingress.st_admitted > 0));
      Engine.stop ())

(* Admission shed fires before a tenant's ingress queue grows without
   bound: a burst far over the queue bound is shed immediately (failed
   append, client retry path) instead of queued. *)
let test_admission_shed_bounds_queue () =
  Engine.run (fun () ->
      let cfg =
        { mcfg with Config.fair_ingress = true; ingress_queue = 16 }
      in
      let cluster = Erwin_m.create ~cfg () in
      let stop = ref false in
      let acked = ref 0 in
      for _f = 1 to 64 do
        let h = Erwin_m.client ~log:1 cluster in
        Engine.spawn (fun () ->
            while not !stop do
              if h.append ~size:2048 ~data:"x" then incr acked
            done)
      done;
      (* Sample the queue while the burst is in flight. *)
      let max_queued = ref 0 in
      Engine.spawn (fun () ->
          while not !stop do
            (match Seq_replica.ingress (List.hd cluster.replicas) with
            | Some ing ->
              let s = Ingress.stats ing ~log:1 in
              if s.Ingress.st_queued > !max_queued then
                max_queued := s.Ingress.st_queued
            | None -> ());
            Engine.sleep (Engine.us 50)
          done);
      Engine.sleep (Engine.ms 10);
      stop := true;
      (match Seq_replica.ingress (List.hd cluster.replicas) with
      | None -> Alcotest.fail "fair ingress not installed"
      | Some ing ->
        let s = Ingress.stats ing ~log:1 in
        checkb "shed fired" true (s.Ingress.st_shed > 0);
        checkb
          (Printf.sprintf "queue bounded (max seen %d)" !max_queued)
          true
          (!max_queued <= 16));
      checkb "progress despite shedding" true (!acked > 0);
      Engine.stop ())

let () =
  Alcotest.run "multilog"
    [
      ( "packing",
        [ Alcotest.test_case "logid pack/unpack" `Quick test_logid_pack ] );
      ( "engine",
        [
          Alcotest.test_case "join_all_timeout zero budget" `Quick
            test_join_all_timeout_zero_budget;
        ] );
      ( "tenants",
        [
          Alcotest.test_case "erwin-m per-tenant roundtrip" `Quick
            test_m_tenant_roundtrip;
          Alcotest.test_case "erwin-st per-tenant roundtrip" `Quick
            test_st_tenant_roundtrip;
          Alcotest.test_case "cursors survive view change" `Quick
            test_cursors_survive_view_change;
        ] );
      ( "fair ingress",
        [
          Alcotest.test_case "DRR honors 2:1 weights" `Quick
            test_drr_honors_weights;
          Alcotest.test_case "admission shed bounds the queue" `Quick
            test_admission_shed_bounds_queue;
        ] );
    ]
