(* Tests of the sequencing log's claim cursor — the mechanism that lets
   overlapping (pipelined) ordering batches select disjoint entry sets
   while claimed entries stay live for capacity accounting, duplicate
   filtering, and recovery flushes. *)

open Lazylog

let checki = Alcotest.(check int)

let rid c s = { Types.Rid.client = c; seq = s }

let entry c s =
  Types.Data
    (Types.record ~rid:(rid c s) ~size:64 ~data:(string_of_int s) ())

let data = function
  | Types.Data r -> r.Types.data
  | Types.Meta _ -> Alcotest.fail "expected data entry"

let mk n =
  let t = Seq_log.create ~capacity:1024 in
  for i = 1 to n do
    match Seq_log.try_append t (entry 0 i) with
    | Some Seq_log.Appended -> ()
    | _ -> Alcotest.fail "append failed"
  done;
  t

let test_claim_takes_in_order () =
  let t = mk 5 in
  let batch = Seq_log.claim_unordered t ~max:3 in
  checki "claims up to max" 3 (Array.length batch);
  Alcotest.(check (list string))
    "log order" [ "1"; "2"; "3" ]
    (Array.to_list (Array.map data batch));
  checki "claimed entries still live" 5 (Seq_log.live_count t);
  checki "unclaimed shrinks" 2 (Seq_log.unclaimed_count t)

let test_claims_are_disjoint () =
  let t = mk 6 in
  let a = Seq_log.claim_unordered t ~max:4 in
  let b = Seq_log.claim_unordered t ~max:4 in
  checki "first claim full" 4 (Array.length a);
  checki "second claim gets the rest" 2 (Array.length b);
  let rids e = Types.entry_rid e in
  Array.iter
    (fun ea ->
      Array.iter
        (fun eb ->
          if Types.Rid.equal (rids ea) (rids eb) then
            Alcotest.fail "entry claimed twice")
        b)
    a;
  checki "nothing left unclaimed" 0 (Seq_log.unclaimed_count t);
  checki "empty claim" 0 (Array.length (Seq_log.claim_unordered t ~max:4))

let test_remove_ordered_updates_claim_accounting () =
  let t = mk 4 in
  let batch = Seq_log.claim_unordered t ~max:2 in
  Seq_log.remove_ordered t
    (Array.to_list (Array.map Types.entry_rid batch));
  checki "live drops" 2 (Seq_log.live_count t);
  checki "unclaimed unaffected by GC of claimed batch" 2
    (Seq_log.unclaimed_count t);
  let rest = Seq_log.claim_unordered t ~max:10 in
  checki "remaining entries claimable" 2 (Array.length rest)

let test_reset_claims_reexposes_entries () =
  let t = mk 3 in
  let a = Seq_log.claim_unordered t ~max:3 in
  checki "all claimed" 3 (Array.length a);
  checki "nothing unclaimed" 0 (Seq_log.unclaimed_count t);
  (* A discarded in-flight batch: forget the claims, entries come back. *)
  Seq_log.reset_claims t;
  checki "unclaimed restored" 3 (Seq_log.unclaimed_count t);
  let b = Seq_log.claim_unordered t ~max:3 in
  checki "reclaimable" 3 (Array.length b)

let test_clear_resets_claims () =
  let t = mk 3 in
  ignore (Seq_log.claim_unordered t ~max:2 : Types.entry array);
  Seq_log.clear t;
  checki "no live entries" 0 (Seq_log.live_count t);
  checki "no unclaimed entries" 0 (Seq_log.unclaimed_count t);
  checki "claim on cleared log is empty" 0
    (Array.length (Seq_log.claim_unordered t ~max:4));
  (* Fresh appends after the reset are claimable again. *)
  (match Seq_log.try_append t (entry 1 1) with
  | Some Seq_log.Appended -> ()
  | _ -> Alcotest.fail "append after clear failed");
  checki "fresh entry claimable" 1
    (Array.length (Seq_log.claim_unordered t ~max:4))

let test_unordered_includes_claimed () =
  (* The recovery flush reads [unordered]; claimed-but-unGCed entries must
     be part of it or a view change would lose them. *)
  let t = mk 4 in
  ignore (Seq_log.claim_unordered t ~max:2 : Types.entry array);
  checki "unordered sees claimed entries" 4
    (List.length (Seq_log.unordered t ()))

let () =
  Alcotest.run "seq_log"
    [
      ( "claims",
        [
          Alcotest.test_case "claim takes in order" `Quick
            test_claim_takes_in_order;
          Alcotest.test_case "claims are disjoint" `Quick
            test_claims_are_disjoint;
          Alcotest.test_case "GC updates claim accounting" `Quick
            test_remove_ordered_updates_claim_accounting;
          Alcotest.test_case "reset re-exposes entries" `Quick
            test_reset_claims_reexposes_entries;
          Alcotest.test_case "clear resets claims" `Quick
            test_clear_resets_claims;
          Alcotest.test_case "unordered includes claimed" `Quick
            test_unordered_includes_claimed;
        ] );
    ]
