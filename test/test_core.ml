(* Tests for core types and the sequencing-replica log (Seq_log): ordering,
   duplicate filtering, rid-keyed GC, capacity backpressure, view reset. *)

open Ll_sim
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let rid c s = { Types.Rid.client = c; seq = s }

let data c s = Types.Data (Types.record ~rid:(rid c s) ~size:100 ())

let rids entries = List.map Types.entry_rid entries

(* --- Types --- *)

let test_rid_compare () =
  checkb "equal" true (Types.Rid.equal (rid 1 2) (rid 1 2));
  checkb "order by client" true (Types.Rid.compare (rid 1 9) (rid 2 0) < 0);
  checkb "order by seq" true (Types.Rid.compare (rid 1 1) (rid 1 2) < 0)

let test_entry_sizes () =
  checki "data size" 4096 (Types.entry_wire_size (Types.Data (Types.record ~rid:(rid 0 1) ~size:4096 ())));
  checki "meta size" Types.meta_size
    (Types.entry_wire_size
       (Types.Meta { rid = rid 0 1; shard = 2; size = 4096; log = 0 }));
  checkb "no-op detected" true (Types.is_no_op Types.no_op);
  checkb "normal record is not no-op" false
    (Types.is_no_op (Types.record ~rid:(rid 0 1) ~size:1 ()))

(* --- Seq_log --- *)

let test_append_order () =
  let l = Seq_log.create ~capacity:16 in
  List.iter
    (fun e -> assert (Seq_log.append_wait l e = Seq_log.Appended))
    [ data 0 1; data 1 1; data 0 2 ];
  Alcotest.(check (list (pair int int)))
    "log order"
    [ (0, 1); (1, 1); (0, 2) ]
    (List.map
       (fun (r : Types.Rid.t) -> (r.client, r.seq))
       (rids (Seq_log.unordered l ())))

let test_duplicate_live () =
  let l = Seq_log.create ~capacity:16 in
  ignore (Seq_log.append_wait l (data 0 1));
  checkb "live duplicate" true (Seq_log.append_wait l (data 0 1) = Seq_log.Duplicate);
  checki "one live entry" 1 (Seq_log.live_count l)

let test_duplicate_after_gc () =
  let l = Seq_log.create ~capacity:16 in
  ignore (Seq_log.append_wait l (data 0 1));
  ignore (Seq_log.append_wait l (data 0 2));
  Seq_log.remove_ordered l [ rid 0 1; rid 0 2 ];
  checki "empty" 0 (Seq_log.live_count l);
  (* A retry of an ordered rid must be filtered. *)
  checkb "ordered duplicate" true
    (Seq_log.append_wait l (data 0 2) = Seq_log.Duplicate);
  (* But a fresh sequence number is accepted. *)
  checkb "fresh accepted" true (Seq_log.append_wait l (data 0 3) = Seq_log.Appended)

let test_remove_arbitrary_set () =
  (* Followers remove the ordered batch by rid even when interleaved with
     other entries. *)
  let l = Seq_log.create ~capacity:16 in
  List.iter
    (fun e -> ignore (Seq_log.append_wait l e))
    [ data 0 1; data 9 1; data 0 2 ];
  Seq_log.remove_ordered l [ rid 0 1; rid 0 2 ];
  Alcotest.(check (list (pair int int)))
    "survivor" [ (9, 1) ]
    (List.map
       (fun (r : Types.Rid.t) -> (r.client, r.seq))
       (rids (Seq_log.unordered l ())))

let test_capacity_backpressure () =
  Engine.run (fun () ->
      let l = Seq_log.create ~capacity:2 in
      ignore (Seq_log.append_wait l (data 0 1));
      ignore (Seq_log.append_wait l (data 0 2));
      let unblocked = ref false in
      Engine.spawn (fun () ->
          ignore (Seq_log.append_wait l (data 0 3));
          unblocked := true);
      Engine.sleep 10;
      checkb "blocked at capacity" false !unblocked;
      Seq_log.remove_ordered l [ rid 0 1 ];
      Engine.sleep 10;
      checkb "gc releases" true !unblocked)

let test_append_or_wait_cancel () =
  Engine.run (fun () ->
      let l = Seq_log.create ~capacity:1 in
      ignore (Seq_log.append_wait l (data 0 1));
      let sealed = ref false in
      let result = ref (Some Seq_log.Appended) in
      Engine.spawn (fun () ->
          result := Seq_log.append_or_wait l (data 0 2) ~cancel:(fun () -> !sealed));
      Engine.sleep 10;
      sealed := true;
      Seq_log.kick l;
      Engine.sleep 10;
      checkb "canceled" true (!result = None))

let test_unordered_max () =
  let l = Seq_log.create ~capacity:16 in
  for i = 1 to 10 do
    ignore (Seq_log.append_wait l (data 0 i))
  done;
  checki "bounded batch" 4 (List.length (Seq_log.unordered l ~max:4 ()));
  checki "full" 10 (List.length (Seq_log.unordered l ()))

let test_clear_keeps_filter () =
  let l = Seq_log.create ~capacity:16 in
  ignore (Seq_log.append_wait l (data 0 1));
  Seq_log.mark_ordered l [ rid 0 5 ];
  Seq_log.clear l;
  checki "cleared" 0 (Seq_log.live_count l);
  checkb "filter survives clear" true
    (Seq_log.append_wait l (data 0 3) = Seq_log.Duplicate);
  checkb "new seq accepted" true
    (Seq_log.append_wait l (data 0 6) = Seq_log.Appended)

let test_gp_counter () =
  let l = Seq_log.create ~capacity:16 in
  checki "initial" 0 (Seq_log.last_ordered_gp l);
  Seq_log.set_last_ordered_gp l 42;
  checki "set" 42 (Seq_log.last_ordered_gp l)

let prop_no_duplicate_rids =
  (* Whatever interleaving of appends/GCs happens, the live log never holds
     the same rid twice and filtered rids never reappear. *)
  QCheck.Test.make ~name:"seq_log never revives ordered rids" ~count:200
    QCheck.(list (pair (int_bound 3) (int_bound 20)))
    (fun ops ->
      let l = Seq_log.create ~capacity:1024 in
      let ordered = Hashtbl.create 16 in
      let ok = ref true in
      List.iteri
        (fun i (c, s) ->
          let r = rid c (s + 1) in
          (match Seq_log.append_wait l (data c (s + 1)) with
          | Seq_log.Appended ->
            if Hashtbl.mem ordered (c, s + 1) then ok := false
          | Seq_log.Duplicate -> ());
          (* Periodically order the first half of the log. *)
          if i mod 5 = 4 then begin
            let entries = Seq_log.unordered l () in
            let half = List.filteri (fun j _ -> j mod 2 = 0) entries in
            let hrids = rids half in
            List.iter
              (fun (r : Types.Rid.t) ->
                Hashtbl.replace ordered (r.client, r.seq) ())
              hrids;
            Seq_log.remove_ordered l hrids
          end;
          ignore r)
        ops;
      (* no duplicates among live entries *)
      let live = rids (Seq_log.unordered l ()) in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (r : Types.Rid.t) ->
          if Hashtbl.mem tbl (r.client, r.seq) then ok := false;
          Hashtbl.replace tbl (r.client, r.seq) ())
        live;
      !ok)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "types",
        [
          Alcotest.test_case "rid compare" `Quick test_rid_compare;
          Alcotest.test_case "entry sizes, no-op" `Quick test_entry_sizes;
        ] );
      ( "seq_log",
        [
          Alcotest.test_case "append order" `Quick test_append_order;
          Alcotest.test_case "duplicate while live" `Quick test_duplicate_live;
          Alcotest.test_case "duplicate after gc" `Quick
            test_duplicate_after_gc;
          Alcotest.test_case "gc arbitrary rid set" `Quick
            test_remove_arbitrary_set;
          Alcotest.test_case "capacity backpressure" `Quick
            test_capacity_backpressure;
          Alcotest.test_case "append_or_wait cancel (seal)" `Quick
            test_append_or_wait_cancel;
          Alcotest.test_case "unordered max" `Quick test_unordered_max;
          Alcotest.test_case "clear keeps duplicate filter" `Quick
            test_clear_keeps_filter;
          Alcotest.test_case "last-ordered-gp" `Quick test_gp_counter;
        ]
        @ qc [ prop_no_duplicate_rids ] );
    ]
