(* Tests for the streaming delivery subsystem (lib/stream): in-order
   exactly-once push off the stable tail, credit-based flow control,
   cursor replication through the sequencing layer, manager recovery
   across a view change, redelivery + dedup under message loss, and
   consumer crash/restart with a durable delivery cursor. *)

open Ll_sim
open Ll_net
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let sub_cfg ?(order_interval = Engine.us 20) () =
  { Config.default with Config.subscriptions = true; order_interval }

let append_n (log : Log_api.t) n =
  for i = 1 to n do
    checkb "acked" true (log.append ~size:256 ~data:(string_of_int i))
  done

(* Spin until the subscriber's durable cursor reaches [upto] (delivery is
   asynchronous push) or the deadline passes. *)
let settle ?(timeout = Engine.ms 50) sub ~upto =
  let deadline = Engine.now () + timeout in
  while Ll_stream.Subscriber.next sub < upto && Engine.now () < deadline do
    Engine.sleep (Engine.ms 1)
  done

(* --- in-order delivery --- *)

let test_in_order_delivery () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg:(sub_cfg ()) () in
      let log = Erwin_m.client cluster in
      let mgr = Ll_stream.Manager.start cluster in
      let got = ref [] in
      let sub =
        Ll_stream.Subscriber.create cluster
          ~manager:(Ll_stream.Manager.endpoint_id mgr)
          ~name:"audit"
          ~on_record:(fun gp r -> got := (gp, r.Types.data) :: !got)
          ()
      in
      append_n log 50;
      settle sub ~upto:50;
      checki "all records delivered" 50 (Ll_stream.Subscriber.delivered sub);
      checki "durable cursor past the tail" 50 (Ll_stream.Subscriber.next sub);
      checki "no duplicates reached the app" 0
        (Ll_stream.Subscriber.dup_skipped sub);
      let expected = List.init 50 (fun i -> (i, string_of_int (i + 1))) in
      Alcotest.(check (list (pair int string)))
        "in order, gap-free, right payloads" expected (List.rev !got);
      checki "manager cursor tracks the acked frontier" 50
        (Option.get (Ll_stream.Manager.cursor_of mgr "audit"));
      Engine.stop ())

(* --- credit-based flow control --- *)

let test_flow_control_window () =
  Engine.run (fun () ->
      (* Window smaller than the push cap: every batch must be clamped to
         the consumer's credits, not the manager's preferred size. *)
      let cluster = Erwin_m.create ~cfg:(sub_cfg ()) () in
      let log = Erwin_m.client cluster in
      let mgr = Ll_stream.Manager.start cluster in
      let sub =
        Ll_stream.Subscriber.create cluster
          ~manager:(Ll_stream.Manager.endpoint_id mgr)
          ~name:"slow" ~window:4 ()
      in
      append_n log 100;
      settle sub ~upto:100;
      checki "all records delivered" 100 (Ll_stream.Subscriber.delivered sub);
      checkb "batches clamped to the 4-credit window" true
        (Ll_stream.Subscriber.max_batch sub <= 4);
      checkb "batching actually happened" true
        (Ll_stream.Subscriber.max_batch sub >= 2);
      Engine.stop ())

(* --- cursor durability: replication and view-change recovery --- *)

let test_cursor_durable_across_view_change () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg:(sub_cfg ()) () in
      let log = Erwin_m.client cluster in
      let mgr = Ll_stream.Manager.start cluster in
      let sub =
        Ll_stream.Subscriber.create cluster
          ~manager:(Ll_stream.Manager.endpoint_id mgr)
          ~name:"audit" ()
      in
      append_n log 30;
      settle sub ~upto:30;
      Engine.sleep (Engine.ms 2);
      (* one-way syncs in flight *)
      (* The acked cursor was replicated to every sequencing replica. *)
      List.iter
        (fun r ->
          match Seq_replica.sub_cursor r "audit" with
          | Some (_epoch, c) ->
            checki
              (Printf.sprintf "replica %d holds the cursor"
                 (Seq_replica.node_id r))
              30 c
          | None -> Alcotest.fail "replica missing the replicated cursor")
        cluster.Erwin_common.replicas;
      let epoch0 = Option.get (Ll_stream.Manager.epoch_of mgr "audit") in
      (* Kill the leader: the view change runs seal/flush/install, and the
         manager rebuilds its cursors from the surviving replicas. *)
      Erwin_common.crash_replica cluster (Erwin_common.leader cluster);
      let deadline = Engine.now () + Engine.ms 100 in
      while Ll_stream.Manager.recoveries mgr = 0 && Engine.now () < deadline do
        Engine.sleep (Engine.ms 1)
      done;
      checki "manager recovered once" 1 (Ll_stream.Manager.recoveries mgr);
      checkb "epoch bumped by recovery" true
        (Option.get (Ll_stream.Manager.epoch_of mgr "audit") > epoch0);
      checki "cursor rebuilt from the replicated floor" 30
        (Option.get (Ll_stream.Manager.cursor_of mgr "audit"));
      (* Delivery continues exactly-once in the new view. *)
      append_n log 20;
      settle sub ~upto:50;
      checki "post-view-change records delivered once" 50
        (Ll_stream.Subscriber.delivered sub);
      Engine.stop ())

(* --- redelivery + dedup under message loss --- *)

let test_exactly_once_under_loss () =
  Engine.run ~seed:7 (fun () ->
      let cluster = Erwin_m.create ~cfg:(sub_cfg ()) () in
      let log = Erwin_m.client cluster in
      let mgr = Ll_stream.Manager.start cluster in
      let sub =
        Ll_stream.Subscriber.create cluster
          ~manager:(Ll_stream.Manager.endpoint_id mgr)
          ~name:"audit" ~window:2 ()
      in
      (* Lossy fabric while the stream is live: pushes and acks both get
         dropped, forcing the at-least-once retry; the durable [next]
         plus cumulative acks must still deliver each record exactly
         once. The tiny window maximizes the number of push round-trips
         exposed to loss. *)
      Fabric.set_drop_probability cluster.Erwin_common.fabric 0.2;
      append_n log 60;
      settle sub ~upto:60 ~timeout:(Engine.ms 500);
      Fabric.set_drop_probability cluster.Erwin_common.fabric 0.0;
      settle sub ~upto:60;
      checki "every record delivered exactly once" 60
        (Ll_stream.Subscriber.delivered sub);
      checkb "loss actually caused redeliveries" true
        (Ll_stream.Manager.redeliveries mgr "audit" > 0);
      checkb "dedup filtered the redelivered prefixes" true
        (Ll_stream.Subscriber.dup_skipped sub > 0);
      Engine.stop ())

(* --- duplicate push filtered by the consumer --- *)

let test_duplicate_push_dedup () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg:(sub_cfg ()) () in
      let log = Erwin_m.client cluster in
      let mgr = Ll_stream.Manager.start cluster in
      let sub =
        Ll_stream.Subscriber.create cluster
          ~manager:(Ll_stream.Manager.endpoint_id mgr)
          ~name:"audit" ()
      in
      append_n log 10;
      settle sub ~upto:10;
      checki "delivered the prefix" 10 (Ll_stream.Subscriber.delivered sub);
      (* Replay an already-delivered batch by hand, as a duplicated
         in-flight push would: same epoch, positions below [next]. The
         consumer must ack its durable cursor and deliver nothing. *)
      let ep = Erwin_common.new_endpoint cluster ~name:"test.replayer" in
      let record =
        { Types.rid = { Types.Rid.client = 0; seq = 1 };
          size = 256;
          data = "1";
          log = 0 }
      in
      let req =
        Proto.St_push
          {
            name = "audit";
            epoch = Ll_stream.Subscriber.epoch sub;
            seq = 999;
            records = [ (0, record) ];
          }
      in
      (match
         Rpc.call_timeout ep
           ~dst:(Ll_stream.Subscriber.node_id sub)
           ~size:(Proto.req_size req) ~timeout:(Engine.ms 10) req
       with
      | Some (Proto.R_sub_ack { upto; _ }) ->
        checki "ack still carries the durable cursor" 10 upto
      | Some _ -> Alcotest.fail "wrong reply shape"
      | None -> Alcotest.fail "replayed push timed out");
      checki "duplicate never reached the app" 10
        (Ll_stream.Subscriber.delivered sub);
      checki "dup was counted, not delivered" 1
        (Ll_stream.Subscriber.dup_skipped sub);
      (* A push branded with a stale epoch is refused outright. *)
      let stale =
        Proto.St_push
          { name = "audit"; epoch = 0; seq = 1000; records = [ (0, record) ] }
      in
      (match
         Rpc.call_timeout ep
           ~dst:(Ll_stream.Subscriber.node_id sub)
           ~size:(Proto.req_size stale) ~timeout:(Engine.ms 10) stale
       with
      | Some (Proto.R_sub_ack { credits; _ }) ->
        checki "stale push answered with zero credits" 0 credits
      | Some _ -> Alcotest.fail "wrong reply shape"
      | None -> Alcotest.fail "stale push timed out");
      checki "stale push delivered nothing" 10
        (Ll_stream.Subscriber.delivered sub);
      Engine.stop ())

(* --- consumer crash / restart --- *)

let test_consumer_crash_restart () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg:(sub_cfg ()) () in
      let log = Erwin_m.client cluster in
      let mgr = Ll_stream.Manager.start cluster in
      let got = ref [] in
      let sub =
        Ll_stream.Subscriber.create cluster
          ~manager:(Ll_stream.Manager.endpoint_id mgr)
          ~name:"audit" ~consume:(Engine.us 5)
          ~on_record:(fun gp _ -> got := gp :: !got)
          ()
      in
      (* Append continuously while the consumer dies mid-stream. *)
      Engine.spawn ~name:"test.writer" (fun () ->
          for i = 1 to 80 do
            ignore (log.append ~size:256 ~data:(string_of_int i) : bool);
            Engine.sleep (Engine.us 20)
          done);
      Engine.sleep (Engine.us 500);
      Ll_stream.Subscriber.crash sub;
      Engine.sleep (Engine.ms 1);
      (* in-flight pushes and acks die with the node *)
      Ll_stream.Subscriber.restart sub;
      settle sub ~upto:80 ~timeout:(Engine.ms 200);
      checki "every record delivered exactly once" 80
        (Ll_stream.Subscriber.delivered sub);
      checkb "re-attach opened a fresh epoch" true
        (Ll_stream.Subscriber.epoch sub > 1);
      let delivered_order = List.rev !got in
      Alcotest.(check (list int))
        "delivery stayed in order and gap-free across the crash"
        (List.init 80 Fun.id) delivered_order;
      Engine.stop ())

(* --- erwin-st: map-resolved fetch path, two independent subscribers --- *)

let test_erwin_st_two_subscribers () =
  Engine.run (fun () ->
      let cfg = { (sub_cfg ()) with Config.nshards = 3 } in
      let cluster = Erwin_st.create ~cfg () in
      let log = Erwin_st.client cluster in
      let mgr = Ll_stream.Manager.start cluster in
      let mk name =
        let got = ref [] in
        let sub =
          Ll_stream.Subscriber.create cluster
            ~manager:(Ll_stream.Manager.endpoint_id mgr)
            ~name
            ~on_record:(fun _ r -> got := r.Types.data :: !got)
            ()
        in
        (sub, got)
      in
      let sub_a, got_a = mk "a" in
      let sub_b, got_b = mk "b" in
      for i = 1 to 60 do
        checkb "acked" true (log.append ~size:512 ~data:(string_of_int i))
      done;
      settle sub_a ~upto:60;
      settle sub_b ~upto:60;
      let expected = List.init 60 (fun i -> string_of_int (i + 1)) in
      Alcotest.(check (list string))
        "subscriber a saw the whole log in order" expected (List.rev !got_a);
      Alcotest.(check (list string))
        "subscriber b saw the whole log in order" expected (List.rev !got_b);
      checki "independent cursors both at the tail" 60
        (min (Ll_stream.Subscriber.next sub_a) (Ll_stream.Subscriber.next sub_b));
      Engine.stop ())

let () =
  Alcotest.run "stream"
    [
      ( "delivery",
        [
          Alcotest.test_case "in-order delivery" `Quick test_in_order_delivery;
          Alcotest.test_case "flow-control window" `Quick
            test_flow_control_window;
          Alcotest.test_case "erwin-st two subscribers" `Quick
            test_erwin_st_two_subscribers;
        ] );
      ( "exactly-once",
        [
          Alcotest.test_case "cursor durable across view change" `Quick
            test_cursor_durable_across_view_change;
          Alcotest.test_case "exactly once under loss" `Quick
            test_exactly_once_under_loss;
          Alcotest.test_case "duplicate push dedup" `Quick
            test_duplicate_push_dedup;
          Alcotest.test_case "consumer crash restart" `Quick
            test_consumer_crash_restart;
        ] );
    ]
