(* Direct protocol tests of a sequencing replica: view checks, sealing,
   duplicate filtering over the wire, state transfer, view installation,
   and appendSync tracking. *)

open Ll_sim
open Ll_net
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let rid c s = { Types.Rid.client = c; seq = s }

let entry ?(size = 128) c s = Types.Data (Types.record ~rid:(rid c s) ~size ())

let with_replica ?(cfg = Config.default) f =
  Engine.run (fun () ->
      let fabric = Fabric.create ~link:cfg.Config.link () in
      let r = Seq_replica.create ~cfg ~fabric ~name:"r0" in
      let node = Fabric.add_node fabric ~name:"probe" () in
      let ep = Rpc.endpoint fabric node in
      f r ep;
      Engine.stop ())

let call r ep req =
  Rpc.call ep ~dst:(Seq_replica.node_id r) ~size:(Proto.req_size req) req

let append ?(view = 0) ?(track = false) r ep e =
  match call r ep (Proto.Sr_append { view; entry = e; track }) with
  | Proto.R_append { ok; _ } -> ok
  | _ -> Alcotest.fail "bad append response"

let test_append_ack_and_dedup () =
  with_replica (fun r ep ->
      checkb "accepted" true (append r ep (entry 1 1));
      checkb "duplicate also acked" true (append r ep (entry 1 1));
      checki "stored once" 1 (Seq_log.live_count (Seq_replica.log r)))

let test_wrong_view_rejected () =
  with_replica (fun r ep ->
      checkb "stale view" false (append ~view:7 r ep (entry 1 1));
      checki "nothing stored" 0 (Seq_log.live_count (Seq_replica.log r)))

let test_seal_rejects_then_install_unseals () =
  with_replica (fun r ep ->
      ignore (append r ep (entry 1 1));
      ignore (call r ep (Proto.Sr_seal { view = 0 }));
      checkb "sealed" true (Seq_replica.is_sealed r);
      checkb "rejected while sealed" false (append r ep (entry 1 2));
      (* Install the next view: log cleared, filter retains ordered rids. *)
      (match
         call r ep
           (Proto.Sr_install_view
              { new_view = 1; new_gp = 1; gps = []; flushed = [ (0, rid 1 1) ] })
       with
      | Proto.R_ok -> ()
      | _ -> Alcotest.fail "install failed");
      checkb "unsealed" false (Seq_replica.is_sealed r);
      checki "view" 1 (Seq_replica.view r);
      checki "gp" 1 (Seq_log.last_ordered_gp (Seq_replica.log r));
      checkb "flushed rid filtered" true (append ~view:1 r ep (entry 1 1));
      checki "still empty (duplicate)" 0 (Seq_log.live_count (Seq_replica.log r));
      checkb "fresh rid accepted" true (append ~view:1 r ep (entry 1 2)))

let test_get_state_returns_unordered () =
  with_replica (fun r ep ->
      ignore (append r ep (entry 1 1));
      ignore (append r ep (entry 2 1));
      match call r ep Proto.Sr_get_state with
      | Proto.R_state { gp; entries; _ } ->
        checki "gp" 0 gp;
        checki "both entries" 2 (List.length entries)
      | _ -> Alcotest.fail "bad state response")

let test_check_tail_includes_unordered () =
  with_replica (fun r ep ->
      ignore (append r ep (entry 1 1));
      ignore (append r ep (entry 1 2));
      Seq_replica.apply_gc r ~slots:[ (0, rid 1 1) ] ~new_gp:1;
      match call r ep (Proto.Sr_check_tail { view = 0; log = 0 }) with
      | Proto.R_tail { ok = true; tail } -> checki "gp + live" 2 tail
      | _ -> Alcotest.fail "bad tail response")

let test_check_tail_rejected_when_sealed () =
  with_replica (fun r ep ->
      ignore (call r ep (Proto.Sr_seal { view = 0 }));
      match call r ep (Proto.Sr_check_tail { view = 0; log = 0 }) with
      | Proto.R_tail { ok; _ } -> checkb "rejected" false ok
      | _ -> Alcotest.fail "bad tail response")

let test_gc_over_wire () =
  with_replica (fun r ep ->
      ignore (append r ep (entry 1 1));
      ignore (append r ep (entry 1 2));
      (match
         call r ep
           (Proto.Sr_gc { view = 0; slots = [ (0, rid 1 1) ]; new_gp = 1 })
       with
      | Proto.R_append { ok = true; _ } -> ()
      | _ -> Alcotest.fail "gc failed");
      checki "one left" 1 (Seq_log.live_count (Seq_replica.log r));
      checki "gp" 1 (Seq_log.last_ordered_gp (Seq_replica.log r));
      (* GC in a stale view must be refused (the controller owns views). *)
      match call r ep (Proto.Sr_gc { view = 9; slots = []; new_gp = 5 }) with
      | Proto.R_append { ok; _ } -> checkb "stale gc refused" false ok
      | _ -> Alcotest.fail "bad gc response")

let test_wait_ordered_tracks () =
  with_replica (fun r ep ->
      checkb "tracked append" true (append ~track:true r ep (entry 3 1));
      let got = ref (-1) in
      Engine.spawn (fun () ->
          match call r ep (Proto.Sr_wait_ordered { rid = rid 3 1 }) with
          | Proto.R_gp { gp } -> got := gp
          | _ -> ());
      Engine.sleep (Engine.us 50);
      checki "still waiting" (-1) !got;
      Seq_replica.apply_gc r ~slots:[ (42, rid 3 1) ] ~new_gp:43;
      Engine.sleep (Engine.us 50);
      checki "woken with position" 42 !got)

let test_seal_releases_blocked_appends () =
  let cfg = { Config.default with seq_capacity = 1 } in
  with_replica ~cfg (fun r ep ->
      ignore (append r ep (entry 1 1));
      let result = ref None in
      Engine.spawn (fun () -> result := Some (append r ep (entry 1 2)));
      Engine.sleep (Engine.us 100);
      checkb "blocked on capacity" true (!result = None);
      ignore (call r ep (Proto.Sr_seal { view = 0 }));
      Engine.sleep (Engine.ms 1);
      checkb "released with rejection" true (!result = Some false))

let () =
  Alcotest.run "seq_replica"
    [
      ( "protocol",
        [
          Alcotest.test_case "append ack + dedup" `Quick
            test_append_ack_and_dedup;
          Alcotest.test_case "wrong view rejected" `Quick
            test_wrong_view_rejected;
          Alcotest.test_case "seal / install-view cycle" `Quick
            test_seal_rejects_then_install_unseals;
          Alcotest.test_case "get_state" `Quick test_get_state_returns_unordered;
          Alcotest.test_case "checkTail includes unordered" `Quick
            test_check_tail_includes_unordered;
          Alcotest.test_case "checkTail rejected when sealed" `Quick
            test_check_tail_rejected_when_sealed;
          Alcotest.test_case "gc over wire + view check" `Quick
            test_gc_over_wire;
          Alcotest.test_case "wait_ordered tracking" `Quick
            test_wait_ordered_tracks;
          Alcotest.test_case "seal releases blocked appends" `Quick
            test_seal_releases_blocked_appends;
        ] );
    ]
