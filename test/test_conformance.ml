(* Log_api conformance: one behavioral suite, run against every shared-log
   implementation in the repository. Each backend must provide the figure 2
   semantics: durable acked appends, position-ordered reads that return
   what was appended, a tail that counts durable records, prefix trim, and
   (where offered) an appendSync that returns consistent positions. *)

open Ll_sim
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

type backend = {
  bname : string;
  make : unit -> (unit -> Log_api.t);
      (** build the system inside a sim; returns a client factory *)
  has_trim : bool;
  settle : Engine.time;  (** post-append settling time before final reads *)
}

let backends =
  [
    {
      bname = "erwin-m";
      make =
        (fun () ->
          let c = Erwin_m.create ~cfg:{ Config.default with nshards = 2 } () in
          fun () -> Erwin_m.client c);
      has_trim = true;
      settle = Engine.ms 5;
    };
    {
      bname = "erwin-st";
      make =
        (fun () ->
          let c = Erwin_st.create ~cfg:{ Config.default with nshards = 2 } () in
          fun () -> Erwin_st.client c);
      has_trim = true;
      settle = Engine.ms 5;
    };
    (* The same two systems with the client-side group-commit batcher on:
       the full Log_api contract must hold when every append rides a
       coalesced Sr_append_batch. *)
    {
      bname = "erwin-m batched";
      make =
        (fun () ->
          let cfg =
            {
              Config.default with
              nshards = 2;
              append_batching = true;
              linger = Engine.us 5;
            }
          in
          let c = Erwin_m.create ~cfg () in
          fun () -> Erwin_m.client c);
      has_trim = true;
      settle = Engine.ms 5;
    };
    {
      bname = "erwin-st batched";
      make =
        (fun () ->
          let cfg =
            {
              Config.default with
              nshards = 2;
              append_batching = true;
              linger = Engine.us 5;
            }
          in
          let c = Erwin_st.create ~cfg () in
          fun () -> Erwin_st.client c);
      has_trim = true;
      settle = Engine.ms 5;
    };
    {
      bname = "corfu";
      make =
        (fun () ->
          let c =
            Ll_corfu.Corfu.create
              ~config:{ Ll_corfu.Corfu.default_config with nshards = 2 }
              ()
          in
          fun () -> Ll_corfu.Corfu.client c);
      has_trim = true;
      settle = Engine.ms 1;
    };
    {
      bname = "scalog";
      make =
        (fun () ->
          let c =
            Ll_scalog.Scalog.create
              ~config:
                {
                  Ll_scalog.Scalog.default_config with
                  nshards = 2;
                  rpc_overhead = Engine.us 2;
                }
              ()
          in
          fun () -> Ll_scalog.Scalog.client c);
      has_trim = true;
      settle = Engine.ms 2;
    };
    {
      bname = "kafka";
      make =
        (fun () ->
          let k =
            Ll_kafka.Kafka.create
              ~config:
                { Ll_kafka.Kafka.default_config with linger = Engine.us 100 }
              ()
          in
          fun () -> Ll_kafka.Kafka.client_log k);
      has_trim = false;
      settle = Engine.ms 2;
    };
  ]

let conformance b () =
  Engine.run (fun () ->
      let factory = b.make () in
      let log = factory () in
      (* appends ack *)
      for i = 1 to 20 do
        checkb "append acked" true
          (log.Log_api.append ~size:128 ~data:(string_of_int i))
      done;
      Engine.sleep b.settle;
      (* tail counts durable records *)
      checki "tail" 20 (log.Log_api.check_tail ());
      (* reads return the appended data, in order, once *)
      let records = log.Log_api.read ~from:0 ~len:20 in
      checki "read all" 20 (List.length records);
      List.iteri
        (fun i (r : Types.record) ->
          Alcotest.(check string)
            (Printf.sprintf "record %d" i)
            (string_of_int (i + 1))
            r.data)
        records;
      (* partial range read *)
      let sub = log.Log_api.read ~from:5 ~len:3 in
      Alcotest.(check (list string))
        "range read" [ "6"; "7"; "8" ]
        (List.map (fun (r : Types.record) -> r.Types.data) sub);
      (* a second client sees the same log *)
      let log2 = factory () in
      let again = log2.Log_api.read ~from:0 ~len:20 in
      Alcotest.(check (list string))
        "second client agrees"
        (List.map (fun (r : Types.record) -> r.Types.data) records)
        (List.map (fun (r : Types.record) -> r.Types.data) again);
      (* trim removes exactly the prefix *)
      if b.has_trim then begin
        checkb "trim" true (log.Log_api.trim ~upto:10);
        let rest = log.Log_api.read ~from:10 ~len:10 in
        checki "suffix intact" 10 (List.length rest);
        let gone = log.Log_api.read ~from:0 ~len:20 in
        checki "prefix dropped" 10 (List.length gone)
      end;
      (* appendSync (when offered) returns the next positions *)
      (match log.Log_api.append_sync with
      | Some f ->
        let p1 = f ~size:64 ~data:"s1" in
        let p2 = f ~size:64 ~data:"s2" in
        checki "sync position" 20 p1;
        checki "sync position 2" 21 p2
      | None -> ());
      Engine.stop ())

let () =
  Alcotest.run "conformance"
    [
      ( "log_api",
        List.map
          (fun b -> Alcotest.test_case b.bname `Quick (conformance b))
          backends );
    ]
