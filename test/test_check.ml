(* Tests for the ll_check simulation checker: fault-script and artifact
   serialization, clean sweeps over healthy systems, the crash-sweep
   property expressed on the always-on monitors, and the full
   bug-catch -> shrink -> artifact -> deterministic-replay loop against
   the intentional no-pinning bug gate. *)

open Ll_sim
open Ll_check

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let assert_clean (o : Checker.outcome) =
  match o.Checker.violation with
  | None -> ()
  | Some v ->
    Alcotest.failf "unexpected violation (%s seed %d): %s"
      o.Checker.scenario.Artifact.system o.Checker.scenario.Artifact.seed
      (Format.asprintf "%a" Monitors.pp_violation v)

(* --- serialization --- *)

let test_script_roundtrip () =
  (* One print truncates float fields; after that, print/parse must be a
     fixed point for every kind of generated step. *)
  let rng = Random.State.make [| 42 |] in
  let seen = ref 0 in
  for _ = 1 to 50 do
    let script =
      Fault_dsl.gen rng ~horizon:Checker.default_horizon ~nreplicas:3
        ~nshards:2
    in
    List.iter
      (fun step ->
        incr seen;
        let s = Fault_dsl.step_to_string step in
        Alcotest.(check string)
          "step print/parse fixed point" s
          (Fault_dsl.step_to_string (Fault_dsl.step_of_string s)))
      script
  done;
  checkb "generator produced steps" true (!seen > 20)

let test_gray_script_roundtrip () =
  (* The gray distribution's verbs (linkfault/stutter/degrade) must
     print/parse as a fixed point too, and the generator must actually
     draw them. *)
  let rng = Random.State.make [| 97 |] in
  let counts = ref Fault_dsl.{
    crashes = 0; partitions = 0; losses = 0; stragglers = 0;
    linkfaults = 0; stutters = 0; degrades = 0 } in
  for _ = 1 to 80 do
    let script =
      Fault_dsl.gen ~gray:true rng ~horizon:Checker.default_horizon
        ~nreplicas:3 ~nshards:2
    in
    let c = Fault_dsl.count_kind script in
    counts :=
      Fault_dsl.
        {
          crashes = !counts.crashes + c.crashes;
          partitions = !counts.partitions + c.partitions;
          losses = !counts.losses + c.losses;
          stragglers = !counts.stragglers + c.stragglers;
          linkfaults = !counts.linkfaults + c.linkfaults;
          stutters = !counts.stutters + c.stutters;
          degrades = !counts.degrades + c.degrades;
        };
    List.iter
      (fun step ->
        let s = Fault_dsl.step_to_string step in
        Alcotest.(check string)
          "gray step print/parse fixed point" s
          (Fault_dsl.step_to_string (Fault_dsl.step_of_string s)))
      script
  done;
  checkb "gray generator draws link faults" true (!counts.Fault_dsl.linkfaults > 0);
  checkb "gray generator draws stutters" true (!counts.Fault_dsl.stutters > 0);
  checkb "gray generator draws degrades" true (!counts.Fault_dsl.degrades > 0)

let test_classic_generation_unchanged_by_gray_flag () =
  (* gen ~gray:false must be byte-identical to the historical generator:
     old seeds regenerate their exact scripts. *)
  let gen ~gray seed =
    Fault_dsl.gen ~gray
      (Random.State.make [| seed |])
      ~horizon:Checker.default_horizon ~nreplicas:3 ~nshards:2
    |> List.map Fault_dsl.step_to_string
  in
  for seed = 1 to 20 do
    Alcotest.(check (list string))
      "explicit ~gray:false matches default" (gen ~gray:false seed)
      (Fault_dsl.gen
         (Random.State.make [| seed |])
         ~horizon:Checker.default_horizon ~nreplicas:3 ~nshards:2
      |> List.map Fault_dsl.step_to_string)
  done

let test_pre_gray_artifact_parses () =
  (* Backward compat: artifacts written before the gray field existed
     must load with gray defaulting to off. *)
  let a : Artifact.t =
    {
      Artifact.scenario =
        Checker.scenario ~system:"erwin-m" ~seed:3
          ~horizon:Checker.quick_horizon ();
      invariant = "durability";
      detail = "d";
      at_event = 17;
      at_time = 42;
    }
  in
  let s = Artifact.to_string a in
  let without_gray =
    String.split_on_char '\n' s
    |> List.filter (fun l ->
           not (String.length l >= 5 && String.sub l 0 5 = "gray "))
    |> String.concat "\n"
  in
  let a' = Artifact.of_string without_gray in
  checkb "gray defaults to false" false a'.Artifact.scenario.Artifact.gray;
  checki "rest of the artifact intact" 17 a'.Artifact.at_event

let test_script_generation_deterministic () =
  let gen seed =
    Fault_dsl.gen
      (Random.State.make [| seed |])
      ~horizon:Checker.default_horizon ~nreplicas:3 ~nshards:2
    |> List.map Fault_dsl.step_to_string
  in
  Alcotest.(check (list string)) "same seed, same script" (gen 7) (gen 7)

(* --- healthy systems stay clean --- *)

let test_healthy_sweep_clean () =
  let scenarios =
    List.concat_map
      (fun system ->
        List.init 3 (fun i ->
            Checker.scenario ~system ~seed:(i + 1)
              ~horizon:Checker.quick_horizon ()))
      [ "erwin-m"; "erwin-st" ]
  in
  let outcomes = Checker.sweep ~jobs:2 scenarios in
  checki "all scenarios ran" (List.length scenarios) (List.length outcomes);
  List.iter assert_clean outcomes;
  let acked =
    List.fold_left
      (fun a (o : Checker.outcome) -> a + o.Checker.coverage.Monitors.acked)
      0 outcomes
  in
  checkb "workload made progress" true (acked > 100)

let test_healthy_sweep_clean_batched () =
  (* Same shape as the sweep above, but the clients run with append group
     commit on: batches that straddle injected jitter must still never
     half-ack, and the monitors must stay silent. *)
  let scenarios =
    List.concat_map
      (fun system ->
        List.init 3 (fun i ->
            Checker.scenario ~system ~seed:(i + 11) ~batching:true
              ~horizon:Checker.quick_horizon ()))
      [ "erwin-m"; "erwin-st" ]
  in
  let outcomes = Checker.sweep ~jobs:2 scenarios in
  checki "all scenarios ran" (List.length scenarios) (List.length outcomes);
  List.iter assert_clean outcomes;
  let acked =
    List.fold_left
      (fun a (o : Checker.outcome) -> a + o.Checker.coverage.Monitors.acked)
      0 outcomes
  in
  checkb "workload made progress" true (acked > 100)

let test_healthy_sweep_clean_replica_reads () =
  (* The demand-driven read path under crash faults: readers probe at
     the stable tail, so demand binding, backup serving and
     forward-to-primary all fire, and the read-agreement /
     read-stability monitors must stay silent. *)
  let scenarios =
    List.concat_map
      (fun system ->
        List.init 3 (fun i ->
            Checker.scenario ~system ~seed:(i + 21) ~replica_reads:true
              ~horizon:Checker.quick_horizon ()))
      [ "erwin-m"; "erwin-st" ]
  in
  let outcomes = Checker.sweep ~jobs:2 scenarios in
  checki "all scenarios ran" (List.length scenarios) (List.length outcomes);
  List.iter assert_clean outcomes;
  let reads =
    List.fold_left
      (fun a (o : Checker.outcome) -> a + o.Checker.coverage.Monitors.reads)
      0 outcomes
  in
  checkb "tail readers actually read" true (reads > 50)

let test_healthy_sweep_clean_subscriptions () =
  (* Streaming delivery under the fault scripts: two subscribers (one
     with a crash/restart cycle) receive pushes off the stable tail
     while crashes, partitions, loss and stragglers fire. The
     exactly-once monitor must stay silent and every stable record must
     have been delivered by the drain. *)
  let scenarios =
    List.concat_map
      (fun system ->
        List.init 3 (fun i ->
            Checker.scenario ~system ~seed:(i + 31) ~subscriptions:true
              ~horizon:Checker.quick_horizon ()))
      [ "erwin-m"; "erwin-st" ]
  in
  let outcomes = Checker.sweep ~jobs:2 scenarios in
  checki "all scenarios ran" (List.length scenarios) (List.length outcomes);
  List.iter assert_clean outcomes;
  let delivered =
    List.fold_left
      (fun a (o : Checker.outcome) ->
        a + o.Checker.coverage.Monitors.delivered)
      0 outcomes
  in
  checkb "subscribers actually received pushes" true (delivered > 100)

let test_healthy_sweep_clean_gray () =
  (* Hostile-world mode: fail-slow faults (asymmetric link faults, disk
     stutter/degrade) against every mitigation (hedged reads, retry
     budgets, outlier eviction). The safety monitors and the post-drain
     progress audit must stay silent. *)
  let scenarios =
    List.concat_map
      (fun system ->
        List.init 4 (fun i ->
            Checker.scenario ~system ~seed:(i + 41) ~gray:true
              ~horizon:Checker.quick_horizon ()))
      [ "erwin-m"; "erwin-st" ]
  in
  let outcomes = Checker.sweep ~jobs:2 scenarios in
  checki "all scenarios ran" (List.length scenarios) (List.length outcomes);
  List.iter assert_clean outcomes;
  let acked =
    List.fold_left
      (fun a (o : Checker.outcome) -> a + o.Checker.coverage.Monitors.acked)
      0 outcomes
  in
  checkb "workload made progress under gray faults" true (acked > 100)

(* The crash-sweep property from the linearizability suite, re-expressed
   on the checker's monitors: for ANY crash time in the first 4 ms and
   any victim, no invariant fires — durability of acked records, order,
   and stable-prefix immutability hold through the reconfiguration. *)
let crash_prop ~name ~batching =
  QCheck.Test.make ~name ~count:15
    QCheck.(pair (int_bound 4_000) (int_bound 2))
    (fun (crash_us, victim) ->
      let sc =
        Checker.scenario ~system:"erwin-m"
          ~seed:(crash_us + (victim * 7919))
          ~batching ~horizon:Checker.quick_horizon ()
      in
      let sc =
        {
          sc with
          Artifact.script =
            [ Fault_dsl.Crash { at = Engine.us crash_us; victim } ];
        }
      in
      (Checker.run_one sc).Checker.violation = None)

let prop_monitors_clean_any_crash_time =
  crash_prop ~name:"erwin-m monitors clean for any crash point"
    ~batching:false

(* With the linger batcher on, a batch in flight (or still lingering)
   when the replica crashes must fail atomically per record — a half-ack
   would trip the durability monitor after reconfiguration. *)
let prop_monitors_clean_any_crash_time_batched =
  crash_prop
    ~name:"erwin-m batched monitors clean for any crash point"
    ~batching:true

(* --- the checker catches a real (planted) bug --- *)

let find_planted_bug () =
  let rec go seed =
    if seed > 40 then
      Alcotest.fail "no-pinning bug not caught within 40 seeds"
    else
      let sc =
        Checker.scenario ~system:"erwin-st" ~seed ~bug:"no-pinning"
          ~horizon:Checker.quick_horizon ()
      in
      let o = Checker.run_one sc in
      match o.Checker.violation with Some v -> (o, v) | None -> go (seed + 1)
  in
  go 1

let test_bug_catch_shrink_replay () =
  let o, v = find_planted_bug () in
  Alcotest.(check string)
    "no-pinning violates durability" "durability" v.Monitors.invariant;
  (* Deterministic replay: the same scenario violates the same invariant
     at the same event counter. *)
  let o2 = Checker.run_one o.Checker.scenario in
  (match o2.Checker.violation with
  | Some v2 ->
    Alcotest.(check string)
      "replay: same invariant" v.Monitors.invariant v2.Monitors.invariant;
    checki "replay: same event counter" v.Monitors.at_event
      v2.Monitors.at_event
  | None -> Alcotest.fail "replay did not reproduce the violation");
  (* Greedy shrinking keeps the violation while never growing the
     script. *)
  let shrunk = Checker.shrink o.Checker.scenario v in
  checkb "shrunk script no longer" true
    (List.length shrunk.Artifact.script
    <= List.length o.Checker.scenario.Artifact.script);
  (match (Checker.run_one shrunk).Checker.violation with
  | Some v3 ->
    Alcotest.(check string)
      "shrunk script still violates" v.Monitors.invariant
      v3.Monitors.invariant
  | None -> Alcotest.fail "shrunk script lost the violation");
  (* Artifact serialization: print/parse is a fixed point, and a parsed
     artifact still replays. *)
  let a = Option.get (Checker.artifact_of o) in
  let s = Artifact.to_string a in
  let a' = Artifact.of_string s in
  Alcotest.(check string) "artifact print/parse fixed point" s
    (Artifact.to_string a');
  (match (Checker.run_one a'.Artifact.scenario).Checker.violation with
  | Some v4 ->
    checki "parsed artifact replays at recorded event" a.Artifact.at_event
      v4.Monitors.at_event
  | None -> Alcotest.fail "parsed artifact did not reproduce")

(* Without the bug gate the very same seeds stay clean — the catch above
   is the gate's doing, not checker noise. *)
let test_same_seeds_clean_without_bug () =
  for seed = 1 to 5 do
    assert_clean
      (Checker.run_one
         (Checker.scenario ~system:"erwin-st" ~seed
            ~horizon:Checker.quick_horizon ()))
  done

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "check"
    [
      ( "serialization",
        [
          Alcotest.test_case "fault script round-trip" `Quick
            test_script_roundtrip;
          Alcotest.test_case "script generation deterministic" `Quick
            test_script_generation_deterministic;
          Alcotest.test_case "gray fault script round-trip" `Quick
            test_gray_script_roundtrip;
          Alcotest.test_case "classic generation unchanged by gray flag"
            `Quick test_classic_generation_unchanged_by_gray_flag;
          Alcotest.test_case "pre-gray artifact parses" `Quick
            test_pre_gray_artifact_parses;
        ] );
      ( "healthy systems",
        [
          Alcotest.test_case "sweep stays clean" `Quick
            test_healthy_sweep_clean;
          Alcotest.test_case "sweep stays clean with batching" `Quick
            test_healthy_sweep_clean_batched;
          Alcotest.test_case "sweep stays clean with replica reads" `Quick
            test_healthy_sweep_clean_replica_reads;
          Alcotest.test_case "sweep stays clean with subscriptions" `Quick
            test_healthy_sweep_clean_subscriptions;
          Alcotest.test_case "sweep stays clean under gray faults" `Quick
            test_healthy_sweep_clean_gray;
          Alcotest.test_case "erwin-st clean on bug-sweep seeds" `Quick
            test_same_seeds_clean_without_bug;
        ]
        @ qc
            [
              prop_monitors_clean_any_crash_time;
              prop_monitors_clean_any_crash_time_batched;
            ] );
      ( "planted bug",
        [
          Alcotest.test_case "catch, shrink, replay" `Quick
            test_bug_catch_shrink_replay;
        ] );
    ]
