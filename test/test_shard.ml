(* Direct protocol tests of the Erwin shard service: pushes and
   replication, read gating on stable-gp, logical tail overwrite
   (unbind/truncate), map chunks, backup backfill, and journal
   accounting. *)

open Ll_sim
open Ll_net
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let rid c s = { Types.Rid.client = c; seq = s }

let record ?(size = 256) c s data = Types.record ~rid:(rid c s) ~size ~data ()

let with_shard ?(cfg = Config.default) f =
  Engine.run (fun () ->
      let fabric = Fabric.create ~link:cfg.Config.link () in
      let shard = Shard.create ~cfg ~fabric ~shard_id:0 in
      let node =
        Fabric.add_node fabric ~name:"probe" ~send_overhead:500
          ~recv_overhead:500 ()
      in
      let ep = Rpc.endpoint fabric node in
      f shard ep;
      Engine.stop ())

let call ep shard req =
  Rpc.call ep ~dst:(Shard.primary_id shard) ~size:(Proto.req_size req) req

let push ep shard ?truncate_from slots =
  match
    call ep shard (Proto.Msh_push { truncate_from; truncate_logs = []; slots })
  with
  | Proto.R_ok -> ()
  | _ -> Alcotest.fail "push failed"

let set_stable ep shard gp =
  match call ep shard (Proto.Sh_set_stable { gp }) with
  | Proto.R_ok -> ()
  | _ -> Alcotest.fail "set_stable failed"

let read ep shard positions =
  match call ep shard (Proto.Sh_read { positions; stable_hint = 0 }) with
  | Proto.R_records { records; _ } -> records
  | _ -> Alcotest.fail "read failed"

let test_push_and_read () =
  with_shard (fun shard ep ->
      push ep shard [ (0, record 1 1 "a"); (1, record 1 2 "b") ];
      set_stable ep shard 2;
      let records = read ep shard [ 0; 1 ] in
      checki "both" 2 (List.length records);
      Alcotest.(check string) "first" "a" (snd (List.hd records)).Types.data)

let test_read_blocks_until_stable () =
  with_shard (fun shard ep ->
      push ep shard [ (0, record 1 1 "a") ];
      let got = ref None in
      Engine.spawn (fun () -> got := Some (read ep shard [ 0 ]));
      Engine.sleep (Engine.ms 1);
      checkb "read gated on stable-gp" true (!got = None);
      set_stable ep shard 1;
      Engine.sleep (Engine.ms 1);
      (match !got with
      | Some [ (0, r) ] -> Alcotest.(check string) "value" "a" r.Types.data
      | _ -> Alcotest.fail "read did not complete"))

let test_replication_to_backups () =
  (* The primary must not ack a push before its backups have it: crash a
     backup and the push cannot complete. *)
  Engine.run (fun () ->
      let cfg = { Config.default with shard_backup_count = 1 } in
      let fabric = Fabric.create () in
      let shard = Shard.create ~cfg ~fabric ~shard_id:0 in
      let node = Fabric.add_node fabric ~name:"probe" () in
      let ep = Rpc.endpoint fabric node in
      (* Crash the backup (node id 1: primary is 0). *)
      Fabric.crash fabric (Fabric.node_by_id fabric 1);
      let answered = ref false in
      Engine.spawn (fun () ->
          ignore
            (call ep shard
               (Proto.Msh_push
                  { truncate_from = None;
                    truncate_logs = [];
                    slots = [ (0, record 1 1 "a") ] }));
          answered := true);
      Engine.sleep (Engine.ms 5);
      checkb "push unacknowledged without backup" false !answered;
      Engine.stop ())

let test_truncate_overwrite () =
  with_shard (fun shard ep ->
      push ep shard [ (0, record 1 1 "old0"); (1, record 1 2 "old1") ];
      (* Recovery overwrites the tail from position 1. *)
      push ep shard ~truncate_from:1 [ (1, record 2 1 "new1") ];
      set_stable ep shard 2;
      let records = read ep shard [ 0; 1 ] in
      Alcotest.(check (list string))
        "overwritten" [ "old0"; "new1" ]
        (List.map (fun (_, (r : Types.record)) -> r.data) records))

let test_st_unbind_restages () =
  (* Erwin-st truncate moves bound records back to staging so recovery can
     rebind them at different positions. *)
  with_shard (fun shard ep ->
      let r1 = record 1 1 "x" in
      (match call ep shard (Proto.Ssh_data_write { record = r1 }) with
      | Proto.R_append { ok = true; _ } -> ()
      | _ -> Alcotest.fail "stage failed");
      (match
         call ep shard
           (Proto.Ssh_order
              { truncate_from = None;
                truncate_logs = [];
                bindings = [ (5, rid 1 1) ];
                map_chunk = [ (5, 0) ] })
       with
      | Proto.R_ok -> ()
      | _ -> Alcotest.fail "order failed");
      checki "bound, staging empty" 0 (Shard.staged_count shard);
      (* Rebind at a different position after a truncate. *)
      (match
         call ep shard
           (Proto.Ssh_order
              { truncate_from = Some 2;
                truncate_logs = [];
                bindings = [ (3, rid 1 1) ];
                map_chunk = [ (3, 0) ] })
       with
      | Proto.R_ok -> ()
      | _ -> Alcotest.fail "reorder failed");
      set_stable ep shard 4;
      (match read ep shard [ 3 ] with
      | [ (3, r) ] -> Alcotest.(check string) "rebound" "x" r.Types.data
      | l -> Alcotest.failf "expected 1, got %d" (List.length l));
      checkb "old position gone" true (Shard.read_local shard 5 = None))

let test_get_map_waits_and_serves () =
  with_shard (fun shard ep ->
      let r1 = record 1 1 "x" in
      ignore (call ep shard (Proto.Ssh_data_write { record = r1 }));
      ignore
        (call ep shard
           (Proto.Ssh_order
              { truncate_from = None;
                truncate_logs = [];
                bindings = [ (0, rid 1 1) ];
                map_chunk = [ (0, 0); (1, 2); (2, 1) ] }));
      set_stable ep shard 3;
      (match call ep shard (Proto.Ssh_get_map { from = 0; count = 10; stable_hint = 0 }) with
      | Proto.R_map { chunk; _ } ->
        Alcotest.(check (list (pair int int)))
          "full chunk, all shards' positions"
          [ (0, 0); (1, 2); (2, 1) ]
          chunk
      | _ -> Alcotest.fail "bad map response"))

let test_read_repair_via_stable_hint () =
  (* A shard that missed the final Sh_set_stable (it is a lossy one-way
     broadcast) must still serve reads carrying the client's stable hint:
     the hint repairs the local stable mirror and unblocks any reads
     already parked on it. *)
  with_shard (fun shard ep ->
      push ep shard [ (0, record 1 1 "a"); (1, record 1 2 "b") ];
      (* The covering Sh_set_stable is never delivered. A hint-less read
         parks... *)
      let parked = ref None in
      Engine.spawn (fun () -> parked := Some (read ep shard [ 0 ]));
      Engine.sleep (Engine.ms 1);
      checkb "hint-less read parked" true (!parked = None);
      (* ...while a hinted read both answers and repairs the mirror. *)
      (match
         call ep shard (Proto.Sh_read { positions = [ 0; 1 ]; stable_hint = 2 })
       with
      | Proto.R_records { records; _ } -> checki "served" 2 (List.length records)
      | _ -> Alcotest.fail "hinted read failed");
      Engine.sleep (Engine.ms 1);
      (match !parked with
      | Some [ (0, r) ] ->
        Alcotest.(check string) "parked read repaired too" "a" r.Types.data
      | _ -> Alcotest.fail "parked read still blocked after repair"))

let test_get_map_stable_hint () =
  (* Same repair path for Erwin-st map chunks. *)
  with_shard (fun shard ep ->
      ignore (call ep shard (Proto.Ssh_data_write { record = record 1 1 "x" }));
      ignore
        (call ep shard
           (Proto.Ssh_order
              { truncate_from = None;
                truncate_logs = [];
                bindings = [ (0, rid 1 1) ];
                map_chunk = [ (0, 0) ] }));
      (* No Sh_set_stable: the request's hint stands in for it. *)
      (match
         call ep shard (Proto.Ssh_get_map { from = 0; count = 4; stable_hint = 1 })
       with
      | Proto.R_map { chunk; _ } ->
        Alcotest.(check (list (pair int int))) "chunk served" [ (0, 0) ] chunk
      | _ -> Alcotest.fail "bad map response"))

let test_backfill_to_backup () =
  (* A backup missing a staged record asks for backfill during order
     replication; afterwards both replicas hold the bound record. *)
  Engine.run (fun () ->
      let cfg = { Config.default with shard_backup_count = 1 } in
      let fabric = Fabric.create () in
      let shard = Shard.create ~cfg ~fabric ~shard_id:0 in
      let node = Fabric.add_node fabric ~name:"probe" () in
      let ep = Rpc.endpoint fabric node in
      (* Stage only on the primary (simulates a client that died after one
         data write). *)
      let r1 = record 1 1 "solo" in
      (match
         Rpc.call ep ~dst:(Shard.primary_id shard)
           (Proto.Ssh_data_write { record = r1 })
       with
      | Proto.R_append { ok = true; _ } -> ()
      | _ -> Alcotest.fail "stage failed");
      (match
         Rpc.call ep ~dst:(Shard.primary_id shard)
           (Proto.Ssh_order
              { truncate_from = None;
                truncate_logs = [];
                bindings = [ (0, rid 1 1) ];
                map_chunk = [ (0, 0) ] })
       with
      | Proto.R_ok -> ()
      | _ -> Alcotest.fail "order failed");
      (* The record was NOT a no-op (primary had it), and the backup got
         backfilled: read after stable. *)
      ignore
        (Rpc.call ep ~dst:(Shard.primary_id shard) (Proto.Sh_set_stable { gp = 1 }));
      (match
         Rpc.call ep ~dst:(Shard.primary_id shard) (Proto.Sh_read { positions = [ 0 ]; stable_hint = 0 })
       with
      | Proto.R_records { records = [ (0, r) ]; _ } ->
        Alcotest.(check string) "bound" "solo" r.Types.data
      | _ -> Alcotest.fail "read failed");
      Engine.stop ())

let test_journal_retry_dedup () =
  (* A retried data write of the same rid must not hit the device twice. *)
  with_shard (fun shard ep ->
      let r1 = record ~size:4096 1 1 "x" in
      ignore (call ep shard (Proto.Ssh_data_write { record = r1 }));
      ignore (call ep shard (Proto.Ssh_data_write { record = r1 }));
      ignore (call ep shard (Proto.Ssh_data_write { record = r1 }));
      checki "staged once" 1 (Shard.staged_count shard))

let test_trim_drops_prefix () =
  with_shard (fun shard ep ->
      push ep shard (List.init 6 (fun i -> (i, record 1 (i + 1) (string_of_int i))));
      set_stable ep shard 6;
      (match call ep shard (Proto.Sh_trim { upto = 3 }) with
      | Proto.R_ok -> ()
      | _ -> Alcotest.fail "trim failed");
      let records = read ep shard [ 0; 1; 2; 3; 4; 5 ] in
      Alcotest.(check (list int))
        "only suffix" [ 3; 4; 5 ]
        (List.map fst records))

let test_backup_replacement () =
  (* Crash a backup, keep pushing, replace it, and verify the replacement
     holds the full shard state — including records pushed during the
     copy (section 5.4). *)
  Engine.run (fun () ->
      let cfg = { Config.default with shard_backup_count = 1 } in
      let fabric = Fabric.create () in
      let shard = Shard.create ~cfg ~fabric ~shard_id:0 in
      let node = Fabric.add_node fabric ~name:"probe" () in
      let ep = Rpc.endpoint fabric node in
      push ep shard [ (0, record 1 1 "a"); (1, record 1 2 "b") ];
      (* Kill the backup: pushes degrade (retry until giving up) but the
         primary stays usable. *)
      let dead = List.hd (Shard.backup_ids shard) in
      Fabric.crash fabric (Fabric.node_by_id fabric dead);
      Engine.spawn (fun () -> push ep shard [ (2, record 1 3 "c") ]);
      Engine.sleep (Engine.ms 2);
      (* Replace; pushes racing the copy are caught by the delta pass. *)
      Shard.replace_backup shard ~index:0;
      Engine.sleep (Engine.ms 600);
      push ep shard [ (3, record 1 4 "d") ];
      set_stable ep shard 4;
      checki "four records on the primary" 4
        (List.length (Shard.bound_positions shard));
      (* The new backup answers replication traffic: a further push must
         complete quickly (no retry storms). *)
      let t0 = Engine.now () in
      push ep shard [ (4, record 1 5 "e") ];
      checkb "replication healthy again" true
        (Engine.now () - t0 < Engine.ms 2);
      Engine.stop ())

let test_replacement_under_st_staging () =
  (* The replacement must also carry staged (unordered) records so later
     bindings on the new backup do not need backfill. *)
  Engine.run (fun () ->
      let cfg = { Config.default with shard_backup_count = 1 } in
      let fabric = Fabric.create () in
      let shard = Shard.create ~cfg ~fabric ~shard_id:0 in
      let node = Fabric.add_node fabric ~name:"probe" () in
      let ep = Rpc.endpoint fabric node in
      (* Stage on the primary only, then replace the backup. *)
      ignore (call ep shard (Proto.Ssh_data_write { record = record 7 1 "x" }));
      Shard.replace_backup shard ~index:0;
      (* Bind: the new backup resolves from its copied staging (no
         R_missing round). *)
      (match
         call ep shard
           (Proto.Ssh_order
              { truncate_from = None;
                truncate_logs = [];
                bindings = [ (0, rid 7 1) ];
                map_chunk = [ (0, 0) ] })
       with
      | Proto.R_ok -> ()
      | _ -> Alcotest.fail "order failed");
      set_stable ep shard 1;
      (match read ep shard [ 0 ] with
      | [ (0, r) ] -> Alcotest.(check string) "bound" "x" r.Types.data
      | _ -> Alcotest.fail "read failed");
      Engine.stop ())

let () =
  Alcotest.run "shard"
    [
      ( "erwin-m paths",
        [
          Alcotest.test_case "push and read" `Quick test_push_and_read;
          Alcotest.test_case "read gated on stable" `Quick
            test_read_blocks_until_stable;
          Alcotest.test_case "replication required" `Quick
            test_replication_to_backups;
          Alcotest.test_case "truncate overwrite" `Quick
            test_truncate_overwrite;
          Alcotest.test_case "trim" `Quick test_trim_drops_prefix;
        ] );
      ( "erwin-st paths",
        [
          Alcotest.test_case "unbind restages" `Quick test_st_unbind_restages;
          Alcotest.test_case "get_map" `Quick test_get_map_waits_and_serves;
          Alcotest.test_case "backup backfill" `Quick test_backfill_to_backup;
          Alcotest.test_case "journal retry dedup" `Quick
            test_journal_retry_dedup;
        ] );
      ( "stable-hint read repair",
        [
          Alcotest.test_case "read repairs dropped set_stable" `Quick
            test_read_repair_via_stable_hint;
          Alcotest.test_case "get_map honors hint" `Quick
            test_get_map_stable_hint;
        ] );
      ( "replica replacement (s5.4)",
        [
          Alcotest.test_case "backup replacement" `Quick
            test_backup_replacement;
          Alcotest.test_case "staged state carried over" `Quick
            test_replacement_under_st_staging;
        ] );
    ]
