(* Tests for the simulation substrate: heap, engine, ivar, mailbox, waitq,
   rng, stats. *)

open Ll_sim

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Heap --- *)

let test_heap_order () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some x ->
      out := x :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (List.rev !out)

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  checkb "empty" true (Heap.pop h = None);
  Heap.push h 1;
  check "len" 1 (Heap.length h);
  Heap.clear h;
  check "cleared" 0 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

(* --- Engine --- *)

let test_clock_advances () =
  let times = ref [] in
  Engine.run (fun () ->
      times := Engine.now () :: !times;
      Engine.sleep (Engine.us 5);
      times := Engine.now () :: !times;
      Engine.sleep (Engine.ms 1);
      times := Engine.now () :: !times);
  Alcotest.(check (list int))
    "timestamps" [ 0; 5_000; 1_005_000 ] (List.rev !times)

let test_spawn_ordering () =
  (* Fibers scheduled at the same instant run in spawn order. *)
  let order = ref [] in
  Engine.run (fun () ->
      Engine.spawn (fun () -> order := 1 :: !order);
      Engine.spawn (fun () -> order := 2 :: !order);
      Engine.spawn (fun () -> order := 3 :: !order));
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !order)

let test_determinism () =
  let run () =
    let trace = ref [] in
    Engine.run ~seed:99 (fun () ->
        let rng = Engine.random_state () in
        for _ = 1 to 5 do
          let d = Random.State.int rng 100 in
          Engine.spawn (fun () ->
              Engine.sleep (Engine.us d);
              trace := (Engine.now (), d) :: !trace)
        done);
    !trace
  in
  Alcotest.(check bool) "identical traces" true (run () = run ())

(* One workload with a 6-way tie at a single instant: the order in which
   the tied fibers run is the schedule under test. *)
let tie_trace ?(perturb = false) seed =
  let trace = ref [] in
  Engine.run ~seed ~perturb (fun () ->
      for i = 1 to 6 do
        Engine.spawn (fun () ->
            Engine.sleep (Engine.us 10);
            trace := i :: !trace)
      done);
  List.rev !trace

let test_perturb_deterministic () =
  (* Same seed -> same tie-breaking; unperturbed -> spawn (FIFO) order. *)
  Alcotest.(check (list int))
    "unperturbed is FIFO" [ 1; 2; 3; 4; 5; 6 ] (tie_trace 1);
  for seed = 1 to 5 do
    Alcotest.(check (list int))
      "perturbed run reproduces"
      (tie_trace ~perturb:true seed)
      (tie_trace ~perturb:true seed)
  done

let test_perturb_explores () =
  (* Across a handful of seeds, at least one must deviate from FIFO and
     two seeds must disagree — otherwise the perturbation is a no-op. *)
  let traces = List.init 8 (fun s -> tie_trace ~perturb:true (s + 1)) in
  checkb "some schedule differs from FIFO" true
    (List.exists (fun t -> t <> [ 1; 2; 3; 4; 5; 6 ]) traces);
  checkb "seeds explore distinct schedules" true
    (List.exists (fun t -> t <> List.hd traces) traces);
  List.iter
    (fun t ->
      Alcotest.(check (list int))
        "every schedule is a permutation" [ 1; 2; 3; 4; 5; 6 ]
        (List.sort compare t))
    traces

let test_parallel_domains () =
  (* Engine state is domain-local: independent simulations may run
     concurrently on separate domains, each fully deterministic. *)
  let sim seed =
    let acc = ref 0 in
    Engine.run ~seed ~perturb:true (fun () ->
        for i = 1 to 50 do
          Engine.spawn (fun () ->
              Engine.sleep (Engine.us (Random.State.int (Engine.random_state ()) 100));
              acc := !acc + i)
        done);
    (!acc, Engine.events_executed (), Engine.master_seed ())
  in
  let expected = List.init 4 (fun i -> sim (i + 1)) in
  let domains = List.init 4 (fun i -> Domain.spawn (fun () -> sim (i + 1))) in
  let got = List.map Domain.join domains in
  List.iteri
    (fun i ((a, e, s), (a', e', s')) ->
      check "sum matches" a a';
      check "event count matches" e e';
      check "seed recorded" (i + 1) s;
      check "seed recorded in domain" (i + 1) s')
    (List.combine expected got)

let test_until () =
  let reached = ref false in
  Engine.run ~until:(Engine.ms 1) (fun () ->
      Engine.sleep (Engine.ms 10);
      reached := true);
  checkb "not reached past until" false !reached

let test_exception_propagates () =
  let boom () =
    Engine.run (fun () ->
        Engine.spawn (fun () ->
            Engine.sleep 10;
            failwith "boom"))
  in
  (match boom () with
  | () -> Alcotest.fail "expected exception"
  | exception Engine.Fiber_failure (_, Failure m) ->
    Alcotest.(check string) "message" "boom" m
  | exception e -> raise e);
  (* The engine must be usable again after an aborted run. *)
  Engine.run (fun () -> Engine.sleep 1)

let test_wake_once () =
  Engine.run (fun () ->
      let woken = ref 0 in
      Engine.spawn (fun () ->
          let v =
            Engine.suspend (fun w ->
                Engine.after 10 (fun () ->
                    if Engine.wake w 1 then incr woken);
                Engine.after 20 (fun () ->
                    if Engine.wake w 2 then incr woken))
          in
          Alcotest.(check int) "first wake wins" 1 v);
      Engine.sleep 100;
      Alcotest.(check int) "woken once" 1 !woken)

(* --- Ivar --- *)

let test_ivar_basic () =
  Engine.run (fun () ->
      let iv = Ivar.create () in
      checkb "empty" false (Ivar.is_full iv);
      let got = ref [] in
      for i = 0 to 2 do
        Engine.spawn (fun () ->
            (* Bind before consing: the read suspends, and [!got] must be
               re-read after resumption. *)
            let v = Ivar.read iv in
            got := (i, v) :: !got)
      done;
      Engine.after (Engine.us 3) (fun () -> Ivar.fill iv 42);
      Engine.sleep (Engine.us 10);
      check "all readers woken" 3 (List.length !got);
      checkb "all read 42" true (List.for_all (fun (_, v) -> v = 42) !got);
      checkb "double fill refused" false (Ivar.try_fill iv 1))

let test_ivar_timeout () =
  Engine.run (fun () ->
      let iv = Ivar.create () in
      let r = Ivar.read_timeout iv ~timeout:(Engine.us 5) in
      checkb "timed out" true (r = None);
      Ivar.fill iv 7;
      checkb "filled now" true
        (Ivar.read_timeout iv ~timeout:(Engine.us 1) = Some 7))

let test_join_all_timeout () =
  Engine.run (fun () ->
      let a = Ivar.create () and b = Ivar.create () in
      Engine.after 5 (fun () -> Ivar.fill a 1);
      checkb "partial fill times out" true
        (Ivar.join_all_timeout [ a; b ] ~timeout:(Engine.us 1) = None);
      Ivar.fill b 2;
      checkb "both" true
        (Ivar.join_all_timeout [ a; b ] ~timeout:(Engine.us 1) = Some [ 1; 2 ]))

(* --- Mailbox --- *)

let test_mailbox_fifo () =
  Engine.run (fun () ->
      let mb = Mailbox.create () in
      List.iter (Mailbox.send mb) [ 1; 2; 3 ];
      check "fifo 1" 1 (Mailbox.recv mb);
      check "fifo 2" 2 (Mailbox.recv mb);
      check "fifo 3" 3 (Mailbox.recv mb))

let test_mailbox_blocking_receivers () =
  Engine.run (fun () ->
      let mb = Mailbox.create () in
      let got = ref [] in
      for i = 0 to 1 do
        Engine.spawn (fun () ->
            let m = Mailbox.recv mb in
            got := (i, m) :: !got)
      done;
      Engine.after 5 (fun () ->
          Mailbox.send mb "a";
          Mailbox.send mb "b");
      Engine.sleep 20;
      (* Receivers are served in blocking order. *)
      Alcotest.(check (list (pair int string)))
        "each receiver one message"
        [ (0, "a"); (1, "b") ]
        (List.sort compare !got))

let test_mailbox_timeout_then_send () =
  (* A waiter whose timeout fired must not swallow a later message. *)
  Engine.run (fun () ->
      let mb = Mailbox.create () in
      let r1 = Mailbox.recv_timeout mb ~timeout:5 in
      Alcotest.(check bool) "timed out" true (r1 = None);
      Mailbox.send mb 9;
      check "message preserved" 9 (Mailbox.recv mb))

(* --- Waitq --- *)

let test_waitq () =
  Engine.run (fun () ->
      let wq = Waitq.create () in
      let flag = ref false in
      let through = ref false in
      Engine.spawn (fun () ->
          Waitq.await wq (fun () -> !flag);
          through := true);
      Engine.sleep 5;
      checkb "blocked" false !through;
      (* broadcast without predicate change: must keep waiting *)
      Waitq.broadcast wq;
      Engine.sleep 5;
      checkb "still blocked" false !through;
      flag := true;
      Waitq.broadcast wq;
      Engine.sleep 5;
      checkb "released" true !through)

let test_waitq_timeout () =
  Engine.run (fun () ->
      let wq = Waitq.create () in
      let ok = Waitq.await_timeout wq ~timeout:(Engine.us 5) (fun () -> false) in
      checkb "predicate false on timeout" false ok)

(* --- Rng --- *)

let test_exponential_mean () =
  let rng = Rng.create ~seed:5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:100.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean within 5%" true (mean > 95.0 && mean < 105.0)

let test_zipf_bounds_and_skew () =
  let rng = Rng.create ~seed:6 in
  let g = Rng.Zipf.create rng ~n:1000 ~theta:0.99 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let k = Rng.Zipf.next g in
    checkb "in range" true (k >= 0 && k < 1000);
    counts.(k) <- counts.(k) + 1
  done;
  (* Hottest key should be much hotter than the median key. *)
  let hottest = Array.fold_left max 0 counts in
  checkb "skewed" true (hottest > 50_000 / 100)

(* --- Stats --- *)

let test_reservoir_percentiles () =
  let r = Stats.Reservoir.create () in
  for i = 1 to 100 do
    Stats.Reservoir.add r (i * 1000)
  done;
  Alcotest.(check (float 0.1)) "mean" 50.5 (Stats.Reservoir.mean_us r);
  Alcotest.(check (float 0.5)) "p50" 50.5 (Stats.Reservoir.percentile_us r 50.0);
  Alcotest.(check (float 1.5)) "p99" 99.0 (Stats.Reservoir.percentile_us r 99.0);
  Alcotest.(check (float 0.01)) "min" 1.0 (Stats.Reservoir.min_us r);
  Alcotest.(check (float 0.01)) "max" 100.0 (Stats.Reservoir.max_us r)

let test_reservoir_cdf () =
  let r = Stats.Reservoir.create () in
  for i = 1 to 1000 do
    Stats.Reservoir.add r i
  done;
  let cdf = Stats.Reservoir.cdf r ~points:10 in
  check "10 points" 10 (List.length cdf);
  let _, last_pct = List.nth cdf 9 in
  Alcotest.(check (float 0.01)) "ends at 100%" 100.0 last_pct

let test_timeline () =
  let tl = Stats.Timeline.create ~bin:(Engine.ms 1) in
  for i = 0 to 99 do
    Stats.Timeline.record tl ~at:(i * Engine.us 10)
  done;
  check "total" 100 (Stats.Timeline.total tl);
  match Stats.Timeline.series tl with
  | [ (_, rate) ] -> Alcotest.(check (float 1.0)) "rate" 100_000.0 rate
  | l -> Alcotest.failf "expected one bin, got %d" (List.length l)

let test_reservoir_merge () =
  let a = Stats.Reservoir.create () and b = Stats.Reservoir.create () in
  List.iter (Stats.Reservoir.add a) [ 1000; 2000 ];
  List.iter (Stats.Reservoir.add b) [ 3000; 4000 ];
  let m = Stats.Reservoir.merge [ a; b ] in
  check "count" 4 (Stats.Reservoir.count m);
  Alcotest.(check (float 0.01)) "mean" 2.5 (Stats.Reservoir.mean_us m)

let test_reservoir_stddev_and_clear () =
  let r = Stats.Reservoir.create () in
  List.iter (Stats.Reservoir.add r) [ 1000; 1000; 1000 ];
  Alcotest.(check (float 0.001)) "no spread" 0.0 (Stats.Reservoir.stddev_us r);
  Stats.Reservoir.clear r;
  check "cleared" 0 (Stats.Reservoir.count r);
  checkb "mean of empty is nan" true (Float.is_nan (Stats.Reservoir.mean_us r))

let test_timeline_multi_bin () =
  let tl = Stats.Timeline.create ~bin:(Engine.ms 1) in
  Stats.Timeline.record_n tl ~at:(Engine.us 500) ~n:10;
  Stats.Timeline.record_n tl ~at:(Engine.us 2_500) ~n:30;
  (match Stats.Timeline.series tl with
  | [ (t0, r0); (t1, r1) ] ->
    Alcotest.(check (float 1e-6)) "bin 0 time" 0.0 t0;
    Alcotest.(check (float 1.0)) "bin 0 rate" 10_000.0 r0;
    Alcotest.(check (float 1e-6)) "bin 2 time" 0.002 t1;
    Alcotest.(check (float 1.0)) "bin 2 rate" 30_000.0 r1
  | l -> Alcotest.failf "expected 2 bins, got %d" (List.length l));
  check "total" 40 (Stats.Timeline.total tl)

let test_at_clamps_past () =
  Engine.run (fun () ->
      Engine.sleep (Engine.us 10);
      let ran_at = ref (-1) in
      (* Scheduling in the past runs "now", never back in time. *)
      Engine.at 0 (fun () -> ran_at := Engine.now ());
      Engine.sleep 1;
      check "clamped to now" (Engine.us 10) !ran_at)

let test_sleep_until_past_is_yield () =
  Engine.run (fun () ->
      Engine.sleep (Engine.us 5);
      Engine.sleep_until 0;
      check "no time travel" (Engine.us 5) (Engine.now ()))

let test_rng_split_independence () =
  let a = Rng.create ~seed:1 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  checkb "streams differ" true (xs <> ys)

let prop_percentile_monotonic =
  QCheck.Test.make ~name:"percentiles are monotonic" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 200) (int_range 0 1_000_000))
    (fun xs ->
      let r = Stats.Reservoir.create () in
      List.iter (Stats.Reservoir.add r) xs;
      let ps = [ 0.0; 10.0; 50.0; 90.0; 99.0; 100.0 ] in
      let vs = List.map (Stats.Reservoir.percentile_us r) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vs)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "pops sorted" `Quick test_heap_order;
          Alcotest.test_case "empty/clear" `Quick test_heap_empty;
        ]
        @ qc [ prop_heap_sorts ] );
      ( "engine",
        [
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "spawn order" `Quick test_spawn_ordering;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "perturbation deterministic per seed" `Quick
            test_perturb_deterministic;
          Alcotest.test_case "perturbation explores schedules" `Quick
            test_perturb_explores;
          Alcotest.test_case "parallel domain engines" `Quick
            test_parallel_domains;
          Alcotest.test_case "until bounds run" `Quick test_until;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "waker fires once" `Quick test_wake_once;
          Alcotest.test_case "at clamps past times" `Quick test_at_clamps_past;
          Alcotest.test_case "sleep_until past is a yield" `Quick
            test_sleep_until_past_is_yield;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill wakes all" `Quick test_ivar_basic;
          Alcotest.test_case "timeout" `Quick test_ivar_timeout;
          Alcotest.test_case "join_all_timeout" `Quick test_join_all_timeout;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocking receivers" `Quick
            test_mailbox_blocking_receivers;
          Alcotest.test_case "timeout does not lose messages" `Quick
            test_mailbox_timeout_then_send;
        ] );
      ( "waitq",
        [
          Alcotest.test_case "await/broadcast" `Quick test_waitq;
          Alcotest.test_case "await timeout" `Quick test_waitq_timeout;
        ] );
      ( "rng",
        [
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "zipf bounds and skew" `Quick
            test_zipf_bounds_and_skew;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independence;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentiles" `Quick test_reservoir_percentiles;
          Alcotest.test_case "cdf" `Quick test_reservoir_cdf;
          Alcotest.test_case "timeline" `Quick test_timeline;
          Alcotest.test_case "merge" `Quick test_reservoir_merge;
          Alcotest.test_case "stddev and clear" `Quick
            test_reservoir_stddev_and_clear;
          Alcotest.test_case "timeline multi-bin" `Quick
            test_timeline_multi_bin;
        ]
        @ qc [ prop_percentile_monotonic ] );
    ]
