(* Slab allocator: free-list reuse, reset semantics, and node recycling
   through the wait-queue primitives that own slab nodes (Mailbox, Waitq,
   Ivar) and the fabric's crash cleanup. The slab is domain-local and
   LIFO, so the tests can assert exact node indices for reuse. *)

open Ll_sim

(* Each test runs against the current domain's slab; reset first so
   earlier tests (or an earlier Engine.run) don't leak state in. *)
let fresh () = Slab.reset ()

let test_alloc_free_reuse () =
  fresh ();
  let base = Slab.in_use () in
  let a = Slab.alloc (Obj.repr 1) in
  let b = Slab.alloc (Obj.repr 2) in
  Alcotest.(check int) "two live nodes" (base + 2) (Slab.in_use ());
  Alcotest.(check int) "payload a" 1 (Obj.obj (Slab.get a));
  Alcotest.(check int) "payload b" 2 (Obj.obj (Slab.get b));
  Slab.free b;
  (* LIFO free list: the next alloc must return the node just freed. *)
  let c = Slab.alloc (Obj.repr 3) in
  Alcotest.(check int) "freed node reused LIFO" b c;
  Alcotest.(check int) "fresh node starts detached" Slab.nil (Slab.next c);
  Slab.free c;
  Slab.free a;
  Alcotest.(check int) "all returned" base (Slab.in_use ())

let test_links () =
  fresh ();
  let a = Slab.alloc (Obj.repr "a") in
  let b = Slab.alloc (Obj.repr "b") in
  Slab.set_next a b;
  Alcotest.(check int) "a links to b" b (Slab.next a);
  Alcotest.(check int) "b is tail" Slab.nil (Slab.next b);
  Slab.set a (Obj.repr "a'");
  Alcotest.(check string) "set replaces payload" "a'" (Obj.obj (Slab.get a));
  Slab.free a;
  Slab.free b

let test_growth_keeps_nodes () =
  fresh ();
  (* Allocate far past the initial capacity: growth must preserve every
     live payload and link. *)
  let n = 10_000 in
  let nodes = Array.init n (fun i -> Slab.alloc (Obj.repr i)) in
  for i = 0 to n - 2 do
    Slab.set_next nodes.(i) nodes.(i + 1)
  done;
  Alcotest.(check bool) "capacity grew" true (Slab.capacity () >= n);
  (* Walk the chain we built and re-derive the payloads. *)
  let c = ref nodes.(0) in
  for i = 0 to n - 1 do
    Alcotest.(check int) "payload survives growth" i (Obj.obj (Slab.get !c));
    c := Slab.next !c
  done;
  Alcotest.(check int) "chain terminated" Slab.nil !c;
  Array.iter Slab.free nodes;
  Alcotest.(check int) "all freed" 0 (Slab.in_use ())

let test_reset () =
  fresh ();
  let _a = Slab.alloc (Obj.repr 1) in
  let _b = Slab.alloc (Obj.repr 2) in
  let cap = Slab.capacity () in
  Slab.reset ();
  Alcotest.(check int) "reset frees everything" 0 (Slab.in_use ());
  Alcotest.(check int) "reset keeps capacity" cap (Slab.capacity ());
  (* The whole pool is allocatable again. *)
  let nodes = Array.init cap (fun i -> Slab.alloc (Obj.repr i)) in
  Alcotest.(check int) "full pool live" cap (Slab.in_use ());
  Array.iter Slab.free nodes

(* Engine.run resets the slab at run start, so sim structures from a
   previous run can never alias nodes in the next one. *)
let test_run_resets () =
  let leaked = ref Slab.nil in
  Engine.run (fun () -> leaked := Slab.alloc (Obj.repr 7));
  Alcotest.(check bool) "node leaked out of the run" true (!leaked >= 0);
  let before = Slab.in_use () in
  Engine.run (fun () ->
      Alcotest.(check int) "fresh run starts empty" 0 (Slab.in_use ()));
  ignore before

(* Node recycling under suspend/wake interleavings: parked waiters hold
   slab nodes; a normal wake frees the node at delivery (and cancels the
   deadline timer), a timed-out waiter's dead node is swept lazily by the
   next send that walks the list. *)
let test_mailbox_recycling () =
  Engine.run (fun () ->
      let mb = Mailbox.create () in
      let got = ref 0 and timed_out = ref 0 in
      for _ = 1 to 1_000 do
        Engine.spawn (fun () ->
            match Mailbox.recv_timeout mb ~timeout:(Engine.us 50) with
            | Some _ -> incr got
            | None -> incr timed_out)
      done;
      (* Feed the first 500 (FIFO) before their deadline; the rest time
         out at us 50. *)
      for i = 1 to 500 do
        Engine.call_after (Engine.us 10) (fun () -> Mailbox.send mb i)
      done;
      (* A late send walks past every dead waiter, sweeping the nodes,
         and lands in the item queue. *)
      Engine.call_after (Engine.us 100) (fun () -> Mailbox.send mb 0);
      Engine.after (Engine.us 150) (fun () ->
          Alcotest.(check int) "fed receivers" 500 !got;
          Alcotest.(check int) "timed-out receivers" 500 !timed_out;
          Alcotest.(check (option int)) "late item" (Some 0)
            (Mailbox.try_recv mb);
          Alcotest.(check int) "every waiter/item node recycled" 0
            (Slab.in_use ());
          (* The 500 normal wakes each cancelled their deadline cell —
             nothing dead is left churning in the wheel. *)
          Alcotest.(check int) "deadlines cancelled" 500
            (Engine.timers_cancelled ());
          Alcotest.(check int) "no dead timers pending" 0
            (Engine.pending_events ())))

let test_waitq_ivar_recycling () =
  Engine.run (fun () ->
      let wq = Waitq.create () in
      let iv = Ivar.create () in
      let woke = ref 0 in
      let flag = ref false in
      for _ = 1 to 100 do
        Engine.spawn (fun () ->
            Waitq.await wq (fun () -> !flag);
            incr woke);
        Engine.spawn (fun () -> ignore (Ivar.read iv : int))
      done;
      Engine.call_after (Engine.us 5) (fun () ->
          Alcotest.(check int) "parked waiters hold nodes" 200
            (Slab.in_use ());
          flag := true;
          Waitq.broadcast wq;
          Ivar.fill iv 42);
      Engine.after (Engine.us 10) (fun () ->
          Alcotest.(check int) "all woke" 100 !woke;
          Alcotest.(check int) "broadcast and fill free all nodes" 0
            (Slab.in_use ())))

(* Fabric crash cleanup walks and frees the per-node FIFO key list. *)
let test_fabric_crash_cleanup () =
  Engine.run (fun () ->
      let fab = Ll_net.Fabric.create ~seed:1 () in
      let a = Ll_net.Fabric.add_node fab ~name:"a" () in
      let peers =
        Array.init 16 (fun i ->
            Ll_net.Fabric.add_node fab ~name:(string_of_int i) ())
      in
      Array.iter
        (fun p ->
          Ll_net.Fabric.send fab ~src:a ~dst:(Ll_net.Fabric.id p) ~size:16 ())
        peers;
      Engine.after (Engine.us 50) (fun () ->
          let live = Slab.in_use () in
          Alcotest.(check bool) "first-contact keys indexed" true (live >= 32);
          Ll_net.Fabric.crash fab a;
          (* a's own key list is freed; each peer still holds its one
             (now-stale, idempotently removable) key node. *)
          Alcotest.(check int) "crash frees the node's key list" (live - 16)
            (Slab.in_use ())))

let () =
  Alcotest.run "slab"
    [
      ( "slab",
        [
          Alcotest.test_case "alloc/free LIFO reuse" `Quick
            test_alloc_free_reuse;
          Alcotest.test_case "links and payload set" `Quick test_links;
          Alcotest.test_case "growth preserves live nodes" `Quick
            test_growth_keeps_nodes;
          Alcotest.test_case "reset reclaims, keeps capacity" `Quick
            test_reset;
          Alcotest.test_case "Engine.run resets the slab" `Quick
            test_run_resets;
        ] );
      ( "recycling",
        [
          Alcotest.test_case "mailbox timed-recv storm leaks nothing" `Quick
            test_mailbox_recycling;
          Alcotest.test_case "waitq broadcast + ivar fill free nodes" `Quick
            test_waitq_ivar_recycling;
          Alcotest.test_case "fabric crash frees FIFO keys" `Quick
            test_fabric_crash_cleanup;
        ] );
    ]
