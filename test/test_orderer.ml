(* Tests of the background orderer: batching bounds, the
   stable-only-after-all-replicas-GC invariant, quiescence during
   reconfiguration, and straggler tolerance of the RDMA GC path. *)

open Ll_sim
open Ll_net
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let with_m_cluster ?(cfg = Config.default) f =
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg () in
      f cluster;
      Engine.stop ())

let fill cluster n =
  let log = Erwin_m.client cluster in
  for i = 1 to n do
    ignore (log.Log_api.append ~size:128 ~data:(string_of_int i))
  done;
  log

let test_max_batch_respected () =
  let cfg = { Config.default with max_batch = 8; order_interval = Engine.ms 1 } in
  with_m_cluster ~cfg (fun cluster ->
      ignore (fill cluster 20);
      Engine.sleep (Engine.ms 20);
      checki "everything eventually stable" 20 cluster.stable_gp;
      checkb "no batch ever exceeded max_batch" true
        (cluster.metrics.largest_batch <= 8);
      checkb "batches were claimed" true (cluster.metrics.largest_batch > 0))

let test_stable_requires_all_replicas () =
  (* If a follower cannot GC (partitioned... here: crashed without the
     controller noticing yet), stable-gp must not advance. *)
  Engine.run (fun () ->
      let cfg = { Config.default with order_interval = Engine.ms 500 } in
      (* No controller: create the raw cluster and start only the orderer,
         so the crash is never repaired and the invariant is observable. *)
      let cluster = Erwin_common.create ~cfg ~mode:Erwin_common.M in
      Orderer.start cluster;
      let log = Erwin_m.client cluster in
      Engine.spawn (fun () ->
          for i = 1 to 5 do
            ignore (log.Log_api.append ~size:128 ~data:(string_of_int i))
          done);
      Engine.sleep (Engine.ms 2);
      (* Crash a follower before the first ordering pass fires. *)
      Ll_net.Fabric.crash cluster.fabric
        (Seq_replica.node (List.nth cluster.replicas 2));
      Engine.sleep (Engine.ms 600);
      checki "stable frozen without full GC" 0 cluster.stable_gp;
      (* The records are still on the shards' doorstep, just not exposed:
         leader already pushed, but no read may see them. *)
      Engine.stop ())

let test_orderer_quiesces_during_reconfig () =
  with_m_cluster (fun cluster ->
      ignore (fill cluster 10);
      Engine.sleep (Engine.ms 2);
      let stable0 = cluster.stable_gp in
      cluster.reconfiguring <- true;
      let log = Erwin_m.client cluster in
      for i = 1 to 10 do
        ignore (log.Log_api.append ~size:128 ~data:("x" ^ string_of_int i))
      done;
      Engine.sleep (Engine.ms 2);
      checki "no ordering while reconfiguring" stable0 cluster.stable_gp;
      cluster.reconfiguring <- false;
      Engine.sleep (Engine.ms 2);
      checki "resumes afterwards" (stable0 + 10) cluster.stable_gp)

let test_batch_grows_with_backlog () =
  let cfg = { Config.default with order_interval = Engine.ms 1 } in
  with_m_cluster ~cfg (fun cluster ->
      (* Writers outpace the 1ms ordering interval: batches >1. *)
      let done_ = ref 0 in
      for w = 0 to 3 do
        Engine.spawn (fun () ->
            let log = Erwin_m.client cluster in
            for i = 1 to 100 do
              ignore (log.Log_api.append ~size:128 ~data:(Printf.sprintf "%d-%d" w i))
            done;
            incr done_)
      done;
      let wq = Waitq.create () in
      ignore (Waitq.await_timeout wq ~timeout:(Engine.ms 100) (fun () -> !done_ = 4));
      Engine.sleep (Engine.ms 5);
      checkb "multi-record batches" true (Erwin_common.avg_batch cluster > 1.5);
      checki "all ordered" 400 cluster.stable_gp)

let test_gc_tolerates_straggler_follower () =
  (* A slow (not dead) follower delays GC acks; the orderer retries until
     they land, and stable-gp still advances — slower, but safely. *)
  with_m_cluster (fun cluster ->
      let straggler = List.nth cluster.replicas 2 in
      Fabric.set_extra_delay (Seq_replica.node straggler) (Engine.ms 2);
      ignore (fill cluster 10);
      Engine.sleep (Engine.ms 30);
      checki "eventually stable" 10 cluster.stable_gp)

(* Wait (polling at 1us grain) for the first ordering batch to be pushed,
   then run [interrupt] — which therefore lands between the batch's shard
   pushes and its follower GC, the window the committer must guard.
   Records are 16KiB so the pushes spend tens of microseconds on the wire
   while the interrupt (polling + a small control RPC) takes ~1-3us. *)
let interrupt_first_batch cluster interrupt =
  Engine.spawn (fun () ->
      let rec poll () =
        if cluster.Erwin_common.inflight_batches = 0 then begin
          Engine.sleep (Engine.us 1);
          poll ()
        end
      in
      poll ();
      interrupt ())

let test_reconfig_between_push_and_gc_discards_batch () =
  (* A view-change signal landing between a batch's shard pushes and its
     follower GC must discard the batch: stable-gp stays put, and once the
     cluster settles the entries are re-ordered exactly once (no position
     double-binds). *)
  let cfg = { Config.default with order_interval = Engine.ms 1 } in
  with_m_cluster ~cfg (fun cluster ->
      let log = Erwin_m.client cluster in
      for i = 1 to 10 do
        ignore (log.Log_api.append ~size:16384 ~data:(string_of_int i))
      done;
      interrupt_first_batch cluster (fun () ->
          cluster.reconfiguring <- true);
      Engine.sleep (Engine.ms 3);
      checki "stable frozen by in-flight invalidation" 0 cluster.stable_gp;
      cluster.reconfiguring <- false;
      Engine.sleep (Engine.ms 10);
      checki "re-ordered after resync" 10 cluster.stable_gp;
      let records = log.Log_api.read ~from:0 ~len:10 in
      Alcotest.(check (list string))
        "each entry bound exactly once, in log order"
        (List.init 10 (fun i -> string_of_int (i + 1)))
        (List.map (fun (r : Types.record) -> r.Types.data) records))

let test_seal_between_push_and_gc_freezes_stable () =
  (* Same window, but with a real seal (what reconfiguration sends to the
     old view): the committer must drop the batch rather than GC a sealed
     leader, and stable-gp must not advance. *)
  let cfg = { Config.default with order_interval = Engine.ms 1 } in
  Engine.run (fun () ->
      let cluster = Erwin_common.create ~cfg ~mode:Erwin_common.M in
      Orderer.start cluster;
      let log = Erwin_m.client cluster in
      for i = 1 to 10 do
        ignore (log.Log_api.append ~size:16384 ~data:(string_of_int i))
      done;
      let ep = Erwin_common.new_endpoint cluster ~name:"test.sealer" in
      interrupt_first_batch cluster (fun () ->
          List.iter
            (fun r ->
              ignore
                (Rpc.call ep ~dst:(Seq_replica.node_id r)
                   (Proto.Sr_seal { view = cluster.view })))
            cluster.replicas);
      Engine.sleep (Engine.ms 10);
      checki "stable frozen under seal" 0 cluster.stable_gp;
      checkb "leader is sealed" true
        (Seq_replica.is_sealed (Erwin_common.leader cluster));
      (* The entries survive, unordered, for the recovery flush. *)
      checki "entries retained in the leader log" 10
        (Seq_log.live_count (Seq_replica.log (Erwin_common.leader cluster)));
      Engine.stop ())

let test_adaptive_batch_controller () =
  (* Pure-function checks of the batch-size controller. *)
  let cfg = { Config.default with min_batch = 4; max_batch = 64 } in
  (* Full claim with backlog: double. *)
  checki "grows under backlog" 16
    (Orderer.Adaptive.next cfg ~cur:8 ~claimed:8 ~backlog:5);
  (* Growth is clamped at max_batch. *)
  checki "clamped at max" 64
    (Orderer.Adaptive.next cfg ~cur:64 ~claimed:64 ~backlog:100);
  (* Drained log with a small claim: halve. *)
  checki "shrinks when drained" 16
    (Orderer.Adaptive.next cfg ~cur:32 ~claimed:3 ~backlog:0);
  (* Shrink is clamped at min_batch. *)
  checki "clamped at min" 4
    (Orderer.Adaptive.next cfg ~cur:4 ~claimed:0 ~backlog:0);
  (* Partial claim with backlog (pipeline full): hold. *)
  checki "steady otherwise" 16
    (Orderer.Adaptive.next cfg ~cur:16 ~claimed:10 ~backlog:3);
  (* Disabled: always max_batch. *)
  let fixed = { cfg with adaptive_batch = false } in
  checki "fixed when disabled" 64
    (Orderer.Adaptive.next fixed ~cur:8 ~claimed:0 ~backlog:0)

let test_adaptive_batch_converges () =
  (* Under a sustained backlog the controller converges to max_batch; once
     writers stop and the log drains it decays back toward min_batch. *)
  let cfg =
    { Config.default with
      min_batch = 2;
      max_batch = 32;
      order_interval = Engine.us 100;
    }
  in
  with_m_cluster ~cfg (fun cluster ->
      let done_ = ref 0 in
      for w = 0 to 3 do
        Engine.spawn (fun () ->
            let log = Erwin_m.client cluster in
            for i = 1 to 150 do
              ignore
                (log.Log_api.append ~size:64 ~data:(Printf.sprintf "%d-%d" w i))
            done;
            incr done_)
      done;
      let wq = Waitq.create () in
      ignore
        (Waitq.await_timeout wq ~timeout:(Engine.ms 200) (fun () -> !done_ = 4));
      checkb "grew beyond min_batch under load" true
        (cluster.metrics.largest_batch > cfg.Config.min_batch);
      Engine.sleep (Engine.ms 20);
      checki "all ordered" 600 cluster.stable_gp;
      (* Idle claims are empty, so the controller halves back down. *)
      checkb "decays once drained" true
        (cluster.cur_batch <= cfg.Config.max_batch / 2))

let test_order_preserves_leader_log_order () =
  with_m_cluster (fun cluster ->
      let log = fill cluster 30 in
      Engine.sleep (Engine.ms 3);
      let records = log.Log_api.read ~from:0 ~len:30 in
      Alcotest.(check (list string))
        "positions follow the leader's log order"
        (List.init 30 (fun i -> string_of_int (i + 1)))
        (List.map (fun (r : Types.record) -> r.Types.data) records))

let () =
  Alcotest.run "orderer"
    [
      ( "orderer",
        [
          Alcotest.test_case "max_batch respected" `Quick
            test_max_batch_respected;
          Alcotest.test_case "stable requires all replicas" `Quick
            test_stable_requires_all_replicas;
          Alcotest.test_case "quiesces during reconfig" `Quick
            test_orderer_quiesces_during_reconfig;
          Alcotest.test_case "batch grows with backlog" `Quick
            test_batch_grows_with_backlog;
          Alcotest.test_case "tolerates straggler follower" `Quick
            test_gc_tolerates_straggler_follower;
          Alcotest.test_case "reconfig between push and GC discards batch"
            `Quick test_reconfig_between_push_and_gc_discards_batch;
          Alcotest.test_case "seal between push and GC freezes stable" `Quick
            test_seal_between_push_and_gc_freezes_stable;
          Alcotest.test_case "adaptive batch controller" `Quick
            test_adaptive_batch_controller;
          Alcotest.test_case "adaptive batch converges" `Quick
            test_adaptive_batch_converges;
          Alcotest.test_case "leader log order preserved" `Quick
            test_order_preserves_leader_log_order;
        ] );
    ]
