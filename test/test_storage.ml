(* Tests for the storage substrate: mem log, ring buffer, disk model,
   segment log, and the write-buffered store. *)

open Ll_sim
open Ll_storage

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Mem_log --- *)

let test_mem_log_basic () =
  let l = Mem_log.create () in
  checki "p0" 0 (Mem_log.append l "a");
  checki "p1" 1 (Mem_log.append l "b");
  Alcotest.(check (option string)) "get" (Some "a") (Mem_log.get l 0);
  Mem_log.set l 5 "sparse";
  checki "length after sparse set" 6 (Mem_log.length l);
  Alcotest.(check (option string)) "hole" None (Mem_log.get l 3)

let test_mem_log_trim_truncate () =
  let l = Mem_log.create () in
  for i = 0 to 9 do
    ignore (Mem_log.append l i)
  done;
  Mem_log.trim l 4;
  checki "first" 4 (Mem_log.first l);
  Alcotest.(check (option int)) "trimmed" None (Mem_log.get l 2);
  Mem_log.truncate l 7;
  checki "length" 7 (Mem_log.length l);
  Alcotest.(check (option int)) "truncated" None (Mem_log.get l 8);
  Alcotest.(check (list (pair int int)))
    "survivors"
    [ (4, 4); (5, 5); (6, 6) ]
    (Mem_log.to_list l)

(* --- Ring buffer --- *)

let test_ring_basic () =
  let r = Ring_buffer.create ~capacity:4 in
  checki "i0" 0 (Option.get (Ring_buffer.try_append r "a"));
  checki "i1" 1 (Option.get (Ring_buffer.try_append r "b"));
  Alcotest.(check (option string)) "get" (Some "a") (Ring_buffer.get r 0);
  ignore (Ring_buffer.try_append r "c");
  ignore (Ring_buffer.try_append r "d");
  checkb "full" true (Ring_buffer.is_full r);
  checkb "rejects when full" true (Ring_buffer.try_append r "e" = None);
  Ring_buffer.advance_head r 2;
  checki "head" 2 (Ring_buffer.head r);
  Alcotest.(check (option string)) "gc'd" None (Ring_buffer.get r 0);
  checki "i4 wraps" 4 (Option.get (Ring_buffer.try_append r "e"));
  Alcotest.(check (list (pair int string)))
    "snapshot"
    [ (2, "c"); (3, "d"); (4, "e") ]
    (Ring_buffer.snapshot r)

let test_ring_backpressure () =
  Engine.run (fun () ->
      let r = Ring_buffer.create ~capacity:2 in
      ignore (Ring_buffer.try_append r 1);
      ignore (Ring_buffer.try_append r 2);
      let appended_at = ref (-1) in
      Engine.spawn (fun () ->
          ignore (Ring_buffer.append_wait r 3);
          appended_at := Engine.now ());
      Engine.sleep (Engine.us 10);
      checki "still blocked" (-1) !appended_at;
      Ring_buffer.advance_head r 1;
      Engine.sleep 1;
      checkb "unblocked after gc" true (!appended_at >= 0))

let prop_ring_matches_model =
  (* Random append/gc sequences agree with a simple list model. *)
  QCheck.Test.make ~name:"ring buffer matches model" ~count:200
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let r = Ring_buffer.create ~capacity:8 in
      let model = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun (is_append, v) ->
          if is_append then (
            match Ring_buffer.try_append r v with
            | Some i -> Hashtbl.replace model i v
            | None -> ())
          else begin
            let n = Ring_buffer.head r + (v mod 4) in
            Ring_buffer.advance_head r n;
            Hashtbl.iter
              (fun i _ -> if i < Ring_buffer.head r then Hashtbl.remove model i)
              (Hashtbl.copy model)
          end;
          (* every live index agrees *)
          Hashtbl.iter
            (fun i v -> if Ring_buffer.get r i <> Some v then ok := false)
            model)
        ops;
      !ok)

(* --- Disk --- *)

let test_disk_serializes () =
  Engine.run (fun () ->
      let d = Disk.create ~base_latency:(Engine.us 10) ~ns_per_byte:1.0 () in
      let done_at = ref [] in
      for _ = 1 to 3 do
        Engine.spawn (fun () ->
            Disk.write d ~bytes:10_000;
            done_at := Engine.now () :: !done_at)
      done;
      Engine.sleep (Engine.ms 1);
      (* each op = 10us + 10us = 20us, serialized: 20/40/60us *)
      Alcotest.(check (list int))
        "serialized completions"
        [ Engine.us 20; Engine.us 40; Engine.us 60 ]
        (List.rev !done_at))

let test_disk_counters () =
  Engine.run (fun () ->
      let d = Disk.create () in
      Disk.write d ~bytes:100;
      Disk.write d ~bytes:200;
      checki "ops" 2 (Disk.ops d);
      checki "bytes" 300 (Disk.bytes_written d))

let test_disk_degrade () =
  Engine.run (fun () ->
      let d = Disk.create ~base_latency:(Engine.us 10) ~ns_per_byte:1.0 () in
      let t0 = Engine.now () in
      Disk.write d ~bytes:10_000;
      checki "healthy op" (Engine.us 20) (Engine.now () - t0);
      Disk.set_fail_slow d (Disk.Degrade { factor = 3.0 });
      let t1 = Engine.now () in
      Disk.write d ~bytes:10_000;
      checki "degraded op is factor x slower" (Engine.us 60)
        (Engine.now () - t1);
      Disk.set_fail_slow d Disk.Healthy;
      let t2 = Engine.now () in
      Disk.write d ~bytes:10_000;
      checki "healed" (Engine.us 20) (Engine.now () - t2))

let test_disk_stutter () =
  Engine.run (fun () ->
      let d = Disk.create ~base_latency:(Engine.us 10) ~ns_per_byte:0.0 () in
      Disk.set_fail_slow d
        (Disk.Stutter { period = Engine.ms 1; stall = Engine.us 500 });
      (* Inside the first period: normal service. *)
      let t0 = Engine.now () in
      Disk.write d ~bytes:0;
      checki "pre-stall op healthy" (Engine.us 10) (Engine.now () - t0);
      (* Cross the period boundary: the next op to start pays the stall. *)
      Engine.sleep (Engine.us 1200);
      let t1 = Engine.now () in
      Disk.write d ~bytes:0;
      checki "stalled op pays the pause" (Engine.us 510) (Engine.now () - t1);
      (* Immediately after a stall: healthy again until the next period. *)
      let t2 = Engine.now () in
      Disk.write d ~bytes:0;
      checki "post-stall op healthy" (Engine.us 10) (Engine.now () - t2))

(* --- Segment log --- *)

let test_segment_log_cold_read () =
  Engine.run (fun () ->
      let disk = Disk.create ~base_latency:(Engine.us 10) ~ns_per_byte:0.0 () in
      let l = Segment_log.create ~disk ~entries_per_file:4 () in
      for i = 0 to 7 do
        Segment_log.write l ~pos:i ~size:100 (string_of_int i)
      done;
      let ops_before = Disk.ops disk in
      (* Freshly written segments are hot. *)
      Alcotest.(check (option string)) "hot read" (Some "3")
        (Segment_log.read l ~pos:3);
      checki "no device read" ops_before (Disk.ops disk);
      Segment_log.evict_cache l;
      Alcotest.(check (option string)) "cold read" (Some "3")
        (Segment_log.read l ~pos:3);
      checki "one device read" (ops_before + 1) (Disk.ops disk);
      (* second read of same segment is cached *)
      ignore (Segment_log.read l ~pos:2);
      checki "cached" (ops_before + 1) (Disk.ops disk))

(* --- Flushed store --- *)

let test_flushed_store_async_drain () =
  Engine.run (fun () ->
      let disk = Disk.create ~base_latency:(Engine.us 50) ~ns_per_byte:0.0 () in
      let s = Flushed_store.create ~disk () in
      let t0 = Engine.now () in
      for i = 0 to 9 do
        Flushed_store.append s ~pos:i ~size:1000 i
      done;
      (* appends are memory-speed: no disk latency in the caller *)
      checkb "fast appends" true (Engine.now () - t0 < Engine.us 1);
      checkb "dirty" true (Flushed_store.dirty_bytes s > 0);
      Flushed_store.flush_wait s;
      checki "drained" 0 (Flushed_store.dirty_bytes s);
      Alcotest.(check (option int)) "readable" (Some 5)
        (Flushed_store.read s ~pos:5))

let test_flushed_store_backpressure () =
  Engine.run (fun () ->
      let disk = Disk.create ~base_latency:(Engine.us 100) ~ns_per_byte:0.0 () in
      let s = Flushed_store.create ~disk ~dirty_limit_bytes:1_000 () in
      let t0 = Engine.now () in
      (* First append fills the dirty buffer; the next must wait for the
         device. *)
      Flushed_store.append s ~pos:0 ~size:1_000 0;
      Flushed_store.append s ~pos:1 ~size:1_000 1;
      checkb "second append backpressured" true
        (Engine.now () - t0 >= Engine.us 100))

let test_flushed_store_truncate_rewrite () =
  Engine.run (fun () ->
      let disk = Disk.create () in
      let s = Flushed_store.create ~disk () in
      Flushed_store.append s ~pos:0 ~size:10 "old0";
      Flushed_store.append s ~pos:1 ~size:10 "old1";
      Flushed_store.truncate s 1;
      Flushed_store.append s ~pos:1 ~size:10 "new1";
      Flushed_store.flush_wait s;
      Alcotest.(check (option string)) "rewritten" (Some "new1")
        (Flushed_store.read s ~pos:1);
      Alcotest.(check (list (pair int string)))
        "entries"
        [ (0, "old0"); (1, "new1") ]
        (Flushed_store.entries s))

let test_flushed_store_entries_from () =
  Engine.run (fun () ->
      let s = Flushed_store.create ~disk:(Disk.create ()) () in
      List.iter
        (fun p -> Flushed_store.append s ~pos:p ~size:1 p)
        [ 0; 2; 4; 6 ];
      Alcotest.(check (list (pair int int)))
        "from 3" [ (4, 4); (6, 6) ]
        (Flushed_store.entries_from s 3))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "storage"
    [
      ( "mem_log",
        [
          Alcotest.test_case "basic" `Quick test_mem_log_basic;
          Alcotest.test_case "trim/truncate" `Quick test_mem_log_trim_truncate;
        ] );
      ( "ring_buffer",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "backpressure" `Quick test_ring_backpressure;
        ]
        @ qc [ prop_ring_matches_model ] );
      ( "disk",
        [
          Alcotest.test_case "serializes" `Quick test_disk_serializes;
          Alcotest.test_case "counters" `Quick test_disk_counters;
          Alcotest.test_case "fail-slow degrade" `Quick test_disk_degrade;
          Alcotest.test_case "fail-slow stutter" `Quick test_disk_stutter;
        ] );
      ( "segment_log",
        [ Alcotest.test_case "cold read" `Quick test_segment_log_cold_read ] );
      ( "flushed_store",
        [
          Alcotest.test_case "async drain" `Quick test_flushed_store_async_drain;
          Alcotest.test_case "backpressure" `Quick
            test_flushed_store_backpressure;
          Alcotest.test_case "truncate then rewrite" `Quick
            test_flushed_store_truncate_rewrite;
          Alcotest.test_case "entries_from" `Quick
            test_flushed_store_entries_from;
        ] );
    ]
