(* `--fig read`: the demand-driven read path (not a paper figure).

   (a) Tail-read latency vs distance from the tail, Erwin-st at the
   figure-13 operating point (5 NVMe shards, 1 backup, 4KB records).
   A read at distance d asks for position (acked - d): for small d that
   position is appended but not yet bound, so the lazy-cadence baseline
   waits out the background ordering interval while demand binding
   ([read_demand]) asks the sequencing layer to bind it now. Both the
   default 20us cadence and a genuinely lazy 250us cadence are shown —
   the lazier the cadence, the more a tail read gains.

   (b) Aggregate read throughput vs replicas per shard, Erwin-m over a
   pre-populated stable log with [replica_reads] on: closed-loop readers
   round-robin over the shard's replicas, so throughput scales with the
   replica count instead of pinning every read to the primary. *)

open Ll_sim
open Lazylog
open Harness
open Ll_workload

(* --- (a) tail-read latency vs distance from the tail --- *)

let fig13_cfg ~order_interval ~read_demand =
  Lazylog.Config.scaled_cluster
    {
      Lazylog.Config.default with
      nshards = 5;
      shard_backup_count = 1;
      order_interval;
      read_demand;
    }

let tail_latency ~cfg ~rate ~duration ~distance =
  Runner.in_sim (fun () ->
      let cluster = Lazylog.Erwin_st.create ~cfg () in
      let clients = Array.init 8 (fun _ -> Lazylog.Erwin_st.client cluster) in
      let reader = Lazylog.Erwin_st.client cluster in
      let lat = Stats.Reservoir.create ~name:"tail_read" () in
      (* Acked appends: every acked record sits in the sequencing logs, so
         position (acked - d) exists even if not yet bound. *)
      let acked = ref 0 in
      let t_measure = Engine.now () + Engine.ms 5 in
      let t_end = t_measure + duration in
      Arrival.open_loop ~rate ~until:t_end (fun i ->
          if
            clients.(i mod 8).Log_api.append ~size:4096
              ~data:(Runner.data_for i)
          then incr acked);
      Engine.spawn ~name:"bench.tail_reader" (fun () ->
          let rec loop () =
            if Engine.now () < t_end then begin
              (if !acked > distance then begin
                 let pos = !acked - distance in
                 let t0 = Engine.now () in
                 ignore
                   (reader.Log_api.read ~from:pos ~len:1
                     : Lazylog.Types.record list);
                 if t0 >= t_measure then
                   Stats.Reservoir.add lat (Engine.now () - t0)
               end);
              Engine.sleep (Engine.us 30);
              loop ()
            end
          in
          loop ());
      Engine.sleep_until (t_end + Engine.ms 5);
      lat)

(* --- (b) read throughput vs replicas per shard --- *)

let read_throughput ~backups ~duration =
  Runner.in_sim (fun () ->
      let cfg =
        {
          Lazylog.Config.default with
          nshards = 1;
          shard_backup_count = backups;
          replica_reads = true;
        }
      in
      let cluster = Lazylog.Erwin_m.create ~cfg () in
      let nrecords = 2048 in
      let writer = Lazylog.Erwin_m.client cluster in
      for i = 0 to nrecords - 1 do
        ignore (writer.Log_api.append ~size:4096 ~data:(Runner.data_for i) : bool)
      done;
      (* Everything bound and readable before the read storm starts. *)
      while cluster.Lazylog.Erwin_common.stable_gp < nrecords do
        Engine.sleep (Engine.us 100)
      done;
      let chunk = 8 in
      let nreaders = 24 in
      let readers =
        Array.init nreaders (fun _ -> Lazylog.Erwin_m.client cluster)
      in
      let t_measure = Engine.now () + Engine.ms 2 in
      let t_end = t_measure + duration in
      let served = ref 0 in
      Array.iteri
        (fun k r ->
          Engine.spawn ~name:(Printf.sprintf "bench.reader%d" k) (fun () ->
              let rng = Rng.create ~seed:(1000 + k) in
              let rec loop () =
                if Engine.now () < t_end then begin
                  let from = Rng.int rng (nrecords - chunk) in
                  let got =
                    r.Log_api.read ~from ~len:chunk
                      |> List.length
                  in
                  if Engine.now () >= t_measure && Engine.now () <= t_end then
                    served := !served + got;
                  loop ()
                end
              in
              loop ()))
        readers;
      Engine.sleep_until (t_end + Engine.ms 2);
      Stats.throughput_per_sec ~count:!served ~dur:duration)

let run () =
  section
    "Read path (a): Tail-Read Latency vs Distance (Erwin-st, fig-13 point, \
     150K appends/s)";
  let duration = dur 40 150 in
  let rate = 150_000. in
  let distances = [ 1; 4; 8; 64; 512 ] in
  let measure ~order_interval ~read_demand =
    List.map
      (fun d ->
        let r =
          tail_latency
            ~cfg:(fig13_cfg ~order_interval ~read_demand)
            ~rate ~duration ~distance:d
        in
        (d, r))
      distances
  in
  (* The headline comparison: a genuinely lazy 250us ordering cadence
     (ordering deferred until something needs it — the regime the paper's
     lazy-ordering argument targets), baseline vs demand binding. *)
  let lazy250 = measure ~order_interval:(Engine.us 250) ~read_demand:false in
  let demand250 = measure ~order_interval:(Engine.us 250) ~read_demand:true in
  (* Context: the default 20us cadence, where the background orderer is
     already nearly eager. *)
  let lazy20 = measure ~order_interval:(Engine.us 20) ~read_demand:false in
  let demand20 = measure ~order_interval:(Engine.us 20) ~read_demand:true in
  table_header
    [
      "distance";
      "lazy250_p50";
      "lazy250_p99";
      "demand_p50";
      "demand_p99";
      "lazy20_p99";
      "demand20_p99";
    ];
  List.iter
    (fun d ->
      let p r = List.assoc d r in
      row (string_of_int d)
        [
          f1 (Stats.Reservoir.percentile_us (p lazy250) 50.0);
          f1 (Stats.Reservoir.percentile_us (p lazy250) 99.0);
          f1 (Stats.Reservoir.percentile_us (p demand250) 50.0);
          f1 (Stats.Reservoir.percentile_us (p demand250) 99.0);
          f1 (Stats.Reservoir.percentile_us (p lazy20) 99.0);
          f1 (Stats.Reservoir.percentile_us (p demand20) 99.0);
        ])
    distances;
  let p99 series d = Stats.Reservoir.percentile_us (List.assoc d series) 99.0 in
  List.iter
    (fun d ->
      note "d=%d: demand binding improves p99 %.1fx (lazy 250us cadence)" d
        (p99 lazy250 d /. p99 demand250 d))
    [ 1; 4; 8 ];
  note
    "far from the tail (d=512) both are fast-path reads and identical; the \
     gain is the cadence the read no longer waits out";

  section
    "Read path (b): Read Throughput vs Replicas per Shard (Erwin-m, 4KB, \
     replica_reads on)";
  let rduration = dur 30 120 in
  let per_replicas =
    List.map
      (fun backups ->
        (backups + 1, read_throughput ~backups ~duration:rduration))
      [ 0; 1; 2 ]
  in
  table_header [ "replicas/shard"; "reads/s" ];
  List.iter
    (fun (n, thr) -> row (string_of_int n) [ kops thr ])
    per_replicas;
  let thr n = List.assoc n per_replicas in
  note "1 -> 3 replicas scales aggregate read throughput %.2fx" (thr 3 /. thr 1);

  write_json ~name:"read"
    (List.concat_map
       (fun d ->
         [
           {
             js_series = Printf.sprintf "tail d=%d lazy-cadence" d;
             js_throughput = 0.;
             js_p50_us = Stats.Reservoir.percentile_us (List.assoc d lazy250) 50.0;
             js_p99_us = p99 lazy250 d;
             js_p999_us = 0.0;
           };
           {
             js_series = Printf.sprintf "tail d=%d demand" d;
             js_throughput = 0.;
             js_p50_us =
               Stats.Reservoir.percentile_us (List.assoc d demand250) 50.0;
             js_p99_us = p99 demand250 d;
             js_p999_us = 0.0;
           };
         ])
       distances
    @ List.map
        (fun (n, thr) ->
          {
            js_series = Printf.sprintf "read-throughput replicas=%d" n;
            js_throughput = thr;
            js_p50_us = 0.;
            js_p99_us = 0.;
            js_p999_us = 0.0;
          })
        per_replicas)
