(* `--fig gray`: gray-failure resilience (not a paper figure).

   Fail-slow, not fail-stop: the victim keeps answering heartbeats, so
   the crash detector never fires — only latency reveals the failure.
   Both legs A/B a single injected gray fault against the mitigation
   this PR adds, against a healthy baseline and the unmitigated run.

   (a) Read p99 under a fail-slow backup, Erwin-m with [replica_reads]
   over a pre-populated stable log (1 shard, 3 replicas): one backup's
   network path gains a fixed per-message delay, so a third of the
   rotated reads land on a replica that answers ~1 ms late. Hedged
   reads race a second copy to the next replica after the adaptive
   per-peer deadline, restoring tail latency to within ~2x the healthy
   baseline.

   (b) Append p99 under a straggling sequencing replica, Erwin-m: the
   1-RTT append waits on *every* sequencing replica, so one slow
   follower taxes every append. The latency-outlier monitor scores
   per-peer RTTs, spots the straggler the heartbeats cannot see, and
   evicts it (section 5.5 removal); appends recover to the healthy
   baseline once the view changes. *)

open Ll_sim
open Ll_net
open Lazylog
open Harness
open Ll_workload

(* --- (a) hedged reads under a fail-slow backup --- *)

let read_latency ~hedged ~victim_delay ~duration =
  Runner.in_sim (fun () ->
      let cfg =
        {
          Config.default with
          replica_reads = true;
          hedged_reads = hedged;
          hedge_floor = Engine.us 20;
        }
      in
      let cluster = Erwin_m.create ~cfg () in
      let nrecords = 2048 in
      let writer = Erwin_m.client cluster in
      for i = 0 to nrecords - 1 do
        ignore (writer.Log_api.append ~size:4096 ~data:(Runner.data_for i) : bool)
      done;
      (* Everything bound and readable before the read load starts. *)
      while cluster.Erwin_common.stable_gp < nrecords do
        Engine.sleep (Engine.us 100)
      done;
      (* Fail-slow injection: every message into and out of one backup
         gains [victim_delay]. The node stays alive and keeps serving. *)
      if victim_delay > 0 then begin
        let shard = Erwin_common.shard_by_id cluster 0 in
        let victim = List.hd (Shard.backup_ids shard) in
        Fabric.set_extra_delay
          (Fabric.node_by_id cluster.Erwin_common.fabric victim)
          victim_delay
      end;
      let lat = Stats.Reservoir.create ~name:"gray_read" () in
      let chunk = 8 in
      let nreaders = 16 in
      let readers =
        Array.init nreaders (fun _ -> Erwin_m.client cluster)
      in
      (* Warmup covers the rotation settling and, with hedging, the
         per-peer latency scores converging past the cold-start floor. *)
      let t_measure = Engine.now () + Engine.ms 4 in
      let t_end = t_measure + duration in
      Array.iteri
        (fun k r ->
          Engine.spawn ~name:(Printf.sprintf "bench.grayreader%d" k) (fun () ->
              let rng = Rng.create ~seed:(4000 + k) in
              let rec loop () =
                if Engine.now () < t_end then begin
                  let from = Rng.int rng (nrecords - chunk) in
                  let t0 = Engine.now () in
                  ignore (r.Log_api.read ~from ~len:chunk : Types.record list);
                  if t0 >= t_measure then
                    Stats.Reservoir.add lat (Engine.now () - t0);
                  loop ()
                end
              in
              loop ()))
        readers;
      Engine.sleep_until (t_end + Engine.ms 2);
      lat)

(* --- (b) outlier eviction of a straggling sequencing replica --- *)

let append_latency_straggler ~outlier ~victim_delay ~duration =
  Runner.in_sim (fun () ->
      let cfg = { Config.default with outlier_detection = outlier } in
      let cluster = Erwin_m.create ~cfg () in
      (* Straggle the last follower: still alive, still acking — just
         [victim_delay] late in each direction, on every message. *)
      if victim_delay > 0 then begin
        let victim =
          List.nth cluster.Erwin_common.replicas
            (List.length cluster.Erwin_common.replicas - 1)
        in
        Fabric.set_extra_delay
          (Fabric.node_by_id cluster.Erwin_common.fabric
             (Seq_replica.node_id victim))
          victim_delay
      end;
      let lat = Stats.Reservoir.create ~name:"gray_append" () in
      let clients = Array.init 8 (fun _ -> Erwin_m.client cluster) in
      (* The measurement window starts late enough for the outlier
         monitor to have sampled every replica and completed the
         eviction's view change (it needs ~8 probe rounds at 500 us),
         so the mitigated series reports the steady state after
         removal, not the detection transient. *)
      let t_measure = Engine.now () + Engine.ms 10 in
      let t_end = t_measure + duration in
      Arrival.open_loop ~rate:20_000. ~until:t_end (fun i ->
          let t0 = Engine.now () in
          if clients.(i mod 8).Log_api.append ~size:512 ~data:(Runner.data_for i)
          then if t0 >= t_measure then Stats.Reservoir.add lat (Engine.now () - t0));
      Engine.sleep_until (t_end + Engine.ms 2);
      lat)

let run () =
  section
    "Gray (a): Read Latency under a Fail-Slow Backup (Erwin-m, 3 replicas, \
     hedged reads)";
  let rduration = dur 20 100 in
  let victim = Engine.us 400 in
  let r_healthy = read_latency ~hedged:false ~victim_delay:0 ~duration:rduration in
  let r_slow = read_latency ~hedged:false ~victim_delay:victim ~duration:rduration in
  let r_hedged = read_latency ~hedged:true ~victim_delay:victim ~duration:rduration in
  table_header [ "series"; "p50_us"; "p99_us" ];
  let prow name r =
    row name
      [
        f1 (Stats.Reservoir.percentile_us r 50.0);
        f1 (Stats.Reservoir.percentile_us r 99.0);
      ]
  in
  prow "healthy" r_healthy;
  prow "fail-slow unmitigated" r_slow;
  prow "fail-slow hedged" r_hedged;
  let p99 r = Stats.Reservoir.percentile_us r 99.0 in
  note "fail-slow backup inflates read p99 %.1fx; hedging restores it to %.2fx healthy"
    (p99 r_slow /. p99 r_healthy)
    (p99 r_hedged /. p99 r_healthy);

  section
    "Gray (b): Append Latency under a Straggling Sequencing Replica \
     (Erwin-m, outlier eviction)";
  let aduration = dur 25 100 in
  let a_healthy =
    append_latency_straggler ~outlier:false ~victim_delay:0 ~duration:aduration
  in
  let a_slow =
    append_latency_straggler ~outlier:false ~victim_delay:victim
      ~duration:aduration
  in
  let a_evicted =
    append_latency_straggler ~outlier:true ~victim_delay:victim
      ~duration:aduration
  in
  table_header [ "series"; "p50_us"; "p99_us" ];
  prow "healthy" a_healthy;
  prow "straggler unmitigated" a_slow;
  prow "straggler evicted" a_evicted;
  note
    "straggling follower taxes every append %.1fx at p99; outlier eviction \
     recovers to %.2fx healthy"
    (p99 a_slow /. p99 a_healthy)
    (p99 a_evicted /. p99 a_healthy);

  let js name r =
    {
      js_series = name;
      js_throughput = 0.;
      js_p50_us = Stats.Reservoir.percentile_us r 50.0;
      js_p99_us = p99 r;
      js_p999_us = 0.0;
    }
  in
  write_json ~name:"gray"
    [
      js "read healthy" r_healthy;
      js "read fail-slow unmitigated" r_slow;
      js "read fail-slow hedged" r_hedged;
      js "append healthy" a_healthy;
      js "append straggler unmitigated" a_slow;
      js "append straggler evicted" a_evicted;
    ]
