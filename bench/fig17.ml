(* Figure 17: sequencing-layer reconfiguration. A sequencing replica is
   crashed mid-workload: (a) the throughput timeline shows a dip of
   roughly the detection+reconfiguration time, after which the workload
   resumes; (b) the phase breakdown shows ZooKeeper-dominated detection
   and new-view steps, with sub-millisecond core recovery. *)

open Ll_sim
open Lazylog
open Ll_workload
open Harness

let run () =
  section "Figure 17: Sequencing-Layer Reconfiguration (Erwin-m)";
  let series, timings =
    Runner.in_sim (fun () ->
        let cluster = Erwin_m.create () in
        let clients = Array.init 8 (fun _ -> Erwin_m.client cluster) in
        let tl = Stats.Timeline.create ~bin:(Engine.ms 5) in
        let crash_at = Engine.ms 40 in
        let t_end = Engine.now () + Engine.ms 120 in
        Arrival.open_loop ~rate:30_000. ~until:t_end (fun i ->
            if clients.(i mod 8).Log_api.append ~size:1024 ~data:(Runner.data_for i)
            then Stats.Timeline.record tl ~at:(Engine.now ()));
        Engine.after crash_at (fun () ->
            Erwin_common.crash_replica cluster
              (List.nth cluster.Erwin_common.replicas 1));
        Engine.sleep_until (t_end + Engine.ms 50);
        (Stats.Timeline.series tl, cluster.Erwin_common.reconfig_log))
  in
  note "(a) throughput timeline (replica crashed at t=0.040s):";
  table_header [ "t_s"; "throughput" ];
  List.iter (fun (t, rate) -> row (Printf.sprintf "%.3f" t) [ kops rate ]) series;
  match timings with
  | t :: _ ->
    note "(b) reconfiguration breakdown:";
    table_header [ "phase"; "time" ];
    row "detect (ZK session)" [ Printf.sprintf "%.2fms" (Engine.to_ms t.Erwin_common.detect) ];
    row "seal" [ Printf.sprintf "%.0fus" (Engine.to_us t.Erwin_common.seal) ];
    row "flush" [ Printf.sprintf "%.0fus" (Engine.to_us t.Erwin_common.flush) ];
    row "new view (ZK write)" [ Printf.sprintf "%.2fms" (Engine.to_ms t.Erwin_common.new_view) ];
    row "total" [ Printf.sprintf "%.2fms" (Engine.to_ms t.Erwin_common.total) ];
    note "core recovery (seal+flush) is ~%.0fus; ZooKeeper dominates"
      (Engine.to_us (t.Erwin_common.seal + t.Erwin_common.flush));
    note "(paper: ~15ms impact, 600us core recovery, ZK-dominated breakdown)"
  | [] -> note "ERROR: no reconfiguration was recorded"
