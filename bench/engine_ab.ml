(* Engine A/B microharness: user-CPU-time measurement of the engine
   workloads from micro.ml. Wall-clock on a shared 1-vCPU box includes
   host steal time (see /proc/stat field 8), which swings 2x run to run;
   [Unix.times] user time excludes it, so this is the number to trust
   when comparing two engine builds. Usage:

     engine_ab.exe <workload> <n-events> <reps>

   Workloads: timer-callback | mixed-hop | deep-timer | deep-fiber |
   ready-ivar | ready-mailbox *)

let callback_chains n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let chains = 64 in
      let per = n / chains in
      for c = 0 to chains - 1 do
        let rec step i =
          if i < per then
            Engine.call_after
              ((((c * 31) + i) mod 97) + 1)
              (fun () -> step (i + 1))
        in
        step 0
      done)

let mixed_hops n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let chains = 64 in
      let per = n / chains in
      for c = 0 to chains - 1 do
        let rec hop i =
          if i < per then begin
            let r = ((c * 131) + (i * 7919)) mod 1000 in
            let d =
              if r < 700 then (r / 8) + 1
              else if r < 950 then ((r - 700) * 400) + 1000
              else ((r - 950) * 200_000) + 1_000_000
            in
            Engine.call_after d (fun () -> hop (i + 1))
          end
        in
        hop 0
      done)

let deep_timers n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let chains = 100_000 in
      let per = (n / chains) + 1 in
      for c = 0 to chains - 1 do
        let rec step i =
          if i < per then
            Engine.call_after
              (50_000 + (((c * 31) + (i * 7919)) mod 100_000))
              (fun () -> step (i + 1))
        in
        Engine.call_after ((c mod 50_000) + 1) (fun () -> step 0)
      done)

let deep_fiber_timers n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let chains = 100_000 in
      let per = (n / chains) + 1 in
      for c = 0 to chains - 1 do
        let rec step i =
          if i < per then
            Engine.after
              (50_000 + (((c * 31) + (i * 7919)) mod 100_000))
              (fun () -> step (i + 1))
        in
        Engine.after ((c mod 50_000) + 1) (fun () -> step 0)
      done)

(* Already-ready waits: the hot path every RPC reply and every drained
   queue hits — the ivar is full (or the mailbox non-empty) by the time
   the consumer blocks, so [read]/[recv] must return inline without a
   suspend/resume round trip through the scheduler. Engine.events stays
   near-flat here; the interesting number is ns per wait (wall-cpu /
   n), printed alongside the event rate. *)

let ready_ivar n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      for _i = 1 to n do
        let iv = Ivar.create () in
        Ivar.fill iv 42;
        ignore (Ivar.read iv : int)
      done)

let ready_mailbox n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let mb = Mailbox.create () in
      for i = 1 to n do
        Mailbox.send mb i;
        ignore (Mailbox.recv mb : int)
      done)

let () =
  let workload = Sys.argv.(1) in
  let n = int_of_string Sys.argv.(2) in
  let reps = int_of_string Sys.argv.(3) in
  let f =
    match workload with
    | "timer-callback" -> callback_chains
    | "mixed-hop" -> mixed_hops
    | "deep-timer" -> deep_timers
    | "deep-fiber" -> deep_fiber_timers
    | "ready-ivar" -> ready_ivar
    | "ready-mailbox" -> ready_mailbox
    | w -> failwith ("unknown workload: " ^ w)
  in
  Ll_sim.Engine.set_scheduler `Wheel;
  f (n / 10) (* warmup *);
  let best = ref infinity in
  for r = 1 to reps do
    let t0 = (Unix.times ()).tms_utime in
    f n;
    let dt = (Unix.times ()).tms_utime -. t0 in
    let ev = Ll_sim.Engine.events_executed () in
    let rate = float_of_int ev /. dt /. 1e6 in
    if dt < !best then best := dt;
    Printf.printf "  rep %d: %d events  %.1f ms cpu  %.2f Mev/s  %.1f ns/op\n%!"
      r ev (dt *. 1000.) rate
      (dt *. 1e9 /. float_of_int n)
  done;
  Printf.printf "%s best: %.1f ms cpu (%.1f ns/op over %d ops)\n%!" workload
    (!best *. 1000.) (!best *. 1e9 /. float_of_int n) n
