(* `--fig tenants`: the multi-log fabric at scale (not a paper figure).

   (a) Aggregate append throughput vs tenant count, Erwin-m with
   [multi_log] + [fair_ingress] on: one open-loop Poisson arrival
   process spread over N tenant logs with YCSB-style Zipf skew
   (theta 0.99), N on a ladder from 1 to thousands. Each tenant is an
   independent sequencing keyspace with its own stable cursor; the
   headline claim is that the packed keyspace and per-log cursors are
   O(1) per append, so a thousand logs cost what one does — the
   1000-log row must hold >= 0.9x the single-log rate.

   (b) Victim-tenant p99 under an aggressor, fair ingress off/on: a
   light victim tenant (open-loop, small records) shares the cluster
   with an aggressor tenant running saturating closed-loop large
   appends. The sequencing replica's CPU is a single queue (service
   time is charged serially in the demux fiber), so with FIFO ingress
   the victim's appends wait behind the aggressor's backlog; DRR
   weighted-fair scheduling caps the victim's wait at roughly one
   aggressor quantum. Reported against the no-aggressor baseline. *)

open Ll_sim
open Lazylog
open Ll_workload
open Harness

(* --- (a) aggregate throughput vs tenant count --- *)

let ladder_point ~ntenants ~rate ~size ~duration =
  Runner.in_sim (fun () ->
      let cfg =
        { Config.default with Config.multi_log = true; fair_ingress = true }
      in
      let cluster = Erwin_m.create ~cfg () in
      let clients =
        Array.init ntenants (fun l -> Erwin_m.client ~log:l cluster)
      in
      let zipf =
        Rng.Zipf.create (Rng.create ~seed:77) ~n:ntenants ~theta:0.99
      in
      let lat = Stats.Reservoir.create ~name:"tenant_ladder" () in
      let measured = ref 0 in
      let t_measure = Engine.now () + Engine.ms 5 in
      let t_end = t_measure + duration in
      Arrival.open_loop ~rate ~until:t_end (fun i ->
          let log = clients.(Rng.Zipf.next zipf) in
          let t0 = Engine.now () in
          if log.Log_api.append ~size ~data:(Runner.data_for i) then
            if t0 >= t_measure then begin
              Stats.Reservoir.add lat (Engine.now () - t0);
              incr measured
            end);
      Engine.sleep_until (t_end + Engine.ms 20);
      (Stats.throughput_per_sec ~count:!measured ~dur:duration, lat))

(* --- (b) victim p99 under an aggressor, fair ingress off/on --- *)

let victim_latency ~aggressor ~fair ~duration =
  Runner.in_sim (fun () ->
      let cfg =
        {
          Config.default with
          Config.multi_log = true;
          fair_ingress = fair;
          (* One aggressor record per DRR round: the victim's worst-case
             wait under fairness is a single large service, not a whole
             multi-record quantum. *)
          drr_quantum = 2048;
        }
      in
      let cluster = Erwin_m.create ~cfg () in
      let victim = Erwin_m.client ~log:1 cluster in
      let lat = Stats.Reservoir.create ~name:"victim" () in
      let t_measure = Engine.now () + Engine.ms 5 in
      let t_end = t_measure + duration in
      if aggressor then
        (* Saturating closed loop: enough in-flight large appends that
           the sequencing replicas' CPU, not the network, is the
           bottleneck (service ~1.9us per 2 KB record vs ~5us RTT). *)
        for a = 1 to 32 do
          let agg = Erwin_m.client ~log:2 cluster in
          Engine.spawn ~name:(Printf.sprintf "bench.aggressor%d" a) (fun () ->
              let i = ref 0 in
              while Engine.now () < t_end do
                incr i;
                ignore
                  (agg.Log_api.append ~size:2048
                     ~data:(Printf.sprintf "agg%d.%d" a !i)
                    : bool)
              done)
        done;
      Arrival.open_loop ~rate:20_000. ~until:t_end (fun i ->
          let t0 = Engine.now () in
          if victim.Log_api.append ~size:512 ~data:(Runner.data_for i) then
            if t0 >= t_measure then
              Stats.Reservoir.add lat (Engine.now () - t0));
      Engine.sleep_until (t_end + Engine.ms 2);
      lat)

let run () =
  let size = 128 in
  let cfg = Config.default in
  let cap = expected_capacity ~cfg ~mode:`M ~size in
  let rate = 0.6 *. cap in
  let duration = dur 20 100 in
  section
    "Tenants (a): Aggregate Throughput vs Tenant Count (Erwin-m, Zipf 0.99, \
     %.0fK offered)"
    (rate /. 1e3);
  let ladder = if !quick then [ 1; 10; 100; 1000 ] else [ 1; 10; 100; 1000; 4000 ] in
  let points =
    List.map
      (fun n -> (n, ladder_point ~ntenants:n ~rate ~size ~duration))
      ladder
  in
  table_header [ "tenant logs"; "achieved"; "p50_us"; "p99_us" ];
  List.iter
    (fun (n, (thr, lat)) ->
      row (string_of_int n)
        [
          kops thr;
          f1 (Stats.Reservoir.percentile_us lat 50.0);
          f1 (Stats.Reservoir.percentile_us lat 99.0);
        ])
    points;
  let thr_of n = fst (List.assoc n points) in
  note "1000 logs hold %.2fx the single-log rate (floor 0.90x)"
    (thr_of 1000 /. thr_of 1);

  section
    "Tenants (b): Victim p99 under an Aggressor Tenant (Erwin-m, fair \
     ingress off/on)";
  let vduration = dur 20 100 in
  let v_base = victim_latency ~aggressor:false ~fair:false ~duration:vduration in
  let v_fifo = victim_latency ~aggressor:true ~fair:false ~duration:vduration in
  let v_fair = victim_latency ~aggressor:true ~fair:true ~duration:vduration in
  table_header [ "series"; "p50_us"; "p99_us" ];
  let prow name r =
    row name
      [
        f1 (Stats.Reservoir.percentile_us r 50.0);
        f1 (Stats.Reservoir.percentile_us r 99.0);
      ]
  in
  prow "no aggressor" v_base;
  prow "aggressor, fifo ingress" v_fifo;
  prow "aggressor, fair ingress" v_fair;
  let p99 r = Stats.Reservoir.percentile_us r 99.0 in
  note
    "aggressor inflates victim p99 %.1fx under FIFO; fair ingress restores \
     it to %.2fx the no-aggressor baseline (ceiling 1.5x)"
    (p99 v_fifo /. p99 v_base)
    (p99 v_fair /. p99 v_base);

  write_json ~name:"tenants"
    (List.map
       (fun (n, (thr, lat)) ->
         {
           js_series = Printf.sprintf "zipf-%d-logs" n;
           js_throughput = thr;
           js_p50_us = Stats.Reservoir.percentile_us lat 50.0;
           js_p99_us = Stats.Reservoir.percentile_us lat 99.0;
           js_p999_us = 0.0;
         })
       points
    @ [
        {
          js_series = "victim no aggressor";
          js_throughput = 0.;
          js_p50_us = Stats.Reservoir.percentile_us v_base 50.0;
          js_p99_us = p99 v_base;
          js_p999_us = 0.0;
        };
        {
          js_series = "victim aggressor fifo";
          js_throughput = 0.;
          js_p50_us = Stats.Reservoir.percentile_us v_fifo 50.0;
          js_p99_us = p99 v_fifo;
          js_p999_us = 0.0;
        };
        {
          js_series = "victim aggressor fair";
          js_throughput = 0.;
          js_p50_us = Stats.Reservoir.percentile_us v_fair 50.0;
          js_p99_us = p99 v_fair;
          js_p999_us = 0.0;
        };
      ])
