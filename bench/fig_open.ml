(* Open-loop many-producer workload: the throughput the timer-wheel
   engine buys, spent on scale. 10^5 producer clients (each a fabric
   endpoint with its own FIFO channels to the sequencing layer) are
   driven by one open-loop arrival process — Poisson at a ladder of
   offered rates, plus bursty and diurnal shapes at mid-load — and we
   report p50/p99/p99.9 append latency per point and the highest offered
   rate whose p99.9 stays under the SLO. A final 10^6-producer row runs
   the same mid-load point against the full cloud-scale population —
   feasible because slab-allocated wait queues and cancelled append
   timeouts keep per-producer cost at the parked-waiter floor.

   Ladder points are independent simulations, so they are farmed out to
   domains ([Domain.recommended_domain_count], capped) — on a multi-core
   host the whole ladder costs one point's wall time. *)

open Ll_sim
open Lazylog
open Ll_workload
open Harness

let slo_us = 1_000.0 (* p99.9 SLO: 1 ms *)

type point = {
  p_label : string;
  p_arrivals : Arrival.arrivals;
  p_rate : float;
  p_seed : int;
}

type result = {
  r_label : string;
  r_offered : float;
  r_achieved : float;
  r_p50 : float;
  r_p99 : float;
  r_p999 : float;
}

let run_point ~producers ~size ~duration pt =
  Runner.in_sim ~seed:pt.p_seed (fun () ->
      let cluster = Erwin_m.create () in
      let clients = Array.init producers (fun _ -> Erwin_m.client cluster) in
      let lat = Stats.Reservoir.create ~name:pt.p_label () in
      let measured = ref 0 in
      let t_measure = Engine.now () + Engine.ms 5 in
      let t_end = t_measure + duration in
      Arrival.open_loop ~arrivals:pt.p_arrivals ~seed:(pt.p_seed + 1)
        ~rate:pt.p_rate ~until:t_end (fun i ->
          let log = clients.(i mod producers) in
          let t0 = Engine.now () in
          if log.Log_api.append ~size ~data:(Runner.data_for i) then
            if t0 >= t_measure then begin
              Stats.Reservoir.add lat (Engine.now () - t0);
              incr measured
            end);
      Engine.sleep_until (t_end + Engine.ms 20);
      {
        r_label = pt.p_label;
        r_offered = pt.p_rate;
        r_achieved = Stats.throughput_per_sec ~count:!measured ~dur:duration;
        r_p50 = Stats.Reservoir.percentile_us lat 50.0;
        r_p99 = Stats.Reservoir.percentile_us lat 99.0;
        r_p999 = Stats.Reservoir.percentile_us lat 99.9;
      })

(* Run [f] over [xs] on up to [jobs] domains, preserving order. Each
   domain takes a strided slice; engine state is domain-local so the
   simulations are independent and each fully deterministic. *)
let par_map ~jobs f xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.to_list (Array.map f xs)
  else begin
    let out = Array.make n None in
    let doms =
      List.init jobs (fun j ->
          Domain.spawn (fun () ->
              let acc = ref [] in
              let i = ref j in
              while !i < n do
                acc := (!i, f xs.(!i)) :: !acc;
                i := !i + jobs
              done;
              !acc))
    in
    List.iter
      (fun d -> List.iter (fun (i, r) -> out.(i) <- Some r) (Domain.join d))
      doms;
    Array.to_list (Array.map Option.get out)
  end

let run () =
  let producers = 100_000 in
  let size = 128 in
  let duration = dur 20 200 in
  section "Open-loop workload: %d producers, %dB records (Erwin-m)"
    producers size;
  let cfg = Config.default in
  let cap = expected_capacity ~cfg ~mode:`M ~size in
  note "modeled capacity %.0f appends/s; SLO p99.9 <= %.0fus" cap slo_us;
  let fractions =
    if !quick then [ 0.3; 0.5; 0.7; 0.85 ] else [ 0.3; 0.5; 0.7; 0.85; 0.95 ]
  in
  let ladder =
    List.mapi
      (fun i f ->
        {
          p_label = Printf.sprintf "poisson-%.2fx" f;
          p_arrivals = Arrival.Poisson;
          p_rate = f *. cap;
          p_seed = 1000 + i;
        })
      fractions
  in
  let shaped =
    [
      {
        p_label = "bursty-0.50x";
        p_arrivals =
          Arrival.Bursty { factor = 5.0; duty = 0.1; period = Engine.ms 10 };
        p_rate = 0.5 *. cap;
        p_seed = 2000;
      };
      {
        p_label = "diurnal-0.50x";
        p_arrivals =
          Arrival.Diurnal { amplitude = 0.8; period = Engine.ms 20 };
        p_rate = 0.5 *. cap;
        p_seed = 2001;
      };
    ]
  in
  let jobs = min 4 (Domain.recommended_domain_count ()) in
  let results =
    par_map ~jobs (run_point ~producers ~size ~duration) (ladder @ shaped)
  in
  (* The 10^6-producer ladder row: the full cloud-scale population in a
     single sim — every producer a live fabric endpoint with its own
     mailbox and FIFO channels (fabric keys pack 2^20 node ids, leaving
     ~48k headroom over the million clients). Memory-bound rather than
     wall-bound, so it runs alone after the farmed ladder; a shorter
     measurement window keeps the sample count comparable. With timer
     cancellation every completed append retires its timeout cell, so
     the wheel's live set stays at the in-flight population instead of
     accreting one dead 20 ms timer per append. The "mega-" prefix keeps
     it out of the throughput-at-SLO fold, which compares the 10^5
     Poisson ladder only. *)
  let mega =
    {
      p_label = "mega-poisson-0.50x";
      p_arrivals = Arrival.Poisson;
      p_rate = 0.5 *. cap;
      p_seed = 3000;
    }
  in
  let results =
    results
    @ [ run_point ~producers:1_000_000 ~size ~duration:(dur 5 50) mega ]
  in
  table_header
    [ "arrivals/load"; "offered"; "achieved"; "p50_us"; "p99_us"; "p999_us"; "SLO" ];
  List.iter
    (fun r ->
      row r.r_label
        [
          kops r.r_offered;
          kops r.r_achieved;
          f1 r.r_p50;
          f1 r.r_p99;
          f1 r.r_p999;
          (if r.r_p999 <= slo_us then "ok" else "MISS");
        ])
    results;
  let at_slo =
    List.fold_left
      (fun best r ->
        if
          String.length r.r_label >= 7
          && String.sub r.r_label 0 7 = "poisson"
          && r.r_p999 <= slo_us
        then Float.max best r.r_achieved
        else best)
      0.0 results
  in
  row "throughput at SLO" [ kops at_slo ];
  note "(Poisson ladder; highest achieved rate with p99.9 under SLO)";
  write_json ~name:"open"
    (List.map
       (fun r ->
         {
           js_series = r.r_label;
           js_throughput = r.r_achieved;
           js_p50_us = r.r_p50;
           js_p99_us = r.r_p99;
           js_p999_us = r.r_p999;
         })
       results)
