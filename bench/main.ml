(* Benchmark driver: regenerates every figure of the paper's evaluation
   (section 6). Run all with `dune exec bench/main.exe`; select figures
   with `--fig 6 --fig 17`; use `--full` for longer measurement windows;
   `--micro` adds the bechamel microbenchmarks. *)

let figures : (string * string * (unit -> unit)) list =
  [
    ("6", "append latency vs Corfu", Fig6.run);
    ("7", "append latency vs Scalog", Fig7.run);
    ("8", "reads lagging appends", Fig8.run);
    ("9", "no lag appends/reads", Fig9.run);
    ("10", "periodic reads", Fig10.run);
    ("11", "append rate vs read latency", Fig11.run);
    ("12", "record size vs Erwin-m throughput", Fig12.run);
    ("13", "Erwin-st scalability", Fig13.run);
    ("14", "Erwin-st reads", Fig14.run);
    ("15", "total order over Kafka shards", Fig15.run);
    ("16", "seamless shard addition", Fig16.run);
    ("17", "sequencing-layer reconfiguration", Fig17.run);
    ("18", "end applications", Fig18.run);
    ("batch", "append-path group commit sweep", Fig_batch.run);
    ("read", "demand-driven tail reads", Fig_read.run);
    ("open", "open-loop 100k-producer workload", Fig_open.run);
    ("stream", "subscription streaming delivery", Fig_stream.run);
    ("gray", "gray-failure resilience (hedged reads, outlier eviction)", Fig_gray.run);
    ("tenants", "multi-log fabric: tenant scaling + weighted-fair ingress", Fig_tenants.run);
  ]

let run_selection scheduler figs full micro ablations csv json_dir
    min_mevents min_domain_scaling =
  (* Set before any simulation; spawned bench domains inherit it. Figure
     output is byte-identical either way (the wheel preserves the heap's
     (at, tie, seq) execution order exactly) — the flag exists so that
     claim can be checked by diffing. *)
  Ll_sim.Engine.set_scheduler scheduler;
  (match csv with
  | Some path -> Harness.csv_out := Some (open_out path)
  | None -> ());
  Harness.json_dir := json_dir;
  Harness.quick := not full;
  Printf.printf
    "LazyLog benchmark suite — reproducing the paper's figures (%s mode)\n"
    (if full then "full" else "quick");
  Printf.printf
    "All latencies/throughputs are simulated-cluster measurements; see EXPERIMENTS.md.\n";
  let selected =
    match figs with
    | [] -> figures
    | figs -> List.filter (fun (n, _, _) -> List.mem n figs) figures
  in
  List.iter
    (fun (n, what, f) ->
      let t0 = Unix.gettimeofday () in
      f ();
      Printf.printf "  [figure %s: %s — %.1fs wall]\n%!" n what
        (Unix.gettimeofday () -. t0))
    selected;
  if ablations then Ablation.run ();
  if micro then Micro.run ();
  (match !Harness.csv_out with
  | Some oc ->
    close_out oc;
    Harness.csv_out := None
  | None -> ());
  Printf.printf "\nDone.\n";
  (* CI regression floor: fail the run if the engine's headline event
     rate (timer-callback workload on the wheel scheduler, measured by
     --micro) fell below the floor. Very conservative floors only — the
     measurement is wall-clock and shared runners are noisy. *)
  (match min_mevents with
  | Some floor when micro ->
    if !Micro.headline_mevents < floor then begin
      Printf.eprintf
        "FAIL: engine headline %.2f Mevents/s below floor %.2f\n"
        !Micro.headline_mevents floor;
      exit 1
    end
    else
      Printf.printf "engine headline %.2f Mevents/s >= floor %.2f\n"
        !Micro.headline_mevents floor
  | Some _ ->
    prerr_endline "warning: --min-mevents has no effect without --micro"
  | None -> ());
  (* Engines are domain-local and share nothing, so the multi-domain
     aggregate must scale on multi-core runners — only checked there;
     on a single core the "aggregate" is one domain plus spawn cost. *)
  match min_domain_scaling with
  | Some floor when micro ->
    if Domain.recommended_domain_count () <= 1 then
      Printf.printf
        "domain scaling %.2fx not asserted (single-core runner)\n"
        !Micro.aggregate_scaling
    else if !Micro.aggregate_scaling < floor then begin
      Printf.eprintf "FAIL: domain scaling %.2fx below floor %.2fx\n"
        !Micro.aggregate_scaling floor;
      exit 1
    end
    else
      Printf.printf "domain scaling %.2fx >= floor %.2fx\n"
        !Micro.aggregate_scaling floor
  | Some _ ->
    prerr_endline "warning: --min-domain-scaling has no effect without --micro"
  | None -> ()

open Cmdliner

let figs =
  let doc =
    "Figure to run: a paper figure number (6..18) or a named sweep \
     (batch). Repeatable; default: all."
  in
  Arg.(value & opt_all string [] & info [ "fig"; "f" ] ~docv:"N" ~doc)

let full =
  let doc = "Longer measurement windows (closer to the paper's durations)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let micro =
  let doc = "Also run the bechamel microbenchmarks." in
  Arg.(value & flag & info [ "micro" ] ~doc)

let ablations =
  let doc = "Also run the design-choice ablations (DESIGN.md section 6)." in
  Arg.(value & flag & info [ "ablations" ] ~doc)

let csv =
  let doc = "Also mirror every table row into $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let json_dir =
  let doc =
    "Also write machine-readable BENCH_<name>.json files (throughput and \
     p50/p99 per series) into $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "json-dir" ] ~docv:"DIR" ~doc)

let scheduler =
  let doc =
    "Engine event scheduler: the timer $(b,wheel) (default) or the \
     reference $(b,heap). Output is identical; the flag exists for \
     byte-diff verification."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("wheel", `Wheel); ("heap", `Heap) ]) `Wheel
    & info [ "scheduler" ] ~docv:"SCHED" ~doc)

let min_mevents =
  let doc =
    "With --micro: exit 1 if the engine's headline rate (Mevents/s) falls \
     below $(docv). Used as a CI regression floor."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "min-mevents" ] ~docv:"FLOAT" ~doc)

let min_domain_scaling =
  let doc =
    "With --micro: exit 1 if the multi-domain aggregate Mevents/s is below \
     $(docv) times the single-domain rate. No-op on single-core runners."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "min-domain-scaling" ] ~docv:"FLOAT" ~doc)

let cmd =
  let doc = "Reproduce the LazyLog paper's evaluation figures" in
  let info = Cmd.info "lazylog-bench" ~doc in
  Cmd.v info
    Term.(
      const run_selection $ scheduler $ figs $ full $ micro $ ablations $ csv
      $ json_dir $ min_mevents $ min_domain_scaling)

let () = exit (Cmd.eval cmd)
