(* Bechamel microbenchmarks of the hot data structures (real wall-clock
   performance of the OCaml implementation, not simulated time), plus the
   ordering-saturation benchmark comparing the serial and pipelined
   background orderers (simulated time). *)

open Bechamel
open Toolkit

(* --- ordering saturation (simulated time) ---

   Isolates the background-ordering path: a feeder keeps the leader's
   sequencing log topped up directly (no client RPCs), shard disks are
   NVMe with an effectively unbounded dirty buffer, and records are small
   — so stable-gp advances exactly as fast as the
   claim/push/GC/stable pipeline can run. Reported per variant:
   ordering throughput (stable-gp advance per second) and the
   claim-to-stable lag distribution. *)

let saturation_cfg base =
  {
    base with
    Lazylog.Config.shard_disk = Lazylog.Config.Nvme;
    dirty_limit_bytes = 1 lsl 30;
  }

let ordering_saturation ~cfg ~duration =
  Ll_workload.Runner.in_sim (fun () ->
      let open Lazylog in
      let open Ll_sim in
      let cluster = Erwin_common.create ~cfg ~mode:Erwin_common.M in
      Orderer.start cluster;
      let slog = Seq_replica.log (Erwin_common.leader cluster) in
      let warmup = Engine.ms 10 in
      let t_measure = Engine.now () + warmup in
      let t_end = t_measure + duration in
      let seq = ref 0 in
      (* Top up the sequencing log in bursts; backpressure (capacity) just
         makes the feeder retry on the next microsecond tick. *)
      Engine.spawn ~name:"bench.feeder" (fun () ->
          let rec loop () =
            if Engine.now () < t_end then begin
              let full = ref false in
              let burst = ref 0 in
              while (not !full) && !burst < 512 do
                incr seq;
                let rid = { Types.Rid.client = 0; seq = !seq } in
                match
                  Seq_log.try_append slog
                    (Types.Data (Types.record ~rid ~size:64 ()))
                with
                | Some _ -> incr burst
                | None ->
                  decr seq;
                  full := true
              done;
              Engine.sleep (Engine.us 1);
              loop ()
            end
          in
          loop ());
      Engine.sleep_until t_measure;
      Stats.Reservoir.clear cluster.metrics.stable_lag;
      let g0 = cluster.stable_gp in
      Engine.sleep_until t_end;
      let g1 = cluster.stable_gp in
      let thr = Stats.throughput_per_sec ~count:(g1 - g0) ~dur:duration in
      let lag = cluster.metrics.stable_lag in
      ( thr,
        Stats.Reservoir.mean_us lag,
        Stats.Reservoir.percentile_us lag 99.0,
        Erwin_common.avg_batch cluster,
        cluster.metrics.largest_batch ))

(* Stable-gp lag at a fixed offered rate below serial capacity: a feeder
   appends [rate] records/s to the leader's log while a sampler measures,
   every 5us, how many appended records are not yet stable. Reported as
   microseconds of lag at the offered rate (records_behind / rate). This
   is the user-visible cost of lazy ordering: how long a just-acked
   record waits before reads can see it. *)
let ordering_lag ~cfg ~rate ~duration =
  Ll_workload.Runner.in_sim (fun () ->
      let open Lazylog in
      let open Ll_sim in
      let cluster = Erwin_common.create ~cfg ~mode:Erwin_common.M in
      Orderer.start cluster;
      let slog = Seq_replica.log (Erwin_common.leader cluster) in
      let warmup = Engine.ms 10 in
      let t_measure = Engine.now () + warmup in
      let t_end = t_measure + duration in
      let appended = ref 0 in
      let per_us = rate /. 1e6 in
      Engine.spawn ~name:"bench.feeder" (fun () ->
          let acc = ref 0.0 in
          let rec loop () =
            if Engine.now () < t_end then begin
              acc := !acc +. per_us;
              while !acc >= 1.0 do
                incr appended;
                let rid = { Types.Rid.client = 0; seq = !appended } in
                (match
                   Seq_log.try_append slog
                     (Types.Data (Types.record ~rid ~size:64 ()))
                 with
                | Some _ -> ()
                | None -> decr appended);
                acc := !acc -. 1.0
              done;
              Engine.sleep (Engine.us 1);
              loop ()
            end
          in
          loop ());
      let lag = Stats.Reservoir.create ~name:"stable_gp_lag" () in
      Engine.spawn ~name:"bench.sampler" (fun () ->
          let rec loop () =
            if Engine.now () < t_end then begin
              if Engine.now () >= t_measure then begin
                let behind = !appended - cluster.stable_gp in
                (* records behind -> ns of lag at the offered rate *)
                Stats.Reservoir.add lag
                  (int_of_float (float_of_int behind *. 1e9 /. rate))
              end;
              Engine.sleep (Engine.us 5);
              loop ()
            end
          in
          loop ());
      Engine.sleep_until t_end;
      (Stats.Reservoir.mean_us lag, Stats.Reservoir.percentile_us lag 99.0))

let run_saturation () =
  Harness.section "Ordering saturation: serial vs pipelined orderer";
  Harness.note
    "feeder-saturated sequencing log, 64B records, NVMe shards, unbounded dirty buffer";
  let duration = Harness.dur 40 200 in
  let serial_cfg =
    saturation_cfg
      { Lazylog.Config.default with pipeline_depth = 1; adaptive_batch = false }
  in
  let piped_cfg = saturation_cfg Lazylog.Config.default in
  let thr_s, mean_s, p99_s, avg_s, max_s =
    ordering_saturation ~cfg:serial_cfg ~duration
  in
  let thr_p, mean_p, p99_p, avg_p, max_p =
    ordering_saturation ~cfg:piped_cfg ~duration
  in
  Harness.table_header
    [ "variant"; "orders/s"; "lag_mean_us"; "lag_p99_us"; "avg_batch"; "max_batch" ];
  Harness.row "serial (depth=1, fixed)"
    [
      Harness.kops thr_s;
      Harness.f1 mean_s;
      Harness.f1 p99_s;
      Harness.f1 avg_s;
      string_of_int max_s;
    ];
  Harness.row "pipelined (depth=4, adaptive)"
    [
      Harness.kops thr_p;
      Harness.f1 mean_p;
      Harness.f1 p99_p;
      Harness.f1 avg_p;
      string_of_int max_p;
    ];
  Harness.row "speedup"
    [ Printf.sprintf "%.2fx" (thr_p /. thr_s); "-"; "-"; "-"; "-" ];
  (* Lag at 60% of the serial orderer's measured capacity: both variants
     keep up on average, so the difference is pure pipeline latency. *)
  let rate = 0.6 *. thr_s in
  let lmean_s, lp99_s = ordering_lag ~cfg:serial_cfg ~rate ~duration in
  let lmean_p, lp99_p = ordering_lag ~cfg:piped_cfg ~rate ~duration in
  Harness.section "Stable-gp lag at fixed rate (%.1fM records/s)"
    (rate /. 1e6);
  Harness.table_header [ "variant"; "lag_mean_us"; "lag_p99_us" ];
  Harness.row "serial (depth=1, fixed)" [ Harness.f1 lmean_s; Harness.f1 lp99_s ];
  Harness.row "pipelined (depth=4, adaptive)"
    [ Harness.f1 lmean_p; Harness.f1 lp99_p ]

let ring_test =
  Test.make ~name:"ring_buffer append+gc"
    (Staged.stage (fun () ->
         let r = Ll_storage.Ring_buffer.create ~capacity:64 in
         for i = 0 to 255 do
           ignore (Ll_storage.Ring_buffer.try_append r i);
           if Ll_storage.Ring_buffer.is_full r then
             Ll_storage.Ring_buffer.advance_head r
               (Ll_storage.Ring_buffer.head r + 32)
         done))

let heap_test =
  Test.make ~name:"heap push/pop x256"
    (Staged.stage (fun () ->
         let h = Ll_sim.Heap.create ~cmp:Int.compare in
         for i = 0 to 255 do
           Ll_sim.Heap.push h ((i * 7919) mod 257)
         done;
         while not (Ll_sim.Heap.is_empty h) do
           ignore (Ll_sim.Heap.pop h)
         done))

(* Before/after for the event-comparator change: the same event-shaped
   records through the scheduler's heap, compared field-wise with
   polymorphic [compare] (the seed's comparator) vs [Int.compare]. *)
type ev = { at : int; tie : int; seq : int }

let ev_cmp_poly a b =
  let c = compare a.at b.at in
  if c <> 0 then c
  else
    let c = compare a.tie b.tie in
    if c <> 0 then c else compare a.seq b.seq

let ev_cmp_int a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Int.compare a.tie b.tie in
    if c <> 0 then c else Int.compare a.seq b.seq

let event_heap_test ~name ~cmp =
  Test.make ~name
    (Staged.stage (fun () ->
         let h = Ll_sim.Heap.create ~cmp in
         for i = 0 to 255 do
           Ll_sim.Heap.push h { at = (i * 7919) mod 1024; tie = 0; seq = i }
         done;
         while not (Ll_sim.Heap.is_empty h) do
           ignore (Ll_sim.Heap.pop h)
         done))

let event_cmp_poly_test =
  event_heap_test ~name:"event heap (poly compare) x256" ~cmp:ev_cmp_poly

let event_cmp_int_test =
  event_heap_test ~name:"event heap (Int.compare) x256" ~cmp:ev_cmp_int

let zipf_test =
  let rng = Ll_sim.Rng.create ~seed:1 in
  let g = Ll_sim.Rng.Zipf.create rng ~n:100_000 ~theta:0.99 in
  Test.make ~name:"zipf next x256"
    (Staged.stage (fun () ->
         for _ = 0 to 255 do
           ignore (Ll_sim.Rng.Zipf.next g)
         done))

let seq_log_test =
  Test.make ~name:"seq_log append+order x128"
    (Staged.stage (fun () ->
         let l = Lazylog.Seq_log.create ~capacity:1024 in
         for i = 1 to 128 do
           let rid = { Lazylog.Types.Rid.client = 0; seq = i } in
           ignore
             (Lazylog.Seq_log.try_append l
                (Lazylog.Types.Data (Lazylog.Types.record ~rid ~size:64 ())))
         done;
         let entries = Lazylog.Seq_log.unordered l () in
         Lazylog.Seq_log.remove_ordered l
           (List.map Lazylog.Types.entry_rid entries)))

let reservoir_test =
  Test.make ~name:"reservoir add+p99 x1024"
    (Staged.stage (fun () ->
         let r = Ll_sim.Stats.Reservoir.create () in
         for i = 0 to 1023 do
           Ll_sim.Stats.Reservoir.add r ((i * 31) mod 977)
         done;
         ignore (Ll_sim.Stats.Reservoir.percentile_us r 99.0)))

(* End-to-end scheduler rate in real wall-clock time, under both the
   timer wheel and the retained reference heap scheduler (the pre-wheel
   implementation), on three event mixes:

   - sleep-fiber: long-lived fibers blocking in [Engine.sleep]; every
     event is an effect perform + continuation resume, so this row is
     bounded by the effects machinery (~43 ns/event measured floor on the
     dev box), not the scheduler.
   - timer-callback: chains of bare [call_after] callbacks; pure scheduler
     cost, the engine-dominated shape of fabric hops and timeout timers.
   - mixed-hop: callback chains with bimodal delays spanning all wheel
     levels (ns hops, 10-100 us RPCs, ~10 ms timeouts), exercising
     cascades the way a protocol mix does.

   The heap rows are a lower bound on the pre-PR cost of the callback
   shapes: before [call_at] existed, every timer also paid a fiber
   start. *)

let sleep_fibers n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let fibers = 64 in
      let per = n / fibers in
      for f = 0 to fibers - 1 do
        Engine.spawn ~name:"bench.tick" (fun () ->
            for i = 1 to per do
              Engine.sleep ((((f * 31) + i) mod 97) + 1)
            done)
      done)

let callback_chains n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let chains = 64 in
      let per = n / chains in
      for c = 0 to chains - 1 do
        let rec step i =
          if i < per then
            Engine.call_after
              ((((c * 31) + i) mod 97) + 1)
              (fun () -> step (i + 1))
        in
        step 0
      done)

let mixed_hops n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let chains = 64 in
      let per = n / chains in
      for c = 0 to chains - 1 do
        let rec hop i =
          if i < per then begin
            let r = ((c * 131) + (i * 7919)) mod 1000 in
            let d =
              if r < 700 then (r / 8) + 1 (* 1..88 ns: same wheel cycle *)
              else if r < 950 then ((r - 700) * 400) + 1000 (* 1..101 us *)
              else ((r - 950) * 200_000) + 1_000_000 (* 1..11 ms *)
            in
            Engine.call_after d (fun () -> hop (i + 1))
          end
        in
        hop 0
      done)

(* The pre-PR shape of a timer callback: before [call_at] existed, every
   scheduled callback started a fresh fiber ([Engine.after]). Same event
   mix as [callback_chains], priced the old way. *)
let fiber_timer_chains n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let chains = 64 in
      let per = n / chains in
      for c = 0 to chains - 1 do
        let rec step i =
          if i < per then
            Engine.after
              ((((c * 31) + i) mod 97) + 1)
              (fun () -> step (i + 1))
        in
        step 0
      done)

(* 100k concurrently pending timers — the live-set shape of the open-loop
   10^5-producer workload. The heap pays O(log n) comparator sifts over a
   cold 100k-element array per event; the wheel stays O(1), so this is
   where the scheduler swap actually pays. *)
let deep_timers n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let chains = 100_000 in
      let per = (n / chains) + 1 in
      for c = 0 to chains - 1 do
        let rec step i =
          if i < per then
            Engine.call_after
              (50_000 + (((c * 31) + (i * 7919)) mod 100_000))
              (fun () -> step (i + 1))
        in
        (* spread the chain starts so the live set is immediately 100k *)
        Engine.call_after ((c mod 50_000) + 1) (fun () -> step 0)
      done)

(* Same 100k-live mix in the pre-PR shape: fiber-per-timer. *)
let deep_fiber_timers n =
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let chains = 100_000 in
      let per = (n / chains) + 1 in
      for c = 0 to chains - 1 do
        let rec step i =
          if i < per then
            Engine.after
              (50_000 + (((c * 31) + (i * 7919)) mod 100_000))
              (fun () -> step (i + 1))
        in
        Engine.after ((c mod 50_000) + 1) (fun () -> step 0)
      done)

let engine_workloads =
  [
    ("sleep-fiber", sleep_fibers);
    ("timer-fiber", fiber_timer_chains);
    ("timer-callback", callback_chains);
    ("mixed-hop", mixed_hops);
    ("deep-timer-100k", deep_timers);
    ("deep-fiber-100k", deep_fiber_timers);
  ]

(* Headline Mevents/s (timer-callback under the wheel) — the number the
   --min-mevents CI regression floor checks. *)
let headline_mevents = ref 0.0

(* Multi-domain aggregate speedup over the single-domain mixed-hop rate —
   the number the --min-domain-scaling CI assertion checks on multi-core
   runners. *)
let aggregate_scaling = ref 0.0

(* Timed-recv storm: 10^5 parked receivers with armed deadlines, every
   one fed before its deadline fires. Cancellation retires each deadline
   cell at wake time, so the wheel's live set after the storm is zero —
   before cancellation this workload left one dead 20 ms timer per recv
   (10^5 cells to churn through cascades and dispatch as no-ops). The
   live-cell count is reported as its own row and JSON series so the
   regression is visible, not just slow. *)
let recv_storm js =
  let n = if !Harness.quick then 50_000 else 100_000 in
  let live_after = ref (-1) and cancelled = ref 0 in
  let t0 = Unix.gettimeofday () in
  let mw0 = Gc.minor_words () in
  Ll_sim.Engine.run (fun () ->
      let open Ll_sim in
      let mb = Mailbox.create () in
      for _ = 1 to n do
        Engine.spawn (fun () ->
            ignore (Mailbox.recv_timeout mb ~timeout:(Engine.ms 20) : int option))
      done;
      for i = 1 to n do
        Engine.call_after (i land 1023) (fun () -> Mailbox.send mb i)
      done;
      Engine.after (Engine.us 10) (fun () ->
          live_after := Engine.pending_events ();
          cancelled := Engine.timers_cancelled ()));
  let wall = Unix.gettimeofday () -. t0 in
  let mw = (Gc.minor_words () -. mw0) /. float_of_int (Ll_sim.Engine.events_executed ()) in
  let events = Ll_sim.Engine.events_executed () in
  Harness.row "timed-recv-storm/wheel"
    [
      string_of_int events;
      Harness.f1 (wall *. 1000.);
      Printf.sprintf "%.2f" (float_of_int events /. wall /. 1e6);
      Printf.sprintf "%.1f" mw;
      "-";
    ];
  Harness.row "  storm live wheel cells"
    [
      string_of_int !live_after;
      "-";
      "-";
      "-";
      Printf.sprintf "%d cancelled" !cancelled;
    ];
  js :=
    {
      Harness.js_series = "recv-storm/wheel";
      js_throughput = float_of_int events /. wall;
      js_p50_us = 0.0;
      js_p99_us = 0.0;
      js_p999_us = 0.0;
    }
    :: {
         (* live-cells-after-storm, recorded in the throughput field:
            must stay 0 — every completed timed recv cancels its
            deadline cell. *)
         Harness.js_series = "recv-storm/live-cells";
         js_throughput = float_of_int !live_after;
         js_p50_us = 0.0;
         js_p99_us = 0.0;
         js_p999_us = 0.0;
       }
    :: !js

let run_engine_rate () =
  Harness.section "Engine event throughput (real time): wheel vs heap";
  Harness.note
    "heap = reference scheduler (pre-wheel boxed events); mwords/ev = minor words allocated per event";
  let n = if !Harness.quick then 300_000 else 2_000_000 in
  let measure sched f =
    Ll_sim.Engine.set_scheduler sched;
    let t0 = Unix.gettimeofday () in
    let mw0 = Gc.minor_words () in
    f n;
    let mw1 = Gc.minor_words () in
    let wall = Unix.gettimeofday () -. t0 in
    let events = Ll_sim.Engine.events_executed () in
    (events, wall, (mw1 -. mw0) /. float_of_int events)
  in
  Harness.table_header
    [ "workload/scheduler"; "events"; "wall_ms"; "Mevents/s"; "mwords/ev"; "speedup" ];
  let js = ref [] in
  let fiber_timer_heap = ref 0.0 in
  let mixed_hop_wheel = ref 0.0 in
  let deep_callback_wheel = ref 0.0 in
  let deep_fiber_heap = ref 0.0 in
  List.iter
    (fun (wname, f) ->
      let ev_h, w_h, a_h = measure `Heap f in
      let ev_w, w_w, a_w = measure `Wheel f in
      let mh = float_of_int ev_h /. w_h /. 1e6 in
      let mw = float_of_int ev_w /. w_w /. 1e6 in
      Harness.row (wname ^ "/heap")
        [
          string_of_int ev_h;
          Harness.f1 (w_h *. 1000.);
          Printf.sprintf "%.2f" mh;
          Harness.f1 a_h;
          "-";
        ];
      Harness.row (wname ^ "/wheel")
        [
          string_of_int ev_w;
          Harness.f1 (w_w *. 1000.);
          Printf.sprintf "%.2f" mw;
          Harness.f1 a_w;
          Printf.sprintf "%.2fx" (mw /. mh);
        ];
      if wname = "timer-fiber" then fiber_timer_heap := mh;
      if wname = "timer-callback" then headline_mevents := mw;
      if wname = "mixed-hop" then mixed_hop_wheel := mw;
      if wname = "deep-timer-100k" then deep_callback_wheel := mw;
      if wname = "deep-fiber-100k" then deep_fiber_heap := mh;
      js :=
        {
          Harness.js_series = wname ^ "/heap";
          js_throughput = mh *. 1e6;
          js_p50_us = 0.0;
          js_p99_us = 0.0;
          js_p999_us = 0.0;
        }
        :: {
             Harness.js_series = wname ^ "/wheel";
             js_throughput = mw *. 1e6;
             js_p50_us = 0.0;
             js_p99_us = 0.0;
             js_p999_us = 0.0;
           }
        :: !js)
    engine_workloads;
  Ll_sim.Engine.set_scheduler `Wheel;
  (* The pre-PR engine priced every timer as timer-fiber/heap; the new
     engine prices it as timer-callback/wheel. *)
  if !fiber_timer_heap > 0.0 then
    Harness.row "timer path vs pre-PR"
      [
        "-";
        "-";
        "-";
        "-";
        Printf.sprintf "%.2fx" (!headline_mevents /. !fiber_timer_heap);
      ];
  if !deep_fiber_heap > 0.0 then
    Harness.row "deep timer path vs pre-PR"
      [
        "-";
        "-";
        "-";
        "-";
        Printf.sprintf "%.2fx" (!deep_callback_wheel /. !deep_fiber_heap);
      ];
  (* Engines are domain-local, so independent clusters shard across
     domains with zero coordination — the sweep/bench parallelism this PR
     spends its headroom on. Aggregate Mevents/s over [doms] domains each
     running the mixed-hop mix under the wheel. *)
  let doms = min 8 (Domain.recommended_domain_count ()) in
  let t0 = Unix.gettimeofday () in
  let spawned =
    Array.init doms (fun _ ->
        Domain.spawn (fun () ->
            mixed_hops n;
            Ll_sim.Engine.events_executed ()))
  in
  let events = Array.fold_left (fun a d -> a + Domain.join d) 0 spawned in
  let wall = Unix.gettimeofday () -. t0 in
  let agg = float_of_int events /. wall /. 1e6 in
  if !mixed_hop_wheel > 0.0 then aggregate_scaling := agg /. !mixed_hop_wheel;
  Harness.row (Printf.sprintf "mixed-hop/wheel x%d domains" doms)
    [
      string_of_int events;
      Harness.f1 (wall *. 1000.);
      Printf.sprintf "%.2f" agg;
      "-";
      (if !mixed_hop_wheel > 0.0 then
         Printf.sprintf "%.2fx" (agg /. !mixed_hop_wheel)
       else "-");
    ];
  js :=
    {
      Harness.js_series = Printf.sprintf "mixed-hop/wheel-x%d" doms;
      js_throughput = agg *. 1e6;
      js_p50_us = 0.0;
      js_p99_us = 0.0;
      js_p999_us = 0.0;
    }
    :: !js;
  recv_storm js;
  Harness.write_json ~name:"micro" (List.rev !js)

let run () =
  run_saturation ();
  run_engine_rate ();
  Harness.section "Microbenchmarks (bechamel, real time)";
  let tests =
    Test.make_grouped ~name:"micro" ~fmt:"%s %s"
      [
        ring_test;
        heap_test;
        event_cmp_poly_test;
        event_cmp_int_test;
        zipf_test;
        seq_log_test;
        reservoir_test;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "  %-32s %10.1f ns/run\n" name est
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    results
