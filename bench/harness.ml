(* Shared benchmark plumbing: system factories, workload drivers, and
   table/CDF printing. Every fig*.ml module reproduces one figure of the
   paper's evaluation (section 6) and prints the same rows/series the
   figure reports. *)

open Ll_sim
open Lazylog
open Ll_workload

(* --- printing --- *)

(* Optional machine-readable mirror of every table row
   (section,column,...header / section,label,cells...). *)
let csv_out : out_channel option ref = ref None
let current_section = ref ""
let current_cols : string list ref = ref []

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_line cells =
  match !csv_out with
  | Some oc ->
    output_string oc (String.concat "," (List.map csv_escape cells));
    output_char oc '\n'
  | None -> ()

(* Optional machine-readable JSON output: one BENCH_<name>.json file per
   benchmark under [!json_dir], of the shape
   {schema: "lazylog-bench/v1", name, series: [{series, throughput,
   p50_us, p99_us, p999_us}, ...]} (CI parses every emitted file against
   this schema). *)
let json_dir : string option ref = ref None
let json_schema = "lazylog-bench/v1"

type json_series = {
  js_series : string;
  js_throughput : float;  (** records per second *)
  js_p50_us : float;
  js_p99_us : float;
  js_p999_us : float;  (** 0.0 when the benchmark has no tail to report *)
}

(* NaN/inf are not valid JSON numbers (a latency reservoir that saw no
   samples yields NaN percentiles): clamp to 0 so the file always
   parses. *)
let json_num x = if Float.is_finite x then x else 0.0

let write_json ~name (series : json_series list) =
  match !json_dir with
  | None -> ()
  | Some dir ->
    (try if not (Sys.is_directory dir) then failwith "not a dir"
     with Sys_error _ | Failure _ -> (
       try Sys.mkdir dir 0o755 with Sys_error _ -> ()));
    let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
    let oc = open_out path in
    Printf.fprintf oc "{\"schema\": %S, \"name\": %S, \"series\": [\n"
      json_schema name;
    List.iteri
      (fun i s ->
        Printf.fprintf oc
          "  {\"series\": %S, \"throughput\": %.1f, \"p50_us\": %.2f, \
           \"p99_us\": %.2f, \"p999_us\": %.2f}%s\n"
          s.js_series (json_num s.js_throughput) (json_num s.js_p50_us)
          (json_num s.js_p99_us) (json_num s.js_p999_us)
          (if i = List.length series - 1 then "" else ","))
      series;
    output_string oc "]}\n";
    close_out oc;
    Printf.printf "  [json: %s]\n%!" path

let section fmt =
  Printf.ksprintf
    (fun s ->
      current_section := s;
      Printf.printf "\n=== %s ===\n%!" s)
    fmt

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt

let table_header cols =
  current_cols := cols;
  csv_line ("#section" :: cols);
  Printf.printf "  %-28s %s\n" (List.hd cols)
    (String.concat " " (List.map (Printf.sprintf "%12s") (List.tl cols)));
  Printf.printf "  %s\n"
    (String.make (28 + (13 * (List.length cols - 1))) '-')

let row label cells =
  csv_line (!current_section :: label :: cells);
  Printf.printf "  %-28s %s\n%!" label
    (String.concat " " (List.map (Printf.sprintf "%12s") cells))

let f1 x = Printf.sprintf "%.1f" x
let f0 x = Printf.sprintf "%.0f" x
let kops x = Printf.sprintf "%.1fK" (x /. 1_000.)

let print_cdf name r ~points =
  Printf.printf "  CDF %s (latency_us : cum_pct):" name;
  List.iter
    (fun (lat, pct) -> Printf.printf " %.1f:%.0f" lat pct)
    (Stats.Reservoir.cdf r ~points);
  print_newline ()

(* --- scale control --- *)

let quick = ref true
(* quick mode shortens measurement windows; --full restores longer ones *)

let dur ms_quick ms_full = Engine.ms (if !quick then ms_quick else ms_full)

(* --- system factories (fresh system per simulation) --- *)

type sys = {
  name : string;
  make : unit -> unit -> Log_api.t;
      (** build the system, return a client factory; call inside a sim *)
}

let erwin_m ?(cfg = Config.default) () =
  {
    name = "erwin-m";
    make =
      (fun () ->
        let cluster = Erwin_m.create ~cfg () in
        fun () -> Erwin_m.client cluster);
  }

let erwin_m_cluster cfg =
  (* variant exposing the cluster for stats *)
  let cluster = ref None in
  let sys =
    {
      name = "erwin-m";
      make =
        (fun () ->
          let c = Erwin_m.create ~cfg () in
          cluster := Some c;
          fun () -> Erwin_m.client c);
    }
  in
  (sys, fun () -> Option.get !cluster)

let erwin_st ?(cfg = Config.default) () =
  {
    name = "erwin-st";
    make =
      (fun () ->
        let cluster = Erwin_st.create ~cfg () in
        fun () -> Erwin_st.client cluster);
  }

let corfu ?(config = Ll_corfu.Corfu.default_config) () =
  {
    name = "corfu";
    make =
      (fun () ->
        let c = Ll_corfu.Corfu.create ~config () in
        fun () -> Ll_corfu.Corfu.client c);
  }

let scalog ?(config = Ll_scalog.Scalog.default_config) () =
  {
    name = "scalog";
    make =
      (fun () ->
        let s = Ll_scalog.Scalog.create ~config () in
        fun () -> Ll_scalog.Scalog.client s);
  }

(* --- append-latency experiment (figures 6, 7) --- *)

let append_latency sys ~rate ~size ~duration =
  Runner.in_sim (fun () ->
      let factory = sys.make () in
      Runner.append_workload ~log_factory:factory ~size ~rate ~duration ())

let append_row sys ~rate ~size ~duration =
  let r = append_latency sys ~rate ~size ~duration in
  let mean, p50, p99 = Runner.percentiles r.Runner.latency in
  (r, mean, p50, p99)

(* --- append + read experiment (figures 8, 9, 14) ---

   Appends run open-loop at [rate]; a sequential reader consumes the log
   in [chunk]-sized reads, reading each position once it has been durable
   for [lag] (the paper's time-decoupled reader; [lag = 0] is the
   aggressive no-lag reader that chases the tail). With lazy ordering,
   only the first read into the unordered portion pays the ordering wait;
   the rest of the batch is then below stable-gp. Returns (append
   latencies, read latencies). *)

let append_and_read sys ~rate ~size ~duration ~lag ~chunk =
  Runner.in_sim (fun () ->
      let factory = sys.make () in
      let clients = Array.init 8 (fun _ -> factory ()) in
      let reader = factory () in
      let app_lat = Stats.Reservoir.create ~name:"append" () in
      let read_lat = Stats.Reservoir.create ~name:"read" () in
      let ack_times : Engine.time array ref = ref (Array.make 4096 0) in
      let acked = ref 0 in
      let warmup = Engine.ms 5 in
      let t_measure = Engine.now () + warmup in
      let t_end = t_measure + duration in
      Arrival.open_loop ~rate ~until:t_end (fun i ->
          let log = clients.(i mod 8) in
          let t0 = Engine.now () in
          if log.Log_api.append ~size ~data:(Runner.data_for i) then begin
            if t0 >= t_measure then
              Stats.Reservoir.add app_lat (Engine.now () - t0);
            if !acked >= Array.length !ack_times then begin
              let bigger = Array.make (2 * Array.length !ack_times) 0 in
              Array.blit !ack_times 0 bigger 0 !acked;
              ack_times := bigger
            end;
            !ack_times.(!acked) <- Engine.now ();
            incr acked
          end);
      (* Sequential reader. *)
      Engine.spawn ~name:"bench.reader" (fun () ->
          let cursor = ref 0 in
          let rec loop () =
            if Engine.now () < t_end + Engine.ms 10 then begin
              let last = !cursor + chunk - 1 in
              if !acked > last && Engine.now () >= !ack_times.(last) + lag
              then begin
                let t0 = Engine.now () in
                let got = reader.Log_api.read ~from:!cursor ~len:chunk in
                if t0 >= t_measure then
                  Stats.Reservoir.add read_lat (Engine.now () - t0);
                cursor := !cursor + List.length got
              end
              else Engine.sleep (Engine.us 5);
              loop ()
            end
          in
          loop ());
      Engine.sleep_until (t_end + Engine.ms 30);
      (app_lat, read_lat))

(* --- max throughput probe (figures 12, 13) ---

   Drives the system somewhat above its expected capacity and reports the
   steady-state completion rate: completions are counted by completion
   time, after a warmup long enough for the shards' write buffers to fill
   so the disks' sustained rate governs. *)

let max_throughput ?(warmup = Engine.ms 40) sys ~offered ~size ~duration =
  Runner.in_sim (fun () ->
      let factory = sys.make () in
      let clients = Array.init 32 (fun _ -> factory ()) in
      let completed = ref 0 in
      let t_measure = Engine.now () + warmup in
      let t_end = t_measure + duration in
      Arrival.open_loop ~rate:offered ~until:t_end (fun i ->
          let log = clients.(i mod 32) in
          if log.Log_api.append ~size ~data:(Runner.data_for i) then begin
            let t_done = Engine.now () in
            if t_done >= t_measure && t_done <= t_end then incr completed
          end);
      Engine.sleep_until (t_end + Engine.ms 50);
      Stats.throughput_per_sec ~count:!completed ~dur:duration)

(* Steady-state throughput via the binding rate: drive the cluster above
   capacity and measure how fast stable-gp advances (records ordered,
   bound and made readable per second). Unlike counting client acks, this
   converges immediately — the in-memory buffers along the pipeline
   (sequencing log, shard write buffers) otherwise absorb load for
   hundreds of milliseconds before acks throttle. *)
let drain_throughput ~cfg ~mode ~size ~offered ~duration =
  Runner.in_sim (fun () ->
      let cluster, client =
        match mode with
        | `M ->
          let c = Lazylog.Erwin_m.create ~cfg () in
          (c, fun () -> Lazylog.Erwin_m.client c)
        | `St ->
          let c = Lazylog.Erwin_st.create ~cfg () in
          (c, fun () -> Lazylog.Erwin_st.client c)
      in
      let clients = Array.init 32 (fun _ -> client ()) in
      let t_measure = Engine.now () + Engine.ms 15 in
      let t_end = t_measure + duration in
      Arrival.open_loop ~rate:offered ~until:t_end (fun i ->
          ignore
            (clients.(i mod 32).Log_api.append ~size ~data:(Runner.data_for i)));
      Engine.sleep_until t_measure;
      let g0 = cluster.Lazylog.Erwin_common.stable_gp in
      Engine.sleep_until t_end;
      let g1 = cluster.Lazylog.Erwin_common.stable_gp in
      Stats.throughput_per_sec ~count:(g1 - g0) ~dur:duration)

(* Expected capacity model for sizing the offered load: the sequencing
   replicas cap at [1 / (base + per_byte * entry_size)] and each shard
   drains its device's sustained bandwidth. *)
let seq_cap_records ~cfg ~size =
  1e9
  /. (float_of_int cfg.Lazylog.Config.seq_base_ns
     +. (cfg.Lazylog.Config.seq_per_byte_ns *. float_of_int size))

let seq_cap_meta ~cfg =
  1e9
  /. (float_of_int cfg.Lazylog.Config.seq_base_ns
     +. (cfg.Lazylog.Config.seq_per_byte_ns
        *. float_of_int Lazylog.Types.meta_size))

let shard_bw_bytes ~cfg =
  match cfg.Lazylog.Config.shard_disk with
  | Lazylog.Config.Sata -> 140e6
  | Lazylog.Config.Nvme -> 285e6

let expected_capacity ~cfg ~mode ~size =
  let shards = float_of_int cfg.Lazylog.Config.nshards in
  let shard_cap = shards *. shard_bw_bytes ~cfg /. float_of_int size in
  let seq_cap =
    match mode with
    | `M -> seq_cap_records ~cfg ~size
    | `St -> seq_cap_meta ~cfg
  in
  Float.min seq_cap shard_cap
