(* Figure "batch": append-path group commit. Small-record (100 B) append
   throughput and ack latency with the client-side linger batcher at
   linger 0/5/20/50 us, versus batching off, on both Erwin systems.

   Batching off, both systems are sequencer-bound at small records: every
   append pays the full seq_base_ns admission cost. The batcher amortizes
   that base across a wire batch, so throughput scales with the achieved
   batch size while p50 ack latency pays roughly the linger window. The
   config defaults keep batching OFF, so figures 6-18 are unchanged;
   this sweep quantifies what opting in buys. *)

open Ll_sim
open Harness

let lingers_us = [ 0; 5; 20; 50 ]

let cfg_of ~batching ~linger_us =
  let base =
    Lazylog.Config.scaled_cluster
      { Lazylog.Config.default with nshards = 5; shard_backup_count = 1 }
  in
  if batching then
    {
      base with
      Lazylog.Config.append_batching = true;
      linger = Engine.us linger_us;
    }
  else base

let run_mode mode mode_name json =
  section "Figure batch: group commit — %s (100 B records, 5 shards NVMe)"
    mode_name;
  let duration = dur 30 150 in
  let lat_dur = dur 20 100 in
  table_header [ "linger_us"; "throughput"; "p50_us"; "p99_us" ];
  let measure ~batching ~linger_us ~label =
    let cfg = cfg_of ~batching ~linger_us in
    let base_cap = expected_capacity ~cfg ~mode ~size:100 in
    (* Batching lifts the sequencer bound, so the next ceiling governs
       how hard we can offer. For Erwin-st that is the shards' per-record
       data-write CPU (shard_base_ns + 0.3 ns/B, one write per replica):
       offering far above it queues binds behind data writes unboundedly
       and the drain measurement never reaches steady state. *)
    let shard_cpu_cap =
      float_of_int cfg.Lazylog.Config.nshards
      *. 1e9
      /. (float_of_int cfg.Lazylog.Config.shard_base_ns +. (0.3 *. 116.))
    in
    let offered =
      if batching then
        match mode with
        | `M -> 4.0 *. base_cap
        | `St -> Float.min (4.0 *. base_cap) (0.8 *. shard_cpu_cap)
      else 1.4 *. base_cap
    in
    let tput = drain_throughput ~cfg ~mode ~size:100 ~offered ~duration in
    (* Ack latency at moderate load (30% of the unbatched capacity),
       where the linger window rather than queueing dominates. *)
    let sys =
      match mode with `M -> erwin_m ~cfg () | `St -> erwin_st ~cfg ()
    in
    let _r, _mean, p50, p99 =
      append_row sys ~rate:(0.3 *. base_cap) ~size:100 ~duration:lat_dur
    in
    row label [ kops tput; f1 p50; f1 p99 ];
    json :=
      {
        js_series = mode_name ^ "/" ^ label;
        js_throughput = tput;
        js_p50_us = p50;
        js_p99_us = p99;
        js_p999_us = 0.0;
      }
      :: !json;
    tput
  in
  let off = measure ~batching:false ~linger_us:0 ~label:"off" in
  let best =
    List.fold_left
      (fun best l ->
        Float.max best
          (measure ~batching:true ~linger_us:l ~label:(string_of_int l)))
      0.0 lingers_us
  in
  note "batching off is sequencer-bound at %s/s; best batched %s/s (%.1fx)"
    (kops off) (kops best) (best /. off)

let run () =
  let json = ref [] in
  run_mode `M "erwin-m" json;
  run_mode `St "erwin-st" json;
  write_json ~name:"batch" (List.rev !json)
