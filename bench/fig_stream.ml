(* `--fig stream`: streaming delivery (not a paper figure).

   Append-to-delivery latency and delivery throughput for the
   subscription subsystem (lib/stream): open-loop writers append
   timestamped records while N subscribers receive server pushes off the
   stable tail; each delivered record's latency is measured from append
   invocation to application delivery.

   (a) Subscriber-count ladder on Erwin-m at the default 20us ordering
   cadence: every subscriber receives every record, so aggregate
   delivery throughput should scale ~linearly with subscriber count
   while per-record latency stays flat (the manager fetches once per
   subscription — fan-out work, not ordering work).

   (b) The lazy-cadence point (250us ordering interval): the manager's
   demand hook asks the orderer to bind eagerly exactly like a parked
   tail read (PR 4), so append-to-delivery latency must not degrade by
   the cadence, only by the extra demand hop.

   (c) One Erwin-st row: the manager fetch path goes through the
   position-to-shard map and uncoordinated shard reads instead of
   deterministic placement. *)

open Ll_sim
open Lazylog
open Harness
open Ll_workload

let stream_cfg ?(order_interval = Engine.us 20) () =
  { Config.default with subscriptions = true; order_interval }

(* One measured run: [nsubs] subscribers over open-loop appends of
   timestamped records. Returns (append->delivery latency reservoir,
   delivered records per second aggregated over the subscribers). *)
let delivery ~mode ~cfg ~rate ~duration ~nsubs =
  Runner.in_sim (fun () ->
      let cluster, client =
        match mode with
        | `M ->
          let c = Erwin_m.create ~cfg () in
          (c, fun () -> Erwin_m.client c)
        | `St ->
          let c = Erwin_st.create ~cfg () in
          (c, fun () -> Erwin_st.client c)
      in
      let mgr = Ll_stream.Manager.start cluster in
      let mid = Ll_stream.Manager.endpoint_id mgr in
      let lat = Stats.Reservoir.create ~name:"append_to_delivery" () in
      let delivered = ref 0 in
      let t_measure = Engine.now () + Engine.ms 5 in
      let t_end = t_measure + duration in
      for k = 0 to nsubs - 1 do
        Engine.spawn ~name:(Printf.sprintf "bench.sub%d" k) (fun () ->
            ignore
              (Ll_stream.Subscriber.create cluster ~manager:mid
                 ~name:(Printf.sprintf "sub-%d" k)
                 ~on_record:(fun _gp r ->
                   let now = Engine.now () in
                   if now >= t_measure && now <= t_end then begin
                     incr delivered;
                     (* Records carry their append-invocation time. *)
                     Stats.Reservoir.add lat
                       (now - int_of_string r.Types.data)
                   end)
                 ()
                : Ll_stream.Subscriber.t))
      done;
      let clients = Array.init 4 (fun _ -> client ()) in
      Arrival.open_loop ~rate ~until:t_end (fun i ->
          ignore
            (clients.(i mod 4).Log_api.append ~size:256
               ~data:(string_of_int (Engine.now ()))
              : bool));
      Engine.sleep_until (t_end + Engine.ms 10);
      (lat, Stats.throughput_per_sec ~count:!delivered ~dur:duration))

let run () =
  let duration = dur 30 120 in
  let rate = 50_000. in

  section
    "Stream (a): Append-to-Delivery vs Subscriber Count (Erwin-m, 256B, \
     50K appends/s, 20us cadence)";
  let ladder = [ 1; 2; 4; 8 ] in
  let by_subs =
    List.map
      (fun n ->
        (n, delivery ~mode:`M ~cfg:(stream_cfg ()) ~rate ~duration ~nsubs:n))
      ladder
  in
  table_header [ "subscribers"; "deliv/s"; "p50_us"; "p99_us"; "p999_us" ];
  List.iter
    (fun (n, (lat, thr)) ->
      row (string_of_int n)
        [
          kops thr;
          f1 (Stats.Reservoir.percentile_us lat 50.0);
          f1 (Stats.Reservoir.percentile_us lat 99.0);
          f1 (Stats.Reservoir.percentile_us lat 99.9);
        ])
    by_subs;
  let thr n = snd (List.assoc n by_subs) in
  note "1 -> 8 subscribers scales aggregate delivery %.1fx" (thr 8 /. thr 1);

  section
    "Stream (b): Lazy Cadence (250us ordering interval, 1 subscriber) — \
     the demand wake path";
  let lazy_lat, lazy_thr =
    delivery ~mode:`M
      ~cfg:(stream_cfg ~order_interval:(Engine.us 250) ())
      ~rate ~duration ~nsubs:1
  in
  table_header [ "cadence"; "deliv/s"; "p50_us"; "p99_us"; "p999_us" ];
  row "250us+demand"
    [
      kops lazy_thr;
      f1 (Stats.Reservoir.percentile_us lazy_lat 50.0);
      f1 (Stats.Reservoir.percentile_us lazy_lat 99.0);
      f1 (Stats.Reservoir.percentile_us lazy_lat 99.9);
    ];
  note
    "delivery does not wait out the lazy cadence: the manager demands \
     binding like a parked tail read";

  section "Stream (c): Erwin-st (map-resolved fetch path, 2 subscribers)";
  let st_lat, st_thr =
    delivery ~mode:`St ~cfg:(stream_cfg ()) ~rate ~duration ~nsubs:2
  in
  table_header [ "system"; "deliv/s"; "p50_us"; "p99_us"; "p999_us" ];
  row "erwin-st"
    [
      kops st_thr;
      f1 (Stats.Reservoir.percentile_us st_lat 50.0);
      f1 (Stats.Reservoir.percentile_us st_lat 99.0);
      f1 (Stats.Reservoir.percentile_us st_lat 99.9);
    ];

  write_json ~name:"stream"
    (List.map
       (fun (n, (lat, thr)) ->
         {
           js_series = Printf.sprintf "erwin-m subs=%d" n;
           js_throughput = thr;
           js_p50_us = Stats.Reservoir.percentile_us lat 50.0;
           js_p99_us = Stats.Reservoir.percentile_us lat 99.0;
           js_p999_us = Stats.Reservoir.percentile_us lat 99.9;
         })
       by_subs
    @ [
        {
          js_series = "erwin-m lazy-250us subs=1";
          js_throughput = lazy_thr;
          js_p50_us = Stats.Reservoir.percentile_us lazy_lat 50.0;
          js_p99_us = Stats.Reservoir.percentile_us lazy_lat 99.0;
          js_p999_us = Stats.Reservoir.percentile_us lazy_lat 99.9;
        };
        {
          js_series = "erwin-st subs=2";
          js_throughput = st_thr;
          js_p50_us = Stats.Reservoir.percentile_us st_lat 50.0;
          js_p99_us = Stats.Reservoir.percentile_us st_lat 99.0;
          js_p999_us = Stats.Reservoir.percentile_us st_lat 99.9;
        };
      ])
