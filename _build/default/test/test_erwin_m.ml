(* End-to-end tests for Erwin-m: the 1 RTT append path, background
   ordering, stable-gp gated reads, checkTail, trim, appendSync, and the
   fast/slow read paths. *)

open Ll_sim
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let with_cluster ?(cfg = Config.default) f =
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg () in
      f cluster;
      Engine.stop ())

let test_append_read_roundtrip () =
  with_cluster (fun cluster ->
      let log = Erwin_m.client cluster in
      for i = 1 to 50 do
        checkb "append acked" true (log.append ~size:512 ~data:(string_of_int i))
      done;
      let records = log.read ~from:0 ~len:50 in
      checki "all read" 50 (List.length records);
      List.iteri
        (fun i (r : Types.record) ->
          Alcotest.(check string) "in order" (string_of_int (i + 1)) r.data)
        records)

let test_append_is_1rtt () =
  with_cluster (fun cluster ->
      let log = Erwin_m.client cluster in
      ignore (log.append ~size:100 ~data:"warm");
      let t0 = Engine.now () in
      ignore (log.append ~size:100 ~data:"x");
      let d = Engine.now () - t0 in
      (* 1 RTT + service; far below a Corfu-style 4 RTT (~30 us). *)
      checkb "1RTT-ish" true (d < Engine.us 12))

let test_check_tail_counts_unordered () =
  with_cluster (fun cluster ->
      let log = Erwin_m.client cluster in
      for i = 1 to 10 do
        ignore (log.append ~size:64 ~data:(string_of_int i))
      done;
      (* Tail includes records not yet bound (durable count). *)
      checki "tail" 10 (log.check_tail ());
      checkb "stable lags tail initially" true (cluster.stable_gp <= 10))

let test_background_ordering_advances_stable () =
  with_cluster (fun cluster ->
      let log = Erwin_m.client cluster in
      for i = 1 to 20 do
        ignore (log.append ~size:64 ~data:(string_of_int i))
      done;
      Engine.sleep (Engine.ms 2);
      checki "all stable after idle" 20 cluster.stable_gp;
      (* Sequencing replicas drained. *)
      List.iter
        (fun r -> checki "replica log empty" 0 (Seq_log.live_count (Seq_replica.log r)))
        cluster.replicas)

let test_fast_vs_slow_read () =
  with_cluster (fun cluster ->
      let log = Erwin_m.client cluster in
      for i = 1 to 5 do
        ignore (log.append ~size:64 ~data:(string_of_int i))
      done;
      (* Slow path: read immediately, before background ordering. *)
      let t0 = Engine.now () in
      ignore (log.read ~from:0 ~len:5);
      let slow = Engine.now () - t0 in
      checkb "slow path waited for ordering" true (slow >= Engine.us 10);
      (* Fast path: same positions again, now stable. *)
      let t0 = Engine.now () in
      ignore (log.read ~from:0 ~len:5);
      let fast = Engine.now () - t0 in
      checkb "fast path quicker" true (fast < slow))

let test_records_land_on_right_shards () =
  let cfg = { Config.default with nshards = 3 } in
  with_cluster ~cfg (fun cluster ->
      let log = Erwin_m.client cluster in
      for i = 1 to 30 do
        ignore (log.append ~size:64 ~data:(string_of_int i))
      done;
      Engine.sleep (Engine.ms 2);
      List.iter
        (fun shard ->
          List.iter
            (fun (gp, _) ->
              checki "placement p mod n" (Shard.shard_id shard)
                (gp mod 3))
            (Shard.bound_positions shard))
        cluster.shards)

let test_append_sync_positions () =
  with_cluster (fun cluster ->
      let log = Erwin_m.client cluster in
      let f = Option.get log.append_sync in
      let p1 = f ~size:64 ~data:"a" in
      let p2 = f ~size:64 ~data:"b" in
      checki "first" 0 p1;
      checki "second" 1 p2;
      (* and the records are readable at those positions *)
      (match log.read ~from:p2 ~len:1 with
      | [ r ] -> Alcotest.(check string) "record at pos" "b" r.data
      | l -> Alcotest.failf "expected 1 record, got %d" (List.length l)))

let test_trim () =
  with_cluster (fun cluster ->
      let log = Erwin_m.client cluster in
      for i = 1 to 10 do
        ignore (log.append ~size:64 ~data:(string_of_int i))
      done;
      Engine.sleep (Engine.ms 2);
      checkb "trim ok" true (log.trim ~upto:5);
      let records = log.read ~from:5 ~len:5 in
      checki "suffix intact" 5 (List.length records);
      let records = log.read ~from:0 ~len:10 in
      checki "prefix gone" 5 (List.length records))

let test_concurrent_writers_unique_positions () =
  with_cluster (fun cluster ->
      let n_writers = 8 in
      let done_ = ref 0 in
      for w = 0 to n_writers - 1 do
        let log = Erwin_m.client cluster in
        Engine.spawn (fun () ->
            for i = 1 to 25 do
              ignore (log.append ~size:64 ~data:(Printf.sprintf "%d-%d" w i))
            done;
            incr done_)
      done;
      let wq = Waitq.create () in
      ignore (Waitq.await_timeout wq ~timeout:(Engine.ms 50) (fun () -> !done_ = n_writers));
      Engine.sleep (Engine.ms 5);
      let log = Erwin_m.client cluster in
      let tail = log.check_tail () in
      checki "all durable" (n_writers * 25) tail;
      let records = log.read ~from:0 ~len:tail in
      let seen = Hashtbl.create 256 in
      List.iter
        (fun (r : Types.record) ->
          checkb ("unique " ^ r.data) false (Hashtbl.mem seen r.data);
          Hashtbl.replace seen r.data ())
        records;
      checki "every record present" tail (Hashtbl.length seen))

let test_per_client_fifo () =
  (* A single client's appends appear in issue order (its appends are
     sequential, so this is implied by real-time ordering). *)
  with_cluster (fun cluster ->
      let log = Erwin_m.client cluster in
      for i = 1 to 40 do
        ignore (log.append ~size:64 ~data:(string_of_int i))
      done;
      Engine.sleep (Engine.ms 3);
      let records = log.read ~from:0 ~len:40 in
      let rec increasing last = function
        | [] -> true
        | (r : Types.record) :: rest ->
          let v = int_of_string r.data in
          v > last && increasing v rest
      in
      checkb "fifo per client" true (increasing 0 records))

let test_batching_stats () =
  with_cluster (fun cluster ->
      let log = Erwin_m.client cluster in
      for i = 1 to 30 do
        ignore (log.append ~size:64 ~data:(string_of_int i))
      done;
      Engine.sleep (Engine.ms 2);
      checkb "batches recorded" true (cluster.batches > 0);
      checkb "avg batch positive" true (Erwin_common.avg_batch cluster > 0.0))

let test_big_burst_backpressure () =
  (* A burst larger than the sequencing capacity must still complete, via
     backpressure, without losing records. *)
  let cfg = { Config.default with seq_capacity = 64 } in
  with_cluster ~cfg (fun cluster ->
      let n_writers = 4 in
      let done_ = ref 0 in
      for w = 0 to n_writers - 1 do
        let log = Erwin_m.client cluster in
        Engine.spawn (fun () ->
            for i = 1 to 100 do
              ignore (log.append ~size:64 ~data:(Printf.sprintf "%d-%d" w i))
            done;
            incr done_)
      done;
      let wq = Waitq.create () in
      ignore
        (Waitq.await_timeout wq ~timeout:(Engine.ms 200) (fun () ->
             !done_ = n_writers));
      checki "all writers finished" n_writers !done_;
      Engine.sleep (Engine.ms 5);
      let log = Erwin_m.client cluster in
      checki "all durable" 400 (log.check_tail ()))

let test_append_message_complexity () =
  (* Structural check of the 1 RTT claim: in a quiet cluster, one append
     costs exactly one request and one response per sequencing replica —
     2 x 3 messages — and nothing touches the shards in the critical
     path. *)
  with_cluster (fun cluster ->
      let log = Erwin_m.client cluster in
      ignore (log.append ~size:128 ~data:"warm");
      Engine.sleep (Engine.ms 2);
      (* Quiesce: nothing unordered, orderer idle. *)
      let before = Ll_net.Fabric.messages_sent cluster.fabric in
      let replica_in_before =
        List.map
          (fun r -> Ll_net.Fabric.node_messages_in (Seq_replica.node r))
          cluster.replicas
      in
      ignore (log.append ~size:128 ~data:"counted");
      let after = Ll_net.Fabric.messages_sent cluster.fabric in
      checki "exactly 6 messages (3 requests + 3 responses)" 6 (after - before);
      List.iter2
        (fun r n0 ->
          checki
            (Seq_replica.name r ^ " got exactly one request")
            (n0 + 1)
            (Ll_net.Fabric.node_messages_in (Seq_replica.node r)))
        cluster.replicas replica_in_before)

let test_corfu_append_message_complexity () =
  (* Corfu's eager binding costs 2 x (1 sequencer + k chain hops). *)
  Engine.run (fun () ->
      let corfu =
        Ll_corfu.Corfu.create
          ~config:{ Ll_corfu.Corfu.default_config with replicas_per_shard = 3 }
          ()
      in
      let log = Ll_corfu.Corfu.client corfu in
      ignore (log.append ~size:128 ~data:"warm");
      Engine.sleep (Engine.ms 1);
      let before = Ll_corfu.Corfu.messages_sent corfu in
      ignore (log.append ~size:128 ~data:"counted");
      (* 1 sequencer roundtrip + 3 serial chain roundtrips = 8 messages,
         4 RTTs — vs Erwin's single parallel RTT. *)
      checki "8 messages (4 RTTs)" 8 (Ll_corfu.Corfu.messages_sent corfu - before);
      Engine.stop ())

let test_whole_system_determinism () =
  (* Two runs with the same seed produce the identical log — the property
     every benchmark number in EXPERIMENTS.md rests on. *)
  let snapshot () =
    let result = ref ([], 0) in
    Engine.run ~seed:2024 (fun () ->
        let cluster = Erwin_m.create ~cfg:{ Config.default with nshards = 2 } () in
        let done_ = ref 0 in
        for w = 0 to 3 do
          let log = Erwin_m.client cluster in
          Engine.spawn (fun () ->
              for i = 1 to 50 do
                ignore (log.append ~size:256 ~data:(Printf.sprintf "%d.%d" w i));
                if i mod 7 = 0 then Engine.sleep (Engine.us (w * 3))
              done;
              incr done_)
        done;
        let wq = Waitq.create () in
        ignore (Waitq.await_timeout wq ~timeout:(Engine.ms 100) (fun () -> !done_ = 4));
        Engine.sleep (Engine.ms 5);
        let log = Erwin_m.client cluster in
        let tail = log.check_tail () in
        let records = log.read ~from:0 ~len:tail in
        result :=
          (List.map (fun (r : Types.record) -> r.data) records, cluster.stable_gp);
        Engine.stop ());
    !result
  in
  let a = snapshot () in
  let b = snapshot () in
  checkb "identical logs across runs" true (a = b)

let () =
  Alcotest.run "erwin-m"
    [
      ( "basics",
        [
          Alcotest.test_case "append/read roundtrip" `Quick
            test_append_read_roundtrip;
          Alcotest.test_case "1RTT append" `Quick test_append_is_1rtt;
          Alcotest.test_case "checkTail counts unordered" `Quick
            test_check_tail_counts_unordered;
          Alcotest.test_case "background ordering advances stable" `Quick
            test_background_ordering_advances_stable;
          Alcotest.test_case "fast vs slow read" `Quick test_fast_vs_slow_read;
          Alcotest.test_case "placement p mod n" `Quick
            test_records_land_on_right_shards;
          Alcotest.test_case "appendSync returns positions" `Quick
            test_append_sync_positions;
          Alcotest.test_case "trim" `Quick test_trim;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "unique positions under concurrency" `Quick
            test_concurrent_writers_unique_positions;
          Alcotest.test_case "per-client fifo" `Quick test_per_client_fifo;
          Alcotest.test_case "batching stats" `Quick test_batching_stats;
          Alcotest.test_case "backpressure burst" `Quick
            test_big_burst_backpressure;
          Alcotest.test_case "append = 1 RTT (message count)" `Quick
            test_append_message_complexity;
          Alcotest.test_case "corfu append = 4 RTTs (message count)" `Quick
            test_corfu_append_message_complexity;
          Alcotest.test_case "whole-system determinism" `Quick
            test_whole_system_determinism;
        ] );
    ]
