(* Linearizability (real-time total order) property tests, run against all
   four total-order systems — including under failure injection for the
   Erwin systems. Uses the Lin_check history recorder. *)

open Ll_sim
open Lazylog

let checkb = Alcotest.(check bool)

let wait_for ?(timeout = Engine.ms 500) pred =
  let wq = Waitq.create () in
  ignore (Waitq.await_timeout wq ~timeout pred : bool)

(* Drive [writers] concurrent clients with random think times and verify
   the final log linearizes the append history. *)
let run_system ?(writers = 6) ?(appends = 60) ?(crash = `None) ~seed
    ~make_client ~post () =
  let h = Lin_check.new_history () in
  Engine.run ~seed (fun () ->
      let rng = Rng.create ~seed in
      let done_ = ref 0 in
      for w = 0 to writers - 1 do
        let log = Lin_check.recording h (make_client ()) in
        Engine.spawn (fun () ->
            for i = 1 to appends do
              ignore
                (log.Log_api.append ~size:256
                   ~data:(Printf.sprintf "w%d-%d" w i));
              (* Random think time makes histories overlap irregularly. *)
              if Rng.bool rng ~p:0.3 then
                Engine.sleep (Engine.us (Rng.int rng 50))
            done;
            incr done_)
      done;
      (match crash with
      | `None -> ()
      | `At (t, pick) -> Engine.after t pick);
      wait_for (fun () -> !done_ = writers);
      Alcotest.(check int) "writers finished" writers !done_;
      Engine.sleep (Engine.ms 20);
      let final = Lin_check.read_final (make_client ()) in
      Lin_check.assert_linearizable ~history:h ~final;
      post ();
      Engine.stop ())

let test_erwin_m_linearizable () =
  let cluster = ref None in
  run_system ~seed:101
    ~make_client:(fun () ->
      let c =
        match !cluster with
        | Some c -> c
        | None ->
          let c =
            Erwin_m.create ~cfg:{ Config.default with Config.nshards = 2 } ()
          in
          cluster := Some c;
          c
      in
      Erwin_m.client c)
    ~post:(fun () -> cluster := None)
    ()

let test_erwin_st_linearizable () =
  let cluster = ref None in
  run_system ~seed:102
    ~make_client:(fun () ->
      let c =
        match !cluster with
        | Some c -> c
        | None ->
          let c =
            Erwin_st.create ~cfg:{ Config.default with Config.nshards = 3 } ()
          in
          cluster := Some c;
          c
      in
      Erwin_st.client c)
    ~post:(fun () -> cluster := None)
    ()

let test_erwin_m_linearizable_under_leader_crash () =
  let cluster = ref None in
  let get () =
    match !cluster with
    | Some c -> c
    | None ->
      let c = Erwin_m.create ~cfg:{ Config.default with Config.nshards = 2 } () in
      cluster := Some c;
      c
  in
  run_system ~seed:103 ~appends:120
    ~crash:
      (`At
        ( Engine.ms 1,
          fun () ->
            let c = get () in
            Erwin_common.crash_replica c (Erwin_common.leader c) ))
    ~make_client:(fun () -> Erwin_m.client (get ()))
    ~post:(fun () ->
      (match !cluster with
      | Some c -> Alcotest.(check int) "view advanced" 1 c.Erwin_common.view
      | None -> ());
      cluster := None)
    ()

let test_erwin_st_linearizable_under_follower_crash () =
  let cluster = ref None in
  let get () =
    match !cluster with
    | Some c -> c
    | None ->
      let c = Erwin_st.create ~cfg:{ Config.default with Config.nshards = 2 } () in
      cluster := Some c;
      c
  in
  run_system ~seed:104 ~appends:120
    ~crash:
      (`At
        ( Engine.ms 1,
          fun () ->
            let c = get () in
            Erwin_common.crash_replica c (List.nth c.Erwin_common.replicas 2) ))
    ~make_client:(fun () -> Erwin_st.client (get ()))
    ~post:(fun () -> cluster := None)
    ()

let test_corfu_linearizable () =
  let sys = ref None in
  run_system ~seed:105
    ~make_client:(fun () ->
      let s =
        match !sys with
        | Some s -> s
        | None ->
          let s =
            Ll_corfu.Corfu.create
              ~config:{ Ll_corfu.Corfu.default_config with nshards = 2 }
              ()
          in
          sys := Some s;
          s
      in
      Ll_corfu.Corfu.client s)
    ~post:(fun () -> sys := None)
    ()

let test_scalog_linearizable () =
  let sys = ref None in
  run_system ~seed:106 ~writers:4 ~appends:25
    ~make_client:(fun () ->
      let s =
        match !sys with
        | Some s -> s
        | None ->
          let s =
            Ll_scalog.Scalog.create
              ~config:{ Ll_scalog.Scalog.default_config with nshards = 2 }
              ()
          in
          sys := Some s;
          s
      in
      Ll_scalog.Scalog.client s)
    ~post:(fun () -> sys := None)
    ()

(* Property: for ANY crash time and victim, Erwin-m histories linearize
   and acked records survive. The crash lands anywhere in the first 4 ms
   of a concurrent workload, hitting every phase of the ordering and
   reconfiguration pipeline across cases. *)
let prop_linearizable_any_crash_time =
  QCheck.Test.make ~name:"erwin-m linearizable for any crash point" ~count:15
    QCheck.(pair (int_bound 4_000) (int_bound 2))
    (fun (crash_us, victim) ->
      let ok = ref false in
      let h = Lin_check.new_history () in
      Engine.run ~seed:(crash_us + (victim * 7919)) (fun () ->
          let cluster =
            Erwin_m.create ~cfg:{ Config.default with Config.nshards = 2 } ()
          in
          let done_ = ref 0 in
          for w = 0 to 3 do
            let log = Lin_check.recording h (Erwin_m.client cluster) in
            Engine.spawn (fun () ->
                for i = 1 to 60 do
                  ignore
                    (log.Log_api.append ~size:128
                       ~data:(Printf.sprintf "w%d-%d" w i))
                done;
                incr done_)
          done;
          Engine.after (Engine.us crash_us) (fun () ->
              Erwin_common.crash_replica cluster
                (List.nth cluster.Erwin_common.replicas victim));
          wait_for (fun () -> !done_ = 4);
          Engine.sleep (Engine.ms 25);
          let final = Lin_check.read_final (Erwin_m.client cluster) in
          ok := !done_ = 4 && Lin_check.check ~history:h ~final = None;
          Engine.stop ());
      !ok)

(* Message loss: with 3% of all packets dropped, client retries and the
   idempotent background paths must still deliver a linearizable log with
   every acked record. *)
let test_erwin_m_under_message_loss () =
  let h = Lin_check.new_history () in
  Engine.run ~seed:77 (fun () ->
      let cluster =
        Erwin_m.create ~cfg:{ Config.default with Config.nshards = 2 } ()
      in
      Ll_net.Fabric.set_drop_probability cluster.Erwin_common.fabric 0.03;
      let done_ = ref 0 in
      for w = 0 to 2 do
        let log = Lin_check.recording h (Erwin_m.client cluster) in
        Engine.spawn (fun () ->
            for i = 1 to 40 do
              ignore
                (log.Log_api.append ~size:128
                   ~data:(Printf.sprintf "w%d-%d" w i))
            done;
            incr done_)
      done;
      wait_for ~timeout:(Engine.sec 3) (fun () -> !done_ = 3);
      Alcotest.(check int) "writers finished despite loss" 3 !done_;
      (* Stop dropping so the final read is clean. *)
      Ll_net.Fabric.set_drop_probability cluster.Erwin_common.fabric 0.0;
      Engine.sleep (Engine.ms 50);
      let final = Lin_check.read_final (Erwin_m.client cluster) in
      Lin_check.assert_linearizable ~history:h ~final;
      Engine.stop ())

let test_erwin_st_under_message_loss () =
  let h = Lin_check.new_history () in
  Engine.run ~seed:78 (fun () ->
      let cluster =
        Erwin_st.create ~cfg:{ Config.default with Config.nshards = 2 } ()
      in
      Ll_net.Fabric.set_drop_probability cluster.Erwin_common.fabric 0.03;
      let done_ = ref 0 in
      for w = 0 to 2 do
        let log = Lin_check.recording h (Erwin_st.client cluster) in
        Engine.spawn (fun () ->
            for i = 1 to 30 do
              ignore
                (log.Log_api.append ~size:128
                   ~data:(Printf.sprintf "w%d-%d" w i))
            done;
            incr done_)
      done;
      wait_for ~timeout:(Engine.sec 3) (fun () -> !done_ = 3);
      Alcotest.(check int) "writers finished despite loss" 3 !done_;
      Ll_net.Fabric.set_drop_probability cluster.Erwin_common.fabric 0.0;
      Engine.sleep (Engine.ms 100);
      let final = Lin_check.read_final (Erwin_st.client cluster) in
      Lin_check.assert_linearizable ~history:h ~final;
      Engine.stop ())

(* The checker itself must catch violations. *)
let test_checker_detects_reorder () =
  Engine.run (fun () ->
      let h = Lin_check.new_history () in
      let fake_log order =
        {
          Log_api.name = "fake";
          append = (fun ~size:_ ~data:_ -> Engine.sleep 10; true);
          read = (fun ~from:_ ~len:_ -> []);
          check_tail = (fun () -> List.length order);
          trim = (fun ~upto:_ -> true);
          append_sync = None;
        }
      in
      let log = Lin_check.recording h (fake_log []) in
      ignore (log.Log_api.append ~size:1 ~data:"first");
      Engine.sleep 100;
      ignore (log.Log_api.append ~size:1 ~data:"second");
      (* A log claiming "second" precedes "first" violates real time. *)
      checkb "violation detected" true
        (Lin_check.check ~history:h ~final:[ "second"; "first" ] <> None);
      checkb "correct order accepted" true
        (Lin_check.check ~history:h ~final:[ "first"; "second" ] = None);
      checkb "missing acked detected" true
        (Lin_check.check ~history:h ~final:[ "first" ] <> None);
      checkb "duplicate detected" true
        (Lin_check.check ~history:h ~final:[ "first"; "second"; "first" ]
        <> None);
      Engine.stop ())

let () =
  Alcotest.run "linearizability"
    [
      ( "checker",
        [
          Alcotest.test_case "detects violations" `Quick
            test_checker_detects_reorder;
        ] );
      ( "systems",
        [
          Alcotest.test_case "erwin-m" `Quick test_erwin_m_linearizable;
          Alcotest.test_case "erwin-st" `Quick test_erwin_st_linearizable;
          Alcotest.test_case "corfu" `Quick test_corfu_linearizable;
          Alcotest.test_case "scalog" `Slow test_scalog_linearizable;
        ] );
      ( "under-failures",
        [
          Alcotest.test_case "erwin-m, leader crash" `Quick
            test_erwin_m_linearizable_under_leader_crash;
          Alcotest.test_case "erwin-st, follower crash" `Quick
            test_erwin_st_linearizable_under_follower_crash;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_linearizable_any_crash_time ] );
      ( "under-loss",
        [
          Alcotest.test_case "erwin-m, 3% message loss" `Quick
            test_erwin_m_under_message_loss;
          Alcotest.test_case "erwin-st, 3% message loss" `Quick
            test_erwin_st_under_message_loss;
        ] );
    ]
