(* Mini-ZooKeeper tests: znodes, sessions, expiry-based failure detection,
   and watches. *)

open Ll_sim
open Ll_control

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_znodes () =
  Engine.run (fun () ->
      let zk = Zookeeper.create () in
      checkb "create" true (Zookeeper.create_znode zk ~path:"/a" ~data:"1");
      checkb "no duplicate create" false
        (Zookeeper.create_znode zk ~path:"/a" ~data:"2");
      Alcotest.(check (option string)) "get" (Some "1")
        (Zookeeper.get_data zk ~path:"/a");
      Zookeeper.set_data zk ~path:"/a" ~data:"3";
      Alcotest.(check (option string)) "set" (Some "3")
        (Zookeeper.get_data zk ~path:"/a");
      Zookeeper.delete zk ~path:"/a";
      checkb "deleted" false (Zookeeper.exists zk ~path:"/a");
      Engine.stop ())

let test_op_latency () =
  Engine.run (fun () ->
      let zk = Zookeeper.create ~op_latency:(Engine.ms 2) () in
      let t0 = Engine.now () in
      ignore (Zookeeper.get_data zk ~path:"/x");
      checkb "ops are not free" true (Engine.now () - t0 >= Engine.ms 2);
      Engine.stop ())

let test_session_expiry_on_death () =
  Engine.run (fun () ->
      let zk =
        Zookeeper.create ~session_timeout:(Engine.ms 5)
          ~heartbeat_interval:(Engine.ms 1) ()
      in
      let alive = ref true in
      let expired = ref [] in
      Zookeeper.on_session_expired zk (fun name -> expired := name :: !expired);
      Zookeeper.start_session zk ~name:"node1" ~alive:(fun () -> !alive);
      Engine.sleep (Engine.ms 20);
      checkb "alive while heartbeating" true (Zookeeper.session_alive zk "node1");
      checki "no expiry" 0 (List.length !expired);
      let death = Engine.now () in
      alive := false;
      Engine.sleep (Engine.ms 20);
      Alcotest.(check (list string)) "expired once" [ "node1" ] !expired;
      checkb "marked dead" false (Zookeeper.session_alive zk "node1");
      ignore death;
      Engine.stop ())

let test_expiry_within_session_timeout () =
  Engine.run (fun () ->
      let timeout = Engine.ms 10 in
      let zk =
        Zookeeper.create ~session_timeout:timeout
          ~heartbeat_interval:(Engine.ms 2) ()
      in
      let alive = ref true in
      let expired_at = ref 0 in
      Zookeeper.on_session_expired zk (fun _ -> expired_at := Engine.now ());
      Zookeeper.start_session zk ~name:"n" ~alive:(fun () -> !alive);
      Engine.sleep (Engine.ms 7);
      let death = Engine.now () in
      alive := false;
      Engine.sleep (Engine.ms 30);
      let detect = !expired_at - death in
      checkb "detected after death" true (detect > 0);
      checkb "within ~session timeout + heartbeat" true
        (detect <= timeout + Engine.ms 2);
      Engine.stop ())

let test_data_watches () =
  Engine.run (fun () ->
      let zk = Zookeeper.create () in
      let seen = ref [] in
      Zookeeper.watch_data zk ~path:"/cfg" (fun d -> seen := d :: !seen);
      Zookeeper.set_data zk ~path:"/cfg" ~data:"v1";
      Zookeeper.set_data zk ~path:"/cfg" ~data:"v2";
      Alcotest.(check (list string)) "watch fired per set" [ "v2"; "v1" ] !seen;
      Engine.stop ())

let () =
  Alcotest.run "zookeeper"
    [
      ( "zookeeper",
        [
          Alcotest.test_case "znodes" `Quick test_znodes;
          Alcotest.test_case "op latency" `Quick test_op_latency;
          Alcotest.test_case "session expiry" `Quick
            test_session_expiry_on_death;
          Alcotest.test_case "detection bounded by timeout" `Quick
            test_expiry_within_session_timeout;
          Alcotest.test_case "data watches" `Quick test_data_watches;
        ] );
    ]
