(* Workload-generation tests: YCSB mixes, arrival processes, and the
   measurement runner. *)

open Ll_sim
open Ll_workload

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_ycsb_load_is_sequential_inserts () =
  let g = Ycsb.create ~keyspace:1000 ~profile:Ycsb.Load () in
  for i = 0 to 9 do
    match Ycsb.next g with
    | Ycsb.Insert k -> checki "sequential" i k
    | _ -> Alcotest.fail "load must only insert"
  done

let mix profile n =
  let g = Ycsb.create ~keyspace:1000 ~profile () in
  let w = ref 0 and r = ref 0 in
  for _ = 1 to n do
    match Ycsb.next g with
    | Ycsb.Insert _ | Ycsb.Update _ | Ycsb.Read_modify_write _ -> incr w
    | Ycsb.Read _ -> incr r
  done;
  (!w, !r)

let test_ycsb_a_mix () =
  let w, r = mix Ycsb.A 10_000 in
  checkb "about 50/50" true (abs (w - r) < 600)

let test_ycsb_b_mix () =
  let w, _ = mix Ycsb.B 10_000 in
  checkb "about 5% writes" true (w > 300 && w < 700)

let test_ycsb_c_read_only () =
  let w, r = mix Ycsb.C 2_000 in
  checkb "no writes" true (w = 0 && r = 2_000)

let test_ycsb_d_read_latest () =
  (* 5% inserts; reads target recent keys. *)
  let g = Ycsb.create ~keyspace:1000 ~profile:Ycsb.D () in
  let inserts = ref 0 and recent = ref 0 and reads = ref 0 in
  let frontier = ref 0 in
  for _ = 1 to 10_000 do
    match Ycsb.next g with
    | Ycsb.Insert _ -> incr inserts; incr frontier
    | Ycsb.Read k ->
      incr reads;
      checkb "reads below frontier" true (k < max 1 !frontier);
      if !frontier - k <= 32 then incr recent
    | Ycsb.Update _ | Ycsb.Read_modify_write _ -> Alcotest.fail "unexpected op"
  done;
  checkb "about 5% inserts" true (!inserts > 300 && !inserts < 700);
  checkb "reads skew recent" true
    (float_of_int !recent /. float_of_int !reads > 0.7)

let test_ycsb_f_mix () =
  let g = Ycsb.create ~keyspace:1000 ~profile:Ycsb.F () in
  let rmw = ref 0 and rd = ref 0 in
  for _ = 1 to 10_000 do
    match Ycsb.next g with
    | Ycsb.Read_modify_write _ -> incr rmw
    | Ycsb.Read _ -> incr rd
    | Ycsb.Insert _ | Ycsb.Update _ -> Alcotest.fail "unexpected op"
  done;
  checkb "about 50/50" true (abs (!rmw - !rd) < 600)

let test_ycsb_keys_in_range () =
  let g = Ycsb.create ~keyspace:50 ~profile:Ycsb.A () in
  for _ = 1 to 1000 do
    match Ycsb.next g with
    | Ycsb.Update k | Ycsb.Read k | Ycsb.Read_modify_write k ->
      checkb "range" true (k >= 0 && k < 50)
    | Ycsb.Insert _ -> ()
  done

let test_open_loop_rate () =
  Engine.run (fun () ->
      let count = ref 0 in
      Arrival.open_loop ~rate:100_000. ~until:(Engine.ms 100) (fun _ -> incr count);
      Engine.sleep (Engine.ms 120);
      (* 100K/s for 100ms = ~10000 ops, Poisson noise ~ +/-3% *)
      checkb "rate honored" true (!count > 9_000 && !count < 11_000);
      Engine.stop ())

let test_open_loop_nonblocking () =
  (* Slow ops must not slow the arrival process (open loop). *)
  Engine.run (fun () ->
      let count = ref 0 in
      Arrival.open_loop ~rate:10_000. ~until:(Engine.ms 50) (fun _ ->
          incr count;
          Engine.sleep (Engine.ms 100));
      Engine.sleep (Engine.ms 60);
      checkb "arrivals kept flowing" true (!count > 400);
      Engine.stop ())

let test_closed_loop () =
  Engine.run (fun () ->
      let per_client = Hashtbl.create 4 in
      Arrival.closed_loop ~clients:3 ~until:(Engine.ms 1) (fun ~client _ ->
          Engine.sleep (Engine.us 100);
          let c = try Hashtbl.find per_client client with Not_found -> 0 in
          Hashtbl.replace per_client client (c + 1));
      Engine.sleep (Engine.ms 2);
      checki "3 clients ran" 3 (Hashtbl.length per_client);
      Hashtbl.iter
        (fun _ n -> checkb "about 10 ops each" true (n >= 9 && n <= 11))
        per_client;
      Engine.stop ())

let test_runner_append_workload () =
  let run =
    Runner.in_sim (fun () ->
        let cluster = Lazylog.Erwin_m.create () in
        Runner.append_workload
          ~log_factory:(fun () -> Lazylog.Erwin_m.client cluster)
          ~warmup:(Engine.ms 5) ~size:512 ~rate:20_000.
          ~duration:(Engine.ms 50) ())
  in
  checkb "achieved close to offered" true
    (run.Runner.achieved > 17_000. && run.Runner.achieved < 23_000.);
  let mean, p50, p99 = Runner.percentiles run.Runner.latency in
  checkb "latency sane" true (mean > 1.0 && mean < 100.0);
  checkb "p50 <= p99" true (p50 <= p99)

let test_in_sim_returns_value () =
  checki "value" 42 (Runner.in_sim (fun () -> Engine.sleep 5; 42))

let () =
  Alcotest.run "workload"
    [
      ( "ycsb",
        [
          Alcotest.test_case "load sequential" `Quick
            test_ycsb_load_is_sequential_inserts;
          Alcotest.test_case "A mix" `Quick test_ycsb_a_mix;
          Alcotest.test_case "B mix" `Quick test_ycsb_b_mix;
          Alcotest.test_case "C read-only" `Quick test_ycsb_c_read_only;
          Alcotest.test_case "D read-latest" `Quick test_ycsb_d_read_latest;
          Alcotest.test_case "F rmw mix" `Quick test_ycsb_f_mix;
          Alcotest.test_case "key range" `Quick test_ycsb_keys_in_range;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "open-loop rate" `Quick test_open_loop_rate;
          Alcotest.test_case "open-loop nonblocking" `Quick
            test_open_loop_nonblocking;
          Alcotest.test_case "closed loop" `Quick test_closed_loop;
        ] );
      ( "runner",
        [
          Alcotest.test_case "in_sim" `Quick test_in_sim_returns_value;
          Alcotest.test_case "append workload" `Slow
            test_runner_append_workload;
        ] );
    ]
