(* End-application tests (paper section 6.11): the decoupled KV store, the
   audit-logged transaction processor, the journaled word count, and the
   SMR example. *)

open Ll_sim
open Lazylog
open Ll_apps

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let with_erwin f =
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      f (fun () -> Erwin_m.client cluster);
      Engine.stop ())

(* --- KV store --- *)

let test_kv_put_get_converges () =
  with_erwin (fun client ->
      let kv = Kv_store.create ~log:(client ()) ~reader_log:(client ()) () in
      Kv_store.put kv ~key:"k1" ~value:"v1";
      Kv_store.put kv ~key:"k2" ~value:"v2";
      Kv_store.put kv ~key:"k1" ~value:"v1b";
      (* Eventually consistent: give the read server a moment. *)
      Engine.sleep (Engine.ms 5);
      Alcotest.(check (option string)) "k1 latest" (Some "v1b")
        (Kv_store.get kv ~key:"k1");
      Alcotest.(check (option string)) "k2" (Some "v2")
        (Kv_store.get kv ~key:"k2");
      Alcotest.(check (option string)) "missing" None
        (Kv_store.get kv ~key:"nope");
      checki "reader caught up" 0 (Kv_store.lag kv))

let test_kv_reader_applies_in_order () =
  with_erwin (fun client ->
      let kv = Kv_store.create ~log:(client ()) ~reader_log:(client ()) () in
      for i = 1 to 50 do
        Kv_store.put kv ~key:"x" ~value:(string_of_int i)
      done;
      Engine.sleep (Engine.ms 10);
      Alcotest.(check (option string)) "last write wins" (Some "50")
        (Kv_store.get kv ~key:"x");
      checki "applied all" 50 (Kv_store.applied kv))

let test_kv_eventual_consistency_window () =
  with_erwin (fun client ->
      let kv =
        Kv_store.create ~log:(client ()) ~reader_log:(client ())
          ~poll_interval:(Engine.ms 2) ()
      in
      Kv_store.put kv ~key:"a" ~value:"1";
      (* Immediately after the put the reader may not have applied it:
         that is the decoupled design (reads are eventually consistent). *)
      let early = Kv_store.get kv ~key:"a" in
      Engine.sleep (Engine.ms 10);
      Alcotest.(check (option string)) "eventually present" (Some "1")
        (Kv_store.get kv ~key:"a");
      (* both outcomes of the early read are legal; just record it *)
      ignore early)

let test_kv_compaction_and_recovery () =
  with_erwin (fun client ->
      let kv = Kv_store.create ~log:(client ()) ~reader_log:(client ()) () in
      for i = 1 to 30 do
        Kv_store.put kv ~key:("k" ^ string_of_int (i mod 5))
          ~value:("v" ^ string_of_int i)
      done;
      Engine.sleep (Engine.ms 5);
      let tail_before = (client ()).Log_api.check_tail () in
      Kv_store.compact kv;
      Engine.sleep (Engine.ms 5);
      (* The log prefix is gone, yet reads still serve all keys. *)
      Alcotest.(check (option string)) "k4 after compaction" (Some "v29")
        (Kv_store.get kv ~key:"k4");
      let reader = client () in
      let suffix = reader.Log_api.read ~from:0 ~len:(reader.Log_api.check_tail ()) in
      checkb "prefix trimmed" true (List.length suffix < tail_before);
      (* Updates after compaction land on top. *)
      Kv_store.put kv ~key:"k1" ~value:"post";
      Engine.sleep (Engine.ms 5);
      (* A recovering reader reconstructs from checkpoint + suffix. *)
      let kv2 = Kv_store.recover ~log:(client ()) () in
      Alcotest.(check (option string)) "recovered k4" (Some "v29")
        (Kv_store.get kv2 ~key:"k4");
      Alcotest.(check (option string)) "recovered post-compaction update"
        (Some "post")
        (Kv_store.get kv2 ~key:"k1"))

(* --- Log aggregation --- *)

let test_log_aggregation_balances () =
  with_erwin (fun client ->
      let srv = Log_aggregation.create ~log:(client ()) () in
      ignore (Log_aggregation.execute srv (Create { account = 1 }));
      ignore (Log_aggregation.execute srv (Create { account = 2 }));
      ignore (Log_aggregation.execute srv (Deposit { account = 1; amount = 100 }));
      ignore
        (Log_aggregation.execute srv (Transfer { src = 1; dst = 2; amount = 30 }));
      ignore (Log_aggregation.execute srv (Withdraw { account = 2; amount = 10 }));
      checki "balance 1" 70
        (Log_aggregation.execute srv (Balance { account = 1 }));
      checki "balance 2" 20
        (Log_aggregation.execute srv (Balance { account = 2 }));
      checki "audit trail complete" 7 (Log_aggregation.audit_records srv))

let test_log_aggregation_audit_is_synchronous () =
  with_erwin (fun client ->
      let log = client () in
      let srv = Log_aggregation.create ~log () in
      ignore (Log_aggregation.execute srv (Create { account = 1 }));
      (* The audit record is durable when execute returns. *)
      checki "audit durable" 1 (log.check_tail ()))

let test_txn_classification () =
  checkb "create is write" true (Log_aggregation.is_write (Create { account = 1 }));
  checkb "balance is read" false
    (Log_aggregation.is_write (Balance { account = 1 }))

(* --- Word count --- *)

let test_wordcount_counts () =
  with_erwin (fun client ->
      let wc = Wordcount.create ~log:(client ()) ~batch:4 () in
      let inputs =
        [ "a"; "b"; "a"; "c"; "a"; "b"; "a"; "c"; "b"; "b"; "a"; "a" ]
      in
      let emitted = ref 0 in
      let lat = Wordcount.run wc ~inputs (fun _ -> incr emitted) in
      checki "all emitted" 12 !emitted;
      checki "latency samples" 12 (Ll_sim.Stats.Reservoir.count lat);
      Alcotest.(check (list (pair string int)))
        "counts"
        [ ("a", 6); ("b", 4); ("c", 2) ]
        (Wordcount.counts wc))

let test_wordcount_checkpoint_before_emit () =
  with_erwin (fun client ->
      let log = client () in
      let wc = Wordcount.create ~log ~workers:1 ~batch:3 () in
      let tail_at_emit = ref (-1) in
      ignore
        (Wordcount.run wc ~inputs:[ "x"; "y"; "z" ] (fun _ ->
             if !tail_at_emit < 0 then tail_at_emit := log.check_tail ()));
      checkb "checkpoint durable before emit" true (!tail_at_emit >= 1))

let test_wordcount_recovery () =
  with_erwin (fun client ->
      let wc = Wordcount.create ~log:(client ()) ~batch:2 () in
      let inputs = [ "a"; "b"; "a"; "b"; "c"; "a" ] in
      ignore (Wordcount.run wc ~inputs (fun _ -> ()));
      Engine.sleep (Engine.ms 5);
      (* Fail over: a fresh instance reloads state from the journal. *)
      let wc2 = Wordcount.create ~log:(client ()) ~batch:2 () in
      let replayed = Wordcount.recover wc2 ~from_log:(client ()) in
      checkb "replayed checkpoints" true (replayed > 0);
      Alcotest.(check (list (pair string int)))
        "state reconstructed"
        (Wordcount.counts wc) (Wordcount.counts wc2))

(* --- SMR --- *)

let test_smr_applies_all_in_order () =
  with_erwin (fun client ->
      let applied = ref [] in
      let smr = Smr.create ~log:(client ()) ~apply:(fun c -> applied := c :: !applied) in
      for i = 1 to 20 do
        ignore (Smr.submit smr (string_of_int i))
      done;
      checki "cursor at tail" 20 (Smr.applied smr);
      Alcotest.(check (list string))
        "applied in order"
        (List.init 20 (fun i -> string_of_int (i + 1)))
        (List.rev !applied))

let test_smr_two_replicas_agree () =
  with_erwin (fun client ->
      let log_a = client () and log_b = client () in
      let a = ref [] and b = ref [] in
      let smr_a = Smr.create ~log:log_a ~apply:(fun c -> a := c :: !a) in
      let smr_b = Smr.create ~log:log_b ~apply:(fun c -> b := c :: !b) in
      let done_ = ref 0 in
      Engine.spawn (fun () ->
          for i = 1 to 15 do
            ignore (Smr.submit smr_a ("a" ^ string_of_int i))
          done;
          incr done_);
      Engine.spawn (fun () ->
          for i = 1 to 15 do
            ignore (Smr.submit smr_b ("b" ^ string_of_int i))
          done;
          incr done_);
      let wq = Waitq.create () in
      ignore (Waitq.await_timeout wq ~timeout:(Engine.ms 100) (fun () -> !done_ = 2));
      (* Catch both up to the same tail. *)
      ignore (Smr.submit smr_a "fin-a");
      ignore (Smr.submit smr_b "fin-b");
      ignore (Smr.submit smr_a "sync");
      ignore (Smr.submit smr_b "sync2");
      let common = min (List.length !a) (List.length !b) in
      let prefix l = List.filteri (fun i _ -> i < common) (List.rev l) in
      Alcotest.(check (list string))
        "replicas applied identical prefixes" (prefix !a) (prefix !b))

let () =
  Alcotest.run "apps"
    [
      ( "kv-store",
        [
          Alcotest.test_case "put/get converges" `Quick
            test_kv_put_get_converges;
          Alcotest.test_case "in-order application" `Quick
            test_kv_reader_applies_in_order;
          Alcotest.test_case "eventual consistency window" `Quick
            test_kv_eventual_consistency_window;
          Alcotest.test_case "compaction and recovery" `Quick
            test_kv_compaction_and_recovery;
        ] );
      ( "log-aggregation",
        [
          Alcotest.test_case "balances correct" `Quick
            test_log_aggregation_balances;
          Alcotest.test_case "audit synchronous" `Quick
            test_log_aggregation_audit_is_synchronous;
          Alcotest.test_case "txn classification" `Quick
            test_txn_classification;
        ] );
      ( "wordcount",
        [
          Alcotest.test_case "counts" `Quick test_wordcount_counts;
          Alcotest.test_case "checkpoint before emit" `Quick
            test_wordcount_checkpoint_before_emit;
          Alcotest.test_case "journal recovery" `Quick test_wordcount_recovery;
        ] );
      ( "smr",
        [
          Alcotest.test_case "applies in order" `Quick
            test_smr_applies_all_in_order;
          Alcotest.test_case "replicas agree" `Quick test_smr_two_replicas_agree;
        ] );
    ]
