(* Shared test harness: history recording and the real-time-order check
   that defines the shared logs' linearizability guarantee ("if a record
   append B starts in real time after another record append A completes,
   then B is guaranteed to be ordered after A"). *)

open Ll_sim
open Lazylog

type event = {
  data : string;
  invoked : Engine.time;
  mutable acked : Engine.time option;
}

type history = { mutable events : event list }

let new_history () = { events = [] }

(* Wrap a log client so appends are recorded into the history. *)
let recording h (log : Log_api.t) =
  {
    log with
    Log_api.append =
      (fun ~size ~data ->
        let ev = { data; invoked = Engine.now (); acked = None } in
        h.events <- ev :: h.events;
        let ok = log.Log_api.append ~size ~data in
        if ok then ev.acked <- Some (Engine.now ());
        ok);
  }

let acked_events h = List.filter (fun e -> e.acked <> None) h.events

(* [check ~history ~final] verifies against the final log contents
   (position-ordered record data):
   1. every acked append appears exactly once;
   2. real-time order is respected: ack(a) < invoke(b) => pos(a) < pos(b).
   Returns an error description, or None if the history linearizes. *)
let check ~history ~final =
  let pos : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let dup = ref None in
  List.iteri
    (fun i data ->
      if Hashtbl.mem pos data then dup := Some data;
      Hashtbl.replace pos data i)
    final;
  match !dup with
  | Some d -> Some (Printf.sprintf "duplicate record %S in the log" d)
  | None -> (
    let acked = acked_events history in
    match
      List.find_opt (fun e -> not (Hashtbl.mem pos e.data)) acked
    with
    | Some e -> Some (Printf.sprintf "acked record %S missing" e.data)
    | None ->
      let err = ref None in
      List.iter
        (fun a ->
          match (a.acked, !err) with
          | Some a_ack, None ->
            List.iter
              (fun b ->
                if b.invoked > a_ack && !err = None then begin
                  let pa = Hashtbl.find pos a.data in
                  let pb = Hashtbl.find pos b.data in
                  if pb < pa then
                    err :=
                      Some
                        (Printf.sprintf
                           "real-time order violated: %S (acked %d) before \
                            %S (invoked %d) but positions %d >= %d"
                           a.data a_ack b.data b.invoked pa pb)
                end)
              acked
          | _ -> ())
        acked;
      !err)

let read_final (log : Log_api.t) =
  let tail = log.Log_api.check_tail () in
  log.Log_api.read ~from:0 ~len:tail
  |> List.filter (fun r -> not (Types.is_no_op r))
  |> List.map (fun (r : Types.record) -> r.Types.data)

(* Convenience: alcotest assertion. *)
let assert_linearizable ~history ~final =
  match check ~history ~final with
  | None -> ()
  | Some err -> Alcotest.fail err
