(* Tests for the Paxos ensemble used by Scalog's ordering layer. *)

open Ll_sim
open Ll_repl

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_propose_sequence () =
  Engine.run (fun () ->
      let commits = ref [] in
      let p =
        Paxos.create ~on_commit:(fun slot cmd -> commits := (slot, cmd) :: !commits) ()
      in
      checki "slot 0" 0 (Paxos.propose p "a");
      checki "slot 1" 1 (Paxos.propose p "b");
      checki "slot 2" 2 (Paxos.propose p "c");
      Alcotest.(check (list (pair int string)))
        "commits in slot order"
        [ (0, "a"); (1, "b"); (2, "c") ]
        (List.rev !commits);
      Engine.stop ())

let test_chosen_lookup () =
  Engine.run (fun () ->
      let p = Paxos.create () in
      ignore (Paxos.propose p 41);
      ignore (Paxos.propose p 42);
      checkb "chosen" true (Paxos.chosen p 1 = Some 42);
      checkb "unchosen" true (Paxos.chosen p 9 = None);
      Engine.stop ())

let test_majority_survives_one_crash () =
  Engine.run (fun () ->
      let p = Paxos.create ~acceptors:3 () in
      ignore (Paxos.propose p "before");
      Paxos.crash_acceptor p 2;
      (* Still a majority of 2/3. *)
      checki "progress with 2/3" 1 (Paxos.propose p "after");
      Alcotest.(check (list (pair int string)))
        "log"
        [ (0, "before"); (1, "after") ]
        (Paxos.committed p);
      Engine.stop ())

let test_no_progress_without_majority () =
  Engine.run (fun () ->
      let p = Paxos.create ~acceptors:3 () in
      Paxos.crash_acceptor p 1;
      Paxos.crash_acceptor p 2;
      let decided = ref false in
      Engine.spawn (fun () ->
          ignore (Paxos.propose p "stuck");
          decided := true);
      Engine.sleep (Engine.ms 50);
      checkb "blocked without majority" false !decided;
      Engine.stop ())

let test_leader_recovery_represents_accepted () =
  (* A new proposer must learn and re-commit values accepted under an old
     ballot (the prepare phase). We simulate by poking a value through a
     first leadership, then forcing re-election. *)
  Engine.run (fun () ->
      let commits = ref [] in
      let p =
        Paxos.create ~on_commit:(fun slot cmd -> commits := (slot, cmd) :: !commits) ()
      in
      Paxos.become_leader p;
      ignore (Paxos.propose p "x");
      (* A second become_leader must be harmless (idempotent). *)
      Paxos.become_leader p;
      ignore (Paxos.propose p "y");
      Alcotest.(check (list (pair int string)))
        "all committed once"
        [ (0, "x"); (1, "y") ]
        (List.rev !commits);
      Engine.stop ())

let test_throughput_many_slots () =
  Engine.run (fun () ->
      let p = Paxos.create () in
      for i = 0 to 99 do
        checki "slot" i (Paxos.propose p i)
      done;
      checki "committed count" 100 (List.length (Paxos.committed p));
      Engine.stop ())

(* Property: whatever single acceptor crashes at whatever point in a run
   of proposals, every slot is decided exactly once and the committed log
   is a dense prefix in slot order. *)
let prop_agreement_under_crash =
  QCheck.Test.make ~name:"paxos agreement with a crash at any point" ~count:40
    QCheck.(pair (int_bound 2) (int_bound 19))
    (fun (victim, crash_after) ->
      let ok = ref true in
      Engine.run ~seed:(victim + (crash_after * 31)) (fun () ->
          let commits = ref [] in
          let p =
            Paxos.create ~acceptors:3
              ~on_commit:(fun slot cmd -> commits := (slot, cmd) :: !commits)
              ()
          in
          for i = 0 to 19 do
            if i = crash_after then Paxos.crash_acceptor p victim;
            let slot = Paxos.propose p i in
            if slot <> i then ok := false
          done;
          let log = List.sort compare !commits in
          if log <> List.init 20 (fun i -> (i, i)) then ok := false;
          Engine.stop ());
      !ok)

let () =
  Alcotest.run "paxos"
    [
      ( "paxos",
        [
          Alcotest.test_case "propose sequence" `Quick test_propose_sequence;
          Alcotest.test_case "chosen lookup" `Quick test_chosen_lookup;
          Alcotest.test_case "majority survives crash" `Quick
            test_majority_survives_one_crash;
          Alcotest.test_case "no majority, no progress" `Quick
            test_no_progress_without_majority;
          Alcotest.test_case "leadership idempotent" `Quick
            test_leader_recovery_represents_accepted;
          Alcotest.test_case "100 slots" `Quick test_throughput_many_slots;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_agreement_under_crash ]
      );
    ]
