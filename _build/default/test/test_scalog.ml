(* Scalog baseline tests: ack-after-cut semantics, global order across
   shards, position resolution, reads, trim, and the latency floor from
   eager ordering. *)

open Ll_sim
open Ll_scalog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let small_config =
  (* Faster endpoints for functional tests (latency shape is benched
     separately). *)
  { Scalog.default_config with rpc_overhead = Engine.us 2 }

let test_append_read () =
  Engine.run (fun () ->
      let s = Scalog.create ~config:small_config () in
      let log = Scalog.client s in
      for i = 1 to 20 do
        checkb "acked" true (log.append ~size:256 ~data:(string_of_int i))
      done;
      checki "tail" 20 (log.check_tail ());
      let records = log.read ~from:0 ~len:20 in
      checki "all" 20 (List.length records);
      List.iteri
        (fun i (r : Lazylog.Types.record) ->
          Alcotest.(check string) "order" (string_of_int (i + 1)) r.data)
        records;
      checkb "cuts were committed via paxos" true (Scalog.committed_cuts s > 0);
      Engine.stop ())

let test_ack_waits_for_cut () =
  Engine.run (fun () ->
      let config = { small_config with interleaving_interval = Engine.ms 2 } in
      let s = Scalog.create ~config () in
      let log = Scalog.client s in
      let t0 = Engine.now () in
      ignore (log.append ~size:256 ~data:"x");
      (* The append cannot complete before an interleaving tick + paxos. *)
      checkb "waited for the cut" true (Engine.now () - t0 >= Engine.ms 1);
      Engine.stop ())

let test_multi_shard_total_order () =
  Engine.run (fun () ->
      let config = { small_config with nshards = 3 } in
      let s = Scalog.create ~config () in
      let done_ = ref 0 in
      for w = 0 to 2 do
        let log = Scalog.client s in
        Engine.spawn (fun () ->
            for i = 1 to 20 do
              ignore (log.append ~size:128 ~data:(Printf.sprintf "%d-%d" w i))
            done;
            incr done_)
      done;
      let wq = Waitq.create () in
      ignore (Waitq.await_timeout wq ~timeout:(Engine.ms 500) (fun () -> !done_ = 3));
      checki "writers done" 3 !done_;
      let log = Scalog.client s in
      let tail = log.check_tail () in
      checki "all ordered" 60 tail;
      let records = log.read ~from:0 ~len:tail in
      checki "all readable" 60 (List.length records);
      (* Positions are dense and unique. *)
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (r : Lazylog.Types.record) ->
          checkb "unique" false (Hashtbl.mem seen r.data);
          Hashtbl.replace seen r.data ())
        records;
      Engine.stop ())

let test_per_client_order_preserved () =
  (* FIFO replication + cut ordering preserves each client's sequence. *)
  Engine.run (fun () ->
      let s = Scalog.create ~config:small_config () in
      let log = Scalog.client s in
      for i = 1 to 30 do
        ignore (log.append ~size:64 ~data:(string_of_int i))
      done;
      let records = log.read ~from:0 ~len:30 in
      let rec increasing last = function
        | [] -> true
        | (r : Lazylog.Types.record) :: rest ->
          let v = int_of_string r.data in
          v > last && increasing v rest
      in
      checkb "fifo" true (increasing 0 records);
      Engine.stop ())

let test_trim () =
  Engine.run (fun () ->
      let s = Scalog.create ~config:small_config () in
      let log = Scalog.client s in
      for i = 1 to 10 do
        ignore (log.append ~size:64 ~data:(string_of_int i))
      done;
      checkb "trim ok" true (log.trim ~upto:5);
      let records = log.read ~from:5 ~len:5 in
      checki "suffix" 5 (List.length records);
      Engine.stop ())

let test_isolation_probe_parity () =
  (* Section 6.1's "comparable performance regime": the lone Scalog shard
     sustains a disk-bound rate in the same ballpark as the Erwin shard. *)
  let _, tput = Scalog.shard_in_isolation_probe ~rate:30_000. ~seconds:0.1 ~size:4096 () in
  checkb "disk-bound throughput ~30K" true (tput > 20_000. && tput < 40_000.)

let () =
  Alcotest.run "scalog"
    [
      ( "scalog",
        [
          Alcotest.test_case "append/read" `Quick test_append_read;
          Alcotest.test_case "ack waits for cut" `Quick test_ack_waits_for_cut;
          Alcotest.test_case "multi-shard total order" `Quick
            test_multi_shard_total_order;
          Alcotest.test_case "per-client order" `Quick
            test_per_client_order_preserved;
          Alcotest.test_case "trim" `Quick test_trim;
          Alcotest.test_case "shard isolation parity" `Slow
            test_isolation_probe_parity;
        ] );
    ]
