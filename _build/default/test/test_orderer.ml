(* Tests of the background orderer: batching bounds, the
   stable-only-after-all-replicas-GC invariant, quiescence during
   reconfiguration, and straggler tolerance of the RDMA GC path. *)

open Ll_sim
open Ll_net
open Lazylog

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let with_m_cluster ?(cfg = Config.default) f =
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg () in
      f cluster;
      Engine.stop ())

let fill cluster n =
  let log = Erwin_m.client cluster in
  for i = 1 to n do
    ignore (log.Log_api.append ~size:128 ~data:(string_of_int i))
  done;
  log

let test_max_batch_respected () =
  let cfg = { Config.default with max_batch = 8; order_interval = Engine.ms 100 } in
  with_m_cluster ~cfg (fun cluster ->
      ignore (fill cluster 20);
      (* Force exactly one pass by waiting just past one interval. *)
      Engine.sleep (Engine.ms 101);
      checkb "first pass bounded by max_batch" true (cluster.stable_gp <= 8);
      checkb "a pass happened" true (cluster.stable_gp > 0))

let test_stable_requires_all_replicas () =
  (* If a follower cannot GC (partitioned... here: crashed without the
     controller noticing yet), stable-gp must not advance. *)
  Engine.run (fun () ->
      let cfg = { Config.default with order_interval = Engine.ms 500 } in
      (* No controller: create the raw cluster and start only the orderer,
         so the crash is never repaired and the invariant is observable. *)
      let cluster = Erwin_common.create ~cfg ~mode:Erwin_common.M in
      Orderer.start cluster;
      let log = Erwin_m.client cluster in
      Engine.spawn (fun () ->
          for i = 1 to 5 do
            ignore (log.Log_api.append ~size:128 ~data:(string_of_int i))
          done);
      Engine.sleep (Engine.ms 2);
      (* Crash a follower before the first ordering pass fires. *)
      Ll_net.Fabric.crash cluster.fabric
        (Seq_replica.node (List.nth cluster.replicas 2));
      Engine.sleep (Engine.ms 600);
      checki "stable frozen without full GC" 0 cluster.stable_gp;
      (* The records are still on the shards' doorstep, just not exposed:
         leader already pushed, but no read may see them. *)
      Engine.stop ())

let test_orderer_quiesces_during_reconfig () =
  with_m_cluster (fun cluster ->
      ignore (fill cluster 10);
      Engine.sleep (Engine.ms 2);
      let stable0 = cluster.stable_gp in
      cluster.reconfiguring <- true;
      let log = Erwin_m.client cluster in
      for i = 1 to 10 do
        ignore (log.Log_api.append ~size:128 ~data:("x" ^ string_of_int i))
      done;
      Engine.sleep (Engine.ms 2);
      checki "no ordering while reconfiguring" stable0 cluster.stable_gp;
      cluster.reconfiguring <- false;
      Engine.sleep (Engine.ms 2);
      checki "resumes afterwards" (stable0 + 10) cluster.stable_gp)

let test_batch_grows_with_backlog () =
  let cfg = { Config.default with order_interval = Engine.ms 1 } in
  with_m_cluster ~cfg (fun cluster ->
      (* Writers outpace the 1ms ordering interval: batches >1. *)
      let done_ = ref 0 in
      for w = 0 to 3 do
        Engine.spawn (fun () ->
            let log = Erwin_m.client cluster in
            for i = 1 to 100 do
              ignore (log.Log_api.append ~size:128 ~data:(Printf.sprintf "%d-%d" w i))
            done;
            incr done_)
      done;
      let wq = Waitq.create () in
      ignore (Waitq.await_timeout wq ~timeout:(Engine.ms 100) (fun () -> !done_ = 4));
      Engine.sleep (Engine.ms 5);
      checkb "multi-record batches" true (Erwin_common.avg_batch cluster > 1.5);
      checki "all ordered" 400 cluster.stable_gp)

let test_gc_tolerates_straggler_follower () =
  (* A slow (not dead) follower delays GC acks; the orderer retries until
     they land, and stable-gp still advances — slower, but safely. *)
  with_m_cluster (fun cluster ->
      let straggler = List.nth cluster.replicas 2 in
      Fabric.set_extra_delay (Seq_replica.node straggler) (Engine.ms 2);
      ignore (fill cluster 10);
      Engine.sleep (Engine.ms 30);
      checki "eventually stable" 10 cluster.stable_gp)

let test_order_preserves_leader_log_order () =
  with_m_cluster (fun cluster ->
      let log = fill cluster 30 in
      Engine.sleep (Engine.ms 3);
      let records = log.Log_api.read ~from:0 ~len:30 in
      Alcotest.(check (list string))
        "positions follow the leader's log order"
        (List.init 30 (fun i -> string_of_int (i + 1)))
        (List.map (fun (r : Types.record) -> r.Types.data) records))

let () =
  Alcotest.run "orderer"
    [
      ( "orderer",
        [
          Alcotest.test_case "max_batch respected" `Quick
            test_max_batch_respected;
          Alcotest.test_case "stable requires all replicas" `Quick
            test_stable_requires_all_replicas;
          Alcotest.test_case "quiesces during reconfig" `Quick
            test_orderer_quiesces_during_reconfig;
          Alcotest.test_case "batch grows with backlog" `Quick
            test_batch_grows_with_backlog;
          Alcotest.test_case "tolerates straggler follower" `Quick
            test_gc_tolerates_straggler_follower;
          Alcotest.test_case "leader log order preserved" `Quick
            test_order_preserves_leader_log_order;
        ] );
    ]
