(* Kafka substrate tests: produce/fetch, producer batching, replication,
   truncation (the Erwin-m black-box hook), and Erwin-m over Kafka. *)

open Ll_sim
open Ll_kafka

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let record i =
  Lazylog.Types.record
    ~rid:{ Lazylog.Types.Rid.client = 0; seq = i }
    ~size:256
    ~data:(string_of_int i) ()

let test_produce_fetch () =
  Engine.run (fun () ->
      let k = Kafka.create () in
      let base = Kafka.produce_batch k ~partition:0 [ record 1; record 2 ] in
      checki "base offset" 0 base;
      let base2 = Kafka.produce_batch k ~partition:0 [ record 3 ] in
      checki "next offset" 2 base2;
      let records = Kafka.fetch k ~partition:0 ~offset:0 ~max:10 in
      checki "fetched" 3 (List.length records);
      checki "tail" 3 (Kafka.partition_tail k ~partition:0);
      Engine.stop ())

let test_producer_linger_batches () =
  Engine.run (fun () ->
      let config = { Kafka.default_config with linger = Engine.ms 2 } in
      let k = Kafka.create ~config () in
      let p = Kafka.producer k ~partition:0 in
      let acked = ref 0 in
      for i = 1 to 5 do
        Engine.spawn (fun () ->
            Kafka.Producer.append p (record i);
            incr acked)
      done;
      Engine.sleep (Engine.ms 1);
      checki "held by linger" 0 !acked;
      Engine.sleep (Engine.ms 10);
      checki "all acked after linger" 5 !acked;
      checki "one batch at broker" 5 (Kafka.partition_tail k ~partition:0);
      Engine.stop ())

let test_producer_max_batch_flushes () =
  Engine.run (fun () ->
      let config = { Kafka.default_config with max_batch = 3; linger = Engine.sec 1 } in
      let k = Kafka.create ~config () in
      let p = Kafka.producer k ~partition:0 in
      let acked = ref 0 in
      for i = 1 to 3 do
        Engine.spawn (fun () ->
            Kafka.Producer.append p (record i);
            incr acked)
      done;
      Engine.sleep (Engine.ms 5);
      checki "size-triggered flush" 3 !acked;
      Engine.stop ())

let test_truncate () =
  Engine.run (fun () ->
      let k = Kafka.create () in
      ignore (Kafka.produce_batch k ~partition:0 [ record 1; record 2; record 3 ]);
      Kafka.truncate_partition k ~partition:0 1;
      checki "tail lowered" 1 (Kafka.partition_tail k ~partition:0);
      ignore (Kafka.produce_batch k ~partition:0 [ record 9 ]);
      let records = Kafka.fetch k ~partition:0 ~offset:0 ~max:10 in
      checki "two records" 2 (List.length records);
      Engine.stop ())

let test_client_log_roundtrip () =
  Engine.run (fun () ->
      let config = { Kafka.default_config with linger = Engine.us 200 } in
      let k = Kafka.create ~config () in
      let log = Kafka.client_log k in
      for i = 1 to 10 do
        checkb "acked" true (log.append ~size:128 ~data:(string_of_int i))
      done;
      checki "tail" 10 (log.check_tail ());
      let records = log.read ~from:0 ~len:10 in
      checki "all" 10 (List.length records);
      Engine.stop ())

let test_erwin_over_kafka_total_order () =
  Engine.run (fun () ->
      let sys =
        Kafka_erwin.create
          ~kafka_config:{ Kafka.default_config with npartitions = 3 } ()
      in
      let done_ = ref 0 in
      for w = 0 to 2 do
        let log = Kafka_erwin.client sys in
        Engine.spawn (fun () ->
            for i = 1 to 20 do
              ignore (log.append ~size:512 ~data:(Printf.sprintf "%d-%d" w i))
            done;
            incr done_)
      done;
      let wq = Waitq.create () in
      ignore (Waitq.await_timeout wq ~timeout:(Engine.ms 100) (fun () -> !done_ = 3));
      Engine.sleep (Engine.ms 20);
      let log = Kafka_erwin.client sys in
      checki "tail" 60 (log.check_tail ());
      let records = log.read ~from:0 ~len:60 in
      checki "all across partitions" 60 (List.length records);
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (r : Lazylog.Types.record) ->
          checkb "unique" false (Hashtbl.mem seen r.data);
          Hashtbl.replace seen r.data ())
        records;
      Engine.stop ())

let test_erwin_over_kafka_is_fast () =
  Engine.run (fun () ->
      let sys = Kafka_erwin.create () in
      let log = Kafka_erwin.client sys in
      ignore (log.append ~size:4096 ~data:"warm");
      let t0 = Engine.now () in
      ignore (log.append ~size:4096 ~data:"x");
      let erwin_d = Engine.now () - t0 in
      checkb "microseconds, not milliseconds" true (erwin_d < Engine.us 50);
      Engine.stop ())

let () =
  Alcotest.run "kafka"
    [
      ( "broker",
        [
          Alcotest.test_case "produce/fetch" `Quick test_produce_fetch;
          Alcotest.test_case "truncate" `Quick test_truncate;
        ] );
      ( "producer",
        [
          Alcotest.test_case "linger batches" `Quick
            test_producer_linger_batches;
          Alcotest.test_case "max-batch flush" `Quick
            test_producer_max_batch_flushes;
          Alcotest.test_case "client_log roundtrip" `Quick
            test_client_log_roundtrip;
        ] );
      ( "erwin-over-kafka",
        [
          Alcotest.test_case "total order across partitions" `Quick
            test_erwin_over_kafka_total_order;
          Alcotest.test_case "1RTT appends" `Quick test_erwin_over_kafka_is_fast;
        ] );
    ]
