(* Corfu baseline tests: sequencer, chain writes, placement, reads, and
   the eager-ordering cost (multiple RTTs per append). *)

open Ll_sim
open Ll_corfu

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_append_read () =
  Engine.run (fun () ->
      let c = Corfu.create () in
      let log = Corfu.client c in
      for i = 1 to 20 do
        checkb "acked" true (log.append ~size:512 ~data:(string_of_int i))
      done;
      checki "tail" 20 (log.check_tail ());
      let records = log.read ~from:0 ~len:20 in
      checki "all" 20 (List.length records);
      List.iteri
        (fun i (r : Lazylog.Types.record) ->
          Alcotest.(check string) "order" (string_of_int (i + 1)) r.data)
        records;
      Engine.stop ())

let test_positions_eager () =
  Engine.run (fun () ->
      let c = Corfu.create () in
      let log = Corfu.client c in
      let f = Option.get log.append_sync in
      checki "p0" 0 (f ~size:64 ~data:"a");
      checki "p1" 1 (f ~size:64 ~data:"b");
      Engine.stop ())

let test_append_cost_k_plus_1_rtts () =
  Engine.run (fun () ->
      let config = { Corfu.default_config with replicas_per_shard = 3 } in
      let c = Corfu.create ~config () in
      let log = Corfu.client c in
      ignore (log.append ~size:64 ~data:"warm");
      let t0 = Engine.now () in
      ignore (log.append ~size:64 ~data:"x");
      let d = Engine.now () - t0 in
      (* 4 RTTs at ~6us each: must exceed 3 RTTs and an Erwin-style
         1 RTT by a wide margin. *)
      checkb "eager ordering costs RTTs" true (d > Engine.us 18);
      (* one fewer replica -> one fewer RTT *)
      let config2 = { Corfu.default_config with replicas_per_shard = 2 } in
      let c2 = Corfu.create ~config:config2 () in
      let log2 = Corfu.client c2 in
      ignore (log2.append ~size:64 ~data:"warm");
      let t0 = Engine.now () in
      ignore (log2.append ~size:64 ~data:"x");
      let d2 = Engine.now () - t0 in
      checkb "chain length shows" true (d2 < d);
      Engine.stop ())

let test_multi_shard_placement () =
  Engine.run (fun () ->
      let config = { Corfu.default_config with nshards = 3 } in
      let c = Corfu.create ~config () in
      let log = Corfu.client c in
      for i = 1 to 30 do
        ignore (log.append ~size:64 ~data:(string_of_int i))
      done;
      (* every storage unit stores 10 records; total = 30 x replicas *)
      checki "chain writes counted" (30 * 3) (Corfu.positions_written c);
      let records = log.read ~from:0 ~len:30 in
      checki "read across shards" 30 (List.length records);
      Engine.stop ())

let test_concurrent_clients_unique_positions () =
  Engine.run (fun () ->
      let c = Corfu.create () in
      let positions = ref [] in
      let done_ = ref 0 in
      for _ = 1 to 5 do
        let log = Corfu.client c in
        let f = Option.get log.append_sync in
        Engine.spawn (fun () ->
            for i = 1 to 20 do
              let p = f ~size:64 ~data:(string_of_int i) in
              positions := p :: !positions
            done;
            incr done_)
      done;
      let wq = Waitq.create () in
      ignore (Waitq.await_timeout wq ~timeout:(Engine.ms 100) (fun () -> !done_ = 5));
      let ps = List.sort compare !positions in
      checki "100 positions" 100 (List.length ps);
      checki "unique and dense" 99 (List.nth ps 99);
      Engine.stop ())

let test_hole_filling () =
  (* A client takes a position from the sequencer and crashes before the
     chain write: the hole would block readers forever. The reader's
     hole-filling protocol junk-fills it and reads proceed. *)
  Engine.run (fun () ->
      let c = Corfu.create () in
      let log = Corfu.client c in
      ignore (log.append ~size:64 ~data:"a");
      let hole = Corfu.allocate_position c in
      checki "hole at position 1" 1 hole;
      ignore (log.append ~size:64 ~data:"b");
      let t0 = Engine.now () in
      let records = log.read ~from:0 ~len:3 in
      checkb "read unstuck itself" true (Engine.now () - t0 >= Engine.ms 5);
      checki "all three positions answered" 3 (List.length records);
      let datas = List.map (fun (r : Lazylog.Types.record) -> r.data) records in
      Alcotest.(check (list string))
        "hole junk-filled" [ "a"; "<no-op>"; "b" ] datas;
      checkb "junk is a no-op record" true
        (Lazylog.Types.is_no_op (List.nth records 1));
      Engine.stop ())

let test_fill_loses_to_data () =
  (* Write-once: if the slow client's data arrives before the fill, the
     data wins and the fill is a no-op. *)
  Engine.run (fun () ->
      let c = Corfu.create () in
      let log = Corfu.client c in
      let p0 = (Option.get log.append_sync) ~size:64 ~data:"real" in
      (* Fill attempts against an already-written position change nothing. *)
      let records = log.read ~from:p0 ~len:1 in
      Alcotest.(check (list string))
        "data preserved" [ "real" ]
        (List.map (fun (r : Lazylog.Types.record) -> r.data) records);
      Engine.stop ())

let () =
  Alcotest.run "corfu"
    [
      ( "corfu",
        [
          Alcotest.test_case "append/read" `Quick test_append_read;
          Alcotest.test_case "eager positions" `Quick test_positions_eager;
          Alcotest.test_case "append costs k+1 RTTs" `Quick
            test_append_cost_k_plus_1_rtts;
          Alcotest.test_case "multi-shard placement" `Quick
            test_multi_shard_placement;
          Alcotest.test_case "unique positions" `Quick
            test_concurrent_clients_unique_positions;
          Alcotest.test_case "hole filling" `Quick test_hole_filling;
          Alcotest.test_case "fill loses to data" `Quick
            test_fill_loses_to_data;
        ] );
    ]
