test/test_conformance.ml: Alcotest Config Engine Erwin_m Erwin_st Lazylog List Ll_corfu Ll_kafka Ll_scalog Ll_sim Log_api Printf Types
