test/test_reconfig.mli:
