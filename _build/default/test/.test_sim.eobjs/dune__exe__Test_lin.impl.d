test/test_lin.ml: Alcotest Config Engine Erwin_common Erwin_m Erwin_st Lazylog Lin_check List Ll_corfu Ll_net Ll_scalog Ll_sim Log_api Printf QCheck QCheck_alcotest Rng Waitq
