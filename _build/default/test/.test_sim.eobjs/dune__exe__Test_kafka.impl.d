test/test_kafka.ml: Alcotest Engine Hashtbl Kafka Kafka_erwin Lazylog List Ll_kafka Ll_sim Printf Waitq
