test/test_conformance.mli:
