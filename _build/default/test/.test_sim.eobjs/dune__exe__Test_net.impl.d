test/test_net.ml: Alcotest Engine Fabric Ivar List Ll_net Ll_sim Rpc
