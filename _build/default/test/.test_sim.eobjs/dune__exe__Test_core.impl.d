test/test_core.ml: Alcotest Engine Hashtbl Lazylog List Ll_sim QCheck QCheck_alcotest Seq_log Types
