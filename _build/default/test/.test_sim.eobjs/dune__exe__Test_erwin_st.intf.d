test/test_erwin_st.mli:
