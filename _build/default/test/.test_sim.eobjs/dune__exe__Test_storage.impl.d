test/test_storage.ml: Alcotest Disk Engine Flushed_store Hashtbl List Ll_sim Ll_storage Mem_log Option QCheck QCheck_alcotest Ring_buffer Segment_log
