test/test_workload.ml: Alcotest Arrival Engine Hashtbl Lazylog Ll_sim Ll_workload Runner Ycsb
