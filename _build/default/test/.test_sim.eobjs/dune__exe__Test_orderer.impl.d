test/test_orderer.ml: Alcotest Config Engine Erwin_common Erwin_m Fabric Lazylog List Ll_net Ll_sim Log_api Orderer Printf Seq_replica Types Waitq
