test/test_paxos.ml: Alcotest Engine List Ll_repl Ll_sim Paxos QCheck QCheck_alcotest
