test/test_sim.ml: Alcotest Array Engine Float Gen Heap Ivar List Ll_sim Mailbox QCheck QCheck_alcotest Random Rng Stats Waitq
