test/test_corfu.mli:
