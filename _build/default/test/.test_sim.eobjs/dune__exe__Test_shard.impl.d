test/test_shard.ml: Alcotest Config Engine Fabric Lazylog List Ll_net Ll_sim Proto Rpc Shard Types
