test/test_reconfig.ml: Alcotest Config Engine Erwin_common Erwin_m Erwin_st Hashtbl Lazylog List Ll_net Ll_sim Log_api Printf Proto Reconfig Seq_replica Types Waitq
