test/test_corfu.ml: Alcotest Corfu Engine Lazylog List Ll_corfu Ll_sim Option Waitq
