test/test_scalog.ml: Alcotest Engine Hashtbl Lazylog List Ll_scalog Ll_sim Printf Scalog Waitq
