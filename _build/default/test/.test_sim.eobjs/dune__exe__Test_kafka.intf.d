test/test_kafka.mli:
