test/test_erwin_m.ml: Alcotest Config Engine Erwin_common Erwin_m Hashtbl Lazylog List Ll_corfu Ll_net Ll_sim Option Printf Seq_log Seq_replica Shard Types Waitq
