test/test_zk.ml: Alcotest Engine List Ll_control Ll_sim Zookeeper
