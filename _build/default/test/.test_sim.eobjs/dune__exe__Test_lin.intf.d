test/test_lin.mli:
