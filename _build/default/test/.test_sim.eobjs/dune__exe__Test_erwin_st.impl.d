test/test_erwin_st.ml: Alcotest Config Engine Erwin_common Erwin_st Hashtbl Ivar Lazylog List Ll_net Ll_sim Printf Proto Rpc Seq_replica Shard Types Waitq
