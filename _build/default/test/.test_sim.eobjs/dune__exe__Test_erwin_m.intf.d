test/test_erwin_m.mli:
