test/test_apps.ml: Alcotest Engine Erwin_m Kv_store Lazylog List Ll_apps Ll_sim Log_aggregation Log_api Smr Waitq Wordcount
