test/test_orderer.mli:
