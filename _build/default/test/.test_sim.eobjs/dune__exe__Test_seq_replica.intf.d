test/test_seq_replica.mli:
