test/test_scalog.mli:
