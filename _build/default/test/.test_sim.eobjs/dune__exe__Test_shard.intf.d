test/test_shard.mli:
