test/lin_check.ml: Alcotest Engine Hashtbl Lazylog List Ll_sim Log_api Printf Types
