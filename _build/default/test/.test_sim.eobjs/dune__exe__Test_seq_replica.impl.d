test/test_seq_replica.ml: Alcotest Config Engine Fabric Lazylog List Ll_net Ll_sim Proto Rpc Seq_log Seq_replica Types
