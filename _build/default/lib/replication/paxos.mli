(** Leader-based multi-decree Paxos over a simulated fabric.

    Used as the fault-tolerant ordering layer of the Scalog baseline
    ("It establishes the global cut ... and makes this cut fault-tolerant
    (via Paxos)"). The implementation is a compact multi-Paxos:

    - a proposer first claims leadership with a {e prepare} round (phase
      1), learning any previously accepted values it must re-propose;
    - it then commits commands to consecutive slots with single-RTT
      {e accept} rounds (phase 2) requiring a majority of acceptors;
    - committed commands are reported, in slot order, to the [on_commit]
      callback.

    The module is generic in the command type and owns its own fabric of
    [n] acceptor nodes. *)

open Ll_sim
open Ll_net

type 'cmd t

val create :
  ?acceptors:int ->
  ?link:Fabric.link ->
  ?rpc_overhead:Engine.time ->
  ?on_commit:(int -> 'cmd -> unit) ->
  unit ->
  'cmd t
(** Defaults: 3 acceptors, eRPC-class endpoints. Must run inside
    {!Ll_sim.Engine.run}. *)

val become_leader : 'cmd t -> unit
(** Runs phase 1 with a fresh ballot; re-commits any values accepted under
    earlier ballots. Idempotent for an already-leading proposer. *)

val propose : 'cmd t -> 'cmd -> int
(** Commits the command to the next slot (blocking, one accept RTT with a
    stable leader) and returns the slot. Runs {!become_leader} first if
    needed. *)

val committed : 'cmd t -> (int * 'cmd) list
(** All committed slots in order (test/checker use). *)

val chosen : 'cmd t -> int -> 'cmd option

val crash_acceptor : 'cmd t -> int -> unit
(** Fault injection: crash the i-th acceptor. A majority must survive for
    {!propose} to return. *)
