lib/replication/paxos.ml: Array Engine Fabric Hashtbl Ivar List Ll_net Ll_sim Printf Rpc
