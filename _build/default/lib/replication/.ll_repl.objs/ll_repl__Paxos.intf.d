lib/replication/paxos.mli: Engine Fabric Ll_net Ll_sim
