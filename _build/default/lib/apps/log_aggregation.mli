(** Audit-logged transaction processing (paper section 6.11, figure 18b).

    Account operations (create / deposit / withdraw / transfer / balance /
    status) run against a local {!Rocksdb_sim} instance on a transaction
    server; every transaction is additionally logged {e synchronously} to
    the shared log for auditing, because audits are critical. The shared
    log is write-only in the online path (audit reads are offline).

    Per the paper, write transactions cost ~23 us of execution and read
    transactions ~4 us, so the audit-append latency dominates reads much
    more than writes — which is why Erwin's benefit is larger for read
    transactions. *)

open Lazylog

type t

type txn =
  | Create of { account : int }
  | Deposit of { account : int; amount : int }
  | Withdraw of { account : int; amount : int }
  | Transfer of { src : int; dst : int; amount : int }
  | Balance of { account : int }
  | Status of { txn_id : int }

val is_write : txn -> bool

val create : log:Log_api.t -> unit -> t
(** One transaction server with its local database. *)

val execute : t -> txn -> int
(** Runs the transaction (local DB) and synchronously appends the audit
    record; returns the transaction's result (balance, status code, or 0).
    Blocking; latency = execution + audit logging. *)

val audit_records : t -> int
