open Ll_sim
open Lazylog

type t = {
  log : Log_api.t;
  validate_cost : Engine.time;
  state : (string, string) Hashtbl.t;  (* read server's local state *)
  mutable applied : int;
}

(* Records on the log are "key=value"; keys must not contain '=' or ';'.
   Checkpoint records carry the whole state, ';'-separated, behind a
   marker prefix. *)
let serialize ~key ~value = key ^ "=" ^ value

let checkpoint_marker = "\x01ckpt;"

let is_checkpoint data =
  String.length data >= String.length checkpoint_marker
  && String.sub data 0 (String.length checkpoint_marker) = checkpoint_marker

let apply_pair state pair =
  match String.index_opt pair '=' with
  | Some i ->
    Hashtbl.replace state
      (String.sub pair 0 i)
      (String.sub pair (i + 1) (String.length pair - i - 1))
  | None -> ()

let apply_checkpoint state data =
  let body =
    String.sub data
      (String.length checkpoint_marker)
      (String.length data - String.length checkpoint_marker)
  in
  String.split_on_char ';' body |> List.iter (apply_pair state)

let apply t (r : Types.record) =
  (* The live reader built this state itself: checkpoints carry nothing
     new for it, only for recovering readers. *)
  if not (Types.is_no_op r || is_checkpoint r.data) then
    apply_pair t.state r.data

(* The read server: consume the log at its own pace (poll the tail, read
   any new suffix, fold it into local state). *)
let consumer t reader_log ~poll_interval () =
  let rec loop () =
    let tail = reader_log.Log_api.check_tail () in
    if tail > t.applied then begin
      let records =
        reader_log.Log_api.read ~from:t.applied ~len:(tail - t.applied)
      in
      List.iter (apply t) records;
      t.applied <- tail
    end
    else Engine.sleep poll_interval;
    loop ()
  in
  loop ()

let make ~log ~validate_cost =
  { log; validate_cost; state = Hashtbl.create 4096; applied = 0 }

let create ~log ?reader_log ?(validate_cost = Engine.us 2)
    ?(poll_interval = Engine.us 200) () =
  let reader_log = match reader_log with Some l -> l | None -> log in
  let t = make ~log ~validate_cost in
  Engine.spawn ~name:"kv.read-server" (consumer t reader_log ~poll_interval);
  t

let put t ~key ~value =
  (* Write server: validate, serialize, append, ack. *)
  Engine.sleep t.validate_cost;
  let data = serialize ~key ~value in
  let size = String.length key + String.length value in
  ignore (t.log.Log_api.append ~size ~data : bool)

let get t ~key =
  Engine.sleep t.validate_cost;
  Hashtbl.find_opt t.state key

let applied t = t.applied

let lag t = t.log.Log_api.check_tail () - t.applied

let compact t =
  (* Snapshot the reader's state into one checkpoint record, then trim
     everything it covers. Updates applied after the snapshot stay in the
     log suffix and re-apply cleanly on recovery (last write wins). *)
  let upto = t.applied in
  let body =
    Hashtbl.fold (fun k v acc -> serialize ~key:k ~value:v :: acc) t.state []
    |> String.concat ";"
  in
  let data = checkpoint_marker ^ body in
  let size =
    Hashtbl.fold (fun k v acc -> acc + String.length k + String.length v + 2)
      t.state 64
  in
  ignore (t.log.Log_api.append ~size ~data : bool);
  ignore (t.log.Log_api.trim ~upto : bool)

let recover ~log ?(validate_cost = Engine.us 2)
    ?(poll_interval = Engine.us 200) () =
  let t = make ~log ~validate_cost in
  (* Replay from the trim point — the newest checkpoint plus the update
     suffix — before the consumer starts following the tail. *)
  let tail = log.Log_api.check_tail () in
  let records = log.Log_api.read ~from:0 ~len:tail in
  List.iter
    (fun (r : Types.record) ->
      if Types.is_no_op r then ()
      else if is_checkpoint r.data then apply_checkpoint t.state r.data
      else apply_pair t.state r.data)
    records;
  t.applied <- tail;
  Engine.spawn ~name:"kv.read-server" (consumer t log ~poll_interval);
  t
