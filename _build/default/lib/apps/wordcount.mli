(** Journaled stream-processing word count (paper section 6.11,
    figure 18c).

    Task workers read input records, update word counts, and — before
    emitting results downstream — durably checkpoint their produced state
    to the shared log (the Samza/MillWheel pattern that gives
    fault tolerance and exactly-once semantics). Checkpointing happens
    per batch of inputs; the measured per-record latency spans reading the
    input, processing, checkpointing the batch, and emitting. Smaller
    batches make the logging share of that latency larger, which is where
    LazyLog's fast appends pay off. *)

open Ll_sim
open Lazylog

type t

val create :
  log:Log_api.t ->
  ?workers:int ->
  ?process_cost:Engine.time ->
  batch:int ->
  unit ->
  t
(** [workers] defaults to 5 (as in the paper); [process_cost] is the CPU
    charge per input record (default 100 ns — a hash-table bump). *)

val run :
  t -> inputs:string list -> (string -> unit) -> Stats.Reservoir.t
(** Feeds the inputs through the workers (round-robin), calling the emit
    function for each batch's results after its checkpoint is durable.
    Returns the per-record read-process-checkpoint-emit latencies.
    Blocking. *)

val counts : t -> (string * int) list
(** Current word counts, sorted by word. *)

val recover : t -> from_log:Log_api.t -> int
(** Fail-over path: rebuild worker state by replaying checkpoints from the
    log; returns the number of checkpoint records replayed. *)
