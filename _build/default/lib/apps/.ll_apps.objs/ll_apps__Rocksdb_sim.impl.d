lib/apps/rocksdb_sim.ml: Engine Hashtbl Ll_sim
