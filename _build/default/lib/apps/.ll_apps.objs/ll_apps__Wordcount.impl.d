lib/apps/wordcount.ml: Array Engine Hashtbl Lazylog List Ll_sim Log_api Printf Stats String Types Waitq
