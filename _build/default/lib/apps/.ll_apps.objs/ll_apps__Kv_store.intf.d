lib/apps/kv_store.mli: Engine Lazylog Ll_sim Log_api
