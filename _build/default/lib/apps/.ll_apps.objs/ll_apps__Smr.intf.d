lib/apps/smr.mli: Lazylog Ll_sim Log_api Stats
