lib/apps/kv_store.ml: Engine Hashtbl Lazylog List Ll_sim Log_api String Types
