lib/apps/smr.ml: Engine Lazylog List Ll_sim Log_api Stats String Types
