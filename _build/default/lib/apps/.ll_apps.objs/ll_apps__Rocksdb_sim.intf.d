lib/apps/rocksdb_sim.mli: Engine Ll_sim
