lib/apps/log_aggregation.mli: Lazylog Log_api
