lib/apps/wordcount.mli: Engine Lazylog Ll_sim Log_api Stats
