lib/apps/log_aggregation.ml: Lazylog Log_api Printf Rocksdb_sim
