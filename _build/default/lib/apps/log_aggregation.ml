open Lazylog

type t = {
  log : Log_api.t;
  db : Rocksdb_sim.t;
  mutable audits : int;
  mutable txn_counter : int;
}

type txn =
  | Create of { account : int }
  | Deposit of { account : int; amount : int }
  | Withdraw of { account : int; amount : int }
  | Transfer of { src : int; dst : int; amount : int }
  | Balance of { account : int }
  | Status of { txn_id : int }

let is_write = function
  | Create _ | Deposit _ | Withdraw _ | Transfer _ -> true
  | Balance _ | Status _ -> false

let create ~log () =
  { log; db = Rocksdb_sim.create (); audits = 0; txn_counter = 0 }

let akey account = "acct:" ^ string_of_int account

let balance_of t account =
  match Rocksdb_sim.get t.db ~key:(akey account) with
  | Some v -> int_of_string v
  | None -> 0

let describe = function
  | Create { account } -> Printf.sprintf "create %d" account
  | Deposit { account; amount } -> Printf.sprintf "dep %d %d" account amount
  | Withdraw { account; amount } -> Printf.sprintf "wdr %d %d" account amount
  | Transfer { src; dst; amount } ->
    Printf.sprintf "xfer %d %d %d" src dst amount
  | Balance { account } -> Printf.sprintf "bal %d" account
  | Status { txn_id } -> Printf.sprintf "status %d" txn_id

let run_local t txn =
  match txn with
  | Create { account } ->
    Rocksdb_sim.put t.db ~key:(akey account) ~value:"0";
    0
  | Deposit { account; amount } ->
    let b = balance_of t account + amount in
    Rocksdb_sim.put t.db ~key:(akey account) ~value:(string_of_int b);
    b
  | Withdraw { account; amount } ->
    let b = balance_of t account - amount in
    Rocksdb_sim.put t.db ~key:(akey account) ~value:(string_of_int b);
    b
  | Transfer { src; dst; amount } ->
    let sb = balance_of t src - amount in
    Rocksdb_sim.put t.db ~key:(akey src) ~value:(string_of_int sb);
    let db_ = balance_of t dst + amount in
    Rocksdb_sim.put t.db ~key:(akey dst) ~value:(string_of_int db_);
    sb
  | Balance { account } -> balance_of t account
  | Status { txn_id } ->
    (* Committed if we have processed it. *)
    if txn_id <= t.txn_counter then 1 else 0

let execute t txn =
  t.txn_counter <- t.txn_counter + 1;
  let result = run_local t txn in
  (* Synchronous audit logging: irrespective of transaction type, the
     shared-log operation is an append. *)
  let data = Printf.sprintf "txn %d: %s" t.txn_counter (describe txn) in
  let size = 128 in
  ignore (t.log.Log_api.append ~size ~data : bool);
  t.audits <- t.audits + 1;
  result

let audit_records t = t.audits
