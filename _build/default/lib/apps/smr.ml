open Ll_sim
open Lazylog

type t = {
  log : Log_api.t;
  apply : string -> unit;
  mutable cursor : int;  (* next log position to apply *)
  lat : Stats.Reservoir.t;
}

let create ~log ~apply =
  { log; apply; cursor = 0; lat = Stats.Reservoir.create ~name:"smr" () }

let submit t cmd =
  let t0 = Engine.now () in
  ignore (t.log.Log_api.append ~size:(String.length cmd + 64) ~data:cmd : bool);
  (* Catch up to the tail: this is where a lazy log pays its ordering
     cost, because the just-appended suffix is typically unordered. *)
  let tail = t.log.Log_api.check_tail () in
  let n = ref 0 in
  if tail > t.cursor then begin
    let records = t.log.Log_api.read ~from:t.cursor ~len:(tail - t.cursor) in
    List.iter
      (fun (r : Types.record) ->
        if not (Types.is_no_op r) then begin
          t.apply r.data;
          incr n
        end)
      records;
    t.cursor <- tail
  end;
  Stats.Reservoir.add t.lat (Engine.now () - t0);
  !n

let applied t = t.cursor

let submit_latency t = t.lat
