open Ll_sim
open Lazylog

type t = {
  log : Log_api.t;
  workers : int;
  process_cost : Engine.time;
  batch : int;
  counts : (string, int) Hashtbl.t;
}

let create ~log ?(workers = 5) ?(process_cost = Engine.ns 100) ~batch () =
  { log; workers; process_cost; batch; counts = Hashtbl.create 1024 }

let bump t word =
  let c = try Hashtbl.find t.counts word with Not_found -> 0 in
  Hashtbl.replace t.counts word (c + 1)

(* Serialize a batch's delta state for the checkpoint record. *)
let checkpoint_data deltas =
  String.concat ";"
    (List.map (fun (w, c) -> Printf.sprintf "%s:%d" w c) deltas)

let run t ~inputs emit =
  let lat = Stats.Reservoir.create ~name:"wordcount" () in
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let per_worker = Array.make t.workers [] in
  Array.iteri
    (fun i w -> per_worker.(i mod t.workers) <- (i, w) :: per_worker.(i mod t.workers))
    inputs;
  let done_ = ref 0 in
  let all_done = Waitq.create () in
  for w = 0 to t.workers - 1 do
    let my_inputs = List.rev per_worker.(w) in
    Engine.spawn ~name:(Printf.sprintf "wordcount.worker%d" w) (fun () ->
        let rec batches pending =
          match pending with
          | [] -> ()
          | _ ->
            let rec take k acc rest =
              match rest with
              | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
              | _ -> (List.rev acc, rest)
            in
            let batch, rest = take t.batch [] pending in
            let t_read = Engine.now () in
            (* Process: update counts, accumulate the produced state. *)
            let deltas = Hashtbl.create 64 in
            List.iter
              (fun (_, word) ->
                Engine.sleep t.process_cost;
                bump t word;
                let c = try Hashtbl.find deltas word with Not_found -> 0 in
                Hashtbl.replace deltas word (c + 1))
              batch;
            let delta_list =
              Hashtbl.fold (fun w c acc -> (w, c) :: acc) deltas []
            in
            (* Durably checkpoint the produced state before emitting.
               The state is the per-word delta — bounded by the
               vocabulary, not by the batch size. *)
            let data = checkpoint_data delta_list in
            let size = 64 + (16 * List.length delta_list) in
            ignore (t.log.Log_api.append ~size ~data : bool);
            (* Emit, and account the full pipeline latency per record. *)
            List.iter
              (fun (_, word) ->
                emit word;
                Stats.Reservoir.add lat (Engine.now () - t_read))
              batch;
            batches rest
        in
        batches my_inputs;
        incr done_;
        if !done_ = t.workers then Waitq.broadcast all_done)
  done;
  Waitq.await all_done (fun () -> !done_ = t.workers);
  ignore n;
  lat

let counts t =
  Hashtbl.fold (fun w c acc -> (w, c) :: acc) t.counts []
  |> List.sort compare

let recover t ~from_log =
  let tail = from_log.Log_api.check_tail () in
  let records = from_log.Log_api.read ~from:0 ~len:tail in
  Hashtbl.reset t.counts;
  let replayed = ref 0 in
  List.iter
    (fun (r : Types.record) ->
      if not (Types.is_no_op r) && r.data <> "" then begin
        incr replayed;
        String.split_on_char ';' r.data
        |> List.iter (fun pair ->
               match String.index_opt pair ':' with
               | Some i ->
                 let w = String.sub pair 0 i in
                 let c =
                   int_of_string
                     (String.sub pair (i + 1) (String.length pair - i - 1))
                 in
                 let cur = try Hashtbl.find t.counts w with Not_found -> 0 in
                 Hashtbl.replace t.counts w (cur + c)
               | None -> ())
      end)
    records;
  !replayed
