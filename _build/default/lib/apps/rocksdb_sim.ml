open Ll_sim

type t = {
  write_cost : Engine.time;
  read_cost : Engine.time;
  table : (string, string) Hashtbl.t;
}

let create ?(write_cost = Engine.us 23) ?(read_cost = Engine.us 4) () =
  { write_cost; read_cost; table = Hashtbl.create 4096 }

let put t ~key ~value =
  Engine.sleep t.write_cost;
  Hashtbl.replace t.table key value

let get t ~key =
  Engine.sleep t.read_cost;
  Hashtbl.find_opt t.table key

let size t = Hashtbl.length t.table
