(** State machine replication over the shared log — the paper's worst-case
    workload for LazyLog (section 3.2): a replica appends a command and
    immediately reads the log up to the tail to apply everything in order,
    so reads routinely hit the unordered portion and take the slow path.

    Included as an example and as the ablation workload showing that even
    then LazyLog "would offer the same overall performance as a
    conventional shared log": the ordering cost just moves from appends to
    reads. *)

open Ll_sim
open Lazylog

type t

val create : log:Log_api.t -> apply:(string -> unit) -> t

val submit : t -> string -> int
(** [submit t cmd] appends the command, then reads forward to the tail
    applying all commands in log order (exactly once), and returns the
    number of commands applied during this call. Blocking; the returned
    latency profile is the append + catch-up read cost. *)

val applied : t -> int

val submit_latency : t -> Stats.Reservoir.t
