(** Local embedded KV store with RocksDB-like costs.

    The log-aggregation application of section 6.11 runs transactions
    against a local RocksDB instance; the paper reports its execution
    costs as ~23 us per write and ~4 us per read, which is all the
    experiment depends on — so that is exactly what this simulation
    charges. *)

open Ll_sim

type t

val create : ?write_cost:Engine.time -> ?read_cost:Engine.time -> unit -> t

val put : t -> key:string -> value:string -> unit
(** Stores and charges the write cost (blocking). *)

val get : t -> key:string -> string option
(** Charges the read cost (blocking). *)

val size : t -> int
