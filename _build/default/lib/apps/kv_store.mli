(** Writer-reader-decoupled key-value store over a shared log, modeled
    after Firescroll (paper section 6.11).

    Puts are handled by a write-processing server: it validates the
    request, serializes the pair, appends it to the shared log, and acks —
    crucially, it does not need the record's position, which is what makes
    the LazyLog [append] interface sufficient. A read server independently
    consumes the log at its own pace, builds local state, and serves gets;
    reads are therefore eventually consistent, as in Firescroll. *)

open Ll_sim
open Lazylog

type t

val create :
  log:Log_api.t ->
  ?reader_log:Log_api.t ->
  ?validate_cost:Engine.time ->
  ?poll_interval:Engine.time ->
  unit ->
  t
(** [reader_log] defaults to [log] (a second client handle is cleaner —
    pass one when available). Starts the read server's consumer fiber. *)

val put : t -> key:string -> value:string -> unit
(** End-client put: blocking until the write server acks (validation +
    shared-log append). *)

val get : t -> key:string -> string option
(** End-client get: served by the read server from its local state. *)

val applied : t -> int
(** Log positions the read server has consumed. *)

val lag : t -> int
(** check_tail minus applied (diagnostics). *)

val compact : t -> unit
(** Log compaction: the read server appends a checkpoint of its current
    state and trims the log prefix it covers, bounding log growth (the
    Kafka-compaction pattern). Blocking. *)

val recover : log:Log_api.t -> ?validate_cost:Engine.time ->
  ?poll_interval:Engine.time -> unit -> t
(** Builds a fresh read server from a (possibly compacted) log: replays
    the latest checkpoint and every update after it, then keeps
    consuming. *)
