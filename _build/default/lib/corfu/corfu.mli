(** Corfu baseline (Balakrishnan et al., NSDI '12), as described in the
    paper's section 2.2 and used as the eager-ordering comparison system.

    A client append first obtains the next position from a centralized
    sequencer (one RTT), then writes the record to the storage servers
    responsible for that position via a {e client-driven chain}: the
    replicas are updated serially, one after the other, so a write to a
    k-replica shard costs k more RTTs (k+1 total; 4 RTTs with three
    replicas). The record is bound to its position — and the append
    eagerly ordered — once it reaches the chain's tail.

    Placement is [position mod nshards]; every storage server of a shard
    stores all of the shard's records and drains them to disk in the
    background (disk-bound sustained throughput, like the other systems
    here). Reads go to the chain tail, which serves a position once it has
    been written. *)

open Ll_sim
open Ll_net

type config = {
  nshards : int;
  replicas_per_shard : int;
  shard_disk : Lazylog.Config.disk_kind;
  link : Fabric.link;
  rpc_overhead : Engine.time;
  sequencer_base_ns : int;
  storage_base_ns : int;
}

val default_config : config
(** One shard of three replicas on SATA disks, eRPC-class endpoints. *)

type t

val create : ?config:config -> unit -> t
(** Must run inside {!Ll_sim.Engine.run}. *)

val client : t -> Lazylog.Log_api.t
(** [append_sync] is provided (Corfu appends always learn their position);
    [append] simply discards it. *)

val positions_written : t -> int

val messages_sent : t -> int
(** Fabric message count (protocol-complexity assertions in tests). *)

val allocate_position : t -> int
(** Takes a sequencer position without writing it — simulates a client
    that crashed mid-append, leaving a hole. Readers unstick themselves by
    junk-filling the hole along the chain (Corfu's hole-filling
    protocol); test hook. *)
