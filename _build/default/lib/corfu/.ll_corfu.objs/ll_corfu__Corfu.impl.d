lib/corfu/corfu.ml: Array Disk Engine Fabric Flushed_store Fun Ivar Lazylog List Ll_net Ll_sim Ll_storage Printf Rpc Waitq
