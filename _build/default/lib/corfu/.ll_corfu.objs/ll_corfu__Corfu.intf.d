lib/corfu/corfu.mli: Engine Fabric Lazylog Ll_net Ll_sim
