lib/scalog/scalog.mli: Engine Fabric Lazylog Ll_net Ll_sim
