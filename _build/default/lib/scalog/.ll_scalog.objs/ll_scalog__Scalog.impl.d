lib/scalog/scalog.ml: Array Disk Engine Fabric Flushed_store Fun Hashtbl Ivar Lazylog List Ll_net Ll_repl Ll_sim Ll_storage Printf Rng Rpc Stats Waitq
