(** Scalog baseline (Ding et al., NSDI '20), per the paper's section 2.2.

    Append path: the client writes to a shard primary, which assigns a
    shard-local sequence number, stores the record and replicates it in
    FIFO order to its backup. Periodically — every {e interleaving
    interval} (0.1 ms, as in both papers) — all shard servers report their
    log lengths to the ordering layer. The ordering layer computes the
    durable prefix of each shard (stored on both replicas), forms the
    global {e cut}, makes it fault tolerant through {!Ll_repl.Paxos}, and
    distributes it to the primaries, which only then acknowledge the
    appends covered by the cut. Appends therefore pay replication, up to
    one interleaving interval of batching delay, and the ordering round —
    Scalog's eager-ordering cost.

    Global order: records newly covered by cut [k] are ordered after cut
    [k-1]'s, by shard id and then by shard-local sequence number. Readers
    resolve positions to (shard, lsn) through the ordering layer.

    Endpoints default to gRPC-class software overheads, matching the
    open-source Scalog artifact the paper measures against (section 6.1
    notes the artifact uses gRPC while Erwin uses eRPC). *)

open Ll_sim
open Ll_net

type config = {
  nshards : int;
  interleaving_interval : Engine.time;
  shard_disk : Lazylog.Config.disk_kind;
  link : Fabric.link;
  rpc_overhead : Engine.time;  (** per endpoint per direction *)
  shard_base_ns : int;
}

val default_config : config
(** One 2-replica shard, 0.1 ms interleaving, 80 us gRPC-class overheads. *)

type t

val create : ?config:config -> unit -> t
(** Must run inside {!Ll_sim.Engine.run}. *)

val client : t -> Lazylog.Log_api.t

val committed_cuts : t -> int
(** Number of Paxos-committed cuts (diagnostics). *)

val shard_in_isolation_probe :
  ?config:config -> rate:float -> seconds:float -> size:int -> unit ->
  float * float
(** Drives a single Scalog shard (replication only, no ordering layer) at
    [rate] appends/s and returns (mean latency us, achieved throughput/s) —
    the section 6.1 "comparable performance regime" parity check. *)
