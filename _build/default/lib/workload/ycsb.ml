open Ll_sim

type op = Insert of int | Update of int | Read of int | Read_modify_write of int

type profile = Load | A | B | C | D | F

let profile_name = function
  | Load -> "load"
  | A -> "ycsb-a"
  | B -> "ycsb-b"
  | C -> "ycsb-c"
  | D -> "ycsb-d"
  | F -> "ycsb-f"

type gen = {
  rng : Rng.t;
  zipf : Rng.Zipf.gen;
  profile : profile;
  mutable inserted : int;
}

let create ?(seed = 3) ?(theta = 0.99) ~keyspace ~profile () =
  let rng = Rng.create ~seed in
  { rng; zipf = Rng.Zipf.create rng ~n:keyspace ~theta; profile; inserted = 0 }

let next g =
  match g.profile with
  | Load ->
    let k = g.inserted in
    g.inserted <- k + 1;
    Insert k
  | A ->
    if Rng.bool g.rng ~p:0.5 then Update (Rng.Zipf.next g.zipf)
    else Read (Rng.Zipf.next g.zipf)
  | B ->
    if Rng.bool g.rng ~p:0.05 then Update (Rng.Zipf.next g.zipf)
    else Read (Rng.Zipf.next g.zipf)
  | C -> Read (Rng.Zipf.next g.zipf)
  | D ->
    (* Read-latest: the working set trails the insertion frontier; reads
       target recently inserted keys with exponentially decaying recency. *)
    if Rng.bool g.rng ~p:0.05 || g.inserted = 0 then begin
      let k = g.inserted in
      g.inserted <- k + 1;
      Insert k
    end
    else begin
      let back = int_of_float (Rng.exponential g.rng ~mean:16.0) in
      let k = g.inserted - 1 - back in
      Read (if k < 0 then 0 else k)
    end
  | F ->
    if Rng.bool g.rng ~p:0.5 then Read (Rng.Zipf.next g.zipf)
    else Read_modify_write (Rng.Zipf.next g.zipf)

let key_bytes = 24

let value_bytes = 1024
