lib/workload/ycsb.ml: Ll_sim Rng
