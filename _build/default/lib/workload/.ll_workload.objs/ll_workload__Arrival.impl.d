lib/workload/arrival.ml: Engine Ll_sim Printf Rng
