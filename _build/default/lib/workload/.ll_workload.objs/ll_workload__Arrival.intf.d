lib/workload/arrival.mli: Engine Ll_sim
