lib/workload/runner.mli: Engine Lazylog Ll_sim Log_api Stats
