lib/workload/runner.ml: Array Arrival Engine Lazylog Ll_sim Log_api Stats Waitq
