lib/workload/ycsb.mli:
