(** YCSB workload generators (Cooper et al., SoCC '10), as used by the
    paper's KV-store evaluation (section 6.11): Load (write-only), YCSB-A
    (write-heavy, 50/50), YCSB-B (read-heavy, 95/5), with zipfian key
    popularity. *)


type op = Insert of int | Update of int | Read of int | Read_modify_write of int

type profile =
  | Load  (** insert-only *)
  | A  (** update-heavy: 50/50 updates/reads *)
  | B  (** read-heavy: 5/95 *)
  | C  (** read-only *)
  | D  (** read-latest: 5% inserts, 95% reads skewed to recent keys *)
  | F  (** read-modify-write: 50/50 reads/RMWs *)

val profile_name : profile -> string

type gen

val create :
  ?seed:int -> ?theta:float -> keyspace:int -> profile:profile -> unit -> gen
(** [theta] is the zipfian skew (default 0.99, the YCSB default). *)

val next : gen -> op

val key_bytes : int
(** 24, per the paper's KV experiment. *)

val value_bytes : int
(** 1024, per the paper's KV experiment. *)
