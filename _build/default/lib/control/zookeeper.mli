(** Minimal ZooKeeper-like coordination service.

    Provides exactly what Erwin's control plane uses (paper section 4.5):
    znodes holding small configuration blobs, session liveness tracking for
    the sequencing replicas (a failure is detected when a replica's session
    expires), and watches that notify the controller. Like the real
    system, it is not fast: every operation pays [op_latency] and failure
    detection waits out [session_timeout] — which is why reconfiguration
    time in the paper's figure 17 is dominated by ZooKeeper, not by the
    600 us core recovery.

    The service runs "beside" the simulated fabric: clients are fibers, and
    session liveness is probed through a caller-supplied [alive] closure so
    any crash representation can drive expiry. *)

open Ll_sim

type t

val create :
  ?session_timeout:Engine.time ->
  ?heartbeat_interval:Engine.time ->
  ?op_latency:Engine.time ->
  unit ->
  t
(** Defaults: 10 ms session timeout, 2 ms heartbeats, 1.5 ms op latency. *)

(** {1 Sessions and failure detection} *)

val start_session : t -> name:string -> alive:(unit -> bool) -> unit
(** Registers a session for [name] and spawns its heartbeat fiber. While
    [alive ()] holds, heartbeats refresh the session; once it stops
    holding, the session expires [session_timeout] after the last
    heartbeat and the expiry watchers fire. *)

val on_session_expired : t -> (string -> unit) -> unit
(** Registers a watcher called (once per expiry) with the session name. *)

val session_alive : t -> string -> bool

(** {1 Znodes} *)

val create_znode : t -> path:string -> data:string -> bool
(** False if the node already exists. Pays [op_latency]. *)

val set_data : t -> path:string -> data:string -> unit
(** Creates the node if missing. Pays [op_latency]. Fires data watches. *)

val get_data : t -> path:string -> string option
(** Pays [op_latency]. *)

val exists : t -> path:string -> bool

val delete : t -> path:string -> unit

val watch_data : t -> path:string -> (string -> unit) -> unit
(** [watch_data t ~path f] calls [f data] on every subsequent
    {!set_data} to [path] (persistent watch; registration is free). *)
