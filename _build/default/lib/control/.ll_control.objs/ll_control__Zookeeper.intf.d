lib/control/zookeeper.mli: Engine Ll_sim
