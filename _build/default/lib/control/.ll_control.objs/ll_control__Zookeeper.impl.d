lib/control/zookeeper.ml: Engine Hashtbl List Ll_sim
