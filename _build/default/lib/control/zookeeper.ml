open Ll_sim

type session = {
  mutable last_heartbeat : Engine.time;
  mutable expired : bool;
}

type t = {
  session_timeout : Engine.time;
  heartbeat_interval : Engine.time;
  op_latency : Engine.time;
  sessions : (string, session) Hashtbl.t;
  znodes : (string, string) Hashtbl.t;
  mutable expiry_watchers : (string -> unit) list;
  data_watchers : (string, (string -> unit) list ref) Hashtbl.t;
}

let create ?(session_timeout = Engine.ms 10)
    ?(heartbeat_interval = Engine.ms 2) ?(op_latency = Engine.us 1500) () =
  {
    session_timeout;
    heartbeat_interval;
    op_latency;
    sessions = Hashtbl.create 8;
    znodes = Hashtbl.create 8;
    expiry_watchers = [];
    data_watchers = Hashtbl.create 8;
  }

let expire t name s =
  if not s.expired then begin
    s.expired <- true;
    List.iter (fun f -> f name) (List.rev t.expiry_watchers)
  end

let start_session t ~name ~alive =
  let s = { last_heartbeat = Engine.now (); expired = false } in
  Hashtbl.replace t.sessions name s;
  (* Heartbeat fiber: refreshes while the client is alive. *)
  Engine.spawn ~name:(name ^ ".zk-heartbeat") (fun () ->
      let rec beat () =
        if alive () && not s.expired then begin
          s.last_heartbeat <- Engine.now ();
          Engine.sleep t.heartbeat_interval;
          beat ()
        end
      in
      beat ());
  (* Server-side expiry checker. *)
  Engine.spawn ~name:(name ^ ".zk-expiry") (fun () ->
      let rec check () =
        if not s.expired then begin
          let deadline = s.last_heartbeat + t.session_timeout in
          let now = Engine.now () in
          if now >= deadline then expire t name s
          else begin
            Engine.sleep (deadline - now);
            check ()
          end
        end
      in
      check ())

let on_session_expired t f = t.expiry_watchers <- f :: t.expiry_watchers

let session_alive t name =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> not s.expired
  | None -> false

let create_znode t ~path ~data =
  Engine.sleep t.op_latency;
  if Hashtbl.mem t.znodes path then false
  else begin
    Hashtbl.replace t.znodes path data;
    true
  end

let fire_data_watch t path data =
  match Hashtbl.find_opt t.data_watchers path with
  | None -> ()
  | Some fns -> List.iter (fun f -> f data) (List.rev !fns)

let set_data t ~path ~data =
  Engine.sleep t.op_latency;
  Hashtbl.replace t.znodes path data;
  fire_data_watch t path data

let get_data t ~path =
  Engine.sleep t.op_latency;
  Hashtbl.find_opt t.znodes path

let exists t ~path = Hashtbl.mem t.znodes path

let delete t ~path = Hashtbl.remove t.znodes path

let watch_data t ~path f =
  match Hashtbl.find_opt t.data_watchers path with
  | Some fns -> fns := f :: !fns
  | None -> Hashtbl.add t.data_watchers path (ref [ f ])
