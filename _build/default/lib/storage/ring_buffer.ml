open Ll_sim

type 'a t = {
  capacity : int;
  slots : 'a option array;
  mutable head : int;
  mutable tail : int;
  space : Waitq.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring_buffer.create: capacity";
  {
    capacity;
    slots = Array.make capacity None;
    head = 0;
    tail = 0;
    space = Waitq.create ();
  }

let capacity t = t.capacity
let head t = t.head
let tail t = t.tail
let length t = t.tail - t.head
let is_full t = length t >= t.capacity

let try_append t v =
  if is_full t then None
  else begin
    let i = t.tail in
    t.slots.(i mod t.capacity) <- Some v;
    t.tail <- i + 1;
    Some i
  end

let append_wait t v =
  Waitq.await t.space (fun () -> not (is_full t));
  match try_append t v with
  | Some i -> i
  | None -> assert false

let get t i =
  if i < t.head || i >= t.tail then None else t.slots.(i mod t.capacity)

let advance_head t n =
  let n = if n > t.tail then t.tail else n in
  if n > t.head then begin
    for i = t.head to n - 1 do
      t.slots.(i mod t.capacity) <- None
    done;
    t.head <- n;
    Waitq.broadcast t.space
  end

let iter_from t from f =
  let from = if from < t.head then t.head else from in
  for i = from to t.tail - 1 do
    match t.slots.(i mod t.capacity) with
    | Some v -> f i v
    | None -> ()
  done

let snapshot t =
  let acc = ref [] in
  iter_from t t.head (fun i v -> acc := (i, v) :: !acc);
  List.rev !acc

let clear t =
  for i = t.head to t.tail - 1 do
    t.slots.(i mod t.capacity) <- None
  done;
  t.head <- t.tail;
  Waitq.broadcast t.space
