(** Bounded ring buffer with absolute head/tail counters.

    This is the sequencing-replica log of the paper (section 5.6): "the log
    is implemented as a ring buffer with a head and tail pointer. New
    entries or metadata identifiers are added at the tail"; garbage
    collection "modif[ies] the head pointers ... freeing space". Entries
    live at absolute indexes [head..tail); capacity bounds [tail - head]
    and a full buffer exerts backpressure on appends. *)

type 'a t

val create : capacity:int -> 'a t

val capacity : 'a t -> int

val head : 'a t -> int
(** Absolute index of the oldest retained entry. *)

val tail : 'a t -> int
(** Absolute index one past the newest entry (next append position). *)

val length : 'a t -> int

val is_full : 'a t -> bool

val try_append : 'a t -> 'a -> int option
(** [Some abs_index] on success; [None] when full. *)

val append_wait : 'a t -> 'a -> int
(** Appends, blocking the calling fiber while the buffer is full. *)

val get : 'a t -> int -> 'a option
(** [get t i] is the entry at absolute index [i] if [head <= i < tail]. *)

val advance_head : 'a t -> int -> unit
(** [advance_head t n] garbage collects entries below absolute index [n]
    (clamped to [head..tail]) and wakes fibers blocked in
    {!append_wait}. *)

val iter_from : 'a t -> int -> (int -> 'a -> unit) -> unit
(** Iterates entries at absolute indexes [>= max from head]. *)

val snapshot : 'a t -> (int * 'a) list
(** All live entries with their absolute indexes, oldest first. *)

val clear : 'a t -> unit
(** Empties the buffer, setting [head = tail] (absolute counters keep
    advancing monotonically). *)
