lib/storage/ring_buffer.ml: Array List Ll_sim Waitq
