lib/storage/ring_buffer.mli:
