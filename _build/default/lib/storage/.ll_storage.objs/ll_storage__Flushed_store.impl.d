lib/storage/flushed_store.ml: Disk Engine Hashtbl List Ll_sim Mem_log Queue Waitq
