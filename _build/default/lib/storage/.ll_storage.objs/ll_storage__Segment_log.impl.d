lib/storage/segment_log.ml: Disk Hashtbl List Mem_log
