lib/storage/mem_log.ml: Hashtbl List
