lib/storage/mem_log.mli:
