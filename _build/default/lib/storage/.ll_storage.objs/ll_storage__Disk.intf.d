lib/storage/disk.mli: Engine Ll_sim
