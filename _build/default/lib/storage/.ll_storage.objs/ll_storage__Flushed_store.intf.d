lib/storage/flushed_store.mli: Disk
