lib/storage/segment_log.mli: Disk
