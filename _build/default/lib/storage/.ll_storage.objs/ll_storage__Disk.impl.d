lib/storage/disk.ml: Engine Ll_sim
