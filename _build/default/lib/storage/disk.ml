open Ll_sim

type t = {
  base_latency : Engine.time;
  ns_per_byte : float;
  name : string;
  mutable next_free : Engine.time;
  mutable bytes_written : int;
  mutable ops : int;
}

let create ?(base_latency = Engine.us 20) ?(ns_per_byte = 7.0)
    ?(name = "disk") () =
  { base_latency; ns_per_byte; name; next_free = 0; bytes_written = 0; ops = 0 }

let sata_ssd () = create ~base_latency:(Engine.us 20) ~ns_per_byte:7.0 ()

let nvme_ssd () = create ~base_latency:(Engine.us 8) ~ns_per_byte:3.5 ()

let operate t ~bytes =
  let now = Engine.now () in
  let start = if t.next_free > now then t.next_free else now in
  let dur =
    t.base_latency + int_of_float (t.ns_per_byte *. float_of_int bytes)
  in
  t.next_free <- start + dur;
  t.ops <- t.ops + 1;
  Engine.sleep (t.next_free - now)

let write t ~bytes =
  t.bytes_written <- t.bytes_written + bytes;
  operate t ~bytes

let read t ~bytes = operate t ~bytes

let queue_depth_time t =
  let now = Engine.now () in
  if t.next_free > now then t.next_free - now else 0

let bytes_written t = t.bytes_written
let ops t = t.ops
