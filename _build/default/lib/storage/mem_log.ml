(* Backed by a Hashtbl keyed by absolute position: trim and truncate are
   then O(removed), and sparse inspection is easy. Positions are dense
   between [first] and [length]. *)

type 'a t = {
  entries : (int, 'a) Hashtbl.t;
  mutable first : int;
  mutable next : int;
}

let create () = { entries = Hashtbl.create 256; first = 0; next = 0 }

let append t v =
  let pos = t.next in
  Hashtbl.replace t.entries pos v;
  t.next <- pos + 1;
  pos

let set t pos v =
  if pos < 0 then invalid_arg "Mem_log.set: negative position";
  Hashtbl.replace t.entries pos v;
  if pos >= t.next then t.next <- pos + 1

let get t pos =
  if pos < t.first || pos >= t.next then None
  else Hashtbl.find_opt t.entries pos

let length t = t.next

let first t = t.first

let truncate t n =
  let n = if n < t.first then t.first else n in
  for pos = n to t.next - 1 do
    Hashtbl.remove t.entries pos
  done;
  if n < t.next then t.next <- n

let trim t n =
  let n = if n > t.next then t.next else n in
  for pos = t.first to n - 1 do
    Hashtbl.remove t.entries pos
  done;
  if n > t.first then t.first <- n

let iter t ~from f =
  let from = if from < t.first then t.first else from in
  for pos = from to t.next - 1 do
    match Hashtbl.find_opt t.entries pos with
    | Some v -> f pos v
    | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter t ~from:t.first (fun pos v -> acc := (pos, v) :: !acc);
  List.rev !acc
