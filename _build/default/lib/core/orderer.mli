(** Background ordering (section 4.3).

    A single fiber per cluster periodically takes the leader's unordered
    entries, assigns them global positions starting at the leader's
    last-ordered-gp, pushes them to the shards (whole records for Erwin-m,
    metadata bindings plus the position-to-shard map for Erwin-st), garbage
    collects the batch on every replica, and only then advances stable-gp —
    the order the correctness argument of section 4.5 depends on.

    The fiber reads the leader's log directly (the paper does this with
    RDMA so the leader's CPU is not consumed) and quiesces while a view
    change is running. *)

open Ll_net

val push_batch :
  Erwin_common.t ->
  (Proto.req, Proto.resp) Rpc.endpoint ->
  truncate_from:int option ->
  (int * Types.entry) list ->
  unit
(** Pushes positioned entries to the shards and waits for all of them to
    acknowledge (replication included). With [truncate_from], every shard
    first logically overwrites its tail from that position — the recovery
    flush path (section 4.5). Also used by {!Reconfig}. *)

val broadcast_stable :
  Erwin_common.t -> (Proto.req, Proto.resp) Rpc.endpoint -> int -> unit
(** Advances the cluster's stable-gp mirror and notifies every shard. *)

val start : Erwin_common.t -> unit
(** Spawns the background-ordering fiber. *)

val is_idle : Erwin_common.t -> bool

val wait_idle : Erwin_common.t -> unit
(** Blocks until no ordering pass is in flight (reconfiguration uses this
    to serialize the recovery flush against normal pushes). *)
