open Ll_sim
open Ll_net
open Erwin_common

let push_batch (cluster : t) ep ~truncate_from slots =
  let shards = cluster.shards in
  let n = List.length shards in
  let targets =
    match cluster.mode with
    | M ->
      (* Deterministic placement: position p -> shard (p mod n). *)
      let groups = Array.make n [] in
      List.iter
        (fun (gp, entry) ->
          match (entry : Types.entry) with
          | Types.Data r -> groups.(gp mod n) <- (gp, r) :: groups.(gp mod n)
          | Types.Meta _ -> assert false)
        slots;
      List.mapi
        (fun i shard ->
          let slots = List.rev groups.(i) in
          (shard, Proto.Msh_push { truncate_from; slots }, slots <> []))
        shards
    | St ->
      let map_chunk =
        List.map
          (fun (gp, entry) ->
            match (entry : Types.entry) with
            | Types.Meta m -> (gp, m.shard)
            | Types.Data _ -> assert false)
          slots
      in
      let groups = Array.make n [] in
      List.iter
        (fun (gp, entry) ->
          match (entry : Types.entry) with
          | Types.Meta m -> groups.(m.shard) <- (gp, Types.entry_rid entry) :: groups.(m.shard)
          | Types.Data _ -> assert false)
        slots;
      (* Every shard stores the full position->shard map chunk, so any
         shard server can answer Ssh_get_map (section 5.3). *)
      List.mapi
        (fun i shard ->
          ( shard,
            Proto.Ssh_order
              { truncate_from; bindings = List.rev groups.(i); map_chunk },
            map_chunk <> [] ))
        shards
  in
  let involved =
    List.filter (fun (_, _, nonempty) -> nonempty || truncate_from <> None) targets
  in
  (* Pushes are retried on loss: binding by explicit position and the
     primary's already-bound filter make them idempotent. *)
  let acks =
    List.map
      (fun (shard, req, _) ->
        let iv = Ivar.create () in
        Engine.spawn ~name:"orderer.push" (fun () ->
            ignore
              (Rpc.call_retry ep ~dst:(Shard.primary_id shard)
                 ~size:(Proto.req_size req) ~timeout:(Engine.ms 20)
                 ~max_tries:100 req);
            Ivar.fill iv ());
        iv)
      involved
  in
  ignore (Ivar.join_all acks : unit list)

let broadcast_stable (cluster : t) ep gp =
  if gp > cluster.stable_gp then cluster.stable_gp <- gp;
  List.iter
    (fun shard ->
      Rpc.send_oneway ep ~dst:(Shard.primary_id shard)
        (Proto.Sh_set_stable { gp }))
    cluster.shards

(* Garbage-collect the ordered batch on one follower. The paper does this
   with RDMA writes that move the ring-buffer head pointers without
   involving the follower's CPU (section 5.6) — crucial under load, where
   a CPU-path GC would queue behind thousands of incoming appends. We
   model it as a raw network round trip plus a direct state update,
   guarded by the follower's view/seal state. *)
let rdma_gc (cluster : t) f ~view ~slots ~new_gp =
  let iv = Ivar.create () in
  let rtt = cluster.cfg.Config.link.Fabric.one_way * 2 in
  Engine.after (rtt / 2) (fun () ->
      if
        Fabric.is_alive (Seq_replica.node f)
        && Seq_replica.view f = view
        && not (Seq_replica.is_sealed f)
      then begin
        Seq_replica.apply_gc f ~slots ~new_gp;
        Engine.after (rtt / 2) (fun () -> ignore (Ivar.try_fill iv true))
      end
      else Engine.after (rtt / 2) (fun () -> ignore (Ivar.try_fill iv false)));
  iv

(* Retry follower GC until every follower confirms (transient slowness) or
   the view moves on (a failure; reconfiguration takes over). *)
let rec gc_followers (cluster : t) ep ~view ~slots ~new_gp =
  if cluster.view <> view || cluster.reconfiguring then false
  else begin
    let acks =
      List.map
        (fun f -> rdma_gc cluster f ~view ~slots ~new_gp)
        (followers cluster)
    in
    match Ivar.join_all_timeout acks ~timeout:(Engine.ms 5) with
    | Some resps when List.for_all Fun.id resps -> true
    | _ -> gc_followers cluster ep ~view ~slots ~new_gp
  end

let pass (cluster : t) ep =
  let ldr = leader cluster in
  if
    (not cluster.reconfiguring)
    && Fabric.is_alive (Seq_replica.node ldr)
    && not (Seq_replica.is_sealed ldr)
  then begin
    let view = cluster.view in
    let slog = Seq_replica.log ldr in
    let entries = Seq_log.unordered slog ~max:cluster.cfg.Config.max_batch () in
    if entries <> [] then begin
      let base = Seq_log.last_ordered_gp slog in
      let slots = List.mapi (fun i e -> (base + i, e)) entries in
      cluster.ordering_in_progress <- true;
      push_batch cluster ep ~truncate_from:None slots;
      (* The batch is on the shards. Collect it replica by replica; only
         when every replica has GC'd may stable-gp move (section 4.5). *)
      if
        cluster.view = view
        && (not cluster.reconfiguring)
        && Fabric.is_alive (Seq_replica.node ldr)
      then begin
        let gc_slots = List.map (fun (gp, e) -> (gp, Types.entry_rid e)) slots in
        let new_gp = base + List.length entries in
        Seq_replica.apply_gc ldr ~slots:gc_slots ~new_gp;
        if gc_followers cluster ep ~view ~slots:gc_slots ~new_gp then begin
          broadcast_stable cluster ep new_gp;
          cluster.batches <- cluster.batches + 1;
          cluster.batched_entries <-
            cluster.batched_entries + List.length entries
        end
      end;
      cluster.ordering_in_progress <- false;
      Waitq.broadcast cluster.order_idle
    end
  end

let start (cluster : t) =
  let ep = new_endpoint cluster ~name:"orderer" in
  Engine.spawn ~name:"orderer" (fun () ->
      let rec loop () =
        Engine.sleep cluster.cfg.Config.order_interval;
        pass cluster ep;
        loop ()
      in
      loop ())

let is_idle (cluster : t) = not cluster.ordering_in_progress

let wait_idle (cluster : t) =
  Waitq.await cluster.order_idle (fun () -> not cluster.ordering_in_progress)
