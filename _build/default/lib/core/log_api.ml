type t = {
  name : string;
  append : size:int -> data:string -> bool;
  read : from:int -> len:int -> Types.record list;
  check_tail : unit -> int;
  trim : upto:int -> bool;
  append_sync : (size:int -> data:string -> int) option;
}

let map_name t name = { t with name }
