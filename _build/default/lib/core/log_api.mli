(** The shared-log client interface (paper figure 2).

    Every shared log in this repository — Erwin-m, Erwin-st, Corfu, Scalog,
    and stand-alone Kafka — exposes a client handle of this type, so the
    example applications and the benchmark harness run unchanged on any of
    them.

    Per the LazyLog abstraction, [append] returns only a durability flag,
    not a position. Eager-ordering systems (Corfu, Scalog) of course also
    know the position internally; they still conform to this interface.
    [append_sync] is the optional eager extension discussed in section 5.5
    ("LazyLog systems can be easily augmented with an appendSync interface
    that eagerly orders records, albeit at the cost of latency"). *)

type t = {
  name : string;  (** system name, for reports *)
  append : size:int -> data:string -> bool;
      (** Append a record; true once the record is durable. Blocking. *)
  read : from:int -> len:int -> Types.record list;
      (** Read [len] records starting at position [from]. Blocking; waits
          until the positions are readable (i.e. bound and stable). *)
  check_tail : unit -> int;
      (** Number of durable records in the log. *)
  trim : upto:int -> bool;
      (** Garbage collect the prefix below position [upto]. *)
  append_sync : (size:int -> data:string -> int) option;
      (** Optional eager append returning the bound position. *)
}

val map_name : t -> string -> t
