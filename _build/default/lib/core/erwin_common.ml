open Ll_sim
open Ll_net
open Ll_control

type mode = M | St

type reconfig_timings = {
  detect : Engine.time;
  seal : Engine.time;
  flush : Engine.time;
  new_view : Engine.time;
  total : Engine.time;
}

type t = {
  cfg : Config.t;
  mode : mode;
  fabric : (Proto.req, Proto.resp) Rpc.msg Fabric.t;
  zk : Zookeeper.t;
  mutable view : int;
  mutable replicas : Seq_replica.t list;
  mutable shards : Shard.t list;
  mutable stable_gp : int;
  mutable reconfiguring : bool;
  view_changed : Waitq.t;
  mutable next_client : int;
  mutable crash_time : Engine.time option;
  mutable reconfig_log : reconfig_timings list;
  mutable ordering_in_progress : bool;
  order_idle : Ll_sim.Waitq.t;
  mutable batches : int;
  mutable batched_entries : int;
}

let create ~cfg ~mode =
  let fabric = Fabric.create ~link:cfg.Config.link () in
  let zk = Zookeeper.create () in
  let replicas =
    List.init cfg.Config.seq_replica_count (fun i ->
        let name = if i = 0 then "seq.leader" else Printf.sprintf "seq.f%d" i in
        Seq_replica.create ~cfg ~fabric ~name)
  in
  let shards =
    List.init cfg.Config.nshards (fun i -> Shard.create ~cfg ~fabric ~shard_id:i)
  in
  let t =
    {
      cfg;
      mode;
      fabric;
      zk;
      view = 0;
      replicas;
      shards;
      stable_gp = 0;
      reconfiguring = false;
      view_changed = Waitq.create ();
      next_client = 0;
      crash_time = None;
      reconfig_log = [];
      ordering_in_progress = false;
      order_idle = Waitq.create ();
      batches = 0;
      batched_entries = 0;
    }
  in
  List.iter
    (fun r ->
      let node = Seq_replica.node r in
      Zookeeper.start_session zk ~name:(Seq_replica.name r) ~alive:(fun () ->
          Fabric.is_alive node))
    replicas;
  t

let leader t =
  match t.replicas with
  | r :: _ -> r
  | [] -> failwith "erwin: no sequencing replicas left"

let followers t = match t.replicas with [] -> [] | _ :: rest -> rest

let shard_of_position t p =
  List.nth t.shards (p mod List.length t.shards)

let add_shard t =
  let s = Shard.create ~cfg:t.cfg ~fabric:t.fabric ~shard_id:(List.length t.shards) in
  t.shards <- t.shards @ [ s ];
  s

let fresh_client_id t =
  let id = t.next_client in
  t.next_client <- id + 1;
  id

let avg_batch t =
  if t.batches = 0 then 0.0
  else float_of_int t.batched_entries /. float_of_int t.batches

let new_endpoint t ~name =
  let node =
    Fabric.add_node t.fabric ~name ~send_overhead:t.cfg.Config.rpc_overhead
      ~recv_overhead:t.cfg.Config.rpc_overhead ()
  in
  Rpc.endpoint t.fabric node

let crash_replica t r =
  t.crash_time <- Some (Engine.now ());
  Fabric.crash t.fabric (Seq_replica.node r)
