lib/core/erwin_m.ml: Client_core Config Erwin_common List Log_api Orderer Printf Reconfig Types
