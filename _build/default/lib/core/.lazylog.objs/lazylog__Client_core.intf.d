lib/core/client_core.mli: Erwin_common Ll_net Proto Rpc Shard Types
