lib/core/shard.ml: Config Disk Engine Fabric Flushed_store Hashtbl Ivar List Ll_net Ll_sim Ll_storage Printf Proto Rpc Types Waitq
