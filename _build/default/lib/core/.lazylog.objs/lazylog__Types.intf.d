lib/core/types.mli: Format
