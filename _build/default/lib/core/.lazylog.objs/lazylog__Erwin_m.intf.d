lib/core/erwin_m.mli: Config Erwin_common Log_api
