lib/core/erwin_st.ml: Client_core Config Engine Erwin_common Hashtbl Ivar List Ll_net Ll_sim Log_api Orderer Printf Proto Reconfig Rpc Seq_replica Shard Types
