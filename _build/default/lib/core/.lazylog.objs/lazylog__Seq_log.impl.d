lib/core/seq_log.ml: Hashtbl List Ll_sim Types Waitq
