lib/core/erwin_common.mli: Config Engine Fabric Ll_control Ll_net Ll_sim Proto Rpc Seq_replica Shard Waitq Zookeeper
