lib/core/shard.mli: Config Engine Fabric Ll_net Ll_sim Proto Rpc Types
