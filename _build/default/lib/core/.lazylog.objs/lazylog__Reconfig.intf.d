lib/core/reconfig.mli: Erwin_common Seq_replica
