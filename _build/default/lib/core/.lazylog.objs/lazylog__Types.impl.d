lib/core/types.ml: Format Hashtbl
