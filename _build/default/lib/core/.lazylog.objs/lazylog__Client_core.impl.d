lib/core/client_core.ml: Config Engine Erwin_common Hashtbl Ivar List Ll_net Ll_sim Proto Rpc Seq_replica Shard Waitq
