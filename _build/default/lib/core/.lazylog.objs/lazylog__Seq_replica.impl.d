lib/core/seq_replica.ml: Config Fabric Hashtbl List Ll_net Ll_sim Proto Rpc Seq_log Types Waitq
