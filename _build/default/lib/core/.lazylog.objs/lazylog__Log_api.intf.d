lib/core/log_api.mli: Types
