lib/core/config.ml: Engine Fabric Ll_net Ll_sim
