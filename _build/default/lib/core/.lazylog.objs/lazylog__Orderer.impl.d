lib/core/orderer.ml: Array Config Engine Erwin_common Fabric Fun Ivar List Ll_net Ll_sim Proto Rpc Seq_log Seq_replica Shard Types Waitq
