lib/core/erwin_st.mli: Config Erwin_common Log_api
