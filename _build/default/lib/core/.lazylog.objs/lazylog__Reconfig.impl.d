lib/core/reconfig.ml: Engine Erwin_common Fabric Ivar List Ll_control Ll_net Ll_sim Orderer Printf Proto Rpc Seq_replica String Types Waitq Zookeeper
