lib/core/seq_log.mli: Types
