lib/core/seq_replica.mli: Config Fabric Ll_net Proto Rpc Seq_log Types
