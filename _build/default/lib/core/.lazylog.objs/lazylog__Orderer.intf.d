lib/core/orderer.mli: Erwin_common Ll_net Proto Rpc Types
