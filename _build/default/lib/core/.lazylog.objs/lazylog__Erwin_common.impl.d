lib/core/erwin_common.ml: Config Engine Fabric List Ll_control Ll_net Ll_sim Printf Proto Rpc Seq_replica Shard Waitq Zookeeper
