lib/core/config.mli: Engine Fabric Ll_net Ll_sim
