lib/core/proto.ml: List Types
