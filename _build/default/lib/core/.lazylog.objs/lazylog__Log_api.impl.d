lib/core/log_api.ml: Types
