(** Write-once synchronization cells for simulation fibers.

    An ivar starts empty, can be filled exactly once, and any number of
    fibers may block on it. Filling wakes every waiter. This is the basic
    building block for RPC completions and joins. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** [fill t v] sets the value. Raises [Invalid_argument] if already full. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising when already full. *)

val is_full : 'a t -> bool

val peek : 'a t -> 'a option

val read : 'a t -> 'a
(** [read t] returns the value, blocking the calling fiber until filled. *)

val read_timeout : 'a t -> timeout:Engine.time -> 'a option
(** [read_timeout t ~timeout] is [Some v] if [t] is filled within [timeout]
    simulated nanoseconds (including already-filled), else [None]. *)

val join_all : 'a t list -> 'a list
(** [join_all ts] waits for every ivar and returns their values in order. *)

val join_all_timeout : 'a t list -> timeout:Engine.time -> 'a list option
(** Waits for every ivar, but gives up [timeout] ns after the call; [None]
    if any ivar was still empty at the deadline. *)
