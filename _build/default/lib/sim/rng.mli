(** Seeded random distributions for workloads and latency jitter.

    Thin helpers over [Random.State] so every stochastic choice in the
    simulator draws from an explicitly seeded stream and runs reproduce
    exactly. *)

type t

val create : seed:int -> t

val of_state : Random.State.t -> t

val split : t -> t
(** [split t] is an independent stream derived from [t] (advances [t]). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val float : t -> float -> float
(** Uniform in [0, x). *)

val bool : t -> p:float -> bool
(** [bool t ~p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val uniform_range : t -> lo:float -> hi:float -> float

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

(** Zipfian key generator as used by YCSB. *)
module Zipf : sig
  type gen

  val create : t -> n:int -> theta:float -> gen
  (** [create rng ~n ~theta] generates keys in [0, n) with zipfian skew
      [theta] (YCSB default 0.99). *)

  val next : gen -> int
end
