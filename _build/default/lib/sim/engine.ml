type time = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000
let us_f x = int_of_float ((x *. 1_000.) +. 0.5)
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.

type event = { at : time; seq : int; fn : unit -> unit }

let event_cmp a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

(* Global scheduler state. The simulation is single-domain and runs are not
   reentrant, so plain mutable globals are safe and fast. *)
let queue : event Heap.t = Heap.create ~cmp:event_cmp
let clock = ref 0
let seqno = ref 0
let running = ref false
let stopping = ref false
let fibers = ref 0
let rng = ref (Random.State.make [| 0 |])

exception Fiber_failure of string * exn

let require_running what =
  if not !running then failwith (what ^ ": not inside Engine.run")

let schedule at fn =
  let at = if at < !clock then !clock else at in
  incr seqno;
  Heap.push queue { at; seq = !seqno; fn }

type 'a waker = { mutable fired : bool; mutable resume : 'a -> unit }

let wake w v =
  if w.fired then false
  else begin
    w.fired <- true;
    (* Resume on a fresh event so wake never re-enters the waker's fiber
       from the middle of the caller's slice: determinism and no surprise
       reentrancy. *)
    schedule !clock (fun () -> w.resume v);
    true
  end

let is_woken w = w.fired

type _ Effect.t +=
  | Now : time Effect.t
  | Sleep : time -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> unit Effect.t
  | Suspend : ('a waker -> unit) -> 'a Effect.t

let now () =
  require_running "now";
  Effect.perform Now

let sleep d =
  require_running "sleep";
  Effect.perform (Sleep (if d < 0 then 0 else d))

let sleep_until t =
  let n = now () in
  sleep (if t > n then t - n else 0)

let spawn ?(name = "fiber") f =
  require_running "spawn";
  Effect.perform (Spawn (name, f))

let yield () = sleep 0

let suspend register =
  require_running "suspend";
  Effect.perform (Suspend register)

let rec exec name f =
  let open Effect.Deep in
  incr fibers;
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match e with
          | Fiber_failure _ -> raise e
          | e -> raise (Fiber_failure (name, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Now ->
            Some (fun (k : (a, unit) continuation) -> continue k !clock)
          | Sleep d ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule (!clock + d) (fun () -> continue k ()))
          | Spawn (child_name, g) ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule !clock (fun () -> exec child_name g);
                continue k ())
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let w = { fired = false; resume = (fun v -> continue k v) } in
                register w)
          | _ -> None);
    }

let at t fn =
  require_running "at";
  schedule t (fun () -> exec "at" fn)

let after d fn = at (!clock + d) fn

let random_state () = !rng

let stop () = stopping := true

let fiber_count () = !fibers

let run ?(seed = 42) ?until main =
  if !running then failwith "Engine.run: runs must not nest";
  running := true;
  stopping := false;
  clock := 0;
  seqno := 0;
  fibers := 0;
  Heap.clear queue;
  rng := Random.State.make [| seed; 0x1a2706 |];
  let finish () =
    running := false;
    Heap.clear queue
  in
  Fun.protect ~finally:finish (fun () ->
      schedule 0 (fun () -> exec "main" main);
      let continue_loop = ref true in
      while !continue_loop && not !stopping do
        match Heap.pop queue with
        | None -> continue_loop := false
        | Some ev -> (
          match until with
          | Some u when ev.at > u -> continue_loop := false
          | _ ->
            clock := ev.at;
            ev.fn ())
      done)
