type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x9e3779b9 |]

let of_state s = s

let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]

let int t n = Random.State.int t n

let float t x = Random.State.float t x

let bool t ~p = Random.State.float t 1.0 < p

let exponential t ~mean =
  (* Inverse-CDF sampling; guard against log 0. *)
  let u = 1.0 -. Random.State.float t 1.0 in
  -.mean *. log u

let uniform_range t ~lo ~hi = lo +. Random.State.float t (hi -. lo)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(Random.State.int t (Array.length arr))

module Zipf = struct
  (* Standard YCSB zipfian generator (Gray et al., "Quickly Generating
     Billion-Record Synthetic Databases"). *)
  type gen = {
    rng : t;
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
  }

  let zeta n theta =
    let acc = ref 0.0 in
    for i = 1 to n do
      acc := !acc +. (1.0 /. (float_of_int i ** theta))
    done;
    !acc

  let create rng ~n ~theta =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { rng; n; theta; alpha; zetan; eta }

  let next g =
    let u = Random.State.float g.rng 1.0 in
    let uz = u *. g.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** g.theta) then 1
    else
      let x =
        float_of_int g.n
        *. (((g.eta *. u) -. g.eta +. 1.0) ** g.alpha)
      in
      let k = int_of_float x in
      if k >= g.n then g.n - 1 else if k < 0 then 0 else k
end
