lib/sim/waitq.ml: Engine List
