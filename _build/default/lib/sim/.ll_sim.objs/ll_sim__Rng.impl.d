lib/sim/rng.ml: Array Random
