lib/sim/stats.mli: Engine
