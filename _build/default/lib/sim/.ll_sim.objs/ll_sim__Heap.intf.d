lib/sim/heap.mli:
