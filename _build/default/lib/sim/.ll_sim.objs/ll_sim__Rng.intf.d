lib/sim/rng.mli: Random
