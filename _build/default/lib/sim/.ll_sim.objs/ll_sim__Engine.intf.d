lib/sim/engine.mli: Random
