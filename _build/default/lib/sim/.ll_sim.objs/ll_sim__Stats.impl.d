lib/sim/stats.ml: Array Engine Hashtbl List Stdlib
