(** Unbounded FIFO channels between simulation fibers.

    Messages are delivered in send order; multiple receivers are served in
    the order they blocked. This is the delivery surface the simulated
    network writes into. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Never blocks. *)

val recv : 'a t -> 'a
(** Blocks the calling fiber until a message is available. *)

val recv_timeout : 'a t -> timeout:Engine.time -> 'a option

val try_recv : 'a t -> 'a option

val length : 'a t -> int
(** Number of queued (undelivered) messages. *)

val clear : 'a t -> unit
(** Drops all queued messages (blocked receivers stay blocked). *)
