(** Condition-variable-style wait queues.

    A [Waitq.t] lets fibers block until some predicate over shared mutable
    state becomes true; whoever mutates that state calls {!broadcast}.
    Used for slow-path reads ("wait until stable-gp >= p"), ring-buffer
    backpressure, and similar protocol waits. *)

type t

val create : unit -> t

val await : t -> (unit -> bool) -> unit
(** [await t pred] returns immediately if [pred ()]; otherwise blocks until
    a {!broadcast} after which [pred ()] is true (re-blocking as needed). *)

val await_timeout : t -> timeout:Engine.time -> (unit -> bool) -> bool
(** Like {!await} but gives up after [timeout] ns; returns whether the
    predicate held on exit. *)

val broadcast : t -> unit
(** Wake all current waiters so they re-check their predicates. *)

val waiters : t -> int
