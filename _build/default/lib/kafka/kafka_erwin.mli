(** Erwin-m over off-the-shelf Kafka shards (section 6.8).

    Demonstrates the black-box property: the same coordination-free
    sequencing layer (eRPC-class, 1 RTT appends) is bolted on in front of
    unmodified Kafka partitions. Clients append to the sequencing replicas
    only; a background fiber orders the records and produces them, in
    batches, to partition [position mod npartitions] — giving linearizable
    total order {e across} Kafka shards at microsecond append latencies,
    while stand-alone Kafka (eager per-shard ordering with acks=all and
    producer batching) takes milliseconds. *)

val create :
  ?cfg:Lazylog.Config.t -> ?kafka_config:Kafka.config -> unit ->
  Lazylog.Erwin_common.t * Kafka.t
(** Builds an Erwin cluster with {e zero} native shards plus a Kafka
    cluster, and starts the bridging background orderer. The Erwin
    cluster's [stable_gp] advances as batches land on Kafka. *)

val client : Lazylog.Erwin_common.t * Kafka.t -> Lazylog.Log_api.t
(** Appends through the sequencing layer (1 RTT); reads fetch from the
    Kafka partition leaders via the deterministic mapping. *)
