lib/kafka/kafka.mli: Engine Fabric Lazylog Ll_net Ll_sim
