lib/kafka/kafka_erwin.mli: Kafka Lazylog
