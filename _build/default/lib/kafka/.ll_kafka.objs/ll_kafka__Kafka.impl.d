lib/kafka/kafka.ml: Array Disk Engine Fabric Flushed_store Ivar Lazylog List Ll_net Ll_sim Ll_storage Printf Rpc Waitq
