lib/kafka/kafka_erwin.ml: Array Client_core Config Engine Erwin_common Fun Ivar Kafka Lazylog List Ll_net Ll_sim Log_api Printf Proto Seq_log Seq_replica Types
