(** A Kafka-like per-shard-order shared log.

    Each "shard" is a topic partition served by a leader broker and
    replicated to followers with acks=all semantics (the safe
    configuration; section 2.2 notes the acks=1 shortcut loses data).
    Producers batch client-side (linger + max batch), brokers assign
    offsets in arrival order — eager per-shard ordering — and replicate
    synchronously before acknowledging. Endpoints carry gRPC-class
    software overheads, matching the JVM client stack.

    Used two ways in the paper's evaluation: stand-alone (the baseline of
    figure 15) and as the black-box shard under Erwin-m's sequencing layer
    ({!Kafka_erwin}), which turns per-shard order into a low-latency total
    order across partitions (section 6.8). *)

open Ll_sim
open Ll_net

type config = {
  npartitions : int;
  replicas : int;  (** brokers per partition, leader included *)
  linger : Engine.time;  (** producer-side batching delay *)
  max_batch : int;  (** records per produce request *)
  broker_base_ns : int;
  rpc_overhead : Engine.time;
  link : Fabric.link;
  disk : Lazylog.Config.disk_kind;
}

val default_config : config
(** 1 partition, 3 replicas, 5 ms linger, gRPC-class overheads. *)

type t

val create : ?config:config -> unit -> t
(** Must run inside {!Ll_sim.Engine.run}. *)

val partitions : t -> int

(** Client-side batching producer (linger + max batch, like the Java
    client). *)
module Producer : sig
  type p

  val append : p -> Lazylog.Types.record -> unit
  (** Blocks until the record's batch is acknowledged (acks=all). *)
end

val producer : t -> partition:int -> Producer.p

(** {1 Raw partition operations (used by the Erwin-m adapter)} *)

val produce_batch : t -> partition:int -> Lazylog.Types.record list -> int
(** Synchronously appends a batch through the leader (replicated before
    returning); returns the base offset. *)

val fetch :
  t -> partition:int -> offset:int -> max:int ->
  (int * Lazylog.Types.record) list
(** Reads records from the partition leader, blocking until [offset]
    exists. *)

val truncate_partition : t -> partition:int -> int -> unit
(** Logical tail overwrite: delete records at offsets [>= n] (how a Kafka
    shard supports Erwin-m's view-change flush, section 4.1). *)

val partition_tail : t -> partition:int -> int

val client_log : t -> Lazylog.Log_api.t
(** Stand-alone Kafka as a [Log_api.t] (the figure 15 baseline): appends
    round-robin over partitions through shared batching producers; reads
    interpret positions as (partition, offset) in round-robin order, which
    is only a per-partition order — the point of section 6.8. *)
