lib/net/rpc.mli: Engine Fabric Ivar Ll_sim
