lib/net/fabric.ml: Array Engine Hashtbl Ll_sim Mailbox Rng
