lib/net/rpc.ml: Engine Fabric Hashtbl Ivar Ll_sim
