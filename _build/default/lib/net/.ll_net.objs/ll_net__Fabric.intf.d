lib/net/fabric.mli: Engine Ll_sim
