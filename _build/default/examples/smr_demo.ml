(* State machine replication over LazyLog — the paper's worst case
   (section 3.2): every submit appends a command and immediately reads to
   the tail, so reads keep hitting the unordered portion. LazyLog still
   preserves overall performance: the ordering cost just moves from the
   append to the first read of each batch.

   Run with:  dune exec examples/smr_demo.exe *)

open Ll_sim
open Lazylog
open Ll_apps

let () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let balance = ref 0 in
      let apply cmd =
        match String.split_on_char ' ' cmd with
        | [ "add"; n ] -> balance := !balance + int_of_string n
        | [ "sub"; n ] -> balance := !balance - int_of_string n
        | _ -> ()
      in
      let smr = Smr.create ~log:(Erwin_m.client cluster) ~apply in
      for i = 1 to 50 do
        let cmd = if i mod 3 = 0 then "sub 1" else "add 2" in
        ignore (Smr.submit smr cmd)
      done;
      let lat = Smr.submit_latency smr in
      Printf.printf
        "50 commands: applied=%d, balance=%d, submit latency mean=%.1fus p99=%.1fus\n"
        (Smr.applied smr) !balance
        (Stats.Reservoir.mean_us lat)
        (Stats.Reservoir.percentile_us lat 99.0);
      Printf.printf
        "(compare: an eager log pays this ordering cost on every append instead)\n";
      Engine.stop ())
