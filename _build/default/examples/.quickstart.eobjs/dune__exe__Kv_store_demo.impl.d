examples/kv_store_demo.ml: Engine Erwin_m Kv_store Lazylog Ll_apps Ll_sim Printf
