examples/kv_store_demo.mli:
