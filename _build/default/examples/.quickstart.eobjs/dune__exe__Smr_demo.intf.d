examples/smr_demo.mli:
