examples/smr_demo.ml: Engine Erwin_m Lazylog Ll_apps Ll_sim Printf Smr Stats String
