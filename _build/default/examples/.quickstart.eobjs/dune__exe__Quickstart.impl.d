examples/quickstart.ml: Config Engine Erwin_m Lazylog List Ll_sim Printf Types
