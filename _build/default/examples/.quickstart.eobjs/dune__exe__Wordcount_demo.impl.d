examples/wordcount_demo.ml: Engine Erwin_m Lazylog List Ll_apps Ll_sim Printf Stats String Wordcount
