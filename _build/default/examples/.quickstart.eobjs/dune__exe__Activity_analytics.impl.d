examples/activity_analytics.ml: Config Engine Erwin_m Hashtbl Lazylog List Ll_sim Ll_workload Printf Rng Stats String Types
