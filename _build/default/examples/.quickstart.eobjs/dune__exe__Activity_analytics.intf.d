examples/activity_analytics.mli:
