examples/message_queue.mli:
