examples/log_aggregation_demo.ml: Engine Erwin_m Lazylog List Ll_apps Ll_sim Log_aggregation Printf Types
