examples/kafka_total_order.mli:
