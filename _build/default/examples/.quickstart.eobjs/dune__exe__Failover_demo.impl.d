examples/failover_demo.ml: Engine Erwin_common Erwin_m Lazylog List Ll_sim Printf
