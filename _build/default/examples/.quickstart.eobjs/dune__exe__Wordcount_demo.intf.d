examples/wordcount_demo.mli:
