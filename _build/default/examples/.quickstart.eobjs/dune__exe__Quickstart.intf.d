examples/quickstart.mli:
