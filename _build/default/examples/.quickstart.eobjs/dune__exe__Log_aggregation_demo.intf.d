examples/log_aggregation_demo.mli:
