examples/kafka_total_order.ml: Engine Lazylog List Ll_kafka Ll_sim Printf
