examples/message_queue.ml: Engine Erwin_m Hashtbl Lazylog List Ll_sim Printf String Types
