(* Audit-logged transaction processing (paper section 6.11): every
   account transaction executes against a local RocksDB-like store and is
   synchronously audit-logged to the shared log.

   Run with:  dune exec examples/log_aggregation_demo.exe *)

open Ll_sim
open Lazylog
open Ll_apps

let () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let audit_log = Erwin_m.client cluster in
      let srv = Log_aggregation.create ~log:audit_log () in

      ignore (Log_aggregation.execute srv (Create { account = 1 }));
      ignore (Log_aggregation.execute srv (Create { account = 2 }));
      ignore (Log_aggregation.execute srv (Deposit { account = 1; amount = 500 }));

      let t0 = Engine.now () in
      let b =
        Log_aggregation.execute srv (Transfer { src = 1; dst = 2; amount = 120 })
      in
      Printf.printf
        "transfer done in %.1f us (execution + synchronous audit append); src balance=%d\n"
        (Engine.to_us (Engine.now () - t0))
        b;

      let t0 = Engine.now () in
      let b = Log_aggregation.execute srv (Balance { account = 2 }) in
      Printf.printf
        "balance query in %.1f us — logging dominates reads (~4us execution); balance=%d\n"
        (Engine.to_us (Engine.now () - t0))
        b;

      (* The audit trail is durable on the shared log, ready for offline
         analysis. *)
      Engine.sleep (Engine.ms 3);
      let tail = audit_log.check_tail () in
      let records = audit_log.read ~from:0 ~len:tail in
      Printf.printf "audit trail (%d records):\n" tail;
      List.iter
        (fun (r : Types.record) -> Printf.printf "  %s\n" r.data)
        records;
      Engine.stop ())
