(* Erwin-m as a bolt-on over off-the-shelf Kafka shards (paper section
   6.8): per-partition Kafka becomes a linearizable total order across
   partitions, with microsecond appends instead of milliseconds.

   Run with:  dune exec examples/kafka_total_order.exe *)

open Ll_sim

let mean_append (log : Lazylog.Log_api.t) n =
  let t0 = Engine.now () in
  for i = 1 to n do
    ignore (log.append ~size:4096 ~data:(Printf.sprintf "%s-%d" log.name i))
  done;
  Engine.to_us (Engine.now () - t0) /. float_of_int n

let () =
  Engine.run (fun () ->
      (* Stand-alone Kafka: producer batching + acks=all replication. *)
      let kafka =
        Ll_kafka.Kafka.create
          ~config:{ Ll_kafka.Kafka.default_config with npartitions = 3 } ()
      in
      let kafka_log = Ll_kafka.Kafka.client_log kafka in
      let kafka_us = mean_append kafka_log 30 in
      Printf.printf "stand-alone kafka (3 partitions): %.0f us/append, per-shard order only\n"
        kafka_us;
      Engine.stop ());
  Engine.run (fun () ->
      (* The same Kafka, behind Erwin-m's sequencing layer. *)
      let sys =
        Ll_kafka.Kafka_erwin.create
          ~kafka_config:{ Ll_kafka.Kafka.default_config with npartitions = 3 } ()
      in
      let log = Ll_kafka.Kafka_erwin.client sys in
      let erwin_us = mean_append log 30 in
      Printf.printf "erwin-m over kafka  (3 partitions): %.1f us/append, TOTAL order\n"
        erwin_us;
      Engine.sleep (Engine.ms 30);
      let records = log.read ~from:0 ~len:(log.check_tail ()) in
      Printf.printf "read back %d records in one global order across partitions\n"
        (List.length records);
      Engine.stop ())
