(* Sequencing-layer failure and reconfiguration (paper section 4.5):
   crash the sequencing leader mid-workload and watch the view change
   seal, flush, and resume — with every acknowledged record intact.

   Run with:  dune exec examples/failover_demo.exe *)

open Ll_sim
open Lazylog

let () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let acked = ref 0 in
      for w = 0 to 3 do
        let log = Erwin_m.client cluster in
        Engine.spawn (fun () ->
            for i = 1 to 500 do
              if log.append ~size:512 ~data:(Printf.sprintf "%d-%d" w i) then
                incr acked
            done)
      done;
      Engine.after (Engine.ms 2) (fun () ->
          Printf.printf "t=%.1fms: crashing the sequencing LEADER (stable-gp=%d)\n"
            (Engine.to_ms (Engine.now ()))
            cluster.stable_gp;
          Erwin_common.crash_replica cluster (Erwin_common.leader cluster));
      Engine.after (Engine.ms 80) (fun () ->
          Printf.printf "t=%.1fms: view=%d, %d live replicas, %d acked appends\n"
            (Engine.to_ms (Engine.now ()))
            cluster.view
            (List.length cluster.replicas)
            !acked;
          (match cluster.reconfig_log with
          | t :: _ ->
            Printf.printf
              "reconfiguration: detect=%.1fms seal=%.0fus flush=%.0fus new-view=%.1fms total=%.1fms\n"
              (Engine.to_ms t.detect) (Engine.to_us t.seal)
              (Engine.to_us t.flush) (Engine.to_ms t.new_view)
              (Engine.to_ms t.total)
          | [] -> print_endline "no reconfiguration recorded?!");
          let log = Erwin_m.client cluster in
          let tail = log.check_tail () in
          let records = log.read ~from:0 ~len:tail in
          Printf.printf "log intact after fail-over: tail=%d, readable=%d, acked=%d\n"
            tail (List.length records) !acked;
          Engine.stop ()))
