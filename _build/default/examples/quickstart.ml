(* Quickstart: bring up an Erwin-m LazyLog cluster, append, read, and see
   the lazily-ordered log at work.

   Run with:  dune exec examples/quickstart.exe *)

open Ll_sim
open Lazylog

let () =
  Engine.run (fun () ->
      (* A LazyLog deployment: 3 sequencing replicas and 2 shards (each a
         primary plus two backups). *)
      let cluster = Erwin_m.create ~cfg:{ Config.default with nshards = 2 } () in
      let log = Erwin_m.client cluster in

      (* Appends complete in 1 RTT: records are durable on all sequencing
         replicas, but not yet bound to log positions. *)
      let t0 = Engine.now () in
      for i = 1 to 10 do
        let ok = log.append ~size:4096 ~data:(Printf.sprintf "event-%d" i) in
        assert ok
      done;
      Printf.printf "appended 10 records in %.1f us (%.1f us each)\n"
        (Engine.to_us (Engine.now () - t0))
        (Engine.to_us (Engine.now () - t0) /. 10.);

      (* checkTail counts durable records — including not-yet-ordered
         ones. stable-gp is how far binding has progressed. *)
      Printf.printf "tail=%d, stable-gp=%d (ordering runs in background)\n"
        (log.check_tail ()) cluster.stable_gp;

      (* Reads are allowed only up to stable-gp; a read into the unordered
         portion waits for background ordering (the slow path). *)
      let t0 = Engine.now () in
      let records = log.read ~from:0 ~len:10 in
      Printf.printf "read %d records in %.1f us (first read paid the ordering wait)\n"
        (List.length records)
        (Engine.to_us (Engine.now () - t0));
      List.iter
        (fun (r : Types.record) -> Printf.printf "  %s\n" r.data)
        records;
      Printf.printf "stable-gp is now %d\n" cluster.stable_gp;

      (* The appendSync extension (section 5.5) eagerly returns the bound
         position, at the cost of waiting for ordering. *)
      (match log.append_sync with
      | Some append_sync ->
        let pos = append_sync ~size:512 ~data:"sync-me" in
        Printf.printf "appendSync bound the record at position %d\n" pos
      | None -> ());

      Engine.stop ())
