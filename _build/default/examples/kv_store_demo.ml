(* A Firescroll-style writer-reader-decoupled KV store over LazyLog
   (paper section 6.11): puts append to the shared log without needing
   positions; a read server consumes the log at its own pace.

   Run with:  dune exec examples/kv_store_demo.exe *)

open Ll_sim
open Lazylog
open Ll_apps

let () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let kv =
        Kv_store.create
          ~log:(Erwin_m.client cluster)
          ~reader_log:(Erwin_m.client cluster)
          ()
      in
      (* A burst of writes through the write-processing server. *)
      let t0 = Engine.now () in
      for i = 1 to 100 do
        Kv_store.put kv ~key:(Printf.sprintf "user:%03d" (i mod 10))
          ~value:(Printf.sprintf "profile-v%d" i)
      done;
      Printf.printf "100 puts in %.1f us (%.1f us/put)\n"
        (Engine.to_us (Engine.now () - t0))
        (Engine.to_us (Engine.now () - t0) /. 100.);

      (* Reads are served by the read server from its local state and are
         eventually consistent; right after the burst it may still lag. *)
      Printf.printf "reader lag right after the burst: %d records\n"
        (Kv_store.lag kv);
      Engine.sleep (Engine.ms 5);
      Printf.printf "after 5 ms: lag=%d, applied=%d\n" (Kv_store.lag kv)
        (Kv_store.applied kv);
      (match Kv_store.get kv ~key:"user:003" with
      | Some v -> Printf.printf "get user:003 -> %s (latest write wins)\n" v
      | None -> print_endline "get user:003 -> missing?!");

      Engine.stop ())
