(* Activity logging + offline analytics (paper section 3.1): a
   marketplace logs product views/purchases to the shared log at low
   latency; an analytics job wakes up periodically, processes everything
   new — by which time background ordering long finished, so every read is
   fast-path — and trims the consumed prefix.

   Run with:  dune exec examples/activity_analytics.exe *)

open Ll_sim
open Lazylog

let () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create ~cfg:{ Config.default with nshards = 2 } () in
      let rng = Rng.create ~seed:9 in
      let products = [| "boots"; "lamp"; "kettle"; "bike"; "desk" |] in

      (* Ingestion: activity events at 20K/s from the web tier. *)
      let writer = Erwin_m.client cluster in
      let append_lat = Stats.Reservoir.create () in
      let t_end = Engine.ms 30 in
      Ll_workload.Arrival.open_loop ~rate:20_000. ~until:t_end (fun i ->
          let product = Rng.pick rng products in
          let kind = if Rng.bool rng ~p:0.1 then "buy" else "view" in
          let t0 = Engine.now () in
          ignore
            (writer.append ~size:200
               ~data:(Printf.sprintf "%s:%s:%d" kind product i));
          Stats.Reservoir.add append_lat (Engine.now () - t0));

      (* Analytics: every 10 ms (standing in for "every hour"), read the
         new suffix, update per-product counters, trim the consumed
         prefix. *)
      let analytics = Erwin_m.client cluster in
      let views = Hashtbl.create 8 and buys = Hashtbl.create 8 in
      let cursor = ref 0 in
      let read_lat = Stats.Reservoir.create () in
      let bump tbl k =
        Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0)
      in
      Engine.spawn (fun () ->
          let rec job () =
            Engine.sleep (Engine.ms 10);
            let tail = analytics.check_tail () in
            if tail > !cursor then begin
              let t0 = Engine.now () in
              let records = analytics.read ~from:!cursor ~len:(tail - !cursor) in
              Stats.Reservoir.add read_lat (Engine.now () - t0);
              List.iter
                (fun (r : Types.record) ->
                  match String.split_on_char ':' r.data with
                  | [ "view"; p; _ ] -> bump views p
                  | [ "buy"; p; _ ] -> bump buys p
                  | _ -> ())
                records;
              cursor := tail;
              ignore (analytics.trim ~upto:tail)
            end;
            if Engine.now () < t_end + Engine.ms 20 then job ()
          in
          job ());

      Engine.at (t_end + Engine.ms 25) (fun () ->
          Printf.printf
            "ingested %d events; append mean %.1f us (the latency the web tier sees)\n"
            !cursor
            (Stats.Reservoir.mean_us append_lat);
          Printf.printf
            "analytics batches: %d reads, mean %.0f us each — all fast-path (readers lag writers)\n"
            (Stats.Reservoir.count read_lat)
            (Stats.Reservoir.mean_us read_lat);
          print_endline "top products by views:";
          Hashtbl.fold (fun k v acc -> (v, k) :: acc) views []
          |> List.sort compare |> List.rev
          |> List.iteri (fun i (v, k) ->
                 if i < 3 then
                   Printf.printf "  %-8s %5d views, %d buys\n" k v
                     (try Hashtbl.find buys k with Not_found -> 0));
          Engine.stop ()))
