(* Journaled stream-processing word count (paper section 6.11): workers
   checkpoint produced state to the shared log before emitting, giving
   fault tolerance and exactly-once semantics; a fail-over instance
   rebuilds its state from the journal.

   Run with:  dune exec examples/wordcount_demo.exe *)

open Ll_sim
open Lazylog
open Ll_apps

let () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let wc = Wordcount.create ~log:(Erwin_m.client cluster) ~batch:8 () in
      let text =
        "the lazy log defers the order the eager log pays the order up front \
         the lazy log wins on latency"
      in
      let inputs = String.split_on_char ' ' text in
      let emitted = ref 0 in
      let lat = Wordcount.run wc ~inputs (fun _ -> incr emitted) in
      Printf.printf "processed %d words, mean pipeline latency %.1f us\n"
        !emitted (Stats.Reservoir.mean_us lat);
      print_endline "top counts:";
      Wordcount.counts wc
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.filteri (fun i _ -> i < 5)
      |> List.iter (fun (w, c) -> Printf.printf "  %-8s %d\n" w c);

      (* Crash-and-recover: a fresh worker instance replays the journal. *)
      Engine.sleep (Engine.ms 5);
      let replacement = Wordcount.create ~log:(Erwin_m.client cluster) ~batch:8 () in
      let replayed =
        Wordcount.recover replacement ~from_log:(Erwin_m.client cluster)
      in
      Printf.printf "fail-over: replayed %d checkpoints; states match: %b\n"
        replayed
        (Wordcount.counts wc = Wordcount.counts replacement);
      Engine.stop ())
