(* Message queue over the shared log (paper section 3.1): producers
   enqueue work items with 1 RTT appends; consumers — time-decoupled, at
   a lower rate, as the paper's quoted practice — pull items in order and
   process them. Items need a safe, ordered delivery, not an eagerly
   known queue position.

   Run with:  dune exec examples/message_queue.exe *)

open Ll_sim
open Lazylog

let () =
  Engine.run (fun () ->
      let cluster = Erwin_m.create () in
      let total = 200 in

      (* Two producers enqueue work items. *)
      let produced = ref 0 in
      for p = 0 to 1 do
        let log = Erwin_m.client cluster in
        Engine.spawn (fun () ->
            for i = 1 to total / 2 do
              ignore
                (log.append ~size:300
                   ~data:(Printf.sprintf "job-%d-%d" p i));
              incr produced;
              Engine.sleep (Engine.us 20)
            done)
      done;

      (* One consumer drains at a deliberately lower rate ("consumed at a
         later time or at a much lower rate than it is produced"). *)
      let consumer = Erwin_m.client cluster in
      let consumed = ref 0 in
      let in_order = ref true in
      let last_per_producer = Hashtbl.create 2 in
      Engine.spawn (fun () ->
          let cursor = ref 0 in
          let rec drain () =
            let tail = consumer.check_tail () in
            if !cursor < tail then begin
              let items = consumer.read ~from:!cursor ~len:(min 10 (tail - !cursor)) in
              List.iter
                (fun (r : Types.record) ->
                  (match String.split_on_char '-' r.data with
                  | [ _; p; i ] ->
                    let p = int_of_string p and i = int_of_string i in
                    let last = try Hashtbl.find last_per_producer p with Not_found -> 0 in
                    if i <> last + 1 then in_order := false;
                    Hashtbl.replace last_per_producer p i
                  | _ -> ());
                  incr consumed;
                  Engine.sleep (Engine.us 50) (* processing *))
                items;
              cursor := !cursor + List.length items
            end
            else Engine.sleep (Engine.us 200);
            if !consumed < total then drain ()
          in
          drain ();
          Printf.printf "produced=%d consumed=%d\n" !produced !consumed;
          Printf.printf "per-producer FIFO preserved: %b\n" !in_order;
          Printf.printf
            "backlog let the consumer lag the producers the whole run —\n";
          Printf.printf
            "every read was fast-path; producers never waited on ordering.\n";
          Engine.stop ()))
