(* Figure 14: reads in Erwin-st at 200K appends/s, reading 25 records at a
   time, with a large lag, a small (3 ms) lag, and no lag. (The paper's
   large lag is 1 s; we use 100 ms to bound simulation time — the point is
   that it exceeds any ordering delay, so all reads are fast-path.) *)

open Ll_sim
open Harness

let run () =
  section "Figure 14: Erwin-st Reads (200K appends/s, 25-record reads, 3 shards NVMe)";
  let duration = dur 60 250 in
  let cfg =
    Lazylog.Config.scaled_cluster
      { Lazylog.Config.default with nshards = 3; shard_backup_count = 1 }
  in
  table_header [ "lag"; "read_us_mean"; "read_us_p99"; "append_us" ];
  List.iter
    (fun (label, lag) ->
      let app, rd =
        append_and_read (erwin_st ~cfg ()) ~rate:200_000. ~size:4096 ~duration
          ~lag ~chunk:25
      in
      row label
        [
          f1 (Stats.Reservoir.mean_us rd);
          f1 (Stats.Reservoir.percentile_us rd 99.0);
          f1 (Stats.Reservoir.mean_us app);
        ])
    [
      (* The paper's "long" lag is 1 s; any lag beyond the ordering delay
         behaves identically, so half the measurement window suffices. *)
      ("long lag (paper: 1s)", duration / 2);
      ("lag 3ms", Engine.ms 3);
      ("no-lag", 0);
    ];
  note "with lag, no reads take the slow path; even no-lag is only slightly worse"
