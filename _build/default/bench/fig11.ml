(* Figure 11: impact of the append rate on read latency. A single reader
   aggressively consumes the log; at low append rates background batches
   are small and most reads take the slow path, at high rates batches are
   large and reads are fast. Also reports the mean background-ordering
   batch size (right axis of 11a) and read-latency CDFs at 5K and 45K. *)

open Ll_sim
open Lazylog
open Ll_workload
open Harness

let reader_experiment ~rate ~duration =
  Runner.in_sim (fun () ->
      let cluster = Erwin_m.create () in
      let clients = Array.init 8 (fun _ -> Erwin_m.client cluster) in
      let reader = Erwin_m.client cluster in
      let read_lat = Stats.Reservoir.create () in
      let reads = ref 0 in
      let t_end = Engine.now () + Engine.ms 5 + duration in
      Arrival.open_loop ~rate ~until:t_end (fun i ->
          ignore (clients.(i mod 8).Log_api.append ~size:4096 ~data:(string_of_int i)));
      (* Single aggressive reader: reads one record at a time as soon as
         it is durable. Its own loop latency caps it around ~40K/s. *)
      let cursor = ref 0 in
      Engine.spawn (fun () ->
          let rec loop () =
            if Engine.now () < t_end then begin
              let tail = reader.Log_api.check_tail () in
              if tail > !cursor then begin
                let t0 = Engine.now () in
                ignore (reader.Log_api.read ~from:!cursor ~len:1);
                Stats.Reservoir.add read_lat (Engine.now () - t0);
                incr reads;
                incr cursor
              end
              else Engine.sleep (Engine.us 5);
              loop ()
            end
          in
          loop ());
      Engine.sleep_until (t_end + Engine.ms 10);
      let read_rate = Stats.throughput_per_sec ~count:!reads ~dur:(Engine.ms 5 + duration) in
      (read_lat, read_rate, Erwin_common.avg_batch cluster))

let run () =
  section "Figure 11: Append Rate vs Read Latency (single aggressive reader)";
  let duration = dur 80 300 in
  table_header [ "append_rate"; "read_us_mean"; "read_rate"; "avg_batch" ];
  let cdf5 = ref None and cdf45 = ref None in
  List.iter
    (fun rate ->
      let lat, read_rate, batch = reader_experiment ~rate ~duration in
      row (kops rate)
        [ f1 (Stats.Reservoir.mean_us lat); kops read_rate; f1 batch ];
      if rate = 5_000. then cdf5 := Some lat;
      if rate = 45_000. then cdf45 := Some lat)
    [ 5_000.; 15_000.; 25_000.; 35_000.; 45_000. ];
  note "low rates -> small ordering batches -> slow-path reads dominate";
  (match !cdf5 with Some l -> print_cdf "@5K" l ~points:8 | None -> ());
  (match !cdf45 with Some l -> print_cdf "@45K" l ~points:8 | None -> ())
