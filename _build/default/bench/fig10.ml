(* Figure 10: performance with periodic reads. The application
   periodically checkTails and reads up to the tail; longer periods give
   background ordering time to catch up, so reads get faster. Rates 20K
   and 32K appends/s; periods 0.1–3 ms. *)

open Ll_sim
open Lazylog
open Ll_workload
open Harness

let periodic_read_latency ~rate ~period ~duration =
  Runner.in_sim (fun () ->
      (* Throughput-optimized background ordering (the paper's section 6.4
         configuration): batches are cut every 200 us, so a freshly
         appended suffix stays unordered for up to that long. *)
      let cfg = { Lazylog.Config.default with order_interval = Engine.us 200 } in
      let cluster = Erwin_m.create ~cfg () in
      let clients = Array.init 8 (fun _ -> Erwin_m.client cluster) in
      let reader = Erwin_m.client cluster in
      let read_lat = Stats.Reservoir.create () in
      let t_end = Engine.now () + Engine.ms 5 + duration in
      Arrival.open_loop ~rate ~until:t_end (fun i ->
          ignore (clients.(i mod 8).Log_api.append ~size:4096 ~data:(string_of_int i)));
      let cursor = ref 0 in
      Engine.spawn (fun () ->
          let rec loop () =
            if Engine.now () < t_end then begin
              Engine.sleep period;
              (* checkTail, then read up to the tail record by record —
                 with long periods most of the span is already stable, so
                 per-record latencies are low; with short periods every
                 read chases the unordered tail. *)
              let tail = reader.Log_api.check_tail () in
              while !cursor < tail do
                let t0 = Engine.now () in
                ignore (reader.Log_api.read ~from:!cursor ~len:1);
                Stats.Reservoir.add read_lat (Engine.now () - t0);
                incr cursor
              done;
              loop ()
            end
          in
          loop ());
      Engine.sleep_until (t_end + Engine.ms 20);
      Stats.Reservoir.mean_us read_lat)

let run () =
  section "Figure 10: Periodic checkTail+read (Erwin): period vs read latency";
  let duration = dur 60 250 in
  table_header [ "period_ms"; "20K_read_us"; "32K_read_us" ];
  List.iter
    (fun period_ms ->
      let period = Engine.us_f (period_ms *. 1000.) in
      let l20 = periodic_read_latency ~rate:20_000. ~period ~duration in
      let l32 = periodic_read_latency ~rate:32_000. ~period ~duration in
      row (Printf.sprintf "%.1f" period_ms) [ f1 l20; f1 l32 ])
    [ 0.1; 0.5; 1.0; 2.0; 3.0 ];
  note "longer periods leave only the records near the tail unordered:";
  note "by read time background ordering has covered the span, so reads get faster"
