(* Figure 7: Append latency, Erwin(-m) vs Scalog.
   4 KB records, 2-replica shards, 0.1 ms interleaving interval;
   1 shard @34K/s and 5 shards @140K/s, plus CDFs and the section 6.1
   shard-in-isolation parity check. *)

open Harness

let run () =
  section
    "Figure 7: Append Latency, Erwin vs Scalog (4KB, 2 replicas/shard, 0.1ms interleaving)";
  (* Section 6.1 parity: the shards alone run in a comparable regime. *)
  let iso_mean, iso_tput =
    Ll_scalog.Scalog.shard_in_isolation_probe ~rate:30_000.
      ~seconds:(if !quick then 0.1 else 0.4)
      ~size:4096 ()
  in
  note
    "shard-in-isolation parity: scalog shard %.0fus @ %.1fK/s (paper: 693us @ 34.3K; erwin shards are identical disk-bound stores)"
    iso_mean (iso_tput /. 1000.);
  let duration = dur 80 400 in
  table_header [ "setup"; "mean_us"; "p99_us"; "achieved" ];
  let cases = [ (1, 34_000., "1-shard @34K"); (5, 140_000., "5-shards @140K") ] in
  let last = ref None in
  List.iter
    (fun (nshards, rate, label) ->
      let scalog_sys =
        scalog ~config:{ Ll_scalog.Scalog.default_config with nshards } ()
      in
      let erwin_sys =
        erwin_m
          ~cfg:{ Lazylog.Config.default with nshards; shard_backup_count = 1 }
          ()
      in
      let rs, sm, _, sp99 = append_row scalog_sys ~rate ~size:4096 ~duration in
      let re, em, _, ep99 = append_row erwin_sys ~rate ~size:4096 ~duration in
      row (Printf.sprintf "scalog %s" label)
        [ f1 sm; f1 sp99; kops rs.Ll_workload.Runner.achieved ];
      row (Printf.sprintf "erwin %s" label)
        [ f1 em; f1 ep99; kops re.Ll_workload.Runner.achieved ];
      note "erwin reduces mean latency by %.0fx (paper: two orders of magnitude)"
        (sm /. em);
      last := Some (rs, re))
    cases;
  match !last with
  | Some (rs, re) ->
    print_cdf "scalog @140K" rs.Ll_workload.Runner.latency ~points:8;
    print_cdf "erwin @140K" re.Ll_workload.Runner.latency ~points:8
  | None -> ()
