(* Figure 8: reads lagging behind appends by a small window (3 ms), at
   matched append/read rates of 15K/30K/45K — Erwin's append advantage
   with no read penalty (ordering completes before the lagged reads). *)

open Harness

let run_one ~lag ~title =
  section "%s" title;
  let duration = dur 80 300 in
  table_header [ "rate"; "sys"; "append_us"; "read_us" ];
  List.iter
    (fun rate ->
      let cfg_corfu =
        { Ll_corfu.Corfu.default_config with nshards = 1; replicas_per_shard = 3 }
      in
      let ca, cr =
        append_and_read (corfu ~config:cfg_corfu ()) ~rate ~size:4096 ~duration
          ~lag ~chunk:1
      in
      let ea, er =
        append_and_read (erwin_m ()) ~rate ~size:4096 ~duration ~lag ~chunk:1
      in
      row (kops rate)
        [
          "corfu";
          f1 (Ll_sim.Stats.Reservoir.mean_us ca);
          f1 (Ll_sim.Stats.Reservoir.mean_us cr);
        ];
      row ""
        [
          "erwin";
          f1 (Ll_sim.Stats.Reservoir.mean_us ea);
          f1 (Ll_sim.Stats.Reservoir.mean_us er);
        ])
    [ 15_000.; 30_000.; 45_000. ]

let run () =
  run_one ~lag:(Ll_sim.Engine.ms 3)
    ~title:"Figure 8: Reads Lagging Appends by 3ms (Corfu vs Erwin)"
