(* Figure 16: seamlessly adding a shard in Erwin-st. Mid-workload, a new
   shard joins without downtime; clients start writing to it and
   throughput steps up (Scalog's elasticity property, which Corfu-style
   fixed placement lacks). Closed-loop clients saturate whatever capacity
   exists, so the step is visible as a throughput increase. *)

open Ll_sim
open Lazylog
open Ll_workload
open Harness

let run () =
  section "Figure 16: Seamlessly Adding a Shard (Erwin-st, 4KB, NVMe)";
  let phase = dur 150 500 in
  let series =
    Runner.in_sim (fun () ->
        let cfg =
          Lazylog.Config.scaled_cluster
            { Lazylog.Config.default with nshards = 1; shard_backup_count = 1 }
        in
        let cluster = Erwin_st.create ~cfg () in
        let nclients = 128 in
        let clients = Array.init nclients (fun _ -> Erwin_st.client cluster) in
        let tl = Stats.Timeline.create ~bin:(phase / 10) in
        let t_end = Engine.now () + (2 * phase) in
        Arrival.closed_loop ~clients:nclients ~until:t_end (fun ~client i ->
            if
              clients.(client).Log_api.append ~size:4096
                ~data:(Printf.sprintf "%d-%d" client i)
            then Stats.Timeline.record tl ~at:(Engine.now ()));
        (* The new shard arrives halfway through, without downtime. *)
        Engine.after phase (fun () ->
            ignore (Erwin_common.add_shard cluster : Shard.t));
        Engine.sleep_until (t_end + Engine.ms 20);
        Stats.Timeline.series tl)
  in
  note "shard added at t=%.3fs (128 closed-loop clients, 1 -> 2 shards)"
    (Engine.to_sec phase);
  table_header [ "t_s"; "throughput" ];
  let horizon = 2.0 *. Engine.to_sec phase in
  List.iter
    (fun (t, rate) ->
      (* Drop the partial bin past the end of the run. *)
      if t < horizon -. 0.001 then row (Printf.sprintf "%.3f" t) [ kops rate ])
    series;
  note "throughput steps up when clients start writing to the new shard"
