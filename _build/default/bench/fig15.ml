(* Figure 15: total order across Kafka shards. Stand-alone Kafka
   (per-shard order, acks=all, producer batching, gRPC-class stack) vs
   Erwin-m with Kafka as its black-box shards: same durable Kafka
   storage, but 1RTT eRPC appends and lazily established total order. *)

open Ll_sim
open Lazylog
open Ll_workload
open Harness

let kafka_standalone ~npartitions ~rate ~duration =
  Runner.in_sim (fun () ->
      let kafka =
        Ll_kafka.Kafka.create
          ~config:{ Ll_kafka.Kafka.default_config with npartitions } ()
      in
      let clients = Array.init 8 (fun _ -> Ll_kafka.Kafka.client_log kafka) in
      let lat = Stats.Reservoir.create () in
      let t_end = Engine.now () + Engine.ms 5 + duration in
      Arrival.open_loop ~rate ~until:t_end (fun i ->
          let t0 = Engine.now () in
          if clients.(i mod 8).Log_api.append ~size:4096 ~data:(string_of_int i)
          then Stats.Reservoir.add lat (Engine.now () - t0));
      Engine.sleep_until (t_end + Engine.ms 50);
      lat)

let erwin_over_kafka ~npartitions ~rate ~duration =
  Runner.in_sim (fun () ->
      let sys =
        Ll_kafka.Kafka_erwin.create
          ~kafka_config:{ Ll_kafka.Kafka.default_config with npartitions } ()
      in
      let clients = Array.init 8 (fun _ -> Ll_kafka.Kafka_erwin.client sys) in
      let lat = Stats.Reservoir.create () in
      let t_end = Engine.now () + Engine.ms 5 + duration in
      Arrival.open_loop ~rate ~until:t_end (fun i ->
          let t0 = Engine.now () in
          if clients.(i mod 8).Log_api.append ~size:4096 ~data:(string_of_int i)
          then Stats.Reservoir.add lat (Engine.now () - t0));
      Engine.sleep_until (t_end + Engine.ms 50);
      lat)

let run () =
  section "Figure 15: Total Order across Kafka Shards (Erwin-m black-box mode)";
  let duration = dur 60 250 in
  table_header [ "setup"; "mean_us"; "p99_us" ];
  List.iter
    (fun (npartitions, rate, label) ->
      let k = kafka_standalone ~npartitions ~rate ~duration in
      let e = erwin_over_kafka ~npartitions ~rate ~duration in
      row (Printf.sprintf "kafka %s" label)
        [
          f0 (Stats.Reservoir.mean_us k);
          f0 (Stats.Reservoir.percentile_us k 99.0);
        ];
      row (Printf.sprintf "erwin+kafka %s" label)
        [
          f1 (Stats.Reservoir.mean_us e);
          f1 (Stats.Reservoir.percentile_us e 99.0);
        ];
      note
        "erwin-m over kafka: %.0fx lower latency AND linearizable total order across shards (paper: ~3 orders of magnitude)"
        (Stats.Reservoir.mean_us k /. Stats.Reservoir.mean_us e))
    [ (1, 70_000., "1-shard @70K"); (3, 128_000., "3-shards @128K") ]
