(* Bechamel microbenchmarks of the hot data structures (real wall-clock
   performance of the OCaml implementation, not simulated time). *)

open Bechamel
open Toolkit

let ring_test =
  Test.make ~name:"ring_buffer append+gc"
    (Staged.stage (fun () ->
         let r = Ll_storage.Ring_buffer.create ~capacity:64 in
         for i = 0 to 255 do
           ignore (Ll_storage.Ring_buffer.try_append r i);
           if Ll_storage.Ring_buffer.is_full r then
             Ll_storage.Ring_buffer.advance_head r
               (Ll_storage.Ring_buffer.head r + 32)
         done))

let heap_test =
  Test.make ~name:"heap push/pop x256"
    (Staged.stage (fun () ->
         let h = Ll_sim.Heap.create ~cmp:compare in
         for i = 0 to 255 do
           Ll_sim.Heap.push h ((i * 7919) mod 257)
         done;
         while not (Ll_sim.Heap.is_empty h) do
           ignore (Ll_sim.Heap.pop h)
         done))

let zipf_test =
  let rng = Ll_sim.Rng.create ~seed:1 in
  let g = Ll_sim.Rng.Zipf.create rng ~n:100_000 ~theta:0.99 in
  Test.make ~name:"zipf next x256"
    (Staged.stage (fun () ->
         for _ = 0 to 255 do
           ignore (Ll_sim.Rng.Zipf.next g)
         done))

let seq_log_test =
  Test.make ~name:"seq_log append+order x128"
    (Staged.stage (fun () ->
         let l = Lazylog.Seq_log.create ~capacity:1024 in
         for i = 1 to 128 do
           let rid = { Lazylog.Types.Rid.client = 0; seq = i } in
           ignore
             (Lazylog.Seq_log.try_append l
                (Lazylog.Types.Data (Lazylog.Types.record ~rid ~size:64 ())))
         done;
         let entries = Lazylog.Seq_log.unordered l () in
         Lazylog.Seq_log.remove_ordered l
           (List.map Lazylog.Types.entry_rid entries)))

let reservoir_test =
  Test.make ~name:"reservoir add+p99 x1024"
    (Staged.stage (fun () ->
         let r = Ll_sim.Stats.Reservoir.create () in
         for i = 0 to 1023 do
           Ll_sim.Stats.Reservoir.add r ((i * 31) mod 977)
         done;
         ignore (Ll_sim.Stats.Reservoir.percentile_us r 99.0)))

let run () =
  Harness.section "Microbenchmarks (bechamel, real time)";
  let tests =
    Test.make_grouped ~name:"micro" ~fmt:"%s %s"
      [ ring_test; heap_test; zipf_test; seq_log_test; reservoir_test ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "  %-32s %10.1f ns/run\n" name est
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    results
