(* Figure 18: end applications over Corfu vs Erwin-m.
   (a) decoupled KV store under YCSB Load/A/B (average request latency);
   (b) audit-logged transaction processing (average latency by txn type);
   (c) journaled stream word count (per-record latency vs batch size). *)

open Ll_sim
open Lazylog
open Ll_workload
open Ll_apps
open Harness

(* Build a Log_api factory per system inside the current sim. *)
let factories () =
  [
    ( "corfu",
      fun () ->
        let c =
          Ll_corfu.Corfu.create
            ~config:{ Ll_corfu.Corfu.default_config with replicas_per_shard = 3 }
            ()
        in
        fun () -> Ll_corfu.Corfu.client c );
    ( "erwin",
      fun () ->
        let cluster = Erwin_m.create () in
        fun () -> Erwin_m.client cluster );
  ]

(* --- (a) KV store --- *)

let kv_latency ~mk ~profile ~ops =
  Runner.in_sim (fun () ->
      let factory = mk () in
      let kv = Kv_store.create ~log:(factory ()) ~reader_log:(factory ()) () in
      let gen = Ycsb.create ~keyspace:10_000 ~profile () in
      let lat = Stats.Reservoir.create () in
      let value = String.make Ycsb.value_bytes 'v' in
      for _ = 1 to ops do
        let op = Ycsb.next gen in
        let t0 = Engine.now () in
        (match op with
        | Ycsb.Insert k | Ycsb.Update k ->
          Kv_store.put kv ~key:(Printf.sprintf "key%020d" k) ~value
        | Ycsb.Read k ->
          ignore (Kv_store.get kv ~key:(Printf.sprintf "key%020d" k))
        | Ycsb.Read_modify_write k ->
          let key = Printf.sprintf "key%020d" k in
          ignore (Kv_store.get kv ~key);
          Kv_store.put kv ~key ~value);
        Stats.Reservoir.add lat (Engine.now () - t0)
      done;
      Stats.Reservoir.mean_us lat)

let run_kv () =
  section "Figure 18a: KV Store (24B keys, 1KB values; avg request latency)";
  let ops = if !quick then 1_500 else 6_000 in
  table_header [ "workload"; "corfu_us"; "erwin_us"; "speedup" ];
  List.iter
    (fun (profile, label) ->
      let values =
        List.map (fun (_, mk) -> kv_latency ~mk ~profile ~ops) (factories ())
      in
      match values with
      | [ c; e ] -> row label [ f1 c; f1 e; Printf.sprintf "%.1fx" (c /. e) ]
      | _ -> ())
    [ (Ycsb.Load, "write-only (Load)"); (Ycsb.A, "write-heavy (YCSB-A)");
      (Ycsb.B, "read-heavy (YCSB-B)") ];
  note "paper: 3.4x on write-only, ~2.5x write-heavy, ~1x read-heavy"

(* --- (b) log aggregation --- *)

let logagg_latency ~mk ~ops =
  Runner.in_sim (fun () ->
      let factory = mk () in
      let srv = Log_aggregation.create ~log:(factory ()) () in
      let rng = Rng.create ~seed:8 in
      for a = 0 to 63 do
        ignore (Log_aggregation.execute srv (Create { account = a }))
      done;
      let wlat = Stats.Reservoir.create () in
      let rlat = Stats.Reservoir.create () in
      for i = 1 to ops do
        let txn : Log_aggregation.txn =
          if Rng.bool rng ~p:0.5 then
            if Rng.bool rng ~p:0.5 then
              Deposit { account = Rng.int rng 64; amount = 10 }
            else
              Transfer
                { src = Rng.int rng 64; dst = Rng.int rng 64; amount = 5 }
          else if Rng.bool rng ~p:0.5 then Balance { account = Rng.int rng 64 }
          else Status { txn_id = i }
        in
        let t0 = Engine.now () in
        ignore (Log_aggregation.execute srv txn);
        Stats.Reservoir.add
          (if Log_aggregation.is_write txn then wlat else rlat)
          (Engine.now () - t0)
      done;
      (Stats.Reservoir.mean_us wlat, Stats.Reservoir.mean_us rlat))

let run_logagg () =
  section "Figure 18b: Log Aggregation (50/50 txns; avg latency by type)";
  let ops = if !quick then 1_500 else 6_000 in
  table_header [ "txn type"; "corfu_us"; "erwin_us"; "speedup" ];
  let values = List.map (fun (_, mk) -> logagg_latency ~mk ~ops) (factories ()) in
  (match values with
  | [ (cw, cr); (ew, er) ] ->
    row "write txns" [ f1 cw; f1 ew; Printf.sprintf "%.1fx" (cw /. ew) ];
    row "read txns" [ f1 cr; f1 er; Printf.sprintf "%.1fx" (cr /. er) ]
  | _ -> ());
  note "reads execute in ~4us vs writes ~23us+, so audit logging dominates";
  note "reads more -> larger speedup for read txns (paper's observation)"

(* --- (c) word count --- *)

let wordcount_latency ~mk ~batch ~inputs =
  Runner.in_sim (fun () ->
      let factory = mk () in
      let wc = Wordcount.create ~log:(factory ()) ~batch () in
      let lat = Wordcount.run wc ~inputs (fun _ -> ()) in
      Stats.Reservoir.mean_us lat)

let run_wordcount () =
  section "Figure 18c: Journaled Word Count (5 workers; per-record latency)";
  let n = if !quick then 20_000 else 50_000 in
  let words = [| "the"; "log"; "is"; "lazy"; "order"; "later" |] in
  let rng = Rng.create ~seed:12 in
  let inputs = List.init n (fun _ -> Rng.pick rng words) in
  table_header [ "batch"; "corfu_us"; "erwin_us"; "speedup" ];
  List.iter
    (fun batch ->
      let values =
        List.map (fun (_, mk) -> wordcount_latency ~mk ~batch ~inputs) (factories ())
      in
      match values with
      | [ c; e ] ->
        row (string_of_int batch) [ f1 c; f1 e; Printf.sprintf "%.2fx" (c /. e) ]
      | _ -> ())
    [ 500; 1_000; 2_000; 5_000 ];
  note "smaller batches -> logging is a larger share -> bigger Erwin benefit";
  note "(paper: 1.66x at batch 500, 1.17x at batch 5000)"

let run () =
  run_kv ();
  run_logagg ();
  run_wordcount ()
