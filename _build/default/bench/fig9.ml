(* Figure 9: no lag between appends and reads — Erwin's bad case. Reads
   hit the unordered portion and pay the (deferred) ordering cost; at
   higher rates batching makes most reads fast again. *)


let run () =
  Fig8.run_one ~lag:0
    ~title:"Figure 9: No Lag between Appends and Reads (Corfu vs Erwin)"
