(* Figure 12: record size vs Erwin-m append throughput. Whole records pass
   through the sequencing layer, so throughput is high for small records
   (~1M/s at 100 B) and flattens as records grow. *)

open Harness

let run () =
  section "Figure 12: Record Size vs Throughput (Erwin-m, 5 shards NVMe)";
  let duration = dur 50 200 in
  let cfg =
    Lazylog.Config.scaled_cluster
      { Lazylog.Config.default with nshards = 5; shard_backup_count = 1 }
  in
  table_header [ "size_B"; "throughput"; "seq_model" ];
  List.iter
    (fun size ->
      let cap = expected_capacity ~cfg ~mode:`M ~size in
      let tput =
        drain_throughput ~cfg ~mode:`M ~size ~offered:(1.4 *. cap) ~duration
      in
      row (string_of_int size) [ kops tput; kops (seq_cap_records ~cfg ~size) ])
    [ 100; 512; 1024; 4096; 8192 ];
  note "data funnels through the sequencing layer: ~1M/s at 100B,";
  note "flattening with size (paper section 6.5) — Erwin-st fixes this (fig 13)"
