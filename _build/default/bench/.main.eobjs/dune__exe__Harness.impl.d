bench/harness.ml: Array Arrival Config Engine Erwin_m Erwin_st Float Lazylog List Ll_corfu Ll_scalog Ll_sim Ll_workload Log_api Option Printf Runner Stats String
