bench/fig16.ml: Array Arrival Engine Erwin_common Erwin_st Harness Lazylog List Ll_sim Ll_workload Log_api Printf Runner Shard Stats
