bench/fig11.ml: Array Arrival Engine Erwin_common Erwin_m Harness Lazylog List Ll_sim Ll_workload Log_api Runner Stats
