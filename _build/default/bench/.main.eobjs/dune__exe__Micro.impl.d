bench/micro.ml: Analyze Bechamel Benchmark Harness Hashtbl Instance Lazylog List Ll_sim Ll_storage Measure Printf Staged Test Time Toolkit
