bench/fig9.ml: Fig8
