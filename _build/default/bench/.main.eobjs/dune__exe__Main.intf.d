bench/main.mli:
