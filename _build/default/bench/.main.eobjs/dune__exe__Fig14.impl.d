bench/fig14.ml: Engine Harness Lazylog List Ll_sim Stats
