bench/ablation.ml: Config Engine Erwin_common Erwin_m Fig18 Harness Lazylog List Ll_corfu Ll_net Ll_sim Ll_workload Log_api Option Printf Reconfig Runner Seq_replica Stats Ycsb
