bench/fig8.ml: Harness List Ll_corfu Ll_sim
