bench/fig13.ml: Harness Lazylog List Ll_workload Runner
