bench/fig10.ml: Array Arrival Engine Erwin_m Harness Lazylog List Ll_sim Ll_workload Log_api Printf Runner Stats
