bench/fig18.ml: Engine Erwin_m Harness Kv_store Lazylog List Ll_apps Ll_corfu Ll_sim Ll_workload Log_aggregation Printf Rng Runner Stats String Wordcount Ycsb
