bench/fig15.ml: Array Arrival Engine Harness Lazylog List Ll_kafka Ll_sim Ll_workload Log_api Printf Runner Stats
