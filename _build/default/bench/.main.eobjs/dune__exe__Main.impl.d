bench/main.ml: Ablation Arg Cmd Cmdliner Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 Fig16 Fig17 Fig18 Fig6 Fig7 Fig8 Fig9 Harness List Micro Printf Term Unix
