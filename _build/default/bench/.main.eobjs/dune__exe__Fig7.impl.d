bench/fig7.ml: Harness Lazylog List Ll_scalog Ll_workload Printf
