bench/fig12.ml: Harness Lazylog List
