bench/fig6.ml: Harness Lazylog List Ll_corfu Ll_workload Printf
