(* Ablations of the design choices DESIGN.md calls out (run with
   --ablations):

   A1 background-ordering interval: the latency/batching trade-off behind
      figures 9-11 — appends are unaffected (lazy!), no-lag reads pay more
      as batching grows coarser.
   A2 sequencing-layer replication factor: appends stay 1 RTT because the
      parallel fan-out grows, not the depth; capacity is unchanged; only
      the fault-tolerance budget moves.
   A3 appendSync (section 5.5's eager extension) vs append: the deferred
      ordering cost made visible within one system.
   A4 straggler mitigation (section 5.5): a slow sequencing replica drags
      every append's tail; reconfiguring it out restores the baseline. *)

open Ll_sim
open Lazylog
open Ll_workload
open Harness

let a1_ordering_interval () =
  section "Ablation A1: background-ordering interval (30K appends/s, 4KB)";
  let duration = dur 60 250 in
  table_header [ "interval_us"; "append_us"; "noLag_read_us"; "avg_batch" ];
  List.iter
    (fun interval_us ->
      let cfg =
        { Config.default with order_interval = Engine.us interval_us }
      in
      let batch = ref 0.0 in
      let sys =
        {
          name = "erwin-m";
          make =
            (fun () ->
              let cluster = Erwin_m.create ~cfg () in
              Engine.spawn (fun () ->
                  (* sample the batch average at the end of the run *)
                  let rec wait () =
                    Engine.sleep (Engine.ms 10);
                    batch := Erwin_common.avg_batch cluster;
                    wait ()
                  in
                  wait ());
              fun () -> Erwin_m.client cluster);
        }
      in
      let app, rd =
        append_and_read sys ~rate:30_000. ~size:4096 ~duration ~lag:0 ~chunk:1
      in
      row (string_of_int interval_us)
        [
          f1 (Stats.Reservoir.mean_us app);
          f1 (Stats.Reservoir.mean_us rd);
          f1 !batch;
        ])
    [ 5; 20; 100; 500 ];
  note "appends never see the interval (lazy binding); aggressive readers do"

let a2_replication_factor () =
  section "Ablation A2: sequencing replicas (f+1) vs append latency (30K, 4KB)";
  let duration = dur 60 250 in
  table_header [ "replicas"; "mean_us"; "p99_us" ];
  List.iter
    (fun n ->
      let cfg = { Config.default with seq_replica_count = n } in
      let r = append_latency (erwin_m ~cfg ()) ~rate:30_000. ~size:4096 ~duration in
      let mean, _, p99 = Runner.percentiles r.Runner.latency in
      row (Printf.sprintf "%d (f=%d)" n (n - 1)) [ f1 mean; f1 p99 ])
    [ 2; 3; 4; 5 ];
  note "parallel fan-out: more replicas buy fault tolerance, not RTTs"

let a3_append_sync () =
  section "Ablation A3: append vs appendSync (eager extension, 4KB)";
  let lat_async, lat_sync =
    Runner.in_sim (fun () ->
        let cluster = Erwin_m.create () in
        let log = Erwin_m.client cluster in
        let sync = Option.get log.Log_api.append_sync in
        let a = Stats.Reservoir.create () and s = Stats.Reservoir.create () in
        for i = 1 to 300 do
          let t0 = Engine.now () in
          ignore (log.Log_api.append ~size:4096 ~data:("a" ^ string_of_int i));
          Stats.Reservoir.add a (Engine.now () - t0);
          let t0 = Engine.now () in
          ignore (sync ~size:4096 ~data:("s" ^ string_of_int i));
          Stats.Reservoir.add s (Engine.now () - t0)
        done;
        (a, s))
  in
  table_header [ "api"; "mean_us"; "p99_us" ];
  row "append (lazy)"
    [ f1 (Stats.Reservoir.mean_us lat_async);
      f1 (Stats.Reservoir.percentile_us lat_async 99.0) ];
  row "appendSync (eager)"
    [ f1 (Stats.Reservoir.mean_us lat_sync);
      f1 (Stats.Reservoir.percentile_us lat_sync 99.0) ];
  note "appendSync waits for binding: this gap IS the deferred ordering cost"

let a4_straggler () =
  section "Ablation A4: straggler replica and reconfiguration (section 5.5)";
  let measure cluster log n =
    let r = Stats.Reservoir.create () in
    for i = 1 to n do
      let t0 = Engine.now () in
      ignore (log.Log_api.append ~size:1024 ~data:(string_of_int i));
      Stats.Reservoir.add r (Engine.now () - t0)
    done;
    ignore cluster;
    r
  in
  let healthy, slowed, removed =
    Runner.in_sim (fun () ->
        let cluster = Erwin_m.create () in
        let log = Erwin_m.client cluster in
        let healthy = measure cluster log 200 in
        let straggler = List.nth cluster.Erwin_common.replicas 2 in
        Ll_net.Fabric.set_extra_delay (Seq_replica.node straggler)
          (Engine.us 300);
        let slowed = measure cluster log 200 in
        Reconfig.remove_replica cluster straggler;
        let removed = measure cluster log 200 in
        (healthy, slowed, removed))
  in
  table_header [ "phase"; "mean_us"; "p99_us" ];
  List.iter
    (fun (label, r) ->
      row label
        [ f1 (Stats.Reservoir.mean_us r);
          f1 (Stats.Reservoir.percentile_us r 99.0) ])
    [ ("healthy (3 replicas)", healthy);
      ("with 300us straggler", slowed);
      ("straggler reconfigured out", removed) ];
  note "writes wait for all sequencing replicas, so one straggler taxes";
  note "every append; a view change removes it (paper section 5.5)"

let a5_ycsb_extended () =
  section "Ablation A5: KV store under extended YCSB profiles (C/D/F)";
  let ops = if !quick then 1_200 else 5_000 in
  table_header [ "workload"; "corfu_us"; "erwin_us"; "speedup" ];
  List.iter
    (fun (profile, label) ->
      let run mk = Fig18.kv_latency ~mk ~profile ~ops in
      let corfu =
        run (fun () ->
            let c =
              Ll_corfu.Corfu.create
                ~config:
                  { Ll_corfu.Corfu.default_config with replicas_per_shard = 3 }
                ()
            in
            fun () -> Ll_corfu.Corfu.client c)
      in
      let erwin =
        run (fun () ->
            let cluster = Erwin_m.create () in
            fun () -> Erwin_m.client cluster)
      in
      row label [ f1 corfu; f1 erwin; Printf.sprintf "%.1fx" (corfu /. erwin) ])
    [
      (Ycsb.C, "read-only (YCSB-C)");
      (Ycsb.D, "read-latest (YCSB-D)");
      (Ycsb.F, "read-modify-write (YCSB-F)");
    ];
  note "the benefit tracks the write fraction: F ~ A, C ~ nothing to speed up"

let run () =
  a1_ordering_interval ();
  a2_replication_factor ();
  a3_append_sync ();
  a4_straggler ();
  a5_ycsb_extended ()
