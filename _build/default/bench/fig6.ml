(* Figure 6: Append latency, Erwin(-m) vs Corfu.
   4 KB records, 3 replicas per shard; (a) mean and p99 at 1 shard @30K/s
   and 5 shards @150K/s; (b) latency CDFs at 30K and 100K appends/s. *)

open Harness

let run () =
  section "Figure 6: Append Latency, Erwin vs Corfu (4KB, 3 replicas/shard)";
  let duration = dur 100 400 in
  table_header [ "setup"; "mean_us"; "p99_us"; "achieved" ];
  let cases =
    [
      (1, 30_000., "1-shard @30K");
      (5, 150_000., "5-shards @150K");
    ]
  in
  let results =
    List.map
      (fun (nshards, rate, label) ->
        let corfu_sys =
          corfu
            ~config:
              { Ll_corfu.Corfu.default_config with nshards; replicas_per_shard = 3 }
            ()
        in
        let erwin_sys =
          erwin_m
            ~cfg:
              {
                Lazylog.Config.default with
                nshards;
                shard_backup_count = 2;
              }
            ()
        in
        let rc, cm, _, cp99 = append_row corfu_sys ~rate ~size:4096 ~duration in
        let re, em, _, ep99 = append_row erwin_sys ~rate ~size:4096 ~duration in
        row (Printf.sprintf "corfu %s" label)
          [ f1 cm; f1 cp99; kops rc.Ll_workload.Runner.achieved ];
        row (Printf.sprintf "erwin %s" label)
          [ f1 em; f1 ep99; kops re.Ll_workload.Runner.achieved ];
        note "erwin reduces mean latency by %.1fx, p99 by %.1fx (paper: up to 3.8x)"
          (cm /. em) (cp99 /. ep99);
        (label, rc, re))
      cases
  in
  (* (b) CDFs at 30K and 100K *)
  (match results with
  | (_, rc30, re30) :: _ ->
    print_cdf "corfu @30K" rc30.Ll_workload.Runner.latency ~points:8;
    print_cdf "erwin @30K" re30.Ll_workload.Runner.latency ~points:8
  | [] -> ());
  let corfu100, _, _, _ =
    append_row
      (corfu
         ~config:{ Ll_corfu.Corfu.default_config with nshards = 5; replicas_per_shard = 3 }
         ())
      ~rate:100_000. ~size:4096 ~duration
  in
  let erwin100, _, _, _ =
    append_row
      (erwin_m ~cfg:{ Lazylog.Config.default with nshards = 5; shard_backup_count = 2 } ())
      ~rate:100_000. ~size:4096 ~duration
  in
  print_cdf "corfu @100K (5 shards)" corfu100.Ll_workload.Runner.latency ~points:8;
  print_cdf "erwin @100K (5 shards)" erwin100.Ll_workload.Runner.latency ~points:8
