(* Figure 13: Erwin-st scalability. (a) throughput vs number of shards for
   4KB and 8KB records, Erwin-m vs Erwin-st (NVMe shards, the paper's
   c6525 scaling cluster); (b) throughput vs latency for Erwin-st. *)

open Harness
open Ll_workload

let run () =
  section "Figure 13a: Throughput vs Shards (4KB/8KB, NVMe cluster)";
  let duration = dur 50 200 in
  table_header [ "shards"; "m_4K"; "st_4K"; "m_8K"; "st_8K" ];
  List.iter
    (fun nshards ->
      let cfg =
        Lazylog.Config.scaled_cluster
          { Lazylog.Config.default with nshards; shard_backup_count = 1 }
      in
      let probe mode ~size =
        let offered = 1.4 *. expected_capacity ~cfg ~mode ~size in
        drain_throughput ~cfg ~mode ~size ~offered ~duration
      in
      let m4 = probe `M ~size:4096 in
      let st4 = probe `St ~size:4096 in
      let m8 = probe `M ~size:8192 in
      let st8 = probe `St ~size:8192 in
      row (string_of_int nshards) [ kops m4; kops st4; kops m8; kops st8 ])
    [ 3; 5; 7; 10 ];
  note "erwin-m flattens (data through the sequencing layer);";
  note "erwin-st scales with shards (metadata-only sequencing), ~700K @ 10 shards/4KB in the paper";

  section "Figure 13b: Throughput vs Latency (Erwin-st, 10 shards, 4KB)";
  let cfg =
    Lazylog.Config.scaled_cluster
      { Lazylog.Config.default with nshards = 10; shard_backup_count = 1 }
  in
  table_header [ "offered"; "achieved"; "mean_us"; "p99_us" ];
  List.iter
    (fun rate ->
      let r = append_latency (erwin_st ~cfg ()) ~rate ~size:4096 ~duration in
      let mean, _, p99 = Runner.percentiles r.Runner.latency in
      row (kops rate) [ kops r.Runner.achieved; f1 mean; f1 p99 ])
    [ 150_000.; 300_000.; 450_000.; 600_000.; 690_000. ];
  note "1RTT appends keep latency in the tens of us up to saturation (29us @700K in the paper)"
