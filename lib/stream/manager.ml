(* The per-cluster subscription manager (DESIGN.md section 13).

   One manager process per cluster owns every named subscription: a
   durable cursor (the next position to push), the consumer's current
   endpoint and credit grant, and an epoch that brands every push so
   stale in-flight traffic from before a re-attach or a manager recovery
   is recognizable on both ends.

   Delivery is server-initiated push off the stable tail. Per
   subscription one pump fiber runs a strict loop: when the cursor is
   below stable-gp it fetches the next batch through the ordinary read
   path (so only bound, stable records are ever pushed), sends one
   [St_push], and waits for the ack; when the cursor has caught up with
   stable-gp it demands eager binding from the orderer (the same
   [Sr_order_demand] path a parked tail read uses, PR 4) and parks on
   the stable watch. One batch in flight per subscription, never larger
   than the consumer's remaining credits — the flow-control window is
   enforced here, at the sender.

   Exactly-once composes from three pieces, each individually weaker:
   - at-least-once: a push whose ack does not arrive within
     [sub_push_timeout] is redelivered verbatim until some ack for the
     current epoch lands;
   - dedup: the consumer filters positions below its own durable [next]
     and acks cumulatively with that [next], so the manager's cursor
     jumps over any redelivered prefix;
   - durable floor: every acked cursor is replicated one-way to all
     sequencing replicas ([St_cursor_sync], max-merged there). After a
     view change the manager rebuilds from the maximum surviving
     replicated cursor and bumps the epoch — modelling a manager
     failover — and the at-least-once/dedup pair absorbs the regressed
     window. The replicated floor never exceeds the consumer's durable
     [next], so recovery can only redeliver, never skip. *)

open Ll_sim
open Ll_net
open Lazylog
open Lazylog.Erwin_common

type sub = {
  sname : string;
  mutable epoch : int;
  mutable cursor : int;  (* next position to push (acked frontier) *)
  mutable endpoint : Fabric.node_id;
  mutable credits : int;  (* consumer's last advertised window *)
  mutable seq : int;  (* per-epoch push sequence, diagnostics only *)
  mutable registered_from : int;
  (* stats *)
  mutable pushes : int;
  mutable redeliveries : int;
  mutable stale_acks : int;
}

type t = {
  cluster : Erwin_common.t;
  ep : (Proto.req, Proto.resp) Rpc.endpoint;
  subs : (string, sub) Hashtbl.t;
  wake : Waitq.t;  (* stable advance, attach, recovery *)
  fetch : int list -> (int * Types.record) list;
  mutable recoveries : int;
}

let endpoint_id t = Rpc.endpoint_id t.ep
let find t name = Hashtbl.find_opt t.subs name
let cursor_of t name = Option.map (fun s -> s.cursor) (find t name)
let epoch_of t name = Option.map (fun s -> s.epoch) (find t name)
let pushes t name = match find t name with Some s -> s.pushes | None -> 0

let redeliveries t name =
  match find t name with Some s -> s.redeliveries | None -> 0

let recoveries t = t.recoveries

(* Ask the orderer to bind up to [upto] now instead of waiting out the
   lazy cadence — same fire-and-forget idiom as a shard's parked read
   (Shard.demand_bind). Idempotent and cheap to repeat: the orderer
   max-merges. *)
let demand t ~upto =
  match t.cluster.orderer_node with
  | Some dst ->
    Engine.spawn ~name:"sub-manager.demand" (fun () ->
        ignore
          (Rpc.call_retry t.ep ~dst
             ~size:(Proto.req_size (Proto.Sr_order_demand { upto }))
             ~timeout:(Engine.ms 5) ~max_tries:10
             (Proto.Sr_order_demand { upto })
            : Proto.resp option))
  | None -> ()

(* Replicate the acked cursor to every sequencing replica. One-way and
   unacknowledged by design: receivers max-merge, so a lost sync only
   lags the durable floor (bounded by redelivery after a recovery). *)
let sync_cursor t sub =
  let req =
    Proto.St_cursor_sync
      { name = sub.sname; epoch = sub.epoch; cursor = sub.cursor }
  in
  List.iter
    (fun r -> Rpc.send_oneway t.ep ~dst:(Seq_replica.node_id r) req)
    t.cluster.replicas

(* One push round: fetch [min credits push_max] stable records at the
   cursor and deliver them, redelivering on ack timeout. Returns when
   some current-epoch ack advanced the cursor, or when the epoch moved
   (re-attach / recovery invalidated the batch). *)
let push_round t sub =
  let epoch0 = sub.epoch in
  let cfg = t.cluster.cfg in
  let n =
    min
      (min sub.credits cfg.Config.sub_push_max)
      (t.cluster.stable_gp - sub.cursor)
  in
  if n > 0 then begin
    let positions = List.init n (fun i -> sub.cursor + i) in
    let records = t.fetch positions in
    (* The fetch blocks (reads park below stable, so briefly); anything
       can have happened meanwhile. *)
    let rec send () =
      if sub.epoch = epoch0 then begin
        sub.seq <- sub.seq + 1;
        sub.pushes <- sub.pushes + 1;
        let req =
          Proto.St_push { name = sub.sname; epoch = epoch0; seq = sub.seq; records }
        in
        match
          Rpc.call_timeout t.ep ~dst:sub.endpoint
            ~size:(Proto.req_size req) ~timeout:cfg.Config.sub_push_timeout req
        with
        | Some (Proto.R_sub_ack { epoch; upto; credits })
          when epoch = sub.epoch ->
          (* Cumulative ack: [upto] is the consumer's durable next, which
             can run ahead of this batch when dedup filtered a
             redelivered prefix. *)
          if upto > sub.cursor then sub.cursor <- upto;
          sub.credits <- credits;
          sync_cursor t sub
        | Some _ ->
          (* Ack from a previous incarnation (epoch moved while the push
             was in flight): drop it, the pump recomputes. *)
          sub.stale_acks <- sub.stale_acks + 1
        | None ->
          (* Lost push or lost ack — indistinguishable, and it does not
             matter: redeliver the identical batch, the consumer dedups
             by position. *)
          sub.redeliveries <- sub.redeliveries + 1;
          send ()
      end
    in
    send ()
  end

let pump t sub =
  Engine.spawn ~name:(Printf.sprintf "sub-manager.pump.%s" sub.sname)
    (fun () ->
      let rec loop () =
        if sub.cursor < t.cluster.stable_gp && sub.credits > 0 then
          push_round t sub
        else begin
          (* Caught up (or throttled): demand eager binding past the
             cursor so the next appends do not wait out the lazy ordering
             cadence, then park on the wake watch. The bounded wait
             re-demands — covering a lost demand and appends that arrived
             after the orderer judged the last one inert. *)
          demand t ~upto:(sub.cursor + t.cluster.cfg.Config.sub_push_max);
          ignore
            (Waitq.await_timeout t.wake ~timeout:(Engine.ms 1) (fun () ->
                 sub.cursor < t.cluster.stable_gp && sub.credits > 0)
              : bool)
        end;
        loop ()
      in
      loop ())

let handle t ~src:_ (req : Proto.req) ~reply =
  match req with
  | Proto.St_subscribe { name; endpoint; from; window } -> (
    match Hashtbl.find_opt t.subs name with
    | Some sub ->
      (* Re-attach (consumer restart): keep the cursor — the consumer's
         own durable [next] plus dedup decide what is actually new — but
         open a fresh epoch so in-flight pushes to the old incarnation
         die stale. *)
      sub.endpoint <- endpoint;
      sub.credits <- window;
      sub.epoch <- sub.epoch + 1;
      Waitq.broadcast t.wake;
      reply (Proto.R_sub { epoch = sub.epoch; cursor = sub.cursor })
    | None ->
      let sub =
        {
          sname = name;
          epoch = 1;
          cursor = from;
          endpoint;
          credits = window;
          seq = 0;
          registered_from = from;
          pushes = 0;
          redeliveries = 0;
          stale_acks = 0;
        }
      in
      Hashtbl.replace t.subs name sub;
      pump t sub;
      reply (Proto.R_sub { epoch = sub.epoch; cursor = sub.cursor }))
  | _ -> failwith "sub-manager: unexpected request"

(* View-change recovery: rebuild every cursor from the replicated floor
   on the surviving replicas, as a restarted manager would have to. The
   recovered cursor can trail both the consumer's durable [next] and the
   pre-recovery in-memory cursor (syncs are lossy one-ways) — the
   regressed window is redelivered and dedup-filtered, which is exactly
   the at-least-once/dedup contract, now exercised rather than assumed. *)
let recover t =
  let fetched =
    List.concat_map
      (fun r ->
        match
          Rpc.call_retry t.ep ~dst:(Seq_replica.node_id r)
            ~size:(Proto.req_size Proto.St_cursor_fetch) ~timeout:(Engine.ms 5)
            ~max_tries:5 Proto.St_cursor_fetch
        with
        | Some (Proto.R_cursors { cursors }) -> cursors
        | Some _ | None -> [])
      t.cluster.replicas
  in
  Hashtbl.iter
    (fun name sub ->
      let floor =
        List.fold_left
          (fun acc (n, _, c) -> if n = name then max acc c else acc)
          sub.registered_from fetched
      in
      sub.cursor <- floor;
      sub.epoch <- sub.epoch + 1)
    t.subs;
  t.recoveries <- t.recoveries + 1;
  Waitq.broadcast t.wake

let start (cluster : Erwin_common.t) =
  let ep = new_endpoint cluster ~name:"sub-manager" in
  let fetch =
    match cluster.mode with
    | M ->
      let rr = ref 1 in
      fun positions ->
        Client_core.read_grouped ~rr cluster ep
          ~shard_of:(shard_of_position cluster) positions
    | St -> Erwin_st.reader cluster ep ~rr0:1
  in
  let t =
    {
      cluster;
      ep;
      subs = Hashtbl.create 8;
      wake = Waitq.create ();
      fetch;
      recoveries = 0;
    }
  in
  Rpc.set_handler ep (fun ~src req ~reply ->
      handle t ~src req ~reply:(fun r -> reply ~size:(Proto.resp_size r) r));
  (* Push trigger: every stable advance wakes the pumps. The hook is the
     only piece that runs outside an opt-in code path, and it is [None]
     unless a manager was started. *)
  cluster.on_stable <- Some (fun _gp -> Waitq.broadcast t.wake);
  (* Failover model: every view change restarts the manager's cursor
     state from the replicated floor. *)
  Engine.spawn ~name:"sub-manager.recovery" (fun () ->
      let rec watch last =
        Waitq.await cluster.view_changed (fun () -> cluster.view > last);
        let v = cluster.view in
        recover t;
        watch v
      in
      watch cluster.view);
  t
