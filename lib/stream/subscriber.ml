(* The consumer half of streaming delivery.

   A subscriber owns the two pieces of state the exactly-once argument
   rests on:

   - [next], the durable delivery cursor: the position the application
     has consumed up to. Advanced only after a record is handed to the
     application, and modelled as surviving consumer crashes (a real
     consumer would write it alongside its output, e.g. in the same
     transaction). Every incoming position below [next] is a redelivered
     duplicate and is dropped; every ack carries [next] so the manager's
     cursor can only ever trail it.

   - [epoch], the incarnation brand: pushes from an older epoch (in
     flight across a re-attach or a manager recovery) are answered with
     a stale ack the manager discards. A newer epoch is adopted — the
     manager is the epoch authority.

   Push processing is serialized through a busy flag: a redelivered
   batch that overlaps one still being consumed must observe the final
   [next], not race it, or the dedup filter would double-deliver the
   overlap. Within a batch, records are consumed in ascending position
   order and no-op fillers advance the cursor without reaching the
   application, so delivery is in-order and gap-free by construction. *)

open Ll_sim
open Ll_net
open Lazylog
open Lazylog.Erwin_common

type t = {
  cluster : Erwin_common.t;
  sname : string;
  manager : Fabric.node_id;
  window : int;
  consume : Engine.time;  (* per-record application processing time *)
  on_record : (int -> Types.record -> unit) option;
  mutable node : (Proto.req, Proto.resp) Rpc.msg Fabric.node;
  mutable ep : (Proto.req, Proto.resp) Rpc.endpoint;
  mutable epoch : int;
  mutable next : int;  (* durable delivery cursor *)
  mutable busy : bool;
  free : Waitq.t;
  mutable incarnation : int;
  (* stats *)
  mutable delivered : int;
  mutable dup_skipped : int;
  mutable noop_skipped : int;
  mutable max_batch : int;
}

let node_id t = Fabric.id t.node
let name t = t.sname
let epoch t = t.epoch
let next t = t.next
let delivered t = t.delivered
let dup_skipped t = t.dup_skipped
let noop_skipped t = t.noop_skipped
let max_batch t = t.max_batch

let deliver t gp (r : Types.record) =
  if t.consume > 0 then Engine.sleep t.consume;
  if Types.is_no_op r then t.noop_skipped <- t.noop_skipped + 1
  else begin
    if Probe.active () then
      Probe.emit (Probe.Sub_delivered { name = t.sname; pos = gp; rid = r.Types.rid });
    (match t.on_record with Some f -> f gp r | None -> ());
    t.delivered <- t.delivered + 1
  end;
  t.next <- gp + 1

let handle t (req : Proto.req) ~reply =
  match req with
  | Proto.St_push { epoch; records; _ } ->
    if List.length records > t.max_batch then
      t.max_batch <- List.length records;
    if epoch < t.epoch then
      (* A push from before my latest re-attach: its batch was rebuilt
         under the new epoch, answer with a stale ack (the manager drops
         it) and deliver nothing. *)
      reply (Proto.R_sub_ack { epoch; upto = t.next; credits = 0 })
    else begin
      if epoch > t.epoch then t.epoch <- epoch;
      (* Serialize with any batch still being consumed: the dedup filter
         below must see the final cursor. *)
      Waitq.await t.free (fun () -> not t.busy);
      t.busy <- true;
      List.iter
        (fun (gp, r) ->
          if gp < t.next then t.dup_skipped <- t.dup_skipped + 1
          else if gp = t.next then deliver t gp r
          (* gp > next would be a gap — the manager never sends one
             (batches are contiguous from its cursor, which trails
             [next]); drop it defensively rather than deliver out of
             order. *))
        records;
      t.busy <- false;
      Waitq.broadcast t.free;
      reply
        (Proto.R_sub_ack { epoch = t.epoch; upto = t.next; credits = t.window })
    end
  | _ -> failwith "subscriber: unexpected request"

let mk_node (cluster : Erwin_common.t) ~nm =
  let node =
    Fabric.add_node cluster.fabric ~name:nm
      ~send_overhead:cluster.cfg.Config.rpc_overhead
      ~recv_overhead:cluster.cfg.Config.rpc_overhead ()
  in
  (node, Rpc.endpoint cluster.fabric node)

let install_handler t =
  Rpc.set_handler t.ep (fun ~src:_ req ~reply ->
      handle t req ~reply:(fun r -> reply ~size:(Proto.resp_size r) r))

let attach t =
  let epoch, _cursor =
    Client_core.subscribe_stream t.cluster t.ep ~manager:t.manager
      ~name:t.sname ~from:t.next ~window:t.window
  in
  if epoch > t.epoch then t.epoch <- epoch

let create (cluster : Erwin_common.t) ~manager ~name ?(from = 0) ?window
    ?(consume = 0) ?on_record () =
  let window =
    match window with Some w -> w | None -> cluster.cfg.Config.sub_window
  in
  let node, ep = mk_node cluster ~nm:(Printf.sprintf "sub.%s" name) in
  let t =
    {
      cluster;
      sname = name;
      manager;
      window;
      consume;
      on_record;
      node;
      ep;
      epoch = 0;
      next = from;
      busy = false;
      free = Waitq.create ();
      incarnation = 0;
      delivered = 0;
      dup_skipped = 0;
      noop_skipped = 0;
      max_batch = 0;
    }
  in
  install_handler t;
  if Probe.active () then
    Probe.emit (Probe.Sub_registered { name; from });
  attach t;
  t

(* Simulated consumer crash: the fabric node dies (in-flight pushes and
   acks to/from it are lost), while [next] — the durable cursor — and
   the delivery statistics survive for the restart. *)
let crash t = Fabric.crash t.cluster.fabric t.node

let restart t =
  t.incarnation <- t.incarnation + 1;
  let node, ep =
    mk_node t.cluster ~nm:(Printf.sprintf "sub.%s.r%d" t.sname t.incarnation)
  in
  t.node <- node;
  t.ep <- ep;
  install_handler t;
  attach t
