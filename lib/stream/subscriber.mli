(** The consumer half of streaming delivery: receives [St_push] batches
    from the {!Manager}, dedups by position against its durable delivery
    cursor, consumes in order (no-op fillers advance the cursor without
    reaching the application), and acks cumulatively — the piece that
    turns the manager's at-least-once redelivery into exactly-once
    end-to-end delivery (DESIGN.md section 13). *)

open Ll_net
open Lazylog

type t

val create :
  Erwin_common.t ->
  manager:Fabric.node_id ->
  name:string ->
  ?from:int ->
  ?window:int ->
  ?consume:Ll_sim.Engine.time ->
  ?on_record:(int -> Types.record -> unit) ->
  unit ->
  t
(** Creates the consumer endpoint and attaches subscription [name] at the
    manager, starting from position [from] (default 0). [window]
    (default [cfg.sub_window]) is the credit grant — the manager never
    has more than this many records pushed-unacknowledged. [consume]
    models per-record application processing time; [on_record] is the
    application callback (positions are gap-free and strictly
    ascending). Blocks until the manager acks the attach — call from a
    fiber inside {!Ll_sim.Engine.run}. *)

val crash : t -> unit
(** Simulated consumer crash: kills the fabric node (losing in-flight
    pushes and acks) while the durable delivery cursor survives. *)

val restart : t -> unit
(** Post-crash restart: fresh endpoint, re-attach at the manager from the
    durable cursor. The manager bumps the subscription epoch and
    redelivers from its own (possibly trailing) cursor; the overlap is
    dedup-filtered. *)

val node_id : t -> Fabric.node_id
val name : t -> string

val epoch : t -> int
(** Last epoch adopted from the manager. *)

val next : t -> int
(** The durable delivery cursor: all positions below it have been
    consumed (or skipped as no-ops). *)

val delivered : t -> int
(** Records handed to the application (no-ops and duplicates excluded). *)

val dup_skipped : t -> int
(** Redelivered records filtered by the position dedup. *)

val noop_skipped : t -> int

val max_batch : t -> int
(** Largest push batch received — never exceeds the granted window. *)
