(** The per-cluster subscription manager: durable named cursors, epoch-
    branded server push off the stable tail, credit-bounded batches, and
    cursor replication through the sequencing layer (DESIGN.md section
    13).

    Start one per cluster (after {!Lazylog.Orderer}); consumers attach
    with {!Subscriber.create} / [St_subscribe]. Delivery is at-least-once
    per push (ack-timeout redelivery) and exactly-once end to end once
    composed with the consumer's position dedup. Exercised only when
    started — a cluster without a manager runs byte-identically to the
    pre-subscription baseline. *)

open Ll_net

type t

val start : Lazylog.Erwin_common.t -> t
(** Creates the manager endpoint, installs the stable-advance push
    trigger ([cluster.on_stable]) and the view-change recovery fiber
    (cursor refetch from surviving replicas + epoch bump). Must run
    inside {!Ll_sim.Engine.run}, with the cluster's orderer started. *)

val endpoint_id : t -> Fabric.node_id
(** Where consumers send [St_subscribe]. *)

val cursor_of : t -> string -> int option
(** The manager's in-memory acked cursor for a named subscription. *)

val epoch_of : t -> string -> int option
(** Current epoch (bumps on every re-attach and every recovery). *)

val pushes : t -> string -> int
(** [St_push] batches sent (redeliveries included). *)

val redeliveries : t -> string -> int
(** Push batches re-sent after an ack timeout. *)

val recoveries : t -> int
(** View-change recoveries performed. *)
