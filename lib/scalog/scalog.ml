open Ll_sim
open Ll_net
open Ll_storage

type config = {
  nshards : int;
  interleaving_interval : Engine.time;
  shard_disk : Lazylog.Config.disk_kind;
  link : Fabric.link;
  rpc_overhead : Engine.time;
  shard_base_ns : int;
}

let default_config =
  {
    nshards = 1;
    interleaving_interval = Engine.us 100;
    shard_disk = Lazylog.Config.Sata;
    link = Fabric.default_link;
    rpc_overhead = Engine.us 80;
    shard_base_ns = 2_000;
  }

type req =
  | Append of { record : Lazylog.Types.record }
  | Replicate of { lsn : int; record : Lazylog.Types.record }
  | Report of { shard : int; primary : bool; len : int }
  | Cut of { shard : int; upto : int; base : int }
      (** lsns below [upto] are covered; lsn [l] gets position
          [base + l - prev_upto] *)
  | Resolve of { from : int; len : int }
  | Tail
  | ShardRead of { lsns : int list }
  | ShardTrim of { upto_lsn : int }

type resp =
  | R_gp of int
  | R_ok
  | R_tail of int
  | R_resolved of (int * int * int) list  (** position, shard, lsn *)
  | R_records of (int * Lazylog.Types.record) list  (** lsn, record *)

let req_size = function
  | Append { record } | Replicate { record; _ } -> record.Lazylog.Types.size + 16
  | ShardRead { lsns } -> 8 * List.length lsns
  | Report _ | Cut _ | Resolve _ | Tail | ShardTrim _ -> 32

let resp_size = function
  | R_records records ->
    List.fold_left
      (fun acc (_, (r : Lazylog.Types.record)) -> acc + r.size + 16)
      0 records
  | R_resolved l -> 24 * List.length l
  | R_gp _ | R_ok | R_tail _ -> 16

type shard = {
  sid : int;
  primary : (req, resp) Rpc.msg Fabric.node;
  primary_ep : (req, resp) Rpc.endpoint;
  backup : (req, resp) Rpc.msg Fabric.node;
  pstore : Lazylog.Types.record Flushed_store.t;
  bstore : Lazylog.Types.record Flushed_store.t;
  mutable next_lsn : int;
  mutable backup_len : int;
  mutable acked_upto : int;  (* lsns below this are covered by a cut *)
  mutable base_of_acked : int;  (* position of lsn [acked_upto - 1] + 1 *)
  cut_watch : Waitq.t;
  pending_gp : (int, int) Hashtbl.t;  (* lsn -> position, once covered *)
}

type t = {
  config : config;
  fabric : (req, resp) Rpc.msg Fabric.t;
  mutable shards : shard array;
  ordering : (req, resp) Rpc.msg Fabric.node;
  paxos : int array Ll_repl.Paxos.t;
  (* ordering-leader state *)
  reported_p : int array;
  reported_b : int array;
  mutable last_cut : int array;
  mutable total : int;
  (* position -> (shard, lsn) resolution segments: (gp, shard, lsn, count) *)
  mutable segments : (int * int * int * int) list;  (* newest first *)
  mutable cuts_committed : int;
  mutable next_client : int;
}

let committed_cuts t = t.cuts_committed

(* --- shard servers --- *)

let make_shard ~config fabric sid ~ordering_id =
  let mk name =
    Fabric.add_node fabric ~name ~send_overhead:config.rpc_overhead
      ~recv_overhead:config.rpc_overhead ()
  in
  let disk () =
    match config.shard_disk with
    | Lazylog.Config.Sata -> Disk.sata_ssd ()
    | Lazylog.Config.Nvme -> Disk.nvme_ssd ()
  in
  let primary = mk (Printf.sprintf "scalog.s%d.primary" sid) in
  let backup = mk (Printf.sprintf "scalog.s%d.backup" sid) in
  let primary_ep = Rpc.endpoint fabric primary in
  let backup_ep = Rpc.endpoint fabric backup in
  let s =
    {
      sid;
      primary;
      primary_ep;
      backup;
      pstore = Flushed_store.create ~disk:(disk ()) ();
      bstore = Flushed_store.create ~disk:(disk ()) ();
      next_lsn = 0;
      backup_len = 0;
      acked_upto = 0;
      base_of_acked = 0;
      cut_watch = Waitq.create ();
      pending_gp = Hashtbl.create 1024;
    }
  in
  let service req =
    config.shard_base_ns + int_of_float (0.3 *. float_of_int (req_size req))
  in
  Rpc.set_service_time primary_ep service;
  Rpc.set_service_time backup_ep service;
  Rpc.set_handler primary_ep (fun ~src:_ req ~reply ->
      match req with
      | Append { record } ->
        let lsn = s.next_lsn in
        s.next_lsn <- lsn + 1;
        Flushed_store.append s.pstore ~pos:lsn ~size:record.Lazylog.Types.size
          record;
        (* FIFO replication to the backup; the backup's durability is
           confirmed through its own length reports, not an ack. *)
        Rpc.send_oneway s.primary_ep ~dst:(Fabric.id s.backup)
          ~size:(req_size (Replicate { lsn; record }))
          (Replicate { lsn; record });
        (* Ack only once a committed cut covers this lsn (eager global
           ordering in the critical path). *)
        Waitq.await s.cut_watch (fun () -> s.acked_upto > lsn);
        reply (R_gp (Hashtbl.find s.pending_gp lsn))
      | Cut { upto; base; _ } ->
        if upto > s.acked_upto then begin
          for lsn = s.acked_upto to upto - 1 do
            Hashtbl.replace s.pending_gp lsn (base + lsn - s.acked_upto)
          done;
          s.base_of_acked <- base + (upto - s.acked_upto);
          s.acked_upto <- upto;
          Waitq.broadcast s.cut_watch
        end;
        reply R_ok
      | ShardRead { lsns } ->
        let records =
          List.filter_map
            (fun lsn ->
              match Flushed_store.read s.pstore ~pos:lsn with
              | Some r -> Some (lsn, r)
              | None -> None)
            lsns
        in
        reply ~size:(resp_size (R_records records)) (R_records records)
      | ShardTrim { upto_lsn } ->
        Flushed_store.trim s.pstore upto_lsn;
        Flushed_store.trim s.bstore upto_lsn;
        reply R_ok
      | Replicate _ | Report _ | Resolve _ | Tail ->
        failwith "scalog primary: unexpected request");
  Rpc.set_handler backup_ep (fun ~src:_ req ~reply ->
      match req with
      | Replicate { lsn; record } ->
        Flushed_store.append s.bstore ~pos:lsn ~size:record.Lazylog.Types.size
          record;
        if lsn + 1 > s.backup_len then s.backup_len <- lsn + 1;
        reply R_ok
      | _ -> failwith "scalog backup: unexpected request");
  (* Length reports, every interleaving interval (from both replicas, as
     the ordering layer needs the durable = min(primary, backup) prefix). *)
  Engine.spawn ~name:(Printf.sprintf "scalog.s%d.report" sid) (fun () ->
      let rec loop () =
        Engine.sleep config.interleaving_interval;
        Rpc.send_oneway s.primary_ep ~dst:ordering_id
          (Report { shard = sid; primary = true; len = s.next_lsn });
        Rpc.send_oneway backup_ep ~dst:ordering_id
          (Report { shard = sid; primary = false; len = s.backup_len });
        loop ()
      in
      loop ());
  s

(* --- ordering layer --- *)

let ordering_tick t ep =
  let n = Array.length t.shards in
  let durable = Array.init n (fun i -> min t.reported_p.(i) t.reported_b.(i)) in
  if Array.exists (fun i -> durable.(i) > t.last_cut.(i)) (Array.init n Fun.id)
  then begin
    (* Make the cut fault tolerant before exposing it. *)
    ignore (Ll_repl.Paxos.propose t.paxos durable : int);
    t.cuts_committed <- t.cuts_committed + 1;
    let prev = t.last_cut in
    let base = ref t.total in
    for sid = 0 to n - 1 do
      let delta = durable.(sid) - prev.(sid) in
      if delta > 0 then begin
        t.segments <- (!base, sid, prev.(sid), delta) :: t.segments;
        Rpc.send_oneway ep
          ~dst:(Fabric.id t.shards.(sid).primary)
          (Cut { shard = sid; upto = durable.(sid); base = !base });
        base := !base + delta
      end
    done;
    t.total <- !base;
    t.last_cut <- durable
  end

let resolve t from len =
  (* Segments are newest-first; collect the (position, shard, lsn) triple
     for every requested position that is already ordered. *)
  let out = ref [] in
  List.iter
    (fun (base, sid, lsn0, count) ->
      for i = 0 to count - 1 do
        let gp = base + i in
        if gp >= from && gp < from + len then
          out := (gp, sid, lsn0 + i) :: !out
      done)
    t.segments;
  (* Positions are unique across segments, so first-component order. *)
  List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) !out

let create ?(config = default_config) () =
  let fabric = Fabric.create ~link:config.link () in
  let ordering =
    Fabric.add_node fabric ~name:"scalog.ordering"
      ~send_overhead:config.rpc_overhead ~recv_overhead:config.rpc_overhead ()
  in
  let paxos =
    Ll_repl.Paxos.create ~acceptors:3 ~link:config.link
      ~rpc_overhead:config.rpc_overhead ()
  in
  let ordering_ep = Rpc.endpoint fabric ordering in
  let n = config.nshards in
  let t =
    {
      config;
      fabric;
      shards = [||];
      ordering;
      paxos;
      reported_p = Array.make n 0;
      reported_b = Array.make n 0;
      last_cut = Array.make n 0;
      total = 0;
      segments = [];
      cuts_committed = 0;
      next_client = 0;
    }
  in
  t.shards <-
    Array.init n (fun sid ->
        make_shard ~config fabric sid ~ordering_id:(Fabric.id ordering));
  Rpc.set_service_time ordering_ep (fun _ -> 2_000);
  Rpc.set_handler ordering_ep (fun ~src:_ req ~reply ->
      match req with
      | Report { shard; primary; len } ->
        if primary then
          t.reported_p.(shard) <- max t.reported_p.(shard) len
        else t.reported_b.(shard) <- max t.reported_b.(shard) len;
        reply R_ok
      | Resolve { from; len } -> reply (R_resolved (resolve t from len))
      | Tail -> reply (R_tail t.total)
      | _ -> failwith "scalog ordering: unexpected request");
  (* The interleaving loop: batch reports, then order via Paxos. *)
  Engine.spawn ~name:"scalog.ordering.loop" (fun () ->
      let rec loop () =
        Engine.sleep config.interleaving_interval;
        ordering_tick t ordering_ep;
        loop ()
      in
      loop ());
  t

let client t : Lazylog.Log_api.t =
  let cid = t.next_client in
  t.next_client <- cid + 1;
  let node =
    Fabric.add_node t.fabric
      ~name:(Printf.sprintf "scalog-client%d" cid)
      ~send_overhead:t.config.rpc_overhead ~recv_overhead:t.config.rpc_overhead
      ()
  in
  let ep = Rpc.endpoint t.fabric node in
  let seq = ref 0 in
  let rr = ref cid in
  let append_pos ~size ~data =
    incr seq;
    let rid = { Lazylog.Types.Rid.client = cid; seq = !seq } in
    let record = Lazylog.Types.record ~rid ~size ~data () in
    (* Scalog clients choose their shard. *)
    let shard = t.shards.(!rr mod Array.length t.shards) in
    incr rr;
    match
      Rpc.call ep ~dst:(Fabric.id shard.primary)
        ~size:(req_size (Append { record }))
        (Append { record })
    with
    | R_gp gp -> gp
    | _ -> failwith "scalog: bad append response"
  in
  let read ~from ~len =
    (* Resolve positions, waiting for ordering to catch up if needed. *)
    let rec resolve_all () =
      match Rpc.call ep ~dst:(Fabric.id t.ordering) (Resolve { from; len }) with
      | R_resolved triples when List.length triples >= len -> triples
      | R_resolved _ ->
        Engine.sleep t.config.interleaving_interval;
        resolve_all ()
      | _ -> failwith "scalog: bad resolve response"
    in
    let triples = resolve_all () in
    let by_shard = Hashtbl.create 8 in
    List.iter
      (fun (gp, sid, lsn) ->
        let l = try Hashtbl.find by_shard sid with Not_found -> [] in
        Hashtbl.replace by_shard sid ((gp, lsn) :: l))
      triples;
    let calls =
      Hashtbl.fold
        (fun sid pairs acc ->
          let lsns = List.map snd pairs in
          let iv =
            Rpc.call_async ep
              ~dst:(Fabric.id t.shards.(sid).primary)
              ~size:(req_size (ShardRead { lsns }))
              (ShardRead { lsns })
          in
          (pairs, iv) :: acc)
        by_shard []
    in
    List.concat_map
      (fun (pairs, iv) ->
        match Ivar.read iv with
        | R_records records ->
          List.filter_map
            (fun (gp, lsn) ->
              match List.assoc_opt lsn records with
              | Some r -> Some (gp, r)
              | None -> None)
            pairs
        | _ -> failwith "scalog: bad read response")
      calls
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  let check_tail () =
    match Rpc.call ep ~dst:(Fabric.id t.ordering) Tail with
    | R_tail n -> n
    | _ -> failwith "scalog: bad tail response"
  in
  let trim ~upto =
    match Rpc.call ep ~dst:(Fabric.id t.ordering) (Resolve { from = 0; len = upto }) with
    | R_resolved triples ->
      let upto_lsn = Hashtbl.create 8 in
      List.iter
        (fun (_, sid, lsn) ->
          let cur = try Hashtbl.find upto_lsn sid with Not_found -> 0 in
          Hashtbl.replace upto_lsn sid (max cur (lsn + 1)))
        triples;
      Hashtbl.iter
        (fun sid l ->
          ignore
            (Rpc.call ep ~dst:(Fabric.id t.shards.(sid).primary)
               (ShardTrim { upto_lsn = l })))
        upto_lsn;
      true
    | _ -> false
  in
  {
    Lazylog.Log_api.name = "scalog";
    append = (fun ~size ~data -> ignore (append_pos ~size ~data : int); true);
    read;
    check_tail;
    trim;
    append_sync = Some (fun ~size ~data -> append_pos ~size ~data);
  }

(* --- shard-in-isolation parity probe (section 6.1) --- *)

let shard_in_isolation_probe ?(config = default_config) ~rate ~seconds ~size () =
  let lat = Stats.Reservoir.create () in
  let completed = ref 0 in
  Engine.run (fun () ->
      let fabric = Fabric.create ~link:config.link () in
      (* A lone shard whose primary acks as soon as replication to the
         backup is confirmed — no ordering layer involved. *)
      let mk name =
        Fabric.add_node fabric ~name ~send_overhead:config.rpc_overhead
          ~recv_overhead:config.rpc_overhead ()
      in
      let disk () =
        match config.shard_disk with
        | Lazylog.Config.Sata -> Disk.sata_ssd ()
        | Lazylog.Config.Nvme -> Disk.nvme_ssd ()
      in
      let primary = mk "iso.primary" and backup = mk "iso.backup" in
      let primary_ep = Rpc.endpoint fabric primary in
      let backup_ep = Rpc.endpoint fabric backup in
      let pstore = Flushed_store.create ~disk:(disk ()) () in
      let bstore = Flushed_store.create ~disk:(disk ()) () in
      let next = ref 0 in
      let service req =
        config.shard_base_ns + int_of_float (0.3 *. float_of_int (req_size req))
      in
      Rpc.set_service_time primary_ep service;
      Rpc.set_service_time backup_ep service;
      Rpc.set_handler backup_ep (fun ~src:_ req ~reply ->
          match req with
          | Replicate { lsn; record } ->
            Flushed_store.append bstore ~pos:lsn ~size:record.Lazylog.Types.size
              record;
            reply R_ok
          | _ -> failwith "iso backup");
      Rpc.set_handler primary_ep (fun ~src:_ req ~reply ->
          match req with
          | Append { record } ->
            let lsn = !next in
            incr next;
            Flushed_store.append pstore ~pos:lsn
              ~size:record.Lazylog.Types.size record;
            (match
               Rpc.call primary_ep ~dst:(Fabric.id backup)
                 ~size:(req_size (Replicate { lsn; record }))
                 (Replicate { lsn; record })
             with
            | R_ok -> ()
            | _ -> ());
            reply (R_gp lsn)
          | _ -> failwith "iso primary");
      let client_node = mk "iso.client" in
      let client_ep = Rpc.endpoint fabric client_node in
      let rng = Rng.create ~seed:11 in
      let stop_at = Engine.sec 1 * int_of_float (seconds *. 1e9) / 1_000_000_000 in
      let stop_at = max stop_at (Engine.ms 50) in
      let rec arrivals i =
        if Engine.now () < stop_at then begin
          Engine.spawn (fun () ->
              let t0 = Engine.now () in
              let record =
                Lazylog.Types.record
                  ~rid:{ Lazylog.Types.Rid.client = 0; seq = i }
                  ~size ()
              in
              match
                Rpc.call client_ep ~dst:(Fabric.id primary)
                  ~size:(req_size (Append { record }))
                  (Append { record })
              with
              | R_gp _ ->
                Stats.Reservoir.add lat (Engine.now () - t0);
                incr completed
              | _ -> ());
          Engine.sleep
            (Engine.us_f (Rng.exponential rng ~mean:(1e6 /. rate)));
          arrivals (i + 1)
        end
      in
      arrivals 0;
      Engine.at (stop_at + Engine.ms 20) (fun () -> Engine.stop ()));
  ( Stats.Reservoir.mean_us lat,
    float_of_int !completed /. seconds )
