open Ll_sim
open Ll_net

type 'cmd req =
  | Prepare of { ballot : int }
  | Accept of { ballot : int; slot : int; cmd : 'cmd }

type 'cmd resp =
  | Promise of { ok : bool; accepted : (int * int * 'cmd) list }
  | Accepted of { ok : bool }

type 'cmd acceptor = {
  node : ('cmd req, 'cmd resp) Rpc.msg Fabric.node;
  mutable promised : int;
  accepted : (int, int * 'cmd) Hashtbl.t;  (* slot -> ballot, cmd *)
}

type 'cmd t = {
  fabric : ('cmd req, 'cmd resp) Rpc.msg Fabric.t;
  acceptors : 'cmd acceptor array;
  ep : ('cmd req, 'cmd resp) Rpc.endpoint;  (* proposer *)
  mutable ballot : int;
  mutable leading : bool;
  mutable next_slot : int;
  log : (int, 'cmd) Hashtbl.t;
  mutable commit_cursor : int;
  on_commit : int -> 'cmd -> unit;
}

let majority t = (Array.length t.acceptors / 2) + 1

(* Issue a request to every acceptor and wait for [need] replies.
   Crashed acceptors simply never answer. *)
let quorum_call t req ~need =
  let got = ref [] in
  let count = ref 0 in
  let enough = Ivar.create () in
  Array.iter
    (fun a ->
      let iv = Rpc.call_async t.ep ~dst:(Fabric.id a.node) req in
      Engine.spawn ~name:"paxos.collect" (fun () ->
          let r = Ivar.read iv in
          got := r :: !got;
          incr count;
          if !count >= need then ignore (Ivar.try_fill enough ())))
    t.acceptors;
  Ivar.read enough;
  !got

let handle_acceptor a ~src:_ req ~reply =
  match req with
  | Prepare { ballot } ->
    if ballot > a.promised then begin
      a.promised <- ballot;
      let accepted =
        Hashtbl.fold (fun slot (b, c) acc -> (slot, b, c) :: acc) a.accepted []
      in
      reply (Promise { ok = true; accepted })
    end
    else reply (Promise { ok = false; accepted = [] })
  | Accept { ballot; slot; cmd } ->
    if ballot >= a.promised then begin
      a.promised <- ballot;
      Hashtbl.replace a.accepted slot (ballot, cmd);
      reply (Accepted { ok = true })
    end
    else reply (Accepted { ok = false })

let deliver_commits t =
  let rec drain () =
    match Hashtbl.find_opt t.log t.commit_cursor with
    | Some cmd ->
      let slot = t.commit_cursor in
      t.commit_cursor <- slot + 1;
      t.on_commit slot cmd;
      drain ()
    | None -> ()
  in
  drain ()

let commit t slot cmd =
  if not (Hashtbl.mem t.log slot) then begin
    Hashtbl.replace t.log slot cmd;
    deliver_commits t
  end

let rec accept_slot t slot cmd =
  let resps = quorum_call t (Accept { ballot = t.ballot; slot; cmd }) ~need:(majority t) in
  let ok =
    List.for_all (function Accepted { ok } -> ok | Promise _ -> false) resps
  in
  if ok then commit t slot cmd
  else begin
    (* Preempted by a higher ballot: reclaim leadership and retry. *)
    t.leading <- false;
    become_leader t;
    accept_slot t slot cmd
  end

and become_leader t =
  if not t.leading then begin
    t.ballot <- t.ballot + 1 + Array.length t.acceptors;
    let resps = quorum_call t (Prepare { ballot = t.ballot }) ~need:(majority t) in
    let promises =
      List.filter_map
        (function Promise { ok = true; accepted } -> Some accepted | _ -> None)
        resps
    in
    if List.length promises >= majority t then begin
      t.leading <- true;
      (* Re-propose the highest-ballot accepted value per slot. *)
      let best : (int, int * 'cmd) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (List.iter (fun (slot, b, c) ->
             match Hashtbl.find_opt best slot with
             | Some (b', _) when b' >= b -> ()
             | _ -> Hashtbl.replace best slot (b, c)))
        promises;
      let slots =
        Hashtbl.fold (fun slot (_, c) acc -> (slot, c) :: acc) best []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      List.iter (fun (slot, c) -> accept_slot t slot c) slots;
      List.iter
        (fun (slot, _) ->
          if slot >= t.next_slot then t.next_slot <- slot + 1)
        slots
    end
    else become_leader t
  end

let propose t cmd =
  become_leader t;
  let slot = t.next_slot in
  t.next_slot <- slot + 1;
  accept_slot t slot cmd;
  slot

let committed t =
  Hashtbl.fold (fun slot cmd acc -> (slot, cmd) :: acc) t.log []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let chosen t slot = Hashtbl.find_opt t.log slot

let crash_acceptor t i = Fabric.crash t.fabric t.acceptors.(i).node

let create ?(acceptors = 3) ?(link = Fabric.default_link)
    ?(rpc_overhead = Engine.ns 500) ?(on_commit = fun _ _ -> ()) () =
  let fabric = Fabric.create ~link () in
  let make_acceptor i =
    let node =
      Fabric.add_node fabric
        ~name:(Printf.sprintf "paxos.acceptor%d" i)
        ~send_overhead:rpc_overhead ~recv_overhead:rpc_overhead ()
    in
    { node; promised = -1; accepted = Hashtbl.create 64 }
  in
  let accs = Array.init acceptors make_acceptor in
  let proposer_node =
    Fabric.add_node fabric ~name:"paxos.proposer"
      ~send_overhead:rpc_overhead ~recv_overhead:rpc_overhead ()
  in
  let ep = Rpc.endpoint fabric proposer_node in
  let t =
    {
      fabric;
      acceptors = accs;
      ep;
      ballot = 0;
      leading = false;
      next_slot = 0;
      log = Hashtbl.create 256;
      commit_cursor = 0;
      on_commit;
    }
  in
  Array.iter
    (fun a ->
      let aep = Rpc.endpoint fabric a.node in
      Rpc.set_service_time aep (fun _ -> 800);
      Rpc.set_handler aep (fun ~src req ~reply ->
          handle_acceptor a ~src req ~reply:(fun r -> reply r)))
    accs;
  t
