open Ll_sim
open Ll_net
open Ll_storage

type config = {
  nshards : int;
  replicas_per_shard : int;
  shard_disk : Lazylog.Config.disk_kind;
  link : Fabric.link;
  rpc_overhead : Engine.time;
  sequencer_base_ns : int;
  storage_base_ns : int;
}

let default_config =
  {
    nshards = 1;
    replicas_per_shard = 3;
    shard_disk = Lazylog.Config.Sata;
    link = Fabric.default_link;
    rpc_overhead = Engine.ns 500;
    sequencer_base_ns = 400;
    storage_base_ns = 1_500;
  }

type req =
  | Seq_next
  | Seq_tail
  | Su_write of { pos : int; record : Lazylog.Types.record }
  | Su_read of { positions : int list }
  | Su_probe of { positions : int list }  (* non-blocking: which are missing *)
  | Su_fill of { pos : int }  (* write-once junk fill for holes *)
  | Su_trim of { upto : int }

type resp =
  | R_pos of int
  | R_ok
  | R_records of (int * Lazylog.Types.record) list
  | R_missing of int list

type storage_unit = {
  su_node : (req, resp) Rpc.msg Fabric.node;
  su_ep : (req, resp) Rpc.endpoint;
  store : Lazylog.Types.record Flushed_store.t;
  written : Waitq.t;  (* reads of not-yet-written positions wait here *)
  mutable trimmed : int;  (* positions below this are gone, not pending *)
}

type shard = { chain : storage_unit list }  (* head first, tail last *)

type t = {
  config : config;
  fabric : (req, resp) Rpc.msg Fabric.t;
  sequencer : (req, resp) Rpc.msg Fabric.node;
  mutable shards : shard array;
  mutable tail : int;
  mutable next_client : int;
  mutable written : int;
}

let positions_written t = t.written

let messages_sent t = Fabric.messages_sent t.fabric

let allocate_position t =
  (* Test hook: take a sequencer position without writing the chain —
     the crashed-client scenario behind hole filling. *)
  let pos = t.tail in
  t.tail <- pos + 1;
  pos

let req_size (r : req) =
  match r with
  | Su_write { record; _ } -> record.Lazylog.Types.size + 16
  | Su_read { positions } | Su_probe { positions } -> 8 * List.length positions
  | Seq_next | Seq_tail | Su_trim _ | Su_fill _ -> 32

let resp_size = function
  | R_records records ->
    List.fold_left
      (fun acc (_, (r : Lazylog.Types.record)) -> acc + r.size + 16)
      0 records
  | R_missing l -> 8 * List.length l
  | R_pos _ | R_ok -> 16

let make_storage_unit t ~name =
  let su_node =
    Fabric.add_node t.fabric ~name ~send_overhead:t.config.rpc_overhead
      ~recv_overhead:t.config.rpc_overhead ()
  in
  let su_ep = Rpc.endpoint t.fabric su_node in
  let disk =
    match t.config.shard_disk with
    | Lazylog.Config.Sata -> Disk.sata_ssd ()
    | Lazylog.Config.Nvme -> Disk.nvme_ssd ()
  in
  let su =
    {
      su_node;
      su_ep;
      store = Flushed_store.create ~disk ();
      written = Waitq.create ();
      trimmed = 0;
    }
  in
  (* Storage units validate, index and buffer each record; ~1.2 ns/B puts
     a 4 KB chain write at ~6.5 us of CPU, the regime where Corfu's serial
     chain hops cost ~4x an Erwin append (paper figure 6). *)
  Rpc.set_service_time su_ep (fun r ->
      t.config.storage_base_ns
      + int_of_float (1.2 *. float_of_int (req_size r)));
  Rpc.set_handler su_ep (fun ~src:_ r ~reply ->
      match r with
      | Su_write { pos; record } ->
        Flushed_store.append su.store ~pos ~size:record.Lazylog.Types.size
          record;
        t.written <- t.written + 1;
        Waitq.broadcast su.written;
        reply R_ok
      | Su_read { positions } ->
        (* A position is answerable once written (or filled) — or once
           trimmed away, in which case it is simply absent. *)
        let have () =
          List.for_all
            (fun p ->
              p < su.trimmed || Flushed_store.mem_read su.store ~pos:p <> None)
            positions
        in
        Waitq.await su.written have;
        let records =
          List.filter_map
            (fun p ->
              match Flushed_store.read su.store ~pos:p with
              | Some rec_ -> Some (p, rec_)
              | None -> None)
            positions
        in
        reply ~size:(resp_size (R_records records)) (R_records records)
      | Su_probe { positions } ->
        let missing =
          List.filter
            (fun p ->
              p >= su.trimmed && Flushed_store.mem_read su.store ~pos:p = None)
            positions
        in
        reply (R_missing missing)
      | Su_fill { pos } ->
        (* Write-once: a fill loses to data that arrived first. *)
        if Flushed_store.mem_read su.store ~pos = None then begin
          Flushed_store.append su.store ~pos ~size:16 Lazylog.Types.no_op;
          Waitq.broadcast su.written
        end;
        reply R_ok
      | Su_trim { upto } ->
        Flushed_store.trim su.store upto;
        if upto > su.trimmed then su.trimmed <- upto;
        Waitq.broadcast su.written;
        reply R_ok
      | Seq_next | Seq_tail -> failwith "corfu: sequencer request at storage");
  su

let create ?(config = default_config) () =
  let fabric = Fabric.create ~link:config.link () in
  let sequencer =
    Fabric.add_node fabric ~name:"corfu.sequencer"
      ~send_overhead:config.rpc_overhead ~recv_overhead:config.rpc_overhead ()
  in
  let t =
    {
      config;
      fabric;
      sequencer;
      shards = [||];
      tail = 0;
      next_client = 0;
      written = 0;
    }
  in
  let seq_ep = Rpc.endpoint fabric sequencer in
  Rpc.set_service_time seq_ep (fun _ -> config.sequencer_base_ns);
  Rpc.set_handler seq_ep (fun ~src:_ r ~reply ->
      match r with
      | Seq_next ->
        let pos = t.tail in
        t.tail <- pos + 1;
        reply (R_pos pos)
      | Seq_tail -> reply (R_pos t.tail)
      | Su_write _ | Su_read _ | Su_probe _ | Su_fill _ | Su_trim _ ->
        failwith "corfu: storage request at sequencer");
  t.shards <-
    Array.init config.nshards (fun s ->
        {
          chain =
            List.init config.replicas_per_shard (fun i ->
                make_storage_unit t
                  ~name:(Printf.sprintf "corfu.s%d.r%d" s i));
        });
  t

let client t : Lazylog.Log_api.t =
  let cid = t.next_client in
  t.next_client <- cid + 1;
  let node =
    Fabric.add_node t.fabric
      ~name:(Printf.sprintf "corfu-client%d" cid)
      ~send_overhead:t.config.rpc_overhead ~recv_overhead:t.config.rpc_overhead
      ()
  in
  let ep = Rpc.endpoint t.fabric node in
  let seq = ref 0 in
  let append_pos ~size ~data =
    incr seq;
    let rid = { Lazylog.Types.Rid.client = cid; seq = !seq } in
    let record = Lazylog.Types.record ~rid ~size ~data () in
    (* 1 RTT: obtain the position. *)
    let pos =
      match Rpc.call ep ~dst:(Fabric.id t.sequencer) Seq_next with
      | R_pos p -> p
      | _ -> failwith "corfu: bad sequencer response"
    in
    (* k RTTs: client-driven chain, replicas updated serially. *)
    let shard = t.shards.(pos mod Array.length t.shards) in
    List.iter
      (fun su ->
        let r = Su_write { pos; record } in
        match Rpc.call ep ~dst:(Fabric.id su.su_node) ~size:(req_size r) r with
        | R_ok -> ()
        | _ -> failwith "corfu: bad write response")
      shard.chain;
    pos
  in
  let read ~from ~len =
    let positions = List.init len (fun i -> from + i) in
    let groups = Array.make (Array.length t.shards) [] in
    List.iter
      (fun p ->
        let s = p mod Array.length t.shards in
        groups.(s) <- p :: groups.(s))
      positions;
    let calls =
      Array.to_list
        (Array.mapi
           (fun s ps ->
             match ps with
             | [] -> None
             | ps ->
               (* Read from the chain tail, where writes commit. A read
                 stuck on a hole (a crashed client's allocated position)
                 is unstuck by filling the hole with junk along the whole
                 chain — Corfu's hole-filling protocol. *)
               let chain = t.shards.(s).chain in
               let tail_su = List.nth chain (List.length chain - 1) in
               let r = Su_read { positions = List.rev ps } in
               let iv = Ivar.create () in
               Engine.spawn ~name:"corfu.read" (fun () ->
                   let rec attempt () =
                     match
                       Rpc.call_timeout ep ~dst:(Fabric.id tail_su.su_node)
                         ~size:(req_size r) ~timeout:(Engine.ms 5) r
                     with
                     | Some resp -> Ivar.fill iv resp
                     | None ->
                       (match
                          Rpc.call ep ~dst:(Fabric.id tail_su.su_node)
                            (Su_probe { positions = List.rev ps })
                        with
                       | R_missing missing ->
                         List.iter
                           (fun pos ->
                             List.iter
                               (fun su ->
                                 ignore
                                   (Rpc.call ep ~dst:(Fabric.id su.su_node)
                                      (Su_fill { pos })))
                               chain)
                           missing
                       | _ -> ());
                       attempt ()
                   in
                   attempt ());
               Some iv)
           groups)
      |> List.filter_map Fun.id
    in
    Ivar.join_all calls
    |> List.concat_map (function
         | R_records records -> records
         | _ -> failwith "corfu: bad read response")
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  let check_tail () =
    match Rpc.call ep ~dst:(Fabric.id t.sequencer) Seq_tail with
    | R_pos p -> p
    | _ -> failwith "corfu: bad tail response"
  in
  let trim ~upto =
    Array.iter
      (fun shard ->
        List.iter
          (fun su ->
            ignore (Rpc.call ep ~dst:(Fabric.id su.su_node) (Su_trim { upto })))
          shard.chain)
      t.shards;
    true
  in
  {
    Lazylog.Log_api.name = "corfu";
    append = (fun ~size ~data -> ignore (append_pos ~size ~data : int); true);
    read;
    check_tail;
    trim;
    append_sync = Some (fun ~size ~data -> append_pos ~size ~data);
  }
