open Ll_sim
open Ll_net
open Erwin_common

type ep = (Proto.req, Proto.resp) Rpc.endpoint

let try_append_seq (cluster : t) ep ~view ~track entry =
  let req = Proto.Sr_append { view; entry; track } in
  let size = Proto.req_size req in
  let ivs =
    List.map
      (fun r -> Rpc.call_async ep ~dst:(Seq_replica.node_id r) ~size req)
      cluster.replicas
  in
  match Ivar.join_all_timeout ivs ~timeout:cluster.cfg.Config.append_timeout with
  | Some resps
    when List.for_all
           (function Proto.R_append { ok; _ } -> ok | _ -> false)
           resps ->
    `Ok
  | Some _ | None -> `Fail

let await_view_after (cluster : t) view =
  ignore
    (Waitq.await_timeout cluster.view_changed
       ~timeout:cluster.cfg.Config.append_timeout (fun () ->
         cluster.view > view)
      : bool)

let append_entry (cluster : t) ep ~track entry =
  if Probe.active () then
    Probe.emit (Probe.Append_invoked { rid = Types.entry_rid entry });
  if cluster.cfg.Config.append_batching then begin
    (* Group commit: hand the entry to the shared linger batcher and wait
       for its batch's fan-out ack. Retries re-coalesce into new batches;
       replicas that already hold the rid filter it as a duplicate. *)
    let b = Batcher.get cluster in
    let rec attempt () =
      match b.submit_entry ~track entry with
      | `Ok ->
        if Probe.active () then
          Probe.emit (Probe.Append_acked { rid = Types.entry_rid entry })
      | `Fail view ->
        await_view_after cluster view;
        attempt ()
    in
    attempt ()
  end
  else
    let rec attempt () =
      let view = cluster.view in
      match try_append_seq cluster ep ~view ~track entry with
      | `Ok ->
        if Probe.active () then
          Probe.emit (Probe.Append_acked { rid = Types.entry_rid entry })
      | `Fail ->
        await_view_after cluster view;
        attempt ()
    in
    attempt ()

let check_tail (cluster : t) ep =
  let rec go () =
    let view = cluster.view in
    let ldr = leader cluster in
    match
      Rpc.call_timeout ep
        ~dst:(Seq_replica.node_id ldr)
        ~timeout:cluster.cfg.Config.append_timeout
        (Proto.Sr_check_tail { view })
    with
    | Some (Proto.R_tail { ok = true; tail }) -> tail
    | Some _ | None ->
      await_view_after cluster view;
      go ()
  in
  go ()

let wait_ordered (cluster : t) ep rid =
  let rec go () =
    let view = cluster.view in
    let ldr = leader cluster in
    match
      Rpc.call_timeout ep
        ~dst:(Seq_replica.node_id ldr)
        ~timeout:(Engine.ms 100)
        (Proto.Sr_wait_ordered { rid })
    with
    | Some (Proto.R_gp { gp }) -> gp
    | Some _ | None ->
      await_view_after cluster view;
      go ()
  in
  go ()

let read_grouped (cluster : t) ep ~shard_of positions =
  (* Batched shard read: shard ids are dense, so group positions with two
     array passes (count, then fill into a pre-sized buffer per shard)
     instead of hashing into list refs — one allocation per involved
     shard, no per-position consing. *)
  let nshards = Array.length cluster.shard_index in
  let counts = Array.make nshards 0 in
  List.iter
    (fun p ->
      let sid = Shard.shard_id (shard_of p) in
      counts.(sid) <- counts.(sid) + 1)
    positions;
  let bufs =
    Array.init nshards (fun sid ->
        if counts.(sid) = 0 then [||] else Array.make counts.(sid) 0)
  in
  let fill = Array.make nshards 0 in
  List.iter
    (fun p ->
      let sid = Shard.shard_id (shard_of p) in
      bufs.(sid).(fill.(sid)) <- p;
      fill.(sid) <- fill.(sid) + 1)
    positions;
  let calls = ref [] in
  Array.iteri
    (fun sid buf ->
      if Array.length buf > 0 then begin
        let shard = shard_by_id cluster sid in
        let req =
          Proto.Sh_read
            {
              positions = Array.to_list buf;
              stable_hint = cluster.stable_gp;
            }
        in
        let iv = Ivar.create () in
        Engine.spawn ~name:"client.read" (fun () ->
            match
              Rpc.call_retry ep ~dst:(Shard.primary_id shard)
                ~size:(Proto.req_size req) ~timeout:(Engine.ms 50)
                ~max_tries:100 ~backoff:(Engine.us 50) req
            with
            | Some resp -> Ivar.fill iv resp
            | None -> Ivar.fill iv (Proto.R_records { records = [] }));
        calls := iv :: !calls
      end)
    bufs;
  let resps = Ivar.join_all !calls in
  let records =
    List.concat_map
      (function
        | Proto.R_records { records } -> records
        | _ -> failwith "read_grouped: bad response")
      resps
  in
  List.sort (fun (a, _) (b, _) -> Int.compare a b) records

let trim_all (cluster : t) ep ~upto =
  let acks =
    List.map
      (fun shard ->
        Rpc.call_async ep ~dst:(Shard.primary_id shard)
          (Proto.Sh_trim { upto }))
      cluster.shards
  in
  ignore (Ivar.join_all acks : Proto.resp list);
  true
