open Ll_sim
open Ll_net
open Erwin_common

type ep = (Proto.req, Proto.resp) Rpc.endpoint

(* Arm the client endpoint's retry budget: retries (never first
   attempts) then draw from a token bucket refilled by successful first
   attempts, so a timeout storm degrades to load-shedding instead of a
   synchronized retry flood. *)
let install_retry_budget (cluster : t) ep =
  if cluster.cfg.Config.retry_budget then
    Rpc.set_retry_budget ep
      (Rpc.Retry_budget.create ~ratio:cluster.cfg.Config.retry_budget_ratio
         ~cap:cluster.cfg.Config.retry_budget_cap ())

let try_append_seq (cluster : t) ep ~view ~track entry =
  let req = Proto.Sr_append { view; entry; track } in
  let size = Proto.req_size req in
  let ivs =
    List.map
      (fun r -> Rpc.call_async ep ~dst:(Seq_replica.node_id r) ~size req)
      cluster.replicas
  in
  match Ivar.join_all_timeout ivs ~timeout:cluster.cfg.Config.append_timeout with
  | Some resps
    when List.for_all
           (function Proto.R_append { ok; _ } -> ok | _ -> false)
           resps ->
    `Ok
  | Some _ | None -> `Fail

let await_view_after (cluster : t) view =
  ignore
    (Waitq.await_timeout cluster.view_changed
       ~timeout:cluster.cfg.Config.append_timeout (fun () ->
         cluster.view > view)
      : bool)

let append_entry (cluster : t) ep ~track entry =
  if Probe.active () then
    Probe.emit (Probe.Append_invoked { rid = Types.entry_rid entry });
  if cluster.cfg.Config.append_batching then begin
    (* Group commit: hand the entry to the shared linger batcher and wait
       for its batch's fan-out ack. Retries re-coalesce into new batches;
       replicas that already hold the rid filter it as a duplicate. *)
    let b = Batcher.get cluster in
    let rec attempt () =
      match b.submit_entry ~track entry with
      | `Ok ->
        if Probe.active () then
          Probe.emit (Probe.Append_acked { rid = Types.entry_rid entry })
      | `Fail view ->
        await_view_after cluster view;
        attempt ()
    in
    attempt ()
  end
  else
    let rec attempt () =
      let view = cluster.view in
      match try_append_seq cluster ep ~view ~track entry with
      | `Ok ->
        if Probe.active () then
          Probe.emit (Probe.Append_acked { rid = Types.entry_rid entry })
      | `Fail ->
        await_view_after cluster view;
        attempt ()
    in
    attempt ()

let check_tail ?(log = 0) (cluster : t) ep =
  let rec go () =
    let view = cluster.view in
    let ldr = leader cluster in
    match
      Rpc.call_timeout ep
        ~dst:(Seq_replica.node_id ldr)
        ~timeout:cluster.cfg.Config.append_timeout
        (Proto.Sr_check_tail { view; log })
    with
    | Some (Proto.R_tail { ok = true; tail }) -> tail
    | Some _ | None ->
      await_view_after cluster view;
      go ()
  in
  go ()

let wait_ordered (cluster : t) ep rid =
  let rec go () =
    let view = cluster.view in
    let ldr = leader cluster in
    match
      Rpc.call_timeout ep
        ~dst:(Seq_replica.node_id ldr)
        ~timeout:(Engine.ms 100)
        (Proto.Sr_wait_ordered { rid })
    with
    | Some (Proto.R_gp { gp }) -> gp
    | Some _ | None ->
      await_view_after cluster view;
      go ()
  in
  go ()

(* One (destination, tries) plan per shard read. With [replica_reads]
   the plan rotates over every replica of the shard ([rr] staggers the
   starting replica across calls, so concurrent readers spread load);
   otherwise it is the primary with the legacy retry budget, with the
   backups as a last-resort fallback once the primary is exhausted. *)
let read_plan (cluster : t) ?rr shard =
  if cluster.cfg.Config.replica_reads then begin
    let ids = Array.of_list (Shard.replica_ids shard) in
    let n = Array.length ids in
    let start =
      match rr with
      | Some r ->
        let s = !r mod n in
        incr r;
        s
      | None -> 0
    in
    List.init n (fun i -> (ids.((start + i) mod n), if n = 1 then 100 else 25))
  end
  else
    (Shard.primary_id shard, 100)
    :: List.map (fun b -> (b, 3)) (Shard.backup_ids shard)

(* Piggybacked stable bounds merge into their own log's frontier (log 0
   keeps the scalar — the original max-merge, unchanged). *)
let note_piggyback (cluster : t) stable = note_stable_log cluster stable

(* Latency-outlier avoidance in the read plan (only with hedged reads
   on): a replica whose observed latency score exceeds 3x the plan's
   median moves to the back, so steady-state reads skip a fail-slow
   replica entirely and the hedge only pays for the cold start before
   the scores converge. Unsampled replicas are left in place (assumed
   healthy until measured), and healthy replicas keep their rotation
   order — the partition is stable. *)
let demote_slow_replicas ep plan =
  match plan with
  | [] | [ _ ] -> plan
  | _ -> (
    let scores = List.filter_map (fun (d, _) -> Rpc.peer_score ep d) plan in
    match scores with
    | [] | [ _ ] -> plan
    | _ ->
      let sorted = List.sort Float.compare scores in
      let median = List.nth sorted (List.length sorted / 2) in
      if median <= 0.0 then plan
      else
        let slow (d, _) =
          match Rpc.peer_score ep d with
          | Some s -> s > 3.0 *. median
          | None -> false
        in
        let healthy, outliers = List.partition (fun e -> not (slow e)) plan in
        healthy @ outliers)

let read_grouped ?rr (cluster : t) ep ~shard_of positions =
  (* Batched shard read: shard ids are dense, so group positions with two
     array passes (count, then fill into a pre-sized buffer per shard)
     instead of hashing into list refs — one allocation per involved
     shard, no per-position consing. *)
  let nshards = Array.length cluster.shard_index in
  let counts = Array.make nshards 0 in
  List.iter
    (fun p ->
      let sid = Shard.shard_id (shard_of p) in
      counts.(sid) <- counts.(sid) + 1)
    positions;
  let bufs =
    Array.init nshards (fun sid ->
        if counts.(sid) = 0 then [||] else Array.make counts.(sid) 0)
  in
  let fill = Array.make nshards 0 in
  List.iter
    (fun p ->
      let sid = Shard.shard_id (shard_of p) in
      bufs.(sid).(fill.(sid)) <- p;
      fill.(sid) <- fill.(sid) + 1)
    positions;
  let calls = ref [] in
  Array.iteri
    (fun sid buf ->
      if Array.length buf > 0 then begin
        let shard = shard_by_id cluster sid in
        let plan = read_plan cluster ?rr shard in
        let plan =
          if cluster.cfg.Config.hedged_reads then demote_slow_replicas ep plan
          else plan
        in
        let req =
          (* The hint carries the group's own log frontier (groups are
             log-homogeneous: a client reads one log). *)
          let hlog = if buf.(0) < 0 then 0 else Logid.log_of buf.(0) in
          Proto.Sh_read
            {
              positions = Array.to_list buf;
              stable_hint = stable_for cluster ~log:hlog;
            }
        in
        let iv = Ivar.create () in
        Engine.spawn ~name:"client.read" (fun () ->
            (* [R_missing] from a backup means "could not serve, could not
               forward" — treat it like a timeout and move to the next
               replica. Exhausting the whole plan fills a failure marker
               so the caller raises instead of mistaking a dropped read
               for an empty log. *)
            let rec go = function
              | [] -> Ivar.fill iv (Proto.R_missing { rids = [] })
              | (dst, tries) :: rest -> (
                match
                  Rpc.call_retry ep ~dst ~size:(Proto.req_size req)
                    ~timeout:(Engine.ms 50) ~max_tries:tries
                    ~backoff:(Engine.us 50) req
                with
                | Some (Proto.R_records _ as resp) -> Ivar.fill iv resp
                | Some _ | None -> go rest)
            in
            (* Hedged first attempt: send to the plan's first replica and,
               if no response lands within the adaptive deadline (lower
               median of the plan's observed latency scores, floored at
               [hedge_floor]), race a second copy to the next replica —
               first R_records wins. A fail-slow replica then costs about
               one deadline, not a 50 ms timeout. Any hedged failure
               (both lost, or a non-record response) falls back to the
               sequential plan walk, which retries from scratch. *)
            let hedged =
              if not cluster.cfg.Config.hedged_reads then None
              else
                match plan with
                | (d1, _) :: (d2, _) :: _ -> (
                  let hedge_after =
                    Rpc.hedge_deadline ep ~dsts:(List.map fst plan)
                      ~floor:cluster.cfg.Config.hedge_floor
                  in
                  match
                    Rpc.call_hedged ep ~dsts:[ d1; d2 ]
                      ~size:(Proto.req_size req) ~timeout:(Engine.ms 50)
                      ~hedge_after req
                  with
                  | Some ((Proto.R_records _ as resp), _winner) -> Some resp
                  | Some _ | None -> None)
                | _ -> None
            in
            match hedged with
            | Some resp -> Ivar.fill iv resp
            | None -> go plan);
        calls := iv :: !calls
      end)
    bufs;
  let resps = Ivar.join_all !calls in
  let records =
    List.concat_map
      (function
        | Proto.R_records { records; stable } ->
          note_piggyback cluster stable;
          records
        | _ -> failwith "read_grouped: read failed on every replica of a shard")
      resps
  in
  List.sort (fun (a, _) (b, _) -> Int.compare a b) records

(* ---------- scan readahead ----------

   A per-client prefetcher for [Log_api.read]: replay workloads (SMR, kv
   catch-up, wordcount) scan the log sequentially, so once the access
   pattern looks sequential the next [cfg.readahead] positions are
   fetched in the background while the consumer processes the current
   window. [fetch] is the system-specific blocking read (shard reads,
   plus map resolution for Erwin-st) — the prefetch fiber runs the whole
   thing, so Erwin-st's map fetches are issued ahead of the consumer
   too. With [readahead = 0] (the default) every call degenerates to one
   synchronous [fetch] — the pre-readahead behavior, event for event. *)

type prefetcher = {
  pf_cache : (int, Types.record) Hashtbl.t;  (* prefetched, not yet consumed *)
  mutable pf_inflight : (int * int * unit Ivar.t) option;  (* window [lo, hi) *)
  mutable pf_next : int;  (* the [from] a sequential reader would ask next *)
  mutable pf_frontier : int;  (* first position no fetch has covered yet *)
}

let prefetcher () =
  {
    pf_cache = Hashtbl.create 256;
    pf_inflight = None;
    pf_next = 0;
    pf_frontier = 0;
  }

let prefetched_read (cluster : t) pf ~fetch ~from ~len =
  let ra = cluster.cfg.Config.readahead in
  let sequential = from = pf.pf_next in
  pf.pf_next <- from + len;
  (* If an in-flight prefetch window overlaps this request, wait for it
     rather than racing a duplicate fetch for the same positions. *)
  (match pf.pf_inflight with
  | Some (lo, hi, iv) when from < hi && from + len > lo -> Ivar.read iv
  | _ -> ());
  let positions = List.init len (fun i -> from + i) in
  let missing =
    List.filter (fun p -> not (Hashtbl.mem pf.pf_cache p)) positions
  in
  if missing <> [] then
    List.iter
      (fun (gp, r) -> Hashtbl.replace pf.pf_cache gp r)
      (fetch missing);
  let out =
    List.filter_map
      (fun p ->
        match Hashtbl.find_opt pf.pf_cache p with
        | Some r ->
          Hashtbl.remove pf.pf_cache p;
          Some (p, r)
        | None -> None)
      positions
  in
  (* Keep the pipeline primed: on a sequential pattern, fetch the next
     window in the background. One window in flight at a time — the
     consumer's next call waits on it if it outruns the prefetcher. *)
  (if ra > 0 && sequential && pf.pf_inflight = None then
     let lo = max (from + len) pf.pf_frontier in
     let hi = from + len + ra in
     if hi > lo then begin
       let iv = Ivar.create () in
       pf.pf_inflight <- Some (lo, hi, iv);
       pf.pf_frontier <- hi;
       Engine.spawn ~name:"client.readahead" (fun () ->
           (try
              List.iter
                (fun (gp, r) -> Hashtbl.replace pf.pf_cache gp r)
                (fetch (List.init (hi - lo) (fun i -> lo + i)))
            with _ ->
              (* A failed prefetch is not a failed read: the consumer
                 refetches the window itself and surfaces the error. *)
              ());
           pf.pf_inflight <- None;
           Ivar.fill iv ())
     end);
  out

(* ---------- streaming subscriptions (lib/stream) ----------

   The client leg of the subscribe handshake. The push/ack traffic itself
   flows through the consumer's own endpoint handler (Ll_stream.Subscriber)
   — this is just the attach RPC, retried across manager restarts. *)

let subscribe_stream (cluster : t) ep ~manager ~name ~from ~window =
  let req = Proto.St_subscribe { name; endpoint = Rpc.endpoint_id ep; from; window } in
  let rec go () =
    match
      Rpc.call_retry ep ~dst:manager ~size:(Proto.req_size req)
        ~timeout:cluster.cfg.Config.append_timeout ~max_tries:25
        ~backoff:(Engine.us 50) req
    with
    | Some (Proto.R_sub { epoch; cursor }) -> (epoch, cursor)
    | Some _ | None ->
      Engine.sleep (Engine.ms 1);
      go ()
  in
  go ()

let trim_all (cluster : t) ep ~upto =
  let acks =
    List.map
      (fun shard ->
        Rpc.call_async ep ~dst:(Shard.primary_id shard)
          (Proto.Sh_trim { upto }))
      cluster.shards
  in
  ignore (Ivar.join_all acks : Proto.resp list);
  true
