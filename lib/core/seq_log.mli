(** The per-sequencing-replica log.

    Conceptually the paper's ring buffer (section 5.6): entries are
    appended at the tail and garbage collection frees space from the front.
    Because acknowledged entries appear on every replica but possibly
    interleaved with unacknowledged ones, followers must be able to remove
    an arbitrary {e set} of entries (the batch the leader just ordered),
    not only a prefix — so the implementation is an ordered log with
    rid-keyed tombstoning plus a live-entry capacity bound that exerts
    backpressure on appends.

    The log also owns the duplicate filter (section 4.5: "If the retries
    result in duplicates, Erwin correctly filters them using request-ids"):
    an entry is a duplicate if its rid is still live in the log, or if a
    rid with an equal-or-higher sequence number from the same client has
    already been ordered. *)


type t

val create : capacity:int -> t
(** [capacity] bounds the number of live (unordered) entries. *)

(** Result of offering an entry to the log. *)
type append_result =
  | Appended
  | Duplicate  (** already live or already ordered; ack as success *)

val append_wait : t -> Types.entry -> append_result
(** Appends (blocking while at capacity) unless the entry is a duplicate. *)

val try_append : t -> Types.entry -> append_result option
(** Non-blocking variant: [None] when the log is full. *)

val append_or_wait :
  t -> Types.entry -> cancel:(unit -> bool) -> append_result option
(** Like {!append_wait} but gives up (returning [None]) once [cancel ()]
    holds — used to reject appends blocked on backpressure when the
    replica gets sealed. Callers flipping the cancel condition must call
    {!kick}. *)

val append_batch_or_wait :
  t -> Types.entry list -> cancel:(unit -> bool) ->
  append_result list option
(** Atomic group-commit ingress: waits until the log can hold every
    non-duplicate entry of the batch, then appends them in one
    duplicate-filter pass (per-entry results, in batch order). Returns
    [None] — with {e no} entry appended — once [cancel ()] holds while
    waiting. A batch never half-appends. *)

val kick : t -> unit
(** Wake fibers blocked in {!append_or_wait} so they re-check [cancel]. *)

val unordered : t -> ?max:int -> unit -> Types.entry list
(** The live entries in log order (the yet-to-be-ordered portion). *)

val live_count : t -> int

val unclaimed_count : t -> int
(** Live entries not claimed by an in-flight ordering batch. *)

val claim_unordered : t -> max:int -> Types.entry array
(** [claim_unordered t ~max] takes up to [max] live entries in log order,
    starting after the previous claim, and marks them claimed so
    overlapping ordering batches never double-select. Claimed entries stay
    live (capacity, duplicate filter, {!unordered} for recovery flushes)
    until {!remove_ordered} drops them. Array-returning hot path for the
    pipelined orderer. *)

val reset_claims : t -> unit
(** Forget claims (a discarded in-flight batch): claimed entries become
    claimable again. Callers must ensure no ordering batch is in flight. *)

val remove_ordered : t -> Types.Rid.t list -> unit
(** Garbage collection: removes the given rids (those present) and records
    them as ordered in the duplicate filter. Frees capacity. *)

val mark_ordered : t -> Types.Rid.t list -> unit
(** Updates only the duplicate filter (used when installing a new view on a
    replica that never held the flushed entries). *)

val clear : t -> unit
(** Drops all live entries (view change reset); the duplicate filter is
    retained. *)

val last_ordered_gp : t -> int
(** Number of globally ordered positions this replica knows of (the next
    position to be assigned). The paper's last-ordered-gp counter. *)

val set_last_ordered_gp : t -> int -> unit

val last_ordered_gp_for : t -> log:int -> int
(** Per-log last-ordered frontier (a packed {!Logid} position; the next
    position of [log] to be assigned). Log 0 aliases
    {!last_ordered_gp}; a log never ordered yet starts at
    [Logid.base ~log]. *)

val set_last_ordered_gp_for : t -> log:int -> int -> unit

val log_gps : t -> (int * int) list
(** The per-log frontiers beyond log 0 (unordered list), for recovery
    state transfer. *)

val set_log_gps : t -> (int * int) list -> unit
(** Replace the per-log frontiers beyond log 0 (view install). *)

val live_count_for : t -> log:int -> int
(** Live (unordered) entries belonging to one log. *)

val mem : t -> Types.Rid.t -> bool
(** Is this rid live (not yet garbage-collected)? *)

val known : t -> Types.Rid.t -> bool
(** Is this rid live {e or} already ordered (per the duplicate filter)?
    A replica that returns [false] for an acknowledged rid has lost it —
    the durability invariant the checker audits at crash points. *)
