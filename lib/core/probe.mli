(** Observation hooks feeding the checker's invariant monitors.

    The protocol code emits small structured events at the points the
    DESIGN.md section 5 invariants talk about: append invocation and
    acknowledgement, replica accept/seal/install, stable-prefix advance,
    shard position binding, reads, crashes. [lib/check] subscribes during
    a checked run and maintains incremental invariant state; production
    and benchmark runs register no subscriber, so the hooks cost one
    domain-local load per site.

    Subscribers are domain-local (like the simulation engine itself): a
    parallel seed sweep runs one independently-monitored simulation per
    domain. *)

type event =
  | Append_invoked of { rid : Types.Rid.t }
      (** A client began an append of [rid] (first attempt, not retries). *)
  | Append_acked of { rid : Types.Rid.t }
      (** The client observed a successful acknowledgement for [rid]. *)
  | Replica_accepted of { replica : int; rid : Types.Rid.t }
      (** Sequencing replica [replica] accepted [rid] into its log. *)
  | Replica_sealed of { replica : int; view : int }
  | View_installed of { replica : int; view : int }
  | Stable_advanced of { gp : int }
      (** The orderer advanced the stable prefix: positions [< gp] are
          stable. Emitted before any shard learns of it, so a monitor's
          stable bound is always >= every shard's. *)
  | Shard_stored of { shard : int; pos : int; rid : Types.Rid.t }
      (** Shard [shard] bound global position [pos] to [rid] (record
          stored, or a no-op filled in — then [rid] is the no-op rid). *)
  | Shard_nooped of { shard : int; pos : int; rid : Types.Rid.t }
      (** Erwin-st: the binding of [pos] to [rid] resolved to a no-op
          because the record never arrived ([rid] here is the {e intended}
          record's rid, not the no-op rid). An acknowledged rid must never
          be no-op'ed — the invariant that catches lost acked records. *)
  | Shard_truncated of { shard : int; from : int }
      (** View change: shard dropped bindings at positions [>= from]. *)
  | Read_served of { shard : int; pos : int; rid : Types.Rid.t }
  | Crashed of { node : int }
      (** A cluster node (fabric node id) crashed. Emitted {e after} the
          fabric processed the crash, so inspecting the cluster from the
          handler sees the post-crash survivor set. *)
  | Sub_registered of { name : string; from : int }
      (** A subscriber attached subscription [name] for the first time;
          the exactly-once monitor expects every position [>= from] to be
          delivered to it exactly once, in order. Emitted only on the
          first attach — a restart of the same consumer re-attaches
          without re-registering. *)
  | Sub_delivered of { name : string; pos : int; rid : Types.Rid.t }
      (** Subscription [name]'s consumer delivered the record bound at
          [pos] to the application (post-dedup — redelivered duplicates
          are filtered before this fires). *)
  | Gray_fault of { kind : string; until : int }
      (** The fault script injected a gray (fail-slow) fault — "linkfault",
          "stutter" or "degrade" — healing at simulated time [until]. The
          progress monitor uses these to know a hostile window was open. *)
  | Outlier_removed of { node : int }
      (** The latency-outlier monitor evicted sequencing replica [node]
          (fabric node id) via section 5.5 straggler removal. *)
  | Ingress_admitted of { replica : int; log : int }
      (** Fair ingress: sequencing replica [replica] admitted a data-plane
          append of tenant [log] into its ingress queue. *)
  | Ingress_shed of { replica : int; log : int }
      (** Fair ingress: the tenant's token bucket was empty and its queue
          at the bound — the append was answered with an immediate failure
          instead of queueing. *)

type handler = event -> unit

val active : unit -> bool
(** Any subscriber registered on this domain? Emission sites guard with
    this so unmonitored runs never allocate event payloads. *)

val emit : event -> unit

val subscribe : handler -> unit
(** Handlers run synchronously at the emission site, inside the
    simulation; they must not block. *)

val reset : unit -> unit
(** Drop all subscribers on this domain (start of a checked run). *)

val pp_event : Format.formatter -> event -> unit
