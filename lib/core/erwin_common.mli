(** Shared cluster state for the Erwin systems.

    A cluster owns the fabric, the sequencing replicas (leader first), the
    shards, the mini-ZooKeeper control plane, and the pieces of global
    bookkeeping (current view, stable-gp mirror, reconfiguration timings)
    that the orderer, the controller, the clients, and the benchmarks all
    consult. *)

open Ll_sim
open Ll_net
open Ll_control

type mode = M | St

(** Reconfiguration phase durations, figure 17(b). *)
type reconfig_timings = {
  detect : Engine.time;  (** crash to controller notification *)
  seal : Engine.time;
  flush : Engine.time;
  new_view : Engine.time;  (** ZooKeeper config write + view install *)
  total : Engine.time;
}

(** Background-ordering observability (fed by {!Orderer}): stable-gp lag
    per batch (claim to stable, ns), batch-size and pipeline-depth
    histograms, and the bounds needed to derive ordering throughput. *)
type orderer_metrics = {
  stable_lag : Stats.Reservoir.t;
  batch_sizes : Stats.Histogram.t;
  depth_samples : Stats.Histogram.t;
  mutable largest_batch : int;
  mutable ordered_records : int;
  mutable first_claim_at : Engine.time;  (** -1 until the first claim *)
  mutable last_stable_at : Engine.time;  (** -1 until the first stable *)
}

(** The per-process append batcher (group commit), held as closures so the
    implementing module ({!Batcher}) can depend on this one. *)
type batch_submit = {
  submit_entry : track:bool -> Types.entry -> [ `Ok | `Fail of int ];
      (** Enqueue one append into the open linger batch and block until the
          batch's fan-out resolves. [`Fail view] carries the view the batch
          was attempted in so the caller can wait out the view change. *)
  batch_stats : unit -> int * int;  (** (flushes, records batched) so far *)
}

type t = {
  cfg : Config.t;
  mode : mode;
  fabric : (Proto.req, Proto.resp) Rpc.msg Fabric.t;
  zk : Zookeeper.t;
  mutable view : int;
  mutable replicas : Seq_replica.t list;  (** live members, leader first *)
  mutable shards : Shard.t list;
  mutable stable_gp : int;
  mutable reconfiguring : bool;
  view_changed : Waitq.t;
  mutable next_client : int;
  mutable crash_time : Engine.time option;
      (** set by fault-injecting benches so detection time can be derived *)
  mutable reconfig_log : reconfig_timings list;
  mutable ordering_in_progress : bool;
  order_idle : Waitq.t;
  (* background-ordering batch statistics (figure 11's right axis) *)
  mutable batches : int;
  mutable batched_entries : int;
  mutable shard_index : Shard.t array;  (** shards keyed by shard id *)
  mutable inflight_batches : int;  (** ordering batches pushed, not stable *)
  mutable cur_batch : int;  (** adaptive ordering batch size *)
  mutable order_resync : bool;
      (** set when an in-flight batch is discarded (seal/view change);
          the orderer re-reads the leader's state once drained *)
  metrics : orderer_metrics;
  mutable append_batcher : batch_submit option;
      (** lazily created by {!Batcher.get} when [cfg.append_batching] *)
  mutable demand_upto : int;
      (** read-demand cursor: shards asked for binding up to this position
          (exclusive); max-merged by [Sr_order_demand], consumed by the
          orderer when [cfg.read_demand] *)
  stable_gps : (int, int) Hashtbl.t;
      (** multi-log fabric: per-tenant stable frontiers for logs > 0
          (packed positions, keyed by log id; log 0 stays in
          [stable_gp]). Access through {!stable_for}/{!note_stable_log}. *)
  demand_uptos : (int, int) Hashtbl.t;
      (** per-tenant read-demand cursors for logs > 0 (same layout). *)
  order_wake : Waitq.t;
      (** broadcast when a new demand arrives so the orderer cuts its idle
          sleep short instead of waiting out the lazy cadence *)
  mutable orderer_node : Fabric.node_id option;
      (** the background orderer's fabric node, once started — the target
          shards send [Sr_order_demand] to *)
  mutable on_stable : (int -> unit) option;
      (** called by the orderer whenever stable-gp advances, with the new
          bound — the subscription manager's push trigger. [None] (and
          never invoked) unless a manager is attached, so the hook is free
          for paper-fidelity runs. *)
}

val create : cfg:Config.t -> mode:mode -> t
(** Builds fabric, ZooKeeper, [cfg.seq_replica_count] sequencing replicas
    and [cfg.nshards] shards, and registers replica sessions with ZK.
    Must run inside {!Ll_sim.Engine.run}. *)

val leader : t -> Seq_replica.t
val followers : t -> Seq_replica.t list

val shard_by_id : t -> int -> Shard.t
(** O(1) shard lookup by id (ids are dense, creation-ordered). *)

val shard_of_position : t -> int -> Shard.t
(** Erwin-m's deterministic placement: position [p] lives on shard
    [p mod nshards] (section 4.3). Packed multi-log positions hash the
    whole packed value, spreading each tenant across all shards. *)

(** {2 Per-log frontiers (multi-log fabric)}

    Log 0 aliases the scalar [stable_gp]/[demand_upto] fields, so the
    single-log path is bit-identical; logs > 0 live in the hashtables. *)

val stable_for : t -> log:int -> int
(** The client-visible stable frontier of [log], as a packed position
    ([Logid.base ~log] before its first advance). *)

val note_stable_log : t -> int -> unit
(** Max-merge a (packed) stable bound into its log's frontier — the
    multi-log generalization of the [stable_gp] piggyback merge. *)

val demand_for : t -> log:int -> int
(** The pending read-demand cursor of [log] (packed, exclusive). *)

val note_demand : t -> int -> unit
(** Max-merge a (packed) demand position into its log's cursor. *)

val demand_logs : t -> (int * int) list
(** The logs > 0 with a demand cursor, as [(log, packed upto)] — what
    the orderer walks when deciding whether demand is outstanding. *)

val add_shard : t -> Shard.t
(** Spin up and register one more shard (Erwin-st's seamless addition,
    section 6.9). *)

val fresh_client_id : t -> int

val avg_batch : t -> float
(** Mean background-ordering batch size so far. *)

val ordering_throughput : t -> float
(** Records made stable per second of simulated time, measured from the
    first batch claim to the latest stable broadcast (0 if none). *)

val new_endpoint : t -> name:string -> (Proto.req, Proto.resp) Rpc.endpoint
(** A fresh fabric node + endpoint (for clients and the controller). *)

val crash_replica : t -> Seq_replica.t -> unit
(** Fault injection: crashes the replica's node and stamps [crash_time]. *)
