open Ll_sim
open Ll_net
open Ll_control

type mode = M | St

type reconfig_timings = {
  detect : Engine.time;
  seal : Engine.time;
  flush : Engine.time;
  new_view : Engine.time;
  total : Engine.time;
}

type orderer_metrics = {
  stable_lag : Stats.Reservoir.t;
  batch_sizes : Stats.Histogram.t;
  depth_samples : Stats.Histogram.t;
  mutable largest_batch : int;
  mutable ordered_records : int;
  mutable first_claim_at : Engine.time;
  mutable last_stable_at : Engine.time;
}

let fresh_metrics () =
  {
    stable_lag = Stats.Reservoir.create ~name:"stable_lag" ();
    batch_sizes = Stats.Histogram.create ~name:"batch_size" ();
    depth_samples = Stats.Histogram.create ~name:"pipeline_depth" ();
    largest_batch = 0;
    ordered_records = 0;
    first_claim_at = -1;
    last_stable_at = -1;
  }

(* The per-process append batcher, as closures so [Batcher] can live in a
   module that depends on this one (no cycle). *)
type batch_submit = {
  submit_entry : track:bool -> Types.entry -> [ `Ok | `Fail of int ];
      (** Enqueue one append into the open linger batch and block until its
          batch's fan-out resolves. [`Fail view] reports the view the batch
          was attempted in, for the caller's view-change wait. *)
  batch_stats : unit -> int * int;
      (** (flushes so far, records batched so far). *)
}

type t = {
  cfg : Config.t;
  mode : mode;
  fabric : (Proto.req, Proto.resp) Rpc.msg Fabric.t;
  zk : Zookeeper.t;
  mutable view : int;
  mutable replicas : Seq_replica.t list;
  mutable shards : Shard.t list;
  mutable stable_gp : int;
  mutable reconfiguring : bool;
  view_changed : Waitq.t;
  mutable next_client : int;
  mutable crash_time : Engine.time option;
  mutable reconfig_log : reconfig_timings list;
  mutable ordering_in_progress : bool;
  order_idle : Ll_sim.Waitq.t;
  mutable batches : int;
  mutable batched_entries : int;
  mutable shard_index : Shard.t array;
  mutable inflight_batches : int;
  mutable cur_batch : int;
  mutable order_resync : bool;
  metrics : orderer_metrics;
  mutable append_batcher : batch_submit option;
  mutable demand_upto : int;
  (* Multi-log fabric: per-tenant stable frontiers and demand cursors for
     logs > 0, as packed positions ([stable_gp] / [demand_upto] scalars
     keep serving log 0 so the single-log path is untouched). *)
  stable_gps : (int, int) Hashtbl.t;
  demand_uptos : (int, int) Hashtbl.t;
  order_wake : Waitq.t;
  mutable orderer_node : Fabric.node_id option;
  mutable on_stable : (int -> unit) option;
}

let create ~cfg ~mode =
  let fabric = Fabric.create ~link:cfg.Config.link () in
  let zk = Zookeeper.create () in
  let replicas =
    List.init cfg.Config.seq_replica_count (fun i ->
        let name = if i = 0 then "seq.leader" else Printf.sprintf "seq.f%d" i in
        Seq_replica.create ~cfg ~fabric ~name)
  in
  let shards =
    List.init cfg.Config.nshards (fun i -> Shard.create ~cfg ~fabric ~shard_id:i)
  in
  let t =
    {
      cfg;
      mode;
      fabric;
      zk;
      view = 0;
      replicas;
      shards;
      stable_gp = 0;
      reconfiguring = false;
      view_changed = Waitq.create ();
      next_client = 0;
      crash_time = None;
      reconfig_log = [];
      ordering_in_progress = false;
      order_idle = Waitq.create ();
      batches = 0;
      batched_entries = 0;
      shard_index = Array.of_list shards;
      inflight_batches = 0;
      cur_batch =
        (if cfg.Config.adaptive_batch then
           min cfg.Config.min_batch cfg.Config.max_batch
         else cfg.Config.max_batch);
      order_resync = false;
      metrics = fresh_metrics ();
      append_batcher = None;
      demand_upto = 0;
      stable_gps = Hashtbl.create 16;
      demand_uptos = Hashtbl.create 16;
      order_wake = Waitq.create ();
      orderer_node = None;
      on_stable = None;
    }
  in
  List.iter
    (fun r ->
      let node = Seq_replica.node r in
      Zookeeper.start_session zk ~name:(Seq_replica.name r) ~alive:(fun () ->
          Fabric.is_alive node))
    replicas;
  t

let leader t =
  match t.replicas with
  | r :: _ -> r
  | [] -> failwith "erwin: no sequencing replicas left"

let followers t = match t.replicas with [] -> [] | _ :: rest -> rest

(* Shards indexed by id: O(1) lookup on the read and placement hot paths
   (shard ids are dense, assigned in creation order). *)
let shard_by_id t sid = t.shard_index.(sid)

let shard_of_position t p =
  t.shard_index.(p mod Array.length t.shard_index)

(* Per-log frontier accessors. Log 0 aliases the scalar fields so the
   single-log hot path never touches a hashtable; logs > 0 key packed
   positions by log id. *)

let stable_for t ~log =
  if log = 0 then t.stable_gp
  else
    match Hashtbl.find_opt t.stable_gps log with
    | Some g -> g
    | None -> Logid.base ~log

let note_stable_log t gp =
  let log = Logid.log_of gp in
  if log = 0 then begin
    if gp > t.stable_gp then t.stable_gp <- gp
  end
  else
    match Hashtbl.find_opt t.stable_gps log with
    | Some g when g >= gp -> ()
    | _ -> Hashtbl.replace t.stable_gps log gp

let demand_for t ~log =
  if log = 0 then t.demand_upto
  else
    match Hashtbl.find_opt t.demand_uptos log with
    | Some g -> g
    | None -> Logid.base ~log

let note_demand t upto =
  let log = Logid.log_of upto in
  if log = 0 then begin
    if upto > t.demand_upto then t.demand_upto <- upto
  end
  else
    match Hashtbl.find_opt t.demand_uptos log with
    | Some g when g >= upto -> ()
    | _ -> Hashtbl.replace t.demand_uptos log upto

let demand_logs t =
  Hashtbl.fold (fun log upto acc -> (log, upto) :: acc) t.demand_uptos []

let add_shard t =
  let s =
    Shard.create ~cfg:t.cfg ~fabric:t.fabric
      ~shard_id:(Array.length t.shard_index)
  in
  t.shards <- t.shards @ [ s ];
  t.shard_index <- Array.append t.shard_index [| s |];
  (if t.cfg.Config.read_demand then
     match t.orderer_node with
     | Some n -> Shard.set_demand_target s (Some n)
     | None -> ());
  s

let fresh_client_id t =
  let id = t.next_client in
  t.next_client <- id + 1;
  id

let avg_batch t =
  if t.batches = 0 then 0.0
  else float_of_int t.batched_entries /. float_of_int t.batches

let ordering_throughput t =
  let m = t.metrics in
  if m.ordered_records = 0 || m.last_stable_at <= m.first_claim_at then 0.0
  else
    float_of_int m.ordered_records
    /. Engine.to_sec (m.last_stable_at - m.first_claim_at)

let new_endpoint t ~name =
  let node =
    Fabric.add_node t.fabric ~name ~send_overhead:t.cfg.Config.rpc_overhead
      ~recv_overhead:t.cfg.Config.rpc_overhead ()
  in
  Rpc.endpoint t.fabric node

let crash_replica t r =
  t.crash_time <- Some (Engine.now ());
  Fabric.crash t.fabric (Seq_replica.node r);
  (* After the fabric crash, so a probe handler inspecting the cluster
     sees the post-crash survivor set. *)
  if Probe.active () then
    Probe.emit (Probe.Crashed { node = Fabric.id (Seq_replica.node r) })
