(** Client-side linger batcher — the group-commit front of the append path.

    One batcher per cluster process, shared across all of its client
    handles: concurrent [append]/[appendSync] calls coalesce into a single
    {!Proto.Sr_append_batch} fan-out to all f+1 sequencing replicas, and
    each caller's ivar completes from that one ack. A batch flushes on the
    first of: the [linger] deadline, [max_batch_records], or
    [max_batch_bytes] (see {!Config}).

    The batcher never retries; callers keep their own retry loops (and so
    re-coalesce after a view change). Only used when
    [cfg.append_batching = true]. *)

val get : Erwin_common.t -> Erwin_common.batch_submit
(** The cluster's shared batcher, lazily created on first use. *)
