(** Core types shared by every shared-log implementation in this repo. *)

(** Record identifier: client id plus the client's monotonically increasing
    request id (the paper's record-id, section 5.1: "record-id is a
    combination of client-id and request-id"). *)
module Rid : sig
  type t = { client : int; seq : int }

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

(** A log record. [data] is a small correctness tag carried through the
    system; [size] is the modeled payload size in bytes (what the network
    and disks are charged for); [log] is the tenant log it belongs to
    (always [0] outside the multi-log fabric). *)
type record = { rid : Rid.t; size : int; data : string; log : int }

val record :
  rid:Rid.t -> size:int -> ?data:string -> ?log:int -> unit -> record

val pp_record : Format.formatter -> record -> unit

(** Sequencing-layer entry: Erwin-m funnels whole records through the
    sequencing layer, Erwin-st only metadata [<record-id, shard-id>]. *)
type entry =
  | Data of record  (** Erwin-m: the record itself *)
  | Meta of { rid : Rid.t; shard : int; size : int; log : int }
      (** Erwin-st: identifies a record of [size] bytes staged on [shard] *)

val entry_rid : entry -> Rid.t

val entry_log : entry -> int
(** The tenant log an entry belongs to ([0] outside the multi-log
    fabric). *)

val entry_wire_size : entry -> int
(** Bytes this entry occupies on the wire / in sequencing-replica memory
    (records: payload size; metadata: a fixed 16 bytes). *)

val meta_size : int

val no_op : record
(** The special no-op record written when an Erwin-st client fails after
    its metadata committed but its data never arrived (section 5.4).
    Readers skip no-ops. *)

val is_no_op : record -> bool
