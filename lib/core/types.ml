module Rid = struct
  type t = { client : int; seq : int }

  let compare a b =
    let c = Int.compare a.client b.client in
    if c <> 0 then c else Int.compare a.seq b.seq

  let equal a b = a.client = b.client && a.seq = b.seq

  let hash a = Hashtbl.hash (a.client, a.seq)

  let pp fmt a = Format.fprintf fmt "%d.%d" a.client a.seq
end

(* [log] is the tenant log the record belongs to (always 0 outside the
   multi-log fabric); it rides with the record so the sequencing layer can
   assign per-log positions and the ingress scheduler can classify by
   tenant without a side channel. *)
type record = { rid : Rid.t; size : int; data : string; log : int }

let record ~rid ~size ?(data = "") ?(log = 0) () = { rid; size; data; log }

let pp_record fmt r =
  Format.fprintf fmt "{rid=%a size=%d}" Rid.pp r.rid r.size

type entry =
  | Data of record
  | Meta of { rid : Rid.t; shard : int; size : int; log : int }

let entry_rid = function Data r -> r.rid | Meta m -> m.rid

let entry_log = function Data r -> r.log | Meta m -> m.log

let meta_size = 16

let entry_wire_size = function
  | Data r -> r.size
  | Meta _ -> meta_size

let no_op =
  { rid = { Rid.client = -1; seq = -1 }; size = 0; data = "<no-op>"; log = 0 }

let is_no_op r = Rid.equal r.rid no_op.rid
