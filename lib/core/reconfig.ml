open Ll_sim
open Ll_net
open Ll_control
open Erwin_common

let config_path = "/erwin/config"

let serialize_config ~view replicas =
  Printf.sprintf "view=%d members=%s" view
    (String.concat "," (List.map Seq_replica.name replicas))

let run_view_change (cluster : t) ep ~detect ?(exclude = fun _ -> false) () =
  let start = Engine.now () in
  let old_view = cluster.view in
  let survivors =
    List.filter
      (fun r -> Fabric.is_alive (Seq_replica.node r) && not (exclude r))
      cluster.replicas
  in
  if survivors = [] then
    (* More than f failures: remain (safely) unavailable, section 4.1. *)
    cluster.reconfiguring <- false
  else begin
    (* Seal: no new records can commit in the old view, because clients
       need acks from all replicas of that view. *)
    let t0 = Engine.now () in
    (* Seals and installs are idempotent; retried so a lossy network
       cannot wedge a view change halfway. *)
    let retried req r =
      let iv = Ivar.create () in
      Engine.spawn ~name:"reconfig.call" (fun () ->
          match
            Rpc.call_retry ep ~dst:(Seq_replica.node_id r)
              ~size:(Proto.req_size req) ~timeout:(Engine.ms 10) ~max_tries:50
              req
          with
          | Some resp -> Ivar.fill iv resp
          | None -> Ivar.fill iv Proto.R_ok)
      |> fun () -> iv
    in
    let seals = List.map (retried (Proto.Sr_seal { view = old_view })) survivors in
    ignore (Ivar.join_all seals : Proto.resp list);
    (* Let any in-flight background push finish before overwriting tails. *)
    Orderer.wait_idle cluster;
    let seal_d = Engine.now () - t0 in
    (* Flush the recovery replica's unordered log. Any survivor is safe;
       we pick the first. *)
    let t0 = Engine.now () in
    let recovery = List.hd survivors in
    let gp, gps, entries =
      match
        Rpc.call_retry ep ~dst:(Seq_replica.node_id recovery)
          ~timeout:(Engine.ms 10) ~max_tries:50 Proto.Sr_get_state
      with
      | Some (Proto.R_state { gp; gps; entries }) -> (gp, gps, entries)
      | Some _ | None -> failwith "reconfig: bad get_state response"
    in
    let slots, new_gp, new_gps, truncate_from, truncate_logs =
      if not cluster.cfg.Config.multi_log then
        (* Single log: the historical dense flush from [gp], with a
           numeric tail truncate. *)
        ( List.mapi (fun i e -> (gp + i, e)) entries,
          gp + List.length entries,
          [],
          Some gp,
          [] )
      else begin
        (* Multi-log: reassign each surviving unordered entry from its
           own log's recovered frontier, and truncate every log that
           could have half-pushed positions — any log with a replicated
           frontier or a surviving entry — from that frontier. A numeric
           truncate would destroy the other logs' interleaved tails. *)
        let fronts = Hashtbl.create 8 in
        Hashtbl.replace fronts 0 gp;
        List.iter (fun (lg, g) -> Hashtbl.replace fronts lg g) gps;
        List.iter
          (fun e ->
            let lg = Types.entry_log e in
            if not (Hashtbl.mem fronts lg) then
              Hashtbl.replace fronts lg (Logid.base ~log:lg))
          entries;
        let truncate_logs = Hashtbl.fold (fun _ f acc -> f :: acc) fronts [] in
        let tbl = Hashtbl.create 8 in
        List.iter (fun (lg, g) -> Hashtbl.replace tbl lg g) gps;
        let next0 = ref gp in
        let slots =
          List.map
            (fun e ->
              let lg = Types.entry_log e in
              if lg = 0 then begin
                let p = !next0 in
                next0 := p + 1;
                (p, e)
              end
              else begin
                let g =
                  match Hashtbl.find_opt tbl lg with
                  | Some g -> g
                  | None -> Logid.base ~log:lg
                in
                Hashtbl.replace tbl lg (g + 1);
                (g, e)
              end)
            entries
        in
        let new_gps = Hashtbl.fold (fun lg g acc -> (lg, g) :: acc) tbl [] in
        (slots, !next0, new_gps, None, truncate_logs)
      end
    in
    Orderer.push_batch cluster ep ~truncate_logs ~truncate_from slots;
    let flush_d = Engine.now () - t0 in
    (* New view: configuration to ZooKeeper first, then install, and only
       then advance stable-gp. *)
    let t0 = Engine.now () in
    let new_view = old_view + 1 in
    Zookeeper.set_data cluster.zk ~path:config_path
      ~data:(serialize_config ~view:new_view survivors);
    let flushed = List.map (fun (p, e) -> (p, Types.entry_rid e)) slots in
    let installs =
      List.map
        (retried
           (Proto.Sr_install_view { new_view; new_gp; gps = new_gps; flushed }))
        survivors
    in
    ignore (Ivar.join_all installs : Proto.resp list);
    cluster.replicas <- survivors;
    cluster.view <- new_view;
    Orderer.broadcast_stable_logs cluster ep ~new_gp ~new_gps;
    let new_view_d = Engine.now () - t0 in
    cluster.reconfiguring <- false;
    cluster.crash_time <- None;
    cluster.reconfig_log <-
      {
        detect;
        seal = seal_d;
        flush = flush_d;
        new_view = new_view_d;
        total = detect + (Engine.now () - start);
      }
      :: cluster.reconfig_log;
    Waitq.broadcast cluster.view_changed
  end

let trigger (cluster : t) ep =
  if not cluster.reconfiguring then begin
    cluster.reconfiguring <- true;
    let detect =
      match cluster.crash_time with
      | Some t -> Engine.now () - t
      | None -> 0
    in
    Engine.spawn ~name:"controller.view-change" (fun () ->
        run_view_change cluster ep ~detect ();
        (* A second failure during the view change would have been
           swallowed by the [reconfiguring] guard: re-check. *)
        if
          List.exists
            (fun r -> not (Fabric.is_alive (Seq_replica.node r)))
            cluster.replicas
          && not cluster.reconfiguring
        then begin
          cluster.reconfiguring <- true;
          run_view_change cluster ep ~detect:0 ()
        end)
  end

let remove_replica (cluster : t) victim =
  (* Straggler mitigation (section 5.5): reconfigure a live but slow
     replica out of the sequencing layer. The view change is the ordinary
     one; the victim is simply left out of the new configuration (and,
     being sealed in the old view, can never commit anything again). *)
  if not cluster.reconfiguring then begin
    cluster.reconfiguring <- true;
    let ep = new_endpoint cluster ~name:"controller.remove" in
    run_view_change cluster ep ~detect:0
      ~exclude:(fun r ->
        String.equal (Seq_replica.name r) (Seq_replica.name victim))
      ()
  end

(* Latency-outlier health monitor: the section 4.5 detector is a ZK
   heartbeat timeout, which a fail-slow (gray) replica sails through —
   heartbeats are tiny and out-of-band, so a replica serving appends 10x
   slower still looks alive. This monitor probes every sequencing replica
   on a fixed cadence ([Sr_check_tail] answers cheaply in any view, so it
   doubles as a latency ping), scores responses with the RPC layer's
   per-peer EWMA/deviation statistics, and evicts a replica whose score
   exceeds [outlier_factor] x the median via section 5.5 straggler
   removal. Guards: every current replica must have [outlier_min_samples]
   samples, at least 3 replicas must remain (never shrink below 2), and
   eviction yields to any in-flight reconfiguration. After an eviction the
   survivors' statistics are forgotten — a fresh window, so congestion
   caused by the departed straggler cannot cascade into a second
   eviction. *)
let start_outlier_monitor (cluster : t) =
  let cfg = cluster.cfg in
  let ep = new_endpoint cluster ~name:"controller.gray" in
  Engine.spawn ~name:"controller.gray-monitor" (fun () ->
      let rec loop () =
        Engine.sleep cfg.Config.outlier_interval;
        let replicas = cluster.replicas in
        if (not cluster.reconfiguring) && List.length replicas >= 3 then begin
          (* Fan the probes out on their own fibers so one unresponsive
             replica cannot stall the cadence; call_timeout drops the
             pending entry on expiry, so dead peers leak nothing. *)
          List.iter
            (fun r ->
              Engine.spawn ~name:"controller.gray-probe" (fun () ->
                  let timeout = 2 * cfg.Config.outlier_interval in
                  match
                    Rpc.call_timeout ep ~dst:(Seq_replica.node_id r) ~timeout
                      (Proto.Sr_check_tail { view = cluster.view; log = 0 })
                  with
                  | Some _ -> ()
                  | None ->
                    (* A probe that blows its deadline is censored
                       evidence of slowness, not no evidence: without a
                       sample at the timeout bound, a severely fail-slow
                       replica would score healthier than a mildly slow
                       one. *)
                    Rpc.note_peer_sample ep (Seq_replica.node_id r) timeout))
            replicas;
          let scores =
            List.filter_map
              (fun r ->
                let id = Seq_replica.node_id r in
                if Rpc.peer_samples ep id >= cfg.Config.outlier_min_samples
                then
                  match Rpc.peer_score ep id with
                  | Some s -> Some (r, s)
                  | None -> None
                else None)
              replicas
          in
          if List.length scores = List.length replicas then begin
            let sorted =
              List.sort (fun (_, a) (_, b) -> Float.compare a b) scores
            in
            let median = snd (List.nth sorted ((List.length sorted - 1) / 2)) in
            match List.rev sorted with
            | (victim, worst) :: _
              when median > 0.0
                   && worst > cfg.Config.outlier_factor *. median
                   && not cluster.reconfiguring ->
              if Probe.active () then
                Probe.emit
                  (Probe.Outlier_removed { node = Seq_replica.node_id victim });
              remove_replica cluster victim;
              List.iter
                (fun (r, _) -> Rpc.forget_peer ep (Seq_replica.node_id r))
                scores
            | _ -> ()
          end
        end;
        loop ()
      in
      loop ())

let start (cluster : t) =
  let ep = new_endpoint cluster ~name:"controller" in
  ignore
    (Zookeeper.create_znode cluster.zk ~path:config_path
       ~data:(serialize_config ~view:0 cluster.replicas)
      : bool);
  Zookeeper.on_session_expired cluster.zk (fun name ->
      let member =
        List.exists (fun r -> String.equal (Seq_replica.name r) name)
          cluster.replicas
      in
      if member then trigger cluster ep);
  if cluster.cfg.Config.outlier_detection then start_outlier_monitor cluster

let force_view_change (cluster : t) =
  let ep = new_endpoint cluster ~name:"controller.force" in
  trigger cluster ep
