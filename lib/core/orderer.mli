(** Background ordering (section 4.3), pipelined.

    The orderer takes the leader's unordered entries, assigns them global
    positions starting at the leader's last-ordered-gp, pushes them to the
    shards (whole records for Erwin-m, metadata bindings plus the
    position-to-shard map for Erwin-st), garbage collects the batch on
    every replica, and only then advances stable-gp — the order the
    correctness argument of section 4.5 depends on.

    By default those stages are pipelined across batches: a dispatcher
    fiber claims batch N+1 from the leader's log and fires its per-shard
    pushes while batch N's follower GC and stable broadcast are still in
    flight, and a committer fiber retires batches strictly in dispatch
    order so stable-gp never advances out of order. In-flight batches are
    bounded by [Config.pipeline_depth]; batch size adapts between
    [Config.min_batch] and [Config.max_batch] ({!Adaptive}). Setting
    [pipeline_depth = 1] with [adaptive_batch = false] selects the
    original strictly serial single-fiber orderer.

    The dispatcher reads the leader's log directly (the paper does this
    with RDMA so the leader's CPU is not consumed) and quiesces while a
    view change is running. *)

open Ll_net

val push_batch :
  Erwin_common.t ->
  (Proto.req, Proto.resp) Rpc.endpoint ->
  ?truncate_logs:int list ->
  truncate_from:int option ->
  (int * Types.entry) list ->
  unit
(** Pushes positioned entries to the shards and waits for all of them to
    acknowledge (replication included). With [truncate_from], every shard
    first logically overwrites its tail from that position — the recovery
    flush path (section 4.5). [truncate_logs] is the multi-log analogue:
    packed per-tenant frontiers whose logs are selectively unbound from
    that position up, in the same message as the rebinding slots (so the
    unbind/rebind pair is atomic per shard). Also used by {!Reconfig}. *)

val broadcast_stable :
  Erwin_common.t -> (Proto.req, Proto.resp) Rpc.endpoint -> int -> unit
(** Advances the cluster's stable-gp mirror and notifies every shard. *)

val broadcast_stable_logs :
  Erwin_common.t ->
  (Proto.req, Proto.resp) Rpc.endpoint ->
  new_gp:int ->
  new_gps:(int * int) list ->
  unit
(** {!broadcast_stable} for the log-0 frontier plus one merge/notify round
    per advanced tenant frontier ([(log, packed gp)]). With [new_gps = []]
    this is exactly {!broadcast_stable}. *)

(** Batch-size controller for the pipelined orderer: grows the batch while
    claims come out full with backlog remaining, shrinks it once the
    sequencing log drains. Exposed for unit testing. *)
module Adaptive : sig
  val next : Config.t -> cur:int -> claimed:int -> backlog:int -> int
  (** [next cfg ~cur ~claimed ~backlog] is the batch size to use after a
      claim that returned [claimed] entries and left [backlog] live
      unclaimed entries behind. Clamped to
      [[min min_batch max_batch, max_batch]]; with [adaptive_batch =
      false] it is always [max_batch]. *)
end

val start : Erwin_common.t -> unit
(** Spawns the background-ordering fiber(s). *)

val is_idle : Erwin_common.t -> bool

val wait_idle : Erwin_common.t -> unit
(** Blocks until no ordering batch is in flight (reconfiguration uses this
    to serialize the recovery flush against normal pushes). *)
