(** Sequencing-layer failure handling: views and reconfiguration
    (section 4.5).

    A ZooKeeper-session expiry triggers the controller, which then runs
    the paper's four steps: {e detect} (the session timeout itself),
    {e seal} the old view on every surviving replica, {e flush} the
    recovery replica's unordered log to the shards starting at its
    last-ordered-gp (logically overwriting any tail the failed leader may
    have pushed), and {e start the new view} — writing the new
    configuration to ZooKeeper {e before} advancing stable-gp, as the
    correctness argument requires. Phase durations are appended to the
    cluster's [reconfig_log] (figure 17b). *)

val start : Erwin_common.t -> unit
(** Installs the ZooKeeper expiry watcher that drives view changes. When
    [cfg.outlier_detection] is set, also starts the latency-outlier
    health monitor: per-[outlier_interval] probes of every sequencing
    replica, scored via {!Ll_net.Rpc.peer_score}; a replica whose score
    exceeds [outlier_factor] x the median (all replicas sampled, >= 3
    present) is evicted through {!remove_replica} — catching fail-slow
    replicas whose heartbeats never expire. *)

val force_view_change : Erwin_common.t -> unit
(** Runs a view change immediately (test hook; skips detection). *)

val remove_replica : Erwin_common.t -> Seq_replica.t -> unit
(** Reconfigures a live replica out of the sequencing layer — the
    persistent-straggler mitigation of section 5.5. Blocking (the view
    change runs on the calling fiber). *)
