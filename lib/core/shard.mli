(** An Erwin storage shard: one primary plus backups.

    The same service implements both deployment styles:

    - {b Erwin-m} (section 4): the shard is a black box that only sees
      background [Msh_push] batches of already-positioned records; the
      primary persists them and replicates to its backups before acking
      the orderer.
    - {b Erwin-st} (section 5): clients additionally write record data
      directly to {e every} replica ([Ssh_data_write], staged without
      coordination, 1 RTT); background [Ssh_order] messages later bind
      staged records to global positions, write the position-to-shard map
      chunk, resolve missing records to no-ops after a timeout
      (section 5.4), and replicate bindings to the backups.

    Reads are gated on the shard's stable-gp: a read of position [p] waits
    until [p < stable-gp] (the slow path of section 4.4). *)

open Ll_sim
open Ll_net
open Ll_storage

type t

val create :
  cfg:Config.t ->
  fabric:(Proto.req, Proto.resp) Rpc.msg Fabric.t ->
  shard_id:int ->
  t
(** Builds primary and [cfg.shard_backup_count] backup nodes, each with its
    own disk of kind [cfg.shard_disk]. *)

val shard_id : t -> int
val primary_id : t -> Fabric.node_id

val replica_ids : t -> Fabric.node_id list
(** Primary first — Erwin-st clients write data to all of these. *)

val stable_gp : t -> int
(** The primary's stable mirror (backups keep their own, possibly
    lagging, mirror for replica reads). Log 0's frontier — the whole
    log outside the multi-log fabric. *)

val stable_gp_for : t -> log:int -> int
(** The primary's stable mirror for one tenant log (packed;
    [Logid.base ~log] until first advanced). [stable_gp] for log 0. *)

val set_demand_target : t -> Fabric.node_id option -> unit
(** Where the primary sends [Sr_order_demand] when a read parks beyond
    stable-gp (the background orderer's endpoint); [None] disables demand
    signalling. Only consulted when [cfg.read_demand]. *)

val read_local : t -> int -> Types.record option
(** Direct store lookup (checker/test use; no simulated cost). *)

val bound_positions : t -> (int * Types.record) list
(** Every bound (position, record) on the primary (checker use). *)

val staged_count : t -> int
(** Unbound staged records on the primary (orphan-scrubbing tests). *)

val replica_disk : t -> int -> Disk.t
(** The [i]-th replica's device, primary first ([i] taken mod the replica
    count) — the injection point for {!Ll_storage.Disk.set_fail_slow}
    gray-failure modes. *)

val replace_backup : t -> index:int -> unit
(** Replaces the [index]-th backup with a freshly provisioned replica,
    bulk-copying ordered and staged state from the primary (section 5.4's
    shard-internal failure handling). Blocking; safe to run while pushes
    continue (a delta pass after the swap catches the race). *)

val backup_ids : t -> Fabric.node_id list

val start_scrubber : t -> age:Engine.time -> every:Engine.time -> unit
(** Periodically drops staged records older than [age] with no binding —
    the orphan GC of section 5.4. *)
