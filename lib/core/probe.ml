(* Lightweight observation hooks for the checker (lib/check).

   Subscribers are domain-local so parallel seed sweeps (one engine per
   domain) never share monitor state. With no subscriber registered the
   per-event cost is one DLS load and a list match — call sites guard the
   payload allocation with [if Probe.active () then ...]. *)

type event =
  | Append_invoked of { rid : Types.Rid.t }
  | Append_acked of { rid : Types.Rid.t }
  | Replica_accepted of { replica : int; rid : Types.Rid.t }
  | Replica_sealed of { replica : int; view : int }
  | View_installed of { replica : int; view : int }
  | Stable_advanced of { gp : int }
  | Shard_stored of { shard : int; pos : int; rid : Types.Rid.t }
  | Shard_nooped of { shard : int; pos : int; rid : Types.Rid.t }
  | Shard_truncated of { shard : int; from : int }
  | Read_served of { shard : int; pos : int; rid : Types.Rid.t }
  | Crashed of { node : int }
  | Sub_registered of { name : string; from : int }
  | Sub_delivered of { name : string; pos : int; rid : Types.Rid.t }
  | Gray_fault of { kind : string; until : int }
  | Outlier_removed of { node : int }
  | Ingress_admitted of { replica : int; log : int }
  | Ingress_shed of { replica : int; log : int }

type handler = event -> unit

let dls : handler list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let active () = !(Domain.DLS.get dls) <> []

let emit ev = List.iter (fun h -> h ev) !(Domain.DLS.get dls)

let subscribe h =
  let subs = Domain.DLS.get dls in
  subs := h :: !subs

let reset () = Domain.DLS.get dls := []

let pp_event fmt =
  let rid = Types.Rid.pp in
  function
  | Append_invoked e -> Format.fprintf fmt "append-invoked %a" rid e.rid
  | Append_acked e -> Format.fprintf fmt "append-acked %a" rid e.rid
  | Replica_accepted e ->
    Format.fprintf fmt "replica-accepted r%d %a" e.replica rid e.rid
  | Replica_sealed e ->
    Format.fprintf fmt "replica-sealed r%d view=%d" e.replica e.view
  | View_installed e ->
    Format.fprintf fmt "view-installed r%d view=%d" e.replica e.view
  | Stable_advanced e -> Format.fprintf fmt "stable-advanced gp=%d" e.gp
  | Shard_stored e ->
    Format.fprintf fmt "shard-stored s%d pos=%d %a" e.shard e.pos rid e.rid
  | Shard_nooped e ->
    Format.fprintf fmt "shard-nooped s%d pos=%d %a" e.shard e.pos rid e.rid
  | Shard_truncated e ->
    Format.fprintf fmt "shard-truncated s%d from=%d" e.shard e.from
  | Read_served e ->
    Format.fprintf fmt "read-served s%d pos=%d %a" e.shard e.pos rid e.rid
  | Crashed e -> Format.fprintf fmt "crashed node=%d" e.node
  | Sub_registered e ->
    Format.fprintf fmt "sub-registered %s from=%d" e.name e.from
  | Sub_delivered e ->
    Format.fprintf fmt "sub-delivered %s pos=%d %a" e.name e.pos rid e.rid
  | Gray_fault e ->
    Format.fprintf fmt "gray-fault %s until=%d" e.kind e.until
  | Outlier_removed e -> Format.fprintf fmt "outlier-removed node=%d" e.node
  | Ingress_admitted e ->
    Format.fprintf fmt "ingress-admitted r%d log=%d" e.replica e.log
  | Ingress_shed e ->
    Format.fprintf fmt "ingress-shed r%d log=%d" e.replica e.log
