open Ll_sim
open Ll_net
open Ll_storage

type replica = {
  node : (Proto.req, Proto.resp) Rpc.msg Fabric.node;
  ep : (Proto.req, Proto.resp) Rpc.endpoint;
  disk : Disk.t;  (* the device behind store + journal (fault injection) *)
  store : Types.record Flushed_store.t;  (* bound records, by position *)
  journal : unit Flushed_store.t;
      (* staging journal: Erwin-st data writes are persisted (and charged
         to the device) here; binding later only updates the position
         index in memory *)
  mutable journal_pos : int;
  staging : (Types.Rid.t, Types.record) Hashtbl.t;
  staged_at : (Types.Rid.t, Engine.time) Hashtbl.t;
  nooped : (Types.Rid.t, unit) Hashtbl.t;
  staging_watch : Waitq.t;
  map_log : (int, int) Hashtbl.t;  (* position -> shard id *)
  (* Per-replica stable-gp mirror: the primary's is authoritative for the
     shard; backups keep their own (fed by the primary's relay, by client
     stable hints, and by the stable piggybacked on forwarded reads) so
     they can serve bound positions without consulting the primary.
     [stable] is log 0's frontier (the whole log outside the multi-log
     fabric); tenant logs keep theirs in [stables], keyed by log id with
     packed values. One watch covers all logs — waiters re-check their
     own predicate. *)
  mutable stable : int;
  stables : (int, int) Hashtbl.t;
  stable_watch : Waitq.t;
}

type t = {
  cfg : Config.t;
  fabric : (Proto.req, Proto.resp) Rpc.msg Fabric.t;
  sid : int;
  primary : replica;
  mutable backups : replica list;
  mutable demand_target : Fabric.node_id option;
      (* where Sr_order_demand goes (the background orderer's endpoint),
         when [cfg.read_demand] *)
}

(* [stable] is log 0's frontier; tenant logs fall back to their packed
   base until first advanced. *)
let stable_for r ~log =
  if log = 0 then r.stable
  else
    match Hashtbl.find_opt r.stables log with
    | Some g -> g
    | None -> Logid.base ~log

let shard_id t = t.sid
let primary_id t = Fabric.id t.primary.node
let replica_ids t = List.map (fun r -> Fabric.id r.node) (t.primary :: t.backups)
let stable_gp t = t.primary.stable
let stable_gp_for t ~log = stable_for t.primary ~log
let set_demand_target t dst = t.demand_target <- dst
let read_local t pos = Flushed_store.read t.primary.store ~pos
let bound_positions t = Flushed_store.entries t.primary.store
let staged_count t = Hashtbl.length t.primary.staging

let replica_disk t i =
  let replicas = t.primary :: t.backups in
  (List.nth replicas (i mod List.length replicas)).disk

let make_disk cfg =
  match cfg.Config.shard_disk with
  | Config.Sata -> Disk.sata_ssd ()
  | Config.Nvme -> Disk.nvme_ssd ()

(* Move bound records at positions >= from back to staging and drop their
   map entries: recovery may rebind them at different positions
   (section 4.5's tail overwrite, realized logically). *)
let unbind_from r from =
  let doomed = Flushed_store.entries_from r.store from in
  List.iter
    (fun (_, (rec_ : Types.record)) ->
      if not (Types.is_no_op rec_) then begin
        Hashtbl.replace r.staging rec_.Types.rid rec_;
        Hashtbl.replace r.staged_at rec_.Types.rid 0
      end)
    doomed;
  Flushed_store.truncate r.store from;
  let stale = Hashtbl.fold (fun gp _ acc -> if gp >= from then gp :: acc else acc) r.map_log [] in
  List.iter (Hashtbl.remove r.map_log) stale

(* Per-log truncation, the multi-log recovery path: each packed frontier
   in [fronts] unbinds its own log's positions [>= frontier], requeueing
   real records into staging, without touching interleaved positions of
   other logs (a numeric [truncate] would destroy them). One walk over
   the bound entries covers every listed log. *)
let unbind_logs_from r fronts =
  let by_log = Hashtbl.create 8 in
  List.iter (fun f -> Hashtbl.replace by_log (Logid.log_of f) f) fronts;
  let doomed =
    List.filter
      (fun (gp, _) ->
        match Hashtbl.find_opt by_log (Logid.log_of gp) with
        | Some f -> gp >= f
        | None -> false)
      (Flushed_store.entries r.store)
  in
  List.iter
    (fun (gp, (rec_ : Types.record)) ->
      if not (Types.is_no_op rec_) then begin
        Hashtbl.replace r.staging rec_.Types.rid rec_;
        Hashtbl.replace r.staged_at rec_.Types.rid 0
      end;
      Flushed_store.remove r.store ~pos:gp)
    doomed;
  let stale =
    Hashtbl.fold
      (fun gp _ acc ->
        match Hashtbl.find_opt by_log (Logid.log_of gp) with
        | Some f when gp >= f -> gp :: acc
        | _ -> acc)
      r.map_log []
  in
  List.iter (Hashtbl.remove r.map_log) stale

let apply_truncate r ~truncate_from ~truncate_logs =
  (match truncate_from with Some from -> unbind_from r from | None -> ());
  if truncate_logs <> [] then unbind_logs_from r truncate_logs

(* [charged = true] pays the device for the record bytes (Erwin-m pushes,
   where this is the first time the shard sees the data); [charged =
   false] is an index-only bind of already-journaled bytes (Erwin-st). *)
let store_slots ?(charged = true) r slots =
  if charged then
    Flushed_store.append_batch r.store
      (List.map (fun (gp, (rec_ : Types.record)) -> (gp, rec_.Types.size, rec_)) slots)
  else
    List.iter (fun (gp, rec_) -> Flushed_store.set_mem r.store ~pos:gp rec_) slots

let journal_record r (record : Types.record) =
  let pos = r.journal_pos in
  r.journal_pos <- pos + 1;
  Flushed_store.append r.journal ~pos ~size:record.Types.size ()

let record_map r chunk =
  List.iter (fun (gp, sid) -> Hashtbl.replace r.map_log gp sid) chunk

(* Resolve one Erwin-st binding on a replica that is expected to hold the
   staged record: wait [data_wait_timeout] for in-flight data, then no-op
   (section 5.4). Returns the bound record. *)
let resolve_binding cfg r rid =
  let found () = Hashtbl.mem r.staging rid in
  if not (found ()) then
    ignore
      (Waitq.await_timeout r.staging_watch
         ~timeout:cfg.Config.data_wait_timeout found
        : bool);
  match Hashtbl.find_opt r.staging rid with
  | Some rec_ ->
    Hashtbl.remove r.staging rid;
    Hashtbl.remove r.staged_at rid;
    rec_
  | None ->
    Hashtbl.replace r.nooped rid ();
    Types.no_op

(* Probe points are primary-only: the primary's bindings are the
   authoritative position -> record map the invariants talk about. *)
let probe_truncate t ~truncate_from ~truncate_logs =
  if Probe.active () then begin
    (match truncate_from with
    | Some from -> Probe.emit (Probe.Shard_truncated { shard = t.sid; from })
    | None -> ());
    (* Packed frontiers: the monitor recovers the log from the position. *)
    List.iter
      (fun from -> Probe.emit (Probe.Shard_truncated { shard = t.sid; from }))
      truncate_logs
  end

let probe_stored t slots =
  if Probe.active () then
    List.iter
      (fun (gp, (rec_ : Types.record)) ->
        Probe.emit
          (Probe.Shard_stored { shard = t.sid; pos = gp; rid = rec_.Types.rid }))
      slots

(* Read_served is emitted by whichever replica answers (primary or
   backup) — the read-agreement monitor checks every served record
   against the primary's bindings, which is exactly the cross-replica
   divergence backup reads could introduce. *)
let probe_read_served t records =
  if Probe.active () then
    List.iter
      (fun (gp, (rec_ : Types.record)) ->
        Probe.emit
          (Probe.Read_served { shard = t.sid; pos = gp; rid = rec_.Types.rid }))
      records

let note_stable r gp =
  let log = Logid.log_of gp in
  if log = 0 then begin
    if gp > r.stable then begin
      r.stable <- gp;
      Waitq.broadcast r.stable_watch
    end
  end
  else
    match Hashtbl.find_opt r.stables log with
    | Some g when g >= gp -> ()
    | _ ->
      Hashtbl.replace r.stables log gp;
      Waitq.broadcast r.stable_watch

(* Position [p] is readable once its own log's frontier passes it. *)
let covered r positions =
  List.for_all (fun p -> stable_for r ~log:(Logid.log_of p) > p) positions

(* The log a read group belongs to, for same-log stable piggybacks
   (groups are log-homogeneous in practice; a mixed group piggybacks the
   highest position's log). *)
let read_log ~max_pos = if max_pos < 0 then 0 else Logid.log_of max_pos

(* Read-triggered eager binding (the lazy-ordering contract of sections
   4.2/5.2): a read parked beyond stable asks the sequencing layer to bind
   up to it now instead of waiting out the background cadence. Fire and
   forget from a fresh fiber — the reader itself keeps waiting on the
   stable watch and is woken by the resulting stable push. *)
let demand_bind t ~upto =
  match t.demand_target with
  | Some dst
    when t.cfg.Config.read_demand
         && upto > stable_for t.primary ~log:(read_log ~max_pos:(upto - 1)) ->
    let r = t.primary in
    Engine.spawn ~name:(Printf.sprintf "shard%d.demand" t.sid) (fun () ->
        ignore
          (Rpc.call_retry r.ep ~dst
             ~size:(Proto.req_size (Proto.Sr_order_demand { upto }))
             ~timeout:(Engine.ms 5) ~max_tries:10
             (Proto.Sr_order_demand { upto })
            : Proto.resp option))
  | _ -> ()

let handle_primary t ~src:_ (req : Proto.req) ~reply =
  let r = t.primary in
  match req with
  | Msh_push { truncate_from; truncate_logs; slots } ->
    apply_truncate r ~truncate_from ~truncate_logs;
    probe_truncate t ~truncate_from ~truncate_logs;
    store_slots r slots;
    probe_stored t slots;
    (* Retried on loss; replication by explicit position is idempotent. *)
    let repl_req = Proto.Msh_replicate { truncate_from; truncate_logs; slots } in
    let acks =
      List.map
        (fun b ->
          let iv = Ivar.create () in
          Engine.spawn (fun () ->
              ignore
                (Rpc.call_retry r.ep ~dst:(Fabric.id b.node)
                   ~size:(Proto.req_size repl_req)
                   ~timeout:(Engine.ms 10) ~max_tries:50 repl_req);
              Ivar.fill iv ());
          iv)
        t.backups
    in
    ignore (Ivar.join_all acks);
    reply Proto.R_ok
  | Ssh_data_write { record } ->
    if Hashtbl.mem r.nooped record.Types.rid then
      reply (Proto.R_append { ok = false; view = 0 })
    else begin
      (* A retry of an already-staged rid must not hit the device again. *)
      let fresh = not (Hashtbl.mem r.staging record.Types.rid) in
      Hashtbl.replace r.staging record.Types.rid record;
      Hashtbl.replace r.staged_at record.Types.rid (Engine.now ());
      Waitq.broadcast r.staging_watch;
      (* Durability: the staged bytes go to the device (with
         backpressure); the ack is sent once journaled. *)
      if fresh then journal_record r record;
      reply (Proto.R_append { ok = true; view = 0 })
    end
  | Ssh_order { truncate_from; truncate_logs; bindings; map_chunk } ->
    apply_truncate r ~truncate_from ~truncate_logs;
    probe_truncate t ~truncate_from ~truncate_logs;
    (* Idempotency under retried pushes: a position already bound must
       not be resolved again (its record left staging on the first
       pass, and re-resolving would wrongly no-op it). *)
    let bindings =
      List.filter
        (fun (gp, _) -> Flushed_store.read r.store ~pos:gp = None)
        bindings
    in
    let resolved =
      List.map (fun (gp, rid) -> (gp, rid, resolve_binding t.cfg r rid)) bindings
    in
    let slots = List.map (fun (gp, _, rec_) -> (gp, rec_)) resolved in
    store_slots ~charged:false r slots;
    probe_stored t slots;
    if Probe.active () then
      List.iter
        (fun (gp, rid, rec_) ->
          if Types.is_no_op rec_ then
            Probe.emit (Probe.Shard_nooped { shard = t.sid; pos = gp; rid }))
        resolved;
    record_map r map_chunk;
    let noops =
      List.filter_map
        (fun (_, rid, rec_) -> if Types.is_no_op rec_ then Some rid else None)
        resolved
    in
    let repl_req =
      Proto.Ssh_replicate_order
        { truncate_from;
          truncate_logs;
          bindings = List.map (fun (gp, rid, _) -> (gp, rid)) resolved;
          noops;
          map_chunk }
    in
    let acks =
      List.map
        (fun b ->
          let iv = Ivar.create () in
          Engine.spawn (fun () ->
              match
                Rpc.call_retry r.ep ~dst:(Fabric.id b.node)
                  ~size:(Proto.req_size repl_req) ~timeout:(Engine.ms 10)
                  ~max_tries:50 repl_req
              with
              | Some resp -> Ivar.fill iv resp
              | None -> Ivar.fill iv Proto.R_ok);
          iv)
        t.backups
    in
    let resps = Ivar.join_all acks in
    (* Backfill records a backup could not find in its own staging. *)
    List.iter2
      (fun b resp ->
        match resp with
        | Proto.R_missing { rids } when rids <> [] ->
          let slots =
            List.filter_map
              (fun (gp, rid, rec_) ->
                if List.exists (Types.Rid.equal rid) rids then Some (gp, rec_)
                else None)
              resolved
          in
          let bf = Proto.Ssh_backfill { slots } in
          ignore
            (Rpc.call r.ep ~dst:(Fabric.id b.node) ~size:(Proto.req_size bf) bf)
        | _ -> ())
      t.backups resps;
    reply Proto.R_ok
  | Sh_read { positions; stable_hint } ->
    (* The hint repairs a stable mirror that missed a (lossy, one-way)
       Sh_set_stable: the client would not ask for unstable positions. *)
    note_stable r stable_hint;
    let max_pos = List.fold_left max (-1) positions in
    if not (covered r positions) then demand_bind t ~upto:(max_pos + 1);
    Waitq.await r.stable_watch (fun () -> covered r positions);
    (* Batched store read: the whole group is served in one segment-cache
       pass, cold segments paying a single combined device fetch instead
       of one base-latency charge per position. *)
    let records = Flushed_store.read_many r.store positions in
    probe_read_served t records;
    reply
      (Proto.R_records
         { records; stable = stable_for r ~log:(read_log ~max_pos) })
  | Ssh_get_map { from; count; stable_hint } ->
    note_stable r stable_hint;
    let log = read_log ~max_pos:from in
    if stable_for r ~log <= from then demand_bind t ~upto:(from + 1);
    Waitq.await r.stable_watch (fun () -> stable_for r ~log > from);
    let upto = min (stable_for r ~log) (from + count) in
    let chunk = ref [] in
    for gp = upto - 1 downto from do
      match Hashtbl.find_opt r.map_log gp with
      | Some sid -> chunk := (gp, sid) :: !chunk
      | None -> ()
    done;
    reply (Proto.R_map { chunk = !chunk; stable = stable_for r ~log })
  | Sh_set_stable { gp } ->
    note_stable r gp;
    (* Backup replicas serve reads only below their own mirror: relay the
       (still lossy, one-way) stable advance so they track the primary
       instead of lagging until the next piggyback repair. *)
    if t.cfg.Config.replica_reads then
      List.iter
        (fun b ->
          Rpc.send_oneway r.ep ~dst:(Fabric.id b.node)
            (Proto.Sh_set_stable { gp }))
        t.backups;
    reply Proto.R_ok
  | Sh_trim { upto } ->
    Flushed_store.trim r.store upto;
    List.iter
      (fun b -> Rpc.send_oneway r.ep ~dst:(Fabric.id b.node) (Proto.Sh_trim { upto }))
      t.backups;
    reply Proto.R_ok
  | Sr_append _ | Sr_append_batch _ | Sr_check_tail _ | Sr_gc _ | Sr_seal _
  | Sr_get_state | Sr_install_view _ | Sr_wait_ordered _ | Sr_order_demand _
  | Msh_replicate _ | Ssh_replicate_order _ | Ssh_backfill _ | St_subscribe _
  | St_push _ | St_cursor_sync _ | St_cursor_fetch ->
    failwith "shard primary: unexpected request"

(* A backup that cannot serve a read itself (position not yet covered by
   its stable mirror) forwards the request to the primary and relays the
   answer, max-merging the piggybacked stable into its own mirror. On
   exhaustion it fails the read explicitly ([R_missing]) so the client
   retries on another replica instead of seeing an empty log. *)
let forward_to_primary t r req ~reply ~on_resp =
  match
    Rpc.call_retry r.ep ~dst:(primary_id t) ~size:(Proto.req_size req)
      ~timeout:(Engine.ms 50) ~max_tries:2 req
  with
  | Some resp ->
    on_resp resp;
    reply resp
  | None -> reply (Proto.R_missing { rids = [] })

let handle_backup t r ~src:_ (req : Proto.req) ~reply =
  match req with
  | Msh_replicate { truncate_from; truncate_logs; slots } ->
    apply_truncate r ~truncate_from ~truncate_logs;
    store_slots r slots;
    reply Proto.R_ok
  | Ssh_data_write { record } ->
    if Hashtbl.mem r.nooped record.Types.rid then
      reply (Proto.R_append { ok = false; view = 0 })
    else begin
      let fresh = not (Hashtbl.mem r.staging record.Types.rid) in
      Hashtbl.replace r.staging record.Types.rid record;
      Hashtbl.replace r.staged_at record.Types.rid (Engine.now ());
      Waitq.broadcast r.staging_watch;
      if fresh then journal_record r record;
      reply (Proto.R_append { ok = true; view = 0 })
    end
  | Ssh_replicate_order { truncate_from; truncate_logs; bindings; noops; map_chunk }
    ->
    apply_truncate r ~truncate_from ~truncate_logs;
    let missing = ref [] in
    let slots =
      List.filter_map
        (fun (gp, rid) ->
          if List.exists (Types.Rid.equal rid) noops then begin
            Hashtbl.replace r.nooped rid ();
            Hashtbl.remove r.staging rid;
            Hashtbl.remove r.staged_at rid;
            Some (gp, Types.no_op)
          end
          else
            match Hashtbl.find_opt r.staging rid with
            | Some rec_ ->
              Hashtbl.remove r.staging rid;
              Hashtbl.remove r.staged_at rid;
              Some (gp, rec_)
            | None ->
              missing := rid :: !missing;
              None)
        bindings
    in
    store_slots ~charged:false r slots;
    record_map r map_chunk;
    if !missing = [] then reply Proto.R_ok
    else reply (Proto.R_missing { rids = !missing })
  | Ssh_backfill { slots } ->
    (* Backfilled bytes are new to this replica: charge them. *)
    store_slots r slots;
    reply Proto.R_ok
  | Sh_trim { upto } ->
    Flushed_store.trim r.store upto;
    reply Proto.R_ok
  | Sh_set_stable { gp } ->
    note_stable r gp;
    reply Proto.R_ok
  | Sh_read { positions; stable_hint } ->
    note_stable r stable_hint;
    let max_pos = List.fold_left max (-1) positions in
    if covered r positions then begin
      (* Every requested position is bound here: serve from the local
         store, scaling read throughput with the replica count. *)
      let records = Flushed_store.read_many r.store positions in
      probe_read_served t records;
      reply
        (Proto.R_records
           { records; stable = stable_for r ~log:(read_log ~max_pos) })
    end
    else
      forward_to_primary t r req ~reply ~on_resp:(function
        | Proto.R_records { stable; _ } -> note_stable r stable
        | _ -> ())
  | Ssh_get_map { from; count; stable_hint } ->
    note_stable r stable_hint;
    let log = read_log ~max_pos:from in
    if stable_for r ~log > from then begin
      let upto = min (stable_for r ~log) (from + count) in
      let chunk = ref [] in
      for gp = upto - 1 downto from do
        match Hashtbl.find_opt r.map_log gp with
        | Some sid -> chunk := (gp, sid) :: !chunk
        | None -> ()
      done;
      reply (Proto.R_map { chunk = !chunk; stable = stable_for r ~log })
    end
    else
      forward_to_primary t r req ~reply ~on_resp:(function
        | Proto.R_map { stable; _ } -> note_stable r stable
        | _ -> ())
  | Sr_append _ | Sr_append_batch _ | Sr_check_tail _ | Sr_gc _ | Sr_seal _
  | Sr_get_state | Sr_install_view _ | Sr_wait_ordered _ | Sr_order_demand _
  | Msh_push _ | Ssh_order _ | St_subscribe _ | St_push _ | St_cursor_sync _
  | St_cursor_fetch ->
    failwith "shard backup: unexpected request"

let service_time cfg (req : Proto.req) =
  cfg.Config.shard_base_ns
  + int_of_float (0.3 *. float_of_int (Proto.req_size req))

let make_replica cfg fabric ~name =
  let node =
    Fabric.add_node fabric ~name ~send_overhead:cfg.Config.rpc_overhead
      ~recv_overhead:cfg.Config.rpc_overhead ()
  in
  let ep = Rpc.endpoint fabric node in
  Rpc.set_service_time ep (service_time cfg);
  (* One device per replica, shared by the bound store and the staging
     journal. *)
  let disk = make_disk cfg in
  {
    node;
    ep;
    disk;
    store =
      Flushed_store.create ~disk
        ~dirty_limit_bytes:cfg.Config.dirty_limit_bytes ();
    journal =
      Flushed_store.create ~disk
        ~dirty_limit_bytes:cfg.Config.dirty_limit_bytes ();
    journal_pos = 0;
    staging = Hashtbl.create 256;
    staged_at = Hashtbl.create 256;
    nooped = Hashtbl.create 64;
    staging_watch = Waitq.create ();
    map_log = Hashtbl.create 1024;
    stable = 0;
    stables = Hashtbl.create 8;
    stable_watch = Waitq.create ();
  }

let install_backup_handler t b =
  (* Retry budget on the backup endpoint only: its outbound retries are
     read forwards to the primary, which may shed to [R_missing] under a
     timeout storm. The primary's replication retries are never budgeted —
     shedding those would leave backups silently missing slots. *)
  if t.cfg.Config.retry_budget then
    Rpc.set_retry_budget b.ep
      (Rpc.Retry_budget.create ~ratio:t.cfg.Config.retry_budget_ratio
         ~cap:t.cfg.Config.retry_budget_cap ());
  Rpc.set_handler b.ep (fun ~src req ~reply ->
      handle_backup t b ~src req ~reply:(fun resp ->
          reply ~size:(Proto.resp_size resp) resp))

let create ~cfg ~fabric ~shard_id =
  let primary =
    make_replica cfg fabric ~name:(Printf.sprintf "shard%d.primary" shard_id)
  in
  let backups =
    List.init cfg.Config.shard_backup_count (fun i ->
        make_replica cfg fabric
          ~name:(Printf.sprintf "shard%d.backup%d" shard_id i))
  in
  let t = { cfg; fabric; sid = shard_id; primary; backups; demand_target = None } in
  Rpc.set_handler primary.ep (fun ~src req ~reply ->
      handle_primary t ~src req ~reply:(fun resp ->
          reply ~size:(Proto.resp_size resp) resp));
  List.iter (install_backup_handler t) backups;
  t

(* Section 5.4: "Failures within a shard are handled by replacing the
   failed replica with a new one after copying both ordered and unordered
   records from a live node to the new one." Two copy passes — a bulk
   pass, then a delta pass after the swap — so pushes racing the copy are
   not lost (binding by explicit position is idempotent). *)
let replace_backup t ~index =
  let fresh =
    make_replica t.cfg t.fabric
      ~name:(Printf.sprintf "shard%d.backup%d'" t.sid index)
  in
  install_backup_handler t fresh;
  let src = t.primary in
  let copy_from pos =
    let ordered = Flushed_store.entries_from src.store pos in
    let bytes =
      List.fold_left
        (fun acc (_, (r : Types.record)) -> acc + r.Types.size)
        0 ordered
    in
    (* Bulk state transfer over the wire. *)
    Engine.sleep
      (Engine.us 500
      + int_of_float (t.cfg.Config.link.Fabric.per_byte_ns *. float_of_int bytes)
      );
    Flushed_store.append_batch fresh.store
      (List.map
         (fun (gp, (r : Types.record)) -> (gp, r.Types.size, r))
         ordered);
    match List.rev ordered with (gp, _) :: _ -> gp + 1 | [] -> pos
  in
  let copied_upto = copy_from 0 in
  (* Unordered (staged) records and the map log come along too. *)
  Hashtbl.iter (fun rid r -> Hashtbl.replace fresh.staging rid r) src.staging;
  Hashtbl.iter (fun rid at -> Hashtbl.replace fresh.staged_at rid at) src.staged_at;
  Hashtbl.iter (fun rid () -> Hashtbl.replace fresh.nooped rid ()) src.nooped;
  Hashtbl.iter (fun gp sid -> Hashtbl.replace fresh.map_log gp sid) src.map_log;
  (* The copied prefix is readable on the fresh replica right away. *)
  fresh.stable <- src.stable;
  Hashtbl.iter (fun log g -> Hashtbl.replace fresh.stables log g) src.stables;
  (* Swap in, then catch up on anything pushed during the bulk copy. *)
  t.backups <- List.mapi (fun i b -> if i = index then fresh else b) t.backups;
  if not t.cfg.Config.multi_log then ignore (copy_from copied_upto : int)
  else begin
    (* Packed positions are not monotone across logs, so "everything past
       the last copied position" under-covers: the delta pass instead
       copies whatever the bulk pass missed, by membership. *)
    ignore (copied_upto : int);
    let missing =
      List.filter
        (fun (gp, _) -> Flushed_store.mem_read fresh.store ~pos:gp = None)
        (Flushed_store.entries src.store)
    in
    let bytes =
      List.fold_left
        (fun acc (_, (r : Types.record)) -> acc + r.Types.size)
        0 missing
    in
    Engine.sleep
      (Engine.us 500
      + int_of_float
          (t.cfg.Config.link.Fabric.per_byte_ns *. float_of_int bytes));
    Flushed_store.append_batch fresh.store
      (List.map (fun (gp, (r : Types.record)) -> (gp, r.Types.size, r)) missing)
  end

let backup_ids t = List.map (fun b -> Fabric.id b.node) t.backups

let start_scrubber t ~age ~every =
  let scrub r =
    let doomed =
      Hashtbl.fold
        (fun rid at acc ->
          if Engine.now () - at > age then rid :: acc else acc)
        r.staged_at []
    in
    List.iter
      (fun rid ->
        Hashtbl.remove r.staging rid;
        Hashtbl.remove r.staged_at rid)
      doomed
  in
  Engine.spawn ~name:(Printf.sprintf "shard%d.scrubber" t.sid) (fun () ->
      let rec loop () =
        Engine.sleep every;
        List.iter scrub (t.primary :: t.backups);
        loop ()
      in
      loop ())
