open Ll_sim
open Ll_net

type t = {
  cfg : Config.t;
  node : (Proto.req, Proto.resp) Rpc.msg Fabric.node;
  ep : (Proto.req, Proto.resp) Rpc.endpoint;
  rname : string;
  slog : Seq_log.t;
  mutable view : int;
  mutable sealed : bool;
  (* appendSync support: rids appended with [track = true] get their bound
     position remembered so Sr_wait_ordered can answer. *)
  tracked : (Types.Rid.t, unit) Hashtbl.t;
  bound_gp : (Types.Rid.t, int) Hashtbl.t;
  bound_watch : Waitq.t;
  (* Replicated subscription cursors (lib/stream): name -> (epoch, cursor).
     Max-merged on cursor, so lost or reordered one-way syncs only lag the
     durable floor. Deliberately not cleared on view install — the cursor
     is client-progress state, not view state. *)
  sub_cursors : (string, int * int) Hashtbl.t;
  (* Weighted-fair ingress scheduler, present only when
     [multi_log && fair_ingress] (otherwise the endpoint keeps the
     default FIFO discipline, byte-identically). *)
  mutable fair : Ingress.t option;
}

let node t = t.node
let node_id t = Fabric.id t.node
let name t = t.rname
let log t = t.slog
let view t = t.view
let is_sealed t = t.sealed
let sub_cursor t name = Hashtbl.find_opt t.sub_cursors name
let ingress t = t.fair

let record_bindings t slots =
  List.iter
    (fun (gp, rid) ->
      if Hashtbl.mem t.tracked rid then begin
        Hashtbl.remove t.tracked rid;
        Hashtbl.replace t.bound_gp rid gp
      end)
    slots;
  Waitq.broadcast t.bound_watch

let apply_gc ?(gps = []) t ~slots ~new_gp =
  Seq_log.remove_ordered t.slog (List.map snd slots);
  Seq_log.set_last_ordered_gp t.slog new_gp;
  List.iter (fun (log, g) -> Seq_log.set_last_ordered_gp_for t.slog ~log g) gps;
  record_bindings t slots

let handle t ~src:_ (req : Proto.req) ~reply =
  match req with
  | Sr_append { view; entry; track } ->
    if view <> t.view || t.sealed then
      reply (Proto.R_append { ok = false; view = t.view })
    else begin
      if track then Hashtbl.replace t.tracked (Types.entry_rid entry) ();
      (* Blocks under backpressure; gives up if sealed meanwhile. *)
      match
        Seq_log.append_or_wait t.slog entry ~cancel:(fun () ->
            t.sealed || view <> t.view)
      with
      | Some res ->
        if res = Seq_log.Appended && Probe.active () then
          Probe.emit
            (Probe.Replica_accepted
               { replica = Fabric.id t.node; rid = Types.entry_rid entry });
        reply (Proto.R_append { ok = true; view = t.view })
      | None -> reply (Proto.R_append { ok = false; view = t.view })
    end
  | Sr_append_batch { view; batch } ->
    (* Group commit: one view/seal check and one duplicate-filter pass for
       the whole batch. All-or-nothing in this view: a seal or view change
       while the batch waits for capacity fails every entry (the client
       retries the batch; already-accepted replicas filter duplicates). *)
    if view <> t.view || t.sealed then
      reply (Proto.R_append_batch { ok = false; view = t.view; appended = [] })
    else begin
      List.iter
        (fun (e, track) ->
          if track then Hashtbl.replace t.tracked (Types.entry_rid e) ())
        batch;
      match
        Seq_log.append_batch_or_wait t.slog (List.map fst batch)
          ~cancel:(fun () -> t.sealed || view <> t.view)
      with
      | Some results ->
        if Probe.active () then
          List.iter2
            (fun (e, _) res ->
              if res = Seq_log.Appended then
                Probe.emit
                  (Probe.Replica_accepted
                     { replica = Fabric.id t.node; rid = Types.entry_rid e }))
            batch results;
        reply
          (Proto.R_append_batch
             {
               ok = true;
               view = t.view;
               appended = List.map (fun r -> r = Seq_log.Appended) results;
             })
      | None ->
        reply
          (Proto.R_append_batch { ok = false; view = t.view; appended = [] })
    end
  | Sr_check_tail { view; log } ->
    if view <> t.view || t.sealed then
      reply (Proto.R_tail { ok = false; tail = 0 })
    else if not t.cfg.Config.multi_log then
      reply
        (Proto.R_tail
           {
             ok = true;
             tail = Seq_log.last_ordered_gp t.slog + Seq_log.live_count t.slog;
           })
    else
      (* Per-log tail: that log's frontier plus its own live entries,
         reported as a per-log position (the caller reasons within one
         log, not across the packed keyspace). *)
      reply
        (Proto.R_tail
           {
             ok = true;
             tail =
               Logid.pos_of (Seq_log.last_ordered_gp_for t.slog ~log)
               + Seq_log.live_count_for t.slog ~log;
           })
  | Sr_gc { view; slots; new_gp } ->
    if view <> t.view || t.sealed then
      reply (Proto.R_append { ok = false; view = t.view })
    else begin
      apply_gc t ~slots ~new_gp;
      reply (Proto.R_append { ok = true; view = t.view })
    end
  | Sr_seal { view } ->
    (* Idempotent; sealing an already-newer view is a stale message. *)
    if view >= t.view then begin
      t.sealed <- true;
      Seq_log.kick t.slog;
      if Probe.active () then
        Probe.emit (Probe.Replica_sealed { replica = Fabric.id t.node; view })
    end;
    reply Proto.R_ok
  | Sr_get_state ->
    reply
      (Proto.R_state
         {
           gp = Seq_log.last_ordered_gp t.slog;
           gps = Seq_log.log_gps t.slog;
           entries = Seq_log.unordered t.slog ();
         })
  | Sr_install_view { new_view; new_gp; gps; flushed } ->
    Seq_log.clear t.slog;
    Seq_log.mark_ordered t.slog (List.map snd flushed);
    Seq_log.set_last_ordered_gp t.slog new_gp;
    Seq_log.set_log_gps t.slog gps;
    record_bindings t flushed;
    t.view <- new_view;
    t.sealed <- false;
    Seq_log.kick t.slog;
    if Probe.active () then
      Probe.emit
        (Probe.View_installed { replica = Fabric.id t.node; view = new_view });
    reply Proto.R_ok
  | Sr_wait_ordered { rid } ->
    Waitq.await t.bound_watch (fun () -> Hashtbl.mem t.bound_gp rid);
    reply (Proto.R_gp { gp = Hashtbl.find t.bound_gp rid })
  | St_cursor_sync { name; epoch; cursor } ->
    (* One-way from the subscription manager. Max-merge: a newer epoch
       always wins (the cursor may legitimately regress across a manager
       recovery that re-seeds from a lagging survivor); within an epoch
       only a larger cursor advances the floor. *)
    (match Hashtbl.find_opt t.sub_cursors name with
    | Some (e, c) when epoch < e || (epoch = e && cursor <= c) -> ()
    | _ -> Hashtbl.replace t.sub_cursors name (epoch, cursor));
    reply Proto.R_ok
  | St_cursor_fetch ->
    let cursors =
      Hashtbl.fold (fun name (e, c) acc -> (name, e, c) :: acc) t.sub_cursors []
    in
    reply (Proto.R_cursors { cursors })
  | Sr_order_demand _ | Sh_set_stable _ | Sh_read _ | Sh_trim _ | Msh_push _
  | Msh_replicate _ | Ssh_data_write _ | Ssh_order _ | Ssh_replicate_order _
  | Ssh_backfill _ | Ssh_get_map _ | St_subscribe _ | St_push _ ->
    failwith (t.rname ^ ": shard request sent to a sequencing replica")

let service_time cfg (req : Proto.req) =
  match req with
  | Sr_append { entry; _ } ->
    cfg.Config.seq_base_ns
    + int_of_float
        (cfg.Config.seq_per_byte_ns
        *. float_of_int (Types.entry_wire_size entry))
  | Sr_append_batch { batch; _ } ->
    (* Group commit amortizes the per-request base cost: one base charge
       for the batch, then per-byte work plus a small per-entry cost for
       the duplicate-filter/append bookkeeping (same rate as Sr_gc). *)
    let bytes =
      List.fold_left
        (fun acc (e, _) -> acc + Types.entry_wire_size e)
        0 batch
    in
    cfg.Config.seq_base_ns
    + (50 * List.length batch)
    + int_of_float (cfg.Config.seq_per_byte_ns *. float_of_int bytes)
  | Sr_gc { slots; _ } ->
    cfg.Config.seq_base_ns + (50 * List.length slots)
  | _ -> cfg.Config.seq_base_ns

let create ~cfg ~fabric ~name:rname =
  let node =
    Fabric.add_node fabric ~name:rname
      ~send_overhead:cfg.Config.rpc_overhead
      ~recv_overhead:cfg.Config.rpc_overhead ()
  in
  let ep = Rpc.endpoint fabric node in
  let t =
    {
      cfg;
      node;
      ep;
      rname;
      slog = Seq_log.create ~capacity:cfg.Config.seq_capacity;
      view = 0;
      sealed = false;
      tracked = Hashtbl.create 64;
      bound_gp = Hashtbl.create 64;
      bound_watch = Waitq.create ();
      sub_cursors = Hashtbl.create 8;
      fair = None;
    }
  in
  Rpc.set_service_time ep (service_time cfg);
  Rpc.set_handler ep (fun ~src req ~reply ->
      handle t ~src req ~reply:(fun r -> reply ~size:(Proto.resp_size r) r));
  if cfg.Config.multi_log && cfg.Config.fair_ingress then
    t.fair <- Some (Ingress.install ~cfg ~view:(fun () -> t.view) ep);
  t
