open Ll_sim

type t = {
  capacity : int;
  entries : (int, Types.entry) Hashtbl.t;  (* slot -> live entry *)
  by_rid : (Types.Rid.t, int) Hashtbl.t;  (* live rid -> slot *)
  ordered_seq : (int, int) Hashtbl.t;  (* client -> max ordered seq *)
  mutable first : int;  (* lowest possibly-live slot *)
  mutable next : int;  (* next slot *)
  mutable live : int;
  mutable gp : int;
  (* Multi-log fabric: per-log last-ordered frontier and live count for
     logs beyond 0 (log 0 stays in the scalar [gp] / implied live count,
     so the single-log path is untouched). Frontiers are packed positions
     ({!Logid}). *)
  gps : (int, int) Hashtbl.t;
  live_logs : (int, int) Hashtbl.t;
  mutable live_other : int;  (* total live entries in logs > 0 *)
  (* Pipelined ordering: slots below [claimed] belong to an in-flight
     ordering batch and must not be claimed again; [claimed_live] counts
     the live entries among them. *)
  mutable claimed : int;
  mutable claimed_live : int;
  space : Waitq.t;
}

let create ~capacity =
  {
    capacity;
    entries = Hashtbl.create 1024;
    by_rid = Hashtbl.create 1024;
    ordered_seq = Hashtbl.create 64;
    first = 0;
    next = 0;
    live = 0;
    gp = 0;
    gps = Hashtbl.create 8;
    live_logs = Hashtbl.create 8;
    live_other = 0;
    claimed = 0;
    claimed_live = 0;
    space = Waitq.create ();
  }

type append_result = Appended | Duplicate

let already_ordered t (rid : Types.Rid.t) =
  match Hashtbl.find_opt t.ordered_seq rid.client with
  | Some s -> rid.seq <= s
  | None -> false

let is_duplicate t rid = Hashtbl.mem t.by_rid rid || already_ordered t rid

let bump_live t lg d =
  if lg <> 0 then begin
    t.live_other <- t.live_other + d;
    let cur =
      match Hashtbl.find_opt t.live_logs lg with Some n -> n | None -> 0
    in
    Hashtbl.replace t.live_logs lg (cur + d)
  end

let do_append t e =
  let slot = t.next in
  Hashtbl.replace t.entries slot e;
  Hashtbl.replace t.by_rid (Types.entry_rid e) slot;
  t.next <- slot + 1;
  t.live <- t.live + 1;
  bump_live t (Types.entry_log e) 1

let try_append t e =
  let rid = Types.entry_rid e in
  if is_duplicate t rid then Some Duplicate
  else if t.live >= t.capacity then None
  else begin
    do_append t e;
    Some Appended
  end

let append_wait t e =
  let rid = Types.entry_rid e in
  if is_duplicate t rid then Duplicate
  else begin
    Waitq.await t.space (fun () -> t.live < t.capacity || is_duplicate t rid);
    if is_duplicate t rid then Duplicate
    else begin
      do_append t e;
      Appended
    end
  end

let append_or_wait t e ~cancel =
  let rid = Types.entry_rid e in
  let ready () =
    cancel () || t.live < t.capacity || is_duplicate t rid
  in
  Waitq.await t.space ready;
  if is_duplicate t rid then Some Duplicate
  else if cancel () then None
  else begin
    do_append t e;
    Some Appended
  end

(* Group-commit ingress: the whole batch is admitted atomically. We wait
   until the log has room for every non-duplicate entry of the batch (so a
   batch never half-appends under backpressure), then run one
   duplicate-filter pass that appends the fresh entries back-to-back.
   Cancellation (seal / view change) while waiting fails the batch as a
   unit: no entry is appended. Assumes the batch is far smaller than
   [capacity] (flush triggers bound it). *)
let append_batch_or_wait t entries ~cancel =
  let fresh_needed () =
    List.fold_left
      (fun acc e ->
        if is_duplicate t (Types.entry_rid e) then acc else acc + 1)
      0 entries
  in
  Waitq.await t.space (fun () ->
      cancel () || t.live + fresh_needed () <= t.capacity);
  if cancel () then None
  else
    (* One pass: a rid appearing twice inside the batch registers on the
       first occurrence and filters the second. *)
    Some
      (List.map
         (fun e ->
           if is_duplicate t (Types.entry_rid e) then Duplicate
           else begin
             do_append t e;
             Appended
           end)
         entries)

let kick t = Waitq.broadcast t.space

let unordered t ?max () =
  let limit = match max with Some m -> m | None -> t.live in
  let acc = ref [] in
  let taken = ref 0 in
  let slot = ref t.first in
  while !taken < limit && !slot < t.next do
    (match Hashtbl.find_opt t.entries !slot with
    | Some e ->
      acc := e :: !acc;
      incr taken
    | None -> ());
    incr slot
  done;
  List.rev !acc

let live_count t = t.live

let unclaimed_count t = t.live - t.claimed_live

(* Claim up to [max] live entries for an in-flight ordering batch, in log
   order, starting after the previous claim. Returns an array (the
   orderer's hot path): one bounded scan, no list rebuild. Claimed entries
   stay live (they still hold capacity and are returned by {!unordered}
   for recovery flushes) but later claims skip them. *)
let claim_unordered t ~max =
  let start = if t.claimed < t.first then t.first else t.claimed in
  let avail = t.live - t.claimed_live in
  let want = if max < avail then max else avail in
  if want <= 0 then [||]
  else begin
    let out = Array.make want (Types.Data Types.no_op) in
    let taken = ref 0 in
    let slot = ref start in
    while !taken < want && !slot < t.next do
      (match Hashtbl.find_opt t.entries !slot with
      | Some e ->
        out.(!taken) <- e;
        incr taken
      | None -> ());
      incr slot
    done;
    t.claimed <- !slot;
    t.claimed_live <- t.claimed_live + !taken;
    if !taken = want then out else Array.sub out 0 !taken
  end

let reset_claims t =
  t.claimed <- t.first;
  t.claimed_live <- 0

let note_ordered t (rid : Types.Rid.t) =
  if rid.client >= 0 then begin
    match Hashtbl.find_opt t.ordered_seq rid.client with
    | Some s when s >= rid.seq -> ()
    | _ -> Hashtbl.replace t.ordered_seq rid.client rid.seq
  end

let advance_first t =
  while t.first < t.next && not (Hashtbl.mem t.entries t.first) do
    t.first <- t.first + 1
  done

let remove_ordered t rids =
  List.iter
    (fun rid ->
      note_ordered t rid;
      match Hashtbl.find_opt t.by_rid rid with
      | Some slot ->
        (match Hashtbl.find_opt t.entries slot with
        | Some e -> bump_live t (Types.entry_log e) (-1)
        | None -> ());
        Hashtbl.remove t.entries slot;
        Hashtbl.remove t.by_rid rid;
        t.live <- t.live - 1;
        if slot < t.claimed then t.claimed_live <- t.claimed_live - 1
      | None -> ())
    rids;
  advance_first t;
  Waitq.broadcast t.space

let mark_ordered t rids = List.iter (note_ordered t) rids

let clear t =
  Hashtbl.reset t.entries;
  Hashtbl.reset t.by_rid;
  t.live <- 0;
  Hashtbl.reset t.live_logs;
  t.live_other <- 0;
  t.first <- t.next;
  t.claimed <- t.next;
  t.claimed_live <- 0;
  Waitq.broadcast t.space

let last_ordered_gp t = t.gp

let set_last_ordered_gp t gp = t.gp <- gp

(* Per-log frontier accessors. Log 0 aliases the scalar [gp]; a log with
   no frontier yet starts at its base position. *)
let last_ordered_gp_for t ~log =
  if log = 0 then t.gp
  else
    match Hashtbl.find_opt t.gps log with
    | Some g -> g
    | None -> Logid.base ~log

let set_last_ordered_gp_for t ~log g =
  if log = 0 then t.gp <- g else Hashtbl.replace t.gps log g

let log_gps t = Hashtbl.fold (fun log g acc -> (log, g) :: acc) t.gps []

let set_log_gps t gps =
  Hashtbl.reset t.gps;
  List.iter (fun (log, g) -> Hashtbl.replace t.gps log g) gps

let live_count_for t ~log =
  if log = 0 then t.live - t.live_other
  else match Hashtbl.find_opt t.live_logs log with Some n -> n | None -> 0

let mem t rid = Hashtbl.mem t.by_rid rid

let known t rid = Hashtbl.mem t.by_rid rid || already_ordered t rid
