open Ll_sim

(* Weighted-fair ingress for a sequencing replica (multi-log fabric).

   The default RPC discipline serves requests FIFO in arrival order, so
   one tenant arriving 50x faster than everyone else owns 98% of the
   replica's CPU and every other tenant's append latency inflates behind
   its queue. This scheduler takes ownership of data-plane appends at the
   demux ([Rpc.set_ingress]) and divides the replica's service capacity
   by configured weight instead of arrival aggression:

   - admission: a per-tenant token bucket ([admit_rate] appends/s per
     weight unit, burst [admit_burst]) plus a queue bound
     ([ingress_queue]). An arrival finding no token and a full queue is
     shed with an immediate failed-append reply — no service time spent —
     and the client's ordinary retry/backoff path absorbs it.
   - service: deficit round robin over the per-tenant queues. Each round
     a tenant's deficit grows by [drr_quantum * weight] nanoseconds of
     service credit and it drains queued requests (through [Rpc.serve],
     so the modeled CPU charge is identical to the default path) while
     the credit covers their cost. Cost left over carries to its next
     round; an emptied queue forfeits it.

   Control-plane traffic (seals, GC, view installs, reads of replicated
   state) bypasses the scheduler entirely and keeps the default FIFO
   path. *)

type tenant = {
  log : int;
  weight : int;
  queue : (int * (unit -> unit)) Queue.t;  (* (service cost, serve thunk) *)
  mutable in_active : bool;  (* member of the DRR round (or being drained) *)
  mutable deficit : int;  (* carried service credit, ns *)
  mutable tokens : float;
  mutable refilled_at : Engine.time;
  mutable admitted : int;
  mutable shed : int;
}

type t = {
  cfg : Config.t;
  replica : int;  (* fabric node id, for probe events *)
  tenants : (int, tenant) Hashtbl.t;
  active : int Queue.t;  (* DRR round: logs with queued work *)
  work : Waitq.t;
}

let weight_of (cfg : Config.t) log =
  match List.assoc_opt log cfg.Config.tenant_weights with
  | Some w when w > 0 -> w
  | _ -> 1

let tenant t log =
  match Hashtbl.find_opt t.tenants log with
  | Some ten -> ten
  | None ->
    let ten =
      {
        log;
        weight = weight_of t.cfg log;
        queue = Queue.create ();
        in_active = false;
        deficit = 0;
        tokens = t.cfg.Config.admit_burst;
        refilled_at = Engine.now ();
        admitted = 0;
        shed = 0;
      }
    in
    Hashtbl.add t.tenants log ten;
    ten

(* Token-bucket admission. With [admit_rate = 0] rate admission is off
   and the queue bound alone decides. *)
let take_token t ten =
  let rate = t.cfg.Config.admit_rate in
  if rate <= 0.0 then false
  else begin
    let now = Engine.now () in
    let elapsed = now - ten.refilled_at in
    if elapsed > 0 then begin
      ten.refilled_at <- now;
      let refill =
        rate *. float_of_int ten.weight *. Engine.to_sec elapsed
      in
      ten.tokens <- Float.min t.cfg.Config.admit_burst (ten.tokens +. refill)
    end;
    if ten.tokens >= 1.0 then begin
      ten.tokens <- ten.tokens -. 1.0;
      true
    end
    else false
  end

let enqueue t ten cost thunk =
  Queue.push (cost, thunk) ten.queue;
  ten.admitted <- ten.admitted + 1;
  if Probe.active () then
    Probe.emit (Probe.Ingress_admitted { replica = t.replica; log = ten.log });
  if not ten.in_active then begin
    ten.in_active <- true;
    Queue.push ten.log t.active;
    Waitq.broadcast t.work
  end

(* One DRR service fiber per endpoint: replenish the head tenant's
   deficit, drain its queue while the credit lasts (each thunk blocks for
   its service time — the replica's single CPU), then rotate. *)
let drain_loop t () =
  let rec loop () =
    Waitq.await t.work (fun () -> not (Queue.is_empty t.active));
    let log = Queue.pop t.active in
    let ten = Hashtbl.find t.tenants log in
    ten.deficit <- ten.deficit + (t.cfg.Config.drr_quantum * ten.weight);
    let stop = ref false in
    while not !stop do
      match Queue.peek_opt ten.queue with
      | None -> stop := true
      | Some (cost, _) when cost > ten.deficit -> stop := true
      | Some (cost, thunk) ->
        ignore (Queue.pop ten.queue);
        ten.deficit <- ten.deficit - cost;
        thunk ()
    done;
    if Queue.is_empty ten.queue then begin
      (* An idle tenant must not hoard credit: deficit carries across
         rounds only while backlogged, the classic DRR rule. *)
      ten.in_active <- false;
      ten.deficit <- 0
    end
    else Queue.push log t.active;
    loop ()
  in
  loop ()

type stats = { st_admitted : int; st_shed : int; st_queued : int }

let stats t ~log =
  match Hashtbl.find_opt t.tenants log with
  | None -> { st_admitted = 0; st_shed = 0; st_queued = 0 }
  | Some ten ->
    {
      st_admitted = ten.admitted;
      st_shed = ten.shed;
      st_queued = Queue.length ten.queue;
    }

let queued_total t =
  Hashtbl.fold (fun _ ten acc -> acc + Queue.length ten.queue) t.tenants 0

(* Install on a sequencing replica's endpoint. [view] reads the replica's
   current view for shed replies (a shed is a failed append in the
   current view — exactly what a sealed replica answers — so clients need
   no new code path). *)
let install ~cfg ~view ep =
  let t =
    {
      cfg;
      replica = Ll_net.Rpc.endpoint_id ep;
      tenants = Hashtbl.create 64;
      active = Queue.create ();
      work = Waitq.create ();
    }
  in
  Engine.spawn
    ~name:(Ll_net.Fabric.name (Ll_net.Rpc.node ep) ^ ".drr")
    (drain_loop t);
  Ll_net.Rpc.set_ingress ep (fun ~src req ~reply ->
      let log =
        match (req : Proto.req) with
        | Proto.Sr_append { entry; _ } -> Some (Types.entry_log entry)
        | Proto.Sr_append_batch { batch = (e, _) :: _; _ } ->
          (* A linger batch is classified by its first entry: the batcher
             is per-client-process, so mixed-log batches only arise when a
             process multiplexes tenants — they are accounted to the
             first. *)
          Some (Types.entry_log e)
        | _ -> None
      in
      match log with
      | None -> false  (* control plane: default FIFO path *)
      | Some log ->
        let ten = tenant t log in
        let has_token = take_token t ten in
        if
          has_token
          || Queue.length ten.queue < cfg.Config.ingress_queue
        then begin
          let cost = Ll_net.Rpc.service_time_of ep req in
          enqueue t ten cost (fun () -> Ll_net.Rpc.serve ep ~src req ~reply);
          true
        end
        else begin
          ten.shed <- ten.shed + 1;
          if Probe.active () then
            Probe.emit
              (Probe.Ingress_shed { replica = t.replica; log = ten.log });
          (match (req : Proto.req) with
          | Proto.Sr_append _ ->
            reply (Proto.R_append { ok = false; view = view () })
          | _ ->
            reply
              (Proto.R_append_batch
                 { ok = false; view = view (); appended = [] }));
          true
        end);
  t
