(** Erwin-st: the scalable-throughput LazyLog system (section 5).

    Clients split a record into data (written, uncoordinated and in
    parallel, to every replica of a shard of the client's choice) and
    metadata [<record-id, shard-id>] (written to the sequencing replicas),
    all in the same RTT. Background ordering sequences only metadata, so
    throughput scales with shards even for large records; the
    position-to-shard map is materialized on the shards and cached by
    reading clients (section 5.3). Client failures that leave metadata
    without data resolve to no-op records after a shard-side timeout
    (section 5.4). *)

val create : ?cfg:Config.t -> unit -> Erwin_common.t
(** Builds the cluster, starts the orderer, controller, and the shard
    orphan scrubbers. Must run inside {!Ll_sim.Engine.run}. *)

val client : ?log:int -> Erwin_common.t -> Log_api.t
(** Fresh client handle. Reads consult a local position-to-shard cache,
    fetching [cfg.map_fetch_chunk] positions in bulk on misses
    (amortization, section 5.3). Returned records include no-ops (filter
    with {!Types.is_no_op}) so positions stay aligned. With [log]
    (multi-log fabric, [cfg.multi_log]) the handle is pinned to that
    tenant log: appends carry its id and positions are per-log. [trim]
    is single-log only. *)

val reader :
  Erwin_common.t ->
  (Proto.req, Proto.resp) Ll_net.Rpc.endpoint ->
  rr0:int ->
  int list ->
  (int * Types.record) list
(** [reader cluster ep ~rr0] is the client read path as a standalone
    closure: position-to-shard resolution through a private cached map
    (bulk [Ssh_get_map] fetches on misses) followed by grouped shard
    reads. Partially applied once, it keeps its cache and replica
    round-robin state (seeded by [rr0]) across calls. Blocks until the
    requested positions are readable; results are sorted by position and
    include no-ops. Used by [client] and by the subscription manager's
    fetch path ({!Ll_stream}). *)
