(* The multi-log keyspace packs (log, position) into one int:

     packed = (log lsl shift) lor pos

   Log 0 therefore packs to the raw position — every pre-multi-log
   integer position is the log-0 encoding of itself, so the single-log
   path needs no translation anywhere (wire messages, shard stores, the
   [mod nshards] placement rule and the monitors all keep working on the
   packed value unchanged). Positions within a log are dense; distinct
   logs occupy disjoint ranges, so numeric comparison doubles as per-log
   comparison whenever both sides belong to the same log. *)

let shift = 40

let max_pos = (1 lsl shift) - 1

let max_logs = 1 lsl (62 - shift)

let pack ~log pos =
  if log < 0 || log >= max_logs then invalid_arg "Logid.pack: bad log id";
  if pos < 0 || pos > max_pos then invalid_arg "Logid.pack: bad position";
  (log lsl shift) lor pos

let log_of packed = packed lsr shift

let pos_of packed = packed land max_pos

let base ~log = log lsl shift

let pp fmt packed =
  if log_of packed = 0 then Format.fprintf fmt "%d" packed
  else Format.fprintf fmt "%d@%d" (pos_of packed) (log_of packed)
