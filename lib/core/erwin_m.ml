open Erwin_common

let create ?(cfg = Config.default) () =
  let cluster = Erwin_common.create ~cfg ~mode:M in
  Orderer.start cluster;
  Reconfig.start cluster;
  cluster

let client ?(log = 0) (cluster : Erwin_common.t) : Log_api.t =
  let cid = fresh_client_id cluster in
  let ep = new_endpoint cluster ~name:(Printf.sprintf "m-client%d" cid) in
  Client_core.install_retry_budget cluster ep;
  let seq = ref 0 in
  let next_rid () =
    incr seq;
    { Types.Rid.client = cid; seq = !seq }
  in
  let append ~size ~data =
    let r = Types.record ~rid:(next_rid ()) ~size ~data ~log () in
    Client_core.append_entry cluster ep ~track:false (Types.Data r);
    true
  in
  let append_sync ~size ~data =
    let rid = next_rid () in
    let r = Types.record ~rid ~size ~data ~log () in
    Client_core.append_entry cluster ep ~track:true (Types.Data r);
    Logid.pos_of (Client_core.wait_ordered cluster ep rid)
  in
  (* Stagger the replica rotation by client id so concurrent readers
     start on different replicas of a shard. *)
  let read_rr = ref cid in
  let pf = Client_core.prefetcher () in
  let fetch positions =
    Client_core.read_grouped ~rr:read_rr cluster ep
      ~shard_of:(shard_of_position cluster)
      positions
  in
  (* Per-log positions are contiguous in the packed keyspace
     ([pack ~log p = base + p]), so packing [from] once covers the whole
     window — the prefetcher's sequential arithmetic stays valid. *)
  let read ~from ~len =
    Client_core.prefetched_read cluster pf ~fetch
      ~from:(Logid.pack ~log from) ~len
    |> List.map snd
  in
  {
    Log_api.name = "erwin-m";
    append;
    read;
    check_tail = (fun () -> Client_core.check_tail ~log cluster ep);
    trim =
      (fun ~upto ->
        (* Numeric trim sweeps the whole packed keyspace; only meaningful
           for the legacy single log. *)
        if log = 0 then Client_core.trim_all cluster ep ~upto else false);
    append_sync = Some append_sync;
  }
