(** Wire protocol for the Erwin systems (both Erwin-m and Erwin-st).

    One request/response union serves the sequencing replicas, the storage
    shards, the background orderer, and the reconfiguration controller.
    Erwin-m clusters only ever exchange the [Sr_*], [Msh_*] and [Sh_*]
    constructors; Erwin-st adds the [Ssh_*] ones. *)

type gp = int
(** A global log position. *)

type req =
  (* --- Sequencing replicas (section 4.1, 4.5) --- *)
  | Sr_append of { view : int; entry : Types.entry; track : bool }
      (** Client append; [track] asks the leader to remember the assigned
          position for a later [Sr_wait_ordered] (appendSync support). *)
  | Sr_append_batch of { view : int; batch : (Types.entry * bool) list }
      (** Group commit: a linger batch of appends (entry, track), ingested
          under one view check and one duplicate-filter pass. The batch
          either fully acks or fully fails in this view — never half —
          with per-rid results distinguishing fresh appends from
          duplicate-filtered (already durable) entries. *)
  | Sr_check_tail of { view : int; log : int }
      (** Tail of one log ([log = 0] is the legacy single log). *)
  | Sr_gc of { view : int; slots : (gp * Types.Rid.t) list; new_gp : gp }
      (** Leader -> follower: the listed rids were bound; drop them and
          advance last-ordered-gp. *)
  | Sr_seal of { view : int }
  | Sr_get_state
      (** Controller -> recovery replica: unordered log + last-ordered-gp. *)
  | Sr_install_view of {
      new_view : int;
      new_gp : gp;
      gps : (int * gp) list;
          (** per-log ordering frontiers for logs beyond log 0 (empty
              outside the multi-log fabric) *)
      flushed : (gp * Types.Rid.t) list;
    }
  | Sr_wait_ordered of { rid : Types.Rid.t }
      (** Blocks until the tracked rid is bound; responds with its position. *)
  | Sr_order_demand of { upto : gp }
      (** Shard -> orderer: a read is parked on a position below [upto];
          bind eagerly up to it (overriding the lazy cadence) and push
          stable-gp. Idempotent — the orderer keeps only the max demanded
          position — and cheap to retry. *)
  (* --- Shards, common paths --- *)
  | Sh_set_stable of { gp : gp }  (** one-way: advance the readable prefix *)
  | Sh_read of { positions : gp list; stable_hint : gp }
      (** Read records; waits until all positions are below stable-gp.
          [stable_hint] piggybacks the stable-gp the client learned from
          the sequencing layer, so a shard that lost a one-way
          [Sh_set_stable] catches up instead of blocking the read. *)
  | Sh_trim of { upto : gp }
  (* --- Erwin-m shards: background pushes of full records ---

     [truncate_logs] carries per-log truncation frontiers for tenant logs
     (empty outside the multi-log fabric); it rides in the same message as
     the slots so a recovery's unbind and rebind stay atomic per shard
     even when several logs flush at once. *)
  | Msh_push of {
      truncate_from : gp option;
      truncate_logs : gp list;
      slots : (gp * Types.record) list;
    }
  | Msh_replicate of {
      truncate_from : gp option;
      truncate_logs : gp list;
      slots : (gp * Types.record) list;
    }
  (* --- Erwin-st shards: uncoordinated data writes + metadata ordering --- *)
  | Ssh_data_write of { record : Types.record }
      (** Client -> every shard replica, in parallel: stage the record. *)
  | Ssh_order of {
      truncate_from : gp option;
      truncate_logs : gp list;
      bindings : (gp * Types.Rid.t) list;  (** this shard's records *)
      map_chunk : (gp * int) list;  (** position -> shard, full batch *)
    }
  | Ssh_replicate_order of {
      truncate_from : gp option;
      truncate_logs : gp list;
      bindings : (gp * Types.Rid.t) list;
      noops : Types.Rid.t list;
      map_chunk : (gp * int) list;
    }
  | Ssh_backfill of { slots : (gp * Types.record) list }
      (** Primary -> backup: records the backup was missing. *)
  | Ssh_get_map of { from : gp; count : int; stable_hint : gp }
  (* --- Streaming delivery (lib/stream): subscriptions off the stable
     tail with durable replicated cursors --- *)
  | St_subscribe of { name : string; endpoint : int; from : gp; window : int }
      (** Consumer -> subscription manager: attach (or re-attach after a
          consumer restart) the named subscription, delivering to fabric
          node [endpoint]. [from] seeds the cursor when the name is new;
          a re-attach keeps the manager's cursor (the redelivered gap is
          filtered by consumer-side dedup). [window] is the consumer's
          credit grant. *)
  | St_push of {
      name : string;
      epoch : int;
      seq : int;  (** per-epoch batch sequence number *)
      records : (gp * Types.record) list;  (** ascending positions *)
    }
      (** Manager -> consumer: one in-flight batch of stable records. The
          RPC response is the ack ([R_sub_ack]); a lost response means
          redelivery of the same batch. *)
  | St_cursor_sync of { name : string; epoch : int; cursor : gp }
      (** Manager -> every sequencing replica, one-way: durably replicate
          the acknowledged cursor. Receivers max-merge, so lost or
          reordered syncs only lag the floor (redelivery + dedup absorb
          the gap after a recovery). *)
  | St_cursor_fetch
      (** Manager -> sequencing replica: read back every replicated
          cursor (view-change recovery). *)

type resp =
  | R_ok
  | R_append of { ok : bool; view : int }
  | R_append_batch of { ok : bool; view : int; appended : bool list }
      (** [ok = true]: every entry of the batch is durable in [view];
          [appended] tells, per rid, whether the entry was freshly appended
          ([true]) or filtered as an already-known duplicate ([false]).
          [ok = false]: no entry of the batch was appended (wrong view,
          sealed, or sealed while waiting for capacity). *)
  | R_tail of { ok : bool; tail : int }
  | R_state of { gp : gp; gps : (int * gp) list; entries : Types.entry list }
      (** [gps] lists the per-log last-ordered frontiers beyond log 0
          (empty outside the multi-log fabric). *)
  | R_gp of { gp : gp }
  | R_records of { records : (gp * Types.record) list; stable : gp }
      (** [stable] piggybacks the responder's stable mirror: read traffic
          repairs replicas (and clients) that missed a lossy one-way
          [Sh_set_stable] without waiting for the next broadcast. It rides
          in the per-record header slack already counted by [resp_size]. *)
  | R_map of { chunk : (gp * int) list; stable : gp }
  | R_missing of { rids : Types.Rid.t list }
  | R_sub of { epoch : int; cursor : gp }
      (** Subscribe ack: the subscription's current epoch and cursor. *)
  | R_sub_ack of { epoch : int; upto : gp; credits : int }
      (** Consumer's cumulative push ack: every position [< upto] is
          delivered durably ([upto] is the consumer's own cursor, so it
          can run ahead of the pushed batch when dedup filtered a
          redelivered prefix); [credits] re-grants flow-control window. *)
  | R_cursors of { cursors : (string * int * gp) list }
      (** [St_cursor_fetch] reply: (name, epoch, cursor) per
          subscription. *)

(** Approximate wire sizes, for the fabric's per-byte costs. *)

let record_wire (r : Types.record) = r.size + 16

let slots_wire slots =
  List.fold_left (fun acc (_, r) -> acc + record_wire r) 0 slots

let req_size = function
  | Sr_append { entry; _ } -> Types.entry_wire_size entry + 16
  | Sr_append_batch { batch; _ } ->
    (* Group commit amortizes the per-request header: one 16-byte header
       for the whole batch, 4 bytes of framing per entry. *)
    List.fold_left
      (fun acc (e, _) -> acc + Types.entry_wire_size e + 4)
      16 batch
  | Sr_gc { slots; _ } -> (24 * List.length slots) + 16
  | Sr_install_view { flushed; gps; _ } ->
    (24 * List.length flushed) + (16 * List.length gps) + 32
  | Msh_push { slots; truncate_logs; _ }
  | Msh_replicate { slots; truncate_logs; _ } ->
    slots_wire slots + (8 * List.length truncate_logs)
  | Ssh_data_write { record } -> record_wire record
  | Ssh_order { bindings; map_chunk; truncate_logs; _ } ->
    (24 * List.length bindings)
    + (12 * List.length map_chunk)
    + (8 * List.length truncate_logs)
  | Ssh_replicate_order { bindings; map_chunk; noops; truncate_logs; _ } ->
    (24 * List.length bindings)
    + (12 * List.length map_chunk)
    + (16 * List.length noops)
    + (8 * List.length truncate_logs)
  | Ssh_backfill { slots } -> slots_wire slots
  | Sh_read { positions; _ } -> (8 * List.length positions) + 8
  | St_push { records; _ } -> slots_wire records + 32
  | Sr_check_tail _ | Sr_seal _ | Sr_get_state | Sr_wait_ordered _
  | Sr_order_demand _ | Sh_set_stable _ | Sh_trim _ | Ssh_get_map _
  | St_subscribe _ | St_cursor_sync _ | St_cursor_fetch ->
    32

let resp_size = function
  | R_records { records; _ } -> slots_wire records
  | R_state { entries; gps; _ } ->
    List.fold_left
      (fun acc e -> acc + Types.entry_wire_size e)
      (16 + (16 * List.length gps))
      entries
  | R_map { chunk; _ } -> 12 * List.length chunk
  | R_missing { rids } -> 16 * List.length rids
  | R_append_batch { appended; _ } -> 16 + List.length appended
  | R_cursors { cursors } -> (24 * List.length cursors) + 16
  | R_ok | R_append _ | R_tail _ | R_gp _ | R_sub _ | R_sub_ack _ -> 16
