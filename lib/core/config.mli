(** Deployment and calibration parameters for the Erwin systems.

    The latency/CPU constants are calibrated so the simulated cluster lands
    in the same regime as the paper's CloudLab x1170 testbed (25 Gb NICs +
    eRPC, SATA SSD shards); see DESIGN.md section 2 and EXPERIMENTS.md for
    the calibration rationale. *)

open Ll_sim
open Ll_net

type disk_kind = Sata | Nvme

type t = {
  seq_replica_count : int;  (** f+1 sequencing replicas (paper runs 3) *)
  nshards : int;
  shard_backup_count : int;  (** backups per shard (primary excluded) *)
  seq_capacity : int;  (** live entries bound per sequencing replica *)
  order_interval : Engine.time;
      (** background-ordering period (how often the leader cuts a batch) *)
  max_batch : int;  (** max entries ordered per background pass *)
  min_batch : int;  (** adaptive batching floor (see {!field-adaptive_batch}) *)
  adaptive_batch : bool;
      (** grow the ordering batch while the sequencing log keeps a backlog,
          shrink it back to [min_batch] when drained *)
  pipeline_depth : int;
      (** max ordering batches in flight at once; [1] plus
          [adaptive_batch = false] selects the legacy serial orderer *)
  seq_base_ns : int;  (** sequencing-replica CPU per request, base *)
  seq_per_byte_ns : float;  (** sequencing-replica CPU per payload byte *)
  shard_base_ns : int;  (** shard CPU per request *)
  shard_disk : disk_kind;
  dirty_limit_bytes : int;
      (** shard in-memory write-buffer bound before backpressure *)
  data_wait_timeout : Engine.time;
      (** Erwin-st: how long a shard waits for a missing record before
          writing a no-op (section 5.4) *)
  append_timeout : Engine.time;  (** client append retry timeout *)
  append_batching : bool;
      (** opt-in group commit: coalesce concurrent appends of one client
          process into a single [Sr_append_batch] fan-out. Off by default
          so the paper-fidelity figures measure the per-record path. *)
  linger : Engine.time;
      (** group commit: how long an open batch waits for more records
          before flushing (flushes earlier on {!field-max_batch_records}
          or {!field-max_batch_bytes}) *)
  max_batch_records : int;  (** group commit: record-count flush trigger *)
  max_batch_bytes : int;  (** group commit: payload-bytes flush trigger *)
  read_demand : bool;
      (** opt-in read-triggered eager binding: a shard read (or Erwin-st
          map fetch) of a position beyond stable-gp sends
          [Sr_order_demand] to the sequencing layer, and the orderer cuts
          a batch immediately instead of waiting out its lazy cadence —
          a tail read costs one extra hop, not an ordering interval.
          Off by default so the paper-fidelity figures measure the purely
          lazy path. *)
  replica_reads : bool;
      (** opt-in read scale-out: clients round-robin [Sh_read] (and
          Erwin-st [Ssh_get_map]) across every replica of a shard instead
          of pinning all read traffic to the primary. Backups serve
          positions below their own stable mirror from their own store and
          forward the rest to the primary; every read response piggybacks
          the responder's stable so read traffic repairs mirrors that
          missed a lossy one-way [Sh_set_stable]. *)
  readahead : int;
      (** client-side scan readahead window (records); [0] disables. On a
          sequential access pattern the client prefetches the next
          [readahead] positions (shard reads, and map fetches for
          Erwin-st) ahead of the consumer. *)
  map_fetch_chunk : int;
      (** Erwin-st: positions fetched per [Ssh_get_map] when filling the
          client's position-to-shard map cache *)
  subscriptions : bool;
      (** opt-in streaming delivery: a per-cluster subscription manager
          (started separately, [Ll_stream.Manager]) pushes stable-tail
          records to registered subscriber endpoints, keeps durable named
          consumer cursors replicated through the sequencing layer
          ([St_cursor_sync]), and reuses the read-demand wake path so the
          push frontier does not wait out the lazy ordering cadence. Off
          by default so the paper-fidelity figures are untouched. *)
  sub_window : int;
      (** subscriptions: credit-based flow-control window — the maximum
          number of pushed-but-unacknowledged records a consumer ever has
          outstanding *)
  sub_push_max : int;
      (** subscriptions: records per [St_push] batch (one batch in flight
          per subscription; bounded by the consumer's remaining credits) *)
  sub_push_timeout : Engine.time;
      (** subscriptions: how long the manager waits for a push's ack
          before redelivering the batch (at-least-once; the consumer
          dedups by position) *)
  hedged_reads : bool;
      (** opt-in tail-latency hedging on the replica-read path: a client
          read fires a duplicate to a second replica of the plan after an
          adaptive deadline ({!Ll_net.Rpc.hedge_deadline} over the
          endpoint's per-peer latency scores, floored at
          {!field-hedge_floor}); first response wins, the loser's timer is
          cancelled. Off by default. *)
  hedge_floor : Engine.time;  (** minimum hedge deadline *)
  retry_budget : bool;
      (** opt-in retry budgets: client endpoints (and shard backup
          endpoints, whose primary-forwards are retried) meter retries
          through a token bucket so timeout storms shed load instead of
          amplifying. Never attached to replication paths. Off by
          default. *)
  retry_budget_ratio : float;  (** tokens earned per fresh call *)
  retry_budget_cap : float;  (** bucket capacity (and initial balance) *)
  outlier_detection : bool;
      (** opt-in latency-outlier health monitor: the controller probes
          every sequencing replica each {!field-outlier_interval}, scores
          responses ({!Ll_net.Rpc.peer_score}), and triggers section 5.5
          straggler removal for a replica whose score exceeds
          {!field-outlier_factor} x the median — catching fail-slow (gray)
          replicas whose heartbeats stay green. Off by default. *)
  outlier_interval : Engine.time;  (** probe cadence *)
  outlier_factor : float;  (** eviction threshold vs median score *)
  outlier_min_samples : int;
      (** samples required from every replica before judging *)
  multi_log : bool;
      (** opt-in multi-log fabric: entries carry a log id, the sequencing
          keyspace packs (log, position) into one int ({!Logid}) and every
          log advances its own last-ordered / stable-gp cursors — one
          cluster multiplexes thousands of tenant logs. Off by default:
          every entry then lives in log 0, whose packed positions are the
          raw legacy positions, so figs 6-18 stay byte-identical. *)
  fair_ingress : bool;
      (** with {!field-multi_log}: weighted-fair scheduling at the
          sequencing-replica ingress. Data-plane appends enqueue into
          per-tenant queues drained by deficit round robin (quantum
          {!field-drr_quantum} x the tenant's weight), and a per-tenant
          token bucket ({!field-admit_rate}/{!field-admit_burst}) plus a
          queue bound ({!field-ingress_queue}) sheds excess arrivals with
          an immediate failed-append reply — the client's existing
          retry/backoff (and retry-budget) path absorbs the shed. One hot
          tenant then costs its weight share, not its arrival share. *)
  tenant_weights : (int * int) list;
      (** fair ingress: (log, weight) pairs; unlisted logs weigh 1 *)
  drr_quantum : int;
      (** fair ingress: deficit replenished per DRR round, in service-time
          nanoseconds per weight unit *)
  admit_rate : float;
      (** fair ingress: token-bucket refill, appends/s per weight unit;
          [0.0] disables rate admission (queue bound still applies) *)
  admit_burst : float;  (** fair ingress: token-bucket capacity *)
  ingress_queue : int;
      (** fair ingress: per-tenant queued-append bound; arrivals beyond it
          (with an empty token bucket) are shed immediately *)
  link : Fabric.link;
  rpc_overhead : Engine.time;  (** per-endpoint software overhead (eRPC) *)
  debug_no_rid_pinning : bool;
      (** Intentional-bug gate for the checker: Erwin-st clients re-pick a
          shard on append retry instead of pinning the rid to one shard.
          Loses acknowledged records under message loss. Only for
          validating that [lazylog_check] detects the violation. *)
}

val default : t
(** 3 sequencing replicas, 1 shard with 2 backups, SATA shards, 20 us
    ordering interval. *)

val with_shards : ?backups:int -> t -> int -> t

val scaled_cluster : t -> t
(** The c6525-class cluster used for the paper's scaling experiments
    (section 6.6): NVMe shards. *)
