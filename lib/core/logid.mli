(** Packed (log, position) keyspace for the multi-log fabric.

    A packed global position is [(log lsl shift) lor pos]. Log 0 packs to
    the raw position, so every pre-multi-log position is already the
    log-0 encoding of itself and the single-log path runs unchanged on
    packed values. Positions within one log are dense and numerically
    ordered; distinct logs occupy disjoint ranges. *)

val shift : int
(** Bit position of the log id within a packed position (40). *)

val max_pos : int
(** Largest per-log position ([2^shift - 1]). *)

val max_logs : int
(** Exclusive upper bound on log ids. *)

val pack : log:int -> int -> int
(** [pack ~log pos] is the packed global position. Raises
    [Invalid_argument] on out-of-range log or position. *)

val log_of : int -> int
(** Log id of a packed position ([0] for every legacy position). *)

val pos_of : int -> int
(** Per-log position of a packed position (identity for log 0). *)

val base : log:int -> int
(** [base ~log] is [pack ~log 0]: the first position of [log]. *)

val pp : Format.formatter -> int -> unit
(** ["pos@log"], or just ["pos"] for log 0. *)
