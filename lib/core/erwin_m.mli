(** Erwin-m: the black-box LazyLog system (section 4).

    Clients write whole records to the coordination-free sequencing layer
    in 1 RTT; a background orderer later binds them to global positions and
    pushes them to the shards ([position mod nshards] placement). Shards
    only see ordinary append/read/truncate traffic, which is what lets
    Erwin-m run over unmodified shard stacks (the Kafka deployment of
    section 6.8 uses the same sequencing layer via [Ll_kafka]). *)

val create : ?cfg:Config.t -> unit -> Erwin_common.t
(** Builds the cluster and starts the background orderer and the
    reconfiguration controller. Must run inside {!Ll_sim.Engine.run}. *)

val client : ?log:int -> Erwin_common.t -> Log_api.t
(** A fresh client handle (own fabric node, own client id). Handles are
    single-fiber: spawn one per concurrent client. [append_sync] is
    provided (the section 5.5 extension). With [log] (multi-log fabric,
    [cfg.multi_log]) the handle is pinned to that tenant log: appends
    carry its id, and positions ([read]/[check_tail]/[append_sync]) are
    per-log. [trim] is single-log only. *)
