(** Client-side building blocks shared by Erwin-m and Erwin-st: the
    parallel coordination-free write to all sequencing replicas, view-aware
    retries, tail queries, shard-grouped reads, and the appendSync wait. *)

open Ll_net

type ep = (Proto.req, Proto.resp) Rpc.endpoint

val install_retry_budget : Erwin_common.t -> ep -> unit
(** With [cfg.retry_budget], arm the endpoint's retry token bucket
    ([retry_budget_ratio]/[retry_budget_cap]) so its [Rpc.call_retry]
    retries shed under sustained timeouts instead of storming. No-op
    when the knob is off. *)

val try_append_seq :
  Erwin_common.t -> ep -> view:int -> track:bool -> Types.entry ->
  [ `Ok | `Fail ]
(** One append attempt: writes the entry to every sequencing replica of
    [view] in parallel and succeeds only if all ack in that view within
    the configured timeout (the 1 RTT fast path of section 4.1). *)

val await_view_after : Erwin_common.t -> int -> unit
(** Parks until the cluster's view exceeds the given one (bounded waits so
    a controller-less deployment still makes progress via retries). *)

val append_entry : Erwin_common.t -> ep -> track:bool -> Types.entry -> unit
(** [try_append_seq] with retry-across-views until acknowledged. *)

val check_tail : ?log:int -> Erwin_common.t -> ep -> int
(** Durable-record count from the sequencing leader (section 4.4),
    retrying across view changes. With [log] (multi-log fabric) the
    count is per-tenant: that log's ordered frontier plus its own live
    unordered entries, as a per-log position. *)

val wait_ordered : Erwin_common.t -> ep -> Types.Rid.t -> int
(** Blocks until a tracked rid is bound; returns its global position. *)

val read_grouped :
  ?rr:int ref ->
  Erwin_common.t -> ep -> shard_of:(int -> Shard.t) -> int list ->
  (int * Types.record) list
(** Reads the given positions, grouping them into one [Sh_read] per shard
    issued in parallel; result is sorted by position. Blocks until every
    position is stable (fast or slow path, section 4.4).

    With [cfg.replica_reads] each shard's read goes to one of its replicas,
    rotating through [rr] (so concurrent readers spread over the replica
    set) and failing over to the remaining replicas; otherwise it goes to
    the primary, with the backups only as a last-resort fallback. Raises
    if no replica of some shard answers — a dropped read is an error, not
    an empty log. Responses' piggybacked stable is max-merged into the
    cluster's stable mirror.

    With [cfg.hedged_reads] (and a plan of at least two replicas) the
    plan first demotes latency outliers (replicas scoring over 3x the
    plan's median observed latency move to the back, so steady-state
    reads avoid a fail-slow replica) and the first attempt is hedged: a
    second copy races to the next replica after an adaptive deadline
    (lower median of the plan's observed latency scores, floored at
    [cfg.hedge_floor]); any hedged failure falls back to the plan walk
    above. *)

val note_piggyback : Erwin_common.t -> int -> unit
(** Max-merge a stable value piggybacked on a read response into the
    cluster's stable mirror. *)

type prefetcher
(** Per-client scan-readahead state for {!prefetched_read}. *)

val prefetcher : unit -> prefetcher

val prefetched_read :
  Erwin_common.t ->
  prefetcher ->
  fetch:(int list -> (int * Types.record) list) ->
  from:int ->
  len:int ->
  (int * Types.record) list
(** [Log_api.read] through a sequential-scan prefetcher: when the access
    pattern is sequential and [cfg.readahead > 0], the next [readahead]
    positions are fetched in the background (via [fetch], the
    system-specific blocking read) while the consumer processes the
    current window. With [readahead = 0] this is exactly one synchronous
    [fetch]. *)

val subscribe_stream :
  Erwin_common.t ->
  ep ->
  manager:Fabric.node_id ->
  name:string ->
  from:int ->
  window:int ->
  int * int
(** Attach (or re-attach) the named subscription at the subscription
    manager on node [manager], delivering pushes to this endpoint; returns
    the subscription's [(epoch, cursor)]. [from] seeds the cursor only
    when the name is new; [window] is this consumer's credit grant.
    Retries until the manager answers. *)

val trim_all : Erwin_common.t -> ep -> upto:int -> bool
