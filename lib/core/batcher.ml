open Ll_sim

(* The client-side linger batcher (group commit).

   One batcher per cluster process, shared by every client handle of that
   process, so concurrent appends from different client fibers coalesce
   into a single [Sr_append_batch] fan-out to all f+1 sequencing replicas.
   A batch flushes on whichever trigger fires first: the [linger] deadline
   armed when the batch opens, [max_batch_records], or [max_batch_bytes].
   Every caller of the batch gets its answer from the one fan-out ack.

   [submit] does not retry: a failed batch fails every caller, and each
   caller's own retry loop re-submits — so retried entries re-coalesce
   into fresh batches (and Erwin-st can re-send its shard data writes in
   lockstep with the metadata retry). Replicas that already accepted an
   entry filter the retry as a duplicate and still ack it. *)

type pending = {
  entry : Types.entry;
  track : bool;
  done_ : [ `Ok | `Fail of int ] Ivar.t;
}

type t = {
  cluster : Erwin_common.t;
  ep : (Proto.req, Proto.resp) Ll_net.Rpc.endpoint;
  mutable buf : pending list;  (* open batch, newest first *)
  mutable count : int;
  mutable bytes : int;
  mutable gen : int;  (* bumped per flush; stale linger timers no-op *)
  mutable flushes : int;
  mutable flushed_records : int;
}

let flush t =
  if t.count > 0 then begin
    let pendings = List.rev t.buf in
    let n = t.count in
    t.buf <- [];
    t.count <- 0;
    t.bytes <- 0;
    t.gen <- t.gen + 1;
    t.flushes <- t.flushes + 1;
    t.flushed_records <- t.flushed_records + n;
    let cluster = t.cluster in
    Engine.spawn ~name:"append.batcher" (fun () ->
        let view = cluster.Erwin_common.view in
        let req =
          Proto.Sr_append_batch
            { view; batch = List.map (fun p -> (p.entry, p.track)) pendings }
        in
        let size = Proto.req_size req in
        let ivs =
          List.map
            (fun r ->
              Ll_net.Rpc.call_async t.ep ~dst:(Seq_replica.node_id r) ~size req)
            cluster.Erwin_common.replicas
        in
        let ok =
          match
            Ivar.join_all_timeout ivs
              ~timeout:cluster.Erwin_common.cfg.Config.append_timeout
          with
          | Some resps ->
            List.for_all
              (function Proto.R_append_batch { ok; _ } -> ok | _ -> false)
              resps
          | None -> false
        in
        let result = if ok then `Ok else `Fail view in
        List.iter (fun p -> Ivar.fill p.done_ result) pendings)
  end

let submit t ~track entry =
  let cfg = t.cluster.Erwin_common.cfg in
  let p = { entry; track; done_ = Ivar.create () } in
  t.buf <- p :: t.buf;
  t.count <- t.count + 1;
  t.bytes <- t.bytes + Types.entry_wire_size entry;
  if
    t.count >= cfg.Config.max_batch_records
    || t.bytes >= cfg.Config.max_batch_bytes
  then flush t
  else if t.count = 1 then begin
    (* First record of a batch arms the linger deadline. [linger = 0]
       still coalesces: the timer fires after every currently-runnable
       fiber has had the chance to enqueue its append. *)
    let gen = t.gen in
    Engine.after cfg.Config.linger (fun () -> if t.gen = gen then flush t)
  end;
  Ivar.read p.done_

let make cluster =
  let ep = Erwin_common.new_endpoint cluster ~name:"append.batcher" in
  let t =
    {
      cluster;
      ep;
      buf = [];
      count = 0;
      bytes = 0;
      gen = 0;
      flushes = 0;
      flushed_records = 0;
    }
  in
  {
    Erwin_common.submit_entry = (fun ~track entry -> submit t ~track entry);
    batch_stats = (fun () -> (t.flushes, t.flushed_records));
  }

let get (cluster : Erwin_common.t) =
  match cluster.append_batcher with
  | Some b -> b
  | None ->
    let b = make cluster in
    cluster.append_batcher <- Some b;
    b
