open Ll_sim
open Ll_net
open Erwin_common

let create ?(cfg = Config.default) () =
  let cluster = Erwin_common.create ~cfg ~mode:St in
  Orderer.start cluster;
  Reconfig.start cluster;
  List.iter
    (fun s -> Shard.start_scrubber s ~age:(Engine.ms 100) ~every:(Engine.ms 50))
    cluster.shards;
  cluster

(* One full append attempt: data to every replica of the chosen shard and
   metadata to every sequencing replica, all in parallel (1 RTT,
   section 5.1). [`Poisoned] means a shard replica already no-op'ed this
   rid (a too-late retry, section 5.4): retry with a fresh rid. *)
let try_append_once (cluster : Erwin_common.t) ep ~track record shard =
  let view = cluster.view in
  let data_req = Proto.Ssh_data_write { record } in
  let data_ivs =
    List.map
      (fun dst -> Rpc.call_async ep ~dst ~size:(Proto.req_size data_req) data_req)
      (Shard.replica_ids shard)
  in
  let meta : Types.entry =
    Types.Meta
      { rid = record.Types.rid; shard = Shard.shard_id shard;
        size = record.Types.size; log = record.Types.log }
  in
  if cluster.cfg.Config.append_batching then begin
    (* Group commit: the metadata entry rides the shared linger batch while
       the shard data writes are already in flight; both legs still overlap
       (the data RTT runs under the batch's linger + fan-out). A failed
       batch fails this attempt, and the retry re-sends data and metadata
       in lockstep — the shard stages the duplicate write idempotently. *)
    let meta_res = (Batcher.get cluster).submit_entry ~track meta in
    let data_resps =
      Ivar.join_all_timeout data_ivs
        ~timeout:cluster.cfg.Config.append_timeout
    in
    let fail () =
      match meta_res with `Fail v -> `Fail v | `Ok -> `Fail view
    in
    match data_resps with
    | Some resps ->
      let data_ok =
        List.for_all
          (function Proto.R_append { ok; _ } -> ok | _ -> false)
          resps
      in
      if data_ok && meta_res = `Ok then `Ok
      else if
        (* A data write refused because the rid was no-op'ed is permanent. *)
        List.exists
          (function
            | Proto.R_append { ok = false; view = 0 } -> true
            | _ -> false)
          resps
      then `Poisoned
      else fail ()
    | None -> fail ()
  end
  else
    let meta_req = Proto.Sr_append { view; entry = meta; track } in
    let meta_ivs =
      List.map
        (fun r ->
          Rpc.call_async ep ~dst:(Seq_replica.node_id r)
            ~size:(Proto.req_size meta_req) meta_req)
        cluster.replicas
    in
    match
      Ivar.join_all_timeout (data_ivs @ meta_ivs)
        ~timeout:cluster.cfg.Config.append_timeout
    with
    | Some resps ->
      let ok =
        List.for_all
          (function Proto.R_append { ok; _ } -> ok | _ -> false)
          resps
      in
      if ok then `Ok
      else if
        (* A data write refused because the rid was no-op'ed is permanent. *)
        List.exists
          (function
            | Proto.R_append { ok = false; view = 0 } -> true
            | _ -> false)
          (List.filteri (fun i _ -> i < List.length data_ivs) resps)
      then `Poisoned
      else `Fail view
    | None -> `Fail view

(* Position-to-shard resolution through a cached map (section 5.3), plus
   the grouped shard reads behind it. Exported separately from [client] so
   non-client readers of bound positions — the subscription manager's
   fetch path in particular — share the exact same machinery. Every shard
   replica stores the full map chunk stream, so with [replica_reads] the
   fetches round-robin over every replica of every shard; otherwise they
   pin to the head shard's primary. [rr0] seeds the rotation so distinct
   readers interleave instead of marching in lockstep. *)
let reader (cluster : Erwin_common.t) ep ~rr0 =
  let map_cache : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let map_rr = ref rr0 in
  let fetch_map_chunk dst ~tries req =
    match
      Rpc.call_retry ep ~dst ~size:(Proto.req_size req)
        ~timeout:(Engine.ms 50) ~max_tries:tries ~backoff:(Engine.us 50) req
    with
    | Some (Proto.R_map { chunk; stable }) ->
      Client_core.note_piggyback cluster stable;
      Some chunk
    | Some _ | None -> None
  in
  let rec ensure_mapped positions =
    match List.find_opt (fun p -> not (Hashtbl.mem map_cache p)) positions with
    | None -> ()
    | Some missing ->
      let req =
        Proto.Ssh_get_map
          {
            from = missing;
            count = cluster.cfg.Config.map_fetch_chunk;
            stable_hint = stable_for cluster ~log:(Logid.log_of missing);
          }
      in
      let head_primary = Shard.primary_id (List.hd cluster.shards) in
      let chunk =
        if cluster.cfg.Config.replica_reads then begin
          let all =
            Array.of_list (List.concat_map Shard.replica_ids cluster.shards)
          in
          let dst = all.(!map_rr mod Array.length all) in
          incr map_rr;
          match fetch_map_chunk dst ~tries:25 req with
          | Some c -> c
          | None -> (
            (* The picked replica is unreachable (or kept failing the
               forward): fall back to the head primary before giving up. *)
            match
              if dst = head_primary then None
              else fetch_map_chunk head_primary ~tries:25 req
            with
            | Some c -> c
            | None -> failwith "erwin-st: map fetch failed on every replica")
        end
        else
          match fetch_map_chunk head_primary ~tries:100 req with
          | Some c -> c
          | None -> failwith "erwin-st: bad map response"
      in
      List.iter (fun (gp, sid) -> Hashtbl.replace map_cache gp sid) chunk;
      ensure_mapped positions
  in
  let shard_of p = shard_by_id cluster (Hashtbl.find map_cache p) in
  fun positions ->
    ensure_mapped positions;
    Client_core.read_grouped ~rr:map_rr cluster ep ~shard_of positions

let client ?(log = 0) (cluster : Erwin_common.t) : Log_api.t =
  let cid = fresh_client_id cluster in
  let ep = new_endpoint cluster ~name:(Printf.sprintf "st-client%d" cid) in
  Client_core.install_retry_budget cluster ep;
  let seq = ref 0 in
  let rr = ref cid in
  let next_rid () =
    incr seq;
    { Types.Rid.client = cid; seq = !seq }
  in
  let pick_shard () =
    let n = Array.length cluster.shard_index in
    let s = shard_by_id cluster (!rr mod n) in
    incr rr;
    s
  in
  (* A rid is pinned to its shard across [`Fail] retries: the ordered
     metadata names that shard, so retrying elsewhere would let the
     original shard no-op the binding while a duplicate-filtered meta ack
     makes the retry look successful — losing an acked record. Only a
     fresh rid (after [`Poisoned]) picks a new shard. *)
  let rec append_attempt ~track record shard =
    match try_append_once cluster ep ~track record shard with
    | `Ok ->
      if Probe.active () then
        Probe.emit (Probe.Append_acked { rid = record.Types.rid });
      record.Types.rid
    | `Poisoned ->
      (* Never acked, so appending again under a fresh rid is safe. *)
      let record = { record with Types.rid = next_rid () } in
      if Probe.active () then
        Probe.emit (Probe.Append_invoked { rid = record.Types.rid });
      append_attempt ~track record (pick_shard ())
    | `Fail view ->
      Client_core.await_view_after cluster view;
      (* debug_no_rid_pinning deliberately breaks the pinning above: the
         checker's known-bad configuration. *)
      let shard =
        if cluster.cfg.Config.debug_no_rid_pinning then pick_shard ()
        else shard
      in
      append_attempt ~track record shard
  in
  let append_record ~track record =
    if Probe.active () then
      Probe.emit (Probe.Append_invoked { rid = record.Types.rid });
    append_attempt ~track record (pick_shard ())
  in
  let append ~size ~data =
    let r = Types.record ~rid:(next_rid ()) ~size ~data ~log () in
    ignore (append_record ~track:false r : Types.Rid.t);
    true
  in
  let append_sync ~size ~data =
    let r = Types.record ~rid:(next_rid ()) ~size ~data ~log () in
    let rid = append_record ~track:true r in
    Logid.pos_of (Client_core.wait_ordered cluster ep rid)
  in
  (* The map rotation inside [reader] is seeded separately from the append
     rotation [rr], which also decides record placement and must not be
     perturbed by reads. *)
  let pf = Client_core.prefetcher () in
  let fetch = reader cluster ep ~rr0:cid in
  (* Per-log positions are contiguous in the packed keyspace, so packing
     [from] once covers the whole window (see {!Logid}). *)
  let read ~from ~len =
    Client_core.prefetched_read cluster pf ~fetch
      ~from:(Logid.pack ~log from) ~len
    |> List.map snd
  in
  {
    Log_api.name = "erwin-st";
    append;
    read;
    check_tail = (fun () -> Client_core.check_tail ~log cluster ep);
    trim =
      (fun ~upto ->
        if log = 0 then Client_core.trim_all cluster ep ~upto else false);
    append_sync = Some append_sync;
  }
