(** A sequencing-layer replica (sections 4.1–4.3, 4.5).

    Replicas are coordination-free: each one independently appends incoming
    entries to its local log and acks the client directly. The leader's log
    order is only used later by the background {!Orderer}; on leader
    failure any survivor's log can recover the order, because every log is
    a valid linearization of acknowledged appends.

    A replica participates in views: it rejects appends (and GC) when
    sealed or when the client's view is stale, and is reset into new views
    by the reconfiguration controller. *)

open Ll_net

type t

val create :
  cfg:Config.t ->
  fabric:(Proto.req, Proto.resp) Rpc.msg Fabric.t ->
  name:string ->
  t
(** Creates the replica's fabric node and endpoint, installs its handler,
    and charges [cfg.seq_base_ns + size * cfg.seq_per_byte_ns] of CPU per
    incoming request. *)

val node : t -> (Proto.req, Proto.resp) Rpc.msg Fabric.node
val node_id : t -> Fabric.node_id
val name : t -> string

val log : t -> Seq_log.t
(** Direct access for the colocated background orderer (the paper uses
    RDMA reads of the leader's ring buffer for exactly this, section 5.6). *)

val view : t -> int
val is_sealed : t -> bool

val apply_gc :
  ?gps:(int * int) list -> t -> slots:(int * Types.Rid.t) list ->
  new_gp:int -> unit
(** Local equivalent of [Sr_gc], used by the orderer on the leader.
    [gps] carries the per-log ordered frontiers ([(log, packed gp)],
    logs > 0) advanced by the same ordering pass under [multi_log];
    empty (the default) on the single-log path. *)

val ingress : t -> Ingress.t option
(** The weighted-fair ingress scheduler, present iff the replica was
    created with [multi_log && fair_ingress] (tests and the tenants
    bench read its per-tenant admit/shed counters). *)

val sub_cursor : t -> string -> (int * int) option
(** The replicated [(epoch, cursor)] of a named subscription, as last
    max-merged from the subscription manager's [St_cursor_sync] stream
    (tests and recovery diagnostics; the manager itself recovers via
    [St_cursor_fetch]). *)
