(** Weighted-fair ingress scheduling for sequencing replicas.

    The multi-log fabric (DESIGN.md section 16) multiplexes thousands of
    tenant logs over one cluster, so one aggressive tenant can no longer
    be allowed to own a replica's FIFO ingress: this module installs an
    {!Ll_net.Rpc.set_ingress} scheduler that (a) sheds arrivals exceeding
    a per-tenant token bucket + queue bound with an immediate failed
    append (no service time spent), and (b) serves the admitted backlog
    by deficit round robin so service capacity divides by configured
    weight ({!Config.tenant_weights}) instead of arrival rate.

    Only data-plane appends ([Sr_append] / [Sr_append_batch]) are
    scheduled; all other traffic falls through to the default FIFO path
    unchanged. Installed only when [multi_log && fair_ingress] — with the
    knobs off no scheduler exists and the replica behaves
    byte-identically to the single-log system. *)

type t

val install :
  cfg:Config.t ->
  view:(unit -> int) ->
  (Proto.req, Proto.resp) Ll_net.Rpc.endpoint ->
  t
(** Attaches the scheduler to a replica endpoint and spawns its DRR
    drain fiber. [view] reads the replica's current view for shed
    replies (a shed looks to the client like any failed append — its
    ordinary retry path absorbs it). *)

type stats = { st_admitted : int; st_shed : int; st_queued : int }

val stats : t -> log:int -> stats
(** Cumulative admitted/shed counters and current queue depth for one
    tenant; zeros for a tenant never seen. *)

val queued_total : t -> int
(** Total requests currently queued across all tenants (the bound the
    admission path is defending). *)
