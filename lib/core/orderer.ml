open Ll_sim
open Ll_net
open Erwin_common

(* ---------- batch -> per-shard request construction ----------

   Array-based hot path: one reverse pass over the positioned slots builds
   every shard's request payload and its wire size, with no List.mapi /
   List.length re-walks. Payloads stay lists because that is the wire
   format ([Proto]); they are built back-to-front so no reversal is
   needed. *)

let build_targets (cluster : t) ~truncate_from ~truncate_logs
    (slots : (int * Types.entry) array) =
  let shards = cluster.shard_index in
  let n = Array.length shards in
  let truncating = truncate_from <> None || truncate_logs <> [] in
  match cluster.mode with
  | M ->
    (* Deterministic placement: position p -> shard (p mod n). *)
    let groups = Array.make n [] in
    let sizes = Array.make n 0 in
    for i = Array.length slots - 1 downto 0 do
      let gp, entry = slots.(i) in
      match (entry : Types.entry) with
      | Types.Data r ->
        let s = gp mod n in
        groups.(s) <- (gp, r) :: groups.(s);
        sizes.(s) <- sizes.(s) + Proto.record_wire r
      | Types.Meta _ -> assert false
    done;
    Array.init n (fun i ->
        ( shards.(i),
          Proto.Msh_push { truncate_from; truncate_logs; slots = groups.(i) },
          sizes.(i) + (8 * List.length truncate_logs),
          groups.(i) <> [] || truncating ))
  | St ->
    let groups = Array.make n [] in
    let counts = Array.make n 0 in
    let map_chunk = ref [] in
    for i = Array.length slots - 1 downto 0 do
      let gp, entry = slots.(i) in
      match (entry : Types.entry) with
      | Types.Meta m ->
        groups.(m.shard) <- (gp, Types.entry_rid entry) :: groups.(m.shard);
        counts.(m.shard) <- counts.(m.shard) + 1;
        map_chunk := (gp, m.shard) :: !map_chunk
      | Types.Data _ -> assert false
    done;
    (* Every shard stores the full position->shard map chunk, so any
       shard server can answer Ssh_get_map (section 5.3). *)
    let map_chunk = !map_chunk in
    let map_size = 12 * Array.length slots in
    let any = map_chunk <> [] || truncating in
    Array.init n (fun i ->
        ( shards.(i),
          Proto.Ssh_order
            { truncate_from; truncate_logs; bindings = groups.(i); map_chunk },
          (24 * counts.(i)) + map_size + (8 * List.length truncate_logs),
          any ))

(* Fire one independent push fiber per involved shard; [on_done] runs once
   every shard (replication included) has acknowledged. Pushes are retried
   on loss: binding by explicit position and the primary's already-bound
   filter make them idempotent. No cross-shard barrier here — a straggler
   shard delays only its own batch's commit, never the next batch's
   pushes. *)
let spawn_pushes (cluster : t) ep ?(truncate_logs = []) ~truncate_from slots
    ~on_done =
  let targets = build_targets cluster ~truncate_from ~truncate_logs slots in
  let involved =
    Array.fold_left
      (fun acc (_, _, _, send) -> if send then acc + 1 else acc)
      0 targets
  in
  if involved = 0 then on_done ()
  else begin
    let remaining = ref involved in
    Array.iter
      (fun (shard, req, size, send) ->
        if send then
          Engine.spawn ~name:"orderer.push" (fun () ->
              ignore
                (Rpc.call_retry ep ~dst:(Shard.primary_id shard) ~size
                   ~timeout:(Engine.ms 20) ~max_tries:100 req);
              decr remaining;
              if !remaining = 0 then on_done ()))
      targets
  end

let push_batch (cluster : t) ep ?(truncate_logs = []) ~truncate_from slots =
  let iv = Ivar.create () in
  spawn_pushes cluster ep ~truncate_logs ~truncate_from (Array.of_list slots)
    ~on_done:(fun () -> Ivar.fill iv ());
  Ivar.read iv

let broadcast_stable (cluster : t) ep gp =
  if gp > cluster.stable_gp then begin
    cluster.stable_gp <- gp;
    (* Emitted before any shard learns the new bound, so a monitor's
       stable frontier is always >= every shard's. *)
    if Probe.active () then Probe.emit (Probe.Stable_advanced { gp });
    match cluster.on_stable with Some f -> f gp | None -> ()
  end;
  Array.iter
    (fun shard ->
      Rpc.send_oneway ep ~dst:(Shard.primary_id shard)
        (Proto.Sh_set_stable { gp }))
    cluster.shard_index

(* Multi-log stable broadcast: the log-0 frontier takes the exact legacy
   path above (so a batch with no tenant entries is byte-identical),
   then each tenant frontier the batch advanced gets its own merge,
   probe and one-way round. [on_stable] stays log-0 scoped — the
   subscription manager subscribes to the root log. *)
let broadcast_stable_logs (cluster : t) ep ~new_gp ~new_gps =
  broadcast_stable cluster ep new_gp;
  List.iter
    (fun (log, g) ->
      if g > stable_for cluster ~log then begin
        note_stable_log cluster g;
        if Probe.active () then Probe.emit (Probe.Stable_advanced { gp = g })
      end;
      Array.iter
        (fun shard ->
          Rpc.send_oneway ep ~dst:(Shard.primary_id shard)
            (Proto.Sh_set_stable { gp = g }))
        cluster.shard_index)
    new_gps

(* Garbage-collect the ordered batch on one follower. The paper does this
   with RDMA writes that move the ring-buffer head pointers without
   involving the follower's CPU (section 5.6) — crucial under load, where
   a CPU-path GC would queue behind thousands of incoming appends. We
   model it as a raw network round trip plus a direct state update,
   guarded by the follower's view/seal state. *)
let rdma_gc (cluster : t) f ~view ~gps ~slots ~new_gp =
  let iv = Ivar.create () in
  let rtt = cluster.cfg.Config.link.Fabric.one_way * 2 in
  Engine.after (rtt / 2) (fun () ->
      if
        Fabric.is_alive (Seq_replica.node f)
        && Seq_replica.view f = view
        && not (Seq_replica.is_sealed f)
      then begin
        Seq_replica.apply_gc f ~gps ~slots ~new_gp;
        Engine.after (rtt / 2) (fun () -> ignore (Ivar.try_fill iv true))
      end
      else Engine.after (rtt / 2) (fun () -> ignore (Ivar.try_fill iv false)));
  iv

(* Retry follower GC until every follower confirms (transient slowness) or
   the view moves on (a failure; reconfiguration takes over). *)
let rec gc_followers (cluster : t) ep ~view ?(gps = []) ~slots ~new_gp () =
  if cluster.view <> view || cluster.reconfiguring then false
  else begin
    let acks =
      List.map
        (fun f -> rdma_gc cluster f ~view ~gps ~slots ~new_gp)
        (followers cluster)
    in
    match Ivar.join_all_timeout acks ~timeout:(Engine.ms 5) with
    | Some resps when List.for_all Fun.id resps -> true
    | _ -> gc_followers cluster ep ~view ~gps ~slots ~new_gp ()
  end

(* ---------- adaptive batch sizing ---------- *)

module Adaptive = struct
  (* Multiplicative controller: double the batch while claims come out
     full with a backlog left behind (the sequencing log is filling faster
     than we drain it), halve it once a claim leaves the log empty without
     even filling half a batch. Clamped to [min_batch, max_batch]. *)
  let next (cfg : Config.t) ~cur ~claimed ~backlog =
    if not cfg.Config.adaptive_batch then cfg.Config.max_batch
    else begin
      let lo = min cfg.Config.min_batch cfg.Config.max_batch in
      let hi = cfg.Config.max_batch in
      let cur = max lo (min cur hi) in
      if claimed >= cur && backlog > 0 then min (cur * 2) hi
      else if backlog = 0 && claimed <= cur / 2 then max (cur / 2) lo
      else cur
    end
end

(* ---------- position assignment ---------- *)

(* Assign ordering positions to a claimed batch. Log 0 draws densely from
   the [next0] cursor — with [multi_log] off every entry is log 0 and this
   is exactly the historical [base + i] numbering. Under [multi_log],
   tenant entries draw from their own packed cursor in [tbl], seeded from
   the leader's per-log ordered frontier on first touch (safe: a log
   absent from [tbl] has no in-flight batch, so the leader's committed
   frontier is authoritative). Returns the slots plus the [(log, frontier)]
   list for tenant logs this batch advanced. *)
let assign_positions (cluster : t) slog ~next0 ~tbl
    (entries : Types.entry array) =
  if not cluster.cfg.Config.multi_log then begin
    let base = !next0 in
    next0 := base + Array.length entries;
    (Array.mapi (fun i e -> (base + i, e)) entries, [])
  end
  else begin
    let seen = Hashtbl.create 8 in
    let slots =
      Array.map
        (fun e ->
          let log = Types.entry_log e in
          if log = 0 then begin
            let gp = !next0 in
            next0 := gp + 1;
            (gp, e)
          end
          else begin
            let g =
              match Hashtbl.find_opt tbl log with
              | Some g -> g
              | None -> Seq_log.last_ordered_gp_for slog ~log
            in
            Hashtbl.replace tbl log (g + 1);
            Hashtbl.replace seen log ();
            (g, e)
          end)
        entries
    in
    let new_gps =
      Hashtbl.fold (fun log () acc -> (log, Hashtbl.find tbl log) :: acc) seen
        []
    in
    (slots, new_gps)
  end

(* ---------- read-triggered eager binding ---------- *)

(* True when a parked read demands positions the leader could bind right
   now: the orderer's idle wait is cut short and the next batch claimed
   immediately, instead of waiting out the lazy cadence. Once the ordering
   frontier passes the demand cursor (or the unordered log drains) the
   cursor is inert and the orderer falls back to its normal pacing. *)
let demand_pending (cluster : t) ~frontier =
  (cluster.cfg.Config.read_demand || cluster.cfg.Config.subscriptions)
  && (cluster.demand_upto > frontier
     || (cluster.cfg.Config.multi_log
        &&
        (* Tenant demand compares against the leader's committed per-log
           frontier; with in-flight batches this can over-report, but the
           claim that follows is a no-op when nothing is unclaimed. *)
        match cluster.replicas with
        | ldr :: _ ->
          List.exists
            (fun (log, upto) ->
              upto > Seq_log.last_ordered_gp_for (Seq_replica.log ldr) ~log)
            (demand_logs cluster)
        | [] -> false))
  && (not cluster.reconfiguring)
  && (match cluster.replicas with
     | ldr :: _ ->
       Fabric.is_alive (Seq_replica.node ldr)
       && (not (Seq_replica.is_sealed ldr))
       && Seq_log.unclaimed_count (Seq_replica.log ldr) > 0
     | [] -> false)

let serial_frontier (cluster : t) =
  match cluster.replicas with
  | r :: _ -> Seq_log.last_ordered_gp (Seq_replica.log r)
  | [] -> max_int

(* The idle sleep between ordering passes. Gated on the demand knobs
   because an interruptible wait schedules different engine events than a
   plain sleep — with both knobs off the event sequence (and so every
   jitter draw) must stay byte-identical to the lazy baseline.
   [subscriptions] joins [read_demand] here: the subscription manager's
   push frontier demands binding through the same Sr_order_demand path a
   parked read does. *)
let idle_wait (cluster : t) ~frontier =
  if cluster.cfg.Config.read_demand || cluster.cfg.Config.subscriptions then
    ignore
      (Waitq.await_timeout cluster.order_wake
         ~timeout:cluster.cfg.Config.order_interval
         (fun () -> demand_pending cluster ~frontier:(frontier ()))
        : bool)
  else Engine.sleep cluster.cfg.Config.order_interval

(* ---------- metrics ---------- *)

let note_claim (cluster : t) n =
  let m = cluster.metrics in
  if m.first_claim_at < 0 then m.first_claim_at <- Engine.now ();
  Stats.Histogram.add m.batch_sizes n;
  Stats.Histogram.add m.depth_samples (max 1 cluster.inflight_batches);
  if n > m.largest_batch then m.largest_batch <- n

let note_stable (cluster : t) ~size ~claimed_at =
  cluster.batches <- cluster.batches + 1;
  cluster.batched_entries <- cluster.batched_entries + size;
  let m = cluster.metrics in
  m.ordered_records <- m.ordered_records + size;
  m.last_stable_at <- Engine.now ();
  Stats.Reservoir.add m.stable_lag (Engine.now () - claimed_at)

(* ---------- legacy serial orderer (pipeline_depth <= 1, fixed batch) ----

   One strictly sequential push -> leader GC -> follower GC -> stable
   round per interval; kept as the baseline the pipelined path is
   benchmarked against (bench/micro.ml) and for configurations that want
   the original behavior. *)

let serial_pass (cluster : t) ep =
  let ldr = leader cluster in
  if
    (not cluster.reconfiguring)
    && Fabric.is_alive (Seq_replica.node ldr)
    && not (Seq_replica.is_sealed ldr)
  then begin
    let view = cluster.view in
    let slog = Seq_replica.log ldr in
    let entries = Seq_log.unordered slog ~max:cluster.cfg.Config.max_batch () in
    if entries <> [] then begin
      let claimed_at = Engine.now () in
      let next0 = ref (Seq_log.last_ordered_gp slog) in
      (* Fully synchronous pass: the leader's per-log frontiers are
         authoritative, so the tenant cursor table starts fresh. *)
      let slots_arr, new_gps =
        assign_positions cluster slog ~next0 ~tbl:(Hashtbl.create 8)
          (Array.of_list entries)
      in
      let slots = Array.to_list slots_arr in
      let n = List.length entries in
      cluster.ordering_in_progress <- true;
      note_claim cluster n;
      push_batch cluster ep ~truncate_from:None slots;
      (* The batch is on the shards. Collect it replica by replica; only
         when every replica has GC'd may stable-gp move (section 4.5). *)
      if
        cluster.view = view
        && (not cluster.reconfiguring)
        && Fabric.is_alive (Seq_replica.node ldr)
      then begin
        let gc_slots = List.map (fun (gp, e) -> (gp, Types.entry_rid e)) slots in
        let new_gp = !next0 in
        Seq_replica.apply_gc ldr ~gps:new_gps ~slots:gc_slots ~new_gp;
        if gc_followers cluster ep ~view ~gps:new_gps ~slots:gc_slots ~new_gp ()
        then begin
          broadcast_stable_logs cluster ep ~new_gp ~new_gps;
          note_stable cluster ~size:n ~claimed_at
        end
      end;
      cluster.ordering_in_progress <- false;
      Waitq.broadcast cluster.order_idle
    end
  end

(* ---------- pipelined orderer ----------

   Two fibers per cluster:

   - the dispatcher claims a batch from the leader's log, assigns
     positions from its own ordering frontier, and fires the per-shard
     pushes — without waiting for them;
   - the committer consumes batches strictly in dispatch order and, per
     batch, waits for its pushes, GCs the leader, GCs every follower, and
     only then advances stable-gp (the section 4.5 invariant, per batch).

   So batch N+1's shard pushes overlap batch N's follower GC and stable
   broadcast, while stable-gp still advances in batch order. In-flight
   batches are bounded by [pipeline_depth]. A seal or view change between
   a batch's push and its GC invalidates the batch: the committer drops it
   without touching stable-gp, and the recovery flush re-binds its
   positions idempotently (explicit-position binding). *)

type batch = {
  view : int;
  ldr : Seq_replica.t;
  gc_slots : (int * Types.Rid.t) list;
  new_gp : int;
  new_gps : (int * int) list;
      (* tenant frontiers this batch advanced (multi_log; else []) *)
  size : int;
  pushed : unit Ivar.t;
  claimed_at : Engine.time;
}

let batch_valid (cluster : t) (b : batch) =
  cluster.view = b.view
  && (not cluster.reconfiguring)
  && Fabric.is_alive (Seq_replica.node b.ldr)
  && not (Seq_replica.is_sealed b.ldr)

let commit_batch (cluster : t) ep (b : batch) =
  (* Pushes must land (or be abandoned by a view change's recovery flush,
     which serializes behind us via wait_idle) before any replica GC. *)
  Ivar.read b.pushed;
  if batch_valid cluster b then begin
    Seq_replica.apply_gc b.ldr ~gps:b.new_gps ~slots:b.gc_slots
      ~new_gp:b.new_gp;
    if
      gc_followers cluster ep ~view:b.view ~gps:b.new_gps ~slots:b.gc_slots
        ~new_gp:b.new_gp ()
    then begin
      broadcast_stable_logs cluster ep ~new_gp:b.new_gp ~new_gps:b.new_gps;
      note_stable cluster ~size:b.size ~claimed_at:b.claimed_at
    end
    else cluster.order_resync <- true
  end
  else
    (* Overtaken between push and GC: drop the batch. Its entries are
       still live in the surviving replicas' logs, so the view change's
       recovery flush re-orders them; positions rebind idempotently. *)
    cluster.order_resync <- true

let pipelined_loop (cluster : t) ep =
  let depth = max 1 cluster.cfg.Config.pipeline_depth in
  let queue : batch Queue.t = Queue.create () in
  let commit_wake = Waitq.create () in
  Engine.spawn ~name:"orderer.commit" (fun () ->
      let rec loop () =
        Waitq.await commit_wake (fun () -> not (Queue.is_empty queue));
        let b = Queue.pop queue in
        commit_batch cluster ep b;
        cluster.inflight_batches <- cluster.inflight_batches - 1;
        Waitq.broadcast cluster.order_idle;
        loop ()
      in
      loop ());
  let next_gp = ref 0 in
  let next_gps : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let pipe_view = ref (-1) in
  let rec loop () =
    Waitq.await cluster.order_idle (fun () ->
        cluster.inflight_batches < depth);
    (* With the pipeline empty the leader's last-ordered-gp is
       authoritative again: resync the ordering frontier (and, after a
       discarded batch, the claim cursor). Tenant cursors reseed lazily
       from the leader's per-log frontiers on next touch. *)
    if cluster.inflight_batches = 0 then begin
      (match cluster.replicas with
      | r :: _ ->
        if cluster.order_resync then begin
          Seq_log.reset_claims (Seq_replica.log r);
          cluster.order_resync <- false
        end;
        next_gp := Seq_log.last_ordered_gp (Seq_replica.log r);
        if cluster.cfg.Config.multi_log then Hashtbl.reset next_gps
      | [] -> ());
      pipe_view := cluster.view
    end;
    let claimed, backlog =
      if
        cluster.reconfiguring
        || cluster.view <> !pipe_view
        || cluster.replicas = []
      then (0, 0)
      else begin
        let ldr = leader cluster in
        if
          (not (Fabric.is_alive (Seq_replica.node ldr)))
          || Seq_replica.is_sealed ldr
        then (0, 0)
        else begin
          let slog = Seq_replica.log ldr in
          let entries = Seq_log.claim_unordered slog ~max:cluster.cur_batch in
          let n = Array.length entries in
          if n = 0 then (0, 0)
          else begin
            let slots, new_gps =
              assign_positions cluster slog ~next0:next_gp ~tbl:next_gps
                entries
            in
            let gc_slots = ref [] in
            for i = n - 1 downto 0 do
              let gp, e = slots.(i) in
              gc_slots := (gp, Types.entry_rid e) :: !gc_slots
            done;
            cluster.inflight_batches <- cluster.inflight_batches + 1;
            note_claim cluster n;
            let pushed = Ivar.create () in
            spawn_pushes cluster ep ~truncate_from:None slots
              ~on_done:(fun () -> Ivar.fill pushed ());
            Queue.push
              {
                view = !pipe_view;
                ldr;
                gc_slots = !gc_slots;
                new_gp = !next_gp;
                new_gps;
                size = n;
                pushed;
                claimed_at = Engine.now ();
              }
              queue;
            Waitq.broadcast commit_wake;
            (n, Seq_log.unclaimed_count slog)
          end
        end
      end
    in
    cluster.cur_batch <-
      Adaptive.next cluster.cfg ~cur:cluster.cur_batch ~claimed ~backlog;
    (* Pacing: with a backlog and pipeline slots free, cut the next batch
       almost immediately; otherwise poll at the ordering interval. *)
    if claimed > 0 && backlog > 0 then
      Engine.sleep (max (Engine.ns 100) (cluster.cfg.Config.order_interval / 16))
    else idle_wait cluster ~frontier:(fun () -> !next_gp);
    loop ()
  in
  loop ()

let start (cluster : t) =
  let ep = new_endpoint cluster ~name:"orderer" in
  let cfg = cluster.cfg in
  (* The orderer's endpoint doubles as the demand sink: shards with a
     parked tail read send Sr_order_demand here. Max-merge into the
     cursor and wake the ordering loop. *)
  Rpc.set_handler ep (fun ~src:_ req ~reply ->
      match req with
      | Proto.Sr_order_demand { upto } ->
        (* Per-log max-merge: a packed position lands in its own log's
           cursor (log 0 keeps the scalar, identical to the original). *)
        note_demand cluster upto;
        (* Wake unconditionally, not just when the cursor rises: a
           repeated demand at or below the merged cursor still means a
           reader is parked on positions that may have arrived after the
           orderer went idle (e.g. a demand that over-reached the tail,
           survived a view change, and left later same-range demands
           silent). [demand_pending] decides whether there is anything
           to claim. *)
        Waitq.broadcast cluster.order_wake;
        reply ~size:(Proto.resp_size Proto.R_ok) Proto.R_ok
      | _ -> failwith "orderer: unexpected request");
  cluster.orderer_node <- Some (Rpc.endpoint_id ep);
  if cfg.Config.read_demand then
    List.iter
      (fun s -> Shard.set_demand_target s (Some (Rpc.endpoint_id ep)))
      cluster.shards;
  if cfg.Config.pipeline_depth <= 1 && not cfg.Config.adaptive_batch then
    Engine.spawn ~name:"orderer" (fun () ->
        let rec loop () =
          idle_wait cluster ~frontier:(fun () -> serial_frontier cluster);
          serial_pass cluster ep;
          loop ()
        in
        loop ())
  else Engine.spawn ~name:"orderer" (fun () -> pipelined_loop cluster ep)

let is_idle (cluster : t) =
  (not cluster.ordering_in_progress) && cluster.inflight_batches = 0

let wait_idle (cluster : t) =
  Waitq.await cluster.order_idle (fun () -> is_idle cluster)
