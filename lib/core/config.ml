open Ll_sim
open Ll_net

type disk_kind = Sata | Nvme

type t = {
  seq_replica_count : int;
  nshards : int;
  shard_backup_count : int;
  seq_capacity : int;
  order_interval : Engine.time;
  max_batch : int;
  min_batch : int;
  adaptive_batch : bool;
  pipeline_depth : int;
  seq_base_ns : int;
  seq_per_byte_ns : float;
  shard_base_ns : int;
  shard_disk : disk_kind;
  dirty_limit_bytes : int;
  data_wait_timeout : Engine.time;
  append_timeout : Engine.time;
  append_batching : bool;
  linger : Engine.time;
  max_batch_records : int;
  max_batch_bytes : int;
  read_demand : bool;
  replica_reads : bool;
  readahead : int;
  map_fetch_chunk : int;
  subscriptions : bool;
  sub_window : int;
  sub_push_max : int;
  sub_push_timeout : Engine.time;
  hedged_reads : bool;
  hedge_floor : Engine.time;
  retry_budget : bool;
  retry_budget_ratio : float;
  retry_budget_cap : float;
  outlier_detection : bool;
  outlier_interval : Engine.time;
  outlier_factor : float;
  outlier_min_samples : int;
  multi_log : bool;
  fair_ingress : bool;
  tenant_weights : (int * int) list;
  drr_quantum : int;
  admit_rate : float;
  admit_burst : float;
  ingress_queue : int;
  link : Fabric.link;
  rpc_overhead : Engine.time;
  debug_no_rid_pinning : bool;
      (** Intentional-bug gate for the checker: when true, Erwin-st clients
          re-pick a shard on append retry instead of pinning the rid to one
          shard. Loses acknowledged records under message loss — kept as a
          known-bad configuration to validate that [lazylog_check] detects
          it. Never enable outside the checker. *)
}

let default =
  {
    seq_replica_count = 3;
    nshards = 1;
    shard_backup_count = 2;
    seq_capacity = 1 lsl 16;
    order_interval = Engine.us 20;
    max_batch = 8192;
    min_batch = 64;
    adaptive_batch = true;
    pipeline_depth = 4;
    (* ~1.2 M small-record appends/s and ~1.3 M metadata appends/s per
       replica; ~330 K/s at 4 KB (records traverse the replica's 25 Gb NIC
       twice: ingest + background push), flattening for large records
       (paper sections 6.5, 6.6). *)
    seq_base_ns = 750;
    seq_per_byte_ns = 0.55;
    shard_base_ns = 1_500;
    shard_disk = Sata;
    dirty_limit_bytes = 8 * 1024 * 1024;
    data_wait_timeout = Engine.ms 5;
    append_timeout = Engine.ms 20;
    (* Group commit defaults off: the paper-fidelity benches (figs 6-18)
       measure the per-record 1-RTT path byte-for-byte unchanged. *)
    append_batching = false;
    linger = Engine.us 20;
    max_batch_records = 128;
    max_batch_bytes = 64 * 1024;
    (* Demand-driven read path defaults off: the paper-fidelity benches
       measure the purely lazy cadence byte-for-byte unchanged. *)
    read_demand = false;
    replica_reads = false;
    readahead = 0;
    map_fetch_chunk = 1024;
    (* Streaming delivery defaults off: with no subscription manager
       started and the knob off, no push-path code runs and the
       paper-fidelity figures stay byte-identical. *)
    subscriptions = false;
    sub_window = 64;
    sub_push_max = 32;
    sub_push_timeout = Engine.ms 2;
    (* Gray-failure mitigations default off: knob-off runs draw nothing
       extra from the rng and schedule nothing, so figs 6-18 stay
       byte-identical. *)
    hedged_reads = false;
    hedge_floor = Engine.us 100;
    retry_budget = false;
    retry_budget_ratio = 0.1;
    retry_budget_cap = 8.0;
    outlier_detection = false;
    outlier_interval = Engine.us 500;
    outlier_factor = 4.0;
    outlier_min_samples = 8;
    (* Multi-log fabric defaults off: one log (log 0), no ingress
       scheduler installed, so figs 6-18 stay byte-identical. *)
    multi_log = false;
    fair_ingress = false;
    tenant_weights = [];
    drr_quantum = 4_096;
    admit_rate = 0.0;
    admit_burst = 32.0;
    ingress_queue = 256;
    link = Fabric.default_link;
    rpc_overhead = Engine.ns 500;
    debug_no_rid_pinning = false;
  }

let with_shards ?backups t n =
  {
    t with
    nshards = n;
    shard_backup_count =
      (match backups with Some b -> b | None -> t.shard_backup_count);
  }

let scaled_cluster t = { t with shard_disk = Nvme }
