open Ll_sim

type arrivals = Poisson | Uniform

let gap rng arrivals ~rate =
  let mean_us = 1e6 /. rate in
  match arrivals with
  | Poisson -> Engine.us_f (Rng.exponential rng ~mean:mean_us)
  | Uniform -> Engine.us_f mean_us

(* Without an explicit seed, derive one from the engine's master-seeded
   stream so workload arrivals reproduce from the single master seed. *)
let derive_seed = function
  | Some s -> s
  | None -> Random.State.bits (Engine.random_state ())

let open_loop ?(arrivals = Poisson) ?seed ~rate ~until op =
  let rng = Rng.create ~seed:(derive_seed seed) in
  Engine.spawn ~name:"open-loop" (fun () ->
      let rec loop i =
        if Engine.now () < until then begin
          Engine.spawn ~name:"op" (fun () -> op i);
          Engine.sleep (gap rng arrivals ~rate);
          loop (i + 1)
        end
      in
      loop 0)

let closed_loop ~clients ~until op =
  for c = 0 to clients - 1 do
    Engine.spawn ~name:(Printf.sprintf "closed-loop.%d" c) (fun () ->
        let rec loop i =
          if Engine.now () < until then begin
            op ~client:c i;
            loop (i + 1)
          end
        in
        loop 0)
  done

let at_rate_blocking ?(arrivals = Poisson) ?seed ~rate ~n op =
  let rng = Rng.create ~seed:(derive_seed seed) in
  for i = 0 to n - 1 do
    Engine.spawn ~name:"op" (fun () -> op i);
    Engine.sleep (gap rng arrivals ~rate)
  done
