open Ll_sim

type arrivals =
  | Poisson
  | Uniform
  | Bursty of { factor : float; duty : float; period : Engine.time }
  | Diurnal of { amplitude : float; period : Engine.time }

(* Instantaneous rate multiplier at simulated time [now]. Normalized so
   the time-averaged multiplier is 1: [rate] stays the mean rate whatever
   the shape. Clamped away from zero so a trough never stalls the
   generator outright. *)
let local_mult arrivals ~now =
  match arrivals with
  | Poisson | Uniform -> 1.0
  | Bursty { factor; duty; period } ->
    let phase = float_of_int (now mod period) /. float_of_int period in
    let c = 1.0 /. ((duty *. factor) +. (1.0 -. duty)) in
    Float.max 0.01 (if phase < duty then factor *. c else c)
  | Diurnal { amplitude; period } ->
    let phase = float_of_int (now mod period) /. float_of_int period in
    Float.max 0.01 (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. phase)))

let gap rng arrivals ~rate ~now =
  let mean_us = 1e6 /. (rate *. local_mult arrivals ~now) in
  match arrivals with
  | Uniform -> Engine.us_f mean_us
  | _ -> Engine.us_f (Rng.exponential rng ~mean:mean_us)

(* Without an explicit seed, derive one from the engine's master-seeded
   stream so workload arrivals reproduce from the single master seed. *)
let derive_seed = function
  | Some s -> s
  | None -> Random.State.bits (Engine.random_state ())

let open_loop ?(arrivals = Poisson) ?seed ~rate ~until op =
  let rng = Rng.create ~seed:(derive_seed seed) in
  Engine.spawn ~name:"open-loop" (fun () ->
      let rec loop i =
        if Engine.now () < until then begin
          Engine.spawn ~name:"op" (fun () -> op i);
          Engine.sleep (gap rng arrivals ~rate ~now:(Engine.now ()));
          loop (i + 1)
        end
      in
      loop 0)

let closed_loop ~clients ~until op =
  for c = 0 to clients - 1 do
    Engine.spawn ~name:(Printf.sprintf "closed-loop.%d" c) (fun () ->
        let rec loop i =
          if Engine.now () < until then begin
            op ~client:c i;
            loop (i + 1)
          end
        in
        loop 0)
  done

let at_rate_blocking ?(arrivals = Poisson) ?seed ~rate ~n op =
  let rng = Rng.create ~seed:(derive_seed seed) in
  for i = 0 to n - 1 do
    Engine.spawn ~name:"op" (fun () -> op i);
    Engine.sleep (gap rng arrivals ~rate ~now:(Engine.now ()))
  done
