(** Measurement harness: drive a shared log with a workload inside the
    simulator and collect latency/throughput statistics. *)

open Ll_sim
open Lazylog

val in_sim : ?seed:int -> (unit -> 'a) -> 'a
(** [in_sim f] runs [f] inside a fresh {!Engine.run} and returns its
    result, stopping the engine once [f] returns (background fibers are
    discarded). *)

type append_run = {
  latency : Stats.Reservoir.t;  (** per-append, post-warmup *)
  offered : float;  (** target ops/s *)
  achieved : float;  (** completed ops/s in the measurement window *)
}

val append_workload :
  ?clients:int ->
  ?warmup:Engine.time ->
  ?size:int ->
  ?seed:int ->
  log_factory:(unit -> Log_api.t) ->
  rate:float ->
  duration:Engine.time ->
  unit ->
  append_run
(** Open-loop (Poisson) append-only workload of [size]-byte records at
    [rate]/s for [duration] after [warmup], spread over [clients] client
    handles (default 8). Blocks until the run drains. Must be called
    inside a simulation ({!in_sim} or [Engine.run]). *)

val percentiles : Stats.Reservoir.t -> float * float * float
(** (mean, p50, p99) in microseconds. *)

val data_for : int -> string
(** Interned payload for operation [i] (shared pool of 256 strings).
    Benchmark append paths should use this instead of [string_of_int i]:
    timing depends on the declared [size], not the bytes, and the pool
    avoids one allocation per operation. Checkers that match payloads
    back must build unique strings instead. *)
