(** Open- and closed-loop load generation.

    Open-loop drivers issue operations at a target rate regardless of
    completion (Poisson or uniform inter-arrivals), with each operation on
    its own fiber — so saturation shows up as queueing delay, exactly as
    on a real load generator. Closed-loop drivers run a fixed number of
    client fibers back-to-back. *)

open Ll_sim

type arrivals =
  | Poisson  (** exponential inter-arrival gaps *)
  | Uniform  (** fixed inter-arrival gaps *)
  | Bursty of { factor : float; duty : float; period : Engine.time }
      (** Poisson arrivals whose rate alternates each [period]: for the
          first [duty] fraction the local rate is [factor]x the off-burst
          rate. Normalized so the time-averaged rate is still [rate]. *)
  | Diurnal of { amplitude : float; period : Engine.time }
      (** Poisson arrivals with a sinusoidal rate swing of [amplitude]
          (0..1) around [rate] over each [period]. *)

val open_loop :
  ?arrivals:arrivals ->
  ?seed:int ->
  rate:float ->
  until:Engine.time ->
  (int -> unit) ->
  unit
(** [open_loop ~rate ~until op] spawns [op i] at approximately [rate]
    per second of simulated time until the absolute time [until]. Returns
    immediately (the generator runs on its own fiber). Without [seed], the
    arrival stream derives from the engine's master seed. *)

val closed_loop :
  clients:int -> until:Engine.time -> (client:int -> int -> unit) -> unit
(** [closed_loop ~clients ~until op] runs [clients] fibers, each executing
    [op ~client i] back-to-back while [Engine.now () < until]. *)

val at_rate_blocking :
  ?arrivals:arrivals ->
  ?seed:int ->
  rate:float ->
  n:int ->
  (int -> unit) ->
  unit
(** Issues exactly [n] operations at [rate]/s, then returns once all have
    been {e issued} (not necessarily completed). *)
