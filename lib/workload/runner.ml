open Ll_sim
open Lazylog

let in_sim ?seed f =
  let result = ref None in
  Engine.run ?seed (fun () ->
      result := Some (f ());
      Engine.stop ());
  match !result with
  | Some r -> r
  | None -> failwith "Runner.in_sim: simulation ended before f returned"

type append_run = {
  latency : Stats.Reservoir.t;
  offered : float;
  achieved : float;
}

(* Interned payloads for the append hot path: timing depends on [size],
   not on the bytes, so a small shared pool avoids one string allocation
   per operation. Correctness checkers that match payloads back (e.g.
   lazylog_check writers) build their own unique strings instead. *)
let data_pool = Array.init 256 string_of_int
let data_for i = Array.unsafe_get data_pool (i land 255)

let append_workload ?(clients = 8) ?(warmup = Engine.ms 20) ?(size = 4096)
    ?seed ~log_factory ~rate ~duration () =
  let seed =
    match seed with
    | Some s -> s
    | None -> Random.State.bits (Engine.random_state ())
  in
  let handles = Array.init clients (fun _ -> log_factory ()) in
  let latency = Stats.Reservoir.create ~name:"append" () in
  let measured = ref 0 in
  let t_start = Engine.now () in
  let t_measure = t_start + warmup in
  let t_end = t_measure + duration in
  let in_flight = ref 0 in
  let drained = Waitq.create () in
  Arrival.open_loop ~seed ~rate ~until:t_end (fun i ->
      let log = handles.(i mod clients) in
      incr in_flight;
      let t0 = Engine.now () in
      let ok = log.Log_api.append ~size ~data:(data_for i) in
      if ok && t0 >= t_measure then begin
        Stats.Reservoir.add latency (Engine.now () - t0);
        incr measured
      end;
      decr in_flight;
      if !in_flight = 0 then Waitq.broadcast drained);
  Engine.sleep_until t_end;
  (* Let stragglers complete (bounded, in case of saturation). *)
  ignore
    (Waitq.await_timeout drained ~timeout:(Engine.ms 200) (fun () ->
         !in_flight = 0)
      : bool);
  {
    latency;
    offered = rate;
    achieved = Stats.throughput_per_sec ~count:!measured ~dur:duration;
  }

let percentiles r =
  ( Stats.Reservoir.mean_us r,
    Stats.Reservoir.percentile_us r 50.0,
    Stats.Reservoir.percentile_us r 99.0 )
