open Ll_sim
open Ll_net
open Lazylog

type violation = {
  invariant : string;
  detail : string;
  at_time : Engine.time;
  at_event : int;
}

let pp_violation fmt v =
  Format.fprintf fmt "[%s] %s (event #%d, t=%.3f ms)" v.invariant v.detail
    v.at_event
    (Engine.to_ms v.at_time)

type t = {
  cluster : Erwin_common.t;
  on_violation : violation -> unit;
  (* client-visible history *)
  invoked : (Types.Rid.t, Engine.time) Hashtbl.t;
  acked : (Types.Rid.t, Engine.time) Hashtbl.t;
  (* shard-side state *)
  stored_rids : (Types.Rid.t, unit) Hashtbl.t;
  nooped : (Types.Rid.t, unit) Hashtbl.t;
  bindings : (int, int * Types.Rid.t) Hashtbl.t;  (* pos -> (shard, rid) *)
  installed_views : (int, int) Hashtbl.t;  (* replica node -> last view *)
  (* exactly-once delivery: subscription name -> (from, next expected) *)
  subs : (string, int * int) Hashtbl.t;
  mutable stable : int;
  (* real-time order frontier: max invocation time among exposed records *)
  mutable max_invoke_exposed : Engine.time;
  (* multi-log fabric: per-tenant stable prefixes and real-time-order
     frontiers for logs > 0 (positions are packed, so every invariant is
     scoped to the log its position belongs to; real-time order is
     per-log — tenants are independently ordered). Log 0 stays on the
     scalar fields above. *)
  stables : (int, int) Hashtbl.t;
  mies : (int, Engine.time) Hashtbl.t;
  mutable violations_rev : violation list;
  (* coverage counters *)
  mutable n_invoked : int;
  mutable n_acked : int;
  mutable n_reads : int;
  mutable n_crashes : int;
  mutable n_views : int;
  mutable n_delivered : int;
  mutable n_gray : int;
  mutable n_outliers : int;
  mutable n_admitted : int;
  mutable n_shed : int;
}

let violate t invariant fmt =
  Format.kasprintf
    (fun detail ->
      let v =
        {
          invariant;
          detail;
          at_time = Engine.now ();
          at_event = Engine.events_executed ();
        }
      in
      t.violations_rev <- v :: t.violations_rev;
      t.on_violation v)
    fmt

let rid_pp = Types.Rid.pp

let stable_for t ~log =
  if log = 0 then t.stable
  else
    match Hashtbl.find_opt t.stables log with
    | Some g -> g
    | None -> Logid.base ~log

let set_stable t ~log gp =
  if log = 0 then t.stable <- gp else Hashtbl.replace t.stables log gp

let mie_for t ~log =
  if log = 0 then t.max_invoke_exposed
  else match Hashtbl.find_opt t.mies log with Some v -> v | None -> -1

let set_mie t ~log v =
  if log = 0 then t.max_invoke_exposed <- v else Hashtbl.replace t.mies log v

(* Exposure: position [pos] joined its log's stable prefix. Incremental
   real-time-order check — exposures arrive in ascending position order
   within a log, so it suffices to track the max invocation time among
   that log's already-exposed records: if a newly exposed record was
   acknowledged before that max, some record invoked after this ack was
   ordered ahead of it. O(1) per position. Real-time order is per-log:
   tenants of the multi-log fabric are independently ordered. *)
let expose t pos =
  match Hashtbl.find_opt t.bindings pos with
  | None ->
    violate t "durability" "stable position %d was never bound on any shard"
      pos
  | Some (_, rid) ->
    if rid.Types.Rid.client >= 0 then begin
      let log = Logid.log_of pos in
      let mie = mie_for t ~log in
      (match Hashtbl.find_opt t.acked rid with
      | Some ack_t when mie > ack_t ->
        violate t "real-time-order"
          "record %a (acked at %.3f ms) exposed at position %d after a \
           record invoked at %.3f ms"
          rid_pp rid (Engine.to_ms ack_t) pos (Engine.to_ms mie)
      | _ -> ());
      match Hashtbl.find_opt t.invoked rid with
      | Some inv_t when inv_t > mie -> set_mie t ~log inv_t
      | _ -> ()
    end

(* Crash-point durability audit: an acknowledged rid not yet stored on a
   shard must still be known (live, or in the ordered-duplicate filter) by
   every surviving sequencing replica — acks require all f+1 replicas, so
   losing it from any survivor means the ack lied. *)
let audit_crash t =
  let survivors =
    List.filter
      (fun r -> Fabric.is_alive (Seq_replica.node r))
      t.cluster.Erwin_common.replicas
  in
  if survivors <> [] then
    Hashtbl.iter
      (fun rid _ ->
        if not (Hashtbl.mem t.stored_rids rid) then
          List.iter
            (fun r ->
              if not (Seq_log.known (Seq_replica.log r) rid) then
                violate t "durability"
                  "acked record %a missing from surviving replica %s at \
                   crash point"
                  rid_pp rid (Seq_replica.name r))
            survivors)
      t.acked

let handle t (ev : Probe.event) =
  match ev with
  | Append_invoked { rid } ->
    if not (Hashtbl.mem t.invoked rid) then begin
      Hashtbl.replace t.invoked rid (Engine.now ());
      t.n_invoked <- t.n_invoked + 1
    end
  | Append_acked { rid } ->
    if not (Hashtbl.mem t.acked rid) then begin
      Hashtbl.replace t.acked rid (Engine.now ());
      t.n_acked <- t.n_acked + 1;
      if Hashtbl.mem t.nooped rid then
        violate t "durability"
          "record %a acknowledged after its binding was no-op'ed" rid_pp rid
    end
  | Replica_accepted _ | Replica_sealed _ -> ()
  | View_installed { replica; view } ->
    t.n_views <- t.n_views + 1;
    (match Hashtbl.find_opt t.installed_views replica with
    | Some prev when view <= prev ->
      violate t "view-safety"
        "replica node %d installed view %d after view %d" replica view prev
    | _ -> ());
    Hashtbl.replace t.installed_views replica view
  | Stable_advanced { gp } ->
    let log = Logid.log_of gp in
    let cur = stable_for t ~log in
    if gp <= cur then
      violate t "view-safety"
        "stable prefix of log %d moved backwards: %d after %d" log gp cur
    else begin
      (* Per-log positions are contiguous in the packed keyspace, so this
         walk covers exactly the newly exposed positions of [log]. *)
      for pos = cur to gp - 1 do
        expose t pos
      done;
      set_stable t ~log gp
    end
  | Shard_stored { shard; pos; rid } ->
    if rid.Types.Rid.client >= 0 then Hashtbl.replace t.stored_rids rid ();
    (match Hashtbl.find_opt t.bindings pos with
    | Some (shard', rid')
      when pos < stable_for t ~log:(Logid.log_of pos)
           && (shard' <> shard || not (Types.Rid.equal rid' rid)) ->
      violate t "stable-prefix"
        "stable position %d rebound: was %a on shard %d, now %a on shard %d"
        pos rid_pp rid' shard' rid_pp rid shard
    | _ -> ());
    Hashtbl.replace t.bindings pos (shard, rid)
  | Shard_nooped { shard; pos; rid } ->
    Hashtbl.replace t.nooped rid ();
    if Hashtbl.mem t.acked rid then
      violate t "durability"
        "acked record %a no-op'ed at position %d on shard %d (lost)" rid_pp
        rid pos shard
  | Shard_truncated { shard; from } ->
    let log = Logid.log_of from in
    let stable = stable_for t ~log in
    if from < stable then
      violate t "stable-prefix"
        "shard %d truncated from position %d, below stable prefix %d" shard
        from stable
    else
      (* Scoped to [from]'s log: a multi-log truncate names one tenant's
         frontier and must not forget other tenants' bindings. *)
      Hashtbl.iter
        (fun pos (sh, _) ->
          if pos >= from && sh = shard && Logid.log_of pos = log then
            Hashtbl.remove t.bindings pos)
        (Hashtbl.copy t.bindings)
  | Read_served { shard; pos; rid } ->
    t.n_reads <- t.n_reads + 1;
    let stable = stable_for t ~log:(Logid.log_of pos) in
    if pos >= stable then
      violate t "read-stability"
        "shard %d served position %d beyond the stable prefix %d" shard pos
        stable
    else begin
      match Hashtbl.find_opt t.bindings pos with
      | None ->
        violate t "read-agreement"
          "shard %d served position %d which was never bound" shard pos
      | Some (shard', rid') ->
        if shard' <> shard then
          violate t "read-agreement"
            "position %d served by shard %d but bound on shard %d" pos shard
            shard'
        else if not (Types.Rid.equal rid' rid) then
          violate t "read-agreement"
            "position %d read as %a but was bound to %a" pos rid_pp rid
            rid_pp rid'
    end
  | Crashed _ ->
    t.n_crashes <- t.n_crashes + 1;
    audit_crash t
  | Sub_registered { name; from } ->
    if not (Hashtbl.mem t.subs name) then Hashtbl.replace t.subs name (from, from)
  | Sub_delivered { name; pos; rid } -> (
    t.n_delivered <- t.n_delivered + 1;
    match Hashtbl.find_opt t.subs name with
    | None ->
      violate t "exactly-once"
        "subscription %s delivered position %d before registering" name pos
    | Some (from, next) ->
      if pos >= t.stable then
        violate t "exactly-once"
          "subscription %s delivered position %d beyond the stable prefix %d"
          name pos t.stable;
      if pos < next then
        violate t "exactly-once"
          "subscription %s delivered position %d twice (cursor already at %d)"
          name pos next
      else begin
        (* Positions a subscription skips over must all be no-op bindings
           (Erwin-st's unresolved-data fillers) — a skipped client record
           is a lost or reordered delivery. *)
        for p = next to pos - 1 do
          match Hashtbl.find_opt t.bindings p with
          | Some (_, r) when r.Types.Rid.client < 0 -> ()
          | Some (_, r) ->
            violate t "exactly-once"
              "subscription %s skipped position %d (record %a) while \
               delivering %d"
              name p rid_pp r pos
          | None ->
            violate t "exactly-once"
              "subscription %s skipped unbound position %d while delivering \
               %d"
              name p pos
        done;
        (match Hashtbl.find_opt t.bindings pos with
        | Some (_, r) when Types.Rid.equal r rid -> ()
        | Some (_, r) ->
          violate t "exactly-once"
            "subscription %s delivered %a at position %d but %a is bound \
             there"
            name rid_pp rid pos rid_pp r
        | None ->
          violate t "exactly-once"
            "subscription %s delivered unbound position %d" name pos);
        Hashtbl.replace t.subs name (from, pos + 1)
      end)
  | Gray_fault _ -> t.n_gray <- t.n_gray + 1
  | Outlier_removed _ -> t.n_outliers <- t.n_outliers + 1
  | Ingress_admitted _ -> t.n_admitted <- t.n_admitted + 1
  | Ingress_shed _ -> t.n_shed <- t.n_shed + 1

(* A subscription is caught up when no client record below the stable
   prefix is still awaiting delivery (trailing no-op fillers do not
   count: the consumer only learns of them with the next pushed record). *)
let sub_pending t next =
  let rec scan p =
    if p >= t.stable then None
    else
      match Hashtbl.find_opt t.bindings p with
      | Some (_, r) when r.Types.Rid.client >= 0 -> Some p
      | _ -> scan (p + 1)
  in
  scan next

let subs_caught_up t =
  Hashtbl.fold
    (fun _ (_, next) acc -> acc && sub_pending t next = None)
    t.subs true

(* End-of-run completeness: the per-event checks above catch duplicates,
   reorderings and rid mismatches as they happen, but a record that is
   simply never pushed is only visible by its absence — audited here once
   the run has drained. *)
let finalize_delivery t =
  Hashtbl.iter
    (fun name (_, next) ->
      match sub_pending t next with
      | Some p ->
        let _, r = Hashtbl.find t.bindings p in
        violate t "exactly-once"
          "subscription %s never received record %a at stable position %d \
           (cursor stuck at %d, stable %d)"
          name rid_pp r p next t.stable
      | None -> ())
    t.subs

(* End-of-run progress audit for gray (fail-slow) runs: the per-event
   monitors above only see what happens — a system that silently wedges
   under a gray fault emits nothing wrong. Once the post-horizon drain has
   settled, every acknowledged record must have been bound on some shard
   (gray faults slow things down; they must never swallow an acked
   append), and the stable prefix must have advanced at all if anything
   was acked. Call only after the drain has quiesced — an acked-but-
   still-in-flight binding would be a false positive. *)
let nothing_stabilized t = t.stable = 0 && Hashtbl.length t.stables = 0

let progress_pending t =
  (t.n_acked > 0 && nothing_stabilized t)
  || Hashtbl.fold
       (fun rid _ pending -> pending || not (Hashtbl.mem t.stored_rids rid))
       t.acked false

let finalize_progress t =
  if t.n_acked > 0 && nothing_stabilized t then
    violate t "gray-progress"
      "stable prefix never advanced despite %d acknowledged appends"
      t.n_acked;
  Hashtbl.iter
    (fun rid _ ->
      if not (Hashtbl.mem t.stored_rids rid) then
        violate t "gray-progress"
          "acked record %a still unbound after the post-horizon drain"
          rid_pp rid)
    t.acked

let install ?(on_violation = fun _ -> ()) cluster =
  let t =
    {
      cluster;
      on_violation;
      invoked = Hashtbl.create 4096;
      acked = Hashtbl.create 4096;
      stored_rids = Hashtbl.create 4096;
      nooped = Hashtbl.create 64;
      bindings = Hashtbl.create 4096;
      installed_views = Hashtbl.create 8;
      subs = Hashtbl.create 4;
      stable = 0;
      max_invoke_exposed = -1;
      stables = Hashtbl.create 16;
      mies = Hashtbl.create 16;
      violations_rev = [];
      n_invoked = 0;
      n_acked = 0;
      n_reads = 0;
      n_crashes = 0;
      n_views = 0;
      n_delivered = 0;
      n_gray = 0;
      n_outliers = 0;
      n_admitted = 0;
      n_shed = 0;
    }
  in
  Probe.subscribe (handle t);
  t

let violations t = List.rev t.violations_rev
let first t = match List.rev t.violations_rev with v :: _ -> Some v | [] -> None

type coverage = {
  invoked : int;
  acked : int;
  reads : int;
  crashes : int;
  view_installs : int;
  stable : int;
  delivered : int;
  gray_faults : int;
  outliers_removed : int;
  tenant_logs : int;
  ingress_shed : int;
}

let coverage t =
  {
    invoked = t.n_invoked;
    acked = t.n_acked;
    reads = t.n_reads;
    crashes = t.n_crashes;
    view_installs = t.n_views;
    stable = t.stable;
    delivered = t.n_delivered;
    gray_faults = t.n_gray;
    outliers_removed = t.n_outliers;
    tenant_logs = Hashtbl.length t.stables;
    ingress_shed = t.n_shed;
  }
