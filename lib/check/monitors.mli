(** Always-on invariant monitors over the {!Lazylog.Probe} event stream.

    One monitor instance observes one simulated cluster and incrementally
    checks the DESIGN.md section 5 safety invariants {e during} the run:

    - {b durability}: an acknowledged append is never lost — audited at
      every crash point against the surviving sequencing replicas'
      logs/duplicate filters, and continuously against Erwin-st no-op
      resolutions (an acked rid must never be no-op'ed);
    - {b real-time-order}: if append A was acknowledged before append B
      was invoked, A's position precedes B's (O(1) per exposed position:
      exposures arrive in position order, so a max-invocation-time
      frontier suffices);
    - {b stable-prefix}: positions below the stable frontier are never
      rebound or truncated;
    - {b read-agreement}: every read returns the record bound at that
      position, from the owning shard, and only below the stable prefix
      (sound because {!Lazylog.Probe.Stable_advanced} is emitted before
      any shard learns the new bound);
    - {b view-safety}: per-replica installed views are strictly
      increasing and the stable prefix never regresses;
    - {b exactly-once}: every registered subscription receives each
      client record bound below the stable prefix exactly once, in
      position order (duplicates, skips over non-no-op positions, rid
      mismatches and beyond-stable deliveries are flagged as they
      happen; records never delivered at all are caught by
      {!finalize_delivery} once the run drains).

    Under the multi-log fabric every position-scoped invariant
    (real-time order, stable prefix, read agreement, truncation safety)
    is checked per tenant log: packed positions carry their log id, and
    each log keeps its own stable frontier and real-time-order frontier —
    cross-tenant ordering is deliberately unconstrained.

    Handlers are synchronous and allocation-light; a monitored run is a
    few percent slower than a bare one. *)

open Lazylog

type violation = {
  invariant : string;  (** e.g. ["durability"], ["real-time-order"] *)
  detail : string;
  at_time : Ll_sim.Engine.time;
  at_event : int;  (** {!Ll_sim.Engine.events_executed} at detection *)
}

val pp_violation : Format.formatter -> violation -> unit

type t

val install : ?on_violation:(violation -> unit) -> Erwin_common.t -> t
(** Subscribe a fresh monitor to the domain's probe stream (the caller
    decides when to [Probe.reset]). [on_violation] fires synchronously at
    the detection point — the checker uses it to stop the run at the
    first violation so [at_event] marks the earliest detection. *)

val violations : t -> violation list
(** In detection order. *)

val first : t -> violation option

(** What the run exercised — the sweep's coverage summary. *)
type coverage = {
  invoked : int;  (** distinct appends invoked *)
  acked : int;  (** distinct appends acknowledged *)
  reads : int;  (** records served to readers *)
  crashes : int;
  view_installs : int;
  stable : int;  (** final stable prefix length *)
  delivered : int;  (** subscription records delivered (post-dedup) *)
  gray_faults : int;  (** gray (fail-slow) fault windows injected *)
  outliers_removed : int;  (** replicas evicted by the outlier monitor *)
  tenant_logs : int;  (** tenant logs (> 0) whose stable prefix advanced *)
  ingress_shed : int;  (** appends shed by fair-ingress admission control *)
}

val coverage : t -> coverage

val subs_caught_up : t -> bool
(** Every registered subscription has consumed every client record bound
    below the current stable prefix (trailing no-op fillers excluded).
    The checker's drain loop polls this before finalizing. *)

val finalize_delivery : t -> unit
(** End-of-run completeness audit: flags any stable client record a
    subscription registered for but never received. Call once, after the
    workload and delivery have drained. *)

val progress_pending : t -> bool
(** True while some acknowledged record has not yet been bound on any
    shard (or nothing has stabilized despite acks) — i.e. calling
    {!finalize_progress} right now would flag a violation. The checker's
    drain loop polls this so it can wait out in-flight retries (an
    orderer push lost to a fault window redrives only after its RPC
    timeout) instead of auditing a merely-quiescent system. *)

val finalize_progress : t -> unit
(** End-of-run progress audit for gray-failure runs: every acknowledged
    record must be bound on some shard, and the stable prefix must have
    advanced if anything was acked — a fail-slow fault may slow the system
    but must never wedge it. Call only once the post-horizon drain has
    settled (stable no longer moving, no reconfiguration in flight), or
    in-flight bindings read as false positives. *)
