(** The exploration harness: run one seeded, fault-injected, monitored
    simulation of an Erwin system; sweep many seeds in parallel; shrink a
    failing fault script.

    Each run is fully determined by its {!Artifact.scenario}: the master
    seed drives the engine's schedule perturbation ([Engine.run
    ~perturb:true]), the fabric's jitter/drop stream, and the workload
    arrivals; the fault script is either generated from the same seed
    ({!scenario}) or given explicitly (replay, shrinking). The workload
    is a fixed shape — {!nwriters} open-loop writers plus one reader over
    the stable prefix — so violations depend only on (scenario, seed).

    The run stops at the first invariant violation (its event counter is
    then the earliest detection point), or shortly after the horizon. *)

open Ll_sim

val default_horizon : Engine.time
val quick_horizon : Engine.time

val nwriters : int

val scenario :
  system:string ->
  seed:int ->
  ?shards:int ->
  ?serial:bool ->
  ?batching:bool ->
  ?replica_reads:bool ->
  ?subscriptions:bool ->
  ?gray:bool ->
  ?tenants:bool ->
  ?bug:string ->
  ?horizon:Engine.time ->
  unit ->
  Artifact.scenario
(** A scenario whose fault script is generated from [seed] (a pure
    function of seed, horizon and topology). [system] is ["erwin-m"] or
    ["erwin-st"]; [batching] runs the clients with append group commit
    enabled (a batch straddling a crash or seal must fail atomically per
    record); [replica_reads] turns on the demand-driven read path
    (replica reads, read-triggered eager binding, readahead) and points
    the reader at the stable tail; [subscriptions] runs the streaming
    delivery subsystem alongside the workload (a subscription manager
    plus two pushed consumers, one crash-restarted twice mid-run) under
    the exactly-once monitor, with a drain tail after the horizon before
    the completeness audit; [gray] turns on hostile-world mode — the
    fault generator draws gray (fail-slow) verbs, every mitigation knob
    is on (hedged reads, retry budgets, outlier detection), and a drain
    tail precedes a progress audit (stable advanced, every acked record
    bound); [tenants] turns on the multi-log fabric — every writer is
    pinned to its own tenant log, one extra aggressor tenant bursts
    back-to-back appends, a tenant reader audits log 1, and the cluster
    runs with weighted-fair ingress (DRR + admission control) on;
    [bug] enables a known-bad configuration (currently
    ["no-pinning"]). *)

type outcome = {
  scenario : Artifact.scenario;
  violation : Monitors.violation option;
      (** the first violation; a run that died on an exception reports it
          as invariant ["exception"] *)
  coverage : Monitors.coverage;
  events : int;  (** scheduler events executed *)
  rpc : Ll_net.Rpc.counter_snapshot;
      (** rpc-layer counter deltas for this run (timeouts, retries, shed
          retries, hedges fired/won) — gray-mode mitigation evidence *)
}

val run_one : Artifact.scenario -> outcome
(** Execute one monitored run. Must NOT be called from inside
    [Engine.run] (it runs its own simulation on the calling domain). *)

val shrink : Artifact.scenario -> Monitors.violation -> Artifact.scenario
(** Greedily minimize the fault script: drop any step whose removal
    still reproduces a violation of the same invariant. Re-runs the
    simulation per candidate. *)

val artifact_of : outcome -> Artifact.t option

val sweep : jobs:int -> Artifact.scenario list -> outcome list
(** Run every scenario, up to [jobs] at a time on parallel domains
    (engine and monitor state are domain-local). Results are in input
    order. *)
