(** Composable fault schedules for the checker.

    A script is a timeline of fault steps applied to a running cluster on
    top of the fabric's injection knobs: replica crashes, symmetric
    partitions with a heal time, probabilistic loss windows, and straggler
    delay windows. Scripts are either generated from a seed ({!gen}, a
    pure function of the rng so a seed alone reproduces them) or parsed
    from a repro artifact ({!step_of_string}).

    Targets name roles, not fabric node ids, and are resolved when the
    fault fires: [Replica 0] is whoever leads at that moment, [Replica i]
    indexes the live membership mod its size, [Shard_primary i] likewise
    over the shards. This keeps scripts meaningful across view changes
    and across the shrinker's edits. *)

open Ll_sim
open Lazylog

type target = Replica of int | Shard_primary of int

type step =
  | Crash of { at : Engine.time; victim : int }
      (** Crash sequencing replica [victim] (mod live membership). *)
  | Partition of {
      at : Engine.time;
      until : Engine.time;
      a : target;
      b : target;
    }
  | Loss of { at : Engine.time; until : Engine.time; p : float }
      (** Uniform message loss with probability [p] during the window. *)
  | Straggler of {
      at : Engine.time;
      until : Engine.time;
      who : target;
      delay : Engine.time;
    }
  | Linkfault of {
      at : Engine.time;
      until : Engine.time;
      src : target;
      dst : target;
      delay : Engine.time;
      drop_p : float;
    }
      (** Gray verb: degrade the directed [src -> dst] link only (extra
          delay and/or loss; [drop_p = 1.0] is a one-way partition). The
          reverse direction stays healthy — an asymmetric partial
          partition. *)
  | Stutter of {
      at : Engine.time;
      until : Engine.time;
      who : target;
      period : Engine.time;
      stall : Engine.time;
    }
      (** Gray verb: the target shard primary's disk pauses for [stall]
          every [period] (firmware-GC-style fail-slow). [Replica] targets
          are no-ops — sequencing replicas are in-memory. *)
  | Degrade of {
      at : Engine.time;
      until : Engine.time;
      who : target;
      factor : float;
    }
      (** Gray verb: the target shard primary's disk serves every
          operation [factor] x slower for the window. *)

type script = step list

val sort : script -> script
(** Stable sort by fire time. *)

val gen :
  ?gray:bool ->
  Random.State.t -> horizon:Engine.time -> nreplicas:int -> nshards:int ->
  script
(** Draw a random script (0–4 steps, at most one crash, windows kept
    short relative to the staging scrubber). Pure in the rng. With
    [gray] (default false), draw from the hostile-world distribution,
    which adds the fail-slow verbs; without it the distribution is
    byte-identical to the historical one, so old seeds regenerate their
    exact scripts. *)

val apply : Erwin_common.t -> script -> unit
(** Schedule every step against the cluster. Must run inside
    [Engine.run], before or during the workload. *)

val pp_step : Format.formatter -> step -> unit
val step_to_string : step -> string

val step_of_string : string -> step
(** Inverse of {!step_to_string}; raises [Failure] on malformed input. *)

type counts = {
  crashes : int;
  partitions : int;
  losses : int;
  stragglers : int;
  linkfaults : int;
  stutters : int;
  degrades : int;
}

val count_kind : script -> counts
