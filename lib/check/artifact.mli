(** Self-contained repro artifacts.

    When a monitored run violates an invariant, the checker writes
    everything needed to re-execute it deterministically: the system
    under test, the master seed (which derives the schedule perturbation,
    the fabric's jitter/drop stream, and the workload arrivals), the
    configuration knobs that differ from default, the explicit fault
    script (possibly shrunk, so it may no longer equal what the seed
    would generate), and where the violation fired (first-violation event
    counter and simulated time).

    The format is a line-oriented text file, stable across runs:
    [lazylog_check --replay FILE] parses it back and re-runs. *)

open Ll_sim

type scenario = {
  system : string;  (** ["erwin-m"] or ["erwin-st"] *)
  seed : int;  (** master seed: engine rng, perturbation, workload *)
  shards : int;
  serial : bool;  (** serial-orderer baseline ([pipeline_depth = 1]) *)
  batching : bool;  (** clients run with append group commit enabled *)
  replica_reads : bool;
      (** demand-driven read path on (replica reads, eager binding,
          readahead) with readers probing at the stable tail *)
  subscriptions : bool;
      (** streaming delivery on: subscription manager + pushed consumers
          (one crash-restarted mid-run), exactly-once monitored *)
  gray : bool;
      (** hostile-world mode: fault generation draws gray (fail-slow)
          verbs and every mitigation knob is on (hedged reads, retry
          budgets, outlier detection); progress-monitored *)
  tenants : bool;
      (** multi-log fabric mode: writers spread over tenant logs (plus
          one bursting aggressor tenant) with weighted-fair ingress on,
          every position-scoped invariant checked per log *)
  bug : string option;  (** intentional bug gate, e.g. ["no-pinning"] *)
  horizon : Engine.time;
  script : Fault_dsl.script;
}

type t = {
  scenario : scenario;
  invariant : string;
  detail : string;
  at_event : int;  (** scheduler event count at first detection *)
  at_time : Engine.time;
}

val to_string : t -> string
val of_string : string -> t
(** Raises [Failure] on malformed input. *)

val save : path:string -> t -> unit
val load : string -> t
