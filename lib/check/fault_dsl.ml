open Ll_sim
open Ll_net
open Ll_storage
open Lazylog

type target = Replica of int | Shard_primary of int

type step =
  | Crash of { at : Engine.time; victim : int }
  | Partition of {
      at : Engine.time;
      until : Engine.time;
      a : target;
      b : target;
    }
  | Loss of { at : Engine.time; until : Engine.time; p : float }
  | Straggler of {
      at : Engine.time;
      until : Engine.time;
      who : target;
      delay : Engine.time;
    }
  (* Gray (fail-slow) verbs: nothing crashes, heartbeats stay green —
     the component is just slow or lossy in one direction. *)
  | Linkfault of {
      at : Engine.time;
      until : Engine.time;
      src : target;
      dst : target;
      delay : Engine.time;
      drop_p : float;
    }
  | Stutter of {
      at : Engine.time;
      until : Engine.time;
      who : target;
      period : Engine.time;
      stall : Engine.time;
    }
  | Degrade of {
      at : Engine.time;
      until : Engine.time;
      who : target;
      factor : float;
    }

type script = step list

let step_at = function
  | Crash { at; _ } | Partition { at; _ } | Loss { at; _ }
  | Straggler { at; _ } | Linkfault { at; _ } | Stutter { at; _ }
  | Degrade { at; _ } ->
    at

let sort script =
  List.stable_sort (fun a b -> Int.compare (step_at a) (step_at b)) script

(* ---------- printing / parsing (the artifact wire format) ---------- *)

let pp_target fmt = function
  | Replica i -> Format.fprintf fmt "r%d" i
  | Shard_primary i -> Format.fprintf fmt "s%d" i

let target_of_string s =
  let n () = int_of_string (String.sub s 1 (String.length s - 1)) in
  match s.[0] with
  | 'r' -> Replica (n ())
  | 's' -> Shard_primary (n ())
  | _ -> failwith ("fault_dsl: bad target " ^ s)

let pp_step fmt = function
  | Crash { at; victim } -> Format.fprintf fmt "crash at=%d victim=%d" at victim
  | Partition { at; until; a; b } ->
    Format.fprintf fmt "partition at=%d until=%d a=%a b=%a" at until pp_target
      a pp_target b
  | Loss { at; until; p } ->
    Format.fprintf fmt "loss at=%d until=%d p=%.3f" at until p
  | Straggler { at; until; who; delay } ->
    Format.fprintf fmt "straggler at=%d until=%d who=%a delay=%d" at until
      pp_target who delay
  | Linkfault { at; until; src; dst; delay; drop_p } ->
    Format.fprintf fmt "linkfault at=%d until=%d src=%a dst=%a delay=%d p=%.3f"
      at until pp_target src pp_target dst delay drop_p
  | Stutter { at; until; who; period; stall } ->
    Format.fprintf fmt "stutter at=%d until=%d who=%a period=%d stall=%d" at
      until pp_target who period stall
  | Degrade { at; until; who; factor } ->
    Format.fprintf fmt "degrade at=%d until=%d who=%a factor=%.2f" at until
      pp_target who factor

let step_to_string s = Format.asprintf "%a" pp_step s

let field kvs k =
  match List.assoc_opt k kvs with
  | Some v -> v
  | None -> failwith ("fault_dsl: missing field " ^ k)

let step_of_string line =
  match String.split_on_char ' ' (String.trim line) with
  | kind :: rest ->
    let kvs =
      List.filter_map
        (fun tok ->
          match String.index_opt tok '=' with
          | Some i ->
            Some
              ( String.sub tok 0 i,
                String.sub tok (i + 1) (String.length tok - i - 1) )
          | None -> None)
        rest
    in
    let i k = int_of_string (field kvs k) in
    (match kind with
    | "crash" -> Crash { at = i "at"; victim = i "victim" }
    | "partition" ->
      Partition
        {
          at = i "at";
          until = i "until";
          a = target_of_string (field kvs "a");
          b = target_of_string (field kvs "b");
        }
    | "loss" ->
      Loss { at = i "at"; until = i "until"; p = float_of_string (field kvs "p") }
    | "straggler" ->
      Straggler
        {
          at = i "at";
          until = i "until";
          who = target_of_string (field kvs "who");
          delay = i "delay";
        }
    | "linkfault" ->
      Linkfault
        {
          at = i "at";
          until = i "until";
          src = target_of_string (field kvs "src");
          dst = target_of_string (field kvs "dst");
          delay = i "delay";
          drop_p = float_of_string (field kvs "p");
        }
    | "stutter" ->
      Stutter
        {
          at = i "at";
          until = i "until";
          who = target_of_string (field kvs "who");
          period = i "period";
          stall = i "stall";
        }
    | "degrade" ->
      Degrade
        {
          at = i "at";
          until = i "until";
          who = target_of_string (field kvs "who");
          factor = float_of_string (field kvs "factor");
        }
    | _ -> failwith ("fault_dsl: unknown step " ^ kind))
  | [] -> failwith "fault_dsl: empty step"

(* ---------- random generation ----------

   A pure function of the given rng: the checker derives the rng from the
   scenario seed, so the script never needs to be stored to reproduce a
   run — only replayed artifacts carry explicit scripts (e.g. shrunk
   ones).

   Windows are kept short relative to the shard staging scrubber (100 ms):
   a loss or partition window long enough to stall ordering past the
   scrubber age would make the scrubber itself discard staged records, a
   (modeled) design assumption of the system rather than a protocol bug.

   [gray]: draw from the hostile-world distribution, which mixes the
   classic verbs with the gray ones (asymmetric link faults, disk stutter
   and degrade). The default distribution is byte-identical to the
   historical one, so pre-gray seeds regenerate their exact scripts. *)

let gen ?(gray = false) rng ~horizon ~nreplicas ~nshards =
  let ri = Random.State.int rng in
  let rf = Random.State.float rng in
  let nsteps = ri 5 in
  let crash_used = ref false in
  let gen_at () = Engine.ms 2 + ri (max 1 (horizon - Engine.ms 4)) in
  let gen_window at = at + Engine.us 200 + ri (Engine.ms 5) in
  let gen_target () =
    if nshards > 0 && ri 2 = 0 then Shard_primary (ri nshards)
    else Replica (ri (max 1 nreplicas))
  in
  let gen_classic at =
    match ri 100 with
    | k when k < 40 ->
      (* Loss windows are kept near the client append timeout (2 ms in
         the checker config): a window that ends between a failed
         attempt and its retry is the shape that exercises the
         retry-vs-binding races; much longer windows only push clients
         down the fresh-rid path. *)
      Loss
        {
          at;
          until = at + Engine.us 200 + ri (Engine.us 2_300);
          p = 0.1 +. rf 0.4;
        }
    | k when k < 65 ->
      Straggler
        {
          at;
          until = gen_window at;
          who = gen_target ();
          delay = Engine.us (20 + ri 400);
        }
    | k when k < 85 || !crash_used ->
      let a = gen_target () and b = gen_target () in
      Partition { at; until = gen_window at; a; b }
    | _ ->
      crash_used := true;
      Crash { at; victim = ri (max 1 nreplicas) }
  in
  let gen_gray at =
    match ri 100 with
    | k when k < 18 ->
      Loss
        {
          at;
          until = at + Engine.us 200 + ri (Engine.us 2_300);
          p = 0.1 +. rf 0.4;
        }
    | k when k < 34 ->
      Straggler
        {
          at;
          until = gen_window at;
          who = gen_target ();
          delay = Engine.us (20 + ri 400);
        }
    | k when k < 56 ->
      (* Asymmetric: one direction gets a full one-way partition, a pure
         delay, or both loss and delay; the reverse stays healthy. *)
      let delay, drop_p =
        match ri 3 with
        | 0 -> (0, 1.0)
        | 1 -> (Engine.us (30 + ri 370), 0.0)
        | _ -> (Engine.us (ri 200), 0.1 +. rf 0.4)
      in
      Linkfault
        {
          at;
          until = gen_window at;
          src = gen_target ();
          dst = gen_target ();
          delay;
          drop_p;
        }
    | k when k < 70 && nshards > 0 ->
      Stutter
        {
          at;
          until = gen_window at;
          who = Shard_primary (ri nshards);
          period = Engine.us (150 + ri 600);
          stall = Engine.us (400 + ri 2_100);
        }
    | k when k < 82 && nshards > 0 ->
      Degrade
        {
          at;
          until = gen_window at;
          who = Shard_primary (ri nshards);
          factor = 2.0 +. rf 6.0;
        }
    | k when k < 94 || !crash_used ->
      let a = gen_target () and b = gen_target () in
      Partition { at; until = gen_window at; a; b }
    | _ ->
      crash_used := true;
      Crash { at; victim = ri (max 1 nreplicas) }
  in
  let steps =
    List.init nsteps (fun _ ->
        let at = gen_at () in
        if gray then gen_gray at else gen_classic at)
  in
  (* Drop degenerate self-faults. *)
  let steps =
    List.filter
      (function
        | Partition { a; b; _ } -> a <> b
        | Linkfault { src; dst; _ } -> src <> dst
        | _ -> true)
      steps
  in
  sort steps

(* ---------- application ---------- *)

let resolve_node (cluster : Erwin_common.t) = function
  | Replica i -> (
    match cluster.replicas with
    | [] -> None
    | rs -> Some (Seq_replica.node (List.nth rs (i mod List.length rs))))
  | Shard_primary i -> (
    match Array.length cluster.shard_index with
    | 0 -> None
    | n ->
      Some
        (Fabric.node_by_id cluster.fabric
           (Shard.primary_id cluster.shard_index.(i mod n))))

(* Disk verbs only make sense against a shard (sequencing replicas are
   in-memory); a [Replica] target resolves to no device and the step is a
   no-op. *)
let resolve_disk (cluster : Erwin_common.t) = function
  | Replica _ -> None
  | Shard_primary i -> (
    match Array.length cluster.shard_index with
    | 0 -> None
    | n -> Some (Shard.replica_disk cluster.shard_index.(i mod n) 0))

let emit_gray kind until =
  if Probe.active () then Probe.emit (Probe.Gray_fault { kind; until })

(* Targets are resolved at fire time (not schedule time) against the
   then-current membership, so a script stays meaningful across view
   changes; [Replica 0] is "whoever leads when the fault fires". *)
let apply (cluster : Erwin_common.t) script =
  List.iter
    (fun step ->
      match step with
      | Crash { at; victim } ->
        Engine.at at (fun () ->
            match cluster.replicas with
            | [] -> ()
            | rs ->
              let r = List.nth rs (victim mod List.length rs) in
              if Fabric.is_alive (Seq_replica.node r) then
                Erwin_common.crash_replica cluster r)
      | Partition { at; until; a; b } ->
        Engine.at at (fun () ->
            match (resolve_node cluster a, resolve_node cluster b) with
            | Some na, Some nb when Fabric.id na <> Fabric.id nb ->
              let ia = Fabric.id na and ib = Fabric.id nb in
              Fabric.partition cluster.fabric ia ib;
              Engine.at until (fun () -> Fabric.heal cluster.fabric ia ib)
            | _ -> ())
      | Loss { at; until; p } ->
        Engine.at at (fun () ->
            Fabric.set_drop_probability cluster.fabric p;
            Engine.at until (fun () ->
                Fabric.set_drop_probability cluster.fabric 0.0))
      | Straggler { at; until; who; delay } ->
        Engine.at at (fun () ->
            match resolve_node cluster who with
            | Some n ->
              Fabric.set_extra_delay n delay;
              Engine.at until (fun () -> Fabric.set_extra_delay n 0)
            | None -> ())
      | Linkfault { at; until; src; dst; delay; drop_p } ->
        Engine.at at (fun () ->
            match (resolve_node cluster src, resolve_node cluster dst) with
            | Some ns, Some nd when Fabric.id ns <> Fabric.id nd ->
              let is_ = Fabric.id ns and id_ = Fabric.id nd in
              emit_gray "linkfault" until;
              Fabric.set_link_fault cluster.fabric ~src:is_ ~dst:id_ ~delay
                ~drop_p ();
              Engine.at until (fun () ->
                  Fabric.clear_link_fault cluster.fabric ~src:is_ ~dst:id_)
            | _ -> ())
      | Stutter { at; until; who; period; stall } ->
        Engine.at at (fun () ->
            match resolve_disk cluster who with
            | Some d ->
              emit_gray "stutter" until;
              Disk.set_fail_slow d (Disk.Stutter { period; stall });
              Engine.at until (fun () -> Disk.set_fail_slow d Disk.Healthy)
            | None -> ())
      | Degrade { at; until; who; factor } ->
        Engine.at at (fun () ->
            match resolve_disk cluster who with
            | Some d ->
              emit_gray "degrade" until;
              Disk.set_fail_slow d (Disk.Degrade { factor });
              Engine.at until (fun () -> Disk.set_fail_slow d Disk.Healthy)
            | None -> ()))
    script

type counts = {
  crashes : int;
  partitions : int;
  losses : int;
  stragglers : int;
  linkfaults : int;
  stutters : int;
  degrades : int;
}

let count_kind script =
  let crashes = ref 0
  and partitions = ref 0
  and losses = ref 0
  and stragglers = ref 0
  and linkfaults = ref 0
  and stutters = ref 0
  and degrades = ref 0 in
  List.iter
    (function
      | Crash _ -> incr crashes
      | Partition _ -> incr partitions
      | Loss _ -> incr losses
      | Straggler _ -> incr stragglers
      | Linkfault _ -> incr linkfaults
      | Stutter _ -> incr stutters
      | Degrade _ -> incr degrades)
    script;
  {
    crashes = !crashes;
    partitions = !partitions;
    losses = !losses;
    stragglers = !stragglers;
    linkfaults = !linkfaults;
    stutters = !stutters;
    degrades = !degrades;
  }
