open Ll_sim

type scenario = {
  system : string;
  seed : int;
  shards : int;
  serial : bool;
  batching : bool;  (* run clients with append group commit enabled *)
  replica_reads : bool;
      (* run the demand-driven read path: replica reads + read-triggered
         eager binding + readahead, with readers probing at the tail *)
  subscriptions : bool;
      (* run with the streaming-delivery subsystem: a subscription
         manager plus pushed consumers (one crash-restarted mid-run),
         checked by the exactly-once monitor *)
  gray : bool;
      (* hostile-world mode: the fault generator draws gray (fail-slow)
         verbs — asymmetric link faults, disk stutter/degrade — and the
         cluster runs with every mitigation on (hedged reads, retry
         budgets, outlier detection), checked by the progress monitor *)
  tenants : bool;
      (* multi-log fabric mode: writers spread over tenant logs (plus one
         bursting aggressor tenant) with weighted-fair ingress on, and
         every position-scoped invariant checked per log *)
  bug : string option;
  horizon : Engine.time;
  script : Fault_dsl.script;
}

type t = {
  scenario : scenario;
  invariant : string;
  detail : string;
  at_event : int;
  at_time : Engine.time;
}

let magic = "lazylog-check artifact v1"

let to_string a =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" magic;
  line "system %s" a.scenario.system;
  line "seed %d" a.scenario.seed;
  line "shards %d" a.scenario.shards;
  line "serial %b" a.scenario.serial;
  line "batching %b" a.scenario.batching;
  line "replica_reads %b" a.scenario.replica_reads;
  line "subscriptions %b" a.scenario.subscriptions;
  line "gray %b" a.scenario.gray;
  line "tenants %b" a.scenario.tenants;
  (match a.scenario.bug with Some b -> line "bug %s" b | None -> ());
  line "horizon %d" a.scenario.horizon;
  line "invariant %s" a.invariant;
  line "at_event %d" a.at_event;
  line "at_time %d" a.at_time;
  line "detail %s" a.detail;
  line "script %d" (List.length a.scenario.script);
  List.iter (fun s -> line "%s" (Fault_dsl.step_to_string s)) a.scenario.script;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | m :: rest when m = magic ->
    let kv line =
      match String.index_opt line ' ' with
      | Some i ->
        ( String.sub line 0 i,
          String.sub line (i + 1) (String.length line - i - 1) )
      | None -> (line, "")
    in
    let fields = Hashtbl.create 16 in
    let script = ref [] in
    let in_script = ref false in
    List.iter
      (fun line ->
        if !in_script then script := Fault_dsl.step_of_string line :: !script
        else
          let k, v = kv line in
          if k = "script" then in_script := true
          else Hashtbl.replace fields k v)
      rest;
    let get k =
      match Hashtbl.find_opt fields k with
      | Some v -> v
      | None -> failwith ("artifact: missing field " ^ k)
    in
    let geti k = int_of_string (get k) in
    {
      scenario =
        {
          system = get "system";
          seed = geti "seed";
          shards = geti "shards";
          serial = bool_of_string (get "serial");
          (* Absent in pre-batching artifacts: default off. *)
          batching =
            (match Hashtbl.find_opt fields "batching" with
            | Some b -> bool_of_string b
            | None -> false);
          (* Absent in pre-replica-reads artifacts: default off. *)
          replica_reads =
            (match Hashtbl.find_opt fields "replica_reads" with
            | Some b -> bool_of_string b
            | None -> false);
          (* Absent in pre-subscription artifacts: default off. *)
          subscriptions =
            (match Hashtbl.find_opt fields "subscriptions" with
            | Some b -> bool_of_string b
            | None -> false);
          (* Absent in pre-gray artifacts: default off. *)
          gray =
            (match Hashtbl.find_opt fields "gray" with
            | Some b -> bool_of_string b
            | None -> false);
          (* Absent in pre-multi-log artifacts: default off. *)
          tenants =
            (match Hashtbl.find_opt fields "tenants" with
            | Some b -> bool_of_string b
            | None -> false);
          bug = Hashtbl.find_opt fields "bug";
          horizon = geti "horizon";
          script = Fault_dsl.sort (List.rev !script);
        };
      invariant = get "invariant";
      detail = (match Hashtbl.find_opt fields "detail" with Some d -> d | None -> "");
      at_event = geti "at_event";
      at_time = geti "at_time";
    }
  | _ -> failwith "artifact: not a lazylog-check artifact (bad magic)"

let save ~path a =
  let oc = open_out path in
  output_string oc (to_string a);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
