open Ll_sim
open Lazylog

let default_horizon = Engine.ms 60
let quick_horizon = Engine.ms 25

(* The checker's base configuration: default calibration, but a short
   append timeout so client retries (the interesting recovery paths) fire
   within the short exploration horizon. *)
let config_of (sc : Artifact.scenario) =
  let cfg = Config.with_shards Config.default sc.shards in
  let cfg = { cfg with Config.append_timeout = Engine.ms 2 } in
  let cfg =
    if sc.serial then
      { cfg with Config.pipeline_depth = 1; adaptive_batch = false }
    else cfg
  in
  (* Default linger (20 us) sits well under the checker's 2 ms append
     timeout, so batched appends still retry within the horizon. *)
  let cfg =
    if sc.batching then { cfg with Config.append_batching = true } else cfg
  in
  let cfg =
    if sc.replica_reads then
      { cfg with Config.replica_reads = true; read_demand = true; readahead = 8 }
    else cfg
  in
  let cfg =
    if sc.subscriptions then { cfg with Config.subscriptions = true } else cfg
  in
  let cfg =
    if sc.tenants then
      (* Multi-log fabric mode: per-tenant sequencing with weighted-fair
         ingress on. Tenant 1 (the first "victim") gets double weight so
         the DRR path with unequal quanta is exercised; a small ingress
         queue makes admission shedding reachable within the short
         horizon when the aggressor bursts. *)
      {
        cfg with
        Config.multi_log = true;
        fair_ingress = true;
        tenant_weights = [ (1, 2) ];
        ingress_queue = 8;
      }
    else cfg
  in
  let cfg =
    if sc.gray then
      (* Hostile-world mode: every mitigation on, and a small dirty limit
         so a fail-slow disk actually backpressures the append path
         within the short horizon (with the default 8 MB the checker's
         workload never fills the write buffer and disk verbs would only
         exercise the flusher). *)
      {
        cfg with
        Config.hedged_reads = true;
        retry_budget = true;
        outlier_detection = true;
        dirty_limit_bytes = 32 * 1024;
      }
    else cfg
  in
  match sc.bug with
  | None -> cfg
  | Some "no-pinning" -> { cfg with Config.debug_no_rid_pinning = true }
  | Some b -> failwith ("lazylog_check: unknown bug gate " ^ b)

(* The fault script is a pure function of (seed, horizon, topology): a
   seed alone reproduces a generated run. Distinct salt from the engine's
   rng streams. *)
let gen_script ?(gray = false) ~seed ~horizon ~shards () =
  let rng = Random.State.make [| seed; 0xfa017 |] in
  Fault_dsl.gen ~gray rng ~horizon
    ~nreplicas:Config.default.Config.seq_replica_count ~nshards:shards

let scenario ~system ~seed ?(shards = 2) ?(serial = false)
    ?(batching = false) ?(replica_reads = false) ?(subscriptions = false)
    ?(gray = false) ?(tenants = false) ?bug ?(horizon = default_horizon) () :
    Artifact.scenario =
  {
    Artifact.system;
    seed;
    shards;
    serial;
    batching;
    replica_reads;
    subscriptions;
    gray;
    tenants;
    bug;
    horizon;
    script = gen_script ~gray ~seed ~horizon ~shards ();
  }

type outcome = {
  scenario : Artifact.scenario;
  violation : Monitors.violation option;
  coverage : Monitors.coverage;
  events : int;
  rpc : Ll_net.Rpc.counter_snapshot;
}

let empty_coverage : Monitors.coverage =
  {
    Monitors.invoked = 0;
    acked = 0;
    reads = 0;
    crashes = 0;
    view_installs = 0;
    stable = 0;
    delivered = 0;
    gray_faults = 0;
    outliers_removed = 0;
    tenant_logs = 0;
    ingress_shed = 0;
  }

let client_for ?log (sc : Artifact.scenario) cluster =
  match sc.system with
  | "erwin-m" -> Erwin_m.client ?log cluster
  | "erwin-st" -> Erwin_st.client ?log cluster
  | s -> failwith ("lazylog_check: unknown system " ^ s)

let create_cluster (sc : Artifact.scenario) cfg =
  match sc.system with
  | "erwin-m" -> Erwin_m.create ~cfg ()
  | "erwin-st" -> Erwin_st.create ~cfg ()
  | s -> failwith ("lazylog_check: unknown system " ^ s)

let nwriters = 4

let run_one (sc : Artifact.scenario) : outcome =
  let cfg = config_of sc in
  let monitor = ref None in
  (* Subscription runs need a drain tail after the workload horizon: the
     manager must be given time to push the last stable records through
     any still-open fault window (loss/partition windows heal by about
     [horizon + 5ms]) before the completeness audit is sound. *)
  let slack =
    if sc.subscriptions then Engine.ms 80
    else if sc.gray then Engine.ms 40
    else Engine.ms 10
  in
  let rpc_before = Ll_net.Rpc.counters () in
  let run () =
    Engine.run ~seed:sc.seed ~perturb:true ~until:(sc.horizon + slack)
      (fun () ->
        Probe.reset ();
        let cluster = create_cluster sc cfg in
        let stopped = ref false in
        let mon =
          Monitors.install cluster ~on_violation:(fun _ ->
              (* Stop at the first violation so its event counter marks
                 the earliest detection point. *)
              if not !stopped then begin
                stopped := true;
                Engine.stop ()
              end)
        in
        monitor := Some mon;
        Fault_dsl.apply cluster sc.script;
        if sc.subscriptions then begin
          let mgr = Ll_stream.Manager.start cluster in
          let mid = Ll_stream.Manager.endpoint_id mgr in
          (* Two pushed consumers; sub-b is crashed and restarted twice
             mid-run — including windows where an ack is likely in
             flight — to exercise redelivery, epoch bumps, and dedup on
             top of whatever the fault script does to the cluster. *)
          Engine.spawn ~name:"check.sub-a" (fun () ->
              ignore
                (Ll_stream.Subscriber.create cluster ~manager:mid
                   ~name:"sub-a" ()
                  : Ll_stream.Subscriber.t));
          Engine.spawn ~name:"check.sub-b" (fun () ->
              let sb =
                Ll_stream.Subscriber.create cluster ~manager:mid ~name:"sub-b"
                  ~consume:(Engine.us 2) ()
              in
              let cycle at =
                Engine.sleep_until at;
                Ll_stream.Subscriber.crash sb;
                Engine.sleep (Engine.ms 3);
                Ll_stream.Subscriber.restart sb
              in
              cycle (sc.horizon * 2 / 5);
              cycle (sc.horizon * 4 / 5))
        end;
        for c = 0 to nwriters - 1 do
          (* Tenants mode: each writer owns a tenant log (writer 0 stays
             on the legacy log 0), so every per-log invariant sees
             concurrent independent streams. *)
          let log =
            client_for sc cluster ?log:(if sc.tenants then Some c else None)
          in
          let rng =
            Rng.create ~seed:(Random.State.bits (Engine.random_state ()))
          in
          Engine.spawn ~name:(Printf.sprintf "check.writer%d" c) (fun () ->
              let i = ref 0 in
              while Engine.now () < sc.horizon do
                incr i;
                ignore
                  (log.Log_api.append
                     ~size:(64 + Rng.int rng 192)
                     ~data:(Printf.sprintf "w%d.%d" c !i)
                    : bool);
                Engine.sleep (Engine.us (30 + Rng.int rng 120))
              done)
        done;
        if sc.tenants then begin
          (* Aggressor tenant: bursts of back-to-back appends on its own
             log, timed so the fault script's windows land mid-burst on
             many seeds. Fair ingress must keep the victims' invariants
             (and progress) intact; shed appends simply retry. *)
          for a = 0 to 23 do
            let agg = client_for sc cluster ~log:nwriters in
            Engine.spawn
              ~name:(Printf.sprintf "check.aggressor%d" a)
              (fun () ->
                let i = ref 0 in
                while Engine.now () < sc.horizon do
                  let burst_until = Engine.now () + (sc.horizon / 5) in
                  while Engine.now () < min burst_until sc.horizon do
                    incr i;
                    ignore
                      (agg.Log_api.append ~size:512
                         ~data:(Printf.sprintf "agg%d.%d" a !i)
                        : bool)
                  done;
                  Engine.sleep (sc.horizon / 10)
                done)
          done;
          (* A tenant-scoped reader alongside the legacy log-0 reader:
             read agreement under the packed keyspace. *)
          let tlog = client_for sc cluster ~log:1 in
          let trng =
            Rng.create ~seed:(Random.State.bits (Engine.random_state ()))
          in
          Engine.spawn ~name:"check.tenant-reader" (fun () ->
              while Engine.now () < sc.horizon do
                Engine.sleep (Engine.us (300 + Rng.int trng 500));
                let stable =
                  Logid.pos_of (Erwin_common.stable_for cluster ~log:1)
                in
                if stable > 0 then begin
                  let len = min stable 8 in
                  ignore
                    (tlog.Log_api.read
                       ~from:(Rng.int trng (stable - len + 1))
                       ~len
                      : Types.record list)
                end
              done)
        end;
        let rlog = client_for sc cluster in
        let rrng =
          Rng.create ~seed:(Random.State.bits (Engine.random_state ()))
        in
        Engine.spawn ~name:"check.reader" (fun () ->
            while Engine.now () < sc.horizon do
              Engine.sleep (Engine.us (200 + Rng.int rrng 400));
              let stable = cluster.Erwin_common.stable_gp in
              if stable > 0 then begin
                let len = min stable 8 in
                let from =
                  if sc.replica_reads then
                    (* Reads-at-tail workload: straddle the stable frontier
                       so demand binding, backup serving and forwarding all
                       fire (writers keep appending, so the beyond-stable
                       half binds within the horizon). *)
                    max 0 (stable - (len / 2))
                  else Rng.int rrng (stable - len + 1)
                in
                ignore (rlog.Log_api.read ~from ~len : Types.record list)
              end
            done);
        if sc.subscriptions || sc.gray then
          (* Drain, then audit: wait until the stable prefix stops
             advancing — and, for subscription runs, every subscription
             has caught up with it — bounded by the run's slack (a push
             stuck in a retry loop behind a fault window still gets
             through once it heals). Gray runs additionally audit
             progress (every acked record bound, stable advanced), but
             only when the drain actually settled: at the deadline with
             stable still moving or a reconfiguration in flight, the
             audit would read in-flight bindings as losses. *)
          Engine.spawn ~name:"check.drain" (fun () ->
              Engine.sleep_until (sc.horizon + Engine.ms 5);
              let deadline = sc.horizon + slack - Engine.ms 10 in
              let rec wait () =
                let s = cluster.Erwin_common.stable_gp in
                Engine.sleep (Engine.ms 1);
                let settled =
                  cluster.Erwin_common.stable_gp = s
                  && (not cluster.Erwin_common.reconfiguring)
                  && ((not sc.subscriptions) || Monitors.subs_caught_up mon)
                  (* A quiescent stable prefix is not enough in gray
                     mode: an orderer push lost to a fault window only
                     redrives after its RPC timeout, so keep draining
                     while acked records await binding. Only the
                     deadline turns that wait into a violation. *)
                  && ((not sc.gray) || not (Monitors.progress_pending mon))
                in
                if Engine.now () >= deadline || settled then begin
                  if sc.subscriptions then Monitors.finalize_delivery mon;
                  if sc.gray then Monitors.finalize_progress mon;
                  if not !stopped then Engine.stop ()
                end
                else wait ()
              in
              wait ())
        else Engine.at (sc.horizon + Engine.ms 5) (fun () -> Engine.stop ()))
  in
  let exn_violation =
    match run () with
    | () -> None
    | exception e ->
      Some
        {
          Monitors.invariant = "exception";
          detail = Printexc.to_string e;
          at_time = 0;
          at_event = Engine.events_executed ();
        }
  in
  let violation, coverage =
    match !monitor with
    | Some mon -> (
      ( (match Monitors.first mon with Some v -> Some v | None -> exn_violation),
        Monitors.coverage mon ))
    | None -> (exn_violation, empty_coverage)
  in
  {
    scenario = sc;
    violation;
    coverage;
    events = Engine.events_executed ();
    rpc =
      Ll_net.Rpc.counters_diff ~before:rpc_before
        ~after:(Ll_net.Rpc.counters ());
  }

(* ---------- greedy fault-script shrinking ---------- *)

let reproduces (sc : Artifact.scenario) invariant =
  match (run_one sc).violation with
  | Some v -> v.Monitors.invariant = invariant
  | None -> false

(* Repeatedly try dropping one step; keep any removal that preserves the
   violation (same invariant). Terminates: every accepted step strictly
   shrinks the script. *)
let shrink (sc : Artifact.scenario) (v : Monitors.violation) =
  let rec go script =
    let n = List.length script in
    let rec try_idx i =
      if i >= n then script
      else begin
        let cand = List.filteri (fun j _ -> j <> i) script in
        if reproduces { sc with Artifact.script = cand } v.Monitors.invariant
        then go cand
        else try_idx (i + 1)
      end
    in
    try_idx 0
  in
  { sc with Artifact.script = go sc.Artifact.script }

let artifact_of (o : outcome) : Artifact.t option =
  match o.violation with
  | None -> None
  | Some v ->
    Some
      {
        Artifact.scenario = o.scenario;
        invariant = v.Monitors.invariant;
        detail = v.Monitors.detail;
        at_event = v.Monitors.at_event;
        at_time = v.Monitors.at_time;
      }

(* ---------- parallel sweep ----------

   Engine and probe state are domain-local, so scenarios parallelize over
   OS domains with no shared simulator state: workers claim scenario
   indices from an atomic counter and write into distinct result slots. *)

let sweep ~jobs (scenarios : Artifact.scenario list) : outcome list =
  let scens = Array.of_list scenarios in
  let n = Array.length scens in
  let results : outcome option array = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (run_one scens.(i));
        loop ()
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs n) in
  let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Array.to_list results
  |> List.map (function
       | Some o -> o
       | None -> failwith "lazylog_check: sweep lost a result")
