(* Waiters live in an intrusive slab list in FIFO order. The previous
   representation consed waiters onto a [list] and every broadcast paid a
   [List.rev] allocation of the full waiter set — hot on every stable-gp
   advance; draining the slab list head-first wakes in the same FIFO
   order with zero allocation. *)
type t = { mutable whead : int; mutable wtail : int; mutable n : int }

let create () = { whead = Slab.nil; wtail = Slab.nil; n = 0 }

let broadcast t =
  (* Detach the current waiter set first: wakes only schedule resumption
     thunks, but any waiter re-parked by a reentrant use must land in a
     fresh list, exactly as the old snapshot-and-reverse did. *)
  let c = ref t.whead in
  t.whead <- Slab.nil;
  t.wtail <- Slab.nil;
  t.n <- 0;
  while !c >= 0 do
    let w : bool Engine.waker = Obj.obj (Slab.get !c) in
    let next = Slab.next !c in
    Slab.free !c;
    ignore (Engine.wake w true : bool);
    c := next
  done

let park t w =
  let nd = Slab.alloc (Obj.repr w) in
  if t.wtail < 0 then t.whead <- nd else Slab.set_next t.wtail nd;
  t.wtail <- nd;
  t.n <- t.n + 1

let await t pred =
  while not (pred ()) do
    ignore (Engine.suspend (fun w -> park t w) : bool)
  done

let await_timeout t ~timeout pred =
  let deadline = Engine.now () + timeout in
  let rec loop () =
    if pred () then true
    else begin
      let remaining = deadline - Engine.now () in
      if remaining <= 0 then pred ()
      else begin
        let woke =
          Engine.suspend (fun w ->
              park t w;
              (* a broadcast that wins the race cancels this deadline *)
              Engine.arm_timeout w remaining false)
        in
        ignore (woke : bool);
        loop ()
      end
    end
  in
  loop ()

let waiters t = t.n
