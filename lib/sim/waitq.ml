type t = { mutable waiters : bool Engine.waker list }

let create () = { waiters = [] }

let broadcast t =
  let ws = t.waiters in
  t.waiters <- [];
  List.iter (fun w -> ignore (Engine.wake w true)) (List.rev ws)

let await t pred =
  while not (pred ()) do
    ignore (Engine.suspend (fun w -> t.waiters <- w :: t.waiters) : bool)
  done

let await_timeout t ~timeout pred =
  let deadline = Engine.now () + timeout in
  let rec loop () =
    if pred () then true
    else begin
      let remaining = deadline - Engine.now () in
      if remaining <= 0 then pred ()
      else begin
        let woke =
          Engine.suspend (fun w ->
              t.waiters <- w :: t.waiters;
              Engine.call_after remaining (fun () ->
                  ignore (Engine.wake w false)))
        in
        ignore (woke : bool);
        loop ()
      end
    end
  in
  loop ()

let waiters t = List.length t.waiters
