(** Per-domain slab allocator for intrusive list nodes.

    The simulation's wait-queue primitives (Mailbox, Waitq, Ivar) and the
    fabric's per-node FIFO bookkeeping all need tiny singly-linked queue
    nodes on their hot paths — one per send/recv/broadcast. Allocating
    them as [Queue.t] cells or list conses churns the minor heap and, at
    10^6 parked producers, promotes a million short-lived cells into the
    major heap. This slab keeps the nodes in two flat growable arrays
    (intrusive [next] links + [Obj.t] payloads) threaded through a free
    list, so steady-state enqueue/dequeue allocates nothing and freed
    nodes are reused LIFO — the hottest node stays cache-resident.

    The slab is {e domain-local} (like the engine's event-cell pool):
    every domain owns an independent slab, so parallel seed sweeps share
    nothing. {!Engine.run} calls {!reset} when a run starts; nodes must
    not be carried across runs (the sim structures that own them are dead
    anyway). Nodes allocated after a run remain readable until the next
    run starts.

    Clients store values via [Obj.repr] and must cast back with the type
    they stored — the same discipline the engine's event payload pool
    uses. [nil] terminates lists. *)

val nil : int
(** The empty-list sentinel (negative; never a valid node). *)

val alloc : Obj.t -> int
(** [alloc v] takes a node off the free list (growing the slab if empty)
    with payload [v] and [next = nil]. *)

val free : int -> unit
(** [free n] clears the payload (so the slab never retains the value) and
    returns [n] to the free list. Freeing a node twice, or using it after
    free, is a bug the slab does not detect. *)

val get : int -> Obj.t
(** Payload of a live node. *)

val set : int -> Obj.t -> unit
(** Replace the payload of a live node. *)

val next : int -> int
(** Successor link of a live node ([nil] at the tail). *)

val set_next : int -> int -> unit

val in_use : unit -> int
(** Number of currently allocated (not freed) nodes in this domain. *)

val capacity : unit -> int
(** Current slab capacity (high-water mark of simultaneous nodes). *)

val reset : unit -> unit
(** Free every node and rebuild the free list, keeping capacity. Called
    by {!Engine.run} at the start of each run; also useful in tests. *)
