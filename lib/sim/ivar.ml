(* The waiter list is an intrusive slab list (FIFO, like the old
   cons-then-[List.rev] representation but allocation-free); the value is
   stored untyped so the record itself is the whole ivar — no [state]
   variant reallocated on fill. *)
type 'a t = {
  mutable full : bool;
  mutable value : Obj.t;
  mutable whead : int;
  mutable wtail : int;
}

let unit_obj = Obj.repr 0

let create () =
  { full = false; value = unit_obj; whead = Slab.nil; wtail = Slab.nil }

let try_fill t v =
  if t.full then false
  else begin
    t.full <- true;
    t.value <- Obj.repr v;
    let c = ref t.whead in
    t.whead <- Slab.nil;
    t.wtail <- Slab.nil;
    while !c >= 0 do
      let w : 'a option Engine.waker = Obj.obj (Slab.get !c) in
      let next = Slab.next !c in
      Slab.free !c;
      ignore (Engine.wake w (Some v) : bool);
      c := next
    done;
    true
  end

let fill t v =
  if not (try_fill t v) then invalid_arg "Ivar.fill: already full"

let is_full t = t.full

let peek t = if t.full then Some (Obj.obj t.value : 'a) else None

let park t w =
  let nd = Slab.alloc (Obj.repr w) in
  if t.wtail < 0 then t.whead <- nd else Slab.set_next t.wtail nd;
  t.wtail <- nd

let read t =
  if t.full then (Obj.obj t.value : 'a)
  else begin
    let r =
      Engine.suspend (fun w ->
          (* re-check: a fill may have raced in before the suspension *)
          if t.full then ignore (Engine.wake w (Some (Obj.obj t.value)) : bool)
          else park t w)
    in
    match r with
    | Some v -> v
    | None -> assert false (* only timeouts wake with [None] *)
  end

let read_timeout t ~timeout =
  if t.full then Some (Obj.obj t.value : 'a)
  else
    Engine.suspend (fun w ->
        if t.full then ignore (Engine.wake w (Some (Obj.obj t.value)) : bool)
        else begin
          park t w;
          (* the fill that wakes this waiter cancels the deadline cell *)
          Engine.arm_timeout w timeout None
        end)

let join_all ts = List.map read ts

let join_all_timeout ts ~timeout =
  let deadline = Engine.now () + timeout in
  let rec loop acc = function
    | [] -> Some (List.rev acc)
    | t :: rest -> (
      let remaining = deadline - Engine.now () in
      if remaining <= 0 then
        (* Budget exhausted: already-full ivars still resolve (matching
           [read_timeout]'s no-suspend fast path), but an empty one fails
           immediately — arming a zero-length timeout would park a wheel
           cell just to fire in the same instant (cf.
           [Waitq.await_timeout]'s [remaining <= 0] early return). *)
        if t.full then loop (Obj.obj t.value :: acc) rest else None
      else
        match read_timeout t ~timeout:remaining with
        | Some v -> loop (v :: acc) rest
        | None -> None)
  in
  loop [] ts
