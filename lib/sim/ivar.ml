type 'a state =
  | Empty of 'a option Engine.waker list
  | Full of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let try_fill t v =
  match t.state with
  | Full _ -> false
  | Empty waiters ->
    t.state <- Full v;
    List.iter (fun w -> ignore (Engine.wake w (Some v))) (List.rev waiters);
    true

let fill t v =
  if not (try_fill t v) then invalid_arg "Ivar.fill: already full"

let is_full t = match t.state with Full _ -> true | Empty _ -> false

let peek t = match t.state with Full v -> Some v | Empty _ -> None

let read t =
  match t.state with
  | Full v -> v
  | Empty _ -> (
    let r =
      Engine.suspend (fun w ->
          match t.state with
          | Full v -> ignore (Engine.wake w (Some v))
          | Empty waiters -> t.state <- Empty (w :: waiters))
    in
    match r with
    | Some v -> v
    | None -> assert false (* only timeouts wake with [None] *))

let read_timeout t ~timeout =
  match t.state with
  | Full v -> Some v
  | Empty _ ->
    Engine.suspend (fun w ->
        (match t.state with
        | Full v -> ignore (Engine.wake w (Some v))
        | Empty waiters -> t.state <- Empty (w :: waiters));
        Engine.call_after timeout (fun () -> ignore (Engine.wake w None)))

let join_all ts = List.map read ts

let join_all_timeout ts ~timeout =
  let deadline = Engine.now () + timeout in
  let rec loop acc = function
    | [] -> Some (List.rev acc)
    | t :: rest -> (
      let remaining = deadline - Engine.now () in
      if remaining < 0 then None
      else
        match read_timeout t ~timeout:remaining with
        | Some v -> loop (v :: acc) rest
        | None -> None)
  in
  loop [] ts
