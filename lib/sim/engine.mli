(** Deterministic discrete-event simulation engine.

    The engine executes lightweight cooperative fibers over a simulated
    clock. Fibers are ordinary OCaml functions that may call {!now},
    {!sleep}, {!spawn} and {!suspend}; blocking is implemented with OCaml 5
    effect handlers, so protocol code reads as straight-line blocking code
    while the whole simulation runs deterministically in a single domain.

    Time is measured in integer nanoseconds of {e simulated} time. Runs are
    reproducible: given the same seed and the same program, every run
    produces the identical schedule. Events at equal timestamps fire in the
    order they were scheduled, unless {!run} is given [~perturb:true], in
    which case ties are broken by a per-run seeded stream — one workload
    then explores many legal interleavings, one per seed, still fully
    deterministically (the ll_check simulation checker's schedule hook).

    All scheduler state is domain-local: each OS domain owns an independent
    engine, so independent simulations (e.g. a seed sweep) can run in
    parallel domains with no shared state.

    Events are stored in pooled cells inside a hierarchical timer wheel
    (near-future buckets at 1 ns granularity cascading out of coarser
    wheels, with a heap fallback for far-future timers), so the per-event
    cost is a handful of array writes rather than comparator sifts and a
    record + closure allocation. A reference binary-heap scheduler — the
    pre-wheel implementation — remains selectable via {!set_scheduler} for
    equivalence testing and before/after benchmarking; both execute the
    identical [(at, tie, seq)] order. *)

type time = int
(** Simulated time in nanoseconds since the start of the run. *)

exception Fiber_failure of string * exn
(** Raised out of {!run} when a fiber raises: carries the fiber's name and
    the original exception. *)

(** {1 Time constructors} *)

val ns : int -> time
val us : int -> time
val ms : int -> time
val sec : int -> time

val us_f : float -> time
(** [us_f x] is [x] microseconds, rounded to the nearest nanosecond. *)

val to_us : time -> float
val to_ms : time -> float
val to_sec : time -> float

(** {1 Fiber primitives}

    All of these must be called from inside a fiber running under {!run};
    calling them elsewhere raises [Failure]. *)

val now : unit -> time
(** Current simulated time. Reads the engine clock directly (not an
    effect), so it is also callable from bare {!call_at} callbacks. *)

val sleep : time -> unit
(** [sleep d] suspends the calling fiber for [d] simulated nanoseconds.
    [sleep 0] yields to other fibers scheduled at the current instant. *)

val sleep_until : time -> unit
(** [sleep_until t] sleeps until absolute time [t] ([t <= now] is a yield). *)

val spawn : ?name:string -> (unit -> unit) -> unit
(** [spawn f] schedules fiber [f] to start at the current instant. [name] is
    used in crash reports. *)

val yield : unit -> unit

type 'a waker
(** A one-shot resumption capability for a suspended fiber. *)

val wake : 'a waker -> 'a -> bool
(** [wake w v] resumes the fiber suspended on [w] with value [v]. Returns
    [true] if this call performed the wake-up and [false] if the waker had
    already fired (each waker fires at most once). May be called from any
    fiber or from a scheduled callback. *)

val is_woken : 'a waker -> bool

val suspend : ('a waker -> unit) -> 'a
(** [suspend register] parks the calling fiber and hands its waker to
    [register]. The fiber resumes with the value later passed to {!wake}.
    If no one ever wakes the waker the fiber stays parked forever (which is
    fine: the run simply ends when no events remain). *)

val at : time -> (unit -> unit) -> unit
(** [at t f] schedules callback [f] at absolute simulated time [t] (clamped
    to now if in the past). [f] runs on its own fiber. *)

val after : time -> (unit -> unit) -> unit
(** [after d f] is [at (now () + d) f]. *)

val call_at : time -> (unit -> unit) -> unit
(** [call_at t f] schedules [f] at absolute time [t] (clamped to now if in
    the past), run {e bare} in the scheduler loop rather than on a fiber:
    no fiber start cost and no closure beyond [f] itself. [f] must not
    perform fiber effects ({!sleep}, {!spawn}, {!suspend}) — use {!at}
    for callbacks that do. Calling {!now}, {!wake} or scheduling further
    events from [f] is fine (wake thunks already run this way). *)

val call_after : time -> (unit -> unit) -> unit
(** [call_after d f] is [call_at (now () + d) f]. *)

(** {1 Cancellable timers}

    Timed waits (Mailbox/Waitq/Ivar timeouts, RPC deadlines) arm a timer
    they usually don't need: the common case is a normal wake before the
    deadline. Cancellation removes the dead timer from the schedule — the
    wheel unlinks the cell in O(1) and recycles it; the reference heap
    tombstones the event and the run loop skips it — so a completed timed
    wait leaves nothing behind to churn through the scheduler. Cancelled
    timers never execute under either scheduler, so schedule equivalence
    is preserved. *)

type timer = private int
(** A cancel token for a pending timer. Tokens are immediate ints (no
    allocation) and are only meaningful within the {!run} that created
    them. *)

val no_timer : timer
(** The null token; {!cancel} on it returns [false]. *)

val timer_at : time -> (unit -> unit) -> timer
(** Like {!call_at} — identical schedule position — but returns a token
    that can cancel the callback before it fires. *)

val timer_after : time -> (unit -> unit) -> timer
(** [timer_after d f] is [timer_at (now () + d) f]. *)

val cancel : timer -> bool
(** [cancel t] removes the pending timer: [true] if this call removed it
    (the callback will never run), [false] if it already fired, was
    already cancelled, or [t] is {!no_timer}. *)

val arm_timeout : 'a waker -> time -> 'a -> unit
(** [arm_timeout w d v] arms a deadline on waker [w]: after [d] ns, [w] is
    woken with [v] unless it fired first. A normal {!wake} before the
    deadline cancels the timer automatically — this is the primitive the
    timed waits in Mailbox/Waitq/Ivar are built on. At most one deadline
    per waker; re-arming overwrites the token without cancelling the
    previous timer. *)

val timers_cancelled : unit -> int
(** Number of timers removed by {!cancel} so far in this run
    (diagnostic; includes deadline auto-cancels). *)

val pending_events : unit -> int
(** Number of scheduled-but-unfired events right now — live wheel cells
    (or non-tombstoned heap events). Lets tests and micro benchmarks
    observe that cancelled timers really left the schedule. *)

(** {1 Randomness} *)

val random_state : unit -> Random.State.t
(** The engine's deterministic random state (seeded by {!run}). Every
    stochastic default in the simulator (fabric jitter seeds, workload
    arrival seeds) should derive from this stream so one master seed
    reproduces the whole run. *)

val master_seed : unit -> int
(** The seed the current (or most recent) {!run} was started with. *)

(** {1 Running} *)

val run : ?seed:int -> ?perturb:bool -> ?until:time -> (unit -> unit) -> unit
(** [run main] resets the clock to 0 and executes [main] plus everything it
    spawns until no scheduled events remain, or until simulated time
    exceeds [until] if given. Exceptions escaping any fiber abort the run
    (printing the master seed for replay) and are re-raised. Runs must not
    nest within a domain; independent domains may run concurrently.

    [perturb] (default false) randomizes tie-breaking among equal-time
    events from a stream derived from [seed], so distinct seeds explore
    distinct legal interleavings of the same program. *)

val stop : unit -> unit
(** Request the current run to stop; remaining events are discarded once the
    currently executing fiber slice returns. *)

val fiber_count : unit -> int
(** Number of fiber starts so far in this run (diagnostic). *)

val events_executed : unit -> int
(** Number of scheduler events executed so far in this run — a stable
    logical clock for repro artifacts (survives until the next {!run}).
    Scheduler-invariant: the wheel and the reference heap execute the same
    events in the same order, so counts recorded by monitors are
    comparable across schedulers. *)

(** {1 Scheduler selection} *)

val set_scheduler : [ `Wheel | `Heap ] -> unit
(** Select the event scheduler for subsequent {!run}s — [`Wheel] (default,
    hierarchical timer wheel over pooled cells) or [`Heap] (reference
    binary heap, the pre-wheel implementation). Both execute the identical
    event order; [`Heap] exists for equivalence tests and before/after
    benchmarks. Also sets the default inherited by freshly spawned
    domains. Raises [Failure] if called during a run. *)

val scheduler : unit -> [ `Wheel | `Heap ]
(** The calling domain's currently selected scheduler. *)
