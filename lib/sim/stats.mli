(** Measurement collection: latency reservoirs, percentiles, CDFs, and
    throughput timelines.

    All latencies are stored in simulated nanoseconds and reported in
    microseconds unless noted, matching the units used in the paper's
    figures. *)

(** {1 Latency reservoirs} *)

module Reservoir : sig
  type t

  val create : ?name:string -> unit -> t

  val add : t -> int -> unit
  (** [add t ns] records one latency sample of [ns] nanoseconds. *)

  val count : t -> int

  val mean_us : t -> float

  val percentile_us : t -> float -> float
  (** [percentile_us t 99.0] is the p99 in microseconds. 0 samples -> nan. *)

  val min_us : t -> float
  val max_us : t -> float
  val stddev_us : t -> float

  val cdf : t -> points:int -> (float * float) list
  (** [cdf t ~points] is [(latency_us, cumulative_percent)] pairs sampled at
      [points] evenly spaced ranks, suitable for printing a CDF series. *)

  val merge : t list -> t

  val clear : t -> unit

  val name : t -> string
end

(** {1 Throughput timelines} *)

module Timeline : sig
  type t

  val create : bin:Engine.time -> t
  (** [create ~bin] counts events in bins of [bin] simulated ns. *)

  val record : t -> at:Engine.time -> unit
  val record_n : t -> at:Engine.time -> n:int -> unit

  val series : t -> (float * float) list
  (** [(time_seconds, events_per_second)] per bin, in time order. *)

  val total : t -> int
end

(** {1 Power-of-two histograms} *)

module Histogram : sig
  type t

  val create : ?name:string -> unit -> t

  val add : t -> int -> unit
  (** O(1), constant memory: sample [v] lands in bucket
      [⌈log2 (v+1)⌉] — suitable for hot-path series like ordering batch
      sizes and pipeline depths. *)

  val total : t -> int
  (** Number of samples recorded. *)

  val max_sample : t -> int
  (** Largest sample seen (0 when empty). *)

  val buckets : t -> (int * int * int) list
  (** Non-empty buckets as [(lo, hi, count)], ascending. *)

  val clear : t -> unit
  val name : t -> string
end

(** {1 Simple counters} *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

val throughput_per_sec : count:int -> dur:Engine.time -> float
(** Events per second of simulated time. *)
