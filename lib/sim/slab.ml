let nil = -1
let unit_obj = Obj.repr 0
let initial = 256

(* One pool per domain: [nxt] doubles as the intrusive list link of live
   nodes and the free-list thread of free ones. [data] is cleared on free
   so the slab never keeps a payload alive. *)
type pool = {
  mutable nxt : int array;
  mutable data : Obj.t array;
  mutable free_head : int;
  mutable used : int;
}

let fresh_pool () =
  let nxt = Array.init initial (fun i -> i + 1) in
  nxt.(initial - 1) <- nil;
  { nxt; data = Array.make initial unit_obj; free_head = 0; used = 0 }

let dls : pool Domain.DLS.key = Domain.DLS.new_key fresh_pool

let pool () = Domain.DLS.get dls

let grow p =
  let cap = Array.length p.nxt in
  let ncap = cap * 2 in
  let nxt = Array.make ncap nil in
  Array.blit p.nxt 0 nxt 0 cap;
  for i = cap to ncap - 2 do
    nxt.(i) <- i + 1
  done;
  nxt.(ncap - 1) <- p.free_head;
  let data = Array.make ncap unit_obj in
  Array.blit p.data 0 data 0 cap;
  p.nxt <- nxt;
  p.data <- data;
  p.free_head <- cap

(* Indices come off the free list and stay in range by construction, so
   the per-node operations skip bounds checks — these run once per
   message send/receive at tens of millions of ops per second. *)

let alloc v =
  let p = pool () in
  if p.free_head < 0 then grow p;
  let n = p.free_head in
  p.free_head <- Array.unsafe_get p.nxt n;
  Array.unsafe_set p.data n v;
  Array.unsafe_set p.nxt n nil;
  p.used <- p.used + 1;
  n

let free n =
  let p = pool () in
  Array.unsafe_set p.data n unit_obj;
  Array.unsafe_set p.nxt n p.free_head;
  p.free_head <- n;
  p.used <- p.used - 1

let get n = Array.unsafe_get (pool ()).data n

let set n v = Array.unsafe_set (pool ()).data n v

let next n = Array.unsafe_get (pool ()).nxt n

let set_next n m = Array.unsafe_set (pool ()).nxt n m

let in_use () = (pool ()).used

let capacity () = Array.length (pool ()).nxt

let reset () =
  let p = pool () in
  let cap = Array.length p.nxt in
  for i = 0 to cap - 2 do
    p.nxt.(i) <- i + 1;
    p.data.(i) <- unit_obj
  done;
  p.nxt.(cap - 1) <- nil;
  p.data.(cap - 1) <- unit_obj;
  p.free_head <- 0;
  p.used <- 0
