type time = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000
let us_f x = int_of_float ((x *. 1_000.) +. 0.5)
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.

(* [tie] breaks ties among equal-time events. In the default schedule it is
   0, so the [seq] FIFO order decides; under perturbation (ll_check) it is
   drawn from a per-run seeded stream, so one workload explores many legal
   interleavings while staying fully deterministic per seed. *)
type event = { at : time; tie : int; seq : int; fn : unit -> unit }

(* Int.compare, not polymorphic compare: this runs on every heap sift of
   every scheduled event — the hottest comparison in the simulator. *)
let event_cmp a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Int.compare a.tie b.tie in
    if c <> 0 then c else Int.compare a.seq b.seq

(* Scheduler state is domain-local: each OS domain owns an independent
   engine, so seed sweeps (bin/lazylog_check) parallelize across domains
   with no shared state. Within a domain, runs are not reentrant and the
   simulation is single-fiber-at-a-time, so plain mutable fields are safe
   and fast. *)
type state = {
  queue : event Heap.t;
  mutable clock : time;
  mutable seqno : int;
  mutable running : bool;
  mutable stopping : bool;
  mutable fibers : int;
  mutable executed : int;
  mutable seed : int;
  mutable rng : Random.State.t;
  mutable perturb_rng : Random.State.t option;
}

let fresh_state () =
  {
    queue = Heap.create ~cmp:event_cmp;
    clock = 0;
    seqno = 0;
    running = false;
    stopping = false;
    fibers = 0;
    executed = 0;
    seed = 0;
    rng = Random.State.make [| 0 |];
    perturb_rng = None;
  }

let dls : state Domain.DLS.key = Domain.DLS.new_key fresh_state

let state () = Domain.DLS.get dls

exception Fiber_failure of string * exn

let require_running what =
  if not (state ()).running then failwith (what ^ ": not inside Engine.run")

let schedule_ev s at fn =
  let at = if at < s.clock then s.clock else at in
  s.seqno <- s.seqno + 1;
  let tie =
    match s.perturb_rng with
    | None -> 0
    | Some prng -> Random.State.bits prng
  in
  Heap.push s.queue { at; tie; seq = s.seqno; fn }

let schedule at fn = schedule_ev (state ()) at fn

type 'a waker = { mutable fired : bool; mutable resume : 'a -> unit }

let wake w v =
  if w.fired then false
  else begin
    w.fired <- true;
    (* Resume on a fresh event so wake never re-enters the waker's fiber
       from the middle of the caller's slice: determinism and no surprise
       reentrancy. *)
    let s = state () in
    schedule_ev s s.clock (fun () -> w.resume v);
    true
  end

let is_woken w = w.fired

type _ Effect.t +=
  | Now : time Effect.t
  | Sleep : time -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> unit Effect.t
  | Suspend : ('a waker -> unit) -> 'a Effect.t

let now () =
  require_running "now";
  Effect.perform Now

let sleep d =
  require_running "sleep";
  Effect.perform (Sleep (if d < 0 then 0 else d))

let sleep_until t =
  let n = now () in
  sleep (if t > n then t - n else 0)

let spawn ?(name = "fiber") f =
  require_running "spawn";
  Effect.perform (Spawn (name, f))

let yield () = sleep 0

let suspend register =
  require_running "suspend";
  Effect.perform (Suspend register)

let rec exec name f =
  let open Effect.Deep in
  let s = state () in
  s.fibers <- s.fibers + 1;
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match e with
          | Fiber_failure _ -> raise e
          | e -> raise (Fiber_failure (name, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Now ->
            Some
              (fun (k : (a, unit) continuation) -> continue k (state ()).clock)
          | Sleep d ->
            Some
              (fun (k : (a, unit) continuation) ->
                let s = state () in
                schedule_ev s (s.clock + d) (fun () -> continue k ()))
          | Spawn (child_name, g) ->
            Some
              (fun (k : (a, unit) continuation) ->
                let s = state () in
                schedule_ev s s.clock (fun () -> exec child_name g);
                continue k ())
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let w = { fired = false; resume = (fun v -> continue k v) } in
                register w)
          | _ -> None);
    }

let at t fn =
  require_running "at";
  schedule t (fun () -> exec "at" fn)

let after d fn = at ((state ()).clock + d) fn

let random_state () = (state ()).rng

let master_seed () = (state ()).seed

let events_executed () = (state ()).executed

let stop () = (state ()).stopping <- true

let fiber_count () = (state ()).fibers

let run ?(seed = 42) ?(perturb = false) ?until main =
  let s = state () in
  if s.running then failwith "Engine.run: runs must not nest";
  s.running <- true;
  s.stopping <- false;
  s.clock <- 0;
  s.seqno <- 0;
  s.fibers <- 0;
  s.executed <- 0;
  s.seed <- seed;
  Heap.clear s.queue;
  s.rng <- Random.State.make [| seed; 0x1a2706 |];
  s.perturb_rng <-
    (if perturb then Some (Random.State.make [| seed; 0x7e27b6 |]) else None);
  let finish () =
    s.running <- false;
    Heap.clear s.queue
  in
  Fun.protect ~finally:finish (fun () ->
      try
        schedule_ev s 0 (fun () -> exec "main" main);
        let continue_loop = ref true in
        while !continue_loop && not s.stopping do
          match Heap.pop s.queue with
          | None -> continue_loop := false
          | Some ev -> (
            match until with
            | Some u when ev.at > u -> continue_loop := false
            | _ ->
              s.clock <- ev.at;
              s.executed <- s.executed + 1;
              ev.fn ())
        done
      with e ->
        (* Every failure names the master seed so it can be replayed. *)
        Printf.eprintf "Engine.run: aborting (master seed %d): %s\n%!" seed
          (Printexc.to_string e);
        raise e)
