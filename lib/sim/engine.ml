type time = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000
let us_f x = int_of_float ((x *. 1_000.) +. 0.5)
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.

(* [tie] breaks ties among equal-time events. In the default schedule it is
   0, so the [seq] FIFO order decides; under perturbation (ll_check) it is
   drawn from a per-run seeded stream, so one workload explores many legal
   interleavings while staying fully deterministic per seed.

   Events execute in strict ascending [(at, tie, seq)] order. Two
   schedulers implement that contract over the same cell stream:

   - the default hierarchical timer wheel (below), whose per-event cost is
     O(1) appends plus bitmap scans instead of O(log n) comparator sifts,
     and whose run loop drains a whole slot (one exact timestamp) per
     bitmap scan, dispatching head-first in a tight loop — the slot list
     itself is the run queue, so batching adds no copy and a pending
     same-instant cell stays cancellable until the moment it fires;
   - a reference binary heap over boxed event records — the pre-wheel
     implementation, kept selectable (see {!set_scheduler}) so equivalence
     tests and before/after benchmarks can run both on identical inputs.

   Since [seq] is unique, the order is total: any correct scheduler
   executes the identical sequence, which is what test_wheel.ml checks.
   Cancelled timers ({!cancel}) are removed from the schedule in both
   schedulers without executing, so the executed sequences stay equal. *)

(* Event cells are pooled in struct-of-arrays form: scheduling an event
   writes four ints and one pointer into recycled slots instead of
   allocating a record plus a dispatch closure. [kind] selects how the run
   loop fires the cell: *)
let k_thunk = 0 (* payload : unit -> unit, called bare in the loop *)
let k_cont = 1 (* payload : (unit, unit) continuation (a sleeping fiber) *)
let k_fiber = 2 (* payload : unit -> unit, started as a fiber via [exec] *)
let k_dead = 3 (* cancelled timer awaiting reclamation (overflow heap) *)

(* Wheel geometry: 3 levels of 2048 slots. Level 0 buckets by exact
   nanosecond (slot = at land mask), so a slot never mixes timestamps and
   FIFO append is already (tie, seq) order in unperturbed runs; level l
   slots cover 2048^l ns and cascade down when the clock reaches them.
   Level 2 spans 2^33 ns (~8.6 simulated seconds) from the current cycle
   origin; anything beyond falls back to a small overflow heap. 2048 keeps
   the level-0 slot array (2 ints per slot) at 32 KB — L1-resident, which
   measurably beats larger wheels at tens of Mevents/s. *)
let wheel_bits = 11
let wheel_slots = 1 lsl wheel_bits
let wheel_mask = wheel_slots - 1
let bm_words = wheel_slots lsr 5 (* occupancy bitmaps, 32 bits per word *)

(* Lowest set bit of a nonzero 32-bit value: (x land -x) is a power of
   two, and 2 is a primitive root mod 37, so [mod 37] is a perfect hash
   for the 32 possible isolated bits. *)
let lsb_table =
  let t = Array.make 37 0 in
  for i = 0 to 31 do
    t.((1 lsl i) mod 37) <- i
  done;
  t

let lowest_bit x = lsb_table.((x land -x) mod 37)

(* A cell's current location is packed into its [seqk] word (below):
   13 bits hold either [level lsl 11 lor slot] for a cell linked into a
   wheel slot list, or a sentinel. O(1) cancellation needs this: the
   token identifies the cell, and the location says which doubly-linked
   slot list to unlink it from. *)
let loc_bits = 13
let loc_mask = (1 lsl loc_bits) - 1
let loc_ovf = loc_mask (* parked in the overflow heap: tombstone on cancel *)
let loc_free = loc_mask - 1 (* free-listed / detached *)

(* [seqk] packs [seq lsl 15 lor loc lsl 2 lor kind]. Two cells in the
   same slot list share their [loc] bits, so comparing whole [seqk] words
   compares [seq] — the trick that keeps sorted level-0 inserts to one
   load per cell. [seq] gets 48 bits: ~2.8e14 events per run. *)
let seqk_shift = loc_bits + 2
let seqk_make seq kind = (seq lsl seqk_shift) lor (loc_free lsl 2) lor kind
let seqk_seq sk = sk lsr seqk_shift
let seqk_kind sk = sk land 3
let seqk_loc sk = (sk lsr 2) land loc_mask
let seqk_set_loc sk loc = sk land lnot (loc_mask lsl 2) lor (loc lsl 2)
let seqk_set_kind sk kind = sk land lnot 3 lor kind

(* Overflow entries carry their key so the heap comparator never chases
   the (growable) pool arrays. Rare path: only timers beyond the current
   2^39 ns cycle land here. *)
type ovf = { oat : time; otie : int; oseq : int; ocell : int }

let ovf_cmp a b =
  let c = Int.compare a.oat b.oat in
  if c <> 0 then c
  else
    let c = Int.compare a.otie b.otie in
    if c <> 0 then c else Int.compare a.oseq b.oseq

(* Reference scheduler: the pre-wheel representation, one boxed record and
   one dispatch closure per event in a binary heap. [dead] is the lazy
   form of cancellation: the wheel unlinks a cancelled cell eagerly, the
   heap tombstones it and the run loop skips it on pop. *)
type event = {
  at : time;
  tie : int;
  seq : int;
  fn : unit -> unit;
  mutable dead : bool;
}

(* Int.compare, not polymorphic compare: this runs on every heap sift of
   every scheduled event under the reference scheduler. *)
let event_cmp a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Int.compare a.tie b.tie in
    if c <> 0 then c else Int.compare a.seq b.seq

let nil = -1
let unit_obj = Obj.repr 0
let no_name = ""

(* Cancel tokens are immediate ints: 0 is "none", positive packs
   [cell lsl 38 lor seq] for a wheel cell (validated against the cell's
   live [seq] so a fired-and-recycled cell can't be cancelled by a stale
   token), negative is [-seq] for a reference-heap event looked up in a
   side table. Tokens are only meaningful within the run that made them. *)
type timer = int

let no_timer = 0
let token_seq_bits = 38
let token_seq_mask = (1 lsl token_seq_bits) - 1

(* Scheduler state is domain-local: each OS domain owns an independent
   engine, so seed sweeps (bin/lazylog_check) parallelize across domains
   with no shared state. Within a domain, runs are not reentrant and the
   simulation is single-fiber-at-a-time, so plain mutable fields are safe
   and fast. *)
type state = {
  mutable clock : time;
  mutable seqno : int;
  mutable running : bool;
  mutable stopping : bool;
  mutable fibers : int;
  mutable executed : int;
  mutable cancelled : int;
  mutable seed : int;
  mutable rng : Random.State.t;
  mutable perturb_rng : Random.State.t option;
  mutable use_heap : bool;
  (* reference scheduler *)
  queue : event Heap.t;
  hcancel : (int, event) Hashtbl.t; (* seq -> cancellable pending event *)
  mutable heap_dead : int; (* tombstones still inside [queue] *)
  (* Pooled cells. The int fields live interleaved in [ev_i] at stride 4
     — at, seqk (seq|loc|kind, above), next, prev — so touching a cell
     costs one 32-byte block; this is what keeps 10^5 live timers fast.
     The free list is threaded through the next field. [ev_tie] is only
     read under ~perturb (ties are 0 otherwise) so the unperturbed hot
     path never touches it. [ev_name] holds fiber names and is only
     touched for fiber-start cells. *)
  mutable ev_i : int array;
  mutable ev_tie : int array;
  mutable ev_payload : Obj.t array;
  mutable ev_name : string array;
  mutable free_head : int;
  mutable live : int;
  (* wheel: per level, slot lists (head at [2*slot], tail at [2*slot+1],
     one cache line per touch), occupancy bitmap, live count, and current
     scan position *)
  hts : int array array;
  bitmaps : int array array;
  counts : int array;
  pos : int array;
  overflow : ovf Heap.t;
}

(* The default scheduler for freshly created domain states; flipped by
   {!set_scheduler} so spawned sweep domains inherit the choice. *)
let default_use_heap = Atomic.make false

let initial_pool = 1024

let fresh_state () =
  let ev_i = Array.make (4 * initial_pool) 0 in
  for i = 0 to initial_pool - 1 do
    ev_i.((4 * i) + 2) <- i + 1
  done;
  ev_i.((4 * (initial_pool - 1)) + 2) <- nil;
  {
    clock = 0;
    seqno = 0;
    running = false;
    stopping = false;
    fibers = 0;
    executed = 0;
    cancelled = 0;
    seed = 0;
    rng = Random.State.make [| 0 |];
    perturb_rng = None;
    use_heap = Atomic.get default_use_heap;
    queue = Heap.create ~cmp:event_cmp;
    hcancel = Hashtbl.create 64;
    heap_dead = 0;
    ev_i;
    ev_tie = Array.make initial_pool 0;
    ev_payload = Array.make initial_pool unit_obj;
    ev_name = Array.make initial_pool no_name;
    free_head = 0;
    live = 0;
    hts = Array.init 3 (fun _ -> Array.make (2 * wheel_slots) nil);
    bitmaps = Array.init 3 (fun _ -> Array.make bm_words 0);
    counts = Array.make 3 0;
    pos = Array.make 3 0;
    overflow = Heap.create ~cmp:ovf_cmp;
  }

let dls : state Domain.DLS.key = Domain.DLS.new_key fresh_state

let state () = Domain.DLS.get dls

exception Fiber_failure of string * exn

let require_running what =
  if not (state ()).running then failwith (what ^ ": not inside Engine.run")

(* ---------- pooled cells ---------- *)

let grow_pool s =
  let cap = Array.length s.ev_payload in
  let ncap = cap * 2 in
  let copy a fill =
    let n = Array.make ncap fill in
    Array.blit a 0 n 0 cap;
    n
  in
  let ev_i = Array.make (4 * ncap) 0 in
  Array.blit s.ev_i 0 ev_i 0 (4 * cap);
  for i = cap to ncap - 1 do
    ev_i.((4 * i) + 2) <- i + 1
  done;
  ev_i.((4 * (ncap - 1)) + 2) <- s.free_head;
  s.ev_i <- ev_i;
  s.ev_tie <- copy s.ev_tie 0;
  s.ev_payload <- copy s.ev_payload unit_obj;
  s.ev_name <- copy s.ev_name no_name;
  s.free_head <- cap

(* Pool and slot indices are in range by construction (cells come off the
   free list, slots are masked), so the per-event paths use unsafe array
   accessors: at millions of events per second the bounds checks are
   measurable. *)

let alloc_cell s =
  if s.free_head < 0 then grow_pool s;
  let c = s.free_head in
  s.free_head <- Array.unsafe_get s.ev_i ((4 * c) + 2);
  c

(* Fiber names are cleared at dispatch, not here, so the common (unnamed)
   cell never touches the name array. [seqk] is zeroed so a stale cancel
   token (seq >= 1 always) can never match a freed or recycled cell. *)
let free_cell s c =
  Array.unsafe_set s.ev_payload c unit_obj;
  Array.unsafe_set s.ev_i ((4 * c) + 1) 0;
  Array.unsafe_set s.ev_i ((4 * c) + 2) s.free_head;
  s.free_head <- c

(* ---------- wheel primitives ---------- *)

let bit_set bm slot =
  let w = slot lsr 5 in
  Array.unsafe_set bm w (Array.unsafe_get bm w lor (1 lsl (slot land 31)))

let bit_clear bm slot =
  let w = slot lsr 5 in
  Array.unsafe_set bm w
    (Array.unsafe_get bm w land lnot (1 lsl (slot land 31)))

(* First set bit at or after [start]; the caller guarantees one exists
   (the word scan stays bounds-checked so a broken invariant raises
   instead of reading wild memory). *)
let scan_from bm start =
  let w0 = start lsr 5 in
  let x = Array.unsafe_get bm w0 land (-1 lsl (start land 31)) in
  if x <> 0 then (w0 lsl 5) lor lowest_bit x
  else begin
    let w = ref (w0 + 1) in
    while bm.(!w) = 0 do
      incr w
    done;
    (!w lsl 5) lor lowest_bit bm.(!w)
  end

(* Level-0 slots hold a single exact timestamp, kept sorted by (tie, seq).
   Unperturbed cells arrive in ascending seq with tie 0, so the tail
   append fast path always hits; perturbed runs pay an O(slot) walk.
   Lists are doubly linked (prev at [4c+3]) so {!cancel} unlinks in
   O(1). *)
let l0_insert s c =
  let ev = s.ev_i in
  let slot = Array.unsafe_get ev (4 * c) land wheel_mask in
  let sk = seqk_set_loc (Array.unsafe_get ev ((4 * c) + 1)) slot in
  Array.unsafe_set ev ((4 * c) + 1) sk;
  let hts = Array.unsafe_get s.hts 0 in
  let tl = Array.unsafe_get hts ((2 * slot) + 1) in
  (if tl < 0 then begin
     Array.unsafe_set hts (2 * slot) c;
     Array.unsafe_set hts ((2 * slot) + 1) c;
     Array.unsafe_set ev ((4 * c) + 2) nil;
     Array.unsafe_set ev ((4 * c) + 3) nil;
     bit_set (Array.unsafe_get s.bitmaps 0) slot
   end
   else
     match s.perturb_rng with
     | None ->
       (* Same slot means same timestamp and same loc bits, so comparing
          whole [seqk] words compares [seq]; unperturbed arrivals — fresh
          schedules, cascades, overflow drains — are all in ascending seq
          per timestamp, so the tail append always hits. The sorted walk
          below is kept as a safety net. *)
       if sk > Array.unsafe_get ev ((4 * tl) + 1) then begin
         Array.unsafe_set ev ((4 * tl) + 2) c;
         Array.unsafe_set ev ((4 * c) + 2) nil;
         Array.unsafe_set ev ((4 * c) + 3) tl;
         Array.unsafe_set hts ((2 * slot) + 1) c
       end
       else begin
         let hd = Array.unsafe_get hts (2 * slot) in
         if sk < ev.((4 * hd) + 1) then begin
           ev.((4 * c) + 2) <- hd;
           ev.((4 * c) + 3) <- nil;
           ev.((4 * hd) + 3) <- c;
           hts.(2 * slot) <- c
         end
         else begin
           let p = ref hd in
           while
             ev.((4 * !p) + 2) >= 0 && sk > ev.((4 * ev.((4 * !p) + 2)) + 1)
           do
             p := ev.((4 * !p) + 2)
           done;
           let n = ev.((4 * !p) + 2) in
           ev.((4 * c) + 2) <- n;
           ev.((4 * c) + 3) <- !p;
           if n >= 0 then ev.((4 * n) + 3) <- c;
           ev.((4 * !p) + 2) <- c
         end
       end
     | Some _ ->
       (* Checker path: ties are random, so this is a real sorted insert
          by (tie, seq); the closure allocation is fine here. *)
       let after_of a b =
         let cmp = Int.compare s.ev_tie.(a) s.ev_tie.(b) in
         if cmp <> 0 then cmp > 0 else ev.((4 * a) + 1) > ev.((4 * b) + 1)
       in
       if after_of c tl then begin
         ev.((4 * tl) + 2) <- c;
         ev.((4 * c) + 2) <- nil;
         ev.((4 * c) + 3) <- tl;
         hts.((2 * slot) + 1) <- c
       end
       else begin
         let hd = hts.(2 * slot) in
         if not (after_of c hd) then begin
           ev.((4 * c) + 2) <- hd;
           ev.((4 * c) + 3) <- nil;
           ev.((4 * hd) + 3) <- c;
           hts.(2 * slot) <- c
         end
         else begin
           let p = ref hd in
           while ev.((4 * !p) + 2) >= 0 && after_of c ev.((4 * !p) + 2) do
             p := ev.((4 * !p) + 2)
           done;
           let n = ev.((4 * !p) + 2) in
           ev.((4 * c) + 2) <- n;
           ev.((4 * c) + 3) <- !p;
           if n >= 0 then ev.((4 * n) + 3) <- c;
           ev.((4 * !p) + 2) <- c
         end
       end);
  s.counts.(0) <- s.counts.(0) + 1

(* Levels >= 1 are plain FIFO appends; order within a coarse slot is
   resolved when it cascades down. *)
let lx_insert s l c =
  let ev = s.ev_i in
  let slot = (ev.(4 * c) lsr (wheel_bits * l)) land wheel_mask in
  ev.((4 * c) + 1) <-
    seqk_set_loc ev.((4 * c) + 1) ((l lsl wheel_bits) lor slot);
  let hts = s.hts.(l) in
  let tl = hts.((2 * slot) + 1) in
  if tl < 0 then begin
    hts.(2 * slot) <- c;
    bit_set s.bitmaps.(l) slot
  end
  else ev.((4 * tl) + 2) <- c;
  ev.((4 * c) + 2) <- nil;
  ev.((4 * c) + 3) <- tl;
  hts.((2 * slot) + 1) <- c;
  s.counts.(l) <- s.counts.(l) + 1

(* Insert relative to reference time [ref_] (the clock, except while
   draining the overflow heap into a far-future cycle). *)
let wheel_insert s ~ref_ c =
  let t = s.ev_i.(4 * c) in
  if t lsr wheel_bits = ref_ lsr wheel_bits then l0_insert s c
  else if t lsr (2 * wheel_bits) = ref_ lsr (2 * wheel_bits) then
    lx_insert s 1 c
  else if t lsr (3 * wheel_bits) = ref_ lsr (3 * wheel_bits) then
    lx_insert s 2 c
  else begin
    let sk = s.ev_i.((4 * c) + 1) in
    s.ev_i.((4 * c) + 1) <- seqk_set_loc sk loc_ovf;
    Heap.push s.overflow
      {
        oat = t;
        otie =
          (match s.perturb_rng with
          | None -> 0
          | Some _ -> s.ev_tie.(c));
        oseq = seqk_seq sk;
        ocell = c;
      }
  end

(* Move the next occupied level-[l] slot's cells one level down. List
   order is insertion order (ascending seq per timestamp), which the
   lower-level inserts preserve, so ordering survives each cascade. *)
let cascade s l =
  let slot = scan_from s.bitmaps.(l) s.pos.(l) in
  let hts = s.hts.(l) in
  let c = ref hts.(2 * slot) in
  hts.(2 * slot) <- nil;
  hts.((2 * slot) + 1) <- nil;
  bit_clear s.bitmaps.(l) slot;
  s.pos.(l) <- slot;
  s.pos.(l - 1) <- 0;
  while !c >= 0 do
    let next = s.ev_i.((4 * !c) + 2) in
    s.counts.(l) <- s.counts.(l) - 1;
    if l = 1 then l0_insert s !c else lx_insert s 1 !c;
    c := next
  done

(* Refill the wheels with the overflow heap's earliest 2^39 ns cycle.
   Heap pops arrive in (at, tie, seq) order, so per-slot appends keep
   every list sorted. Cancelled cells were tombstoned in place (the
   binary heap has no O(1) removal) and are reclaimed here. *)
let drain_overflow s =
  match Heap.peek s.overflow with
  | None -> failwith "Engine: live events but empty wheel and overflow"
  | Some top ->
    let cyc = top.oat lsr (3 * wheel_bits) in
    s.pos.(0) <- 0;
    s.pos.(1) <- 0;
    s.pos.(2) <- 0;
    let continue_ = ref true in
    while !continue_ do
      match Heap.peek s.overflow with
      | Some o when o.oat lsr (3 * wheel_bits) = cyc ->
        ignore (Heap.pop s.overflow);
        if seqk_kind s.ev_i.((4 * o.ocell) + 1) = k_dead then
          free_cell s o.ocell
        else wheel_insert s ~ref_:top.oat o.ocell
      | _ -> continue_ := false
    done

(* Bring the earliest pending work down to level 0, or report the run
   finished. Level 0 always holds the earliest pending cells when
   nonempty: they live in the current 2 us cycle, while higher levels and
   the overflow heap only hold strictly later cycles. *)
let rec refill s =
  if s.live = 0 then false
  else if Array.unsafe_get s.counts 0 > 0 then true
  else if s.counts.(1) > 0 then begin
    cascade s 1;
    refill s
  end
  else if s.counts.(2) > 0 then begin
    cascade s 2;
    refill s
  end
  else begin
    drain_overflow s;
    refill s
  end

let wheel_reset s =
  for l = 0 to 2 do
    Array.fill s.hts.(l) 0 (2 * wheel_slots) nil;
    Array.fill s.bitmaps.(l) 0 bm_words 0;
    s.counts.(l) <- 0;
    s.pos.(l) <- 0
  done;
  Heap.clear s.overflow;
  let cap = Array.length s.ev_payload in
  for i = 0 to cap - 1 do
    s.ev_i.((4 * i) + 1) <- 0;
    s.ev_i.((4 * i) + 2) <- i + 1;
    s.ev_payload.(i) <- unit_obj;
    s.ev_name.(i) <- no_name
  done;
  s.ev_i.((4 * (cap - 1)) + 2) <- nil;
  s.free_head <- 0;
  s.live <- 0

(* ---------- timer cancellation ---------- *)

(* Cancel a pending timer: under the wheel, unlink the cell from its
   doubly-linked slot list and recycle it immediately (overflow-parked
   cells are tombstoned and reclaimed when their cycle drains); under the
   reference heap, tombstone the event for the run loop to skip. Either
   way the callback never fires, the executed event sequence is the same
   under both schedulers, and — unlike the pre-cancellation engine — a
   completed timed wait leaves nothing behind to churn through the
   scheduler. *)
let cancel tok =
  let s = state () in
  if tok = no_timer then false
  else if tok < 0 then begin
    (* reference heap: tombstone via the seq side table *)
    let seq = -tok in
    match Hashtbl.find_opt s.hcancel seq with
    | None -> false
    | Some ev ->
      ev.dead <- true;
      Hashtbl.remove s.hcancel seq;
      s.heap_dead <- s.heap_dead + 1;
      s.cancelled <- s.cancelled + 1;
      true
  end
  else begin
    let cell = tok lsr token_seq_bits in
    let seq = tok land token_seq_mask in
    let ev = s.ev_i in
    let sk = ev.((4 * cell) + 1) in
    if seqk_seq sk land token_seq_mask <> seq then false
      (* already fired (cell freed or recycled under a new seq) *)
    else begin
      let loc = seqk_loc sk in
      if loc = loc_free then false
      else if loc = loc_ovf then
        (* Overflow-parked cells are tombstoned in place (the heap entry
           still points at them) and reclaimed when their cycle drains;
           the tombstone keeps seq and loc, so a repeated cancel must be
           rejected on the kind. *)
        if seqk_kind sk = k_dead then false
        else begin
          ev.((4 * cell) + 1) <- seqk_set_kind sk k_dead;
          Array.unsafe_set s.ev_payload cell unit_obj;
          s.live <- s.live - 1;
          s.cancelled <- s.cancelled + 1;
          true
        end
      else begin
        let l = loc lsr wheel_bits and slot = loc land wheel_mask in
        let n = ev.((4 * cell) + 2) and p = ev.((4 * cell) + 3) in
        let hts = s.hts.(l) in
        if p >= 0 then ev.((4 * p) + 2) <- n else hts.(2 * slot) <- n;
        if n >= 0 then ev.((4 * n) + 3) <- p
        else hts.((2 * slot) + 1) <- p;
        if p < 0 && n < 0 then bit_clear s.bitmaps.(l) slot;
        s.counts.(l) <- s.counts.(l) - 1;
        s.live <- s.live - 1;
        free_cell s cell;
        s.cancelled <- s.cancelled + 1;
        true
      end
    end
  end

(* ---------- scheduling and fibers ---------- *)

type 'a waker = {
  mutable fired : bool;
  mutable resume : 'a -> unit;
  mutable deadline : timer;
}

let is_woken w = w.fired

type _ Effect.t +=
  | Sleep : time -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> unit Effect.t
  | Suspend : ('a waker -> unit) -> 'a Effect.t

(* [exec], [schedule_cell] and [heap_fn] are mutually recursive: fibers
   schedule cells from their effect handlers, and the reference scheduler
   wraps fiber-start cells back into closures over [exec]. *)
let rec exec name f =
  let open Effect.Deep in
  let s = state () in
  s.fibers <- s.fibers + 1;
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match e with
          | Fiber_failure _ -> raise e
          | e -> raise (Fiber_failure (name, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule_cell s (s.clock + d) k_cont (Obj.repr k) no_name)
          | Spawn (child_name, g) ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule_cell s s.clock k_fiber (Obj.repr g) child_name;
                continue k ())
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let w =
                  {
                    fired = false;
                    resume = (fun v -> continue k v);
                    deadline = no_timer;
                  }
                in
                register w)
          | _ -> None);
    }

and schedule_cell s at kind payload name =
  let at = if at < s.clock then s.clock else at in
  s.seqno <- s.seqno + 1;
  match s.perturb_rng with
  | None ->
    if s.use_heap then
      Heap.push s.queue
        {
          at;
          tie = 0;
          seq = s.seqno;
          fn = heap_fn kind payload name;
          dead = false;
        }
    else begin
      let c = alloc_cell s in
      Array.unsafe_set s.ev_i (4 * c) at;
      Array.unsafe_set s.ev_i ((4 * c) + 1) (seqk_make s.seqno kind);
      Array.unsafe_set s.ev_payload c payload;
      if name != no_name then Array.unsafe_set s.ev_name c name;
      s.live <- s.live + 1;
      wheel_insert s ~ref_:s.clock c
    end
  | Some prng ->
    let tie = Random.State.bits prng in
    if s.use_heap then
      Heap.push s.queue
        { at; tie; seq = s.seqno; fn = heap_fn kind payload name; dead = false }
    else begin
      let c = alloc_cell s in
      Array.unsafe_set s.ev_i (4 * c) at;
      Array.unsafe_set s.ev_i ((4 * c) + 1) (seqk_make s.seqno kind);
      Array.unsafe_set s.ev_tie c tie;
      Array.unsafe_set s.ev_payload c payload;
      if name != no_name then Array.unsafe_set s.ev_name c name;
      s.live <- s.live + 1;
      wheel_insert s ~ref_:s.clock c
    end

and heap_fn kind payload name =
  if kind = k_thunk then (Obj.obj payload : unit -> unit)
  else if kind = k_cont then fun () ->
    Effect.Deep.continue (Obj.obj payload : (unit, unit) Effect.Deep.continuation) ()
  else fun () -> exec name (Obj.obj payload)

let schedule at fn = schedule_cell (state ()) at k_fiber (Obj.repr fn) "at"

let wake w v =
  if w.fired then false
  else begin
    w.fired <- true;
    (* A normal wake cancels the waker's armed deadline (if any), so a
       completed timed wait leaves no dead timer behind in the wheel.
       When the deadline itself is doing the waking, its cell/table entry
       is already retired and this cancel is a no-op. *)
    (match w.deadline with
    | 0 -> ()
    | t ->
      w.deadline <- no_timer;
      ignore (cancel t : bool));
    (* Resume on a fresh event so wake never re-enters the waker's fiber
       from the middle of the caller's slice: determinism and no surprise
       reentrancy. *)
    let s = state () in
    schedule_cell s s.clock k_thunk (Obj.repr (fun () -> w.resume v)) no_name;
    true
  end

(* [now] reads the domain-local clock directly rather than performing an
   effect: it is hot on every fabric hop and, unlike the fiber effects,
   is safe from bare [call_at] callbacks too. *)
let now () =
  let s = state () in
  if not s.running then failwith "now: not inside Engine.run";
  s.clock

let sleep d =
  require_running "sleep";
  Effect.perform (Sleep (if d < 0 then 0 else d))

let sleep_until t =
  let n = now () in
  sleep (if t > n then t - n else 0)

let spawn ?(name = "fiber") f =
  require_running "spawn";
  Effect.perform (Spawn (name, f))

let yield () = sleep 0

let suspend register =
  require_running "suspend";
  Effect.perform (Suspend register)

let at t fn =
  require_running "at";
  schedule t fn

let after d fn = at ((state ()).clock + d) fn

let call_at t fn =
  let s = state () in
  if not s.running then failwith "call_at: not inside Engine.run";
  schedule_cell s t k_thunk (Obj.repr fn) no_name

let call_after d fn =
  let s = state () in
  if not s.running then failwith "call_after: not inside Engine.run";
  schedule_cell s (s.clock + d) k_thunk (Obj.repr fn) no_name

(* Like [call_at], but hands back a cancel token. The scheduled position
   (at, tie, seq) is identical to [call_at]'s, so converting a call site
   changes no schedule until a cancel actually removes the timer. *)
let timer_at t fn =
  let s = state () in
  if not s.running then failwith "timer_at: not inside Engine.run";
  let at = if t < s.clock then s.clock else t in
  s.seqno <- s.seqno + 1;
  let seq = s.seqno in
  let tie =
    match s.perturb_rng with
    | None -> 0
    | Some prng -> Random.State.bits prng
  in
  if s.use_heap then begin
    let ev =
      {
        at;
        tie;
        seq;
        fn =
          (fun () ->
            Hashtbl.remove s.hcancel seq;
            fn ());
        dead = false;
      }
    in
    Hashtbl.replace s.hcancel seq ev;
    Heap.push s.queue ev;
    -seq
  end
  else begin
    let c = alloc_cell s in
    Array.unsafe_set s.ev_i (4 * c) at;
    Array.unsafe_set s.ev_i ((4 * c) + 1) (seqk_make seq k_thunk);
    (match s.perturb_rng with
    | None -> ()
    | Some _ -> Array.unsafe_set s.ev_tie c tie);
    Array.unsafe_set s.ev_payload c (Obj.repr fn);
    s.live <- s.live + 1;
    wheel_insert s ~ref_:s.clock c;
    (c lsl token_seq_bits) lor (seq land token_seq_mask)
  end

let timer_after d fn =
  let s = state () in
  if not s.running then failwith "timer_after: not inside Engine.run";
  timer_at (s.clock + d) fn

let arm_timeout w d v =
  w.deadline <- timer_after d (fun () -> ignore (wake w v : bool))

let random_state () = (state ()).rng

let master_seed () = (state ()).seed

let events_executed () = (state ()).executed

let timers_cancelled () = (state ()).cancelled

(* Scheduled-but-unfired events. Under the wheel this is exact: cancelled
   cells are unlinked (or, overflow-parked, dropped from the count at
   cancel time); under the reference heap, tombstones are subtracted. *)
let pending_events () =
  let s = state () in
  if s.use_heap then Heap.length s.queue - s.heap_dead else s.live

let stop () = (state ()).stopping <- true

let fiber_count () = (state ()).fibers

let set_scheduler kind =
  let s = state () in
  if s.running then failwith "Engine.set_scheduler: not while running";
  let heap = kind = `Heap in
  s.use_heap <- heap;
  Atomic.set default_use_heap heap

let scheduler () = if (state ()).use_heap then `Heap else `Wheel

let run ?(seed = 42) ?(perturb = false) ?until main =
  let s = state () in
  if s.running then failwith "Engine.run: runs must not nest";
  s.running <- true;
  s.stopping <- false;
  s.clock <- 0;
  s.seqno <- 0;
  s.fibers <- 0;
  s.executed <- 0;
  s.cancelled <- 0;
  s.seed <- seed;
  s.heap_dead <- 0;
  Heap.clear s.queue;
  Hashtbl.reset s.hcancel;
  wheel_reset s;
  Slab.reset ();
  s.rng <- Random.State.make [| seed; 0x1a2706 |];
  s.perturb_rng <-
    (if perturb then Some (Random.State.make [| seed; 0x7e27b6 |]) else None);
  let finish () =
    s.running <- false;
    Heap.clear s.queue;
    Hashtbl.reset s.hcancel;
    s.heap_dead <- 0;
    wheel_reset s
  in
  let ulim = match until with None -> max_int | Some u -> u in
  Fun.protect ~finally:finish (fun () ->
      try
        schedule_cell s 0 k_fiber (Obj.repr main) "main";
        if s.use_heap then begin
          let continue_loop = ref true in
          while !continue_loop && not s.stopping do
            match Heap.pop s.queue with
            | None -> continue_loop := false
            | Some ev ->
              if ev.dead then s.heap_dead <- s.heap_dead - 1
              else if ev.at > ulim then continue_loop := false
              else begin
                s.clock <- ev.at;
                s.executed <- s.executed + 1;
                ev.fn ()
              end
          done
        end
        else begin
          (* Batched resumption: each outer iteration locates the
             earliest occupied level-0 slot — every pending event of one
             exact timestamp, in (tie, seq) order — and the inner loop
             pops and dispatches head-first until the slot empties. The
             slot list is the run queue: no copy, and every cell stays
             linked (hence cancellable via the normal O(1) unlink, same
             as a still-queued heap event) until the moment it fires.
             Events scheduled mid-batch for the same instant append to
             the draining slot with a larger seq, so they run at the
             batch's tail, exactly where the (at, tie, seq) order puts
             them. That tail-append argument needs ascending-seq
             tie-breaking; under ~perturb ties are random, so perturbed
             runs fall back to one full scan per event. *)
          let batch_all = s.perturb_rng = None in
          let continue_loop = ref true in
          while !continue_loop && not s.stopping do
            if not (refill s) then continue_loop := false
            else begin
              let bm0 = Array.unsafe_get s.bitmaps 0 in
              let slot = scan_from bm0 (Array.unsafe_get s.pos 0) in
              Array.unsafe_set s.pos 0 slot;
              let hts = Array.unsafe_get s.hts 0 in
              let ev = s.ev_i in
              let at = Array.unsafe_get ev (4 * Array.unsafe_get hts (2 * slot)) in
              if at > ulim then continue_loop := false
              else begin
                s.clock <- at;
                let draining = ref true in
                while !draining && not s.stopping do
                  let head = Array.unsafe_get hts (2 * slot) in
                  (* [ev_i] must be re-read per event: the one just
                     dispatched may have grown the pool, replacing the
                     arrays. ([hts] and the bitmaps are fixed-size.) *)
                  let ev = s.ev_i in
                  let hnext = Array.unsafe_get ev ((4 * head) + 2) in
                  Array.unsafe_set hts (2 * slot) hnext;
                  if hnext >= 0 then
                    Array.unsafe_set ev ((4 * hnext) + 3) nil
                  else begin
                    Array.unsafe_set hts ((2 * slot) + 1) nil;
                    bit_clear bm0 slot
                  end;
                  s.counts.(0) <- Array.unsafe_get s.counts 0 - 1;
                  s.live <- s.live - 1;
                  let k = Array.unsafe_get ev ((4 * head) + 1) land 3 in
                  let payload = Array.unsafe_get s.ev_payload head in
                  s.executed <- s.executed + 1;
                  if k = k_fiber then begin
                    let name = Array.unsafe_get s.ev_name head in
                    if name != no_name then
                      Array.unsafe_set s.ev_name head no_name;
                    free_cell s head;
                    exec name (Obj.obj payload)
                  end
                  else begin
                    free_cell s head;
                    if k = k_thunk then (Obj.obj payload : unit -> unit) ()
                    else
                      Effect.Deep.continue
                        (Obj.obj payload
                          : (unit, unit) Effect.Deep.continuation)
                        ()
                  end;
                  (* Re-read the head: the dispatched event may have
                     scheduled into, or cancelled from, this slot. *)
                  if (not batch_all) || Array.unsafe_get hts (2 * slot) < 0
                  then draining := false
                done
              end
            end
          done
        end
      with e ->
        (* Every failure names the master seed so it can be replayed. *)
        Printf.eprintf "Engine.run: aborting (master seed %d): %s\n%!" seed
          (Printexc.to_string e);
        raise e)
