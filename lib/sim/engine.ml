type time = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000
let us_f x = int_of_float ((x *. 1_000.) +. 0.5)
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.

(* [tie] breaks ties among equal-time events. In the default schedule it is
   0, so the [seq] FIFO order decides; under perturbation (ll_check) it is
   drawn from a per-run seeded stream, so one workload explores many legal
   interleavings while staying fully deterministic per seed.

   Events execute in strict ascending [(at, tie, seq)] order. Two
   schedulers implement that contract over the same cell stream:

   - the default hierarchical timer wheel (below), whose per-event cost is
     O(1) appends plus bitmap scans instead of O(log n) comparator sifts;
   - a reference binary heap over boxed event records — the pre-wheel
     implementation, kept selectable (see {!set_scheduler}) so equivalence
     tests and before/after benchmarks can run both on identical inputs.

   Since [seq] is unique, the order is total: any correct scheduler
   executes the identical sequence, which is what test_wheel.ml checks. *)

(* Event cells are pooled in struct-of-arrays form: scheduling an event
   writes five ints and one pointer into recycled slots instead of
   allocating a record plus a dispatch closure. [kind] selects how the run
   loop fires the cell: *)
let k_thunk = 0 (* payload : unit -> unit, called bare in the loop *)
let k_cont = 1 (* payload : (unit, unit) continuation (a sleeping fiber) *)
let k_fiber = 2 (* payload : unit -> unit, started as a fiber via [exec] *)

(* Wheel geometry: 3 levels of 2048 slots. Level 0 buckets by exact
   nanosecond (slot = at land mask), so a slot never mixes timestamps and
   FIFO append is already (tie, seq) order in unperturbed runs; level l
   slots cover 2048^l ns and cascade down when the clock reaches them.
   Level 2 spans 2^33 ns (~8.6 simulated seconds) from the current cycle
   origin; anything beyond falls back to a small overflow heap. 2048 keeps
   the level-0 slot array (2 ints per slot) at 32 KB — L1-resident, which
   measurably beats larger wheels at tens of Mevents/s. *)
let wheel_bits = 11
let wheel_slots = 1 lsl wheel_bits
let wheel_mask = wheel_slots - 1
let bm_words = wheel_slots lsr 5 (* occupancy bitmaps, 32 bits per word *)

(* Lowest set bit of a nonzero 32-bit value: (x land -x) is a power of
   two, and 2 is a primitive root mod 37, so [mod 37] is a perfect hash
   for the 32 possible isolated bits. *)
let lsb_table =
  let t = Array.make 37 0 in
  for i = 0 to 31 do
    t.((1 lsl i) mod 37) <- i
  done;
  t

let lowest_bit x = lsb_table.((x land -x) mod 37)

(* Overflow entries carry their key so the heap comparator never chases
   the (growable) pool arrays. Rare path: only timers beyond the current
   2^39 ns cycle land here. *)
type ovf = { oat : time; otie : int; oseq : int; ocell : int }

let ovf_cmp a b =
  let c = Int.compare a.oat b.oat in
  if c <> 0 then c
  else
    let c = Int.compare a.otie b.otie in
    if c <> 0 then c else Int.compare a.oseq b.oseq

(* Reference scheduler: the pre-wheel representation, one boxed record and
   one dispatch closure per event in a binary heap. *)
type event = { at : time; tie : int; seq : int; fn : unit -> unit }

(* Int.compare, not polymorphic compare: this runs on every heap sift of
   every scheduled event under the reference scheduler. *)
let event_cmp a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Int.compare a.tie b.tie in
    if c <> 0 then c else Int.compare a.seq b.seq

let nil = -1
let unit_obj = Obj.repr 0
let no_name = ""

(* Scheduler state is domain-local: each OS domain owns an independent
   engine, so seed sweeps (bin/lazylog_check) parallelize across domains
   with no shared state. Within a domain, runs are not reentrant and the
   simulation is single-fiber-at-a-time, so plain mutable fields are safe
   and fast. *)
type state = {
  mutable clock : time;
  mutable seqno : int;
  mutable running : bool;
  mutable stopping : bool;
  mutable fibers : int;
  mutable executed : int;
  mutable seed : int;
  mutable rng : Random.State.t;
  mutable perturb_rng : Random.State.t option;
  mutable use_heap : bool;
  (* reference scheduler *)
  queue : event Heap.t;
  (* Pooled cells. The int fields live interleaved in [ev_i] at stride 4
     — at, tie, seqk (seq lsl 2 lor kind), next — so touching a cell costs
     one cache line, not four; this is what keeps 10^5 live timers fast.
     The free list is threaded through the next field. [ev_name] holds
     fiber names and is only touched for fiber-start cells. *)
  mutable ev_i : int array;
  mutable ev_payload : Obj.t array;
  mutable ev_name : string array;
  mutable free_head : int;
  mutable live : int;
  (* wheel: per level, slot lists (head at [2*slot], tail at [2*slot+1],
     one cache line per touch), occupancy bitmap, live count, and current
     scan position *)
  hts : int array array;
  bitmaps : int array array;
  counts : int array;
  pos : int array;
  overflow : ovf Heap.t;
}

(* The default scheduler for freshly created domain states; flipped by
   {!set_scheduler} so spawned sweep domains inherit the choice. *)
let default_use_heap = Atomic.make false

let initial_pool = 1024

let fresh_state () =
  let ev_i = Array.make (4 * initial_pool) 0 in
  for i = 0 to initial_pool - 1 do
    ev_i.((4 * i) + 3) <- i + 1
  done;
  ev_i.((4 * (initial_pool - 1)) + 3) <- nil;
  {
    clock = 0;
    seqno = 0;
    running = false;
    stopping = false;
    fibers = 0;
    executed = 0;
    seed = 0;
    rng = Random.State.make [| 0 |];
    perturb_rng = None;
    use_heap = Atomic.get default_use_heap;
    queue = Heap.create ~cmp:event_cmp;
    ev_i;
    ev_payload = Array.make initial_pool unit_obj;
    ev_name = Array.make initial_pool no_name;
    free_head = 0;
    live = 0;
    hts = Array.init 3 (fun _ -> Array.make (2 * wheel_slots) nil);
    bitmaps = Array.init 3 (fun _ -> Array.make bm_words 0);
    counts = Array.make 3 0;
    pos = Array.make 3 0;
    overflow = Heap.create ~cmp:ovf_cmp;
  }

let dls : state Domain.DLS.key = Domain.DLS.new_key fresh_state

let state () = Domain.DLS.get dls

exception Fiber_failure of string * exn

let require_running what =
  if not (state ()).running then failwith (what ^ ": not inside Engine.run")

(* ---------- pooled cells ---------- *)

let grow_pool s =
  let cap = Array.length s.ev_payload in
  let ncap = cap * 2 in
  let copy a fill =
    let n = Array.make ncap fill in
    Array.blit a 0 n 0 cap;
    n
  in
  let ev_i = Array.make (4 * ncap) 0 in
  Array.blit s.ev_i 0 ev_i 0 (4 * cap);
  for i = cap to ncap - 1 do
    ev_i.((4 * i) + 3) <- i + 1
  done;
  ev_i.((4 * (ncap - 1)) + 3) <- s.free_head;
  s.ev_i <- ev_i;
  s.ev_payload <- copy s.ev_payload unit_obj;
  s.ev_name <- copy s.ev_name no_name;
  s.free_head <- cap

(* Pool and slot indices are in range by construction (cells come off the
   free list, slots are masked), so the per-event paths use unsafe array
   accessors: at millions of events per second the bounds checks are
   measurable. *)

let alloc_cell s =
  if s.free_head < 0 then grow_pool s;
  let c = s.free_head in
  s.free_head <- Array.unsafe_get s.ev_i ((4 * c) + 3);
  c

(* Fiber names are cleared at dispatch, not here, so the common (unnamed)
   cell never touches the name array. *)
let free_cell s c =
  Array.unsafe_set s.ev_payload c unit_obj;
  Array.unsafe_set s.ev_i ((4 * c) + 3) s.free_head;
  s.free_head <- c

(* ---------- wheel primitives ---------- *)

let bit_set bm slot =
  let w = slot lsr 5 in
  Array.unsafe_set bm w (Array.unsafe_get bm w lor (1 lsl (slot land 31)))

let bit_clear bm slot =
  let w = slot lsr 5 in
  Array.unsafe_set bm w
    (Array.unsafe_get bm w land lnot (1 lsl (slot land 31)))

(* First set bit at or after [start]; the caller guarantees one exists
   (the word scan stays bounds-checked so a broken invariant raises
   instead of reading wild memory). *)
let scan_from bm start =
  let w0 = start lsr 5 in
  let x = Array.unsafe_get bm w0 land (-1 lsl (start land 31)) in
  if x <> 0 then (w0 lsl 5) lor lowest_bit x
  else begin
    let w = ref (w0 + 1) in
    while bm.(!w) = 0 do
      incr w
    done;
    (!w lsl 5) lor lowest_bit bm.(!w)
  end

(* Level-0 slots hold a single exact timestamp, kept sorted by (tie, seq).
   Unperturbed cells arrive in ascending seq with tie 0, so the tail
   append fast path always hits; perturbed runs pay an O(slot) walk. *)
let l0_insert s c =
  let ev = s.ev_i in
  let slot = Array.unsafe_get ev (4 * c) land wheel_mask in
  let hts = Array.unsafe_get s.hts 0 in
  let tl = Array.unsafe_get hts ((2 * slot) + 1) in
  if tl < 0 then begin
    Array.unsafe_set hts (2 * slot) c;
    Array.unsafe_set hts ((2 * slot) + 1) c;
    Array.unsafe_set ev ((4 * c) + 3) nil;
    bit_set (Array.unsafe_get s.bitmaps 0) slot
  end
  else begin
    let after_of a b =
      (* does [a] order after [b]? same timestamp, so (tie, seq) decides;
         seqk compares like seq because seq is unique *)
      let c = Int.compare ev.((4 * a) + 1) ev.((4 * b) + 1) in
      if c <> 0 then c > 0 else ev.((4 * a) + 2) > ev.((4 * b) + 2)
    in
    if after_of c tl then begin
      Array.unsafe_set ev ((4 * tl) + 3) c;
      Array.unsafe_set ev ((4 * c) + 3) nil;
      Array.unsafe_set hts ((2 * slot) + 1) c
    end
    else begin
      let hd = Array.unsafe_get hts (2 * slot) in
      if not (after_of c hd) then begin
        Array.unsafe_set ev ((4 * c) + 3) hd;
        Array.unsafe_set hts (2 * slot) c
      end
      else begin
        let p = ref hd in
        while
          ev.((4 * !p) + 3) >= 0 && after_of c ev.((4 * !p) + 3)
        do
          p := ev.((4 * !p) + 3)
        done;
        ev.((4 * c) + 3) <- ev.((4 * !p) + 3);
        ev.((4 * !p) + 3) <- c
      end
    end
  end;
  s.counts.(0) <- s.counts.(0) + 1

(* Levels >= 1 are plain FIFO appends; order within a coarse slot is
   resolved when it cascades down. *)
let lx_insert s l c =
  let ev = s.ev_i in
  let slot = (ev.(4 * c) lsr (wheel_bits * l)) land wheel_mask in
  let hts = s.hts.(l) in
  let tl = hts.((2 * slot) + 1) in
  if tl < 0 then begin
    hts.(2 * slot) <- c;
    bit_set s.bitmaps.(l) slot
  end
  else ev.((4 * tl) + 3) <- c;
  ev.((4 * c) + 3) <- nil;
  hts.((2 * slot) + 1) <- c;
  s.counts.(l) <- s.counts.(l) + 1

(* Insert relative to reference time [ref_] (the clock, except while
   draining the overflow heap into a far-future cycle). *)
let wheel_insert s ~ref_ c =
  let t = s.ev_i.(4 * c) in
  if t lsr wheel_bits = ref_ lsr wheel_bits then l0_insert s c
  else if t lsr (2 * wheel_bits) = ref_ lsr (2 * wheel_bits) then
    lx_insert s 1 c
  else if t lsr (3 * wheel_bits) = ref_ lsr (3 * wheel_bits) then
    lx_insert s 2 c
  else
    Heap.push s.overflow
      {
        oat = t;
        otie = s.ev_i.((4 * c) + 1);
        oseq = s.ev_i.((4 * c) + 2);
        ocell = c;
      }

(* Move the next occupied level-[l] slot's cells one level down. List
   order is insertion order (ascending seq per timestamp), which the
   lower-level inserts preserve, so ordering survives each cascade. *)
let cascade s l =
  let slot = scan_from s.bitmaps.(l) s.pos.(l) in
  let hts = s.hts.(l) in
  let c = ref hts.(2 * slot) in
  hts.(2 * slot) <- nil;
  hts.((2 * slot) + 1) <- nil;
  bit_clear s.bitmaps.(l) slot;
  s.pos.(l) <- slot;
  s.pos.(l - 1) <- 0;
  while !c >= 0 do
    let next = s.ev_i.((4 * !c) + 3) in
    s.counts.(l) <- s.counts.(l) - 1;
    if l = 1 then l0_insert s !c else lx_insert s 1 !c;
    c := next
  done

(* Refill the wheels with the overflow heap's earliest 2^39 ns cycle.
   Heap pops arrive in (at, tie, seq) order, so per-slot appends keep
   every list sorted. *)
let drain_overflow s =
  match Heap.peek s.overflow with
  | None -> ()
  | Some top ->
    let cyc = top.oat lsr (3 * wheel_bits) in
    s.pos.(0) <- 0;
    s.pos.(1) <- 0;
    s.pos.(2) <- 0;
    let continue_ = ref true in
    while !continue_ do
      match Heap.peek s.overflow with
      | Some o when o.oat lsr (3 * wheel_bits) = cyc ->
        ignore (Heap.pop s.overflow);
        wheel_insert s ~ref_:top.oat o.ocell
      | _ -> continue_ := false
    done

(* Pop the minimum cell, or [nil]. Level 0 always holds the earliest
   pending work when nonempty: its cells live in the current 8192 ns
   cycle, while higher levels and the overflow heap only hold strictly
   later cycles. *)
let rec wheel_pop s =
  if s.live = 0 then nil
  else if Array.unsafe_get s.counts 0 > 0 then begin
    let bm0 = Array.unsafe_get s.bitmaps 0 in
    let hts = Array.unsafe_get s.hts 0 in
    let slot = scan_from bm0 (Array.unsafe_get s.pos 0) in
    Array.unsafe_set s.pos 0 slot;
    let c = Array.unsafe_get hts (2 * slot) in
    let n = Array.unsafe_get s.ev_i ((4 * c) + 3) in
    Array.unsafe_set hts (2 * slot) n;
    if n < 0 then begin
      Array.unsafe_set hts ((2 * slot) + 1) nil;
      bit_clear bm0 slot
    end;
    Array.unsafe_set s.counts 0 (Array.unsafe_get s.counts 0 - 1);
    s.live <- s.live - 1;
    c
  end
  else if s.counts.(1) > 0 then begin
    cascade s 1;
    wheel_pop s
  end
  else if s.counts.(2) > 0 then begin
    cascade s 2;
    wheel_pop s
  end
  else begin
    drain_overflow s;
    wheel_pop s
  end

let wheel_reset s =
  for l = 0 to 2 do
    Array.fill s.hts.(l) 0 (2 * wheel_slots) nil;
    Array.fill s.bitmaps.(l) 0 bm_words 0;
    s.counts.(l) <- 0;
    s.pos.(l) <- 0
  done;
  Heap.clear s.overflow;
  let cap = Array.length s.ev_payload in
  for i = 0 to cap - 1 do
    s.ev_i.((4 * i) + 3) <- i + 1;
    s.ev_payload.(i) <- unit_obj;
    s.ev_name.(i) <- no_name
  done;
  s.ev_i.((4 * (cap - 1)) + 3) <- nil;
  s.free_head <- 0;
  s.live <- 0

(* ---------- scheduling and fibers ---------- *)

type 'a waker = { mutable fired : bool; mutable resume : 'a -> unit }

let is_woken w = w.fired

type _ Effect.t +=
  | Sleep : time -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> unit Effect.t
  | Suspend : ('a waker -> unit) -> 'a Effect.t

(* [exec], [schedule_cell] and [heap_fn] are mutually recursive: fibers
   schedule cells from their effect handlers, and the reference scheduler
   wraps fiber-start cells back into closures over [exec]. *)
let rec exec name f =
  let open Effect.Deep in
  let s = state () in
  s.fibers <- s.fibers + 1;
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match e with
          | Fiber_failure _ -> raise e
          | e -> raise (Fiber_failure (name, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule_cell s (s.clock + d) k_cont (Obj.repr k) no_name)
          | Spawn (child_name, g) ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule_cell s s.clock k_fiber (Obj.repr g) child_name;
                continue k ())
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let w = { fired = false; resume = (fun v -> continue k v) } in
                register w)
          | _ -> None);
    }

and schedule_cell s at kind payload name =
  let at = if at < s.clock then s.clock else at in
  s.seqno <- s.seqno + 1;
  let tie =
    match s.perturb_rng with
    | None -> 0
    | Some prng -> Random.State.bits prng
  in
  if s.use_heap then
    Heap.push s.queue { at; tie; seq = s.seqno; fn = heap_fn kind payload name }
  else begin
    let c = alloc_cell s in
    let ev = s.ev_i in
    Array.unsafe_set ev (4 * c) at;
    Array.unsafe_set ev ((4 * c) + 1) tie;
    Array.unsafe_set ev ((4 * c) + 2) ((s.seqno lsl 2) lor kind);
    Array.unsafe_set s.ev_payload c payload;
    if name != no_name then Array.unsafe_set s.ev_name c name;
    s.live <- s.live + 1;
    wheel_insert s ~ref_:s.clock c
  end

and heap_fn kind payload name =
  if kind = k_thunk then (Obj.obj payload : unit -> unit)
  else if kind = k_cont then fun () ->
    Effect.Deep.continue (Obj.obj payload : (unit, unit) Effect.Deep.continuation) ()
  else fun () -> exec name (Obj.obj payload)

let schedule at fn = schedule_cell (state ()) at k_fiber (Obj.repr fn) "at"

let wake w v =
  if w.fired then false
  else begin
    w.fired <- true;
    (* Resume on a fresh event so wake never re-enters the waker's fiber
       from the middle of the caller's slice: determinism and no surprise
       reentrancy. *)
    let s = state () in
    schedule_cell s s.clock k_thunk (Obj.repr (fun () -> w.resume v)) no_name;
    true
  end

(* [now] reads the domain-local clock directly rather than performing an
   effect: it is hot on every fabric hop and, unlike the fiber effects,
   is safe from bare [call_at] callbacks too. *)
let now () =
  let s = state () in
  if not s.running then failwith "now: not inside Engine.run";
  s.clock

let sleep d =
  require_running "sleep";
  Effect.perform (Sleep (if d < 0 then 0 else d))

let sleep_until t =
  let n = now () in
  sleep (if t > n then t - n else 0)

let spawn ?(name = "fiber") f =
  require_running "spawn";
  Effect.perform (Spawn (name, f))

let yield () = sleep 0

let suspend register =
  require_running "suspend";
  Effect.perform (Suspend register)

let at t fn =
  require_running "at";
  schedule t fn

let after d fn = at ((state ()).clock + d) fn

let call_at t fn =
  let s = state () in
  if not s.running then failwith "call_at: not inside Engine.run";
  schedule_cell s t k_thunk (Obj.repr fn) no_name

let call_after d fn =
  let s = state () in
  if not s.running then failwith "call_after: not inside Engine.run";
  schedule_cell s (s.clock + d) k_thunk (Obj.repr fn) no_name

let random_state () = (state ()).rng

let master_seed () = (state ()).seed

let events_executed () = (state ()).executed

let stop () = (state ()).stopping <- true

let fiber_count () = (state ()).fibers

let set_scheduler kind =
  let s = state () in
  if s.running then failwith "Engine.set_scheduler: not while running";
  let heap = kind = `Heap in
  s.use_heap <- heap;
  Atomic.set default_use_heap heap

let scheduler () = if (state ()).use_heap then `Heap else `Wheel

let run ?(seed = 42) ?(perturb = false) ?until main =
  let s = state () in
  if s.running then failwith "Engine.run: runs must not nest";
  s.running <- true;
  s.stopping <- false;
  s.clock <- 0;
  s.seqno <- 0;
  s.fibers <- 0;
  s.executed <- 0;
  s.seed <- seed;
  Heap.clear s.queue;
  wheel_reset s;
  s.rng <- Random.State.make [| seed; 0x1a2706 |];
  s.perturb_rng <-
    (if perturb then Some (Random.State.make [| seed; 0x7e27b6 |]) else None);
  let finish () =
    s.running <- false;
    Heap.clear s.queue;
    wheel_reset s
  in
  let ulim = match until with None -> max_int | Some u -> u in
  Fun.protect ~finally:finish (fun () ->
      try
        schedule_cell s 0 k_fiber (Obj.repr main) "main";
        if s.use_heap then begin
          let continue_loop = ref true in
          while !continue_loop && not s.stopping do
            match Heap.pop s.queue with
            | None -> continue_loop := false
            | Some ev ->
              if ev.at > ulim then continue_loop := false
              else begin
                s.clock <- ev.at;
                s.executed <- s.executed + 1;
                ev.fn ()
              end
          done
        end
        else begin
          let continue_loop = ref true in
          while !continue_loop && not s.stopping do
            let c = wheel_pop s in
            if c < 0 then continue_loop := false
            else begin
              let at = Array.unsafe_get s.ev_i (4 * c) in
              if at > ulim then continue_loop := false
              else begin
                s.clock <- at;
                s.executed <- s.executed + 1;
                let kind = Array.unsafe_get s.ev_i ((4 * c) + 2) land 3 in
                let payload = Array.unsafe_get s.ev_payload c in
                if kind = k_thunk then begin
                  free_cell s c;
                  (Obj.obj payload : unit -> unit) ()
                end
                else if kind = k_cont then begin
                  free_cell s c;
                  Effect.Deep.continue
                    (Obj.obj payload : (unit, unit) Effect.Deep.continuation)
                    ()
                end
                else begin
                  let name = Array.unsafe_get s.ev_name c in
                  Array.unsafe_set s.ev_name c no_name;
                  free_cell s c;
                  exec name (Obj.obj payload)
                end
              end
            end
          done
        end
      with e ->
        (* Every failure names the master seed so it can be replayed. *)
        Printf.eprintf "Engine.run: aborting (master seed %d): %s\n%!" seed
          (Printexc.to_string e);
        raise e)
