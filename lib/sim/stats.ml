module Reservoir = struct
  type t = {
    name : string;
    mutable data : int array;
    mutable size : int;
    mutable sorted : bool;
  }

  let create ?(name = "latency") () =
    { name; data = [||]; size = 0; sorted = true }

  let add t ns =
    let cap = Array.length t.data in
    if t.size >= cap then begin
      let ncap = if cap = 0 then 1024 else cap * 2 in
      let ndata = Array.make ncap 0 in
      Array.blit t.data 0 ndata 0 t.size;
      t.data <- ndata
    end;
    t.data.(t.size) <- ns;
    t.size <- t.size + 1;
    t.sorted <- false

  let count t = t.size

  (* Int.compare, not polymorphic compare: reservoirs hold millions of
     samples after a bench run and the polymorphic path dominates
     post-processing cost. *)
  let ensure_sorted t =
    if not t.sorted then begin
      if t.size = Array.length t.data then Array.sort Int.compare t.data
      else begin
        let sub = Array.sub t.data 0 t.size in
        Array.sort Int.compare sub;
        Array.blit sub 0 t.data 0 t.size
      end;
      t.sorted <- true
    end

  let mean_us t =
    if t.size = 0 then nan
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.size - 1 do
        sum := !sum +. float_of_int t.data.(i)
      done;
      !sum /. float_of_int t.size /. 1_000.
    end

  let percentile_us t p =
    if t.size = 0 then nan
    else begin
      ensure_sorted t;
      let rank = p /. 100.0 *. float_of_int (t.size - 1) in
      let lo = int_of_float rank in
      let hi = if lo + 1 < t.size then lo + 1 else lo in
      let a = t.data.(lo) and b = t.data.(hi) in
      if a = b then float_of_int a /. 1_000.
      else begin
        let frac = rank -. float_of_int lo in
        ((float_of_int a *. (1.0 -. frac)) +. (float_of_int b *. frac))
        /. 1_000.
      end
    end

  let min_us t = percentile_us t 0.0
  let max_us t = percentile_us t 100.0

  let stddev_us t =
    if t.size < 2 then 0.0
    else begin
      let m = mean_us t *. 1_000. in
      let acc = ref 0.0 in
      for i = 0 to t.size - 1 do
        let d = float_of_int t.data.(i) -. m in
        acc := !acc +. (d *. d)
      done;
      sqrt (!acc /. float_of_int (t.size - 1)) /. 1_000.
    end

  let cdf t ~points =
    if t.size = 0 then []
    else begin
      ensure_sorted t;
      let out = ref [] in
      for i = points downto 1 do
        let pct = 100.0 *. float_of_int i /. float_of_int points in
        let idx =
          int_of_float (float_of_int (t.size - 1) *. pct /. 100.0)
        in
        out := (float_of_int t.data.(idx) /. 1_000., pct) :: !out
      done;
      !out
    end

  let merge ts =
    let m = create ~name:"merged" () in
    List.iter
      (fun t ->
        for i = 0 to t.size - 1 do
          add m t.data.(i)
        done)
      ts;
    m

  let clear t =
    t.size <- 0;
    t.sorted <- true

  let name t = t.name
end

module Timeline = struct
  type t = { bin : Engine.time; counts : (int, int ref) Hashtbl.t }

  let create ~bin = { bin; counts = Hashtbl.create 64 }

  let record_n t ~at ~n =
    let b = at / t.bin in
    match Hashtbl.find_opt t.counts b with
    | Some r -> r := !r + n
    | None -> Hashtbl.add t.counts b (ref n)

  let record t ~at = record_n t ~at ~n:1

  let series t =
    let bins =
      Hashtbl.fold (fun b r acc -> (b, !r) :: acc) t.counts []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let bin_sec = Engine.to_sec t.bin in
    List.map
      (fun (b, n) ->
        (float_of_int b *. bin_sec, float_of_int n /. bin_sec))
      bins

  let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t.counts 0
end

module Histogram = struct
  (* Power-of-two buckets: bucket b counts samples in [2^(b-1), 2^b - 1]
     (bucket 0 counts v <= 0). Constant memory, O(1) add — suited to
     per-batch series (batch sizes, pipeline depths) recorded on the
     orderer's hot path. *)
  type t = {
    name : string;
    counts : int array;
    mutable total : int;
    mutable max_sample : int;
  }

  let buckets_len = 63

  let create ?(name = "hist") () =
    { name; counts = Array.make buckets_len 0; total = 0; max_sample = 0 }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 in
      let v = ref v in
      while !v <> 0 do
        incr b;
        v := !v lsr 1
      done;
      !b
    end

  let add t v =
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.total <- t.total + 1;
    if v > t.max_sample then t.max_sample <- v

  let total t = t.total
  let max_sample t = t.max_sample

  let buckets t =
    let out = ref [] in
    for b = buckets_len - 1 downto 0 do
      if t.counts.(b) > 0 then begin
        let lo = if b = 0 then 0 else 1 lsl (b - 1) in
        let hi = if b = 0 then 0 else (1 lsl b) - 1 in
        out := (lo, hi, t.counts.(b)) :: !out
      end
    done;
    !out

  let clear t =
    Array.fill t.counts 0 buckets_len 0;
    t.total <- 0;
    t.max_sample <- 0

  let name t = t.name
end

module Counter = struct
  type t = int ref

  let create () = ref 0
  let incr t = Stdlib.incr t
  let add t n = t := !t + n
  let get t = !t
end

let throughput_per_sec ~count ~dur =
  if dur <= 0 then 0.0 else float_of_int count /. Engine.to_sec dur
