type 'a t = {
  items : 'a Queue.t;
  waiters : 'a option Engine.waker Queue.t;
}

let create () = { items = Queue.create (); waiters = Queue.create () }

(* Deliver [v] to the first waiter that has not already been woken (e.g. by
   a timeout); returns false when no live waiter remains. *)
let rec deliver_to_waiter t v =
  match Queue.take_opt t.waiters with
  | None -> false
  | Some w -> if Engine.wake w (Some v) then true else deliver_to_waiter t v

let send t v = if not (deliver_to_waiter t v) then Queue.push v t.items

let recv t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None -> (
    match Engine.suspend (fun w -> Queue.push w t.waiters) with
    | Some v -> v
    | None -> assert false)

let recv_timeout t ~timeout =
  match Queue.take_opt t.items with
  | Some v -> Some v
  | None ->
    Engine.suspend (fun w ->
        Queue.push w t.waiters;
        (* call_after: the timeout thunk only wakes, no fiber needed *)
        Engine.call_after timeout (fun () -> ignore (Engine.wake w None)))

let try_recv t = Queue.take_opt t.items

let length t = Queue.length t.items

let clear t = Queue.clear t.items
