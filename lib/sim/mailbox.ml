(* Items and blocked receivers both live in intrusive slab lists (head /
   tail node indices into the per-domain {!Slab}), so send/recv allocate
   nothing in steady state — the previous [Queue.t] representation paid a
   minor-heap cell per message and per waiter, which dominates at 10^6
   parked producers. FIFO order of both lists is unchanged. *)
type 'a t = {
  mutable ihead : int;
  mutable itail : int;
  mutable ilen : int;
  mutable whead : int;
  mutable wtail : int;
}

let create () =
  {
    ihead = Slab.nil;
    itail = Slab.nil;
    ilen = 0;
    whead = Slab.nil;
    wtail = Slab.nil;
  }

(* Deliver [v] to the first waiter that has not already been woken (e.g. by
   a timeout); returns false when no live waiter remains. Dead waiters'
   nodes are freed here, lazily, exactly when the old queue dropped them. *)
let rec deliver_to_waiter : 'a. 'a t -> 'a -> bool =
 fun t v ->
  if t.whead < 0 then false
  else begin
    let n = t.whead in
    let w : 'a option Engine.waker = Obj.obj (Slab.get n) in
    t.whead <- Slab.next n;
    if t.whead < 0 then t.wtail <- Slab.nil;
    Slab.free n;
    if Engine.wake w (Some v) then true else deliver_to_waiter t v
  end

let send t v =
  if not (deliver_to_waiter t v) then begin
    let n = Slab.alloc (Obj.repr v) in
    if t.itail < 0 then t.ihead <- n else Slab.set_next t.itail n;
    t.itail <- n;
    t.ilen <- t.ilen + 1
  end

let take_item t =
  if t.ihead < 0 then None
  else begin
    let n = t.ihead in
    let v = Obj.obj (Slab.get n) in
    t.ihead <- Slab.next n;
    if t.ihead < 0 then t.itail <- Slab.nil;
    Slab.free n;
    t.ilen <- t.ilen - 1;
    Some v
  end

let park t w =
  let n = Slab.alloc (Obj.repr w) in
  if t.wtail < 0 then t.whead <- n else Slab.set_next t.wtail n;
  t.wtail <- n

let recv t =
  match take_item t with
  | Some v -> v
  | None -> (
    match Engine.suspend (fun w -> park t w) with
    | Some v -> v
    | None -> assert false)

let recv_timeout t ~timeout =
  match take_item t with
  | Some v -> Some v
  | None ->
    Engine.suspend (fun w ->
        park t w;
        (* the deadline cell is cancelled automatically when a send wakes
           this waiter first — no dead timer left in the wheel *)
        Engine.arm_timeout w timeout None)

let try_recv t = take_item t

let length t = t.ilen

let clear t =
  let c = ref t.ihead in
  while !c >= 0 do
    let next = Slab.next !c in
    Slab.free !c;
    c := next
  done;
  t.ihead <- Slab.nil;
  t.itail <- Slab.nil;
  t.ilen <- 0
