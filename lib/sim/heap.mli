(** Array-backed binary min-heap.

    Used as the event queue of the simulation {!Engine}, and available to any
    other component that needs a priority queue. Elements are ordered by the
    comparison function supplied at creation; ties are resolved by it as
    well, so callers that need a stable order must encode a sequence number
    in their elements. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** [pop t] removes and returns the minimum element, if any. The backing
    array retains no reference to popped elements (beyond, transiently,
    the last element popped from a heap that became empty). *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list t] is the heap's contents in unspecified order. *)
