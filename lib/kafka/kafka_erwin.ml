open Ll_sim
open Lazylog

let create ?(cfg = Config.default) ?(kafka_config = Kafka.default_config) () =
  (* No native shards: the log's ordered portion lives in Kafka. *)
  let cfg = { cfg with Config.nshards = 0 } in
  let cluster = Erwin_common.create ~cfg ~mode:Erwin_common.M in
  let kafka = Kafka.create ~config:kafka_config () in
  let nparts = Kafka.partitions kafka in
  let ep = Erwin_common.new_endpoint cluster ~name:"kafka-orderer" in
  (* Background ordering: leader log -> positioned batches -> Kafka
     partitions (position mod npartitions), then GC and stable-gp. *)
  Engine.spawn ~name:"kafka-erwin.orderer" (fun () ->
      let rec loop () =
        Engine.sleep cfg.Config.order_interval;
        let ldr = Erwin_common.leader cluster in
        if
          Ll_net.Fabric.is_alive (Seq_replica.node ldr)
          && not (Seq_replica.is_sealed ldr)
        then begin
          let slog = Seq_replica.log ldr in
          let entries = Seq_log.unordered slog ~max:cfg.Config.max_batch () in
          if entries <> [] then begin
            let base = Seq_log.last_ordered_gp slog in
            let slots = List.mapi (fun i e -> (base + i, e)) entries in
            let groups = Array.make nparts [] in
            List.iter
              (fun (gp, entry) ->
                match (entry : Types.entry) with
                | Types.Data r -> groups.(gp mod nparts) <- r :: groups.(gp mod nparts)
                | Types.Meta _ -> assert false)
              slots;
            let pushes =
              List.filter_map Fun.id
                (List.init nparts (fun pid ->
                     match List.rev groups.(pid) with
                     | [] -> None
                     | batch ->
                       let iv = Ivar.create () in
                       Engine.spawn (fun () ->
                           ignore
                             (Kafka.produce_batch kafka ~partition:pid batch
                               : int);
                           Ivar.fill iv ());
                       Some iv))
            in
            ignore (Ivar.join_all pushes : unit list);
            let gc_slots =
              List.map (fun (gp, e) -> (gp, Types.entry_rid e)) slots
            in
            let new_gp = base + List.length entries in
            Seq_replica.apply_gc ldr ~slots:gc_slots ~new_gp;
            let view = cluster.Erwin_common.view in
            let acks =
              List.map
                (fun f ->
                  Ll_net.Rpc.call_async ep
                    ~dst:(Seq_replica.node_id f)
                    (Proto.Sr_gc { view; slots = gc_slots; new_gp }))
                (Erwin_common.followers cluster)
            in
            ignore (Ivar.join_all acks : Proto.resp list);
            cluster.Erwin_common.stable_gp <- new_gp;
            cluster.Erwin_common.batches <- cluster.Erwin_common.batches + 1;
            cluster.Erwin_common.batched_entries <-
              cluster.Erwin_common.batched_entries + List.length entries
          end
        end;
        loop ()
      in
      loop ());
  (cluster, kafka)

let client ((cluster, kafka) : Erwin_common.t * Kafka.t) : Log_api.t =
  let cid = Erwin_common.fresh_client_id cluster in
  let ep =
    Erwin_common.new_endpoint cluster
      ~name:(Printf.sprintf "kafka-erwin-client%d" cid)
  in
  let nparts = Kafka.partitions kafka in
  let seq = ref 0 in
  let append ~size ~data =
    incr seq;
    let rid = { Types.Rid.client = cid; seq = !seq } in
    let r = Types.record ~rid ~size ~data () in
    Client_core.append_entry cluster ep ~track:false (Types.Data r);
    true
  in
  let read ~from ~len =
    (* Serve only the stable (Kafka-resident) portion; wait otherwise. *)
    let rec wait_stable () =
      if cluster.Erwin_common.stable_gp < from + len then begin
        Engine.sleep cluster.Erwin_common.cfg.Config.order_interval;
        wait_stable ()
      end
    in
    wait_stable ();
    let out = ref [] in
    for pid = 0 to nparts - 1 do
      let offsets =
        List.filter_map
          (fun gp -> if gp mod nparts = pid then Some (gp / nparts) else None)
          (List.init len (fun i -> from + i))
      in
      match offsets with
      | [] -> ()
      | lo :: _ as offsets ->
        let hi = List.fold_left max lo offsets in
        let records =
          Kafka.fetch kafka ~partition:pid ~offset:lo ~max:(hi - lo + 1)
        in
        List.iter
          (fun o ->
            match List.assoc_opt o records with
            | Some r -> out := ((o * nparts) + pid, r) :: !out
            | None -> ())
          offsets
    done;
    List.sort (fun (a, _) (b, _) -> Int.compare a b) !out |> List.map snd
  in
  {
    Log_api.name = "erwin-m/kafka";
    append;
    read;
    check_tail = (fun () -> Client_core.check_tail cluster ep);
    trim = (fun ~upto:_ -> true);
    append_sync = None;
  }
