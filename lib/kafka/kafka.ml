open Ll_sim
open Ll_net
open Ll_storage

type config = {
  npartitions : int;
  replicas : int;
  linger : Engine.time;
  max_batch : int;
  broker_base_ns : int;
  rpc_overhead : Engine.time;
  link : Fabric.link;
  disk : Lazylog.Config.disk_kind;
}

let default_config =
  {
    npartitions = 1;
    replicas = 3;
    linger = Engine.ms 5;
    max_batch = 512;
    broker_base_ns = 4_000;
    rpc_overhead = Engine.us 80;
    link = Fabric.default_link;
    disk = Lazylog.Config.Sata;
  }

type req =
  | Produce of { batch : Lazylog.Types.record list }
  | Replicate of { base : int; batch : Lazylog.Types.record list }
  | Fetch of { offset : int; max : int }
  | Truncate of { from : int }
  | Tail

type resp =
  | R_base of int
  | R_ok
  | R_tail of int
  | R_records of (int * Lazylog.Types.record) list

let batch_size batch =
  List.fold_left
    (fun acc (r : Lazylog.Types.record) -> acc + r.size + 16)
    0 batch

let req_size = function
  | Produce { batch } | Replicate { batch; _ } -> batch_size batch
  | Fetch _ | Truncate _ | Tail -> 32

let resp_size = function
  | R_records records -> batch_size (List.map snd records)
  | R_base _ | R_ok | R_tail _ -> 16

type broker = {
  node : (req, resp) Rpc.msg Fabric.node;
  ep : (req, resp) Rpc.endpoint;
  store : Lazylog.Types.record Flushed_store.t;
}

type partition = {
  pid : int;
  leader : broker;
  followers : broker list;
  mutable tail : int;
  written : Waitq.t;
}

type t = {
  config : config;
  fabric : (req, resp) Rpc.msg Fabric.t;
  parts : partition array;
  mutable next_client : int;
}

let partitions t = Array.length t.parts

let make_broker t ~name =
  let node =
    Fabric.add_node t.fabric ~name ~send_overhead:t.config.rpc_overhead
      ~recv_overhead:t.config.rpc_overhead ()
  in
  let ep = Rpc.endpoint t.fabric node in
  let disk =
    match t.config.disk with
    | Lazylog.Config.Sata -> Disk.sata_ssd ()
    | Lazylog.Config.Nvme -> Disk.nvme_ssd ()
  in
  Rpc.set_service_time ep (fun r ->
      t.config.broker_base_ns
      + int_of_float (0.35 *. float_of_int (req_size r)));
  { node; ep; store = Flushed_store.create ~disk () }

let store_batch store ~base batch =
  Flushed_store.append_batch store
    (List.mapi
       (fun i (r : Lazylog.Types.record) -> (base + i, r.size, r))
       batch)

let install_partition p =
  Rpc.set_handler p.leader.ep (fun ~src:_ req ~reply ->
      match req with
      | Produce { batch } ->
        let base = p.tail in
        p.tail <- base + List.length batch;
        store_batch p.leader.store ~base batch;
        (* acks=all: synchronous replication to every follower. *)
        let r = Replicate { base; batch } in
        let acks =
          List.map
            (fun f ->
              Rpc.call_async p.leader.ep ~dst:(Fabric.id f.node)
                ~size:(req_size r) r)
            p.followers
        in
        ignore (Ivar.join_all acks : resp list);
        Waitq.broadcast p.written;
        reply (R_base base)
      | Fetch { offset; max } ->
        Waitq.await p.written (fun () ->
            Flushed_store.length p.leader.store > offset);
        let upto = min p.tail (offset + max) in
        let records = ref [] in
        for o = upto - 1 downto offset do
          match Flushed_store.read p.leader.store ~pos:o with
          | Some r -> records := (o, r) :: !records
          | None -> ()
        done;
        reply ~size:(resp_size (R_records !records)) (R_records !records)
      | Truncate { from } ->
        Flushed_store.truncate p.leader.store from;
        if from < p.tail then p.tail <- from;
        List.iter
          (fun f ->
            Rpc.send_oneway p.leader.ep ~dst:(Fabric.id f.node)
              (Truncate { from }))
          p.followers;
        reply R_ok
      | Tail -> reply (R_tail p.tail)
      | Replicate _ -> failwith "kafka leader: unexpected replicate");
  List.iter
    (fun f ->
      Rpc.set_handler f.ep (fun ~src:_ req ~reply ->
          match req with
          | Replicate { base; batch } ->
            store_batch f.store ~base batch;
            reply R_ok
          | Truncate { from } ->
            Flushed_store.truncate f.store from;
            reply R_ok
          | _ -> failwith "kafka follower: unexpected request"))
    p.followers

let create ?(config = default_config) () =
  let fabric = Fabric.create ~link:config.link () in
  let t = { config; fabric; parts = [||]; next_client = 0 } in
  let t =
    {
      t with
      parts =
        Array.init config.npartitions (fun pid ->
            let leader = make_broker t ~name:(Printf.sprintf "kafka.p%d.leader" pid) in
            let followers =
              List.init (config.replicas - 1) (fun i ->
                  make_broker t ~name:(Printf.sprintf "kafka.p%d.f%d" pid i))
            in
            { pid; leader; followers; tail = 0; written = Waitq.create () });
    }
  in
  Array.iter install_partition t.parts;
  t

let new_client_ep t ~name =
  let node =
    Fabric.add_node t.fabric ~name ~send_overhead:t.config.rpc_overhead
      ~recv_overhead:t.config.rpc_overhead ()
  in
  Rpc.endpoint t.fabric node

module Producer = struct
  type batch = { mutable records : Lazylog.Types.record list; acked : unit Ivar.t }

  type p = {
    kafka : t;
    part : partition;
    ep : (req, resp) Rpc.endpoint;
    mutable current : (batch * Engine.time) option;  (* open batch, opened at *)
  }

  (* Ship one batch; pipelined (each batch completes independently). *)
  let ship p b =
    let batch = List.rev b.records in
    Engine.spawn ~name:"kafka.producer.ship" (fun () ->
        let r = Produce { batch } in
        (match
           Rpc.call p.ep ~dst:(Fabric.id p.part.leader.node) ~size:(req_size r) r
         with
        | R_base _ -> ()
        | _ -> failwith "kafka producer: bad produce response");
        Ivar.fill b.acked ())

  let flush p =
    match p.current with
    | None -> ()
    | Some (b, _) ->
      p.current <- None;
      ship p b

  let append p record =
    let b =
      match p.current with
      | Some (b, _) -> b
      | None ->
        let b = { records = []; acked = Ivar.create () } in
        p.current <- Some (b, Engine.now ());
        b
    in
    b.records <- record :: b.records;
    if List.length b.records >= p.kafka.config.max_batch then flush p;
    Ivar.read b.acked
end

let producer t ~partition =
  let p =
    {
      Producer.kafka = t;
      part = t.parts.(partition);
      ep = new_client_ep t ~name:(Printf.sprintf "kafka-producer.p%d" partition);
      current = None;
    }
  in
  (* Linger loop: ship an open batch once it is old enough. *)
  Engine.spawn ~name:"kafka.producer.linger" (fun () ->
      let rec loop () =
        Engine.sleep (max (t.config.linger / 4) (Engine.us 100));
        (match p.Producer.current with
        | Some (_, opened) when Engine.now () - opened >= t.config.linger ->
          Producer.flush p
        | _ -> ());
        loop ()
      in
      loop ());
  p

let produce_batch t ~partition batch =
  let ep = new_client_ep t ~name:"kafka-batch-producer" in
  let r = Produce { batch } in
  match
    Rpc.call ep ~dst:(Fabric.id t.parts.(partition).leader.node)
      ~size:(req_size r) r
  with
  | R_base base -> base
  | _ -> failwith "kafka: bad produce response"

let fetch t ~partition ~offset ~max =
  let ep = new_client_ep t ~name:"kafka-consumer" in
  match
    Rpc.call ep ~dst:(Fabric.id t.parts.(partition).leader.node)
      (Fetch { offset; max })
  with
  | R_records records -> records
  | _ -> failwith "kafka: bad fetch response"

let truncate_partition t ~partition n =
  let ep = new_client_ep t ~name:"kafka-admin" in
  match
    Rpc.call ep ~dst:(Fabric.id t.parts.(partition).leader.node)
      (Truncate { from = n })
  with
  | R_ok -> ()
  | _ -> failwith "kafka: bad truncate response"

let partition_tail t ~partition = t.parts.(partition).tail

let client_log t : Lazylog.Log_api.t =
  let cid = t.next_client in
  t.next_client <- cid + 1;
  let producers =
    Array.init (Array.length t.parts) (fun pid -> producer t ~partition:pid)
  in
  let ep = new_client_ep t ~name:(Printf.sprintf "kafka-client%d" cid) in
  let seq = ref 0 in
  let rr = ref 0 in
  let n = Array.length t.parts in
  let append ~size ~data =
    incr seq;
    let rid = { Lazylog.Types.Rid.client = cid; seq = !seq } in
    let record = Lazylog.Types.record ~rid ~size ~data () in
    let pid = !rr mod n in
    incr rr;
    Producer.append producers.(pid) record;
    true
  in
  let read ~from ~len =
    (* Positions are interpreted round-robin: position p = offset (p / n)
       of partition (p mod n) — a per-partition order only. *)
    let groups = Array.make n [] in
    List.iter
      (fun p -> groups.(p mod n) <- (p / n) :: groups.(p mod n))
      (List.init len (fun i -> from + i));
    let out = ref [] in
    Array.iteri
      (fun pid offsets ->
        match List.rev offsets with
        | [] -> ()
        | lo :: _ as offsets ->
          let hi = List.fold_left max lo offsets in
          let records =
            match
              Rpc.call ep ~dst:(Fabric.id t.parts.(pid).leader.node)
                (Fetch { offset = lo; max = hi - lo + 1 })
            with
            | R_records r -> r
            | _ -> failwith "kafka: bad fetch"
          in
          List.iter
            (fun o ->
              match List.assoc_opt o records with
              | Some r -> out := ((o * n) + pid, r) :: !out
              | None -> ())
            offsets)
      groups;
    List.sort (fun (a, _) (b, _) -> Int.compare a b) !out |> List.map snd
  in
  let check_tail () =
    Array.fold_left
      (fun acc p ->
        match Rpc.call ep ~dst:(Fabric.id p.leader.node) Tail with
        | R_tail n -> acc + n
        | _ -> failwith "kafka: bad tail response")
      0 t.parts
  in
  {
    Lazylog.Log_api.name = "kafka";
    append;
    read;
    check_tail;
    trim = (fun ~upto:_ -> true);
    append_sync = None;
  }
