(** Simulated block storage device.

    A disk serializes all operations and charges
    [base_latency + bytes * ns_per_byte] per operation, so sustained
    throughput is bounded by the device's bandwidth and saturation shows up
    as queueing delay — exactly how the paper's SATA-SSD-bound shards
    behave (~34 K x 4 KB appends/s on the x1170 cluster). *)

open Ll_sim

type t

val create :
  ?base_latency:Engine.time -> ?ns_per_byte:float -> ?name:string -> unit -> t
(** Defaults model a SATA SSD: 20 us base latency, 7.0 ns/B
    (~140 MB/s sustained writes). *)

val sata_ssd : unit -> t
val nvme_ssd : unit -> t
(** NVMe-class device: 8 us base, 3.5 ns/B (~285 MB/s of sustained log
    writes once filesystem and journaling amplification are paid — the
    effective per-replica rate behind the paper's ~70 K x 4 KB appends/s
    per Erwin-st shard on the c6525 cluster). *)

(** {1 Fail-slow injection}

    Gray-failure device modes: the disk keeps completing every operation
    (no errors — a health check over it stays green), it is just slow. *)

type fail_slow =
  | Healthy
  | Stutter of { period : Engine.time; stall : Engine.time }
      (** Every [period], the next operation to start pays an extra
          [stall] — periodic multi-ms pauses in the style of firmware GC. *)
  | Degrade of { factor : float }
      (** Sustained slowdown: every operation's service time is scaled by
          [factor]. *)

val set_fail_slow : t -> fail_slow -> unit
(** Takes effect for operations that start after the call; [Healthy]
    heals. Queued work already booked on the device keeps its old
    completion time. *)

val fail_slow : t -> fail_slow

val write : t -> bytes:int -> unit
(** Blocks the calling fiber until the write is persistent. *)

val read : t -> bytes:int -> unit
(** Blocks until the data has been fetched from the device. *)

val queue_depth_time : t -> Engine.time
(** How far in the future the device is already booked (0 = idle now). *)

val bytes_written : t -> int
val ops : t -> int
