open Ll_sim

type 'a t = {
  disk : Disk.t;
  dirty_limit : int;
  entries_per_file : int;
  log : ('a * int) Mem_log.t;
  dirty : (int * int) Queue.t;  (* pos, size — values already in [log] *)
  mutable dirty_bytes : int;
  seg_bytes : (int, int ref) Hashtbl.t;
  cached : (int, unit) Hashtbl.t;
  space : Waitq.t;  (* dirty buffer below limit *)
  drained : Waitq.t;  (* dirty buffer empty *)
  work : Waitq.t;  (* dirty buffer non-empty *)
}

let flusher t () =
  let rec loop () =
    Waitq.await t.work (fun () -> not (Queue.is_empty t.dirty));
    (* Drain up to one segment file's worth per device operation: batched
       writes amortize the device base latency like group commit. *)
    let batch_bytes = ref 0 in
    let batch_count = ref 0 in
    while
      (not (Queue.is_empty t.dirty)) && !batch_count < t.entries_per_file
    do
      let _pos, size = Queue.pop t.dirty in
      batch_bytes := !batch_bytes + size;
      incr batch_count
    done;
    Disk.write t.disk ~bytes:!batch_bytes;
    t.dirty_bytes <- t.dirty_bytes - !batch_bytes;
    Waitq.broadcast t.space;
    if Queue.is_empty t.dirty then Waitq.broadcast t.drained;
    loop ()
  in
  loop ()

let create ~disk ?(dirty_limit_bytes = 8 * 1024 * 1024)
    ?(entries_per_file = 1024) () =
  let t =
    {
      disk;
      dirty_limit = dirty_limit_bytes;
      entries_per_file;
      log = Mem_log.create ();
      dirty = Queue.create ();
      dirty_bytes = 0;
      seg_bytes = Hashtbl.create 64;
      cached = Hashtbl.create 64;
      space = Waitq.create ();
      drained = Waitq.create ();
      work = Waitq.create ();
    }
  in
  Engine.spawn ~name:"store.flusher" (flusher t);
  t

let segment t pos = pos / t.entries_per_file

let stage t ~pos ~size v =
  Mem_log.set t.log pos (v, size);
  let seg = segment t pos in
  (match Hashtbl.find_opt t.seg_bytes seg with
  | Some r -> r := !r + size
  | None -> Hashtbl.add t.seg_bytes seg (ref size));
  Hashtbl.replace t.cached seg ();
  Queue.push (pos, size) t.dirty;
  t.dirty_bytes <- t.dirty_bytes + size

let append t ~pos ~size v =
  Waitq.await t.space (fun () -> t.dirty_bytes < t.dirty_limit);
  stage t ~pos ~size v;
  Waitq.broadcast t.work

let append_batch t batch =
  match batch with
  | [] -> ()
  | _ ->
    Waitq.await t.space (fun () -> t.dirty_bytes < t.dirty_limit);
    List.iter (fun (pos, size, v) -> stage t ~pos ~size v) batch;
    Waitq.broadcast t.work

let set_mem t ~pos v =
  Mem_log.set t.log pos (v, 0);
  Hashtbl.replace t.cached (segment t pos) ()

let read t ~pos =
  match Mem_log.get t.log pos with
  | None -> None
  | Some (v, _) ->
    let seg = segment t pos in
    if not (Hashtbl.mem t.cached seg) then begin
      let bytes =
        match Hashtbl.find_opt t.seg_bytes seg with Some r -> !r | None -> 0
      in
      Disk.read t.disk ~bytes;
      Hashtbl.replace t.cached seg ()
    end;
    Some v

(* Batched read fast path: one pass collects the hits and the distinct
   cold segments they touch, then the cold segments pay a single device
   read for their combined bytes — the device base cost amortizes across
   the group, mirroring what the flusher does on the write side. *)
let read_many t positions =
  let cold : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let cold_bytes = ref 0 in
  let hits =
    List.filter_map
      (fun pos ->
        match Mem_log.get t.log pos with
        | None -> None
        | Some (v, _) ->
          let seg = segment t pos in
          if not (Hashtbl.mem t.cached seg || Hashtbl.mem cold seg) then begin
            Hashtbl.add cold seg ();
            match Hashtbl.find_opt t.seg_bytes seg with
            | Some r -> cold_bytes := !cold_bytes + !r
            | None -> ()
          end;
          Some (pos, v))
      positions
  in
  if Hashtbl.length cold > 0 then begin
    Disk.read t.disk ~bytes:!cold_bytes;
    Hashtbl.iter (fun seg () -> Hashtbl.replace t.cached seg ()) cold
  end;
  hits

let mem_read t ~pos =
  match Mem_log.get t.log pos with Some (v, _) -> Some v | None -> None

let length t = Mem_log.length t.log

let truncate t n = Mem_log.truncate t.log n

let remove t ~pos = Mem_log.remove t.log pos

let trim t n = Mem_log.trim t.log n

let dirty_bytes t = t.dirty_bytes

let flush_wait t = Waitq.await t.drained (fun () -> Queue.is_empty t.dirty)

let entries t = List.map (fun (pos, (v, _)) -> (pos, v)) (Mem_log.to_list t.log)

let entries_from t from =
  let acc = ref [] in
  Mem_log.iter t.log ~from (fun pos (v, _) -> acc := (pos, v) :: !acc);
  List.rev !acc
