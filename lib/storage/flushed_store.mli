(** Write-buffered log store: memory-speed appends, disk-bound throughput.

    Storage servers in all the systems here acknowledge writes from memory
    (page cache) and drain them to the device in the background, so
    individual appends are fast but sustained throughput is capped by disk
    bandwidth — backpressure kicks in when more than [dirty_limit_bytes]
    are waiting for the device. This is how the paper's shards behave: the
    shard "whose performance is limited by the disk" (section 4.1) tops
    out around 34 K x 4 KB appends/s on the SATA testbed. *)


type 'a t

val create :
  disk:Disk.t ->
  ?dirty_limit_bytes:int ->
  ?entries_per_file:int ->
  unit ->
  'a t
(** [dirty_limit_bytes] defaults to 8 MiB (a writeback-cache-sized window). *)

val append : 'a t -> pos:int -> size:int -> 'a -> unit
(** Stores the entry in memory (blocking only while the dirty buffer is
    over its limit) and schedules it for persistence. *)

val append_batch : 'a t -> (int * int * 'a) list -> unit
(** [(pos, size, v)] triples; one backpressure check for the whole batch. *)

val set_mem : 'a t -> pos:int -> 'a -> unit
(** Pure in-memory placement with no device charge — for index updates
    over data whose bytes were already persisted elsewhere (Erwin-st
    binds journaled records to positions this way). *)

val read : 'a t -> pos:int -> 'a option
(** Serves from memory (dirty data or cached segments); cold segments pay a
    device read. *)

val read_many : 'a t -> int list -> (int * 'a) list
(** Batched {!read}: present positions in input order, with all cold
    segments fetched by a {e single} device read of their combined bytes
    (one base-latency charge for the group instead of one per position).
    Missing positions are skipped. *)

val mem_read : 'a t -> pos:int -> 'a option
(** Pure lookup with no device charge (predicates and checkers). *)

val length : 'a t -> int
val truncate : 'a t -> int -> unit

val remove : 'a t -> pos:int -> unit
(** Deletes the single entry at [pos] (no device charge — an unbind is
    metadata, the bytes are reclaimed lazily). Multi-log view changes
    use this to drop one tenant's tail bindings without a numeric
    truncate destroying interleaved positions of other logs. *)

val trim : 'a t -> int -> unit
val dirty_bytes : 'a t -> int

val flush_wait : 'a t -> unit
(** Blocks until everything staged so far is on the device. *)

val entries : 'a t -> (int * 'a) list

val entries_from : 'a t -> int -> (int * 'a) list
(** Entries at positions [>= from], in position order. *)
