(* Backed by a Hashtbl keyed by absolute position: trim and truncate are
   then O(removed), and sparse inspection is easy. Positions are dense
   between [first] and [length] on the single-log path; the multi-log
   fabric packs a log id into the high bits of each position, making the
   keyspace sparse over a 2^40-per-log span — every range operation
   therefore falls back to walking the table when the dense range is much
   wider than the population, instead of looping over the span. *)

type 'a t = {
  entries : (int, 'a) Hashtbl.t;
  mutable first : int;
  mutable next : int;
}

let create () = { entries = Hashtbl.create 256; first = 0; next = 0 }

let append t v =
  let pos = t.next in
  Hashtbl.replace t.entries pos v;
  t.next <- pos + 1;
  pos

let set t pos v =
  if pos < 0 then invalid_arg "Mem_log.set: negative position";
  Hashtbl.replace t.entries pos v;
  if pos >= t.next then t.next <- pos + 1

let get t pos =
  if pos < t.first || pos >= t.next then None
  else Hashtbl.find_opt t.entries pos

let length t = t.next

let first t = t.first

let remove t pos = Hashtbl.remove t.entries pos

(* Dense ranges walk positions; sparse ranges (packed multi-log keys)
   walk the table. The 4x slack keeps dense logs with a trimmed prefix or
   scattered holes on the cheap position loop. *)
let sparse t ~from ~upto =
  upto - from > 64 && upto - from > 4 * Hashtbl.length t.entries

let keys_in t ~from ~upto =
  Hashtbl.fold
    (fun pos _ acc -> if pos >= from && pos < upto then pos :: acc else acc)
    t.entries []

let truncate t n =
  let n = if n < t.first then t.first else n in
  if n < t.next then begin
    if sparse t ~from:n ~upto:t.next then
      List.iter (Hashtbl.remove t.entries) (keys_in t ~from:n ~upto:t.next)
    else
      for pos = n to t.next - 1 do
        Hashtbl.remove t.entries pos
      done;
    t.next <- n
  end

let trim t n =
  let n = if n > t.next then t.next else n in
  if n > t.first then begin
    if sparse t ~from:t.first ~upto:n then
      List.iter (Hashtbl.remove t.entries) (keys_in t ~from:t.first ~upto:n)
    else
      for pos = t.first to n - 1 do
        Hashtbl.remove t.entries pos
      done;
    t.first <- n
  end

let iter t ~from f =
  let from = if from < t.first then t.first else from in
  if sparse t ~from ~upto:t.next then
    List.iter
      (fun pos -> f pos (Hashtbl.find t.entries pos))
      (List.sort compare (keys_in t ~from ~upto:t.next))
  else
    for pos = from to t.next - 1 do
      match Hashtbl.find_opt t.entries pos with
      | Some v -> f pos v
      | None -> ()
    done

let to_list t =
  let acc = ref [] in
  iter t ~from:t.first (fun pos v -> acc := (pos, v) :: !acc);
  List.rev !acc
