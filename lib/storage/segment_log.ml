type 'a t = {
  disk : Disk.t;
  entries_per_file : int;
  log : ('a * int) Mem_log.t;  (* entry, size *)
  seg_bytes : (int, int ref) Hashtbl.t;  (* segment -> stored bytes *)
  cached : (int, unit) Hashtbl.t;
}

let create ~disk ?(entries_per_file = 1024) () =
  {
    disk;
    entries_per_file;
    log = Mem_log.create ();
    seg_bytes = Hashtbl.create 64;
    cached = Hashtbl.create 64;
  }

let segment t pos = pos / t.entries_per_file

let account t pos size =
  let seg = segment t pos in
  (match Hashtbl.find_opt t.seg_bytes seg with
  | Some r -> r := !r + size
  | None -> Hashtbl.add t.seg_bytes seg (ref size));
  (* A freshly written segment is hot: it was just produced from memory. *)
  Hashtbl.replace t.cached seg ()

let write t ~pos ~size v =
  Mem_log.set t.log pos (v, size);
  account t pos size;
  Disk.write t.disk ~bytes:size

let write_batch t batch =
  match batch with
  | [] -> ()
  | _ ->
    let total = ref 0 in
    List.iter
      (fun (pos, size, v) ->
        Mem_log.set t.log pos (v, size);
        account t pos size;
        total := !total + size)
      batch;
    Disk.write t.disk ~bytes:!total

let read t ~pos =
  match Mem_log.get t.log pos with
  | None -> None
  | Some (v, _) ->
    let seg = segment t pos in
    if not (Hashtbl.mem t.cached seg) then begin
      let bytes =
        match Hashtbl.find_opt t.seg_bytes seg with
        | Some r -> !r
        | None -> 0
      in
      Disk.read t.disk ~bytes;
      Hashtbl.replace t.cached seg ()
    end;
    Some v

(* Batched read: distinct cold segments pay one combined device read
   (see {!Flushed_store.read_many} — same amortization). *)
let read_many t positions =
  let cold : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let cold_bytes = ref 0 in
  let hits =
    List.filter_map
      (fun pos ->
        match Mem_log.get t.log pos with
        | None -> None
        | Some (v, _) ->
          let seg = segment t pos in
          if not (Hashtbl.mem t.cached seg || Hashtbl.mem cold seg) then begin
            Hashtbl.add cold seg ();
            match Hashtbl.find_opt t.seg_bytes seg with
            | Some r -> cold_bytes := !cold_bytes + !r
            | None -> ()
          end;
          Some (pos, v))
      positions
  in
  if Hashtbl.length cold > 0 then begin
    Disk.read t.disk ~bytes:!cold_bytes;
    Hashtbl.iter (fun seg () -> Hashtbl.replace t.cached seg ()) cold
  end;
  hits

let mem_read t ~pos =
  match Mem_log.get t.log pos with None -> None | Some (v, _) -> Some v

let length t = Mem_log.length t.log

let truncate t n = Mem_log.truncate t.log n

let trim t n = Mem_log.trim t.log n

let evict_cache t = Hashtbl.reset t.cached

let entries t = List.map (fun (pos, (v, _)) -> (pos, v)) (Mem_log.to_list t.log)
