(** Disk-backed segmented log, the shard's long-term store.

    Mirrors the paper's shard storage (section 5.6): "A shard stores its
    log portion across multiple files, each with a fixed number of entries.
    Thus, it can easily locate the target file to satisfy a read. Files are
    cached when read and thus subsequent reads are served from memory."

    Entries are indexed by absolute log position. Writes are charged to the
    underlying {!Disk} (batched writes amortize the device's base latency);
    reads of uncached segments fetch the whole segment file once. *)


type 'a t

val create : disk:Disk.t -> ?entries_per_file:int -> unit -> 'a t
(** [entries_per_file] defaults to 1024. *)

val write : 'a t -> pos:int -> size:int -> 'a -> unit
(** Persist one entry of [size] bytes at [pos] (blocking on the disk).
    Overwriting an existing position is allowed (tail rewrites during
    view-change flushes). *)

val write_batch : 'a t -> (int * int * 'a) list -> unit
(** [write_batch t [(pos, size, v); ...]] persists all entries with a
    single device operation of their combined size. *)

val read : 'a t -> pos:int -> 'a option
(** Returns the entry, charging a device read if its segment is cold. *)

val read_many : 'a t -> int list -> (int * 'a) list
(** Batched {!read}: present positions in input order; all cold segments
    are fetched with a single combined device read. *)

val mem_read : 'a t -> pos:int -> 'a option
(** Pure lookup with no device charge (for assertions and checkers). *)

val length : 'a t -> int
(** One past the highest position ever written. *)

val truncate : 'a t -> int -> unit
val trim : 'a t -> int -> unit

val evict_cache : 'a t -> unit
(** Drop the segment cache, so subsequent reads pay device fetches (used to
    model a fail-over instance reading a cold journal). *)

val entries : 'a t -> (int * 'a) list
