open Ll_sim

(* Fail-slow (gray) device modes: the disk keeps serving every request —
   nothing errors, heartbeats over it stay green — it is just slow, either
   in periodic bursts (firmware GC pauses, write-cache flushes) or as a
   sustained slowdown (dying media, thermal throttling). *)
type fail_slow =
  | Healthy
  | Stutter of { period : Engine.time; stall : Engine.time }
  | Degrade of { factor : float }

type t = {
  base_latency : Engine.time;
  ns_per_byte : float;
  name : string;
  mutable next_free : Engine.time;
  mutable bytes_written : int;
  mutable ops : int;
  mutable mode : fail_slow;
  (* Stutter cursor: the next instant at which a stall fires. *)
  mutable next_stall : Engine.time;
}

let create ?(base_latency = Engine.us 20) ?(ns_per_byte = 7.0)
    ?(name = "disk") () =
  {
    base_latency;
    ns_per_byte;
    name;
    next_free = 0;
    bytes_written = 0;
    ops = 0;
    mode = Healthy;
    next_stall = 0;
  }

let sata_ssd () = create ~base_latency:(Engine.us 20) ~ns_per_byte:7.0 ()

let nvme_ssd () = create ~base_latency:(Engine.us 8) ~ns_per_byte:3.5 ()

let set_fail_slow t mode =
  t.mode <- mode;
  match mode with
  | Stutter { period; _ } -> t.next_stall <- Engine.now () + period
  | Healthy | Degrade _ -> ()

let fail_slow t = t.mode

let operate t ~bytes =
  let now = Engine.now () in
  let start = if t.next_free > now then t.next_free else now in
  let dur =
    t.base_latency + int_of_float (t.ns_per_byte *. float_of_int bytes)
  in
  let dur =
    match t.mode with
    | Healthy -> dur
    | Degrade { factor } -> int_of_float (factor *. float_of_int dur)
    | Stutter { period; stall } ->
      if start >= t.next_stall then begin
        t.next_stall <- start + period;
        dur + stall
      end
      else dur
  in
  t.next_free <- start + dur;
  t.ops <- t.ops + 1;
  Engine.sleep (t.next_free - now)

let write t ~bytes =
  t.bytes_written <- t.bytes_written + bytes;
  operate t ~bytes

let read t ~bytes = operate t ~bytes

let queue_depth_time t =
  let now = Engine.now () in
  if t.next_free > now then t.next_free - now else 0

let bytes_written t = t.bytes_written
let ops t = t.ops
