(** Append-only in-memory log indexed by absolute position.

    Supports a trimmed prefix (garbage collection) and truncation of the
    tail (needed by shards during view-change flushes, section 4.5: shards
    must be able to logically overwrite entries at the tail). *)

type 'a t

val create : unit -> 'a t

val append : 'a t -> 'a -> int
(** Appends and returns the absolute position of the new entry. *)

val set : 'a t -> int -> 'a -> unit
(** [set t pos v] writes [v] at absolute position [pos] (sparse positions
    are allowed — a shard holds only its own slice of the global position
    space). Existing positions are overwritten (tail overwrite during
    recovery). *)

val get : 'a t -> int -> 'a option
(** [None] if trimmed away or beyond the tail. *)

val length : 'a t -> int
(** Tail position: total entries ever appended minus nothing — i.e. the
    next position to be written. *)

val first : 'a t -> int
(** Lowest untrimmed position. *)

val remove : 'a t -> int -> unit
(** [remove t pos] deletes the single entry at [pos] (no-op if absent),
    leaving [first]/[length] untouched. The multi-log view-change path
    uses this to unbind one tenant's tail positions without disturbing
    interleaved positions of other logs. *)

val truncate : 'a t -> int -> unit
(** [truncate t n] drops entries at positions [>= n]. Cost is
    O(range) for dense logs, O(population) when the range is sparse
    (packed multi-log positions). *)

val trim : 'a t -> int -> unit
(** [trim t n] discards entries at positions [< n]. *)

val iter : 'a t -> from:int -> (int -> 'a -> unit) -> unit

val to_list : 'a t -> (int * 'a) list
(** All untrimmed entries with their positions, in order. *)
