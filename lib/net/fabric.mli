(** Simulated datacenter network fabric.

    A fabric connects a set of nodes and delivers typed messages between
    them with a configurable latency model:

    {v delay = send_overhead(src) + one_way + size * per_byte
             + jitter + recv_overhead(dst) v}

    The per-endpoint software overheads model the RPC stack (eRPC-class
    endpoints cost ~1 us, gRPC-class endpoints cost hundreds of us — the
    knob behind the Erwin-vs-Scalog-artifact latency gap in the paper's
    section 6.1). Delivery is FIFO per (src, dst) pair, as over a TCP
    connection. Nodes can crash (messages to and from them are dropped) and
    pairs can be partitioned. *)

open Ll_sim

type node_id = int

type link = {
  one_way : Engine.time;  (** propagation + switching, one direction *)
  per_byte_ns : float;  (** serialization cost per payload byte *)
  jitter : Engine.time;  (** max uniform extra delay *)
}

val default_link : link
(** 25 Gb-class datacenter link: 1.5 us one way, 0.32 ns/B, 300 ns jitter. *)

type 'm t

type 'm node

val create : ?link:link -> ?seed:int -> unit -> 'm t
(** Without [seed], the fabric seeds its jitter/drop stream from the
    engine's master-seeded random state ({!Ll_sim.Engine.random_state}),
    so one master seed reproduces the whole run. *)

val add_node :
  'm t ->
  name:string ->
  ?send_overhead:Engine.time ->
  ?recv_overhead:Engine.time ->
  unit ->
  'm node
(** Registers a node. Overheads default to 500 ns each (eRPC-class). *)

val id : 'm node -> node_id
val name : 'm node -> string
val node_by_id : 'm t -> node_id -> 'm node

val node_count : 'm t -> int
(** Number of registered nodes (node ids are [0 .. node_count - 1]). *)

val send : 'm t -> src:'m node -> dst:node_id -> size:int -> 'm -> unit
(** Fire-and-forget message of [size] payload bytes. Dropped silently if
    either endpoint is crashed or the pair is partitioned at send time. *)

val recv : 'm node -> node_id * 'm
(** Blocks until a message arrives at this node; returns the sender. *)

val recv_timeout : 'm node -> timeout:Engine.time -> (node_id * 'm) option

val inbox_length : 'm node -> int

(** {1 Fault injection} *)

val crash : 'm t -> 'm node -> unit
(** Crash: pending and future messages are dropped, inbox is cleared, and
    per-pair FIFO bookkeeping involving the node is forgotten (a revived
    node starts with fresh connections, not delayed behind pre-crash
    traffic). Fibers blocked in {!recv} stay blocked. *)

val recover : 'm t -> 'm node -> unit
val is_alive : 'm node -> bool

val partition : 'm t -> node_id -> node_id -> unit
(** Symmetrically block traffic between two nodes. *)

val heal : 'm t -> node_id -> node_id -> unit

val set_drop_probability : 'm t -> float -> unit
(** Uniform random message loss for every link (default 0). *)

val set_extra_delay : 'm node -> Engine.time -> unit
(** Straggler injection: adds a fixed delay to every message into and out
    of this node (0 to clear). *)

val extra_delay : 'm node -> Engine.time

val set_link_fault :
  'm t -> src:node_id -> dst:node_id -> ?delay:Engine.time -> ?drop_p:float ->
  unit -> unit
(** Gray failure on the directed [src -> dst] link only: every message
    entering it gains [delay] (default 0) and is dropped with probability
    [drop_p] (default 0; [1.0] is a deterministic one-way partition).
    Asymmetric by construction — the reverse direction is untouched — so
    partial partitions and half-broken paths are expressible. Applied at
    send time; messages already in flight are unaffected. Replaces any
    previous fault on the same directed link. *)

val clear_link_fault : 'm t -> src:node_id -> dst:node_id -> unit

val link_fault : 'm t -> src:node_id -> dst:node_id -> (Engine.time * float) option
(** [(delay, drop_p)] currently installed on the directed link, if any. *)

(** {1 Message accounting}

    Structural verification of protocol complexity: tests count the
    messages an operation costs (e.g. an Erwin append is exactly one
    request and one response per sequencing replica — 1 RTT). *)

val messages_sent : 'm t -> int
(** Total messages accepted for delivery since creation (drops and crashes
    included). *)

val bytes_sent : 'm t -> int

val node_messages_in : 'm node -> int
(** Messages delivered to this node's inbox. *)
