(** Request/response RPC over a {!Fabric}.

    Every participant (client or server) owns an {e endpoint} bound to a
    fabric node. An endpoint demultiplexes incoming traffic: responses
    complete pending calls; requests are charged the endpoint's service
    time on the endpoint's (single) CPU and then dispatched to the handler
    on a fresh fiber, so a handler that blocks on sub-operations does not
    stall the server loop but CPU work is properly serialized.

    A server that crashes (via {!Fabric.crash}) silently drops traffic;
    callers should use {!call_timeout} on paths where failures are
    expected. *)

open Ll_sim

type node_id = Fabric.node_id

type ('req, 'resp) msg

type ('req, 'resp) endpoint

val endpoint :
  ('req, 'resp) msg Fabric.t -> ('req, 'resp) msg Fabric.node
  -> ('req, 'resp) endpoint
(** Creates the endpoint and starts its demux fiber. *)

val node : ('req, 'resp) endpoint -> ('req, 'resp) msg Fabric.node
val endpoint_id : ('req, 'resp) endpoint -> node_id

val set_handler :
  ('req, 'resp) endpoint ->
  (src:node_id -> 'req -> reply:(?size:int -> 'resp -> unit) -> unit) ->
  unit
(** Installs the request handler. [reply] may be invoked at most once, from
    any fiber, and sends the response back to the caller ([size] is the
    response payload size in bytes, default 64). Requests arriving at an
    endpoint with no handler are dropped. *)

val set_service_time : ('req, 'resp) endpoint -> ('req -> Engine.time) -> unit
(** CPU cost charged serially per incoming request (default 0). *)

val call :
  ('req, 'resp) endpoint -> dst:node_id -> ?size:int -> 'req -> 'resp
(** Synchronous call; blocks forever if the peer never answers. [size] is
    the request payload size in bytes (default 64). *)

val call_timeout :
  ('req, 'resp) endpoint ->
  dst:node_id -> ?size:int -> timeout:Engine.time -> 'req ->
  'resp option

val call_retry :
  ('req, 'resp) endpoint ->
  dst:node_id ->
  ?size:int ->
  ?timeout:Engine.time ->
  ?max_tries:int ->
  ?backoff:Engine.time ->
  'req ->
  'resp option
(** Retries a timed-out call up to [max_tries] times (default 3 tries with
    1 ms timeouts). The callee must therefore treat the request as
    idempotent or deduplicate. A non-zero [backoff] (default 0: retry
    immediately, the historical behaviour) sleeps between attempts with
    exponential growth and seeded jitter — attempt [n] waits roughly
    [backoff * 2^n], capped at [2^6], randomized ±50% from the engine's
    RNG so sweeps stay deterministic per seed. *)

val call_async : ('req, 'resp) endpoint -> dst:node_id -> ?size:int -> 'req
  -> 'resp Ivar.t
(** Issues the request and returns an ivar for its response, allowing
    parallel fan-out ("write to all replicas in parallel"). *)

val send_oneway :
  ('req, 'resp) endpoint -> dst:node_id -> ?size:int -> 'req -> unit
(** Fire-and-forget; delivered to the peer's handler with a no-op [reply]. *)
