(** Request/response RPC over a {!Fabric}.

    Every participant (client or server) owns an {e endpoint} bound to a
    fabric node. An endpoint demultiplexes incoming traffic: responses
    complete pending calls; requests are charged the endpoint's service
    time on the endpoint's (single) CPU and then dispatched to the handler
    on a fresh fiber, so a handler that blocks on sub-operations does not
    stall the server loop but CPU work is properly serialized.

    A server that crashes (via {!Fabric.crash}) silently drops traffic;
    callers should use {!call_timeout} on paths where failures are
    expected. *)

open Ll_sim

type node_id = Fabric.node_id

type ('req, 'resp) msg

type ('req, 'resp) endpoint

val endpoint :
  ('req, 'resp) msg Fabric.t -> ('req, 'resp) msg Fabric.node
  -> ('req, 'resp) endpoint
(** Creates the endpoint and starts its demux fiber. *)

val node : ('req, 'resp) endpoint -> ('req, 'resp) msg Fabric.node
val endpoint_id : ('req, 'resp) endpoint -> node_id

val set_handler :
  ('req, 'resp) endpoint ->
  (src:node_id -> 'req -> reply:(?size:int -> 'resp -> unit) -> unit) ->
  unit
(** Installs the request handler. [reply] may be invoked at most once, from
    any fiber, and sends the response back to the caller ([size] is the
    response payload size in bytes, default 64). Requests arriving at an
    endpoint with no handler are dropped. *)

val set_service_time : ('req, 'resp) endpoint -> ('req -> Engine.time) -> unit
(** CPU cost charged serially per incoming request (default 0). *)

val set_ingress :
  ('req, 'resp) endpoint ->
  (src:node_id -> 'req -> reply:(?size:int -> 'resp -> unit) -> bool) ->
  unit
(** Installs an ingress scheduler: every incoming request is offered to it
    (from the demux fiber, before any service-time charge). Returning
    [true] transfers ownership — the scheduler queues the request under
    its own service discipline (re-entering via {!serve} when it dequeues)
    or sheds it by invoking [reply] directly. Returning [false] falls
    through to the default FIFO serial path, byte-identically — schedulers
    bypass traffic they do not classify. *)

val serve :
  ('req, 'resp) endpoint ->
  src:node_id -> 'req -> reply:(?size:int -> 'resp -> unit) -> unit
(** The default service discipline: charge the request's service time
    (blocking the calling fiber — serial service) and run the installed
    handler on a fresh fiber. Ingress schedulers call this from their
    drain fiber for each dequeued request. *)

val service_time_of : ('req, 'resp) endpoint -> 'req -> Engine.time
(** The endpoint's modeled CPU cost for one request (what {!serve} will
    charge) — lets an ingress scheduler cost-account a request before
    deciding to queue or shed it. *)

val call :
  ('req, 'resp) endpoint -> dst:node_id -> ?size:int -> 'req -> 'resp
(** Synchronous call; blocks forever if the peer never answers. [size] is
    the request payload size in bytes (default 64). *)

val call_timeout :
  ('req, 'resp) endpoint ->
  dst:node_id -> ?size:int -> timeout:Engine.time -> 'req ->
  'resp option
(** On expiry the call's pending-table entry is dropped (a late response
    is then ignored), so timeout storms do not leak table entries. *)

(** {1 Retry budgets}

    A token bucket metering {e retries} (first attempts are always free):
    each fresh budgeted call deposits [ratio] tokens (capped at [cap],
    which is also the initial balance) and each retry withdraws 1.0. When
    the bucket is empty, retries shed instead of amplifying an overloaded
    or gray peer with retry traffic. A budget may be shared across calls
    and endpoints; {!set_retry_budget} attaches one as an endpoint's
    default. *)

module Retry_budget : sig
  type t

  val create : ?ratio:float -> ?cap:float -> unit -> t
  (** Defaults: [ratio = 0.1] (one retry earned per 10 calls),
      [cap = 8.0]. The bucket starts full. *)

  val deposit : t -> unit
  val try_withdraw : t -> bool
  val tokens : t -> float
end

val set_retry_budget : ('req, 'resp) endpoint -> Retry_budget.t -> unit
(** Budget used by {!call_retry} / {!call_retry_result} on this endpoint
    when the caller passes none. Endpoints start with no budget
    (unlimited retries, the historical behaviour). *)

val retry_budget : ('req, 'resp) endpoint -> Retry_budget.t option

val call_retry :
  ('req, 'resp) endpoint ->
  dst:node_id ->
  ?size:int ->
  ?timeout:Engine.time ->
  ?max_tries:int ->
  ?backoff:Engine.time ->
  ?budget:Retry_budget.t ->
  'req ->
  'resp option
(** Retries a timed-out call up to [max_tries] times (default 3 tries with
    1 ms timeouts). The callee must therefore treat the request as
    idempotent or deduplicate. A non-zero [backoff] (default 0: retry
    immediately, the historical behaviour) sleeps between attempts with
    exponential growth and seeded jitter — attempt [n] waits roughly
    [backoff * 2^n], capped at [2^6], randomized ±50% from the engine's
    RNG so sweeps stay deterministic per seed. [None] on exhaustion of
    either tries or the retry budget; use {!call_retry_result} to tell the
    two apart. *)

val call_retry_result :
  ('req, 'resp) endpoint ->
  dst:node_id ->
  ?size:int ->
  ?timeout:Engine.time ->
  ?max_tries:int ->
  ?backoff:Engine.time ->
  ?budget:Retry_budget.t ->
  'req ->
  [ `Ok of 'resp | `Timeout | `Shed ]
(** Like {!call_retry} but distinguishes exhausted tries ([`Timeout]) from
    an empty retry budget ([`Shed] — returned, never raised, so budget
    pressure degrades to load shedding rather than an exception unwinding
    the calling fiber). The budget ([budget] argument, else the endpoint's
    attached budget, else unlimited) meters retries only: the first
    attempt is always sent. *)

val call_async : ('req, 'resp) endpoint -> dst:node_id -> ?size:int -> 'req
  -> 'resp Ivar.t
(** Issues the request and returns an ivar for its response, allowing
    parallel fan-out ("write to all replicas in parallel"). *)

val call_hedged :
  ('req, 'resp) endpoint ->
  dsts:node_id list ->
  ?size:int ->
  timeout:Engine.time ->
  hedge_after:Engine.time ->
  'req ->
  ('resp * node_id) option
(** Tail-latency hedging: sends to the first destination immediately and,
    if no response lands within [hedge_after] (or the first attempt fails
    early), duplicates the request to the second destination. First
    response wins and reports which peer produced it; the hedge timer is
    cancelled via {!Ll_sim.Engine.cancel} when the primary wins the race.
    The request must be idempotent. [None] only when every launched
    attempt timed out ([timeout] each). Destinations beyond the second are
    ignored; a single-destination list degrades to {!call_timeout}. *)

(** {1 Latency scoring}

    The demux records an RTT sample per response against the destination
    peer and maintains RFC-6298-style statistics: [srtt] (EWMA, gain 1/8)
    and [dev] (mean deviation, gain 1/4). The {e score} [srtt + 4 * dev]
    is a cheap upper-percentile proxy used for hedge deadlines and for
    latency-outlier detection. Timed-out calls contribute no sample
    (Karn's rule) — callers that want censored evidence feed it
    explicitly via {!note_peer_sample}. *)

val peer_score : ('req, 'resp) endpoint -> node_id -> float option
(** [srtt + 4 * dev] in ns, or [None] before the first sample. *)

val note_peer_sample :
  ('req, 'resp) endpoint -> node_id -> Engine.time -> unit
(** Feed one latency observation into the peer's statistics by hand.
    Health monitors use this to count a probe timeout as a (censored)
    sample at the timeout bound — without it a replica slow enough to
    blow the probe deadline would score {e healthier} than a mildly
    slow one, since its timed-out probes record nothing. *)

val peer_samples : ('req, 'resp) endpoint -> node_id -> int

val forget_peer : ('req, 'resp) endpoint -> node_id -> unit
(** Drops the peer's statistics (e.g. after membership changes, so a new
    incarnation starts a fresh window). *)

val hedge_deadline :
  ('req, 'resp) endpoint -> dsts:node_id list -> floor:Engine.time ->
  Engine.time
(** Adaptive hedge deadline: the lower-median of the candidates' scores
    (so one slow outlier cannot inflate it), never below [floor]. [floor]
    when no candidate has been scored yet. *)

(** {1 Introspection} *)

val pending_calls : ('req, 'resp) endpoint -> int
(** Outstanding entries in the pending-call table (should drop back to 0
    once every in-flight call has completed or timed out). *)

type counter_snapshot = {
  cs_timeouts : int;
  cs_retries : int;
  cs_shed : int;
  cs_hedges_fired : int;
  cs_hedges_won : int;
}

val counters : unit -> counter_snapshot
(** Cumulative per-domain counters across every endpoint (the retry-path
    analogue of {!Ll_sim.Engine.timers_cancelled}): timed-out calls,
    retry attempts, budget sheds, hedges launched, hedges that won. *)

val counters_diff :
  before:counter_snapshot -> after:counter_snapshot -> counter_snapshot

val send_oneway :
  ('req, 'resp) endpoint -> dst:node_id -> ?size:int -> 'req -> unit
(** Fire-and-forget; delivered to the peer's handler with a no-op [reply]. *)
